// Benchmarks that regenerate the paper's evaluation (section 6): one
// bench per table and figure, plus micro-benchmarks for the substrates
// those experiments exercise. Run with:
//
//	go test -bench=. -benchmem
//
// For the full paper-vs-measured reports (with shape checks), use
// cmd/pperfgrid-bench instead; these benches express the same workloads
// through the standard testing.B harness.
package pperfgrid_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/experiment"
	"pperfgrid/internal/flatfile"
	"pperfgrid/internal/gsi"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
)

// benchCfg keeps bench runtimes sane: mapping latencies at 1/1000 of the
// paper's (the ratios, not the absolutes, are what matter).
func benchCfg() experiment.Config {
	return experiment.Config{
		Scale: 0.001,
		Seed:  1,
		SMG98: datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8},
	}
}

// BenchmarkTable4 measures one calibrated getPR through the full stack
// (client stub -> SOAP -> container -> Execution instance -> Mapping
// Layer -> store) per data source, caching off — the per-query cost whose
// decomposition is the paper's Table 4.
func BenchmarkTable4(b *testing.B) {
	for _, name := range experiment.AllSourceNames {
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg()
			cfg.CachingOff = true
			src, err := experiment.NewSource(name, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer src.Close()
			c := client.NewWithoutRegistry()
			binding, err := c.BindFactory(src.Name, src.Site.ApplicationFactoryHandle())
			if err != nil {
				b.Fatal(err)
			}
			refs, err := binding.QueryExecutions(nil)
			if err != nil {
				b.Fatal(err)
			}
			_, q := src.QueryFor(0)
			payload := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, err := refs[i%len(refs)].PerformanceResults(q)
				if err != nil {
					b.Fatal(err)
				}
				payload = 0
				for _, s := range perfdata.EncodeResults(rs) {
					payload += len(s)
				}
			}
			b.ReportMetric(float64(payload), "payload-bytes")
		})
	}
}

// BenchmarkTable5 measures the same getPR with the Performance Results
// cache off and on — the per-query cost pair behind the paper's Table 5
// speedups.
func BenchmarkTable5(b *testing.B) {
	for _, name := range experiment.AllSourceNames {
		for _, caching := range []string{"CachingOff", "CachingOn"} {
			b.Run(name+"/"+caching, func(b *testing.B) {
				cfg := benchCfg()
				cfg.CachingOff = caching == "CachingOff"
				src, err := experiment.NewSource(name, cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer src.Close()
				c := client.NewWithoutRegistry()
				binding, err := c.BindFactory(src.Name, src.Site.ApplicationFactoryHandle())
				if err != nil {
					b.Fatal(err)
				}
				refs, err := binding.QueryExecutions(nil)
				if err != nil {
					b.Fatal(err)
				}
				_, q := src.QueryFor(0)
				ref := refs[0]
				if _, err := ref.PerformanceResults(q); err != nil { // warm
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ref.PerformanceResults(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure12 measures one threaded query batch (10 repeats per
// Execution instance) against HPL sites along the replicas axis at the
// paper's batch sizes — the workload of Figure 12, extended past the
// paper's two-host testbed.
func BenchmarkFigure12(b *testing.B) {
	for _, hosts := range []int{1, 2, 4, 8} {
		for _, n := range []int{2, 8, 32} {
			b.Run(fmt.Sprintf("hosts=%d/execs=%d", hosts, n), func(b *testing.B) {
				cfg := benchCfg()
				cfg.Replicas = hosts
				cfg.Workers = 1
				cfg.CachingOff = true
				src, err := experiment.NewHPLSource(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer src.Close()
				c := client.NewWithoutRegistry()
				binding, err := c.BindFactory(src.Name, src.Site.ApplicationFactoryHandle())
				if err != nil {
					b.Fatal(err)
				}
				refs, err := binding.QueryExecutions(nil)
				if err != nil {
					b.Fatal(err)
				}
				q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					results := client.QueryPerformanceResults(refs[:n], q, client.ParallelOptions{Repeats: 10})
					for _, r := range results {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkSOAPRoundTrip isolates the marshalling component of Table 4's
// overhead at the paper's three payload scales (~8 B, ~5.7 KB, ~60 KB+),
// under the hand-rolled codec (the production path) and the retained
// legacy encoding/xml codec (the seed's path).
func BenchmarkSOAPRoundTrip(b *testing.B) {
	for _, codec := range []string{"HandRolled", "Legacy"} {
		for _, items := range []int{1, 80, 1000} {
			b.Run(fmt.Sprintf("%s/items=%d", codec, items), func(b *testing.B) {
				soap.SetLegacyCodec(codec == "Legacy")
				defer soap.SetLegacyCodec(false)
				vals := make([]string, items)
				for i := range vals {
					vals[i] = fmt.Sprintf("gflops|/Process/%d|hpl|0.0-132.5|%d.25", i, i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					data, err := soap.EncodeResponse("getPR", nil, vals)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := soap.DecodeResponse(data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchSMGRefs stands up an uncalibrated (no injected latency) SMG98-
// shaped site and binds one execution, so transport benches measure the
// wire path itself rather than the calibrated mapping delay.
func benchSMGRefs(b *testing.B, cachingOff bool) (*client.ExecutionRef, perfdata.Query) {
	b.Helper()
	d := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 8, TimeBins: 32, Seed: 3})
	w := mapping.NewMemory(d)
	site, err := core.StartSite(core.SiteConfig{AppName: "SMG98", Wrappers: []mapping.ApplicationWrapper{w}, CachingOff: cachingOff})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	c := client.NewWithoutRegistry()
	binding, err := c.BindFactory("SMG98", site.ApplicationFactoryHandle())
	if err != nil {
		b.Fatal(err)
	}
	refs, err := binding.QueryExecutions(nil)
	if err != nil || len(refs) == 0 {
		b.Fatalf("QueryExecutions: %v, %v", refs, err)
	}
	ref := refs[0]
	tr, err := ref.TimeStartEnd()
	if err != nil {
		b.Fatal(err)
	}
	metrics, err := ref.Metrics()
	if err != nil || len(metrics) == 0 {
		b.Fatalf("metrics: %v, %v", metrics, err)
	}
	return ref, perfdata.Query{Metric: metrics[0], Time: tr, Type: perfdata.UndefinedType}
}

// BenchmarkTransportGetPR measures one full-stack getPR (stub -> SOAP ->
// container -> Execution -> store) with no injected mapping latency: the
// pure wire-path cost the overhaul targets. CacheOff re-marshals every
// reply; CacheHit is served from the encoded-response cache with zero XML
// marshalling.
func BenchmarkTransportGetPR(b *testing.B) {
	b.Run("CacheOff", func(b *testing.B) {
		ref, q := benchSMGRefs(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ref.PerformanceResults(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CacheHit", func(b *testing.B) {
		ref, q := benchSMGRefs(b, false)
		if _, err := ref.PerformanceResults(q); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ref.PerformanceResults(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransportPagedGetPR measures the paged protocol draining the
// same result set at several page sizes (0 = service default, one page
// per DefaultPageSize values).
func BenchmarkTransportPagedGetPR(b *testing.B) {
	for _, pageSize := range []int{64, 512, 0} {
		b.Run(fmt.Sprintf("pageSize=%d", pageSize), func(b *testing.B) {
			ref, q := benchSMGRefs(b, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ref.PerformanceResultsPaged(q, pageSize).Collect(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinidb measures the SQL engine behind the relational wrappers:
// the wide-table point query (HPL) and the star fact-table join (SMG98).
func BenchmarkMinidb(b *testing.B) {
	b.Run("WidePointQuery", func(b *testing.B) {
		db := minidb.NewDatabase()
		d := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: 1})
		if err := datagen.LoadWideTable(db, "executions", d); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT gflops FROM executions WHERE execid = '150'"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("StarFactJoin", func(b *testing.B) {
		db := minidb.NewDatabase()
		d := datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8, Seed: 1})
		if err := datagen.LoadStarSchema(db, d); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := db.Query("SELECT f.path, r.value FROM results r JOIN foci f ON r.fociid = f.fociid WHERE r.execid = '1' AND r.metricid = 1")
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMinidbJoin pits the planned star fact-table join (hash join
// plus secondary index probes, the production configuration built by
// mapping.NewStar) against the retained naive nested-loop executor on the
// same database — the speedup the query-engine overhaul buys before any
// caching.
func BenchmarkMinidbJoin(b *testing.B) {
	db := minidb.NewDatabase()
	d := datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8, Seed: 1})
	if err := datagen.LoadStarSchema(db, d); err != nil {
		b.Fatal(err)
	}
	for _, ix := range mapping.StarIndexes {
		if err := db.CreateIndex(ix[0], ix[1]); err != nil {
			b.Fatal(err)
		}
	}
	const q = "SELECT f.path, r.value FROM results r JOIN foci f ON r.fociid = f.fociid WHERE r.execid = '1' AND r.metricid = 1"
	b.Run("PlannedIndexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveNestedLoop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryNaive(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMinidbPrepared measures what Prepare saves per query: the
// parsed variant re-lexes and re-parses the SQL text on every call, the
// prepared variant binds a parameter into a cached statement, and the
// streamed variant additionally skips materializing the result set.
func BenchmarkMinidbPrepared(b *testing.B) {
	db := minidb.NewDatabase()
	d := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: 1})
	if err := datagen.LoadWideTable(db, "executions", d); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("executions", "execid"); err != nil {
		b.Fatal(err)
	}
	b.Run("Parsed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT gflops FROM executions WHERE execid = '150'"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Prepared", func(b *testing.B) {
		st, err := db.Prepare("SELECT gflops FROM executions WHERE execid = ?")
		if err != nil {
			b.Fatal(err)
		}
		arg := minidb.Text("150")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Query(arg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PreparedStream", func(b *testing.B) {
		st, err := db.Prepare("SELECT gflops FROM executions WHERE execid = ?")
		if err != nil {
			b.Fatal(err)
		}
		arg := minidb.Text("150")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := st.QueryStream(arg)
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			rows.Close()
		}
	})
}

// BenchmarkFlatfileParse measures the custom ASCII parser's per-query
// re-parse cost — the RMA Mapping-Layer path.
func BenchmarkFlatfileParse(b *testing.B) {
	d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 20, Seed: 1}).ToFlatfile()
	files, err := flatfile.Encode(d)
	if err != nil {
		b.Fatal(err)
	}
	store, err := flatfile.OpenFiles(files)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Execution("1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkManagerHandles measures the Manager's two regimes: the
// instance-cache hit path (the paper's justification for caching
// Execution GSHs), and a cold 124-ID batch resolved through remote
// factories — batched (one plural CreateServices SOAP call per replica,
// run concurrently) against the retained per-ID oracle (one CreateService
// round trip per ID), at 1/2/4 replicas. The batched-vs-per-ID gap is the
// before/after of the scale-out overhaul.
func BenchmarkManagerHandles(b *testing.B) {
	ids := make([]string, 124)
	for i := range ids {
		ids[i] = fmt.Sprint(100 + i)
	}
	b.Run("CachedHit", func(b *testing.B) {
		d := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: 1})
		w, err := mapping.NewWideTable(d)
		if err != nil {
			b.Fatal(err)
		}
		site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
		if err != nil {
			b.Fatal(err)
		}
		defer site.Close()
		if _, err := site.Manager().ExecutionHandles(ids); err != nil { // create once
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := site.Manager().ExecutionHandles(ids); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, replicas := range []int{1, 2, 4} {
		for _, mode := range []string{"ColdBatched", "ColdPerID"} {
			b.Run(fmt.Sprintf("%s/replicas=%d", mode, replicas), func(b *testing.B) {
				d := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: 1})
				wrappers := make([]mapping.ApplicationWrapper, replicas)
				for i := range wrappers {
					wrappers[i] = mapping.NewMemory(d)
				}
				site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: wrappers})
				if err != nil {
					b.Fatal(err)
				}
				defer site.Close()
				refs := make([]core.ExecutionFactoryRef, replicas)
				for i, host := range site.Hosts() {
					refs[i] = core.NewRemoteFactoryRef(host)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// A fresh Manager per iteration keeps every batch cold.
					m, err := core.NewManager(nil, refs...)
					if err != nil {
						b.Fatal(err)
					}
					m.SetBatching(mode == "ColdBatched")
					handles, err := m.ExecutionHandles(ids)
					if err != nil {
						b.Fatal(err)
					}
					// Destroy the transient instances outside the timer so
					// the hosting tables stay flat across iterations.
					b.StopTimer()
					for _, h := range handles {
						stub, err := container.DialString(h)
						if err != nil {
							b.Fatal(err)
						}
						if err := stub.Destroy(); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkCachePolicies measures Get/Put throughput per replacement
// policy under capacity pressure, for the sharded production cache and
// the retained single-lock oracle.
func BenchmarkCachePolicies(b *testing.B) {
	results := []perfdata.Result{{Metric: "m", Focus: "/", Type: "t", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: 1}}
	for _, impl := range []string{"Sharded", "SingleLock"} {
		for _, policy := range []string{"lru", "lfu", "cost"} {
			b.Run(impl+"/"+policy, func(b *testing.B) {
				cache := core.NewCacheFromConfig(core.CacheConfig{
					Policy: policy, MaxEntries: 64, SingleLock: impl == "SingleLock",
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					key := fmt.Sprintf("k%d", i%128)
					if _, ok := cache.Get(key); !ok {
						cache.Put(key, results, time.Millisecond)
					}
				}
			})
		}
	}
}

// rsBench is a one-result payload for the cache micro-benches.
var rsBench = []perfdata.Result{{Metric: "func_calls", Focus: "/Process/0", Type: "vampir", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: 1}}

// benchCacheAt builds a cache prefilled to capacity with distinct keys,
// for the eviction and churn benches.
func benchCacheAt(impl, policy string, capacity int) core.Cache {
	cache := core.NewCacheFromConfig(core.CacheConfig{
		Policy: policy, MaxEntries: capacity, SingleLock: impl == "SingleLock",
	})
	for i := 0; i < capacity; i++ {
		cache.Put(fmt.Sprintf("fill%d|/Process/%d|vampir|0.0-1.0", i, i%8), rsBench, time.Millisecond)
	}
	return cache
}

// BenchmarkCacheHit measures the warmed single-reader hit path per
// implementation (the latency the Table 5 steady state is made of).
func BenchmarkCacheHit(b *testing.B) {
	for _, impl := range []string{"Sharded", "SingleLock"} {
		b.Run(impl, func(b *testing.B) {
			// Unbounded: the hit path is identical, and no hash imbalance
			// can evict a warmed key out from under the measurement.
			cache := core.NewCacheFromConfig(core.CacheConfig{Policy: "cost", SingleLock: impl == "SingleLock"})
			keys := make([]string, 64)
			for i := range keys {
				keys[i] = fmt.Sprintf("fill%d|/Process/%d|vampir|0.0-1.0", i, i%8)
				cache.Put(keys[i], rsBench, time.Millisecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := cache.Get(keys[i%len(keys)]); !ok {
					b.Fatal("warmed key missed")
				}
			}
		})
	}
}

// BenchmarkCacheEvict measures one insertion into a full cache — which
// must evict a victim first: the single-lock lfu/cost implementations
// scan all n entries under their one mutex, the sharded cache pops a
// per-shard min-heap in O(log n).
func BenchmarkCacheEvict(b *testing.B) {
	results := []perfdata.Result{{Metric: "excl_time", Focus: "/Process/0/Code/MPI/MPI_Waitall", Type: "vampir", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: 1}}
	for _, impl := range []string{"Sharded", "SingleLock"} {
		for _, policy := range []string{"lru", "lfu", "cost"} {
			b.Run(fmt.Sprintf("%s/%s/n=4096", impl, policy), func(b *testing.B) {
				cache := benchCacheAt(impl, policy, 4096)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cache.Put(fmt.Sprintf("new%d|/Process/%d|vampir|0.0-1.0", i, i%8), results, time.Millisecond)
				}
			})
		}
	}
}

// BenchmarkCacheConcurrentMixed is the concurrent Table 5 workload as a
// testing.B harness: parallel readers hammering a warmed hot set while a
// tail of misses forces eviction churn, per implementation. (The full
// sweep with per-reader-count rows is cmd/pperfgrid-bench -cache-bench.)
func BenchmarkCacheConcurrentMixed(b *testing.B) {
	hot := make([]perfdata.Result, 64)
	for i := range hot {
		hot[i] = perfdata.Result{Metric: "func_calls", Focus: fmt.Sprintf("/Process/%d", i), Type: "vampir", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: float64(i)}
	}
	for _, impl := range []string{"Sharded", "SingleLock"} {
		b.Run(impl, func(b *testing.B) {
			cache := benchCacheAt(impl, "cost", 4096)
			hotKeys := make([]string, 16)
			for i := range hotKeys {
				hotKeys[i] = fmt.Sprintf("hot%d|/Process/%d|vampir|0.0-1.0", i, i%8)
				cache.Put(hotKeys[i], hot, time.Minute)
			}
			var tailSeq atomic.Int64
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%20 == 19 { // 5% tail: miss + insert + evict
						k := fmt.Sprintf("tail%d|/Process/%d|vampir|0.0-1.0", tailSeq.Add(1), i%8)
						if _, ok := cache.Get(k); !ok {
							cache.Put(k, hot[:1], time.Millisecond)
						}
					} else if _, ok := cache.Get(hotKeys[i%len(hotKeys)]); !ok {
						b.Fatal("hot key missed")
					}
					i++
				}
			})
		})
	}
}

// BenchmarkGSISignVerify measures the security extension's per-request
// cost: header signing plus verification.
func BenchmarkGSISignVerify(b *testing.B) {
	authority, err := gsi.NewAuthority([]byte("bench-master"))
	if err != nil {
		b.Fatal(err)
	}
	cred, err := authority.Issue("bench@pdx.edu")
	if err != nil {
		b.Fatal(err)
	}
	verifier := gsi.NewVerifier(authority)
	provider := cred.HeaderProvider()
	params := []string{"gflops", "0", "132.5", "hpl"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := &soap.Request{Operation: "getPR", Params: params, Headers: provider("getPR", params)}
		if _, err := verifier.Verify(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinidbBatch pits the vectorized NextBatch scan against the
// retained row-at-a-time iterator on the star fact-table join — the
// per-row []Value allocation the cold-path overhaul removes.
func BenchmarkMinidbBatch(b *testing.B) {
	db := minidb.NewDatabase()
	d := datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8, Seed: 1})
	if err := datagen.LoadStarSchema(db, d); err != nil {
		b.Fatal(err)
	}
	for _, ix := range mapping.StarIndexes {
		if err := db.CreateIndex(ix[0], ix[1]); err != nil {
			b.Fatal(err)
		}
	}
	st, err := db.Prepare("SELECT f.path, r.starttime, r.endtime, r.value, r.typeid " +
		"FROM results r JOIN foci f ON r.fociid = f.fociid WHERE r.execid = ? AND r.metricid = ?")
	if err != nil {
		b.Fatal(err)
	}
	args := []minidb.Value{minidb.Text("1"), minidb.Int(1)}
	b.Run("RowAtATime", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := st.QueryStream(args...)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rows.Next() {
				n += len(rows.Row())
			}
			rows.Close()
			if rows.Err() != nil || n == 0 {
				b.Fatal(rows.Err(), n)
			}
		}
	})
	b.Run("NextBatch", func(b *testing.B) {
		batch := minidb.NewBatch()
		defer batch.Release()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := st.QueryStream(args...)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rows.NextBatch(batch, 0) {
				n += batch.Rows() * batch.Cols()
			}
			rows.Close()
			if rows.Err() != nil || n == 0 {
				b.Fatal(rows.Err(), n)
			}
		}
	})
}

// BenchmarkColdGetPR measures one cold (cache-off) getPR through the
// Execution service's wire encode per store shape: the vectorized
// zero-intermediate path (batch decode into a pooled arena, results
// streamed straight into the envelope buffer) against the retained
// row-at-a-time/string oracle. This is the workload BENCH_PR5.json
// records; allocs/op is the headline number.
func BenchmarkColdGetPR(b *testing.B) {
	shapes := []struct {
		name  string
		build func() (mapping.ApplicationWrapper, string, perfdata.Query, error)
	}{
		{"HPL", func() (mapping.ApplicationWrapper, string, perfdata.Query, error) {
			d := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: 1})
			w, err := mapping.NewWideTable(d)
			return w, d.Execs[0].ID, perfdata.Query{Metric: "gflops", Time: d.Execs[0].Time, Type: "hpl"}, err
		}},
		{"RMA", func() (mapping.ApplicationWrapper, string, perfdata.Query, error) {
			d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 12, MessageSizes: 20, Seed: 1})
			w, err := mapping.NewFlatFile(d)
			return w, d.Execs[0].ID, perfdata.Query{Metric: "bandwidth", Time: d.Execs[0].Time, Type: "presta"}, err
		}},
		{"SMG98", func() (mapping.ApplicationWrapper, string, perfdata.Query, error) {
			d := datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8, Seed: 1})
			w, err := mapping.NewStar(d)
			return w, d.Execs[0].ID, perfdata.Query{Metric: "func_calls", Time: d.Execs[0].Time, Type: "vampir"}, err
		}},
	}
	for _, shape := range shapes {
		w, id, q, err := shape.build()
		if err != nil {
			b.Fatal(err)
		}
		ew, err := w.ExecutionWrapper(id)
		if err != nil {
			b.Fatal(err)
		}
		svc := core.NewExecutionService(id, ew, nil, nil)
		params := q.WireParams()
		b.Run(shape.name+"/oracle", func(b *testing.B) {
			core.SetRowOracle(true)
			defer core.SetRowOracle(false)
			buf := soap.GetBuffer()
			defer soap.PutBuffer(buf)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				returns, err := svc.Invoke(core.OpGetPR, params)
				if err != nil {
					b.Fatal(err)
				}
				if err := soap.EncodeResponseTo(buf, core.OpGetPR, nil, returns); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(shape.name+"/vectorized", func(b *testing.B) {
			buf := soap.GetBuffer()
			defer soap.PutBuffer(buf)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				took, err := svc.InvokeRawTo(core.OpGetPR, params, buf)
				if err != nil || !took {
					b.Fatal(took, err)
				}
			}
		})
	}
}

// BenchmarkScaleEngine measures the million-row engine paths on a
// reduced (10^5-row) scale star schema: ordered-index range probes and
// the ORDER BY+LIMIT ordered walk against the naive full-scan executor,
// plus the hot point-query path the open-loop harness drives. The full
// 10^6-row acceptance numbers come from pperfgrid-bench -scale-bench.
func BenchmarkScaleEngine(b *testing.B) {
	db := minidb.NewDatabase()
	scale, err := datagen.LoadScaleStar(db, datagen.ScaleConfig{
		Executions: 100, ResultsPerExec: 1000, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := mapping.DeclareStarIndexes(db); err != nil {
		b.Fatal(err)
	}
	lo, hi := scale.TimeWindow(scale.Executions / 3)
	rangeSQL := fmt.Sprintf(
		"SELECT execid, starttime, value FROM results WHERE starttime >= %g AND starttime <= %g", lo, hi)
	const topkSQL = "SELECT execid, starttime, value FROM results ORDER BY value DESC LIMIT 10"
	if _, err := db.Query(rangeSQL); err != nil { // warm the lazy indexes
		b.Fatal(err)
	}
	if _, err := db.Query(topkSQL); err != nil {
		b.Fatal(err)
	}

	b.Run("RangeProbe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(rangeSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TopKWalk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(topkSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveRangeScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryNaive(rangeSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveTopKSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryNaive(topkSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HotPointStream", func(b *testing.B) {
		stmt, err := db.Prepare("SELECT starttime, value FROM results WHERE execid = ?")
		if err != nil {
			b.Fatal(err)
		}
		id := minidb.Text(scale.ExecID(scale.Executions / 2))
		batch := minidb.NewBatch()
		defer batch.Release()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := stmt.QueryStream(id)
			if err != nil {
				b.Fatal(err)
			}
			for rows.NextBatch(batch, 0) {
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			rows.Close()
		}
	})
}
