// Integration tests exercising whole-system behaviour across packages:
// multi-site federation, cross-format consistency over the wire, failure
// injection, and lifetime management under live clients. Unit and per-
// package integration tests live next to their packages; these cover the
// seams between them.
package pperfgrid_test

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/compare"
	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/registry"
	"pperfgrid/internal/soap"
)

// startRegistry stands up a registry container and returns its host plus a
// publisher client.
func startRegistry(t *testing.T) (string, *registry.Client) {
	t.Helper()
	cont := container.New(ogsi.NewHosting("pending:0"), container.Options{})
	if err := cont.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cont.Close() })
	if _, err := registry.Deploy(cont.Hosting(), registry.New()); err != nil {
		t.Fatal(err)
	}
	return cont.Host(), registry.Connect(cont.Host())
}

func publish(t *testing.T, pub *registry.Client, org string, site *core.Site, name string) {
	t.Helper()
	if err := pub.PublishOrganization(registry.Organization{Name: org, Contact: org + "@example.org"}); err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishService(registry.ServiceEntry{
		Organization: org, Name: name, FactoryHandle: site.ApplicationFactoryHandle().String(),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFederationConcurrentClients runs the full data grid — registry plus
// three heterogeneous sites — under eight concurrent analyst sessions.
func TestFederationConcurrentClients(t *testing.T) {
	regHost, pub := startRegistry(t)

	hplW, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 12, Seed: 71}))
	if err != nil {
		t.Fatal(err)
	}
	rmaW, err := mapping.NewFlatFile(datagen.PrestaRMA(datagen.RMAConfig{Executions: 4, MessageSizes: 6, Seed: 71}))
	if err != nil {
		t.Fatal(err)
	}
	smgW, err := mapping.NewStar(datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 4, Seed: 71}))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []struct {
		org, name string
		w         mapping.ApplicationWrapper
	}{
		{"PSU", "HPL", hplW}, {"LLNL", "RMA", rmaW}, {"UO", "SMG98", smgW},
	} {
		site, err := core.StartSite(core.SiteConfig{AppName: s.name, Wrappers: []mapping.ApplicationWrapper{s.w}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(site.Close)
		publish(t, pub, s.org, site, s.name)
	}

	headline := map[string]perfdata.Query{
		"HPL":   {Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"},
		"RMA":   {Metric: "bandwidth", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "presta"},
		"SMG98": {Metric: "func_calls", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "vampir"},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := client.New(regHost)
			orgs, err := c.DiscoverOrganizations("")
			if err != nil || len(orgs) != 3 {
				t.Errorf("worker %d: orgs = %d, %v", w, len(orgs), err)
				return
			}
			for _, o := range orgs {
				svcs, err := c.DiscoverServices(o.Name)
				if err != nil || len(svcs) != 1 {
					t.Errorf("worker %d: services of %s: %v", w, o.Name, err)
					return
				}
				b, err := c.Bind(svcs[0])
				if err != nil {
					t.Errorf("worker %d: bind %s: %v", w, svcs[0].Name, err)
					return
				}
				execs, err := b.QueryExecutions(nil)
				if err != nil || len(execs) == 0 {
					t.Errorf("worker %d: executions of %s: %v", w, svcs[0].Name, err)
					return
				}
				results := client.QueryPerformanceResults(execs, headline[svcs[0].Name], client.ParallelOptions{})
				for _, r := range results {
					if r.Err != nil {
						t.Errorf("worker %d: getPR %s: %v", w, svcs[0].Name, r.Err)
						return
					}
					if len(r.Results) == 0 {
						t.Errorf("worker %d: empty results from %s", w, svcs[0].Name)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCrossFormatConsistencyOverWire serves the same dataset from three
// store formats through three live sites and requires byte-identical getPR
// answers at the client.
func TestCrossFormatConsistencyOverWire(t *testing.T) {
	d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 3, MessageSizes: 5, Seed: 72})
	flatW, err := mapping.NewFlatFile(d)
	if err != nil {
		t.Fatal(err)
	}
	xmlW, err := mapping.NewXML(d)
	if err != nil {
		t.Fatal(err)
	}
	starW, err := mapping.NewStar(d)
	if err != nil {
		t.Fatal(err)
	}

	answers := map[string][]string{}
	for name, w := range map[string]mapping.ApplicationWrapper{"flat": flatW, "xml": xmlW, "star": starW} {
		site, err := core.StartSite(core.SiteConfig{AppName: "RMA-" + name, Wrappers: []mapping.ApplicationWrapper{w}})
		if err != nil {
			t.Fatal(err)
		}
		c := client.NewWithoutRegistry()
		b, err := c.BindFactory(name, site.ApplicationFactoryHandle())
		if err != nil {
			t.Fatal(err)
		}
		execs, err := b.QueryExecutions([]client.AttrQuery{{Attribute: "numprocesses", Value: "2"}})
		if err != nil || len(execs) == 0 {
			t.Fatalf("%s: executions: %v", name, err)
		}
		rs, err := execs[0].PerformanceResults(perfdata.Query{
			Metric: "latency", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "presta",
		})
		if err != nil {
			t.Fatalf("%s: getPR: %v", name, err)
		}
		enc := perfdata.EncodeResults(rs)
		sort.Strings(enc)
		answers[name] = enc
		site.Close()
	}
	if !reflect.DeepEqual(answers["flat"], answers["xml"]) {
		t.Error("flat and xml answers differ")
	}
	if !reflect.DeepEqual(answers["flat"], answers["star"]) {
		t.Error("flat and star answers differ")
	}
	if len(answers["flat"]) == 0 {
		t.Error("empty answers")
	}
}

// TestSiteFailureSurfacesToClient kills a site mid-session: in-flight
// bindings fail with transport errors, the registry entry can be retired,
// and the remaining grid keeps serving.
func TestSiteFailureSurfacesToClient(t *testing.T) {
	regHost, pub := startRegistry(t)
	mk := func(name string, seed int64) *core.Site {
		w, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 4, Seed: seed}))
		if err != nil {
			t.Fatal(err)
		}
		site, err := core.StartSite(core.SiteConfig{AppName: name, Wrappers: []mapping.ApplicationWrapper{w}})
		if err != nil {
			t.Fatal(err)
		}
		return site
	}
	doomed := mk("HPL-doomed", 73)
	survivor := mk("HPL-live", 74)
	t.Cleanup(survivor.Close)
	publish(t, pub, "doomed", doomed, "HPL-doomed")
	publish(t, pub, "live", survivor, "HPL-live")

	c := client.New(regHost)
	svcs, err := c.DiscoverServices("doomed")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Bind(svcs[0])
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}

	doomed.Close() // the site goes away

	// In-flight references now fail with transport errors, not hangs.
	if _, err := execs[0].Metrics(); err == nil {
		t.Error("call to dead site succeeded")
	}
	if _, err := b.NumExecs(); err == nil {
		t.Error("binding to dead site succeeded")
	}

	// The grid operator retires the entry; discovery now shows one site.
	if err := pub.RemoveOrganization("doomed"); err != nil {
		t.Fatal(err)
	}
	orgs, err := c.DiscoverOrganizations("")
	if err != nil || len(orgs) != 1 || orgs[0].Name != "live" {
		t.Fatalf("after retirement: %+v, %v", orgs, err)
	}

	// The survivor still answers.
	svcs, _ = c.DiscoverServices("live")
	lb, err := c.Bind(svcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if n, err := lb.NumExecs(); err != nil || n != 4 {
		t.Errorf("survivor NumExecs = %d, %v", n, err)
	}
}

// TestLifetimeExpiryUnderClient exercises OGSI soft-state lifetime end to
// end: a client sets a short termination time, the sweeper destroys the
// instance, subsequent calls fault, and the Manager can re-create it.
func TestLifetimeExpiryUnderClient(t *testing.T) {
	w, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: 75}))
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	hosting := site.Containers()[0].Hosting()
	stopSweeper := hosting.StartSweeper(5 * time.Millisecond)
	defer stopSweeper()

	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	exec := execs[0]
	if _, err := exec.Call(ogsi.OpSetTerminationTime, "+0.01"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := exec.Metrics(); err != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, err = exec.Metrics()
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("expired instance: want fault, got %v", err)
	}

	// The Manager still holds the stale GSH; Forget + re-query yields a
	// fresh live instance.
	info := staleExecID(t, exec.Handle)
	site.Manager().Forget(info)
	execs2, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	var fresh *client.ExecutionRef
	for _, e := range execs2 {
		if _, err := e.Metrics(); err == nil {
			fresh = e
			break
		}
	}
	if fresh == nil {
		t.Fatal("no live instance after re-query")
	}
}

// staleExecID recovers the execution ID for a handle via the site's
// original dataset ordering (IDs start at 100).
func staleExecID(t *testing.T, h gsh.Handle) string {
	t.Helper()
	// The first-created Execution instance maps to the first execution ID.
	if h.InstanceID == "" {
		t.Fatal("empty instance ID")
	}
	return "100"
}

// TestCompareAcrossSites runs the analysis layer over executions drawn
// from two different sites — comparative profiling across organizations.
func TestCompareAcrossSites(t *testing.T) {
	mkSite := func(seed int64) (*core.Site, *client.Binding) {
		w, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 6, Seed: seed}))
		if err != nil {
			t.Fatal(err)
		}
		site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(site.Close)
		c := client.NewWithoutRegistry()
		b, err := c.BindFactory(fmt.Sprintf("site-%d", seed), site.ApplicationFactoryHandle())
		if err != nil {
			t.Fatal(err)
		}
		return site, b
	}
	_, b1 := mkSite(76)
	_, b2 := mkSite(77)

	var all []*client.ExecutionRef
	for _, b := range []*client.Binding{b1, b2} {
		execs, err := b.QueryExecutions(nil)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, execs...)
	}
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	obs, err := compare.Collect(all, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 12 {
		t.Fatalf("observations = %d", len(obs))
	}
	sources := map[string]int{}
	for _, o := range obs {
		sources[o.Source]++
	}
	if len(sources) != 2 {
		t.Errorf("sources = %v", sources)
	}
	points, err := compare.ScalingStudy(obs, "numprocesses", compare.Throughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Errorf("points = %+v", points)
	}
}

// TestRegistryHandlesSurviveRestart snapshots a populated registry,
// simulates a restart via Restore, and verifies a client can still bind
// through the restored entries.
func TestRegistryHandlesSurviveRestart(t *testing.T) {
	w, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: 78}))
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)

	first := registry.New()
	if err := first.PublishOrganization(registry.Organization{Name: "PSU"}); err != nil {
		t.Fatal(err)
	}
	if err := first.PublishService(registry.ServiceEntry{
		Organization: "PSU", Name: "HPL", FactoryHandle: site.ApplicationFactoryHandle().String(),
	}); err != nil {
		t.Fatal(err)
	}
	data, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := registry.Restore(data)
	if err != nil {
		t.Fatal(err)
	}

	// Host the restored registry in a fresh container ("after restart").
	cont := container.New(ogsi.NewHosting("pending:0"), container.Options{})
	if err := cont.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cont.Close() })
	if _, err := registry.Deploy(cont.Hosting(), restored); err != nil {
		t.Fatal(err)
	}

	c := client.New(cont.Host())
	svcs, err := c.DiscoverServices("PSU")
	if err != nil || len(svcs) != 1 {
		t.Fatalf("services: %v, %v", svcs, err)
	}
	b, err := c.Bind(svcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if n, err := b.NumExecs(); err != nil || n != 2 {
		t.Errorf("NumExecs through restored registry = %d, %v", n, err)
	}
}

// TestWSDLIntrospectionOverWire fetches a live Execution instance's
// definition and verifies the client can validate calls against it — the
// WSDL2Java-stub role of the Services Layer.
func TestWSDLIntrospectionOverWire(t *testing.T) {
	w, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 79}))
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)

	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	stub := container.Dial(execs[0].Handle)
	def, err := stub.Definition()
	if err != nil {
		t.Fatal(err)
	}
	// Table 2 semantics text made it across the wire.
	op, err := def.Lookup("getPR")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(op.Doc, "Performance Results") {
		t.Errorf("getPR doc = %q", op.Doc)
	}
	if err := def.Validate("getFoci", []string{"unexpected-arg"}); err == nil {
		t.Error("definition accepted bad arity for getFoci")
	} else if err := def.Validate("getPR", []string{"m", "0", "1", "t", "/f"}); err != nil {
		t.Errorf("definition rejected valid getPR: %v", err)
	}
}
