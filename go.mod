module pperfgrid

go 1.24
