// Command pperfgrid-client is the consumer-side CLI: the programmatic
// equivalent of the paper's GUI client, covering its four panels —
// discovery (Figure 8), the Application Query Panel (Figure 9), the
// Execution Query Panel (Figure 10), and visualization (Figure 11).
//
// Usage:
//
//	# Browse the data grid.
//	pperfgrid-client -registry 127.0.0.1:9000 -list
//
//	# Query executions and chart a metric (the Figure 9-11 flow).
//	pperfgrid-client -registry 127.0.0.1:9000 -service PSU/HPL \
//	                 -query numprocesses=2 -query numprocesses=4 \
//	                 -metric gflops -type hpl
//
//	# Bind straight to a factory, skipping the registry.
//	pperfgrid-client -factory 'http://127.0.0.1:9001/ogsa/services/ApplicationFactory/0' \
//	                 -metric gflops -type hpl
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"pperfgrid/internal/client"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

type repeatedFlag []string

func (r *repeatedFlag) String() string { return strings.Join(*r, ",") }
func (r *repeatedFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var queries, foci repeatedFlag
	var (
		regHost = flag.String("registry", "", "registry host:port")
		list    = flag.Bool("list", false, "list organizations and services, then exit")
		service = flag.String("service", "", "service to bind, as ORG/NAME")
		factory = flag.String("factory", "", "Application factory GSH to bind directly")
		metric  = flag.String("metric", "", "metric for the Performance Result query")
		typ     = flag.String("type", perfdata.UndefinedType, "collector type filter")
		start   = flag.Float64("start", 0, "query start time")
		end     = flag.Float64("end", 1e12, "query end time")
		width   = flag.Int("width", 50, "chart width in characters")
	)
	flag.Var(&queries, "query", "execution query attr=value (repeatable, OR semantics)")
	flag.Var(&foci, "focus", "focus filter (repeatable)")
	flag.Parse()

	var c *client.Client
	if *regHost != "" {
		c = client.New(*regHost)
	} else {
		c = client.NewWithoutRegistry()
	}

	if *list {
		listGrid(c)
		return
	}

	binding, err := bind(c, *regHost, *service, *factory)
	if err != nil {
		log.Fatalf("pperfgrid-client: %v", err)
	}
	showApplication(binding)

	execs, err := binding.QueryExecutions(parseQueries(queries))
	if err != nil {
		log.Fatalf("pperfgrid-client: query executions: %v", err)
	}
	fmt.Printf("\n%d execution(s) matched\n", len(execs))
	if len(execs) == 0 {
		return
	}

	if *metric == "" {
		showExecutionPanel(execs[0])
		fmt.Println("\npass -metric to run a Performance Result query")
		return
	}

	q := perfdata.Query{Metric: *metric, Foci: foci, Time: perfdata.TimeRange{Start: *start, End: *end}, Type: *typ}
	results := client.QueryPerformanceResults(execs, q, client.ParallelOptions{})
	labels := make([]string, 0, len(results))
	values := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("pperfgrid-client: getPR on %s: %v", r.Exec.Handle, r.Err)
		}
		info, err := r.Exec.Info()
		if err != nil {
			log.Fatalf("pperfgrid-client: getInfo: %v", err)
		}
		id := info[0].Value
		sum := 0.0
		for _, res := range r.Results {
			sum += res.Value
		}
		labels = append(labels, id)
		if n := len(r.Results); n > 0 {
			values = append(values, sum/float64(n))
		} else {
			values = append(values, 0)
		}
	}
	fmt.Println()
	fmt.Print(viz.BarChart(fmt.Sprintf("mean %s per execution", *metric), labels, values, *width))
}

func listGrid(c *client.Client) {
	orgs, err := c.DiscoverOrganizations("")
	if err != nil {
		log.Fatalf("pperfgrid-client: %v", err)
	}
	if len(orgs) == 0 {
		fmt.Println("no organizations published")
		return
	}
	for _, o := range orgs {
		fmt.Printf("%s  (%s)  %s\n", o.Name, o.Contact, o.Description)
		svcs, err := c.DiscoverServices(o.Name)
		if err != nil {
			log.Fatalf("pperfgrid-client: %v", err)
		}
		for _, s := range svcs {
			fmt.Printf("  %s — %s\n    factory: %s\n", s.Name, s.Description, s.FactoryHandle)
		}
	}
}

func bind(c *client.Client, regHost, service, factory string) (*client.Binding, error) {
	switch {
	case factory != "":
		h, err := gsh.Parse(factory)
		if err != nil {
			return nil, err
		}
		return c.BindFactory("direct", h)
	case service != "":
		org, name, ok := strings.Cut(service, "/")
		if !ok {
			return nil, fmt.Errorf("-service must be ORG/NAME, got %q", service)
		}
		svcs, err := c.DiscoverServices(org)
		if err != nil {
			return nil, err
		}
		for _, s := range svcs {
			if s.Name == name {
				return c.Bind(s)
			}
		}
		return nil, fmt.Errorf("service %s not published by %s", name, org)
	case regHost != "":
		// Bind the first published service.
		orgs, err := c.DiscoverOrganizations("")
		if err != nil {
			return nil, err
		}
		for _, o := range orgs {
			svcs, err := c.DiscoverServices(o.Name)
			if err != nil {
				return nil, err
			}
			if len(svcs) > 0 {
				return c.Bind(svcs[0])
			}
		}
		return nil, fmt.Errorf("no services published in registry")
	}
	return nil, fmt.Errorf("need -registry, -service, or -factory")
}

func showApplication(b *client.Binding) {
	info, err := b.AppInfo()
	if err != nil {
		log.Fatalf("pperfgrid-client: getAppInfo: %v", err)
	}
	fmt.Printf("bound to %s\n", b.Key())
	for _, kv := range info {
		fmt.Printf("  %s: %s\n", kv.Name, kv.Value)
	}
	n, err := b.NumExecs()
	if err != nil {
		log.Fatalf("pperfgrid-client: getNumExecs: %v", err)
	}
	fmt.Printf("  executions available: %d\n", n)
	params, err := b.ExecQueryParams()
	if err != nil {
		log.Fatalf("pperfgrid-client: getExecQueryParams: %v", err)
	}
	fmt.Println("  queryable attributes:")
	for _, p := range params {
		vals := strings.Join(p.Values, ", ")
		if len(vals) > 60 {
			vals = vals[:57] + "..."
		}
		fmt.Printf("    %s: %s\n", p.Name, vals)
	}
}

func showExecutionPanel(e *client.ExecutionRef) {
	fmt.Printf("\nexecution %s\n", e.Handle)
	metrics, err := e.Metrics()
	if err != nil {
		log.Fatalf("pperfgrid-client: getMetrics: %v", err)
	}
	types, err := e.Types()
	if err != nil {
		log.Fatalf("pperfgrid-client: getTypes: %v", err)
	}
	tr, err := e.TimeStartEnd()
	if err != nil {
		log.Fatalf("pperfgrid-client: getTimeStartEnd: %v", err)
	}
	focusList, err := e.Foci()
	if err != nil {
		log.Fatalf("pperfgrid-client: getFoci: %v", err)
	}
	fmt.Printf("  metrics: %s\n", strings.Join(metrics, ", "))
	fmt.Printf("  types:   %s\n", strings.Join(types, ", "))
	fmt.Printf("  time:    %s\n", tr.Encode())
	if len(focusList) > 8 {
		focusList = append(focusList[:8], "...")
	}
	fmt.Printf("  foci:    %s\n", strings.Join(focusList, ", "))
}

func parseQueries(raw []string) []client.AttrQuery {
	var out []client.AttrQuery
	for _, s := range raw {
		attr, val, ok := strings.Cut(s, "=")
		if !ok {
			log.Fatalf("pperfgrid-client: -query must be attr=value, got %q", s)
		}
		out = append(out, client.AttrQuery{Attribute: attr, Value: val})
	}
	return out
}
