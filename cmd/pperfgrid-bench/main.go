// Command pperfgrid-bench regenerates the paper's evaluation: Table 4
// (grid services overhead), Table 5 (Performance Results caching), and
// Figure 12 (scalability), plus the ablation studies DESIGN.md lists. Each
// report prints the measured values next to the paper's and runs shape
// checks on the qualitative relationships.
//
// Usage:
//
//	pperfgrid-bench -all            # every table, figure, and ablation
//	pperfgrid-bench -table 4        # just Table 4
//	pperfgrid-bench -table 5
//	pperfgrid-bench -figure 12
//	pperfgrid-bench -ablations
//	pperfgrid-bench -all -quick     # reduced sample sizes for smoke runs
//	pperfgrid-bench -all -scale 0.02  # heavier Mapping-Layer calibration
//
// The scale-out ablation is runnable standalone through the flag pair:
//
//	pperfgrid-bench -figure 12 -policy interleave,least-loaded -replicas 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/experiment"
)

func main() {
	var (
		table     = flag.Int("table", 0, "reproduce one table: 4 or 5")
		figure    = flag.Int("figure", 0, "reproduce one figure: 12")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		all       = flag.Bool("all", false, "run everything")
		quick     = flag.Bool("quick", false, "reduced sample sizes")
		scale     = flag.Float64("scale", 0.01, "Mapping-Layer calibration scale (fraction of the paper's latencies)")
		seed      = flag.Int64("seed", 1, "dataset generator seed")
		policy    = flag.String("policy", "", "comma-separated replica policies for Figure 12 and the policy ablation ("+strings.Join(core.AllPolicyNames, ", ")+"); unset means interleave for Figure 12 and every policy for the ablation")
		replicas  = flag.String("replicas", "1,2,4,8", "comma-separated replica host counts: Figure 12's scale-out axis; the policy ablation uses the largest")
	)
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && !*ablations {
		flag.Usage()
		os.Exit(2)
	}

	policies := splitList(*policy)
	for _, p := range policies {
		if _, err := core.PolicyByName(p); err != nil {
			log.Fatalf("pperfgrid-bench: %v", err)
		}
	}
	hostCounts, err := parseInts(*replicas)
	if err != nil {
		log.Fatalf("pperfgrid-bench: -replicas: %v", err)
	}

	cfg := experiment.Config{Scale: *scale, Seed: *seed}
	if *quick {
		cfg.SMG98 = datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8}
	}
	failed := false

	if *all || *table == 4 {
		runStep("Table 4 (grid services overhead)", func() (shaped, error) {
			t4 := experiment.Table4Config{Config: cfg}
			if *quick {
				t4.QueriesPerSource = 10
			}
			return experiment.RunTable4(t4)
		}, &failed)
	}
	if *all || *table == 5 {
		runStep("Table 5 (Performance Results caching)", func() (shaped, error) {
			t5 := experiment.Table5Config{Config: cfg}
			if *quick {
				t5.QueriesPerRun = 10
			}
			return experiment.RunTable5(t5)
		}, &failed)
	}
	if *all || *figure == 12 {
		runStep("Figure 12 (scalability)", func() (shaped, error) {
			f12 := experiment.Figure12Config{Config: cfg, HostCounts: hostCounts}
			if *quick {
				f12.ExecutionCounts = []int{2, 8, 32}
				f12.Repeats = 5
				f12.BatchRuns = 2
			}
			return experiment.RunFigure12Sweep(f12, policies)
		}, &failed)
	}
	if *all || *ablations {
		runAblations(cfg, *quick, policies, maxInt(hostCounts, 2))
	}
	if failed {
		log.Fatal("pperfgrid-bench: one or more shape checks FAILED")
	}
}

// shaped is any report that can render itself and check the paper's shape.
type shaped interface {
	Render() string
	ShapeOK() bool
}

func runStep(name string, run func() (shaped, error), failed *bool) {
	fmt.Printf("=== %s ===\n", name)
	start := time.Now()
	report, err := run()
	if err != nil {
		log.Fatalf("pperfgrid-bench: %s: %v", name, err)
	}
	fmt.Print(report.Render())
	fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	if !report.ShapeOK() {
		*failed = true
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad replica count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// maxInt returns the largest element, or fallback for an empty list.
func maxInt(xs []int, fallback int) int {
	out := fallback
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}

func runAblations(cfg experiment.Config, quick bool, policies []string, replicas int) {
	fmt.Println("=== Ablations ===")

	counts := []int{1, 10, 100, 1000}
	rounds := 50
	if quick {
		counts = []int{1, 10, 100}
		rounds = 10
	}
	points, err := experiment.RunSOAPOverheadSweep(counts, 64, rounds)
	if err != nil {
		log.Fatalf("pperfgrid-bench: soap sweep: %v", err)
	}
	fmt.Print(experiment.RenderSOAPOverhead(points))
	fmt.Println()

	codecPoints, err := experiment.RunTransportCodecSweep(counts, 64, rounds)
	if err != nil {
		log.Fatalf("pperfgrid-bench: transport codec sweep: %v", err)
	}
	fmt.Print(experiment.RenderTransportCodecSweep(codecPoints))
	fmt.Println()

	t4 := experiment.Table4Config{Config: cfg}
	if quick {
		t4.QueriesPerSource = 5
	}
	transportReport, err := experiment.RunTransportTable4(t4)
	if err != nil {
		log.Fatalf("pperfgrid-bench: transport table4: %v", err)
	}
	fmt.Print(transportReport.Render())
	fmt.Println()

	execs, repeats := 32, 5
	if quick {
		execs, repeats = 8, 2
	}
	policyRows, err := experiment.RunPolicyAblation(cfg, policies, replicas, execs, repeats)
	if err != nil {
		log.Fatalf("pperfgrid-bench: policy ablation: %v", err)
	}
	fmt.Print(experiment.RenderPolicyAblation(policyRows, replicas))
	fmt.Println()

	capacity, queries := 8, 300
	if quick {
		capacity, queries = 4, 60
	}
	cacheRows, err := experiment.RunCachePolicyAblation(cfg, capacity, queries)
	if err != nil {
		log.Fatalf("pperfgrid-bench: cache ablation: %v", err)
	}
	fmt.Print(experiment.RenderCachePolicyAblation(cacheRows))
	fmt.Println()

	nq := 50
	if quick {
		nq = 10
	}
	bypassRows, err := experiment.RunLocalBypass(cfg, nq)
	if err != nil {
		log.Fatalf("pperfgrid-bench: local bypass: %v", err)
	}
	fmt.Print(experiment.RenderLocalBypass(bypassRows))
	fmt.Println()

	fan := []int{1, 8, 32}
	if quick {
		fan = []int{1, 8}
	}
	fanPoints, err := experiment.RunNotificationFanout(fan)
	if err != nil {
		log.Fatalf("pperfgrid-bench: fanout: %v", err)
	}
	fmt.Print(experiment.RenderNotificationFanout(fanPoints))
	fmt.Println()

	fq := 50
	if quick {
		fq = 10
	}
	formatRows, err := experiment.RunStoreFormatComparison(cfg, fq)
	if err != nil {
		log.Fatalf("pperfgrid-bench: store formats: %v", err)
	}
	fmt.Print(experiment.RenderStoreFormats(formatRows))
	fmt.Println()

	qmExecs, qmRounds := 64, 3
	if quick {
		qmExecs, qmRounds = 8, 2
	}
	qmRows, err := experiment.RunQueryModels(cfg, qmExecs, qmRounds)
	if err != nil {
		log.Fatalf("pperfgrid-bench: query models: %v", err)
	}
	fmt.Print(experiment.RenderQueryModels(qmRows, qmExecs))
	fmt.Println()
}
