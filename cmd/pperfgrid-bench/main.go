// Command pperfgrid-bench regenerates the paper's evaluation: Table 4
// (grid services overhead), Table 5 (Performance Results caching), and
// Figure 12 (scalability), plus the ablation studies DESIGN.md lists. Each
// report prints the measured values next to the paper's and runs shape
// checks on the qualitative relationships.
//
// Usage:
//
//	pperfgrid-bench -all            # every table, figure, and ablation
//	pperfgrid-bench -table 4        # just Table 4
//	pperfgrid-bench -table 5
//	pperfgrid-bench -figure 12
//	pperfgrid-bench -ablations
//	pperfgrid-bench -all -quick     # reduced sample sizes for smoke runs
//	pperfgrid-bench -all -scale 0.02  # heavier Mapping-Layer calibration
//
// The scale-out ablation is runnable standalone through the flag pair:
//
//	pperfgrid-bench -figure 12 -policy interleave,least-loaded -replicas 1,2,4,8
//
// The concurrent cache evaluation (the sharded-vs-single-lock Table 5) is
// parameterized by -cache-policy, -cache-bytes, and -readers, and runs
// standalone — with a machine-readable record for the perf-trajectory
// artifact — via:
//
//	pperfgrid-bench -cache-bench -readers 1,4,16,64 -bench-json BENCH_PR4.json
//
// The cold-path evaluation — one cold (cache-off) getPR per store shape,
// vectorized wire path vs the retained row/string oracle, with ns/op,
// B/op, and allocs/op from the testing harness — runs via:
//
//	pperfgrid-bench -cold-bench -bench-json BENCH_PR5.json
//
// The million-row engine evaluation — open-loop latency-vs-offered-load
// curves over the scale star schema plus the indexed-vs-naive range and
// top-k speedups, every scenario differentially gated against the naive
// executor — runs via:
//
//	pperfgrid-bench -scale-bench -bench-json BENCH_PR6.json
//	pperfgrid-bench -scale-bench -quick     # reduced rows, for CI smoke
//
// The mixed read/write evaluation — live ingestion (PublishResults with
// epoch-versioned cache invalidation) running beside hot getPR readers,
// at 95/5 and 50/50 reader/writer mixes, with throughput retention
// against the read-only baseline — runs via:
//
//	pperfgrid-bench -mixed-bench -bench-json BENCH_PR7.json
//	pperfgrid-bench -mixed-bench -quick     # reduced ops, for CI smoke
//
// The federated scatter-gather evaluation — the Figure 12 successor for
// the federation layer: live heterogeneous fleets of 2/4/8 sites under
// an emulated WAN (seeded per-site latency, jitter, and failure
// injection), measuring completeness, goodput, and the p50/p99 tail the
// hedging/retry/breaker machinery delivers — runs via:
//
//	pperfgrid-bench -federation-bench -bench-json BENCH_PR8.json
//	pperfgrid-bench -federation-bench -quick  # reduced cells, for CI smoke
//
// The C10k front-door evaluation — an open-loop soak over real loopback
// sockets against one admission-controlled site, sweeping the
// connection axis into the thousands and reporting goodput, shed rate,
// latency percentiles, server-side shed fast-path latency, and the
// post-drain leak accounting — runs via:
//
//	pperfgrid-bench -soak-bench -bench-json BENCH_PR9.json
//	pperfgrid-bench -soak-bench -quick      # 256 sockets, for CI smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/experiment"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

func main() {
	var (
		table     = flag.Int("table", 0, "reproduce one table: 4 or 5")
		figure    = flag.Int("figure", 0, "reproduce one figure: 12")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		all       = flag.Bool("all", false, "run everything")
		quick     = flag.Bool("quick", false, "reduced sample sizes")
		scale     = flag.Float64("scale", 0.01, "Mapping-Layer calibration scale (fraction of the paper's latencies)")
		seed      = flag.Int64("seed", 1, "dataset generator seed")
		policy    = flag.String("policy", "", "comma-separated replica policies for Figure 12 and the policy ablation ("+strings.Join(core.AllPolicyNames, ", ")+"); unset means interleave for Figure 12 and every policy for the ablation")
		replicas  = flag.String("replicas", "1,2,4,8", "comma-separated replica host counts: Figure 12's scale-out axis; the policy ablation uses the largest")

		cacheBench  = flag.Bool("cache-bench", false, "run only the concurrent cache evaluation (non-fatal shape checks, for CI smoke)")
		coldBench   = flag.Bool("cold-bench", false, "run only the cold-path getPR evaluation (ns/op, B/op, allocs/op per store shape; vectorized vs row/string oracle)")
		scaleBench  = flag.Bool("scale-bench", false, "run only the million-row engine evaluation (open-loop load curves + indexed-vs-naive speedups)")
		mixedBench  = flag.Bool("mixed-bench", false, "run only the mixed read/write evaluation (live ingestion beside hot readers; throughput retention vs read-only)")
		fedBench    = flag.Bool("federation-bench", false, "run only the federated scatter-gather evaluation (sites x WAN latency x failure rate; completeness, goodput, tail latency)")
		durBench    = flag.Bool("durability-bench", false, "run only the durable-engine evaluation (disk vs memory query sweep, zone-map + group-commit ablations, recovery curve)")
		soakBench   = flag.Bool("soak-bench", false, "run only the C10k front-door soak (real loopback sockets x offered load; goodput, shed rate, shed fast-path latency, drain leak check)")
		cachePolicy = flag.String("cache-policy", "cost", "cache replacement policy for the concurrent Table 5 and byte-budget ablation (lru, lfu, cost)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "cache byte budget; > 0 budgets the sharded cache in the concurrent Table 5 and sets the byte-ablation budget")
		readers     = flag.String("readers", "1,4,16,64", "comma-separated reader counts for the concurrent Table 5")
		benchJSON   = flag.String("bench-json", "", "write the concurrent cache results as machine-readable JSON to this path")
	)
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && !*ablations && !*cacheBench && !*coldBench && !*scaleBench && !*mixedBench && !*fedBench && !*soakBench && !*durBench {
		flag.Usage()
		os.Exit(2)
	}

	policies := splitList(*policy)
	for _, p := range policies {
		if _, err := core.PolicyByName(p); err != nil {
			log.Fatalf("pperfgrid-bench: %v", err)
		}
	}
	hostCounts, err := parseInts(*replicas)
	if err != nil {
		log.Fatalf("pperfgrid-bench: -replicas: %v", err)
	}
	readerCounts, err := parseInts(*readers)
	if err != nil {
		log.Fatalf("pperfgrid-bench: -readers: %v", err)
	}

	cfg := experiment.Config{Scale: *scale, Seed: *seed}
	if *quick {
		cfg.SMG98 = datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8}
	}
	t5c := experiment.Table5ConcurrentConfig{
		Config:     cfg,
		Readers:    readerCounts,
		CacheBytes: *cacheBytes,
	}
	t5c.CachePolicy = *cachePolicy
	if *quick {
		t5c.Entries = 2048
		t5c.OpsPerReader = 4000
	}

	if *cacheBench {
		runCacheBench(t5c, cfg, *quick, *cacheBytes, *benchJSON)
		return
	}
	if *coldBench {
		runColdBench(*seed, *quick, *benchJSON)
		return
	}
	if *scaleBench {
		runScaleBench(*seed, *quick, *benchJSON)
		return
	}
	if *mixedBench {
		runMixedBench(cfg, *cachePolicy, readerCounts, *quick, *benchJSON)
		return
	}
	if *fedBench {
		runFederationBench(*seed, *quick, *benchJSON)
		return
	}
	if *soakBench {
		runSoakBench(*seed, *quick, *benchJSON)
		return
	}
	if *durBench {
		runDurabilityBench(*seed, *quick, *benchJSON)
		return
	}
	failed := false

	if *all || *table == 4 {
		runStep("Table 4 (grid services overhead)", func() (shaped, error) {
			t4 := experiment.Table4Config{Config: cfg}
			if *quick {
				t4.QueriesPerSource = 10
			}
			return experiment.RunTable4(t4)
		}, &failed)
	}
	if *all || *table == 5 {
		runStep("Table 5 (Performance Results caching)", func() (shaped, error) {
			t5 := experiment.Table5Config{Config: cfg}
			if *quick {
				t5.QueriesPerRun = 10
			}
			return experiment.RunTable5(t5)
		}, &failed)
		runStep("Table 5 (concurrent cache: single-lock vs sharded)", func() (shaped, error) {
			return experiment.RunTable5Concurrent(t5c)
		}, &failed)
	}
	if *all || *figure == 12 {
		runStep("Figure 12 (scalability)", func() (shaped, error) {
			f12 := experiment.Figure12Config{Config: cfg, HostCounts: hostCounts}
			if *quick {
				f12.ExecutionCounts = []int{2, 8, 32}
				f12.Repeats = 5
				f12.BatchRuns = 2
			}
			return experiment.RunFigure12Sweep(f12, policies)
		}, &failed)
	}
	if *all || *ablations {
		runAblations(cfg, *quick, policies, maxInt(hostCounts, 2), *cacheBytes)
	}
	if failed {
		log.Fatal("pperfgrid-bench: one or more shape checks FAILED")
	}
}

// cacheMicroRow is one single-reader cache-hit micro-measurement, taken
// through testing.Benchmark so ns/op, B/op, and allocs/op land in the
// perf-trajectory record.
type cacheMicroRow struct {
	Impl        string  `json:"impl"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// cacheBenchRecord is the BENCH_PR4.json schema: the concurrent Table 5
// rows, derived speedups, single-reader hit micro-benchmarks, and the
// byte-budget ablation.
type cacheBenchRecord struct {
	Record            string                             `json:"record"`
	Workload          string                             `json:"workload"`
	Concurrent        *experiment.Table5ConcurrentReport `json:"concurrentTable5"`
	SpeedupByReaders  map[string]float64                 `json:"shardedSpeedupByReaders"`
	SingleReaderRatio float64                            `json:"shardedSingleReaderThroughputRatio"`
	Micro             []cacheMicroRow                    `json:"singleReaderHitMicro"`
	ServiceMicro      []cacheMicroRow                    `json:"singleReaderServiceHitMicro"`
	ByteBudget        []experiment.CacheBytesRow         `json:"byteBudgetAblation"`
}

// runCacheBench runs the concurrent cache evaluation standalone: the
// concurrent Table 5, the single-reader hit micro-benchmarks, and the
// byte-budget ablation. Shape checks print but never fail the process
// (this mode is the CI smoke step; the host's core count decides how
// much concurrency the measurement can really show).
func runCacheBench(t5c experiment.Table5ConcurrentConfig, cfg experiment.Config, quick bool, cacheBytes int64, jsonPath string) {
	fmt.Println("=== Concurrent cache evaluation ===")
	report, err := experiment.RunTable5Concurrent(t5c)
	if err != nil {
		log.Fatalf("pperfgrid-bench: concurrent table 5: %v", err)
	}
	fmt.Print(report.Render())
	fmt.Println()

	micro := cacheHitMicro()
	fmt.Println("Single-reader cache-hit micro (warmed Get):")
	for _, m := range micro {
		fmt.Printf("  %-12s %10.1f ns/op  %6d B/op  %4d allocs/op\n", m.Impl, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	fmt.Println()

	serviceMicro, err := serviceHitMicro()
	if err != nil {
		log.Fatalf("pperfgrid-bench: service hit micro: %v", err)
	}
	fmt.Println("Single-reader hot read path (warmed ExecutionService.PerformanceResults):")
	for _, m := range serviceMicro {
		fmt.Printf("  %-12s %10.1f ns/op  %6d B/op  %4d allocs/op\n", m.Impl, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	fmt.Println()

	queries := 300
	if quick {
		queries = 60
	}
	bytesRows, err := experiment.RunCacheBytesAblation(cfg, cacheBytes, queries)
	if err != nil {
		log.Fatalf("pperfgrid-bench: cache bytes ablation: %v", err)
	}
	fmt.Print(experiment.RenderCacheBytesAblation(bytesRows))

	if jsonPath == "" {
		return
	}
	rec := cacheBenchRecord{
		Record:           "PR4 cache overhaul perf trajectory",
		Workload:         "SMG98-shaped hot set + tail eviction churn",
		Concurrent:       report,
		SpeedupByReaders: map[string]float64{},
		Micro:            micro,
		ServiceMicro:     serviceMicro,
		ByteBudget:       bytesRows,
	}
	for _, row := range report.Rows {
		if row.Impl == "sharded" {
			rec.SpeedupByReaders[strconv.Itoa(row.Readers)] = report.SpeedupAt(row.Readers)
		}
	}
	rec.SingleReaderRatio = report.SpeedupAt(1)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("pperfgrid-bench: marshal bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatalf("pperfgrid-bench: write %s: %v", jsonPath, err)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

// cacheHitMicro measures the single-reader warmed-Get hit path per
// implementation with the testing harness (so allocation counts are
// exact).
func cacheHitMicro() []cacheMicroRow {
	payload := make([]perfdata.Result, 64)
	for i := range payload {
		payload[i] = perfdata.Result{
			Metric: "func_calls", Focus: fmt.Sprintf("/Process/%d", i), Type: "vampir",
			Time: perfdata.TimeRange{Start: 0, End: 1}, Value: float64(i),
		}
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("func_calls|/Process/%d|vampir|0.0-132.5", i)
	}
	var out []cacheMicroRow
	for _, impl := range []string{"single-lock", "sharded"} {
		// Unbounded: the hit path is identical and no shard imbalance can
		// evict a warmed key out from under the measurement.
		c := core.NewCacheFromConfig(core.CacheConfig{
			Policy: "cost", SingleLock: impl == "single-lock",
		})
		for _, k := range keys {
			c.Put(k, payload, time.Second)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := c.Get(keys[i%len(keys)]); !ok {
					b.Fatal("warmed key missed")
				}
			}
		})
		out = append(out, cacheMicroRow{
			Impl:        impl,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

// serviceHitMicro measures the full single-reader hot read path — a
// warmed getPR hit through ExecutionService (query-key construction,
// singleflight fast path, cache lookup) — per cache implementation. This
// is the latency the acceptance comparison cares about: the cache Get is
// one component of it.
func serviceHitMicro() ([]cacheMicroRow, error) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 11})
	var out []cacheMicroRow
	for _, impl := range []string{"single-lock", "sharded"} {
		ew, err := mapping.NewMemory(d).ExecutionWrapper(d.Execs[0].ID)
		if err != nil {
			return nil, err
		}
		cache := core.NewCacheFromConfig(core.CacheConfig{
			Policy: "cost", MaxEntries: 128, SingleLock: impl == "single-lock",
		})
		svc := core.NewExecutionService(d.Execs[0].ID, ew, cache, nil)
		q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
		if _, err := svc.PerformanceResults(q); err != nil { // warm
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := svc.PerformanceResults(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, cacheMicroRow{
			Impl:        impl,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out, nil
}

// coldBenchRecord is the BENCH_PR5.json schema: the cold-path getPR
// comparison (vectorized vs retained row/string oracle) per store shape,
// with the derived reduction ratios the acceptance criteria pin.
type coldBenchRecord struct {
	Record         string                       `json:"record"`
	Workload       string                       `json:"workload"`
	Cold           *experiment.Table4ColdReport `json:"coldGetPR"`
	AllocReduction map[string]float64           `json:"allocReductionBySource"`
	ByteReduction  map[string]float64           `json:"byteReductionBySource"`
}

// runColdBench runs the cold-path evaluation standalone. Shape checks
// print but never fail the process (this mode is the CI smoke step);
// the committed full-run BENCH_PR5.json records the reference numbers.
func runColdBench(seed int64, quick bool, jsonPath string) {
	fmt.Println("=== Cold-path getPR evaluation (cache off) ===")
	cfg := experiment.Table4ColdConfig{Seed: seed}
	if quick {
		cfg.SMG98 = datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8}
	}
	report, err := experiment.RunTable4Cold(cfg)
	if err != nil {
		log.Fatalf("pperfgrid-bench: cold bench: %v", err)
	}
	fmt.Print(report.Render())

	if jsonPath == "" {
		return
	}
	rec := coldBenchRecord{
		Record:         "PR5 cold-path overhaul perf trajectory",
		Workload:       "cold getPR (cache off), representative query per store shape, full wire encode",
		Cold:           report,
		AllocReduction: map[string]float64{},
		ByteReduction:  map[string]float64{},
	}
	for _, name := range experiment.AllSourceNames {
		if r := report.AllocReduction(name); r > 0 {
			rec.AllocReduction[name] = r
			rec.ByteReduction[name] = report.ByteReduction(name)
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("pperfgrid-bench: marshal bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatalf("pperfgrid-bench: write %s: %v", jsonPath, err)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

// scaleBenchRecord is the BENCH_PR6.json schema: the open-loop
// latency-vs-offered-load curves and the indexed-vs-naive speedups over
// the scale star schema.
type scaleBenchRecord struct {
	Record   string                  `json:"record"`
	Workload string                  `json:"workload"`
	Scale    *experiment.ScaleReport `json:"scaleEngine"`
}

// runScaleBench runs the million-row engine evaluation standalone. Shape
// checks print but never fail the process (quick mode is the CI smoke
// step; the committed full-run BENCH_PR6.json records the reference
// numbers). Differential mismatches and EXPLAIN assertion failures are
// hard errors regardless of mode.
func runScaleBench(seed int64, quick bool, jsonPath string) {
	fmt.Println("=== Million-row engine evaluation (open-loop) ===")
	cfg := experiment.ScaleBenchConfig{}
	cfg.Scale.Seed = seed
	rowsLabel := "10^6"
	if quick {
		// ~50k fact rows and a short, truncated sweep: exercises every
		// code path (ordered index, knee logic, differential gate) in
		// seconds instead of minutes.
		cfg.Scale = datagen.ScaleConfig{Executions: 50, ResultsPerExec: 1000, Seed: seed}
		cfg.Rates = []float64{500, 2000, 8000, 32000, 128000}
		cfg.Duration = 250 * time.Millisecond
		rowsLabel = "5*10^4 (quick)"
	}
	report, err := experiment.RunScaleBench(cfg)
	if err != nil {
		log.Fatalf("pperfgrid-bench: scale bench: %v", err)
	}
	fmt.Print(report.Render())

	if jsonPath == "" {
		return
	}
	rec := scaleBenchRecord{
		Record:   "PR6 million-row engine perf trajectory",
		Workload: "scale star schema, " + rowsLabel + " Zipf-skewed fact rows; open-loop hot-hit/cold-miss/range-scan + range/top-k speedups",
		Scale:    report,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("pperfgrid-bench: marshal bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatalf("pperfgrid-bench: write %s: %v", jsonPath, err)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

// mixedBenchRecord is the BENCH_PR7.json schema: the mixed read/write
// Table 5 rows plus the derived retention figures the acceptance
// criteria pin.
type mixedBenchRecord struct {
	Record             string                        `json:"record"`
	Workload           string                        `json:"workload"`
	Mixed              *experiment.Table5MixedReport `json:"mixedTable5"`
	RetentionByReaders map[string]float64            `json:"mix95to5RetentionByReaders"`
}

// runMixedBench runs the mixed read/write evaluation standalone. Shape
// checks print but never fail the process (quick mode is the CI smoke
// step; the committed full-run BENCH_PR7.json records the reference
// numbers).
func runMixedBench(cfg experiment.Config, cachePolicy string, readerCounts []int, quick bool, jsonPath string) {
	fmt.Println("=== Mixed read/write evaluation (live ingestion) ===")
	t5m := experiment.Table5MixedConfig{Config: cfg}
	t5m.CachePolicy = cachePolicy
	// The default -readers list targets the read-heavy cache experiment;
	// the mixed cells top out at 16 readers unless overridden.
	t5m.Readers = []int{1, 4, 16}
	if len(readerCounts) > 0 && flagWasSet("readers") {
		t5m.Readers = readerCounts
	}
	if quick {
		t5m.OpsPerReader = 3000
	}
	report, err := experiment.RunTable5Mixed(t5m)
	if err != nil {
		log.Fatalf("pperfgrid-bench: mixed table 5: %v", err)
	}
	fmt.Print(report.Render())

	if jsonPath == "" {
		return
	}
	rec := mixedBenchRecord{
		Record:             "PR7 write-path perf trajectory",
		Workload:           "SMG98 star store; hot getPR readers beside paced PublishResults writers (per-execution epoch invalidation)",
		Mixed:              report,
		RetentionByReaders: map[string]float64{},
	}
	for _, row := range report.Rows {
		if row.WriterShare == 5 {
			rec.RetentionByReaders[strconv.Itoa(row.Readers)] = row.Retention
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("pperfgrid-bench: marshal bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatalf("pperfgrid-bench: write %s: %v", jsonPath, err)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

// federationBenchRecord is the BENCH_PR8.json schema: the emulated-WAN
// federation sweep plus the derived graceful-degradation tail ratios the
// acceptance criteria pin.
type federationBenchRecord struct {
	Record             string                            `json:"record"`
	Workload           string                            `json:"workload"`
	Federation         *experiment.FederationBenchReport `json:"federationSweep"`
	TailRatioByLatency map[string]float64                `json:"p99Ratio4Sites10pctByLatencyMs"`
}

// runFederationBench runs the federated scatter-gather evaluation
// standalone. Shape checks print but never fail the process (quick mode
// is the CI smoke step; the committed full-run BENCH_PR8.json records
// the reference numbers).
func runFederationBench(seed int64, quick bool, jsonPath string) {
	fmt.Println("=== Federated scatter-gather evaluation (emulated WAN) ===")
	cfg := experiment.FederationBenchConfig{Seed: seed}
	if quick {
		// Keep the 4-site/10%-failure acceptance cell, trim everything
		// else: exercises fleets, chaos, hedging, and the tail-ratio
		// check in seconds.
		cfg.SiteCounts = []int{2, 4}
		cfg.LatenciesMs = []int{2, 6}
		cfg.FailureRates = []float64{0, 0.10}
		cfg.QueriesPerCell = 120
	}
	report, err := experiment.RunFederationBench(cfg)
	if err != nil {
		log.Fatalf("pperfgrid-bench: federation bench: %v", err)
	}
	fmt.Print(report.Render())

	if jsonPath == "" {
		return
	}
	rec := federationBenchRecord{
		Record:             "PR8 federation robustness trajectory",
		Workload:           "live heterogeneous fleets (wide/star/flatfile) over the wire; seeded chaos WAN (latency+jitter, per-site failure rates); engine defaults (hedging, budgeted retries, breakers)",
		Federation:         report,
		TailRatioByLatency: map[string]float64{},
	}
	for _, latMs := range report.LatencyAxis() {
		if ratio := report.TailRatioAt(4, latMs, 0.10); ratio > 0 {
			rec.TailRatioByLatency[strconv.Itoa(latMs)] = ratio
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("pperfgrid-bench: marshal bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatalf("pperfgrid-bench: write %s: %v", jsonPath, err)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

// soakBenchRecord is the BENCH_PR9.json schema: the C10k front-door
// soak curves plus the derived overload-behavior figures the acceptance
// criteria pin.
type soakBenchRecord struct {
	Record            string                 `json:"record"`
	Workload          string                 `json:"workload"`
	Soak              *experiment.SoakReport `json:"soak"`
	PastKneeRetention map[string]float64     `json:"pastKneeGoodputRatioByConns"`
	ShedP99usByConns  map[string]float64     `json:"serverShedP99usByConns"`
	GoroutineLeak     int                    `json:"goroutineDeltaAfterDrain"`
	CursorsAfterDrain int                    `json:"cursorEntriesAfterDrain"`
}

// runSoakBench runs the C10k front-door evaluation standalone. Shape
// checks print but never fail the process (quick mode is the CI smoke
// step; the committed full-run BENCH_PR9.json records the reference
// numbers).
func runSoakBench(seed int64, quick bool, jsonPath string) {
	fmt.Println("=== C10k front-door soak (real loopback sockets) ===")
	cfg := experiment.SoakBenchConfig{Seed: seed}
	if quick {
		// One connection level and a short truncated sweep: exercises
		// sockets, admission control, shedding, cursor churn, and the
		// drain leak check in seconds.
		cfg.Conns = []int{256}
		cfg.Rates = []float64{250, 1000, 4000}
		cfg.Duration = 300 * time.Millisecond
	}
	report, err := experiment.RunSoakBench(cfg)
	if err != nil {
		log.Fatalf("pperfgrid-bench: soak bench: %v", err)
	}
	fmt.Print(report.Render())

	if jsonPath == "" {
		return
	}
	rec := soakBenchRecord{
		Record:            "PR9 C10k front-door trajectory",
		Workload:          "SMG98 star store behind one admission-controlled worker and a calibrated ms-scale Mapping Layer; distinct cold getPR per request over persistent loopback sockets, 1/16 paged-and-abandoned; open-loop sweep past the knee; graceful drain",
		Soak:              report,
		PastKneeRetention: map[string]float64{},
		ShedP99usByConns:  map[string]float64{},
		GoroutineLeak:     report.GoroutinesAfterDrain - report.GoroutinesBaseline,
		CursorsAfterDrain: report.CursorEntriesAfterDrain,
	}
	for _, c := range report.Curves {
		key := strconv.Itoa(c.Conns)
		if c.ShedSamples > 0 {
			rec.ShedP99usByConns[key] = c.ShedP99us
		}
		// Worst past-knee goodput relative to the curve's peak — the
		// "degrade, don't collapse" ratio.
		worst := 0.0
		for _, p := range c.Points {
			if p.GoodputPerSec < 0.7*p.Offered && c.PeakGoodput > 0 {
				ratio := p.GoodputPerSec / c.PeakGoodput
				if worst == 0 || ratio < worst {
					worst = ratio
				}
			}
		}
		if worst > 0 {
			rec.PastKneeRetention[key] = worst
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("pperfgrid-bench: marshal bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatalf("pperfgrid-bench: write %s: %v", jsonPath, err)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

// durabilityBenchRecord is the BENCH_PR10.json schema: the disk-vs-
// memory query sweep, the zone-map and group-commit ablations, and the
// recovery-time curve the acceptance criteria pin.
type durabilityBenchRecord struct {
	Record             string                       `json:"record"`
	Workload           string                       `json:"workload"`
	Durability         *experiment.DurabilityReport `json:"durability"`
	RangeDiskOverMem   float64                      `json:"rangeDiskOverMemory"`
	ZoneMapSpeedup     float64                      `json:"zoneMapSpeedup"`
	GroupCommitSpeedup float64                      `json:"groupCommitSpeedup"`
}

// runDurabilityBench runs the durable-engine evaluation standalone.
// Shape checks print but never fail the process (quick mode is the CI
// smoke step; the committed full-run BENCH_PR10.json records the
// reference numbers). Differential mismatches are hard errors regardless
// of mode.
func runDurabilityBench(seed int64, quick bool, jsonPath string) {
	fmt.Println("=== Durable engine evaluation (segment store) ===")
	cfg := experiment.DurabilityBenchConfig{Seed: seed}
	rowsLabel := "10^6"
	if quick {
		// ~50k rows and a light committer pool: exercises sealing,
		// checkpointing, pruning, group commit, and recovery in seconds.
		cfg.Rows = 50_000
		cfg.CommitsPerWriter = 10
		rowsLabel = "5*10^4 (quick)"
	}
	report, err := experiment.RunDurabilityBench(cfg)
	if err != nil {
		log.Fatalf("pperfgrid-bench: durability bench: %v", err)
	}
	fmt.Print(report.Render())
	for _, msg := range report.CheckShape() {
		fmt.Printf("shape check: %s\n", msg)
	}

	if jsonPath == "" {
		return
	}
	rec := durabilityBenchRecord{
		Record:             "PR10 durable-engine perf trajectory",
		Workload:           "monotone-ts samples table, " + rowsLabel + " rows sealed into columnar segments; hot/selective/cold query sweep vs in-memory engine, zone-map + group-commit ablations, recovery curve",
		Durability:         report,
		ZoneMapSpeedup:     report.ZoneMap.Speedup,
		GroupCommitSpeedup: report.GroupCommitSpeedup,
	}
	for _, q := range report.Queries {
		if strings.HasPrefix(q.Scenario, "selective range") {
			rec.RangeDiskOverMem = q.Ratio
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("pperfgrid-bench: marshal bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatalf("pperfgrid-bench: write %s: %v", jsonPath, err)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

// flagWasSet reports whether a flag was explicitly provided.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// shaped is any report that can render itself and check the paper's shape.
type shaped interface {
	Render() string
	ShapeOK() bool
}

func runStep(name string, run func() (shaped, error), failed *bool) {
	fmt.Printf("=== %s ===\n", name)
	start := time.Now()
	report, err := run()
	if err != nil {
		log.Fatalf("pperfgrid-bench: %s: %v", name, err)
	}
	fmt.Print(report.Render())
	fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	if !report.ShapeOK() {
		*failed = true
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad replica count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// maxInt returns the largest element, or fallback for an empty list.
func maxInt(xs []int, fallback int) int {
	out := fallback
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}

func runAblations(cfg experiment.Config, quick bool, policies []string, replicas int, cacheBytes int64) {
	fmt.Println("=== Ablations ===")

	counts := []int{1, 10, 100, 1000}
	rounds := 50
	if quick {
		counts = []int{1, 10, 100}
		rounds = 10
	}
	points, err := experiment.RunSOAPOverheadSweep(counts, 64, rounds)
	if err != nil {
		log.Fatalf("pperfgrid-bench: soap sweep: %v", err)
	}
	fmt.Print(experiment.RenderSOAPOverhead(points))
	fmt.Println()

	codecPoints, err := experiment.RunTransportCodecSweep(counts, 64, rounds)
	if err != nil {
		log.Fatalf("pperfgrid-bench: transport codec sweep: %v", err)
	}
	fmt.Print(experiment.RenderTransportCodecSweep(codecPoints))
	fmt.Println()

	t4 := experiment.Table4Config{Config: cfg}
	if quick {
		t4.QueriesPerSource = 5
	}
	transportReport, err := experiment.RunTransportTable4(t4)
	if err != nil {
		log.Fatalf("pperfgrid-bench: transport table4: %v", err)
	}
	fmt.Print(transportReport.Render())
	fmt.Println()

	execs, repeats := 32, 5
	if quick {
		execs, repeats = 8, 2
	}
	policyRows, err := experiment.RunPolicyAblation(cfg, policies, replicas, execs, repeats)
	if err != nil {
		log.Fatalf("pperfgrid-bench: policy ablation: %v", err)
	}
	fmt.Print(experiment.RenderPolicyAblation(policyRows, replicas))
	fmt.Println()

	capacity, queries := 8, 300
	if quick {
		capacity, queries = 4, 60
	}
	cacheRows, err := experiment.RunCachePolicyAblation(cfg, capacity, queries)
	if err != nil {
		log.Fatalf("pperfgrid-bench: cache ablation: %v", err)
	}
	fmt.Print(experiment.RenderCachePolicyAblation(cacheRows))
	fmt.Println()

	bytesRows, err := experiment.RunCacheBytesAblation(cfg, cacheBytes, queries)
	if err != nil {
		log.Fatalf("pperfgrid-bench: cache bytes ablation: %v", err)
	}
	fmt.Print(experiment.RenderCacheBytesAblation(bytesRows))
	fmt.Println()

	nq := 50
	if quick {
		nq = 10
	}
	bypassRows, err := experiment.RunLocalBypass(cfg, nq)
	if err != nil {
		log.Fatalf("pperfgrid-bench: local bypass: %v", err)
	}
	fmt.Print(experiment.RenderLocalBypass(bypassRows))
	fmt.Println()

	fan := []int{1, 8, 32}
	if quick {
		fan = []int{1, 8}
	}
	fanPoints, err := experiment.RunNotificationFanout(fan)
	if err != nil {
		log.Fatalf("pperfgrid-bench: fanout: %v", err)
	}
	fmt.Print(experiment.RenderNotificationFanout(fanPoints))
	fmt.Println()

	fq := 50
	if quick {
		fq = 10
	}
	formatRows, err := experiment.RunStoreFormatComparison(cfg, fq)
	if err != nil {
		log.Fatalf("pperfgrid-bench: store formats: %v", err)
	}
	fmt.Print(experiment.RenderStoreFormats(formatRows))
	fmt.Println()

	qmExecs, qmRounds := 64, 3
	if quick {
		qmExecs, qmRounds = 8, 2
	}
	qmRows, err := experiment.RunQueryModels(cfg, qmExecs, qmRounds)
	if err != nil {
		log.Fatalf("pperfgrid-bench: query models: %v", err)
	}
	fmt.Print(experiment.RenderQueryModels(qmRows, qmExecs))
	fmt.Println()
}
