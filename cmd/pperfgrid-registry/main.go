// Command pperfgrid-registry runs a standalone UDDI-style registry server:
// the service-publishing and discovery point of a PPerfGrid data grid
// (Figure 8 of the paper).
//
// Usage:
//
//	pperfgrid-registry -addr 127.0.0.1:9000
//
// Sites publish their Application factories here with pperfgrid-server
// -registry, and clients discover them with pperfgrid-client -registry.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"pperfgrid/internal/container"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	state := flag.String("state", "", "snapshot file for persistence across restarts (optional)")
	flag.Parse()

	cont := container.New(ogsi.NewHosting("pending:0"), container.Options{})
	if err := cont.Start(*addr); err != nil {
		log.Fatalf("pperfgrid-registry: %v", err)
	}
	defer cont.Close()

	reg := registry.New()
	if *state != "" {
		loaded, err := registry.LoadFile(*state)
		if err != nil {
			log.Fatalf("pperfgrid-registry: load state: %v", err)
		}
		reg = loaded
		fmt.Printf("restored %d organization(s) from %s\n", len(reg.FindOrganizations("")), *state)
	}
	in, err := registry.Deploy(cont.Hosting(), reg)
	if err != nil {
		log.Fatalf("pperfgrid-registry: deploy: %v", err)
	}
	fmt.Printf("PPerfGrid registry listening on %s\n", cont.Host())
	fmt.Printf("registry service handle: %s\n", in.Handle())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if *state != "" {
		if err := reg.SaveFile(*state); err != nil {
			log.Fatalf("pperfgrid-registry: save state: %v", err)
		}
		fmt.Printf("state saved to %s\n", *state)
	}
	fmt.Println("shutting down")
}
