// Command pperfgrid-registry runs a standalone UDDI-style registry server:
// the service-publishing and discovery point of a PPerfGrid data grid
// (Figure 8 of the paper).
//
// Usage:
//
//	pperfgrid-registry -addr 127.0.0.1:9000
//
// Sites publish their Application factories here with pperfgrid-server
// -registry, and clients discover them with pperfgrid-client -registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	state := flag.String("state", "", "snapshot file for persistence across restarts (optional)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound on SIGINT/SIGTERM before force close")
	flag.Parse()

	cont := container.New(ogsi.NewHosting("pending:0"), container.Options{})
	if err := cont.Start(*addr); err != nil {
		log.Fatalf("pperfgrid-registry: %v", err)
	}
	defer cont.Close()

	reg := registry.New()
	if *state != "" {
		loaded, err := registry.LoadFile(*state)
		if err != nil {
			log.Fatalf("pperfgrid-registry: load state: %v", err)
		}
		reg = loaded
		fmt.Printf("restored %d organization(s) from %s\n", len(reg.FindOrganizations("")), *state)
	}
	in, err := registry.Deploy(cont.Hosting(), reg)
	if err != nil {
		log.Fatalf("pperfgrid-registry: deploy: %v", err)
	}
	fmt.Printf("PPerfGrid registry listening on %s\n", cont.Host())
	fmt.Printf("registry service handle: %s\n", in.Handle())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: finish in-flight lookups/publishes within the
	// budget, then snapshot state. A second signal force-closes.
	fmt.Printf("draining (up to %v; signal again to force close)\n", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sig
		cancel()
	}()
	if err := cont.Drain(ctx); err != nil {
		fmt.Printf("drain incomplete: %v\n", err)
	}
	if *state != "" {
		if err := reg.SaveFile(*state); err != nil {
			log.Fatalf("pperfgrid-registry: save state: %v", err)
		}
		fmt.Printf("state saved to %s\n", *state)
	}
	fmt.Println("shut down")
}
