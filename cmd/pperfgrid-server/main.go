// Command pperfgrid-server runs one PPerfGrid site: a synthetic
// performance data store behind its Mapping-Layer wrapper, exposed as
// Application and Execution grid services, optionally replicated across
// in-process hosts and published to a registry.
//
// Usage:
//
//	pperfgrid-server -dataset hpl  -store wide -addr 127.0.0.1:9001 \
//	                 -registry 127.0.0.1:9000 -org PSU
//	pperfgrid-server -dataset rma  -store flat
//	pperfgrid-server -dataset smg98 -store star -replicas 2 -workers 1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/minidb"
	"pperfgrid/internal/registry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:0", "primary host listen address")
		dataset   = flag.String("dataset", "hpl", "dataset to generate: hpl | rma | smg98")
		store     = flag.String("store", "", "store format: wide | star | flat | xml (default: the paper's format for the dataset)")
		regHost   = flag.String("registry", "", "registry host:port to publish to (optional)")
		org       = flag.String("org", "PSU", "organization name for registry publication")
		contact   = flag.String("contact", "pperfgrid@pdx.edu", "organization contact")
		replicas  = flag.Int("replicas", 1, "number of replica hosts")
		workers   = flag.Int("workers", 0, "simulated CPUs per host (0 = unbounded)")
		cacheOff  = flag.Bool("cache-off", false, "disable the Performance Results cache")
		cachePol  = flag.String("cache-policy", "lru", "cache replacement policy: lru | lfu | cost")
		cacheCap  = flag.Int("cache-capacity", 0, "cache capacity (0 = unbounded)")
		notify    = flag.Bool("notifications", false, "enable Execution update notifications")
		seed      = flag.Int64("seed", 1, "dataset generator seed")
		execs     = flag.Int("executions", 0, "override execution count (0 = dataset default)")
		queue     = flag.Int("queue-depth", 0, "admission queue depth per host (0 = unbounded, no shedding)")
		queueWait = flag.Duration("queue-wait", 0, "queue-wait budget before a request is shed (0 = none)")
		drain     = flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound on SIGINT/SIGTERM before force close")
		dataDir   = flag.String("data-dir", "", "directory for disk-resident SQL stores (wide/star only; empty = in-memory)")
		cacheByte = flag.Int64("page-cache-bytes", 0, "block page-cache budget per replica (0 = engine default, <0 = disabled)")
	)
	flag.Parse()

	d, defaultStore, err := makeDataset(*dataset, *seed, *execs)
	if err != nil {
		log.Fatalf("pperfgrid-server: %v", err)
	}
	if *store == "" {
		*store = defaultStore
	}

	wrappers := make([]mapping.ApplicationWrapper, *replicas)
	for i := range wrappers {
		// Each replica owns its own segment directory: the disk engine is
		// single-writer, so replicas recover and serve independent copies.
		opts := minidb.Options{PageCacheBytes: *cacheByte}
		if *dataDir != "" {
			opts.Dir = filepath.Join(*dataDir, fmt.Sprintf("replica-%d", i))
		}
		w, err := makeWrapper(*store, d, opts)
		if err != nil {
			log.Fatalf("pperfgrid-server: %v", err)
		}
		wrappers[i] = w
	}

	site, err := core.StartSite(core.SiteConfig{
		AppName:       d.Name,
		Wrappers:      wrappers,
		Workers:       *workers,
		QueueDepth:    *queue,
		QueueWait:     *queueWait,
		CachingOff:    *cacheOff,
		CachePolicy:   *cachePol,
		CacheCapacity: *cacheCap,
		Notifications: *notify,
		Addr:          *addr,
	})
	if err != nil {
		log.Fatalf("pperfgrid-server: %v", err)
	}
	defer site.Close()

	fmt.Printf("PPerfGrid site %q (%s store) serving %d executions\n", d.Name, *store, len(d.Execs))
	for i, h := range site.Hosts() {
		role := "replica"
		if i == 0 {
			role = "primary"
		}
		fmt.Printf("  host %d (%s): %s\n", i, role, h)
	}
	fmt.Printf("Application factory: %s\n", site.ApplicationFactoryHandle())

	if *regHost != "" {
		pub := registry.Connect(*regHost)
		if err := pub.PublishOrganization(registry.Organization{Name: *org, Contact: *contact}); err != nil {
			log.Fatalf("pperfgrid-server: publish organization: %v", err)
		}
		if err := pub.PublishService(registry.ServiceEntry{
			Organization:  *org,
			Name:          d.Name,
			Description:   fmt.Sprintf("%s dataset in a %s store (%d executions)", d.Name, *store, len(d.Execs)),
			FactoryHandle: site.ApplicationFactoryHandle().String(),
		}); err != nil {
			log.Fatalf("pperfgrid-server: publish service: %v", err)
		}
		fmt.Printf("published as %s/%s in registry %s\n", *org, d.Name, *regHost)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, shed new work on live connections,
	// let in-flight requests finish within the drain budget, then close.
	// A second signal force-closes immediately.
	fmt.Printf("draining (up to %v; signal again to force close)\n", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sig
		cancel()
	}()
	if err := site.Drain(ctx); err != nil {
		fmt.Printf("drain incomplete: %v\n", err)
	}
	fmt.Println("shut down")
}

func makeDataset(name string, seed int64, execs int) (*datagen.Dataset, string, error) {
	switch strings.ToLower(name) {
	case "hpl":
		cfg := datagen.HPLConfig{Executions: execs, Seed: seed}
		return datagen.HPL(cfg), "wide", nil
	case "rma":
		cfg := datagen.RMAConfig{Executions: execs, Seed: seed}
		return datagen.PrestaRMA(cfg), "flat", nil
	case "smg98":
		cfg := datagen.DefaultSMG98
		cfg.Seed = seed
		if execs > 0 {
			cfg.Executions = execs
		}
		return datagen.SMG98(cfg), "star", nil
	}
	return nil, "", fmt.Errorf("unknown dataset %q (want hpl, rma, or smg98)", name)
}

func makeWrapper(store string, d *datagen.Dataset, opts minidb.Options) (mapping.ApplicationWrapper, error) {
	switch strings.ToLower(store) {
	case "wide":
		return mapping.NewWideTableWithOptions(d, opts)
	case "star":
		return mapping.NewStarWithOptions(d, opts)
	case "flat":
		if opts.Dir != "" {
			return nil, fmt.Errorf("store %q does not support -data-dir (disk engine is SQL-only)", store)
		}
		return mapping.NewFlatFile(d)
	case "xml":
		if opts.Dir != "" {
			return nil, fmt.Errorf("store %q does not support -data-dir (disk engine is SQL-only)", store)
		}
		return mapping.NewXML(d)
	}
	return nil, fmt.Errorf("unknown store %q (want wide, star, flat, or xml)", store)
}
