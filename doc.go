// Package pperfgrid is a from-scratch Go reproduction of PPerfGrid, the
// Grid-services-based tool for the exchange of heterogeneous parallel
// performance data (Hoffman, Portland State University, 2004).
//
// The implementation lives under internal/: the OGSI grid-service
// substrate (ogsi, container, soap, wsdl, gsh), the data substrates
// (minidb, flatfile, xmlstore, datagen), the PPerfGrid layers (mapping,
// core, client, registry, viz), the GSI-style security extension (gsi),
// and the evaluation harness (experiment). Executables are under cmd/,
// runnable examples under examples/, and the benchmark suite that
// regenerates the paper's Table 4, Table 5, and Figure 12 is in
// bench_test.go next to this file.
//
// See README.md for a tour of the layout, the query engine, the wire
// protocol, and the calibrated experiment setup; ARCHITECTURE.md for the
// layer-by-layer map from packages to the paper's sections and
// measurements; and PAPER.md for the source citation.
package pperfgrid
