package soap

// This file is the original reflection-based encoding/xml codec, retained
// for two jobs after the hand-rolled codec in codec.go took over the hot
// path:
//
//   - Oracle: differential tests assert the fast encoder emits
//     byte-identical envelopes, and experiments (the transport ablation,
//     SetLegacyCodec) measure the before/after overhead split of
//     Table 4 end to end.
//   - Fallback decoder: the strict fast decoder hands any non-canonical
//     document (foreign whitespace, comments, CDATA, faults, malformed
//     input) to decodeEnvelope below, so tolerance and error reporting are
//     exactly what they were.

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// LegacyEncodeRequest is EncodeRequest via the encoding/xml token writer.
func LegacyEncodeRequest(op string, headers []HeaderEntry, params []string) ([]byte, error) {
	if !operationNameOK(op) {
		return nil, fmt.Errorf("soap: invalid operation name %q", op)
	}
	return legacyEncodeEnvelope(headers, op, "param", params, nil)
}

// LegacyEncodeResponse is EncodeResponse via the encoding/xml token writer.
func LegacyEncodeResponse(op string, headers []HeaderEntry, returns []string) ([]byte, error) {
	if !operationNameOK(op) {
		return nil, fmt.Errorf("soap: invalid operation name %q", op)
	}
	return legacyEncodeEnvelope(headers, op+"Response", "return", returns, nil)
}

// LegacyEncodeFault is EncodeFault via the encoding/xml token writer.
func LegacyEncodeFault(f *Fault) ([]byte, error) {
	return legacyEncodeEnvelope(nil, "", "", nil, f)
}

func legacyEncodeEnvelope(headers []HeaderEntry, bodyElem, itemElem string, items []string, fault *Fault) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)

	env := xml.StartElement{
		Name: xml.Name{Local: "soapenv:Envelope"},
		Attr: []xml.Attr{
			{Name: xml.Name{Local: "xmlns:soapenv"}, Value: EnvelopeNS},
			{Name: xml.Name{Local: "xmlns:ppg"}, Value: ServiceNS},
		},
	}
	if err := enc.EncodeToken(env); err != nil {
		return nil, err
	}
	if len(headers) > 0 {
		hdr := xml.StartElement{Name: xml.Name{Local: "soapenv:Header"}}
		if err := enc.EncodeToken(hdr); err != nil {
			return nil, err
		}
		for _, h := range headers {
			e := xml.StartElement{
				Name: xml.Name{Local: "ppg:entry"},
				Attr: []xml.Attr{{Name: xml.Name{Local: "name"}, Value: h.Name}},
			}
			if err := encodeTextElement(enc, e, h.Value); err != nil {
				return nil, err
			}
		}
		if err := enc.EncodeToken(hdr.End()); err != nil {
			return nil, err
		}
	}
	body := xml.StartElement{Name: xml.Name{Local: "soapenv:Body"}}
	if err := enc.EncodeToken(body); err != nil {
		return nil, err
	}
	if fault != nil {
		fe := xml.StartElement{Name: xml.Name{Local: "soapenv:Fault"}}
		if err := enc.EncodeToken(fe); err != nil {
			return nil, err
		}
		for _, kv := range [][2]string{
			{"faultcode", "soapenv:" + fault.Code},
			{"faultstring", fault.String},
			{"detail", fault.Detail},
		} {
			if kv[0] == "detail" && kv[1] == "" {
				continue
			}
			e := xml.StartElement{Name: xml.Name{Local: kv[0]}}
			if err := encodeTextElement(enc, e, kv[1]); err != nil {
				return nil, err
			}
		}
		if err := enc.EncodeToken(fe.End()); err != nil {
			return nil, err
		}
	} else {
		be := xml.StartElement{Name: xml.Name{Local: "ppg:" + bodyElem}}
		if err := enc.EncodeToken(be); err != nil {
			return nil, err
		}
		for _, it := range items {
			e := xml.StartElement{Name: xml.Name{Local: "ppg:" + itemElem}}
			if err := encodeTextElement(enc, e, it); err != nil {
				return nil, err
			}
		}
		if err := enc.EncodeToken(be.End()); err != nil {
			return nil, err
		}
	}
	if err := enc.EncodeToken(body.End()); err != nil {
		return nil, err
	}
	if err := enc.EncodeToken(env.End()); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeTextElement(enc *xml.Encoder, start xml.StartElement, text string) error {
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if err := enc.EncodeToken(xml.CharData(text)); err != nil {
		return err
	}
	return enc.EncodeToken(start.End())
}

// decodeEnvelope walks the token stream of a SOAP envelope with the
// tolerant encoding/xml tokenizer, collecting header entries and the
// single body element with its item children. It accepts any well-formed
// XML shaped like an envelope, regardless of prefixes or whitespace.
func decodeEnvelope(data []byte, itemName string) (*decoded, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	out := &decoded{}

	if err := expectStart(dec, EnvelopeNS, "Envelope"); err != nil {
		return nil, err
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("%w: missing Body", ErrMalformed)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch {
		case se.Name.Space == EnvelopeNS && se.Name.Local == "Header":
			if err := decodeHeader(dec, se, out); err != nil {
				return nil, err
			}
		case se.Name.Space == EnvelopeNS && se.Name.Local == "Body":
			return out, decodeBody(dec, se, itemName, out)
		default:
			if err := dec.Skip(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
			}
		}
	}
}

func expectStart(dec *xml.Decoder, space, local string) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Space == space && se.Name.Local == local {
				return nil
			}
			return fmt.Errorf("%w: expected <%s>, got <%s>", ErrMalformed, local, se.Name.Local)
		}
	}
}

func decodeHeader(dec *xml.Decoder, start xml.StartElement, out *decoded) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var name string
			for _, a := range t.Attr {
				if a.Name.Local == "name" {
					name = a.Value
				}
			}
			text, err := collectText(dec, t)
			if err != nil {
				return err
			}
			out.headers = append(out.headers, HeaderEntry{Name: name, Value: text})
		case xml.EndElement:
			if t.Name == start.Name {
				return nil
			}
		}
	}
}

func decodeBody(dec *xml.Decoder, body xml.StartElement, itemName string, out *decoded) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space == EnvelopeNS && t.Name.Local == "Fault" {
				return decodeFault(dec, t, out)
			}
			out.bodyName = t.Name.Local
			return decodeItems(dec, t, itemName, out)
		case xml.EndElement:
			if t.Name == body.Name {
				return fmt.Errorf("%w: empty Body", ErrMalformed)
			}
		}
	}
}

func decodeItems(dec *xml.Decoder, parent xml.StartElement, itemName string, out *decoded) error {
	// items stays nil until the first item so that "no results" and
	// "empty result list" both decode to a nil slice, matching the
	// paper's convention that operations return arrays of strings.
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != itemName {
				return fmt.Errorf("%w: unexpected element <%s> in %s", ErrMalformed, t.Name.Local, parent.Name.Local)
			}
			text, err := collectText(dec, t)
			if err != nil {
				return err
			}
			out.items = append(out.items, text)
		case xml.EndElement:
			if t.Name == parent.Name {
				return nil
			}
		}
	}
}

func decodeFault(dec *xml.Decoder, start xml.StartElement, out *decoded) error {
	f := &Fault{}
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			text, err := collectText(dec, t)
			if err != nil {
				return err
			}
			switch t.Name.Local {
			case "faultcode":
				// Strip the namespace prefix, e.g. "soapenv:Server".
				if i := strings.LastIndexByte(text, ':'); i >= 0 {
					text = text[i+1:]
				}
				f.Code = text
			case "faultstring":
				f.String = text
			case "detail":
				f.Detail = text
			}
		case xml.EndElement:
			if t.Name == start.Name {
				out.fault = f
				return nil
			}
		}
	}
}

// collectText reads the character data of an element that contains only
// text, consuming through its end element.
func collectText(dec *xml.Decoder, start xml.StartElement) (string, error) {
	var b strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			b.Write(t)
		case xml.EndElement:
			if t.Name == start.Name {
				return b.String(), nil
			}
		case xml.StartElement:
			return "", fmt.Errorf("%w: unexpected child <%s> in text element <%s>", ErrMalformed, t.Name.Local, start.Name.Local)
		}
	}
}
