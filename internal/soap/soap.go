// Package soap implements the SOAP-style XML messaging layer used by all
// PPerfGrid grid services.
//
// Messages follow the SOAP 1.1 envelope structure: an Envelope element
// containing an optional Header (carrying metadata entries such as security
// tokens and message IDs) and a Body. Requests use RPC style — the body
// holds one element named after the invoked operation, whose <param>
// children carry the positional string arguments. Responses hold an
// <operation>Response element whose <return> children carry the result
// array. Failures are carried as SOAP Fault elements.
//
// All PPerfGrid PortType operations exchange arrays of strings (see Tables
// 1 and 2 of the paper), so the wire format needs exactly these shapes.
// The encode/decode work done here is the "marshalling/encoding" half of
// the architecture-adapter pattern described in the paper's Services Layer,
// and it is the principal source of the grid-services overhead measured in
// Table 4.
package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Namespace URIs used in PPerfGrid SOAP messages.
const (
	EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"
	ServiceNS  = "http://pperfgrid.pdx.edu/ns/2004/service"
)

// ContentType is the MIME type of SOAP 1.1 messages.
const ContentType = "text/xml; charset=utf-8"

// HeaderEntry is one metadata entry in the SOAP header block.
type HeaderEntry struct {
	Name  string
	Value string
}

// Request is a decoded RPC-style SOAP request.
type Request struct {
	Operation string
	Params    []string
	Headers   []HeaderEntry
}

// Header returns the value of the named header entry and whether it exists.
func (r *Request) Header(name string) (string, bool) {
	for _, h := range r.Headers {
		if h.Name == name {
			return h.Value, true
		}
	}
	return "", false
}

// Response is a decoded RPC-style SOAP response.
type Response struct {
	Operation string // operation name without the "Response" suffix
	Returns   []string
	Headers   []HeaderEntry
}

// Fault is a SOAP Fault. It satisfies error so transport code can return
// remote failures directly.
type Fault struct {
	Code   string // e.g. "Server", "Client"
	String string // human-readable fault string
	Detail string // optional machine-readable detail
}

// Standard fault codes.
const (
	FaultServer = "Server"
	FaultClient = "Client"
)

func (f *Fault) Error() string {
	if f.Detail != "" {
		return fmt.Sprintf("soap fault (%s): %s [%s]", f.Code, f.String, f.Detail)
	}
	return fmt.Sprintf("soap fault (%s): %s", f.Code, f.String)
}

// ServerFault builds a Server-side Fault from an error.
func ServerFault(err error) *Fault {
	return &Fault{Code: FaultServer, String: err.Error()}
}

// ClientFault builds a Client-side (bad request) Fault.
func ClientFault(msg string) *Fault {
	return &Fault{Code: FaultClient, String: msg}
}

// ErrMalformed reports an XML document that is not a well-formed SOAP
// envelope of the expected shape.
var ErrMalformed = errors.New("soap: malformed envelope")

// operationNameOK reports whether s is usable as an XML element local name.
func operationNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' || r == '-' || r == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// EncodeRequest serializes an RPC request envelope.
func EncodeRequest(op string, headers []HeaderEntry, params []string) ([]byte, error) {
	if !operationNameOK(op) {
		return nil, fmt.Errorf("soap: invalid operation name %q", op)
	}
	return encodeEnvelope(headers, op, "param", params, nil)
}

// EncodeResponse serializes an RPC response envelope for the given
// operation. The wire element is named <op>Response per SOAP convention.
func EncodeResponse(op string, headers []HeaderEntry, returns []string) ([]byte, error) {
	if !operationNameOK(op) {
		return nil, fmt.Errorf("soap: invalid operation name %q", op)
	}
	return encodeEnvelope(headers, op+"Response", "return", returns, nil)
}

// EncodeFault serializes a Fault envelope.
func EncodeFault(f *Fault) ([]byte, error) {
	return encodeEnvelope(nil, "", "", nil, f)
}

func encodeEnvelope(headers []HeaderEntry, bodyElem, itemElem string, items []string, fault *Fault) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)

	env := xml.StartElement{
		Name: xml.Name{Local: "soapenv:Envelope"},
		Attr: []xml.Attr{
			{Name: xml.Name{Local: "xmlns:soapenv"}, Value: EnvelopeNS},
			{Name: xml.Name{Local: "xmlns:ppg"}, Value: ServiceNS},
		},
	}
	if err := enc.EncodeToken(env); err != nil {
		return nil, err
	}
	if len(headers) > 0 {
		hdr := xml.StartElement{Name: xml.Name{Local: "soapenv:Header"}}
		if err := enc.EncodeToken(hdr); err != nil {
			return nil, err
		}
		for _, h := range headers {
			e := xml.StartElement{
				Name: xml.Name{Local: "ppg:entry"},
				Attr: []xml.Attr{{Name: xml.Name{Local: "name"}, Value: h.Name}},
			}
			if err := encodeTextElement(enc, e, h.Value); err != nil {
				return nil, err
			}
		}
		if err := enc.EncodeToken(hdr.End()); err != nil {
			return nil, err
		}
	}
	body := xml.StartElement{Name: xml.Name{Local: "soapenv:Body"}}
	if err := enc.EncodeToken(body); err != nil {
		return nil, err
	}
	if fault != nil {
		fe := xml.StartElement{Name: xml.Name{Local: "soapenv:Fault"}}
		if err := enc.EncodeToken(fe); err != nil {
			return nil, err
		}
		for _, kv := range [][2]string{
			{"faultcode", "soapenv:" + fault.Code},
			{"faultstring", fault.String},
			{"detail", fault.Detail},
		} {
			if kv[0] == "detail" && kv[1] == "" {
				continue
			}
			e := xml.StartElement{Name: xml.Name{Local: kv[0]}}
			if err := encodeTextElement(enc, e, kv[1]); err != nil {
				return nil, err
			}
		}
		if err := enc.EncodeToken(fe.End()); err != nil {
			return nil, err
		}
	} else {
		be := xml.StartElement{Name: xml.Name{Local: "ppg:" + bodyElem}}
		if err := enc.EncodeToken(be); err != nil {
			return nil, err
		}
		for _, it := range items {
			e := xml.StartElement{Name: xml.Name{Local: "ppg:" + itemElem}}
			if err := encodeTextElement(enc, e, it); err != nil {
				return nil, err
			}
		}
		if err := enc.EncodeToken(be.End()); err != nil {
			return nil, err
		}
	}
	if err := enc.EncodeToken(body.End()); err != nil {
		return nil, err
	}
	if err := enc.EncodeToken(env.End()); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeTextElement(enc *xml.Encoder, start xml.StartElement, text string) error {
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if err := enc.EncodeToken(xml.CharData(text)); err != nil {
		return err
	}
	return enc.EncodeToken(start.End())
}

// decoded is the intermediate result of parsing any envelope.
type decoded struct {
	headers  []HeaderEntry
	bodyName string   // local name of the single body child
	items    []string // text of each item child, in order
	fault    *Fault
}

// DecodeRequest parses a request envelope.
func DecodeRequest(data []byte) (*Request, error) {
	d, err := decodeEnvelope(data, "param")
	if err != nil {
		return nil, err
	}
	if d.fault != nil {
		return nil, fmt.Errorf("%w: fault in request body", ErrMalformed)
	}
	return &Request{Operation: d.bodyName, Params: d.items, Headers: d.headers}, nil
}

// DecodeResponse parses a response envelope. If the body carries a SOAP
// Fault, it is returned as the error.
func DecodeResponse(data []byte) (*Response, error) {
	d, err := decodeEnvelope(data, "return")
	if err != nil {
		return nil, err
	}
	if d.fault != nil {
		return nil, d.fault
	}
	op := strings.TrimSuffix(d.bodyName, "Response")
	if op == d.bodyName {
		return nil, fmt.Errorf("%w: body element %q lacks Response suffix", ErrMalformed, d.bodyName)
	}
	return &Response{Operation: op, Returns: d.items, Headers: d.headers}, nil
}

// decodeEnvelope walks the token stream of a SOAP envelope, collecting
// header entries and the single body element with its item children.
func decodeEnvelope(data []byte, itemName string) (*decoded, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	out := &decoded{}

	if err := expectStart(dec, EnvelopeNS, "Envelope"); err != nil {
		return nil, err
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("%w: missing Body", ErrMalformed)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch {
		case se.Name.Space == EnvelopeNS && se.Name.Local == "Header":
			if err := decodeHeader(dec, se, out); err != nil {
				return nil, err
			}
		case se.Name.Space == EnvelopeNS && se.Name.Local == "Body":
			return out, decodeBody(dec, se, itemName, out)
		default:
			if err := dec.Skip(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
			}
		}
	}
}

func expectStart(dec *xml.Decoder, space, local string) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Space == space && se.Name.Local == local {
				return nil
			}
			return fmt.Errorf("%w: expected <%s>, got <%s>", ErrMalformed, local, se.Name.Local)
		}
	}
}

func decodeHeader(dec *xml.Decoder, start xml.StartElement, out *decoded) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var name string
			for _, a := range t.Attr {
				if a.Name.Local == "name" {
					name = a.Value
				}
			}
			text, err := collectText(dec, t)
			if err != nil {
				return err
			}
			out.headers = append(out.headers, HeaderEntry{Name: name, Value: text})
		case xml.EndElement:
			if t.Name == start.Name {
				return nil
			}
		}
	}
}

func decodeBody(dec *xml.Decoder, body xml.StartElement, itemName string, out *decoded) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space == EnvelopeNS && t.Name.Local == "Fault" {
				return decodeFault(dec, t, out)
			}
			out.bodyName = t.Name.Local
			return decodeItems(dec, t, itemName, out)
		case xml.EndElement:
			if t.Name == body.Name {
				return fmt.Errorf("%w: empty Body", ErrMalformed)
			}
		}
	}
}

func decodeItems(dec *xml.Decoder, parent xml.StartElement, itemName string, out *decoded) error {
	// items stays nil until the first item so that "no results" and
	// "empty result list" both decode to a nil slice, matching the
	// paper's convention that operations return arrays of strings.
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != itemName {
				return fmt.Errorf("%w: unexpected element <%s> in %s", ErrMalformed, t.Name.Local, parent.Name.Local)
			}
			text, err := collectText(dec, t)
			if err != nil {
				return err
			}
			out.items = append(out.items, text)
		case xml.EndElement:
			if t.Name == parent.Name {
				return nil
			}
		}
	}
}

func decodeFault(dec *xml.Decoder, start xml.StartElement, out *decoded) error {
	f := &Fault{}
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			text, err := collectText(dec, t)
			if err != nil {
				return err
			}
			switch t.Name.Local {
			case "faultcode":
				// Strip the namespace prefix, e.g. "soapenv:Server".
				if i := strings.LastIndexByte(text, ':'); i >= 0 {
					text = text[i+1:]
				}
				f.Code = text
			case "faultstring":
				f.String = text
			case "detail":
				f.Detail = text
			}
		case xml.EndElement:
			if t.Name == start.Name {
				out.fault = f
				return nil
			}
		}
	}
}

// collectText reads the character data of an element that contains only
// text, consuming through its end element.
func collectText(dec *xml.Decoder, start xml.StartElement) (string, error) {
	var b strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			b.Write(t)
		case xml.EndElement:
			if t.Name == start.Name {
				return b.String(), nil
			}
		case xml.StartElement:
			return "", fmt.Errorf("%w: unexpected child <%s> in text element <%s>", ErrMalformed, t.Name.Local, start.Name.Local)
		}
	}
}
