// Package soap implements the SOAP-style XML messaging layer used by all
// PPerfGrid grid services.
//
// Messages follow the SOAP 1.1 envelope structure: an Envelope element
// containing an optional Header (carrying metadata entries such as security
// tokens, message IDs, and the getPR paging cursor) and a Body. Requests
// use RPC style — the body holds one element named after the invoked
// operation, whose <param> children carry the positional string arguments.
// Responses hold an <operation>Response element whose <return> children
// carry the result array. Failures are carried as SOAP Fault elements.
//
// All PPerfGrid PortType operations exchange arrays of strings (see Tables
// 1 and 2 of the paper), so the wire format needs exactly these shapes.
// The encode/decode work done here is the "marshalling/encoding" half of
// the architecture-adapter pattern described in the paper's Services Layer,
// and it was the principal source of the grid-services overhead measured in
// Table 4 — which is why the hot path no longer uses reflection: codec.go
// holds a hand-rolled streaming encoder/decoder for the fixed envelope
// shapes, and legacy.go retains the original encoding/xml implementation
// as the differential-test oracle and tolerant-decode fallback.
package soap

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Namespace URIs used in PPerfGrid SOAP messages.
const (
	EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"
	ServiceNS  = "http://pperfgrid.pdx.edu/ns/2004/service"
)

// ContentType is the MIME type of SOAP 1.1 messages.
const ContentType = "text/xml; charset=utf-8"

// HeaderEntry is one metadata entry in the SOAP header block.
type HeaderEntry struct {
	Name  string
	Value string
}

// Request is a decoded RPC-style SOAP request.
type Request struct {
	Operation string
	Params    []string
	Headers   []HeaderEntry
}

// Header returns the value of the named header entry and whether it exists.
func (r *Request) Header(name string) (string, bool) {
	for _, h := range r.Headers {
		if h.Name == name {
			return h.Value, true
		}
	}
	return "", false
}

// Response is a decoded RPC-style SOAP response.
type Response struct {
	Operation string // operation name without the "Response" suffix
	Returns   []string
	Headers   []HeaderEntry
}

// Header returns the value of the named header entry and whether it exists.
func (r *Response) Header(name string) (string, bool) {
	for _, h := range r.Headers {
		if h.Name == name {
			return h.Value, true
		}
	}
	return "", false
}

// Fault is a SOAP Fault. It satisfies error so transport code can return
// remote failures directly.
type Fault struct {
	Code   string // e.g. "Server", "Client"
	String string // human-readable fault string
	Detail string // optional machine-readable detail
}

// Standard fault codes.
const (
	FaultServer = "Server"
	FaultClient = "Client"
	// FaultOverloaded is the typed overload rejection a saturated
	// container sheds with: the request was turned away by admission
	// control before consuming a worker slot. Unlike a plain Server
	// fault it is retryable — the Detail carries a Retry-After hint
	// ("retry-after-ms=N") that backoff loops honor.
	FaultOverloaded = "Server.Overloaded"
)

func (f *Fault) Error() string {
	if f.Detail != "" {
		return fmt.Sprintf("soap fault (%s): %s [%s]", f.Code, f.String, f.Detail)
	}
	return fmt.Sprintf("soap fault (%s): %s", f.Code, f.String)
}

// ServerFault builds a Server-side Fault from an error.
func ServerFault(err error) *Fault {
	return &Fault{Code: FaultServer, String: err.Error()}
}

// ClientFault builds a Client-side (bad request) Fault.
func ClientFault(msg string) *Fault {
	return &Fault{Code: FaultClient, String: msg}
}

// overloadDetailPrefix introduces the Retry-After hint in an overload
// fault's Detail element.
const overloadDetailPrefix = "retry-after-ms="

// OverloadFault builds the typed overload rejection shed by admission
// control. retryAfter is the server's hint for when a retry has a chance
// of being admitted; it is clamped to at least 1 ms so the hint survives
// the millisecond wire encoding.
func OverloadFault(msg string, retryAfter time.Duration) *Fault {
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return &Fault{
		Code:   FaultOverloaded,
		String: msg,
		Detail: overloadDetailPrefix + strconv.FormatInt(ms, 10),
	}
}

// AsOverload reports whether err is (or wraps) a typed overload fault,
// returning the Retry-After hint it carries (0 when the detail is absent
// or malformed — still an overload, just without a usable hint).
func AsOverload(err error) (time.Duration, bool) {
	var f *Fault
	if !errors.As(err, &f) || f.Code != FaultOverloaded {
		return 0, false
	}
	if rest, ok := strings.CutPrefix(f.Detail, overloadDetailPrefix); ok {
		if n, perr := strconv.ParseInt(rest, 10, 64); perr == nil && n > 0 {
			return time.Duration(n) * time.Millisecond, true
		}
	}
	return 0, true
}

// ErrMalformed reports an XML document that is not a well-formed SOAP
// envelope of the expected shape.
var ErrMalformed = errors.New("soap: malformed envelope")

// legacyCodec routes Encode*/Decode* through the retained encoding/xml
// codec when set — an experiment hook (see SetLegacyCodec), not a
// production mode.
var legacyCodec atomic.Bool

// SetLegacyCodec switches the package-level codec between the hand-rolled
// implementation (false, the default) and the retained encoding/xml
// implementation (true) — encoders and decoders both, so end-to-end
// measurements exercise the old wire path on every byte. The two emit
// byte-identical envelopes; only the cost differs. The transport ablation
// in internal/experiment flips this around a full Table 4 run to measure
// the before/after overhead split. Not intended for concurrent toggling.
func SetLegacyCodec(enabled bool) { legacyCodec.Store(enabled) }

// LegacyCodec reports whether the experiment hook is on.
func LegacyCodec() bool { return legacyCodec.Load() }

// operationNameOK reports whether s is usable as an XML element local name.
func operationNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' || r == '-' || r == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// EncodeRequest serializes an RPC request envelope.
func EncodeRequest(op string, headers []HeaderEntry, params []string) ([]byte, error) {
	if legacyCodec.Load() {
		return LegacyEncodeRequest(op, headers, params)
	}
	if !operationNameOK(op) {
		return nil, fmt.Errorf("soap: invalid operation name %q", op)
	}
	return encodeToBytes(headers, op, "param", params, nil)
}

// EncodeResponse serializes an RPC response envelope for the given
// operation. The wire element is named <op>Response per SOAP convention.
func EncodeResponse(op string, headers []HeaderEntry, returns []string) ([]byte, error) {
	if legacyCodec.Load() {
		return LegacyEncodeResponse(op, headers, returns)
	}
	if !operationNameOK(op) {
		return nil, fmt.Errorf("soap: invalid operation name %q", op)
	}
	return encodeToBytes(headers, op+"Response", "return", returns, nil)
}

// EncodeFault serializes a Fault envelope.
func EncodeFault(f *Fault) ([]byte, error) {
	if legacyCodec.Load() {
		return LegacyEncodeFault(f)
	}
	return encodeToBytes(nil, "", "", nil, f)
}

// encodeToBytes runs the streaming encoder into a pooled scratch buffer
// and returns a right-sized copy the caller owns.
func encodeToBytes(headers []HeaderEntry, bodyElem, itemElem string, items []string, fault *Fault) ([]byte, error) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	if err := encodeEnvelopeTo(buf, headers, bodyElem, itemElem, items, fault); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// EncodeRequestTo streams an RPC request envelope directly to w (the
// zero-copy path for transports that own a write buffer). It honours the
// SetLegacyCodec experiment hook so end-to-end ablations exercise the
// old codec on every byte of the wire path.
func EncodeRequestTo(w stringWriter, op string, headers []HeaderEntry, params []string) error {
	if legacyCodec.Load() {
		data, err := LegacyEncodeRequest(op, headers, params)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	if !operationNameOK(op) {
		return fmt.Errorf("soap: invalid operation name %q", op)
	}
	return encodeEnvelopeTo(w, headers, op, "param", params, nil)
}

// EncodeResponseTo streams an RPC response envelope directly to w.
func EncodeResponseTo(w stringWriter, op string, headers []HeaderEntry, returns []string) error {
	if legacyCodec.Load() {
		data, err := LegacyEncodeResponse(op, headers, returns)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	if !operationNameOK(op) {
		return fmt.Errorf("soap: invalid operation name %q", op)
	}
	return encodeEnvelopeTo(w, headers, op+"Response", "return", returns, nil)
}

// EncodeFaultTo streams a Fault envelope directly to w.
func EncodeFaultTo(w stringWriter, f *Fault) error {
	return encodeEnvelopeTo(w, nil, "", "", nil, f)
}

// decoded is the intermediate result of parsing any envelope.
type decoded struct {
	headers  []HeaderEntry
	bodyName string   // local name of the single body child
	items    []string // text of each item child, in order
	fault    *Fault
}

// decodeAny parses an envelope: the strict fast decoder first (the
// canonical shape every PPerfGrid peer emits), falling back to the
// tolerant legacy decoder for anything else.
func decodeAny(data []byte, itemName string) (*decoded, error) {
	if !legacyCodec.Load() {
		if d, err := fastDecode(data, itemName); err == nil {
			return d, nil
		}
	}
	return decodeEnvelope(data, itemName)
}

// DecodeRequest parses a request envelope.
func DecodeRequest(data []byte) (*Request, error) {
	d, err := decodeAny(data, "param")
	if err != nil {
		return nil, err
	}
	if d.fault != nil {
		return nil, fmt.Errorf("%w: fault in request body", ErrMalformed)
	}
	return &Request{Operation: d.bodyName, Params: d.items, Headers: d.headers}, nil
}

// DecodeResponse parses a response envelope. If the body carries a SOAP
// Fault, it is returned as the error.
func DecodeResponse(data []byte) (*Response, error) {
	d, err := decodeAny(data, "return")
	if err != nil {
		return nil, err
	}
	if d.fault != nil {
		return nil, d.fault
	}
	op := strings.TrimSuffix(d.bodyName, "Response")
	if op == d.bodyName {
		return nil, fmt.Errorf("%w: body element %q lacks Response suffix", ErrMalformed, d.bodyName)
	}
	return &Response{Operation: op, Returns: d.items, Headers: d.headers}, nil
}
