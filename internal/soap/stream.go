package soap

// This file is the item-streaming half of the hand-rolled codec: a
// ResponseEncoder that writes one RPC response envelope piece by piece —
// open, N return items, close — so services can encode large result
// payloads straight into the transport's pooled buffer without building
// one intermediate string per item first. The Execution service's cold
// getPR path appends each perfdata.Result's wire bytes into a reused
// scratch slice and hands them to ReturnBytes; no per-result string is
// ever materialized.
//
// The emitted bytes are identical to EncodeResponse over the equivalent
// item list (differential tests in stream_test.go pin this), so cached
// envelopes, oracle envelopes, and streamed envelopes stay
// interchangeable on the wire.

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"unicode/utf8"
)

// ErrStreamUnavailable reports that the streaming encoder cannot run
// because the legacy codec experiment hook is active; callers fall back
// to the string-based encode so ablations measure the old path end to
// end.
var ErrStreamUnavailable = errors.New("soap: streaming encoder disabled under the legacy codec")

// ResponseEncoder streams one RPC response envelope:
//
//	var enc ResponseEncoder
//	if err := enc.Begin(buf, op, headers); err != nil { ... }
//	for ... { enc.ReturnBytes(item) }
//	if err := enc.Close(); err != nil { ... }
//
// The zero value is ready for Begin; an encoder must not be reused after
// Close. All methods record the first underlying write error, which
// Close returns.
type ResponseEncoder struct {
	w   stringWriter
	op  string
	err error
}

// Begin writes the envelope through the opening <ppg:<op>Response> tag.
// It fails under the legacy-codec hook (ErrStreamUnavailable) and on
// invalid operation names, before any bytes are written.
func (e *ResponseEncoder) Begin(w stringWriter, op string, headers []HeaderEntry) error {
	if legacyCodec.Load() {
		return ErrStreamUnavailable
	}
	if !operationNameOK(op) {
		return fmt.Errorf("soap: invalid operation name %q", op)
	}
	e.w, e.op, e.err = w, op, nil
	e.writeString(xml.Header)
	e.writeString(envelopeOpen)
	if len(headers) > 0 {
		e.writeString("<soapenv:Header>")
		for _, h := range headers {
			e.writeString(`<ppg:entry name="`)
			e.check(writeEscaped(w, h.Name, true))
			e.writeString(`">`)
			e.check(writeEscaped(w, h.Value, false))
			e.writeString("</ppg:entry>")
		}
		e.writeString("</soapenv:Header>")
	}
	e.writeString("<soapenv:Body><ppg:")
	e.writeString(op)
	e.writeString("Response>")
	return e.err
}

// Return appends one <ppg:return> item from a string.
func (e *ResponseEncoder) Return(item string) {
	e.writeString("<ppg:return>")
	e.check(writeEscaped(e.w, item, false))
	e.writeString("</ppg:return>")
}

// ReturnBytes appends one <ppg:return> item from raw bytes, escaping
// exactly as Return does — the zero-intermediate-string path.
func (e *ResponseEncoder) ReturnBytes(item []byte) {
	e.writeString("<ppg:return>")
	e.check(writeEscapedBytes(e.w, item, false))
	e.writeString("</ppg:return>")
}

// Close writes the envelope trailer and returns the first error any
// write produced.
func (e *ResponseEncoder) Close() error {
	e.writeString("</ppg:")
	e.writeString(e.op)
	e.writeString("Response></soapenv:Body></soapenv:Envelope>")
	return e.err
}

func (e *ResponseEncoder) writeString(s string) {
	if e.err == nil {
		_, err := e.w.WriteString(s)
		e.err = err
	}
}

func (e *ResponseEncoder) check(err error) {
	if e.err == nil {
		e.err = err
	}
}

// writeEscapedBytes is writeEscaped over a byte slice: identical
// escaping, no string conversion of the input.
func writeEscapedBytes(w stringWriter, s []byte, escapeNewline bool) error {
	var esc string
	last := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRune(s[i:])
		i += width
		switch r {
		case '"':
			esc = escQuot
		case '\'':
			esc = escApos
		case '&':
			esc = escAmp
		case '<':
			esc = escLT
		case '>':
			esc = escGT
		case '\t':
			esc = escTab
		case '\n':
			if !escapeNewline {
				continue
			}
			esc = escNL
		case '\r':
			esc = escCR
		default:
			if !inCharacterRange(r) || (r == utf8.RuneError && width == 1) {
				esc = escFFFD
				break
			}
			continue
		}
		if _, err := w.Write(s[last : i-width]); err != nil {
			return err
		}
		if _, err := w.WriteString(esc); err != nil {
			return err
		}
		last = i
	}
	_, err := w.Write(s[last:])
	return err
}

// CopyEncoded returns an owned right-sized copy of a pooled buffer's
// contents, for callers that stream an envelope and then must retain the
// bytes beyond the buffer's lifetime (e.g. to attach to a cache entry).
func CopyEncoded(buf *bytes.Buffer) []byte {
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}
