package soap

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	headers := []HeaderEntry{{Name: "messageID", Value: "42"}, {Name: "token", Value: "abc|def"}}
	params := []string{"numprocesses", "16", "<&>\"'"}
	data, err := EncodeRequest("getExecs", headers, params)
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if req.Operation != "getExecs" {
		t.Errorf("Operation = %q", req.Operation)
	}
	if !reflect.DeepEqual(req.Params, params) {
		t.Errorf("Params = %#v, want %#v", req.Params, params)
	}
	if !reflect.DeepEqual(req.Headers, headers) {
		t.Errorf("Headers = %#v, want %#v", req.Headers, headers)
	}
}

func TestRequestNoParamsNoHeaders(t *testing.T) {
	data, err := EncodeRequest("getAppInfo", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if req.Operation != "getAppInfo" || len(req.Params) != 0 || len(req.Headers) != 0 {
		t.Errorf("got %+v", req)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	returns := []string{
		"http://host:1/ogsa/services/Execution/7",
		"name|HPL",
		"", // empty strings must survive
	}
	data, err := EncodeResponse("getAllExecs", nil, returns)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Operation != "getAllExecs" {
		t.Errorf("Operation = %q", resp.Operation)
	}
	if !reflect.DeepEqual(resp.Returns, returns) {
		t.Errorf("Returns = %#v, want %#v", resp.Returns, returns)
	}
}

func TestEmptyReturnList(t *testing.T) {
	data, err := EncodeResponse("getExecs", nil, []string{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Returns) != 0 {
		t.Errorf("Returns = %#v, want empty", resp.Returns)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	f := &Fault{Code: FaultServer, String: "no such execution", Detail: "id=99"}
	data, err := EncodeFault(f)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeResponse(data)
	var got *Fault
	if !errors.As(err, &got) {
		t.Fatalf("DecodeResponse: want Fault error, got %v", err)
	}
	if got.Code != f.Code || got.String != f.String || got.Detail != f.Detail {
		t.Errorf("fault = %+v, want %+v", got, f)
	}
}

func TestFaultWithoutDetail(t *testing.T) {
	data, err := EncodeFault(ClientFault("bad parameter count"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeResponse(data)
	var got *Fault
	if !errors.As(err, &got) {
		t.Fatalf("want Fault, got %v", err)
	}
	if got.Code != FaultClient || got.String != "bad parameter count" || got.Detail != "" {
		t.Errorf("fault = %+v", got)
	}
}

func TestFaultErrorString(t *testing.T) {
	f := &Fault{Code: FaultServer, String: "boom"}
	if !strings.Contains(f.Error(), "boom") || !strings.Contains(f.Error(), "Server") {
		t.Errorf("Error() = %q", f.Error())
	}
	f.Detail = "ctx"
	if !strings.Contains(f.Error(), "ctx") {
		t.Errorf("Error() with detail = %q", f.Error())
	}
}

func TestServerFaultFromError(t *testing.T) {
	f := ServerFault(errors.New("database offline"))
	if f.Code != FaultServer || f.String != "database offline" {
		t.Errorf("ServerFault = %+v", f)
	}
}

func TestInvalidOperationNames(t *testing.T) {
	for _, op := range []string{"", "9lives", "get Execs", "a<b", "-x", "op\n"} {
		if _, err := EncodeRequest(op, nil, nil); err == nil {
			t.Errorf("EncodeRequest(%q): want error", op)
		}
		if _, err := EncodeResponse(op, nil, nil); err == nil {
			t.Errorf("EncodeResponse(%q): want error", op)
		}
	}
	// Valid edge cases.
	for _, op := range []string{"x", "_private", "get-PR", "op.v2", "a9"} {
		if _, err := EncodeRequest(op, nil, nil); err != nil {
			t.Errorf("EncodeRequest(%q): %v", op, err)
		}
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := []string{
		"",
		"not xml",
		"<foo/>",
		`<soapenv:Envelope xmlns:soapenv="` + EnvelopeNS + `"></soapenv:Envelope>`,
		`<soapenv:Envelope xmlns:soapenv="` + EnvelopeNS + `"><soapenv:Body></soapenv:Body></soapenv:Envelope>`,
	}
	for _, s := range cases {
		if _, err := DecodeRequest([]byte(s)); err == nil {
			t.Errorf("DecodeRequest(%q): want error", s)
		}
	}
}

func TestDecodeRequestRejectsFaultBody(t *testing.T) {
	data, err := EncodeFault(ClientFault("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequest(data); !errors.Is(err, ErrMalformed) {
		t.Errorf("want ErrMalformed, got %v", err)
	}
}

func TestDecodeResponseRejectsMissingSuffix(t *testing.T) {
	data, err := EncodeRequest("getExecs", nil, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	// A request body element has no Response suffix; decoding it as a
	// response must fail rather than silently misinterpret.
	if _, err := DecodeResponse(data); !errors.Is(err, ErrMalformed) {
		t.Errorf("want ErrMalformed, got %v", err)
	}
}

func TestRequestHeaderLookup(t *testing.T) {
	req := &Request{Headers: []HeaderEntry{{Name: "a", Value: "1"}, {Name: "b", Value: "2"}}}
	if v, ok := req.Header("b"); !ok || v != "2" {
		t.Errorf("Header(b) = %q, %v", v, ok)
	}
	if _, ok := req.Header("missing"); ok {
		t.Error("Header(missing) reported present")
	}
}

func TestXMLSpecialCharacters(t *testing.T) {
	params := []string{"<tag>", "a&b", `"quoted"`, "new\nline", "tab\there", "日本語"}
	data, err := EncodeRequest("op", nil, params)
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req.Params, params) {
		t.Errorf("special chars mangled: %#v", req.Params)
	}
}

// Property: any slice of printable strings survives request and response
// round trips byte-for-byte.
func TestQuickRoundTrip(t *testing.T) {
	sanitize := func(ss []string) []string {
		out := make([]string, len(ss))
		for i, s := range ss {
			// XML cannot carry most control characters; replace them.
			out[i] = strings.Map(func(r rune) rune {
				if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
					return ' '
				}
				if r == 0xFFFD || !validXMLRune(r) {
					return ' '
				}
				return r
			}, strings.ToValidUTF8(s, " "))
		}
		return out
	}
	f := func(ss []string) bool {
		ss = sanitize(ss)
		data, err := EncodeResponse("op", nil, ss)
		if err != nil {
			return false
		}
		resp, err := DecodeResponse(data)
		if err != nil {
			return false
		}
		if len(ss) == 0 {
			return len(resp.Returns) == 0
		}
		return reflect.DeepEqual(resp.Returns, ss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func validXMLRune(r rune) bool {
	return r == '\t' || r == '\n' || r == '\r' ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

// TestDecodeNeverPanics mutates valid envelopes randomly and requires the
// decoders to either parse or return an error — never panic, never hang.
func TestDecodeNeverPanics(t *testing.T) {
	valid, err := EncodeRequest("getPR", []HeaderEntry{{Name: "h", Value: "v"}},
		[]string{"gflops", "0", "1", "hpl", "/Process/0"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), valid...)
		for n := rng.Intn(8); n >= 0 && len(data) > 0; n-- {
			switch rng.Intn(3) {
			case 0: // flip a byte
				data[rng.Intn(len(data))] = byte(rng.Intn(256))
			case 1: // truncate
				if len(data) > 1 {
					data = data[:rng.Intn(len(data))]
				}
			case 2: // duplicate a slice
				if len(data) > 2 {
					i := rng.Intn(len(data) - 1)
					j := i + 1 + rng.Intn(len(data)-i-1)
					data = append(data[:j:j], data[i:]...)
				}
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v\ninput: %q", trial, r, data)
				}
			}()
			_, _ = DecodeRequest(data)
			_, _ = DecodeResponse(data)
		}()
	}
}
