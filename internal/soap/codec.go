package soap

// This file is the hand-rolled wire codec: a streaming encoder that writes
// envelope bytes directly to an io.Writer with no reflection, and a strict
// decoder for the canonical envelope shape that codec produces. Both exist
// because the reflection-driven encoding/xml round trip was measured as the
// principal component of the Table 4 grid-services overhead; the envelope
// shapes are fixed (see the package comment), so the general-purpose
// machinery buys nothing on the hot path.
//
// The encoding/xml implementation is retained in legacy.go as the
// behavioural oracle: the fast encoder emits byte-identical envelopes
// (enforced by differential tests), and the fast decoder falls back to the
// tolerant legacy decoder for any document that is not in canonical form —
// foreign indentation, comments, CDATA, faults, or malformed input — so
// robustness and error reporting are unchanged.

import (
	"bytes"
	"encoding/xml"
	"errors"
	"io"
	"strings"
	"sync"
	"unicode/utf8"
)

// envelopeOpen is the canonical envelope start: the exact bytes both
// encoders emit after the XML prolog.
const envelopeOpen = `<soapenv:Envelope xmlns:soapenv="` + EnvelopeNS + `" xmlns:ppg="` + ServiceNS + `">`

// bufPool recycles encode scratch buffers across calls; envelopes for
// large getPR result sets reach hundreds of KiB, so reusing the grown
// backing arrays is most of the win.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// GetBuffer hands out a reset pooled buffer. Transport code (the container
// and the client stub) uses the same pool for request/response bodies so
// one hot set of buffers serves the whole wire path.
func GetBuffer() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// PutBuffer returns a buffer to the pool. The caller must not retain any
// slice of its contents.
func PutBuffer(b *bytes.Buffer) {
	// Drop pathologically grown buffers instead of pinning their memory.
	if b.Cap() > 1<<22 {
		return
	}
	bufPool.Put(b)
}

// stringWriter is the writer contract the streaming encoder needs;
// *bytes.Buffer and *bufio.Writer both satisfy it.
type stringWriter interface {
	io.Writer
	io.StringWriter
}

// Escape entities, matching encoding/xml's internal table (the short
// numeric forms for quotes, hex forms for TAB/CR).
const (
	escQuot = "&#34;"
	escApos = "&#39;"
	escAmp  = "&amp;"
	escLT   = "&lt;"
	escGT   = "&gt;"
	escTab  = "&#x9;"
	escNL   = "&#xA;"
	escCR   = "&#xD;"
	escFFFD = "�"
)

// writeEscaped writes s with escaping identical to the encoding/xml
// encoder's (its unexported escapeText): '&', '<', '>', quotes, TAB and CR
// are entity-escaped, characters outside the XML character range become
// U+FFFD, and '\n' is escaped only when escapeNewline is set — the
// encoding/xml encoder escapes newlines in attribute values but passes
// them through raw in character data, and the differential tests hold the
// fast codec to exactly that. The common nothing-to-escape case is a
// single WriteString.
func writeEscaped(w stringWriter, s string, escapeNewline bool) error {
	var esc string
	last := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRuneInString(s[i:])
		i += width
		switch r {
		case '"':
			esc = escQuot
		case '\'':
			esc = escApos
		case '&':
			esc = escAmp
		case '<':
			esc = escLT
		case '>':
			esc = escGT
		case '\t':
			esc = escTab
		case '\n':
			if !escapeNewline {
				continue
			}
			esc = escNL
		case '\r':
			esc = escCR
		default:
			if !inCharacterRange(r) || (r == utf8.RuneError && width == 1) {
				esc = escFFFD
				break
			}
			continue
		}
		if _, err := w.WriteString(s[last : i-width]); err != nil {
			return err
		}
		if _, err := w.WriteString(esc); err != nil {
			return err
		}
		last = i
	}
	_, err := w.WriteString(s[last:])
	return err
}

// inCharacterRange mirrors encoding/xml's XML 1.0 Char production check
// (section 2.2 of the XML spec).
func inCharacterRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// encodeEnvelopeTo streams one envelope in canonical form. It mirrors the
// legacy encoder token for token; differential tests assert byte identity.
func encodeEnvelopeTo(w stringWriter, headers []HeaderEntry, bodyElem, itemElem string, items []string, fault *Fault) error {
	if _, err := w.WriteString(xml.Header); err != nil {
		return err
	}
	if _, err := w.WriteString(envelopeOpen); err != nil {
		return err
	}
	if len(headers) > 0 {
		if _, err := w.WriteString("<soapenv:Header>"); err != nil {
			return err
		}
		for _, h := range headers {
			if _, err := w.WriteString(`<ppg:entry name="`); err != nil {
				return err
			}
			if err := writeEscaped(w, h.Name, true); err != nil {
				return err
			}
			if _, err := w.WriteString(`">`); err != nil {
				return err
			}
			if err := writeEscaped(w, h.Value, false); err != nil {
				return err
			}
			if _, err := w.WriteString("</ppg:entry>"); err != nil {
				return err
			}
		}
		if _, err := w.WriteString("</soapenv:Header>"); err != nil {
			return err
		}
	}
	if _, err := w.WriteString("<soapenv:Body>"); err != nil {
		return err
	}
	if fault != nil {
		if err := encodeFaultTo(w, fault); err != nil {
			return err
		}
	} else {
		if _, err := w.WriteString("<ppg:" + bodyElem + ">"); err != nil {
			return err
		}
		for _, it := range items {
			if _, err := w.WriteString("<ppg:" + itemElem + ">"); err != nil {
				return err
			}
			if err := writeEscaped(w, it, false); err != nil {
				return err
			}
			if _, err := w.WriteString("</ppg:" + itemElem + ">"); err != nil {
				return err
			}
		}
		if _, err := w.WriteString("</ppg:" + bodyElem + ">"); err != nil {
			return err
		}
	}
	_, err := w.WriteString("</soapenv:Body></soapenv:Envelope>")
	return err
}

func encodeFaultTo(w stringWriter, f *Fault) error {
	if _, err := w.WriteString("<soapenv:Fault><faultcode>soapenv:"); err != nil {
		return err
	}
	if err := writeEscaped(w, f.Code, false); err != nil {
		return err
	}
	if _, err := w.WriteString("</faultcode><faultstring>"); err != nil {
		return err
	}
	if err := writeEscaped(w, f.String, false); err != nil {
		return err
	}
	if _, err := w.WriteString("</faultstring>"); err != nil {
		return err
	}
	if f.Detail != "" {
		if _, err := w.WriteString("<detail>"); err != nil {
			return err
		}
		if err := writeEscaped(w, f.Detail, false); err != nil {
			return err
		}
		if _, err := w.WriteString("</detail>"); err != nil {
			return err
		}
	}
	_, err := w.WriteString("</soapenv:Fault>")
	return err
}

// errNotCanonical makes the fast decoder hand the document to the legacy
// decoder. It never escapes this package.
var errNotCanonical = errors.New("soap: not in canonical form")

// fastDecode parses a canonical envelope (the exact byte shape our
// encoders produce). Any deviation returns errNotCanonical so the caller
// retries with the tolerant legacy decoder.
func fastDecode(data []byte, itemName string) (*decoded, error) {
	s := scanner{b: data}
	if !s.lit(xml.Header) || !s.lit(envelopeOpen) {
		return nil, errNotCanonical
	}
	out := &decoded{}
	if s.lit("<soapenv:Header>") {
		for !s.lit("</soapenv:Header>") {
			if !s.lit(`<ppg:entry name="`) {
				return nil, errNotCanonical
			}
			name, ok := s.textUntil('"')
			if !ok || !s.lit(">") {
				return nil, errNotCanonical
			}
			value, ok := s.textUntil('<')
			if !ok || !s.lit("</ppg:entry>") {
				return nil, errNotCanonical
			}
			out.headers = append(out.headers, HeaderEntry{Name: name, Value: value})
		}
	}
	if !s.lit("<soapenv:Body>") {
		return nil, errNotCanonical
	}
	if !s.lit("<ppg:") {
		// Faults (and anything foreign) take the legacy path.
		return nil, errNotCanonical
	}
	name, ok := s.until('>')
	if !ok || !operationNameOK(name) {
		return nil, errNotCanonical
	}
	out.bodyName = name
	openItem := "<ppg:" + itemName + ">"
	closeItem := "</ppg:" + itemName + ">"
	closeBody := "</ppg:" + name + ">"
	for !s.lit(closeBody) {
		if !s.lit(openItem) {
			return nil, errNotCanonical
		}
		text, ok := s.textUntil('<')
		if !ok || !s.lit(closeItem) {
			return nil, errNotCanonical
		}
		out.items = append(out.items, text)
	}
	if !s.lit("</soapenv:Body></soapenv:Envelope>") {
		return nil, errNotCanonical
	}
	if strings.TrimSpace(string(s.b[s.i:])) != "" {
		return nil, errNotCanonical
	}
	return out, nil
}

// scanner is a zero-allocation cursor over the document bytes.
type scanner struct {
	b []byte
	i int
}

// lit consumes tok if it is next.
func (s *scanner) lit(tok string) bool {
	if len(s.b)-s.i >= len(tok) && string(s.b[s.i:s.i+len(tok)]) == tok {
		s.i += len(tok)
		return true
	}
	return false
}

// until consumes and returns the raw bytes before the next occurrence of
// stop, consuming stop too. The segment must not contain entities.
func (s *scanner) until(stop byte) (string, bool) {
	j := bytes.IndexByte(s.b[s.i:], stop)
	if j < 0 {
		return "", false
	}
	seg := s.b[s.i : s.i+j]
	if bytes.IndexByte(seg, '&') >= 0 || bytes.IndexByte(seg, '<') >= 0 {
		return "", false
	}
	s.i += j + 1
	return string(seg), true
}

// textUntil consumes escaped character data up to (but not past) the next
// occurrence of stop, resolving entities exactly as encoding/xml does.
func (s *scanner) textUntil(stop byte) (string, bool) {
	j := bytes.IndexByte(s.b[s.i:], stop)
	if j < 0 {
		return "", false
	}
	seg := s.b[s.i : s.i+j]
	s.i += j
	if stop != '<' {
		s.i++ // consume the stop byte (attribute-closing quote)
	}
	if bytes.IndexByte(seg, '&') < 0 {
		return string(seg), true
	}
	return unescape(seg)
}

// unescape resolves the entity forms the encoder can emit (the five named
// entities plus decimal and hex character references).
func unescape(seg []byte) (string, bool) {
	var b strings.Builder
	b.Grow(len(seg))
	for i := 0; i < len(seg); {
		c := seg[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := bytes.IndexByte(seg[i:], ';')
		if semi < 0 {
			return "", false
		}
		ent := string(seg[i+1 : i+semi])
		i += semi + 1
		switch ent {
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "amp":
			b.WriteByte('&')
		case "apos":
			b.WriteByte('\'')
		case "quot":
			b.WriteByte('"')
		default:
			r, ok := charRef(ent)
			if !ok {
				return "", false
			}
			b.WriteRune(r)
		}
	}
	return b.String(), true
}

// charRef parses a numeric character reference body ("#xA", "#39", ...).
func charRef(ent string) (rune, bool) {
	if len(ent) < 2 || ent[0] != '#' {
		return 0, false
	}
	base, digits := 10, ent[1:]
	if digits[0] == 'x' || digits[0] == 'X' {
		base, digits = 16, digits[1:]
	}
	if digits == "" {
		return 0, false
	}
	var n rune
	for i := 0; i < len(digits); i++ {
		var d rune
		c := digits[i]
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, false
		}
		n = n*rune(base) + d
		if n > 0x10FFFF {
			return 0, false
		}
	}
	return n, true
}
