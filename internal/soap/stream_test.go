package soap

import (
	"bytes"
	"math/rand"
	"testing"
)

// nastyStrings exercises every escaping branch: named entities, control
// characters, newline (escaped in attributes, raw in character data),
// invalid UTF-8, and characters outside the XML range.
var nastyStrings = []string{
	"", "plain", "a|b|c|0.0-1.5|42",
	"<tag>&amp;</tag>", `quotes "and" 'apostrophes'`,
	"tab\there", "newline\nhere", "cr\rhere",
	"invalid \xff utf8", "\x00control", "emoji \U0001F600 ok",
	"trailing&", "&lt;already&gt;",
}

func randItem(rng *rand.Rand) string {
	if rng.Intn(3) == 0 {
		return nastyStrings[rng.Intn(len(nastyStrings))]
	}
	b := make([]byte, rng.Intn(40))
	for i := range b {
		b[i] = byte(rng.Intn(128))
	}
	return string(b)
}

// TestResponseEncoderByteIdentical pins the streaming encoder to the
// string-based EncodeResponse: same op, headers, and items must yield the
// same envelope bytes, whichever Return form carries the items.
func TestResponseEncoderByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ops := []string{"getPR", "getPRResponse", "op-1", "a.b_c"}
	for trial := 0; trial < 400; trial++ {
		op := ops[rng.Intn(len(ops))]
		var headers []HeaderEntry
		for i, n := 0, rng.Intn(3); i < n; i++ {
			headers = append(headers, HeaderEntry{
				Name:  randItem(rng),
				Value: randItem(rng),
			})
		}
		items := make([]string, rng.Intn(6))
		for i := range items {
			items[i] = randItem(rng)
		}

		want, err := EncodeResponse(op, headers, items)
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		var enc ResponseEncoder
		if err := enc.Begin(&buf, op, headers); err != nil {
			t.Fatal(err)
		}
		for i, it := range items {
			if i%2 == 0 {
				enc.ReturnBytes([]byte(it))
			} else {
				enc.Return(it)
			}
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("streamed envelope diverges for op=%q items=%q:\nstream %q\noracle %q",
				op, items, buf.Bytes(), want)
		}
		// And the decoder round-trips it like any canonical envelope.
		resp, err := DecodeResponse(buf.Bytes())
		if err != nil {
			t.Fatalf("decode streamed envelope: %v", err)
		}
		if len(resp.Returns) != len(items) {
			t.Fatalf("round trip lost items: %d != %d", len(resp.Returns), len(items))
		}
	}
}

func TestResponseEncoderRejectsBadOpAndLegacy(t *testing.T) {
	var buf bytes.Buffer
	var enc ResponseEncoder
	if err := enc.Begin(&buf, "1bad", nil); err == nil {
		t.Fatal("want error for invalid operation name")
	}
	if buf.Len() != 0 {
		t.Fatalf("failed Begin wrote %d bytes", buf.Len())
	}
	SetLegacyCodec(true)
	defer SetLegacyCodec(false)
	if err := enc.Begin(&buf, "getPR", nil); err != ErrStreamUnavailable {
		t.Fatalf("want ErrStreamUnavailable under legacy codec, got %v", err)
	}
}

// TestResponseEncoderItemAllocs pins the fast-path encode: streaming
// items into a pre-grown buffer allocates nothing per item.
func TestResponseEncoderItemAllocs(t *testing.T) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	item := []byte("func_calls|/Code/MPI/MPI_Allgather|vampir|0.0-11.047856|129.75")
	var enc ResponseEncoder
	run := func() {
		buf.Reset()
		if err := enc.Begin(buf, "getPR", nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			enc.ReturnBytes(item)
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
	}
	run() // grow the buffer once
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("streamed encode allocates %.1f times per envelope, want 0", n)
	}
}
