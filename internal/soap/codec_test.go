package soap

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomWireString builds strings that exercise every escaping path:
// plain ASCII, XML specials, control characters, multibyte runes, and
// invalid UTF-8.
func randomWireString(rng *rand.Rand) string {
	alphabet := []string{
		"a", "Z", "0", "/", "|", ".", " ",
		"<", ">", "&", "\"", "'", "\t", "\n", "\r",
		"é", "世", " ", "&amp;", "]]>", string(byte(0x01)), string([]byte{0xff, 0xfe}),
	}
	n := rng.Intn(24)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// TestCodecMatchesLegacyBytes is the encoder differential: the hand-rolled
// codec must emit byte-identical envelopes to the retained encoding/xml
// oracle for requests, responses, and faults.
func TestCodecMatchesLegacyBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		var headers []HeaderEntry
		for h := rng.Intn(4); h > 0; h-- {
			headers = append(headers, HeaderEntry{Name: randomWireString(rng), Value: randomWireString(rng)})
		}
		var items []string
		for p := rng.Intn(6); p > 0; p-- {
			items = append(items, randomWireString(rng))
		}
		fast, err := EncodeRequest("getPR", headers, items)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := LegacyEncodeRequest("getPR", headers, items)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fast, slow) {
			t.Fatalf("request %d: fast and legacy bytes differ:\nfast: %q\nslow: %q", i, fast, slow)
		}
		fast, err = EncodeResponse("getPR", headers, items)
		if err != nil {
			t.Fatal(err)
		}
		slow, err = LegacyEncodeResponse("getPR", headers, items)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fast, slow) {
			t.Fatalf("response %d: fast and legacy bytes differ:\nfast: %q\nslow: %q", i, fast, slow)
		}
	}
	for _, f := range []*Fault{
		{Code: FaultServer, String: "boom"},
		{Code: FaultClient, String: "bad <input>", Detail: "detail & more"},
		{Code: "Custom", String: "", Detail: ""},
	} {
		fast, err := EncodeFault(f)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := LegacyEncodeFault(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fast, slow) {
			t.Fatalf("fault %v: fast and legacy bytes differ:\nfast: %q\nslow: %q", f, fast, slow)
		}
	}
}

// TestFastDecodeMatchesLegacyDecode: for canonical envelopes, the strict
// decoder and the tolerant decoder must produce identical structures.
func TestFastDecodeMatchesLegacyDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		var headers []HeaderEntry
		for h := rng.Intn(4); h > 0; h-- {
			// Header names land in an XML attribute; the legacy decoder
			// returns them as-decoded so any escapable string is fair.
			headers = append(headers, HeaderEntry{Name: randomWireString(rng), Value: randomWireString(rng)})
		}
		var items []string
		for p := rng.Intn(6); p > 0; p-- {
			items = append(items, randomWireString(rng))
		}
		data, err := EncodeResponse("getPR", headers, items)
		if err != nil {
			t.Fatal(err)
		}
		fast, ferr := fastDecode(data, "return")
		slow, serr := decodeEnvelope(data, "return")
		if serr != nil {
			t.Fatalf("legacy decode failed: %v", serr)
		}
		if ferr != nil {
			t.Fatalf("fast decode %d fell back (%v) on canonical input %q", i, ferr, data)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("decode %d: fast %+v != legacy %+v", i, fast, slow)
		}
	}
}

// TestFastDecodeUsedOnCanonical guards the fast path against silent
// regression to the fallback: the canonical shape must parse strictly.
func TestFastDecodeUsedOnCanonical(t *testing.T) {
	data, err := EncodeRequest("getPR", []HeaderEntry{{Name: "cursor", Value: "c1"}}, []string{"gflops", "0", "1", "hpl"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fastDecode(data, "param"); err != nil {
		t.Fatalf("fast decoder rejected canonical envelope: %v", err)
	}
}

// TestDecodeForeignEnvelope: documents not in canonical form (different
// prefixes, whitespace, comments) must still decode via the fallback.
func TestDecodeForeignEnvelope(t *testing.T) {
	doc := "<?xml version=\"1.0\"?>\n" +
		"<!-- emitted by a foreign SOAP stack -->\n" +
		"<s:Envelope xmlns:s=\"" + EnvelopeNS + "\">\n" +
		"  <s:Header>\n    <entry name=\"messageID\">77</entry>\n  </s:Header>\n" +
		"  <s:Body>\n    <getFociResponse>\n      <return>/Process/0</return>\n      <return>/Process/1</return>\n    </getFociResponse>\n  </s:Body>\n" +
		"</s:Envelope>\n"
	resp, err := DecodeResponse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Operation != "getFoci" || len(resp.Returns) != 2 || resp.Returns[0] != "/Process/0" {
		t.Fatalf("unexpected decode: %+v", resp)
	}
	if v, ok := resp.Header("messageID"); !ok || v != "77" {
		t.Fatalf("lost header: %+v", resp.Headers)
	}
}

// TestStreamingEncodersMatchByteAPIs: the *To variants must write the same
// bytes the slice-returning APIs produce.
func TestStreamingEncodersMatchByteAPIs(t *testing.T) {
	headers := []HeaderEntry{{Name: "cursor", Value: "page-3"}}
	items := []string{"a|b", "<tricky>"}
	want, err := EncodeResponse("getPR", headers, items)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeResponseTo(&buf, "getPR", headers, items); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("EncodeResponseTo differs:\n%q\n%q", buf.Bytes(), want)
	}
	wantReq, err := EncodeRequest("getPR", headers, items)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := EncodeRequestTo(&buf, "getPR", headers, items); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantReq) {
		t.Fatalf("EncodeRequestTo differs:\n%q\n%q", buf.Bytes(), wantReq)
	}
	f := &Fault{Code: FaultServer, String: "x"}
	wantFault, err := EncodeFault(f)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := EncodeFaultTo(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantFault) {
		t.Fatalf("EncodeFaultTo differs:\n%q\n%q", buf.Bytes(), wantFault)
	}
}

// TestLegacyCodecSwitch: the experiment hook must route the public
// encoders through the oracle and back.
func TestLegacyCodecSwitch(t *testing.T) {
	SetLegacyCodec(true)
	defer SetLegacyCodec(false)
	if !LegacyCodec() {
		t.Fatal("flag did not latch")
	}
	data, err := EncodeResponse("getPR", nil, []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := LegacyEncodeResponse("getPR", nil, []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("legacy switch not honoured")
	}
}

// TestDecodeTruncatedEnvelopes: every prefix of a valid envelope cut
// before the Body closes must fail with ErrMalformed (never panic, never
// succeed) — the truncated-body fault-path requirement. Cuts after the
// Body close are tolerated by the legacy decoder (the body is complete),
// so the sweep stops there.
func TestDecodeTruncatedEnvelopes(t *testing.T) {
	data, err := EncodeRequest("getPR", []HeaderEntry{{Name: "n", Value: "v"}}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	bodyEnd := bytes.Index(data, []byte("</soapenv:Body>"))
	if bodyEnd < 0 {
		t.Fatal("no body close in envelope")
	}
	for cut := 0; cut < bodyEnd; cut += 7 {
		if _, err := DecodeRequest(data[:cut]); err == nil {
			t.Fatalf("truncated envelope (%d/%d bytes) decoded successfully", cut, len(data))
		} else if !errors.Is(err, ErrMalformed) {
			t.Fatalf("truncated envelope (%d bytes): error %v is not ErrMalformed", cut, err)
		}
	}
}

// TestUnescapeRejectsUnknownEntities: malformed entities must punt to the
// legacy decoder rather than mis-decode.
func TestUnescapeRejectsUnknownEntities(t *testing.T) {
	for _, bad := range []string{"&bogus;", "&#xZZ;", "&#;", "&unterminated"} {
		if _, ok := unescape([]byte(bad)); ok {
			t.Fatalf("unescape accepted %q", bad)
		}
	}
	for in, want := range map[string]string{
		"&lt;&gt;&amp;&apos;&quot;": "<>&'\"",
		"&#x41;&#66;":               "AB",
		"&#xA;":                     "\n",
	} {
		got, ok := unescape([]byte(in))
		if !ok || got != want {
			t.Fatalf("unescape(%q) = %q, %v; want %q", in, got, ok, want)
		}
	}
}
