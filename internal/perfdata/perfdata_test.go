package perfdata

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKVRoundTrip(t *testing.T) {
	cases := []KV{
		{"name", "HPL"},
		{"description", "HPL - A Portable Implementation | with pipe"},
		{"empty", ""},
	}
	for _, kv := range cases {
		got, err := ParseKV(kv.Encode())
		if err != nil {
			t.Fatalf("ParseKV(%q): %v", kv.Encode(), err)
		}
		if got != kv {
			t.Errorf("round trip: got %+v want %+v", got, kv)
		}
	}
}

func TestParseKVMalformed(t *testing.T) {
	if _, err := ParseKV("nosep"); err == nil {
		t.Error("ParseKV(nosep): want error")
	}
}

func TestKVsRoundTrip(t *testing.T) {
	kvs := []KV{{"a", "1"}, {"b", "2"}}
	got, err := ParseKVs(EncodeKVs(kvs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, kvs) {
		t.Errorf("got %+v", got)
	}
	if _, err := ParseKVs([]string{"a|1", "bad"}); err == nil {
		t.Error("ParseKVs with malformed entry: want error")
	}
}

func TestAttributeRoundTrip(t *testing.T) {
	a := Attribute{Name: "numprocesses", Values: []string{"2", "4", "8"}}
	got, err := ParseAttribute(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("got %+v want %+v", got, a)
	}
}

func TestAttributeNoValues(t *testing.T) {
	got, err := ParseAttribute("rundate")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rundate" || len(got.Values) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestAttributeErrors(t *testing.T) {
	for _, s := range []string{"", "|x"} {
		if _, err := ParseAttribute(s); err == nil {
			t.Errorf("ParseAttribute(%q): want error", s)
		}
	}
}

func TestNormalizeValues(t *testing.T) {
	a := Attribute{Name: "n", Values: []string{"4", "2", "4", "16", "2"}}
	a.NormalizeValues()
	want := []string{"16", "2", "4"}
	if !reflect.DeepEqual(a.Values, want) {
		t.Errorf("got %v want %v", a.Values, want)
	}
}

func TestExecutionMatches(t *testing.T) {
	e := Execution{ID: "7", Attrs: map[string]string{"numprocesses": "16", "rundate": "2004-03-15"}}
	if !e.Matches("numprocesses", "16") {
		t.Error("exact match failed")
	}
	if e.Matches("numprocesses", "8") {
		t.Error("wrong value matched")
	}
	if e.Matches("missing", "16") {
		t.Error("missing attribute matched")
	}
}

func TestExecutionInfoSortedWithID(t *testing.T) {
	e := Execution{ID: "3", Attrs: map[string]string{"z": "1", "a": "2"}}
	info := e.Info()
	want := []KV{{"id", "3"}, {"a", "2"}, {"z", "1"}}
	if !reflect.DeepEqual(info, want) {
		t.Errorf("got %+v want %+v", info, want)
	}
}

func TestTimeRangeEncodeMatchesPaperExample(t *testing.T) {
	r := TimeRange{Start: 0, End: 11.047856}
	if got := r.Encode(); got != "0.0-11.047856" {
		t.Errorf("Encode() = %q, want 0.0-11.047856", got)
	}
}

func TestTimeRangeRoundTrip(t *testing.T) {
	cases := []TimeRange{{0, 1}, {0.5, 11.047856}, {100, 100}, {3, 1e6}}
	for _, r := range cases {
		got, err := ParseTimeRange(r.Encode())
		if err != nil {
			t.Fatalf("ParseTimeRange(%q): %v", r.Encode(), err)
		}
		if got != r {
			t.Errorf("got %+v want %+v", got, r)
		}
	}
}

func TestTimeRangeParseErrors(t *testing.T) {
	for _, s := range []string{"", "5", "-5", "a-b", "2.0-1.0", "1.0-"} {
		if _, err := ParseTimeRange(s); err == nil {
			t.Errorf("ParseTimeRange(%q): want error", s)
		}
	}
}

func TestTimeRangeContainsOverlaps(t *testing.T) {
	r := TimeRange{Start: 1, End: 5}
	if !r.Contains(1) || r.Contains(5) || !r.Contains(3) || r.Contains(0.5) {
		t.Error("Contains half-open semantics wrong")
	}
	if !r.Overlaps(TimeRange{Start: 4, End: 6}) || !r.Overlaps(TimeRange{Start: 0, End: 2}) || !r.Overlaps(TimeRange{Start: 2, End: 3}) {
		t.Error("Overlaps missed intersecting ranges")
	}
	if r.Overlaps(TimeRange{Start: 5, End: 6}) || r.Overlaps(TimeRange{Start: 0, End: 1}) {
		t.Error("Overlaps matched touching-only ranges")
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := Result{Metric: "gflops", Focus: "/Process/0", Time: TimeRange{Start: 0, End: 12.5}, Type: "hpl", Value: 1.234}
	got, err := ParseResult(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("got %+v want %+v", got, r)
	}
}

func TestResultParseErrors(t *testing.T) {
	for _, s := range []string{"", "a|b|c", "m|f|t|0.0-1.0|notanumber", "m|f|t|bad|1"} {
		if _, err := ParseResult(s); err == nil {
			t.Errorf("ParseResult(%q): want error", s)
		}
	}
}

func TestResultsRoundTrip(t *testing.T) {
	rs := []Result{
		{Metric: "a", Focus: "/x", Time: TimeRange{Start: 0, End: 1}, Type: "t", Value: 1},
		{Metric: "b", Focus: "/y", Time: TimeRange{Start: 1, End: 2}, Type: "t", Value: 2},
	}
	got, err := ParseResults(EncodeResults(rs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Errorf("got %+v", got)
	}
	if _, err := ParseResults([]string{"bad"}); err == nil {
		t.Error("ParseResults(bad): want error")
	}
}

func TestQueryKeyMatchesPaperStyle(t *testing.T) {
	q := Query{
		Metric: "func_calls",
		Foci:   []string{"/Code/MPI/MPI_Allgather"},
		Type:   UndefinedType,
		Time:   TimeRange{Start: 0, End: 11.047856},
	}
	want := "func_calls|/Code/MPI/MPI_Allgather|UNDEFINED|0.0-11.047856"
	if got := q.Key(); got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
}

func TestQueryKeyFociOrderInsensitive(t *testing.T) {
	a := Query{Metric: "m", Foci: []string{"/b", "/a"}, Type: "t", Time: TimeRange{Start: 0, End: 1}}
	b := Query{Metric: "m", Foci: []string{"/a", "/b"}, Type: "t", Time: TimeRange{Start: 0, End: 1}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	// And Key must not mutate the caller's foci slice order.
	if a.Foci[0] != "/b" {
		t.Error("Key mutated Foci")
	}
}

func TestQueryWireParamsRoundTrip(t *testing.T) {
	q := Query{Metric: "gflops", Foci: []string{"/Process/0", "/Process/1"}, Time: TimeRange{Start: 0.5, End: 9}, Type: "hpl"}
	got, err := ParseQueryParams(q.WireParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Errorf("got %+v want %+v", got, q)
	}
}

func TestParseQueryParamsErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"m", "0", "1"},
		{"m", "x", "1", "t"},
		{"m", "0", "x", "t"},
		{"m", "5", "1", "t"},
	}
	for _, args := range cases {
		if _, err := ParseQueryParams(args); err == nil {
			t.Errorf("ParseQueryParams(%v): want error", args)
		}
	}
}

func TestQueryMatches(t *testing.T) {
	r := Result{Metric: "gflops", Focus: "/Process/3", Time: TimeRange{Start: 2, End: 4}, Type: "hpl", Value: 1}
	base := Query{Metric: "gflops", Time: TimeRange{Start: 0, End: 10}, Type: "hpl"}

	if !base.Matches(r) {
		t.Error("empty foci should match any focus")
	}
	q := base
	q.Foci = []string{"/Process/3"}
	if !q.Matches(r) {
		t.Error("exact focus should match")
	}
	q.Foci = []string{"/Process"}
	if !q.Matches(r) {
		t.Error("ancestor focus should match")
	}
	q.Foci = []string{"/Code"}
	if q.Matches(r) {
		t.Error("unrelated focus matched")
	}
	q = base
	q.Metric = "other"
	if q.Matches(r) {
		t.Error("metric mismatch matched")
	}
	q = base
	q.Type = "vampir"
	if q.Matches(r) {
		t.Error("type mismatch matched")
	}
	q = base
	q.Type = UndefinedType
	if !q.Matches(r) {
		t.Error("UNDEFINED type should match any")
	}
	q = base
	q.Time = TimeRange{Start: 5, End: 10}
	if q.Matches(r) {
		t.Error("disjoint time matched")
	}
}

func TestFocusMatches(t *testing.T) {
	cases := []struct {
		query, stored string
		want          bool
	}{
		{"/", "/Process/27", true},
		{"", "/anything", true},
		{"/Process/27", "/Process/27", true},
		{"/Process", "/Process/27", true},
		{"/Process/", "/Process/27", true},
		{"/Process/2", "/Process/27", false},
		{"/Code/MPI", "/Code/MPI/MPI_Comm_rank", true},
		{"/Code/MPI/MPI_Send", "/Code/MPI/MPI_Comm_rank", false},
	}
	for _, c := range cases {
		if got := FocusMatches(c.query, c.stored); got != c.want {
			t.Errorf("FocusMatches(%q, %q) = %v, want %v", c.query, c.stored, got, c.want)
		}
	}
}

func TestFocusDepth(t *testing.T) {
	cases := map[string]int{"/": 0, "": 0, "/Process": 1, "/Process/27": 2, "/Code/MPI/MPI_Send": 3}
	for f, want := range cases {
		if got := FocusDepth(f); got != want {
			t.Errorf("FocusDepth(%q) = %d, want %d", f, got, want)
		}
	}
}

func TestUniqueSorted(t *testing.T) {
	in := []string{"b", "a", "b", "c", "a"}
	got := UniqueSorted(in)
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("got %v", got)
	}
	// Input must be unmodified.
	if !reflect.DeepEqual(in, []string{"b", "a", "b", "c", "a"}) {
		t.Error("UniqueSorted mutated input")
	}
}

// Property: results with finite values round-trip exactly.
func TestQuickResultRoundTrip(t *testing.T) {
	f := func(metric, focus, typ string, start, span, val float64) bool {
		clean := func(s string) string {
			s = strings.Map(func(r rune) rune {
				if r == '|' || r < 0x20 {
					return '_'
				}
				return r
			}, strings.ToValidUTF8(s, "_"))
			return s
		}
		// Execution-relative times are nonnegative by definition.
		start, span, val = math.Abs(sane(start)), math.Abs(sane(span)), sane(val)
		r := Result{
			Metric: clean(metric), Focus: clean(focus), Type: clean(typ),
			Time: TimeRange{Start: start, End: start + span}, Value: val,
		}
		got, err := ParseResult(r.Encode())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sane(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	// Keep magnitudes printable without precision loss drama.
	return math.Mod(f, 1e9)
}

// Property: Query.Key is stable under foci permutation.
func TestQuickQueryKeyStable(t *testing.T) {
	f := func(a, b, c string) bool {
		foci := []string{"/" + a, "/" + b, "/" + c}
		q1 := Query{Metric: "m", Foci: foci, Type: "t", Time: TimeRange{Start: 0, End: 1}}
		rev := []string{"/" + c, "/" + b, "/" + a}
		q2 := Query{Metric: "m", Foci: rev, Type: "t", Time: TimeRange{Start: 0, End: 1}}
		return q1.Key() == q2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
