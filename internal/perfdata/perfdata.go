// Package perfdata defines the common value types of the PPerfGrid
// ontology: application metadata, execution attribute sets, foci, and
// performance results.
//
// The paper's semantic layer abstracts every parallel-performance dataset
// into Applications (programs under study), Executions (individual runs,
// described by attribute/value pairs), and Performance Results (one metric,
// for one or more foci, over a time interval, collected by one tool type).
// All PortType operations exchange these values as arrays of strings with
// '|'-delimited fields; this package is the single place that defines and
// round-trips those encodings.
package perfdata

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sep is the field delimiter used in all wire encodings, per the paper's
// Application/Execution PortType semantics ("delimited by the '|' character").
const Sep = "|"

// UndefinedType is the conventional Type value for results whose collecting
// tool is unknown, as seen in the paper's cache-key example.
const UndefinedType = "UNDEFINED"

// KV is one name/value metadata pair, e.g. {"name", "HPL"} or
// {"version", "1.2"}. Application getAppInfo and Execution getInfo return
// arrays of these.
type KV struct {
	Name  string
	Value string
}

// Encode renders the pair in wire form "name|value".
func (kv KV) Encode() string { return kv.Name + Sep + kv.Value }

// ParseKV parses "name|value". The value may itself contain '|' characters;
// only the first separator splits.
func ParseKV(s string) (KV, error) {
	i := strings.Index(s, Sep)
	if i < 0 {
		return KV{}, fmt.Errorf("perfdata: malformed key/value %q", s)
	}
	return KV{Name: s[:i], Value: s[i+1:]}, nil
}

// EncodeKVs encodes a metadata list.
func EncodeKVs(kvs []KV) []string {
	out := make([]string, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.Encode()
	}
	return out
}

// ParseKVs parses a metadata list, failing on the first malformed entry.
func ParseKVs(ss []string) ([]KV, error) {
	out := make([]KV, len(ss))
	for i, s := range ss {
		kv, err := ParseKV(s)
		if err != nil {
			return nil, err
		}
		out[i] = kv
	}
	return out, nil
}

// Attribute is one execution-describing attribute together with the set of
// all unique values it takes across a data store, as returned by
// getExecQueryParams. The wire form is "name|v1|v2|...".
type Attribute struct {
	Name   string
	Values []string
}

// Encode renders the attribute in wire form.
func (a Attribute) Encode() string {
	return a.Name + Sep + strings.Join(a.Values, Sep)
}

// ParseAttribute parses "name|v1|v2|...". An attribute with no values
// ("name") is legal and yields an empty value set.
func ParseAttribute(s string) (Attribute, error) {
	if s == "" {
		return Attribute{}, errors.New("perfdata: empty attribute")
	}
	parts := strings.Split(s, Sep)
	a := Attribute{Name: parts[0]}
	if a.Name == "" {
		return Attribute{}, fmt.Errorf("perfdata: attribute %q has empty name", s)
	}
	if len(parts) > 1 {
		a.Values = parts[1:]
	}
	return a, nil
}

// NormalizeValues sorts and deduplicates the attribute's value set in
// place, enforcing the PortType requirement that value sets contain no
// duplicates.
func (a *Attribute) NormalizeValues() {
	sort.Strings(a.Values)
	a.Values = dedupSorted(a.Values)
}

func dedupSorted(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Execution is one run of an application: a unique ID plus its describing
// attributes.
type Execution struct {
	ID    string
	Attrs map[string]string
}

// Matches reports whether the execution's attribute equals the given value.
// A missing attribute never matches.
func (e Execution) Matches(attr, value string) bool {
	v, ok := e.Attrs[attr]
	return ok && v == value
}

// Info renders the execution's attributes as sorted metadata pairs, the
// shape returned by the Execution PortType's getInfo operation.
func (e Execution) Info() []KV {
	names := make([]string, 0, len(e.Attrs))
	for n := range e.Attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]KV, 0, len(names)+1)
	out = append(out, KV{Name: "id", Value: e.ID})
	for _, n := range names {
		out = append(out, KV{Name: n, Value: e.Attrs[n]})
	}
	return out
}

// TimeRange is a half-open measurement interval [Start, End) in seconds
// from the start of the execution.
type TimeRange struct {
	Start float64
	End   float64
}

// Contains reports whether t lies in the interval.
func (r TimeRange) Contains(t float64) bool { return t >= r.Start && t < r.End }

// Overlaps reports whether two intervals intersect.
func (r TimeRange) Overlaps(o TimeRange) bool { return r.Start < o.End && o.Start < r.End }

// Encode renders the range as "start-end" with full float precision, the
// format used in Performance Result cache keys (e.g. "0.0-11.047856").
func (r TimeRange) Encode() string {
	return formatTime(r.Start) + "-" + formatTime(r.End)
}

// AppendEncode appends the Encode form to dst without building any
// intermediate string. The output bytes are identical to Encode's.
func (r TimeRange) AppendEncode(dst []byte) []byte {
	dst = appendTime(dst, r.Start)
	dst = append(dst, '-')
	return appendTime(dst, r.End)
}

func formatTime(f float64) string {
	s := strconv.FormatFloat(f, 'f', -1, 64)
	if !strings.Contains(s, ".") {
		s += ".0"
	}
	return s
}

// appendTime is the allocation-free twin of formatTime.
func appendTime(dst []byte, f float64) []byte {
	start := len(dst)
	dst = strconv.AppendFloat(dst, f, 'f', -1, 64)
	for _, c := range dst[start:] {
		if c == '.' {
			return dst
		}
	}
	return append(dst, '.', '0')
}

// ParseTimeRange parses "start-end".
func ParseTimeRange(s string) (TimeRange, error) {
	i := strings.LastIndex(s, "-")
	if i <= 0 {
		return TimeRange{}, fmt.Errorf("perfdata: malformed time range %q", s)
	}
	start, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return TimeRange{}, fmt.Errorf("perfdata: time range %q: %w", s, err)
	}
	end, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil {
		return TimeRange{}, fmt.Errorf("perfdata: time range %q: %w", s, err)
	}
	if end < start {
		return TimeRange{}, fmt.Errorf("perfdata: time range %q ends before it starts", s)
	}
	return TimeRange{Start: start, End: end}, nil
}

// Result is one Performance Result: the value of one metric, at one focus,
// over one time interval, collected by one tool type.
type Result struct {
	Metric string
	Focus  string
	Time   TimeRange
	Type   string
	Value  float64
}

// Encode renders the result in wire form
// "metric|focus|type|start-end|value".
func (r Result) Encode() string {
	return strings.Join([]string{
		r.Metric, r.Focus, r.Type, r.Time.Encode(),
		strconv.FormatFloat(r.Value, 'g', -1, 64),
	}, Sep)
}

// AppendEncode appends the wire form to dst without building the
// intermediate field strings Encode does. The output bytes are identical
// to Encode's; differential tests pin the equivalence.
func (r Result) AppendEncode(dst []byte) []byte {
	dst = append(dst, r.Metric...)
	dst = append(dst, '|')
	dst = append(dst, r.Focus...)
	dst = append(dst, '|')
	dst = append(dst, r.Type...)
	dst = append(dst, '|')
	dst = r.Time.AppendEncode(dst)
	dst = append(dst, '|')
	return strconv.AppendFloat(dst, r.Value, 'g', -1, 64)
}

// ParseResult parses the wire form produced by Encode.
func ParseResult(s string) (Result, error) {
	var r Result
	if err := ParseResultInto(s, &r); err != nil {
		return Result{}, err
	}
	return r, nil
}

// ParseResultInto parses the wire form produced by Encode into *r by
// walking separator indexes: the field values are substrings sharing s's
// backing array, so a well-formed parse allocates nothing. It accepts
// exactly the strings ParseResult accepted (differential tests pin the
// equivalence, errors included).
func ParseResultInto(s string, r *Result) error {
	i1 := strings.IndexByte(s, '|')
	if i1 < 0 {
		return malformedResult(s, 1)
	}
	i2 := strings.IndexByte(s[i1+1:], '|')
	if i2 < 0 {
		return malformedResult(s, 2)
	}
	i2 += i1 + 1
	i3 := strings.IndexByte(s[i2+1:], '|')
	if i3 < 0 {
		return malformedResult(s, 3)
	}
	i3 += i2 + 1
	i4 := strings.IndexByte(s[i3+1:], '|')
	if i4 < 0 {
		return malformedResult(s, 4)
	}
	i4 += i3 + 1
	if strings.IndexByte(s[i4+1:], '|') >= 0 {
		return malformedResult(s, strings.Count(s, Sep)+1)
	}
	tr, err := ParseTimeRange(s[i3+1 : i4])
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(s[i4+1:], 64)
	if err != nil {
		return fmt.Errorf("perfdata: result %q: bad value: %w", s, err)
	}
	r.Metric = s[:i1]
	r.Focus = s[i1+1 : i2]
	r.Type = s[i2+1 : i3]
	r.Time = tr
	r.Value = v
	return nil
}

// malformedResult reproduces ParseResult's historical field-count error.
func malformedResult(s string, fields int) error {
	return fmt.Errorf("perfdata: malformed result %q: want 5 fields, got %d", s, fields)
}

// EncodeResults encodes a result list.
func EncodeResults(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Encode()
	}
	return out
}

// ParseResults parses a result list, failing on the first malformed entry.
func ParseResults(ss []string) ([]Result, error) {
	out := make([]Result, len(ss))
	for i, s := range ss {
		if err := ParseResultInto(s, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Query is one Performance Result query: the [metric, foci, time, type]
// tuple accepted by the Execution PortType's getPR operation.
type Query struct {
	Metric string
	Foci   []string
	Time   TimeRange
	Type   string
}

// Key renders the query as the canonical cache-key string used by the
// Performance Results cache (section 5.3.2.3 of the paper), e.g.
// "func_calls|/Code/MPI/MPI_Allgather|UNDEFINED|0.0-11.047856".
// Foci are sorted so that logically identical queries share a key.
func (q Query) Key() string {
	foci := make([]string, len(q.Foci))
	copy(foci, q.Foci)
	sort.Strings(foci)
	return strings.Join([]string{
		q.Metric, strings.Join(foci, ","), q.Type, q.Time.Encode(),
	}, Sep)
}

// WireParams renders the query as the positional getPR argument list:
// metric, start, end, type, focus... .
func (q Query) WireParams() []string {
	out := make([]string, 0, 4+len(q.Foci))
	out = append(out, q.Metric, formatTime(q.Time.Start), formatTime(q.Time.End), q.Type)
	out = append(out, q.Foci...)
	return out
}

// ParseQueryParams decodes the positional getPR argument list.
func ParseQueryParams(args []string) (Query, error) {
	if len(args) < 4 {
		return Query{}, fmt.Errorf("perfdata: getPR requires at least 4 args, got %d", len(args))
	}
	start, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return Query{}, fmt.Errorf("perfdata: getPR start time %q: %w", args[1], err)
	}
	end, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return Query{}, fmt.Errorf("perfdata: getPR end time %q: %w", args[2], err)
	}
	if end < start {
		return Query{}, fmt.Errorf("perfdata: getPR time range ends (%v) before it starts (%v)", end, start)
	}
	q := Query{Metric: args[0], Time: TimeRange{Start: start, End: end}, Type: args[3]}
	if len(args) > 4 {
		q.Foci = append(q.Foci, args[4:]...)
	}
	return q, nil
}

// Matches reports whether a stored result satisfies the query. An empty
// query focus list matches any focus; the UNDEFINED type matches any type.
func (q Query) Matches(r Result) bool {
	if r.Metric != q.Metric {
		return false
	}
	if q.Type != UndefinedType && r.Type != q.Type {
		return false
	}
	if !q.Time.Overlaps(r.Time) {
		return false
	}
	if len(q.Foci) == 0 {
		return true
	}
	for _, f := range q.Foci {
		if FocusMatches(f, r.Focus) {
			return true
		}
	}
	return false
}

// FocusMatches reports whether the stored focus path lies at or below the
// queried focus in the resource hierarchy. Foci are slash paths rooted at
// "/", e.g. "/Process/27" or "/Code/MPI/MPI_Comm_rank"; querying "/Code/MPI"
// matches any result recorded under that subtree.
func FocusMatches(query, stored string) bool {
	if query == "/" || query == "" || query == stored {
		return true
	}
	return strings.HasPrefix(stored, strings.TrimSuffix(query, "/")+"/")
}

// FocusDepth returns the number of components in a focus path; "/" has
// depth zero.
func FocusDepth(focus string) int {
	f := strings.Trim(focus, "/")
	if f == "" {
		return 0
	}
	return strings.Count(f, "/") + 1
}

// UniqueSorted returns the sorted set of unique strings in ss, the shape
// required by every discovery operation (getFoci, getMetrics, getTypes).
func UniqueSorted(ss []string) []string {
	out := make([]string, len(ss))
	copy(out, ss)
	sort.Strings(out)
	return dedupSorted(out)
}
