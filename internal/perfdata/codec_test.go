package perfdata

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// encodeOracle is the retained string-based wire encoding AppendEncode
// must reproduce byte for byte.
func encodeOracle(r Result) string {
	return strings.Join([]string{
		r.Metric, r.Focus, r.Type, r.Time.Encode(),
		strconv.FormatFloat(r.Value, 'g', -1, 64),
	}, Sep)
}

// parseOracle is the retained strings.Split parser ParseResultInto must
// agree with, success and failure alike.
func parseOracle(s string) (Result, error) {
	parts := strings.Split(s, Sep)
	if len(parts) != 5 {
		return Result{}, malformedResult(s, len(parts))
	}
	tr, err := ParseTimeRange(parts[3])
	if err != nil {
		return Result{}, err
	}
	v, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return Result{}, err
	}
	return Result{Metric: parts[0], Focus: parts[1], Type: parts[2], Time: tr, Value: v}, nil
}

func randomResult(rng *rand.Rand) Result {
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	start := rng.Float64() * 100
	return Result{
		Metric: pick([]string{"func_calls", "gflops", "bandwidth", "wall_clock", "m"}),
		Focus:  pick([]string{"/", "/Process/27", "/Code/MPI/MPI_Allgather", "/Machine/node0/cpu1", "f"}),
		Type:   pick([]string{"UNDEFINED", "vampir", "hpl", "presta"}),
		Time:   TimeRange{Start: start, End: start + rng.Float64()*1000},
		Value:  rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6)),
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var dst []byte
	for i := 0; i < 2000; i++ {
		r := randomResult(rng)
		dst = r.AppendEncode(dst[:0])
		if got, want := string(dst), encodeOracle(r); got != want {
			t.Fatalf("AppendEncode = %q, Encode oracle = %q", got, want)
		}
		if got, want := r.Encode(), encodeOracle(r); got != want {
			t.Fatalf("Encode = %q, oracle = %q", got, want)
		}
	}
	// Edge values the 'f'/'g' formatters treat specially.
	for _, r := range []Result{
		{Metric: "m", Focus: "/", Type: "t", Time: TimeRange{Start: 0, End: 0}, Value: 0},
		{Metric: "m", Focus: "/", Type: "t", Time: TimeRange{Start: 1e21, End: 2e21}, Value: 1e-300},
		{Metric: "m", Focus: "/", Type: "t", Time: TimeRange{Start: 0.1, End: 11.047856}, Value: math.MaxFloat64},
		{Metric: "", Focus: "", Type: "", Time: TimeRange{Start: 3, End: 3}, Value: -0.0},
	} {
		if got, want := string(r.AppendEncode(nil)), encodeOracle(r); got != want {
			t.Fatalf("AppendEncode = %q, Encode oracle = %q", got, want)
		}
	}
}

func TestTimeRangeAppendEncodeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		tr := TimeRange{Start: rng.Float64() * 1e6, End: rng.Float64() * 1e6}
		if i%3 == 0 {
			tr.Start = float64(rng.Intn(1000)) // integral: formatTime adds ".0"
			tr.End = float64(rng.Intn(1000))
		}
		if got, want := string(tr.AppendEncode(nil)), tr.Encode(); got != want {
			t.Fatalf("TimeRange.AppendEncode = %q, Encode = %q", got, want)
		}
	}
}

func TestParseResultIntoMatchesSplitOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []string{
		"", "|", "||||", "|||||", "a|b|c|d|e|f",
		"m|f|t|0.0-1.0|nope",
		"m|f|t|bad|1",
		"m|f|t|1.0-0.5|1", // ends before it starts
		"m|f|t|0.0-1.0|1.5",
		"func_calls|/Code/MPI|UNDEFINED|0.0-11.047856|42",
	}
	for i := 0; i < 2000; i++ {
		cases = append(cases, encodeOracle(randomResult(rng)))
	}
	// Mutated garbage: random separator counts.
	for i := 0; i < 500; i++ {
		n := rng.Intn(8)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = encodeOracle(randomResult(rng))[:rng.Intn(6)]
		}
		cases = append(cases, strings.Join(parts, Sep))
	}
	for _, s := range cases {
		want, wantErr := parseOracle(s)
		var got Result
		gotErr := ParseResultInto(s, &got)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("ParseResultInto(%q) err = %v, oracle err = %v", s, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("ParseResultInto(%q) = %+v, oracle = %+v", s, got, want)
		}
	}
}

func TestParseResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		r := randomResult(rng)
		got, err := ParseResult(r.Encode())
		if err != nil {
			t.Fatalf("round trip %+v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
	}
}

// TestAppendEncodeAllocs pins the zero-garbage contract: with capacity in
// dst, AppendEncode allocates nothing, and a well-formed ParseResultInto
// allocates nothing (fields are substrings of the input).
func TestAppendEncodeAllocs(t *testing.T) {
	r := Result{
		Metric: "func_calls", Focus: "/Code/MPI/MPI_Allgather", Type: "vampir",
		Time: TimeRange{Start: 0, End: 11.047856}, Value: 129.75,
	}
	dst := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		dst = r.AppendEncode(dst[:0])
	}); n != 0 {
		t.Fatalf("AppendEncode allocates %.1f times per run, want 0", n)
	}
	s := r.Encode()
	var out Result
	if n := testing.AllocsPerRun(200, func() {
		if err := ParseResultInto(s, &out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ParseResultInto allocates %.1f times per run, want 0", n)
	}
}
