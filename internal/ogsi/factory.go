package ogsi

import (
	"fmt"

	"pperfgrid/internal/wsdl"
)

// Constructor builds a new transient service implementation from the
// CreateService parameters. It returns the implementation and (optionally)
// a definition for the instance's service-specific PortTypes.
type Constructor func(params []string) (Service, *wsdl.Definition, error)

// Factory is the Factory PortType (Table 3): a persistent grid service
// whose CreateService operation instantiates transient instances of a
// fixed product service type and returns their GSHs.
type Factory struct {
	hosting     *Hosting
	productType string
	construct   Constructor
	productDef  *wsdl.Definition
}

// NewFactory builds a factory producing instances of productType. If
// productDef is non-nil it is cloned into every instance (constructors may
// still override it by returning their own definition).
func NewFactory(h *Hosting, productType string, productDef *wsdl.Definition, construct Constructor) *Factory {
	return &Factory{hosting: h, productType: productType, construct: construct, productDef: productDef}
}

// Deploy registers the factory as a persistent service named
// <productType>Factory and returns its instance.
func (f *Factory) Deploy() (*Instance, error) {
	return f.hosting.DeployPersistent(f.productType+"Factory", f, FactoryDefinition(f.productType))
}

// Create instantiates one product instance directly (same-process path).
func (f *Factory) Create(params []string) (*Instance, error) {
	impl, def, err := f.construct(params)
	if err != nil {
		return nil, fmt.Errorf("ogsi: CreateService(%s): %w", f.productType, err)
	}
	if def == nil && f.productDef != nil {
		def = f.productDef.Clone()
	}
	return f.hosting.CreateInstance(f.productType, impl, def)
}

// CreateBatch is the plural Create: one product instance per parameter,
// each constructed with that single parameter. It backs the CreateServices
// wire operation, which exists so a batch of instantiations costs one SOAP
// round trip instead of one per instance (the Manager's scale-out path).
// On error no results are returned; instances constructed before the
// failure stay live and are reclaimed by lifetime management.
func (f *Factory) CreateBatch(params []string) ([]*Instance, error) {
	out := make([]*Instance, len(params))
	for i, p := range params {
		in, err := f.Create([]string{p})
		if err != nil {
			return nil, fmt.Errorf("ogsi: %s(%s)[%d]: %w", OpCreateServices, f.productType, i, err)
		}
		out[i] = in
	}
	return out, nil
}

// Invoke implements the Factory PortType over the wire: CreateService
// returns the new instance's GSH as a single-element string array;
// CreateServices returns one GSH per constructor parameter, in order.
func (f *Factory) Invoke(op string, params []string) ([]string, error) {
	switch op {
	case OpCreateService:
		in, err := f.Create(params)
		if err != nil {
			return nil, err
		}
		return []string{in.Handle().String()}, nil
	case OpCreateServices:
		ins, err := f.CreateBatch(params)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(ins))
		for i, in := range ins {
			out[i] = in.Handle().String()
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: %q on factory", ErrUnknownOperation, op)
}

// ServiceData publishes the factory's product type.
func (f *Factory) ServiceData() map[string][]string {
	return map[string][]string{
		"productType": {f.productType},
	}
}

// HandleMap is the HandleMap PortType: it resolves a GSH to a Grid Service
// Reference. In this implementation the GSR is the same URL plus a
// liveness flag, so FindByHandle returns [url, "alive"|"unknown"].
type HandleMap struct {
	hosting *Hosting
}

// NewHandleMap builds a handle map over a hosting environment.
func NewHandleMap(h *Hosting) *HandleMap { return &HandleMap{hosting: h} }

// Deploy registers the handle map as the persistent "HandleMap" service.
func (m *HandleMap) Deploy() (*Instance, error) {
	return m.hosting.DeployPersistent("HandleMap", m, HandleMapDefinition())
}

// Invoke implements FindByHandle.
func (m *HandleMap) Invoke(op string, params []string) ([]string, error) {
	if op != OpFindByHandle {
		return nil, fmt.Errorf("%w: %q on handle map", ErrUnknownOperation, op)
	}
	if len(params) != 1 {
		return nil, fmt.Errorf("ogsi: %s requires 1 parameter", OpFindByHandle)
	}
	h, err := parseHandle(params[0])
	if err != nil {
		return nil, err
	}
	if _, ok := m.hosting.LookupHandle(h); ok {
		return []string{h.URL(), "alive"}, nil
	}
	return []string{h.URL(), "unknown"}, nil
}
