package ogsi

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SoftStateRegistry implements the Registry PortType (Table 3): soft-state
// registration of grid service handles. Each registration carries a
// lifetime; entries that are not refreshed before their lease expires are
// purged, so the registry converges on the set of services that are
// actually alive — the OGSI soft-state model.
type SoftStateRegistry struct {
	nowFn func() time.Time

	mu      sync.Mutex
	entries map[string]registryEntry // handle string -> entry
}

type registryEntry struct {
	topic   string
	expires time.Time
}

// NewSoftStateRegistry creates an empty registry.
func NewSoftStateRegistry() *SoftStateRegistry {
	return &SoftStateRegistry{nowFn: time.Now, entries: make(map[string]registryEntry)}
}

// SetClock replaces the time source for lease evaluation.
func (r *SoftStateRegistry) SetClock(now func() time.Time) { r.nowFn = now }

// Register records a handle under a topic with the given lease. Re-
// registering refreshes the lease.
func (r *SoftStateRegistry) Register(handle, topic string, lease time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[handle] = registryEntry{topic: topic, expires: r.nowFn().Add(lease)}
}

// Unregister removes a handle; unknown handles are ignored (idempotent,
// per the deregistration semantics of Table 3).
func (r *SoftStateRegistry) Unregister(handle string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, handle)
}

// Lookup returns the live handles registered under a topic, sorted.
func (r *SoftStateRegistry) Lookup(topic string) []string {
	now := r.nowFn()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for h, e := range r.entries {
		if e.topic == topic && now.Before(e.expires) {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// Purge removes expired entries and returns how many were dropped.
func (r *SoftStateRegistry) Purge() int {
	now := r.nowFn()
	r.mu.Lock()
	defer r.mu.Unlock()
	dropped := 0
	for h, e := range r.entries {
		if !now.Before(e.expires) {
			delete(r.entries, h)
			dropped++
		}
	}
	return dropped
}

// Len returns the number of live entries.
func (r *SoftStateRegistry) Len() int {
	now := r.nowFn()
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		if now.Before(e.expires) {
			n++
		}
	}
	return n
}

// Invoke implements the wire form of the Registry PortType:
//
//	RegisterService(handle, topic, leaseSeconds) -> ["registered"]
//	UnregisterService(handle)                    -> ["unregistered"]
//	FindRegistered(topic)                        -> handles...
func (r *SoftStateRegistry) Invoke(op string, params []string) ([]string, error) {
	switch op {
	case OpRegisterService:
		if len(params) != 3 {
			return nil, fmt.Errorf("ogsi: %s requires [handle, topic, leaseSeconds]", OpRegisterService)
		}
		if _, err := parseHandle(params[0]); err != nil {
			return nil, err
		}
		secs, err := strconv.ParseFloat(params[2], 64)
		if err != nil || secs <= 0 {
			return nil, fmt.Errorf("ogsi: bad lease %q", params[2])
		}
		r.Register(params[0], params[1], time.Duration(secs*float64(time.Second)))
		return []string{"registered"}, nil
	case OpUnregisterService:
		if len(params) != 1 {
			return nil, fmt.Errorf("ogsi: %s requires [handle]", OpUnregisterService)
		}
		r.Unregister(params[0])
		return []string{"unregistered"}, nil
	case "FindRegistered":
		if len(params) != 1 {
			return nil, fmt.Errorf("ogsi: FindRegistered requires [topic]")
		}
		return r.Lookup(params[0]), nil
	}
	return nil, fmt.Errorf("%w: %q on registry", ErrUnknownOperation, op)
}
