// Package ogsi implements the Open Grid Services Infrastructure core that
// PPerfGrid builds on: stateful transient service instances with unique
// Grid Service Handles, the GridService / Factory / HandleMap /
// NotificationSource / NotificationSink / Registry PortTypes of the
// paper's Table 3, soft-state lifetime management, and service data
// elements.
//
// The paper used the Globus Toolkit 3.2 for this layer; this package is
// the from-scratch substitute, providing the same semantics over the SOAP
// transport of package container. Optional service interfaces extend the
// wire path: PagedService (chunked results behind a cursor), RawResponder
// (pre-encoded response envelopes served verbatim), and the streaming
// pair RawStreamer / RawPagedStreamer (envelopes encoded directly into
// the transport's pooled buffer — the cold path's zero-intermediate
// encode); the hosting Instance routes the Invoke* variants to them with
// the same WSDL validation as plain Invoke.
package ogsi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pperfgrid/internal/gsh"
	"pperfgrid/internal/wsdl"
)

// SOAP header entry names of the paged-call protocol. They live here —
// beside the PagedService contract — so both the transport (package
// container) and services that stream their own paged envelopes
// (RawPagedStreamer implementations) name them without an import cycle.
const (
	// HeaderCursor carries the opaque paging cursor: empty/absent on a
	// fresh call, the service's continuation token afterwards.
	HeaderCursor = "ppg-cursor"
	// HeaderPageSize bounds the number of returned values per page.
	HeaderPageSize = "ppg-pageSize"
	// HeaderDeadline carries the caller's remaining deadline budget in
	// milliseconds (a relative budget, not an absolute timestamp, so
	// clients and servers need no clock synchronization). The transport
	// folds it into the request context before dispatch, and
	// context-aware services propagate it down through their layers — an
	// expired request is turned away before it reaches a data store.
	HeaderDeadline = "ppg-deadline"
)

// Service is the invocation interface every grid service implementation
// provides. All PPerfGrid operations exchange string arrays (see the
// paper's PortType tables), so one dynamic entry point suffices; the
// hosting Instance validates operation names and arity against the
// service's WSDL definition before delegating.
type Service interface {
	Invoke(op string, params []string) ([]string, error)
}

// ServiceFunc adapts a function to the Service interface.
type ServiceFunc func(op string, params []string) ([]string, error)

// Invoke calls f.
func (f ServiceFunc) Invoke(op string, params []string) ([]string, error) {
	return f(op, params)
}

// ServiceDataProvider is optionally implemented by services that publish
// dynamic service data elements (SDEs) beyond the standard ones.
type ServiceDataProvider interface {
	ServiceData() map[string][]string
}

// PagedService is optionally implemented by services whose operations can
// return large result arrays in chunks. A call with an empty cursor starts
// a new paged result set: the service returns up to limit values plus an
// opaque cursor naming the remainder ("" when the set is complete). A call
// with a non-empty cursor continues that set; params are ignored on
// continuation. The transport carries the cursor in a SOAP header entry
// (see package container), keeping the body shape — an array of strings —
// identical to the unpaged protocol.
type PagedService interface {
	InvokePaged(op string, params []string, cursor string, limit int) (values []string, next string, err error)
}

// RawResponder is optionally implemented by services that can answer an
// operation with pre-encoded SOAP response envelope bytes — the transport
// writes them to the wire verbatim, skipping marshalling entirely. ok
// reports whether the service took the call; when false the caller must
// fall back to Invoke. The Execution service uses this to serve repeat
// getPR queries straight from its encoded-response cache.
//
// Implementations validate op and params themselves for the calls they
// accept: the hosting Instance does not run WSDL validation before
// InvokeRaw, so the common declined case (which falls back to Invoke,
// where full validation runs) costs nothing extra.
type RawResponder interface {
	InvokeRaw(op string, params []string) (raw []byte, ok bool, err error)
}

// RawStreamer is optionally implemented by services that can encode an
// operation's response envelope directly into the transport's pooled
// write buffer — the zero-intermediate cold path: no per-item strings,
// no owned envelope slice, one buffer from store to wire. ok reports
// whether the service took the call; when false the buffer is untouched
// and the caller falls back to Invoke. When err != nil the buffer's
// contents are undefined and must be discarded (the transport writes a
// fault instead). Like RawResponder, implementations validate op and
// params themselves for calls they accept.
type RawStreamer interface {
	InvokeRawTo(op string, params []string, buf *bytes.Buffer) (ok bool, err error)
}

// RawPagedStreamer is the paged counterpart of RawStreamer: the service
// encodes one page's response envelope (including the HeaderCursor
// entry when the set continues) into buf. ok=false leaves the buffer
// untouched and the caller falls back to the string-based PagedService
// protocol. The envelope bytes must equal what the transport would have
// produced from the equivalent InvokePaged page, so paged responses are
// indistinguishable on the wire whichever path served them.
type RawPagedStreamer interface {
	InvokePagedRawTo(op string, params []string, cursor string, limit int, buf *bytes.Buffer) (next string, ok bool, err error)
}

// ContextService is optionally implemented by services whose operations
// honor a per-request context: the transport derives it from the HTTP
// request (cancellation when the peer goes away) and the HeaderDeadline
// budget, and the service propagates it down — through singleflight
// waits, cache fills, and Mapping-Layer fetches in the Execution
// service's case. Services without it are dispatched through plain
// Invoke and simply cannot be cut short mid-operation.
type ContextService interface {
	InvokeContext(ctx context.Context, op string, params []string) ([]string, error)
}

// ContextPagedService is the context-aware counterpart of PagedService.
type ContextPagedService interface {
	InvokePagedContext(ctx context.Context, op string, params []string, cursor string, limit int) (values []string, next string, err error)
}

// ContextRawResponder is the context-aware counterpart of RawResponder.
type ContextRawResponder interface {
	InvokeRawContext(ctx context.Context, op string, params []string) (raw []byte, ok bool, err error)
}

// ContextRawStreamer is the context-aware counterpart of RawStreamer.
type ContextRawStreamer interface {
	InvokeRawToContext(ctx context.Context, op string, params []string, buf *bytes.Buffer) (ok bool, err error)
}

// ContextRawPagedStreamer is the context-aware counterpart of
// RawPagedStreamer.
type ContextRawPagedStreamer interface {
	InvokePagedRawToContext(ctx context.Context, op string, params []string, cursor string, limit int, buf *bytes.Buffer) (next string, ok bool, err error)
}

// Destroyer is optionally implemented by services that must release
// resources when their hosting instance is destroyed.
type Destroyer interface {
	OnDestroy()
}

// Errors returned by instance operations.
var (
	ErrDestroyed        = errors.New("ogsi: service instance destroyed")
	ErrUnknownOperation = errors.New("ogsi: unknown operation")
	ErrNoSuchData       = errors.New("ogsi: no such service data element")
)

// Standard GridService PortType operation names (Table 3).
const (
	OpFindServiceData      = "FindServiceData"
	OpSetTerminationTime   = "SetTerminationTime"
	OpDestroy              = "Destroy"
	OpCreateService        = "CreateService"
	OpCreateServices       = "CreateServices"
	OpFindByHandle         = "FindByHandle"
	OpRegisterService      = "RegisterService"
	OpUnregisterService    = "UnregisterService"
	OpSubscribe            = "SubscribeToNotificationTopic"
	OpDeliverNotification  = "DeliverNotification"
	OpGetServiceDefinition = "GetServiceDefinition"
)

// TerminationNone is the SetTerminationTime argument meaning "no expiry".
const TerminationNone = "none"

// Instance is one stateful grid service instance: an implementation plus
// its OGSI state (handle, service data, termination time).
type Instance struct {
	handle gsh.Handle
	def    *wsdl.Definition
	impl   Service

	hosting *Hosting // back-pointer for Destroy; nil in unit tests

	mu          sync.Mutex
	created     time.Time
	termination time.Time // zero means no scheduled termination
	destroyed   bool
	serviceData map[string][]string
}

// newInstance builds an instance. The caller supplies the fully formed
// handle and a definition that already includes the GridService PortType.
func newInstance(h gsh.Handle, impl Service, def *wsdl.Definition, hosting *Hosting, now time.Time) *Instance {
	return &Instance{
		handle:      h,
		def:         def,
		impl:        impl,
		hosting:     hosting,
		created:     now,
		serviceData: make(map[string][]string),
	}
}

// Handle returns the instance's GSH.
func (in *Instance) Handle() gsh.Handle { return in.handle }

// Definition returns the instance's service description.
func (in *Instance) Definition() *wsdl.Definition { return in.def }

// Impl returns the underlying implementation, for co-located (local
// bypass) access.
func (in *Instance) Impl() Service { return in.impl }

// Destroyed reports whether the instance has been destroyed.
func (in *Instance) Destroyed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.destroyed
}

// SetServiceData sets one service data element.
func (in *Instance) SetServiceData(name string, values ...string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.serviceData[name] = values
}

// Invoke dispatches an operation: standard GridService PortType operations
// are handled by the instance itself; everything else is validated against
// the WSDL definition and delegated to the implementation.
func (in *Instance) Invoke(op string, params []string) ([]string, error) {
	return in.InvokeContext(context.Background(), op, params)
}

// InvokeContext is Invoke under a caller-supplied context. Standard
// GridService operations ignore it (they are instance-local and fast);
// implementation operations reach the service's ContextService entry
// point when it has one, so the transport's per-request deadline flows
// into the service's own layers.
func (in *Instance) InvokeContext(ctx context.Context, op string, params []string) ([]string, error) {
	in.mu.Lock()
	if in.destroyed {
		in.mu.Unlock()
		return nil, ErrDestroyed
	}
	in.mu.Unlock()

	switch op {
	case OpFindServiceData:
		if len(params) != 1 {
			return nil, fmt.Errorf("ogsi: %s requires 1 parameter", OpFindServiceData)
		}
		return in.findServiceData(params[0])
	case OpSetTerminationTime:
		if len(params) != 1 {
			return nil, fmt.Errorf("ogsi: %s requires 1 parameter", OpSetTerminationTime)
		}
		return in.setTerminationTime(params[0])
	case OpDestroy:
		if len(params) != 0 {
			return nil, fmt.Errorf("ogsi: %s takes no parameters", OpDestroy)
		}
		return nil, in.Destroy()
	case OpGetServiceDefinition:
		data, err := in.def.Marshal()
		if err != nil {
			return nil, err
		}
		return []string{string(data)}, nil
	}

	if err := in.validate(op, params); err != nil {
		return nil, err
	}
	if cs, ok := in.impl.(ContextService); ok {
		return cs.InvokeContext(ctx, op, params)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return in.impl.Invoke(op, params)
}

// validate checks a non-standard operation against the WSDL definition.
func (in *Instance) validate(op string, params []string) error {
	if in.def == nil {
		return nil
	}
	if err := in.def.Validate(op, params); err != nil {
		if errors.Is(err, wsdl.ErrUnknownOperation) {
			return fmt.Errorf("%w: %q", ErrUnknownOperation, op)
		}
		return err
	}
	return nil
}

// standardOp reports whether op belongs to the GridService PortType that
// Invoke handles itself; those operations never page and are never served
// raw.
func standardOp(op string) bool {
	switch op {
	case OpFindServiceData, OpSetTerminationTime, OpDestroy, OpGetServiceDefinition:
		return true
	}
	return false
}

// InvokePaged dispatches a paged invocation. Implementations that support
// paging (PagedService) get the cursor and limit; everything else falls
// back to a plain Invoke whose whole result is returned as a single
// terminal page, so callers can page uniformly against any instance.
func (in *Instance) InvokePaged(op string, params []string, cursor string, limit int) ([]string, string, error) {
	return in.InvokePagedContext(context.Background(), op, params, cursor, limit)
}

// InvokePagedContext is InvokePaged under a caller-supplied context; see
// InvokeContext for the propagation contract.
func (in *Instance) InvokePagedContext(ctx context.Context, op string, params []string, cursor string, limit int) ([]string, string, error) {
	cps, ctxOK := in.impl.(ContextPagedService)
	ps, plainOK := in.impl.(PagedService)
	if (!ctxOK && !plainOK) || standardOp(op) {
		out, err := in.InvokeContext(ctx, op, params)
		return out, "", err
	}
	in.mu.Lock()
	destroyed := in.destroyed
	in.mu.Unlock()
	if destroyed {
		return nil, "", ErrDestroyed
	}
	// Continuations name server-side state by cursor; the original call
	// already validated the operation and parameters.
	if cursor == "" {
		if err := in.validate(op, params); err != nil {
			return nil, "", err
		}
	}
	if ctxOK {
		return cps.InvokePagedContext(ctx, op, params, cursor, limit)
	}
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	return ps.InvokePaged(op, params, cursor, limit)
}

// InvokeRaw gives a RawResponder implementation the chance to answer with
// pre-encoded response envelope bytes. ok is false when the implementation
// does not (or cannot) take the call; the caller then uses Invoke, whose
// WSDL validation covers the declined path (accepted calls are validated
// by the implementation, per the RawResponder contract).
func (in *Instance) InvokeRaw(op string, params []string) ([]byte, bool, error) {
	return in.InvokeRawContext(context.Background(), op, params)
}

// InvokeRawContext is InvokeRaw under a caller-supplied context; see
// InvokeContext for the propagation contract.
func (in *Instance) InvokeRawContext(ctx context.Context, op string, params []string) ([]byte, bool, error) {
	crr, ctxOK := in.impl.(ContextRawResponder)
	rr, plainOK := in.impl.(RawResponder)
	if (!ctxOK && !plainOK) || standardOp(op) {
		return nil, false, nil
	}
	in.mu.Lock()
	destroyed := in.destroyed
	in.mu.Unlock()
	if destroyed {
		return nil, false, ErrDestroyed
	}
	if ctxOK {
		return crr.InvokeRawContext(ctx, op, params)
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	return rr.InvokeRaw(op, params)
}

// InvokeRawTo gives a RawStreamer implementation the chance to encode
// the response envelope straight into buf. Declined calls (ok=false)
// leave buf untouched; the caller falls back to Invoke, whose WSDL
// validation covers that path.
func (in *Instance) InvokeRawTo(op string, params []string, buf *bytes.Buffer) (bool, error) {
	return in.InvokeRawToContext(context.Background(), op, params, buf)
}

// InvokeRawToContext is InvokeRawTo under a caller-supplied context; see
// InvokeContext for the propagation contract.
func (in *Instance) InvokeRawToContext(ctx context.Context, op string, params []string, buf *bytes.Buffer) (bool, error) {
	crs, ctxOK := in.impl.(ContextRawStreamer)
	rs, plainOK := in.impl.(RawStreamer)
	if (!ctxOK && !plainOK) || standardOp(op) {
		return false, nil
	}
	in.mu.Lock()
	destroyed := in.destroyed
	in.mu.Unlock()
	if destroyed {
		return false, ErrDestroyed
	}
	if ctxOK {
		return crs.InvokeRawToContext(ctx, op, params, buf)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return rs.InvokeRawTo(op, params, buf)
}

// InvokePagedRawTo gives a RawPagedStreamer implementation the chance to
// encode one page's envelope straight into buf. Fresh calls are WSDL-
// validated like InvokePaged; continuations were validated when their
// cursor was opened.
func (in *Instance) InvokePagedRawTo(op string, params []string, cursor string, limit int, buf *bytes.Buffer) (string, bool, error) {
	return in.InvokePagedRawToContext(context.Background(), op, params, cursor, limit, buf)
}

// InvokePagedRawToContext is InvokePagedRawTo under a caller-supplied
// context; see InvokeContext for the propagation contract.
func (in *Instance) InvokePagedRawToContext(ctx context.Context, op string, params []string, cursor string, limit int, buf *bytes.Buffer) (string, bool, error) {
	cps, ctxOK := in.impl.(ContextRawPagedStreamer)
	ps, plainOK := in.impl.(RawPagedStreamer)
	if (!ctxOK && !plainOK) || standardOp(op) {
		return "", false, nil
	}
	in.mu.Lock()
	destroyed := in.destroyed
	in.mu.Unlock()
	if destroyed {
		return "", false, ErrDestroyed
	}
	if cursor == "" {
		if err := in.validate(op, params); err != nil {
			return "", true, err
		}
	}
	if ctxOK {
		return cps.InvokePagedRawToContext(ctx, op, params, cursor, limit, buf)
	}
	if err := ctx.Err(); err != nil {
		return "", false, err
	}
	return ps.InvokePagedRawTo(op, params, cursor, limit, buf)
}

// findServiceData answers a FindServiceData query. A plain name returns
// that element's values; the reserved queries below expose standard
// introspection data; a query starting with "/" is evaluated by the
// service-data query language in sdePath.
func (in *Instance) findServiceData(query string) ([]string, error) {
	all := in.allServiceData()
	if strings.HasPrefix(query, "/") {
		return sdePath(all, query)
	}
	vals, ok := all[query]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchData, query)
	}
	return vals, nil
}

// allServiceData merges standard, stored, and provider-supplied SDEs.
func (in *Instance) allServiceData() map[string][]string {
	in.mu.Lock()
	term := TerminationNone
	if !in.termination.IsZero() {
		term = in.termination.UTC().Format(time.RFC3339Nano)
	}
	out := map[string][]string{
		"handle":          {in.handle.String()},
		"serviceType":     {in.handle.ServiceType},
		"instanceID":      {in.handle.InstanceID},
		"createdAt":       {in.created.UTC().Format(time.RFC3339Nano)},
		"terminationTime": {term},
	}
	for k, v := range in.serviceData {
		out[k] = append([]string(nil), v...)
	}
	in.mu.Unlock()

	if p, ok := in.impl.(ServiceDataProvider); ok {
		for k, v := range p.ServiceData() {
			out[k] = append([]string(nil), v...)
		}
	}
	return out
}

// ServiceDataNames returns the sorted names of all SDEs.
func (in *Instance) ServiceDataNames() []string {
	all := in.allServiceData()
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// setTerminationTime implements SetTerminationTime. The argument is an
// RFC3339 timestamp, or TerminationNone to cancel scheduled termination.
// Per OGSI, the operation returns the (new) current termination time.
func (in *Instance) setTerminationTime(arg string) ([]string, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if arg == TerminationNone || arg == "" {
		in.termination = time.Time{}
		return []string{TerminationNone}, nil
	}
	t, err := time.Parse(time.RFC3339Nano, arg)
	if err != nil {
		// Also accept a relative "+<seconds>" form, convenient for soft-
		// state keepalive without synchronized clocks.
		if strings.HasPrefix(arg, "+") {
			d, derr := time.ParseDuration(strings.TrimPrefix(arg, "+") + "s")
			if derr != nil {
				return nil, fmt.Errorf("ogsi: bad termination time %q", arg)
			}
			t = in.now().Add(d)
		} else {
			return nil, fmt.Errorf("ogsi: bad termination time %q: %v", arg, err)
		}
	}
	in.termination = t
	return []string{t.UTC().Format(time.RFC3339Nano)}, nil
}

func (in *Instance) now() time.Time {
	if in.hosting != nil {
		return in.hosting.now()
	}
	return time.Now()
}

// TerminationTime returns the scheduled termination time; the zero time
// means none is scheduled.
func (in *Instance) TerminationTime() time.Time {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.termination
}

// Destroy terminates the instance: it is removed from its hosting table,
// the implementation's OnDestroy hook runs, and all further invocations
// fail with ErrDestroyed. Destroy is idempotent.
func (in *Instance) Destroy() error {
	in.mu.Lock()
	if in.destroyed {
		in.mu.Unlock()
		return nil
	}
	in.destroyed = true
	in.mu.Unlock()

	if in.hosting != nil {
		in.hosting.remove(in.handle)
	}
	if d, ok := in.impl.(Destroyer); ok {
		d.OnDestroy()
	}
	return nil
}

// expired reports whether the instance's termination time has passed.
func (in *Instance) expired(now time.Time) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return !in.termination.IsZero() && now.After(in.termination)
}

// sdePath evaluates the service-data query language used by
// FindServiceData for queries beginning with "/" — the paper's future-work
// XPath mechanism. Supported forms:
//
//	/name            — all values of the element
//	/name[i]         — the i-th value (1-based, per XPath)
//	/name[value=x]   — values equal to x
//	/*               — all element names
//	/name/count()    — the number of values, as a decimal string
func sdePath(all map[string][]string, query string) ([]string, error) {
	q := strings.TrimPrefix(query, "/")
	if q == "*" {
		names := make([]string, 0, len(all))
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		return names, nil
	}
	if name, ok := strings.CutSuffix(q, "/count()"); ok {
		vals, exists := all[name]
		if !exists {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchData, name)
		}
		return []string{fmt.Sprintf("%d", len(vals))}, nil
	}
	name, pred, hasPred := strings.Cut(q, "[")
	vals, exists := all[name]
	if !exists {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchData, name)
	}
	if !hasPred {
		return vals, nil
	}
	pred, ok := strings.CutSuffix(pred, "]")
	if !ok {
		return nil, fmt.Errorf("ogsi: malformed service data query %q", query)
	}
	if want, isValue := strings.CutPrefix(pred, "value="); isValue {
		var out []string
		for _, v := range vals {
			if v == want {
				out = append(out, v)
			}
		}
		return out, nil
	}
	var idx int
	if _, err := fmt.Sscanf(pred, "%d", &idx); err != nil || idx < 1 || idx > len(vals) {
		return nil, fmt.Errorf("ogsi: bad index %q in service data query (have %d values)", pred, len(vals))
	}
	return []string{vals[idx-1]}, nil
}
