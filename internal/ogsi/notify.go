package ogsi

import (
	"fmt"
	"sync"

	"pperfgrid/internal/gsh"
)

// Sink receives notification messages — the NotificationSink PortType.
// Local subscribers implement it directly; remote sinks are reached
// through a SinkDialer that delivers over SOAP.
type Sink interface {
	Deliver(topic, message string) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(topic, message string) error

// Deliver calls f.
func (f SinkFunc) Deliver(topic, message string) error { return f(topic, message) }

// SinkDialer resolves a sink GSH into a deliverable Sink. The container
// package provides the SOAP implementation; tests can supply fakes.
type SinkDialer func(handle gsh.Handle) Sink

// NotificationHub implements the NotificationSource PortType: clients
// subscribe a sink to a topic; Notify fans messages out to every
// subscriber. Delivery runs asynchronously — the notifying service never
// blocks on slow sinks — and failed sinks are dropped after delivery
// errors exceed maxFailures.
type NotificationHub struct {
	dial SinkDialer

	mu   sync.Mutex
	subs map[string][]*subscriber
	wg   sync.WaitGroup
}

type subscriber struct {
	sink     Sink
	failures int
	dead     bool
}

// maxFailures is the consecutive-delivery-failure limit before a
// subscriber is dropped (soft-state cleanup of dead sinks).
const maxFailures = 3

// NewNotificationHub creates a hub. dial may be nil if only local sinks
// are used.
func NewNotificationHub(dial SinkDialer) *NotificationHub {
	return &NotificationHub{dial: dial, subs: make(map[string][]*subscriber)}
}

// Subscribe adds a local sink to a topic.
func (n *NotificationHub) Subscribe(topic string, s Sink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.subs[topic] = append(n.subs[topic], &subscriber{sink: s})
}

// SubscribeHandle subscribes a remote sink identified by its GSH.
func (n *NotificationHub) SubscribeHandle(topic string, handle gsh.Handle) error {
	if n.dial == nil {
		return fmt.Errorf("ogsi: no sink dialer configured for remote sink %s", handle)
	}
	n.Subscribe(topic, n.dial(handle))
	return nil
}

// Subscribers returns the live subscriber count for a topic.
func (n *NotificationHub) Subscribers(topic string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for _, s := range n.subs[topic] {
		if !s.dead {
			count++
		}
	}
	return count
}

// Notify delivers a message to every subscriber of the topic,
// asynchronously. It returns the number of sinks targeted.
func (n *NotificationHub) Notify(topic, message string) int {
	n.mu.Lock()
	targets := make([]*subscriber, 0, len(n.subs[topic]))
	for _, s := range n.subs[topic] {
		if !s.dead {
			targets = append(targets, s)
		}
	}
	n.mu.Unlock()

	for _, s := range targets {
		s := s
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			err := s.sink.Deliver(topic, message)
			n.mu.Lock()
			defer n.mu.Unlock()
			if err != nil {
				s.failures++
				if s.failures >= maxFailures {
					s.dead = true
				}
			} else {
				s.failures = 0
			}
		}()
	}
	return len(targets)
}

// Flush blocks until all in-flight deliveries complete, for deterministic
// tests and orderly shutdown.
func (n *NotificationHub) Flush() { n.wg.Wait() }

// HandleSubscribe implements the wire form of the NotificationSource
// PortType for a service embedding the hub: params are [topic, sinkGSH].
func (n *NotificationHub) HandleSubscribe(params []string) ([]string, error) {
	if len(params) != 2 {
		return nil, fmt.Errorf("ogsi: %s requires [topic, sinkHandle]", OpSubscribe)
	}
	h, err := parseHandle(params[1])
	if err != nil {
		return nil, err
	}
	if err := n.SubscribeHandle(params[0], h); err != nil {
		return nil, err
	}
	return []string{"subscribed"}, nil
}

func parseHandle(s string) (gsh.Handle, error) {
	h, err := gsh.Parse(s)
	if err != nil {
		return gsh.Handle{}, fmt.Errorf("ogsi: bad handle %q: %w", s, err)
	}
	return h, nil
}
