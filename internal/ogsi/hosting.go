package ogsi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pperfgrid/internal/gsh"
	"pperfgrid/internal/wsdl"
)

// Hosting is the table of grid service instances living in one hosting
// environment (one container). It enforces GSH uniqueness, allocates
// instance IDs, and runs soft-state lifetime management: instances whose
// termination time passes are destroyed by the sweeper, exactly as OGSI's
// lifetime model prescribes.
type Hosting struct {
	host string

	alloc gsh.Allocator
	nowFn func() time.Time

	mu        sync.RWMutex
	instances map[string]*Instance // key: serviceType + "/" + instanceID
}

// NewHosting creates an empty hosting environment. The host (host:port)
// names the HTTP endpoint instances advertise in their GSHs; it may be
// re-set by the container once a listener is bound.
func NewHosting(host string) *Hosting {
	return &Hosting{
		host:      host,
		nowFn:     time.Now,
		instances: make(map[string]*Instance),
	}
}

// SetClock replaces the time source, for deterministic lifetime tests.
func (h *Hosting) SetClock(now func() time.Time) { h.nowFn = now }

func (h *Hosting) now() time.Time { return h.nowFn() }

// SetHost updates the advertised host after the listener is bound.
// It must be called before any instances are deployed.
func (h *Hosting) SetHost(host string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.instances) > 0 {
		return errors.New("ogsi: cannot change host with live instances")
	}
	h.host = host
	return nil
}

// Host returns the advertised host:port.
func (h *Hosting) Host() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.host
}

func key(serviceType, id string) string { return serviceType + "/" + id }

// DeployPersistent deploys a persistent (non-transient) service under
// instance ID "0" — factories, the Manager, and the registry use this.
// The definition gains the GridService PortType automatically.
func (h *Hosting) DeployPersistent(serviceType string, impl Service, def *wsdl.Definition) (*Instance, error) {
	return h.deploy(serviceType, gsh.PersistentID, impl, def)
}

// CreateInstance creates a transient instance of the given service type
// with a freshly allocated unique ID.
func (h *Hosting) CreateInstance(serviceType string, impl Service, def *wsdl.Definition) (*Instance, error) {
	return h.deploy(serviceType, h.alloc.Next(), impl, def)
}

func (h *Hosting) deploy(serviceType, id string, impl Service, def *wsdl.Definition) (*Instance, error) {
	if serviceType == "" {
		return nil, errors.New("ogsi: empty service type")
	}
	if impl == nil {
		return nil, errors.New("ogsi: nil service implementation")
	}
	if def == nil {
		def = wsdl.New(serviceType)
	}
	def = def.Merge(GridServicePortType())

	h.mu.Lock()
	defer h.mu.Unlock()
	handle := gsh.New(h.host, serviceType, id)
	k := key(serviceType, id)
	if _, exists := h.instances[k]; exists {
		return nil, fmt.Errorf("ogsi: handle %s already in use", handle)
	}
	def.Endpoint = handle.URL()
	in := newInstance(handle, impl, def, h, h.nowFn())
	h.instances[k] = in
	return in, nil
}

// Lookup finds a live instance by service type and instance ID.
func (h *Hosting) Lookup(serviceType, id string) (*Instance, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	in, ok := h.instances[key(serviceType, id)]
	return in, ok
}

// LookupHandle finds a live instance by its GSH, verifying the host
// matches this hosting environment.
func (h *Hosting) LookupHandle(handle gsh.Handle) (*Instance, bool) {
	if handle.Host != h.Host() {
		return nil, false
	}
	return h.Lookup(handle.ServiceType, handle.InstanceID)
}

// remove deletes a destroyed instance from the table.
func (h *Hosting) remove(handle gsh.Handle) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.instances, key(handle.ServiceType, handle.InstanceID))
}

// Instances returns a snapshot of all live instances.
func (h *Hosting) Instances() []*Instance {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Instance, 0, len(h.instances))
	for _, in := range h.instances {
		out = append(out, in)
	}
	return out
}

// NumInstances returns the number of live instances.
func (h *Hosting) NumInstances() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.instances)
}

// Sweep destroys every instance whose termination time has passed,
// returning how many were destroyed.
func (h *Hosting) Sweep() int {
	now := h.nowFn()
	var expired []*Instance
	h.mu.RLock()
	for _, in := range h.instances {
		if in.expired(now) {
			expired = append(expired, in)
		}
	}
	h.mu.RUnlock()
	for _, in := range expired {
		_ = in.Destroy()
	}
	return len(expired)
}

// StartSweeper runs Sweep every interval until the returned stop function
// is called.
func (h *Hosting) StartSweeper(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.Sweep()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// DestroyAll destroys every live instance, for orderly shutdown.
func (h *Hosting) DestroyAll() {
	for _, in := range h.Instances() {
		_ = in.Destroy()
	}
}
