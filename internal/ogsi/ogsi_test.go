package ogsi

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pperfgrid/internal/gsh"
	"pperfgrid/internal/wsdl"
)

// echoService echoes its operation and params, for plumbing tests.
type echoService struct {
	destroyed bool
	mu        sync.Mutex
}

func (e *echoService) Invoke(op string, params []string) ([]string, error) {
	return append([]string{op}, params...), nil
}

func (e *echoService) OnDestroy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.destroyed = true
}

func (e *echoService) wasDestroyed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.destroyed
}

func echoDef() *wsdl.Definition {
	return wsdl.New("Echo", wsdl.PortType{Name: "Echo", Operations: []wsdl.Operation{
		wsdl.Op("ping", "Echo back.", wsdl.PRep("arg")),
	}})
}

func newTestHosting() *Hosting { return NewHosting("testhost:1") }

func TestDeployPersistentAndInvoke(t *testing.T) {
	h := newTestHosting()
	in, err := h.DeployPersistent("Echo", &echoService{}, echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if !in.Handle().IsPersistent() {
		t.Error("persistent deploy got transient handle")
	}
	if in.Handle().ServiceType != "Echo" || in.Handle().Host != "testhost:1" {
		t.Errorf("handle = %s", in.Handle())
	}
	out, err := in.Invoke("ping", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []string{"ping", "a", "b"}) {
		t.Errorf("got %v", out)
	}
}

func TestCreateInstanceUniqueHandles(t *testing.T) {
	h := newTestHosting()
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		in, err := h.CreateInstance("Echo", &echoService{}, echoDef())
		if err != nil {
			t.Fatal(err)
		}
		s := in.Handle().String()
		if seen[s] {
			t.Fatalf("duplicate handle %s", s)
		}
		seen[s] = true
	}
	if h.NumInstances() != 50 {
		t.Errorf("instances = %d", h.NumInstances())
	}
}

func TestDuplicatePersistentDeployFails(t *testing.T) {
	h := newTestHosting()
	if _, err := h.DeployPersistent("Echo", &echoService{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.DeployPersistent("Echo", &echoService{}, nil); err == nil {
		t.Error("duplicate deploy: want error")
	}
}

func TestDeployValidation(t *testing.T) {
	h := newTestHosting()
	if _, err := h.DeployPersistent("", &echoService{}, nil); err == nil {
		t.Error("empty type: want error")
	}
	if _, err := h.DeployPersistent("X", nil, nil); err == nil {
		t.Error("nil impl: want error")
	}
}

func TestInvokeValidatesAgainstDefinition(t *testing.T) {
	h := newTestHosting()
	in, _ := h.DeployPersistent("Echo", &echoService{}, echoDef())
	if _, err := in.Invoke("bogus", nil); !errors.Is(err, ErrUnknownOperation) {
		t.Errorf("unknown op: got %v", err)
	}
}

func TestDestroyRemovesAndBlocks(t *testing.T) {
	h := newTestHosting()
	impl := &echoService{}
	in, _ := h.CreateInstance("Echo", impl, echoDef())
	if _, err := in.Invoke(OpDestroy, nil); err != nil {
		t.Fatal(err)
	}
	if !impl.wasDestroyed() {
		t.Error("OnDestroy hook not called")
	}
	if h.NumInstances() != 0 {
		t.Error("instance still in hosting table")
	}
	if _, err := in.Invoke("ping", nil); !errors.Is(err, ErrDestroyed) {
		t.Errorf("post-destroy invoke: got %v", err)
	}
	// Idempotent.
	if err := in.Destroy(); err != nil {
		t.Errorf("second destroy: %v", err)
	}
}

func TestFindServiceDataStandardElements(t *testing.T) {
	h := newTestHosting()
	in, _ := h.DeployPersistent("Echo", &echoService{}, echoDef())
	for _, q := range []string{"handle", "serviceType", "instanceID", "createdAt", "terminationTime"} {
		vals, err := in.Invoke(OpFindServiceData, []string{q})
		if err != nil {
			t.Errorf("FindServiceData(%s): %v", q, err)
			continue
		}
		if len(vals) != 1 || vals[0] == "" {
			t.Errorf("FindServiceData(%s) = %v", q, vals)
		}
	}
	vals, _ := in.Invoke(OpFindServiceData, []string{"handle"})
	if vals[0] != in.Handle().String() {
		t.Errorf("handle SDE = %q", vals[0])
	}
	if _, err := in.Invoke(OpFindServiceData, []string{"missing"}); !errors.Is(err, ErrNoSuchData) {
		t.Errorf("missing SDE: got %v", err)
	}
}

func TestCustomAndProviderServiceData(t *testing.T) {
	h := newTestHosting()
	in, _ := h.DeployPersistent("F", NewFactory(h, "Widget", nil, func(p []string) (Service, *wsdl.Definition, error) {
		return &echoService{}, nil, nil
	}), nil)
	// Factory provides productType via ServiceDataProvider.
	vals, err := in.Invoke(OpFindServiceData, []string{"productType"})
	if err != nil || len(vals) != 1 || vals[0] != "Widget" {
		t.Errorf("productType SDE = %v, %v", vals, err)
	}
	in.SetServiceData("metrics", "gflops", "runtimesec")
	vals, err = in.Invoke(OpFindServiceData, []string{"metrics"})
	if err != nil || !reflect.DeepEqual(vals, []string{"gflops", "runtimesec"}) {
		t.Errorf("metrics SDE = %v, %v", vals, err)
	}
}

func TestServiceDataPathQueries(t *testing.T) {
	h := newTestHosting()
	in, _ := h.DeployPersistent("Echo", &echoService{}, echoDef())
	in.SetServiceData("metrics", "gflops", "runtimesec", "residual")

	cases := []struct {
		query string
		want  []string
	}{
		{"/metrics", []string{"gflops", "runtimesec", "residual"}},
		{"/metrics[2]", []string{"runtimesec"}},
		{"/metrics[value=residual]", []string{"residual"}},
		{"/metrics[value=nope]", nil},
		{"/metrics/count()", []string{"3"}},
	}
	for _, c := range cases {
		got, err := in.Invoke(OpFindServiceData, []string{c.query})
		if err != nil {
			t.Errorf("%s: %v", c.query, err)
			continue
		}
		if len(c.want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s = %v, want %v", c.query, got, c.want)
		}
	}
	// /* lists all names.
	names, err := in.Invoke(OpFindServiceData, []string{"/*"})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"handle", "metrics", "serviceType"} {
		if !strings.Contains(joined, want) {
			t.Errorf("/* missing %s: %v", want, names)
		}
	}
	// Errors.
	for _, q := range []string{"/missing", "/metrics[0]", "/metrics[99]", "/metrics[bad", "/missing/count()"} {
		if _, err := in.Invoke(OpFindServiceData, []string{q}); err == nil {
			t.Errorf("%s: want error", q)
		}
	}
}

func TestSetTerminationTimeAndSweep(t *testing.T) {
	h := newTestHosting()
	clock := time.Date(2004, 6, 1, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	h.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return clock })
	impl := &echoService{}
	in, _ := h.CreateInstance("Echo", impl, echoDef())

	// Absolute RFC3339.
	at := clock.Add(30 * time.Second).Format(time.RFC3339Nano)
	out, err := in.Invoke(OpSetTerminationTime, []string{at})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != at {
		t.Errorf("returned termination %q, want %q", out[0], at)
	}
	if h.Sweep() != 0 {
		t.Error("swept unexpired instance")
	}
	mu.Lock()
	clock = clock.Add(31 * time.Second)
	mu.Unlock()
	if h.Sweep() != 1 {
		t.Error("expired instance not swept")
	}
	if !impl.wasDestroyed() {
		t.Error("sweeper did not run OnDestroy")
	}
}

func TestSetTerminationRelativeAndNone(t *testing.T) {
	h := newTestHosting()
	in, _ := h.CreateInstance("Echo", &echoService{}, echoDef())
	if _, err := in.Invoke(OpSetTerminationTime, []string{"+3600"}); err != nil {
		t.Fatal(err)
	}
	if in.TerminationTime().IsZero() {
		t.Error("relative termination not set")
	}
	out, err := in.Invoke(OpSetTerminationTime, []string{TerminationNone})
	if err != nil || out[0] != TerminationNone {
		t.Errorf("cancel: %v %v", out, err)
	}
	if !in.TerminationTime().IsZero() {
		t.Error("termination not cancelled")
	}
	if _, err := in.Invoke(OpSetTerminationTime, []string{"garbage"}); err == nil {
		t.Error("bad time: want error")
	}
}

func TestGetServiceDefinition(t *testing.T) {
	h := newTestHosting()
	in, _ := h.DeployPersistent("Echo", &echoService{}, echoDef())
	out, err := in.Invoke(OpGetServiceDefinition, nil)
	if err != nil {
		t.Fatal(err)
	}
	def, err := wsdl.Parse([]byte(out[0]))
	if err != nil {
		t.Fatal(err)
	}
	// The definition must include both the app PortType and GridService.
	if _, err := def.Lookup("ping"); err != nil {
		t.Error("definition missing app operation")
	}
	if _, err := def.Lookup(OpFindServiceData); err != nil {
		t.Error("definition missing GridService PortType")
	}
	if def.Endpoint != in.Handle().URL() {
		t.Errorf("endpoint = %q", def.Endpoint)
	}
}

func TestFactoryCreateService(t *testing.T) {
	h := newTestHosting()
	created := 0
	f := NewFactory(h, "Widget", echoDef(), func(params []string) (Service, *wsdl.Definition, error) {
		created++
		if len(params) > 0 && params[0] == "fail" {
			return nil, nil, errors.New("constructor refused")
		}
		return &echoService{}, nil, nil
	})
	fin, err := f.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if fin.Handle().ServiceType != "WidgetFactory" {
		t.Errorf("factory type = %s", fin.Handle().ServiceType)
	}
	out, err := fin.Invoke(OpCreateService, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	handle := gsh.MustParse(out[0])
	if handle.ServiceType != "Widget" || handle.IsPersistent() {
		t.Errorf("product handle = %s", handle)
	}
	if _, ok := h.LookupHandle(handle); !ok {
		t.Error("product instance not in hosting table")
	}
	// Product inherits the factory's product definition.
	prod, _ := h.LookupHandle(handle)
	if _, err := prod.Definition().Lookup("ping"); err != nil {
		t.Error("product definition missing ping")
	}
	if _, err := fin.Invoke(OpCreateService, []string{"fail"}); err == nil {
		t.Error("constructor failure not propagated")
	}
	if _, err := fin.Invoke("other", nil); err == nil {
		t.Error("unknown factory op: want error")
	}
	if created != 2 {
		t.Errorf("constructor ran %d times, want 2", created)
	}
}

func TestFactoryCreateServices(t *testing.T) {
	h := newTestHosting()
	var got []string
	f := NewFactory(h, "Widget", echoDef(), func(params []string) (Service, *wsdl.Definition, error) {
		got = append(got, params...)
		if params[0] == "fail" {
			return nil, nil, errors.New("constructor refused")
		}
		return &echoService{}, nil, nil
	})
	fin, err := f.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	// Plural creation: one GSH per parameter, in order, each instance
	// constructed with its single parameter.
	out, err := fin.Invoke(OpCreateServices, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("CreateServices returned %d handles", len(out))
	}
	seen := map[string]bool{}
	for _, hs := range out {
		handle := gsh.MustParse(hs)
		if handle.ServiceType != "Widget" {
			t.Errorf("product handle = %s", handle)
		}
		if seen[hs] {
			t.Errorf("duplicate handle %s", hs)
		}
		seen[hs] = true
		if _, ok := h.LookupHandle(handle); !ok {
			t.Errorf("product %s not in hosting table", hs)
		}
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("constructor params = %v, want %v", got, want)
	}
	// A failing constructor fails the whole plural call.
	if _, err := fin.Invoke(OpCreateServices, []string{"fail"}); err == nil {
		t.Error("constructor failure not propagated through CreateServices")
	}
	// The plural op is published in the Factory PortType.
	found := false
	for _, op := range FactoryPortType().Operations {
		if op.Name == OpCreateServices && op.Doc != "" {
			found = true
		}
	}
	if !found {
		t.Error("Factory PortType missing documented CreateServices")
	}
}

func TestHandleMap(t *testing.T) {
	h := newTestHosting()
	m := NewHandleMap(h)
	min, err := m.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	in, _ := h.CreateInstance("Echo", &echoService{}, echoDef())

	out, err := min.Invoke(OpFindByHandle, []string{in.Handle().String()})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != in.Handle().URL() || out[1] != "alive" {
		t.Errorf("got %v", out)
	}
	gone := gsh.New(h.Host(), "Echo", "9999")
	out, err = min.Invoke(OpFindByHandle, []string{gone.String()})
	if err != nil || out[1] != "unknown" {
		t.Errorf("dead handle: %v %v", out, err)
	}
	if _, err := min.Invoke(OpFindByHandle, []string{"junk"}); err == nil {
		t.Error("bad handle: want error")
	}
	if _, err := min.Invoke(OpFindByHandle, nil); err == nil {
		t.Error("no params: want error")
	}
}

func TestLookupHandleWrongHost(t *testing.T) {
	h := newTestHosting()
	in, _ := h.CreateInstance("Echo", &echoService{}, echoDef())
	other := in.Handle()
	other.Host = "elsewhere:9"
	if _, ok := h.LookupHandle(other); ok {
		t.Error("matched handle from another host")
	}
}

func TestSetHostRules(t *testing.T) {
	h := newTestHosting()
	if err := h.SetHost("real:8080"); err != nil {
		t.Fatal(err)
	}
	if h.Host() != "real:8080" {
		t.Errorf("Host = %q", h.Host())
	}
	_, _ = h.CreateInstance("Echo", &echoService{}, echoDef())
	if err := h.SetHost("another:1"); err == nil {
		t.Error("SetHost with live instances: want error")
	}
}

func TestDestroyAll(t *testing.T) {
	h := newTestHosting()
	for i := 0; i < 5; i++ {
		_, _ = h.CreateInstance("Echo", &echoService{}, echoDef())
	}
	h.DestroyAll()
	if h.NumInstances() != 0 {
		t.Errorf("instances = %d after DestroyAll", h.NumInstances())
	}
}

func TestStartSweeper(t *testing.T) {
	h := newTestHosting()
	in, _ := h.CreateInstance("Echo", &echoService{}, echoDef())
	if _, err := in.Invoke(OpSetTerminationTime, []string{"+0.001"}); err != nil {
		t.Fatal(err)
	}
	stop := h.StartSweeper(2 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for h.NumInstances() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h.NumInstances() != 0 {
		t.Error("sweeper never destroyed expired instance")
	}
	stop() // double-stop is safe
}

func TestNotificationHubLocal(t *testing.T) {
	hub := NewNotificationHub(nil)
	var mu sync.Mutex
	var got []string
	hub.Subscribe("updates", SinkFunc(func(topic, msg string) error {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, topic+":"+msg)
		return nil
	}))
	if n := hub.Notify("updates", "hello"); n != 1 {
		t.Errorf("targets = %d", n)
	}
	hub.Notify("other", "ignored")
	hub.Flush()
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(got, []string{"updates:hello"}) {
		t.Errorf("got %v", got)
	}
}

func TestNotificationHubDropsFailingSinks(t *testing.T) {
	hub := NewNotificationHub(nil)
	hub.Subscribe("t", SinkFunc(func(string, string) error { return errors.New("down") }))
	for i := 0; i < maxFailures; i++ {
		hub.Notify("t", "m")
		hub.Flush()
	}
	if n := hub.Subscribers("t"); n != 0 {
		t.Errorf("failing sink still subscribed: %d", n)
	}
}

func TestNotificationHubRemote(t *testing.T) {
	var mu sync.Mutex
	delivered := map[string]string{}
	hub := NewNotificationHub(func(h gsh.Handle) Sink {
		return SinkFunc(func(topic, msg string) error {
			mu.Lock()
			defer mu.Unlock()
			delivered[h.String()] = topic + ":" + msg
			return nil
		})
	})
	sink := gsh.New("client:1", "Sink", "1")
	out, err := hub.HandleSubscribe([]string{"updates", sink.String()})
	if err != nil || out[0] != "subscribed" {
		t.Fatalf("subscribe: %v %v", out, err)
	}
	hub.Notify("updates", "data changed")
	hub.Flush()
	mu.Lock()
	defer mu.Unlock()
	if delivered[sink.String()] != "updates:data changed" {
		t.Errorf("delivered = %v", delivered)
	}
}

func TestNotificationHubSubscribeErrors(t *testing.T) {
	hub := NewNotificationHub(nil)
	if _, err := hub.HandleSubscribe([]string{"t"}); err == nil {
		t.Error("short params: want error")
	}
	if _, err := hub.HandleSubscribe([]string{"t", "junk"}); err == nil {
		t.Error("bad handle: want error")
	}
	good := gsh.New("h:1", "Sink", "1").String()
	if _, err := hub.HandleSubscribe([]string{"t", good}); err == nil {
		t.Error("no dialer: want error")
	}
}

func TestSoftStateRegistry(t *testing.T) {
	r := NewSoftStateRegistry()
	clock := time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	r.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return clock })

	h1 := gsh.New("a:1", "Application", "0").String()
	h2 := gsh.New("b:1", "Application", "0").String()
	r.Register(h1, "pperfgrid", 60*time.Second)
	r.Register(h2, "pperfgrid", 10*time.Second)
	if got := r.Lookup("pperfgrid"); !reflect.DeepEqual(got, []string{h1, h2}) {
		t.Errorf("Lookup = %v", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	mu.Lock()
	clock = clock.Add(30 * time.Second)
	mu.Unlock()
	if got := r.Lookup("pperfgrid"); !reflect.DeepEqual(got, []string{h1}) {
		t.Errorf("after lease expiry: %v", got)
	}
	if dropped := r.Purge(); dropped != 1 {
		t.Errorf("Purge = %d", dropped)
	}
	r.Unregister(h1)
	r.Unregister(h1) // idempotent
	if r.Len() != 0 {
		t.Errorf("Len after unregister = %d", r.Len())
	}
}

func TestSoftStateRegistryWire(t *testing.T) {
	r := NewSoftStateRegistry()
	h := gsh.New("a:1", "Application", "0").String()
	out, err := r.Invoke(OpRegisterService, []string{h, "apps", "60"})
	if err != nil || out[0] != "registered" {
		t.Fatalf("register: %v %v", out, err)
	}
	out, err = r.Invoke("FindRegistered", []string{"apps"})
	if err != nil || !reflect.DeepEqual(out, []string{h}) {
		t.Errorf("find: %v %v", out, err)
	}
	out, err = r.Invoke(OpUnregisterService, []string{h})
	if err != nil || out[0] != "unregistered" {
		t.Errorf("unregister: %v %v", out, err)
	}
	for _, bad := range [][]string{
		{h, "apps"},            // arity
		{"junk", "apps", "60"}, // handle
		{h, "apps", "-5"},      // lease
		{h, "apps", "x"},       // lease
	} {
		if _, err := r.Invoke(OpRegisterService, bad); err == nil {
			t.Errorf("RegisterService(%v): want error", bad)
		}
	}
	if _, err := r.Invoke("nope", nil); !errors.Is(err, ErrUnknownOperation) {
		t.Errorf("unknown op: %v", err)
	}
}

func TestConcurrentCreateAndDestroy(t *testing.T) {
	h := newTestHosting()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				in, err := h.CreateInstance("Echo", &echoService{}, echoDef())
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if _, err := in.Invoke("ping", []string{fmt.Sprint(i)}); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if err := in.Destroy(); err != nil {
					t.Errorf("destroy: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if h.NumInstances() != 0 {
		t.Errorf("leaked %d instances", h.NumInstances())
	}
}

// TestOGSAPortTypes verifies Table 3: every OGSA PortType is published
// with its standard operations.
func TestOGSAPortTypes(t *testing.T) {
	cases := []struct {
		pt  wsdl.PortType
		ops []string
	}{
		{GridServicePortType(), []string{OpFindServiceData, OpSetTerminationTime, OpDestroy}},
		{FactoryPortType(), []string{OpCreateService}},
		{HandleMapPortType(), []string{OpFindByHandle}},
		{NotificationSourcePortType(), []string{OpSubscribe}},
		{NotificationSinkPortType(), []string{OpDeliverNotification}},
		{RegistryPortType(), []string{OpRegisterService, OpUnregisterService}},
	}
	for _, c := range cases {
		have := map[string]bool{}
		for _, op := range c.pt.Operations {
			have[op.Name] = true
			if op.Doc == "" {
				t.Errorf("%s.%s missing documentation", c.pt.Name, op.Name)
			}
		}
		for _, op := range c.ops {
			if !have[op] {
				t.Errorf("PortType %s missing operation %s", c.pt.Name, op)
			}
		}
	}
}
