package ogsi

import "pperfgrid/internal/wsdl"

// This file publishes the OGSA PortTypes of the paper's Table 3 as WSDL
// definitions, so clients can introspect the standard interfaces exactly
// as they introspect application-specific ones.

// GridServicePortType describes the interface implemented by every grid
// service instance.
func GridServicePortType() wsdl.PortType {
	return wsdl.PortType{Name: "GridService", Operations: []wsdl.Operation{
		wsdl.Op(OpFindServiceData,
			"Query a variety of information about the Grid service instance, including basic introspection information (handle, reference, primary key), richer per-interface information, and service-specific information. Extensible support for query languages: a plain name returns that service data element; a /-prefixed path is evaluated by the service data query language.",
			wsdl.P("queryExpression")),
		wsdl.Op(OpSetTerminationTime,
			"Set (and get) termination time for Grid service instance. Accepts an RFC3339 timestamp, a relative +<seconds> form, or \"none\" to cancel scheduled termination; returns the new termination time.",
			wsdl.P("terminationTime")),
		wsdl.Op(OpDestroy,
			"Terminate Grid service instance."),
		wsdl.Op(OpGetServiceDefinition,
			"Return this service's WSDL definition document."),
	}}
}

// FactoryPortType describes the Factory interface.
func FactoryPortType() wsdl.PortType {
	return wsdl.PortType{Name: "Factory", Operations: []wsdl.Operation{
		wsdl.Op(OpCreateService,
			"Create new Grid service instance; returns its Grid Service Handle. Parameters are passed to the service constructor.",
			wsdl.PRep("constructorParam")),
		wsdl.Op(OpCreateServices,
			"Plural CreateService: create one Grid service instance per parameter, each constructed with that single parameter; returns one Grid Service Handle per parameter, in order. A batch of instantiations costs one round trip instead of one per instance.",
			wsdl.PRep("constructorParam")),
	}}
}

// HandleMapPortType describes the HandleMap interface.
func HandleMapPortType() wsdl.PortType {
	return wsdl.PortType{Name: "HandleMap", Operations: []wsdl.Operation{
		wsdl.Op(OpFindByHandle,
			"Return Grid Service Reference currently associated with supplied Grid Service Handle, plus a liveness indicator.",
			wsdl.P("handle")),
	}}
}

// NotificationSourcePortType describes the NotificationSource interface.
func NotificationSourcePortType() wsdl.PortType {
	return wsdl.PortType{Name: "NotificationSource", Operations: []wsdl.Operation{
		wsdl.Op(OpSubscribe,
			"Subscribe to notifications of service-related events, based on message type and interest statement. Allows for delivery via third party messaging services.",
			wsdl.P("topic"), wsdl.P("sinkHandle")),
	}}
}

// NotificationSinkPortType describes the NotificationSink interface.
func NotificationSinkPortType() wsdl.PortType {
	return wsdl.PortType{Name: "NotificationSink", Operations: []wsdl.Operation{
		wsdl.Op(OpDeliverNotification,
			"Carry out asynchronous delivery of notification messages.",
			wsdl.P("topic"), wsdl.P("message")),
	}}
}

// RegistryPortType describes the soft-state Registry interface.
func RegistryPortType() wsdl.PortType {
	return wsdl.PortType{Name: "Registry", Operations: []wsdl.Operation{
		wsdl.Op(OpRegisterService,
			"Conduct soft-state registration of Grid service handles.",
			wsdl.P("handle"), wsdl.P("topic"), wsdl.P("leaseSeconds")),
		wsdl.Op(OpUnregisterService,
			"Deregister a Grid service handle.",
			wsdl.P("handle")),
		wsdl.Op("FindRegistered",
			"Return the live handles registered under a topic.",
			wsdl.P("topic")),
	}}
}

// FactoryDefinition is the full definition of a factory service for the
// given product type.
func FactoryDefinition(productType string) *wsdl.Definition {
	return wsdl.New(productType+"Factory", FactoryPortType())
}

// HandleMapDefinition is the full definition of the handle-map service.
func HandleMapDefinition() *wsdl.Definition {
	return wsdl.New("HandleMap", HandleMapPortType())
}

// RegistryDefinition is the full definition of the soft-state registry
// service.
func RegistryDefinition() *wsdl.Definition {
	return wsdl.New("Registry", RegistryPortType())
}
