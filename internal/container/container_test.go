package container

import (
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/soap"
	"pperfgrid/internal/wsdl"
)

func echoDef() *wsdl.Definition {
	return wsdl.New("Echo", wsdl.PortType{Name: "Echo", Operations: []wsdl.Operation{
		wsdl.Op("ping", "Echo back.", wsdl.PRep("arg")),
		wsdl.Op("boom", "Always fails."),
		wsdl.Op("slow", "Sleeps briefly then echoes.", wsdl.PRep("arg")),
	}})
}

type echoService struct{}

func (echoService) Invoke(op string, params []string) ([]string, error) {
	switch op {
	case "ping":
		return append([]string{"pong"}, params...), nil
	case "boom":
		return nil, errors.New("exploded as requested")
	case "slow":
		time.Sleep(20 * time.Millisecond)
		return params, nil
	}
	return nil, fmt.Errorf("echo: unknown op %q", op)
}

// startContainer spins up a container on a loopback port and registers
// cleanup.
func startContainer(t *testing.T, opts Options) *Container {
	t.Helper()
	c := New(ogsi.NewHosting("placeholder:0"), opts)
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEndToEndCall(t *testing.T) {
	c := startContainer(t, Options{})
	in, err := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	if err != nil {
		t.Fatal(err)
	}
	stub := Dial(in.Handle())
	out, err := stub.Call("ping", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []string{"pong", "a", "b"}) {
		t.Errorf("got %v", out)
	}
	if c.Requests() != 1 {
		t.Errorf("requests = %d", c.Requests())
	}
}

func TestRemoteFaultPropagates(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())
	_, err := stub.Call("boom")
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("want *soap.Fault, got %v", err)
	}
	if !strings.Contains(fault.String, "exploded") {
		t.Errorf("fault = %+v", fault)
	}
	if fault.Code != soap.FaultServer {
		t.Errorf("fault code = %q", fault.Code)
	}
	if c.Faults() != 1 {
		t.Errorf("faults = %d", c.Faults())
	}
}

func TestUnknownInstanceFault(t *testing.T) {
	c := startContainer(t, Options{})
	stub := Dial(gsh.New(c.Host(), "Echo", "12345"))
	_, err := stub.Call("ping")
	var fault *soap.Fault
	if !errors.As(err, &fault) || fault.Code != soap.FaultClient {
		t.Errorf("want client fault, got %v", err)
	}
}

func TestUnknownOperationFault(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())
	if _, err := stub.Call("nosuchop"); err == nil {
		t.Error("want error for unknown operation")
	}
}

func TestGridServiceOpsOverWire(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())

	out, err := stub.Call(ogsi.OpFindServiceData, "handle")
	if err != nil || out[0] != in.Handle().String() {
		t.Errorf("FindServiceData(handle) = %v, %v", out, err)
	}
	if _, err := stub.Call(ogsi.OpSetTerminationTime, "+60"); err != nil {
		t.Errorf("SetTerminationTime: %v", err)
	}
	if err := stub.Destroy(); err != nil {
		t.Errorf("Destroy: %v", err)
	}
	if c.Hosting().NumInstances() != 0 {
		t.Error("instance survived remote Destroy")
	}
	// Calls after destroy fault.
	if _, err := stub.Call("ping"); err == nil {
		t.Error("call on destroyed instance: want fault")
	}
}

func TestFactoryOverWire(t *testing.T) {
	c := startContainer(t, Options{})
	f := ogsi.NewFactory(c.Hosting(), "Widget", echoDef(), func(params []string) (ogsi.Service, *wsdl.Definition, error) {
		return echoService{}, nil, nil
	})
	fin, err := f.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	factory := Dial(fin.Handle())
	child, err := factory.CreateService("arg1")
	if err != nil {
		t.Fatal(err)
	}
	if child.Handle().ServiceType != "Widget" {
		t.Errorf("child type = %s", child.Handle().ServiceType)
	}
	out, err := child.Call("ping", "x")
	if err != nil || !reflect.DeepEqual(out, []string{"pong", "x"}) {
		t.Errorf("child call: %v %v", out, err)
	}
}

func TestStubDefinitionFetch(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())
	def, err := stub.Definition()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Lookup("ping"); err != nil {
		t.Error("fetched definition missing ping")
	}
	if _, err := def.Lookup(ogsi.OpDestroy); err != nil {
		t.Error("fetched definition missing GridService ops")
	}
	// Second fetch is cached (same pointer).
	def2, _ := stub.Definition()
	if def != def2 {
		t.Error("definition not cached")
	}
	// Missing instance: HTTP 404.
	bad := Dial(gsh.New(c.Host(), "Echo", "999"))
	if _, err := bad.Definition(); err == nil {
		t.Error("want error for missing instance definition")
	}
}

func TestInterceptorRejects(t *testing.T) {
	denied := errors.New("credentials required")
	c := startContainer(t, Options{
		Interceptors: []Interceptor{
			func(req *soap.Request, handle gsh.Handle) error {
				if _, ok := req.Header("token"); !ok {
					return denied
				}
				return nil
			},
		},
	})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())
	_, err := stub.Call("ping")
	var fault *soap.Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.String, "credentials") {
		t.Fatalf("want credentials fault, got %v", err)
	}
	stub.SetHeaderProvider(func(op string, params []string) []soap.HeaderEntry {
		return []soap.HeaderEntry{{Name: "token", Value: "ok"}}
	})
	if _, err := stub.Call("ping"); err != nil {
		t.Errorf("with token: %v", err)
	}
}

func TestWorkerPoolSerializes(t *testing.T) {
	// With one worker, two concurrent slow calls take ~2x one call; with
	// unbounded workers they overlap. Compare wall times coarsely.
	elapsed := func(workers int) time.Duration {
		c := startContainer(t, Options{Workers: workers})
		in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
		stub := Dial(in.Handle())
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := stub.Call("slow", "x"); err != nil {
					t.Errorf("slow: %v", err)
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	serial := elapsed(1)
	parallel := elapsed(0)
	// 4 x 20ms serialized ≈ 80ms; overlapped ≈ 20ms. Require a clear gap.
	if serial < 70*time.Millisecond {
		t.Errorf("1-worker wall time %v, want >= ~80ms", serial)
	}
	if parallel > serial*3/4 {
		t.Errorf("unbounded wall time %v not clearly below serialized %v", parallel, serial)
	}
}

func TestNotificationsOverWire(t *testing.T) {
	// Server side: a service with a notification hub.
	server := startContainer(t, Options{})
	hub := ogsi.NewNotificationHub(SOAPSinkDialer())
	svc := ogsi.ServiceFunc(func(op string, params []string) ([]string, error) {
		switch op {
		case ogsi.OpSubscribe:
			return hub.HandleSubscribe(params)
		case "update":
			hub.Notify("updates", params[0])
			return []string{"ok"}, nil
		}
		return nil, fmt.Errorf("unknown op %q", op)
	})
	def := wsdl.New("Source",
		ogsi.NotificationSourcePortType(),
		wsdl.PortType{Name: "Source", Operations: []wsdl.Operation{
			wsdl.Op("update", "Trigger a notification.", wsdl.P("message")),
		}})
	sin, err := server.Hosting().DeployPersistent("Source", svc, def)
	if err != nil {
		t.Fatal(err)
	}

	// Client side: host a sink in the client's own container.
	client := startContainer(t, Options{})
	got := make(chan string, 1)
	sinkIn, err := DeploySink(client.Hosting(), ogsi.SinkFunc(func(topic, msg string) error {
		got <- topic + ":" + msg
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}

	stub := Dial(sin.Handle())
	if _, err := stub.Call(ogsi.OpSubscribe, "updates", sinkIn.Handle().String()); err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Call("update", "new data arrived"); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg != "updates:new data arrived" {
			t.Errorf("got %q", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification never delivered")
	}
}

func TestSinkServiceValidation(t *testing.T) {
	s := &SinkService{Sink: ogsi.SinkFunc(func(string, string) error { return nil })}
	if _, err := s.Invoke("other", nil); err == nil {
		t.Error("unknown op: want error")
	}
	if _, err := s.Invoke(ogsi.OpDeliverNotification, []string{"only-topic"}); err == nil {
		t.Error("short params: want error")
	}
	failing := &SinkService{Sink: ogsi.SinkFunc(func(string, string) error { return errors.New("no") })}
	if _, err := failing.Invoke(ogsi.OpDeliverNotification, []string{"t", "m"}); err == nil {
		t.Error("sink error not propagated")
	}
}

func TestDialString(t *testing.T) {
	if _, err := DialString("junk"); err == nil {
		t.Error("bad handle: want error")
	}
	s, err := DialString("http://h:1/ogsa/services/T/1")
	if err != nil || s.Handle().ServiceType != "T" {
		t.Errorf("got %v, %v", s, err)
	}
}

func TestStartTwiceFails(t *testing.T) {
	c := startContainer(t, Options{})
	if err := c.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start: want error")
	}
}

func TestConcurrentCallsManyClients(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stub := Dial(in.Handle())
			for i := 0; i < 20; i++ {
				arg := fmt.Sprintf("w%d-%d", w, i)
				out, err := stub.Call("ping", arg)
				if err != nil || len(out) != 2 || out[1] != arg {
					t.Errorf("call: %v %v", out, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Requests() != 16*20 {
		t.Errorf("requests = %d", c.Requests())
	}
}

func TestRequestLogging(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	c := startContainer(t, Options{Logf: func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())
	if _, err := stub.Call("ping", "x"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || !strings.Contains(lines[0], "ping") || !strings.Contains(lines[0], "Echo/0") {
		t.Errorf("log lines = %v", lines)
	}
}

func TestReadLimitEnforced(t *testing.T) {
	c := startContainer(t, Options{ReadLimit: 2048})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())
	big := strings.Repeat("x", 10_000)
	_, err := stub.Call("ping", big)
	var fault *soap.Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.String, "size limit") {
		t.Errorf("oversized request: %v", err)
	}
	// Small requests still pass.
	if _, err := stub.Call("ping", "ok"); err != nil {
		t.Errorf("small request after limit fault: %v", err)
	}
}

func TestGETOnWrongPath(t *testing.T) {
	c := startContainer(t, Options{})
	resp, err := http.Get("http://" + c.Host() + "/ogsa/services/onlyonesegment")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + c.Host() + "/ogsa/services/Echo/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing instance GET status = %d", resp.StatusCode)
	}
}

func TestUnsupportedMethod(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	req, _ := http.NewRequest(http.MethodPut, in.Handle().URL(), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
