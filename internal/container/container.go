// Package container implements the grid service hosting environment — the
// role Apache Tomcat + Apache Axis play in the paper's Services Layer
// (Figure 6).
//
// A Container binds an HTTP listener and routes SOAP messages to the grid
// service instances of an ogsi.Hosting table: it demarshals the incoming
// envelope, locates the addressed instance, invokes the native operation,
// and marshals the result (or a SOAP Fault) back — the server half of the
// architecture-adapter pattern. The client half is the Stub type in
// stub.go, which multiplexes every call over a shared pool of persistent
// HTTP connections; both halves reuse request/response body buffers
// through the soap package's buffer pool.
//
// Beyond plain RPC, the container speaks two wire-path extensions:
//
//   - Paged calls: a request carrying the HeaderPageSize (and, on
//     continuation, HeaderCursor) SOAP header entries is dispatched via
//     ogsi.Instance.InvokePaged, so large result arrays — getPR against
//     an SMG98-sized store — flow back in bounded chunks instead of one
//     giant envelope. Stub.CallPaged is the client side.
//   - Raw responses: a service implementing ogsi.RawResponder (the
//     Execution service's encoded-response cache) answers with
//     pre-encoded envelope bytes the container writes to the wire
//     verbatim — zero marshalling on repeat queries. Services
//     implementing ogsi.RawStreamer / ogsi.RawPagedStreamer instead
//     encode their response straight into the container's pooled write
//     buffer — the cold getPR path's zero-intermediate encode.
//
// A Container may be configured with a fixed worker pool. A pool of size
// one models the single-CPU Sun Ultra hosts of the paper's testbed:
// concurrent queries against instances on the same host serialize, which
// is precisely the contention that makes the Manager's two-host
// distribution in Figure 12 pay off.
package container

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/soap"
)

// Interceptor inspects an incoming request before dispatch; a non-nil
// error rejects the call with a client Fault. The gsi package supplies a
// signature-verifying interceptor.
type Interceptor func(req *soap.Request, handle gsh.Handle) error

// Options configures a Container.
type Options struct {
	// Workers bounds concurrent service invocations; 0 means unbounded.
	// One worker per simulated CPU reproduces the paper's per-host
	// serialization.
	Workers int
	// QueueDepth bounds how many requests may wait for a worker slot.
	// When the queue is full, further requests are shed immediately with
	// a typed overload fault (soap.FaultOverloaded, HTTP 503) carrying a
	// Retry-After hint — the fast front-door rejection that keeps a
	// saturated container answering in microseconds instead of letting
	// its queue (and every client's tail latency) grow without bound.
	// 0 means unbounded, the historical behavior; only meaningful when
	// Workers > 0.
	QueueDepth int
	// QueueWait bounds how long an admitted request may wait for a
	// worker slot before it is shed with the same overload fault. 0
	// means no budget (wait until the client gives up).
	QueueWait time.Duration
	// Interceptors run in order on every request before dispatch.
	Interceptors []Interceptor
	// ReadLimit bounds request body size in bytes; 0 uses a 16 MiB default.
	ReadLimit int64
	// Logf, when set, receives one line per dispatched request.
	Logf func(format string, args ...any)
}

// shedSampleN sizes the ring of recent shed-decision latencies kept for
// the soak bench (power of two, so the index wrap is a mask).
const shedSampleN = 4096

// Container hosts grid services over HTTP.
type Container struct {
	hosting *ogsi.Hosting
	opts    Options

	server   *http.Server
	listener net.Listener
	workers  chan struct{}

	requests atomic.Int64
	faults   atomic.Int64

	// queued/executing split the old in-flight gauge so shedding
	// decisions and ServiceData reporting see the real queue depth, not
	// queue + running conflated; sheds counts admission rejections (not
	// folded into faults — a shed is backpressure, not a service
	// failure). svcMsEWMA is an exponential moving average of service
	// time in milliseconds (stored as math.Float64bits; 0 means "no
	// samples yet") feeding load-aware replica scheduling and the
	// Retry-After hint.
	queued    atomic.Int64
	executing atomic.Int64
	sheds     atomic.Int64
	svcMsEWMA atomic.Uint64

	// draining flips when Drain begins: new requests are shed so
	// persistent connections go idle and Shutdown can complete.
	draining atomic.Bool

	// Ring of recent shed-decision latencies (ns, shed decision to
	// rejection written), sampled lock-free for the soak bench's "sheds
	// are fast" acceptance.
	shedSeq atomic.Uint64
	shedLat [shedSampleN]atomic.Int64
}

// New creates a container over a hosting table. Call Start before
// deploying services so instances advertise the bound address.
func New(hosting *ogsi.Hosting, opts Options) *Container {
	c := &Container{hosting: hosting, opts: opts}
	if opts.Workers > 0 {
		c.workers = make(chan struct{}, opts.Workers)
	}
	if c.opts.ReadLimit == 0 {
		c.opts.ReadLimit = 16 << 20
	}
	return c
}

// Hosting returns the container's instance table.
func (c *Container) Hosting() *ogsi.Hosting { return c.hosting }

// Start binds addr (e.g. "127.0.0.1:0") and begins serving. The hosting
// table's advertised host is set to the bound address, so it must not yet
// hold instances.
func (c *Container) Start(addr string) error {
	if c.listener != nil {
		return errors.New("container: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("container: listen %s: %w", addr, err)
	}
	if err := c.hosting.SetHost(ln.Addr().String()); err != nil {
		ln.Close()
		return err
	}
	c.listener = ln
	mux := http.NewServeMux()
	mux.HandleFunc(gsh.PathPrefix, c.handle)
	c.server = &http.Server{
		Handler: mux,
		// Bound header read time so a stalled peer cannot pin a
		// connection (service invocations themselves may be long-running,
		// so no overall write timeout is imposed).
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := c.server.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("container %s: serve: %v", c.Host(), err)
		}
	}()
	return nil
}

// Host returns the bound host:port.
func (c *Container) Host() string { return c.hosting.Host() }

// Requests returns the number of SOAP requests dispatched so far.
func (c *Container) Requests() int64 { return c.requests.Load() }

// Faults returns the number of requests that ended in a SOAP Fault.
func (c *Container) Faults() int64 { return c.faults.Load() }

// InFlight returns the number of requests currently dispatched — executing
// or queued for a worker slot. With single-worker hosts (the paper's
// one-CPU testbed) this is effectively the host's queue depth, the signal
// load-aware replica policies balance on.
func (c *Container) InFlight() int64 { return c.queued.Load() + c.executing.Load() }

// Queued returns the number of requests currently waiting for a worker
// slot (admitted but not yet executing).
func (c *Container) Queued() int64 { return c.queued.Load() }

// Executing returns the number of requests currently holding a worker
// slot (or dispatched, on an unbounded container).
func (c *Container) Executing() int64 { return c.executing.Load() }

// Sheds returns the number of requests rejected by admission control
// (queue full, queue-wait budget exceeded, or draining). Sheds are not
// counted in Faults: a shed is deliberate backpressure, not a failure
// of a dispatched request.
func (c *Container) Sheds() int64 { return c.sheds.Load() }

// Draining reports whether the container has begun a graceful drain.
func (c *Container) Draining() bool { return c.draining.Load() }

// ShedLatenciesNs returns a snapshot of recent shed-decision latencies
// in nanoseconds (shed decision to rejection written; for queue-full and
// draining sheds the decision is handler entry), most recent shedSampleN
// at most. The soak bench derives its p99-shed-latency
// acceptance from these server-side samples, where the measurement is
// not confounded by client-side scheduling delay.
func (c *Container) ShedLatenciesNs() []int64 {
	n := c.shedSeq.Load()
	if n > shedSampleN {
		n = shedSampleN
	}
	out := make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, c.shedLat[i].Load())
	}
	return out
}

// MeanServiceMs returns an exponential moving average of recent request
// service times (milliseconds), 0 until the first request completes.
func (c *Container) MeanServiceMs() float64 {
	return math.Float64frombits(c.svcMsEWMA.Load())
}

// noteServiceTime folds one request's service time into the EWMA.
func (c *Container) noteServiceTime(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for {
		old := c.svcMsEWMA.Load()
		next := ms
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*ms
		}
		if c.svcMsEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Close shuts the listener down and destroys all hosted instances.
func (c *Container) Close() error {
	var err error
	if c.server != nil {
		err = c.server.Close()
	}
	c.hosting.DestroyAll()
	return err
}

// Drain gracefully shuts the container down: new work is shed with the
// overload fault (so persistent connections go idle quickly), the
// listener stops accepting, in-flight requests run to completion or to
// ctx's deadline, and finally all hosted instances are destroyed. If
// ctx expires before the last request finishes, remaining connections
// are force-closed and ctx's error is returned.
func (c *Container) Drain(ctx context.Context) error {
	c.draining.Store(true)
	var err error
	if c.server != nil {
		err = c.server.Shutdown(ctx)
		if err != nil {
			_ = c.server.Close()
		}
	}
	c.hosting.DestroyAll()
	return err
}

func (c *Container) handle(w http.ResponseWriter, r *http.Request) {
	handle, err := c.parsePath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		c.handleGet(w, handle)
	case http.MethodPost:
		c.handlePost(w, r, handle)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (c *Container) parsePath(path string) (gsh.Handle, error) {
	rest := strings.TrimPrefix(path, gsh.PathPrefix)
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return gsh.Handle{}, fmt.Errorf("container: bad service path %q", path)
	}
	return gsh.New(c.Host(), parts[0], parts[1]), nil
}

// handleGet serves the instance's WSDL definition, the introspection
// convention ("?WSDL") of Web services containers.
func (c *Container) handleGet(w http.ResponseWriter, handle gsh.Handle) {
	in, ok := c.hosting.LookupHandle(handle)
	if !ok {
		http.Error(w, "no such service instance", http.StatusNotFound)
		return
	}
	data, err := in.Definition().Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(data)
}

// SOAP header entry names of the paged-call protocol. A request carrying
// either entry is dispatched through the paged invocation path; the
// response's HeaderCursor entry names the remainder of the result set
// (absent when the set is complete). The canonical definitions live in
// package ogsi, next to the PagedService/RawPagedStreamer contracts;
// these aliases keep the transport's public names stable.
const (
	// HeaderCursor carries the opaque paging cursor: empty/absent on a
	// request opens a new paged result set, non-empty continues one.
	HeaderCursor = ogsi.HeaderCursor
	// HeaderPageSize bounds the number of returned values per page.
	HeaderPageSize = ogsi.HeaderPageSize
	// HeaderDeadline carries the caller's remaining deadline budget in
	// milliseconds; the container folds it into the request context
	// before dispatch (see ogsi.HeaderDeadline).
	HeaderDeadline = ogsi.HeaderDeadline
)

func (c *Container) handlePost(w http.ResponseWriter, r *http.Request, handle gsh.Handle) {
	arrived := time.Now()
	c.requests.Add(1)
	body := soap.GetBuffer()
	defer soap.PutBuffer(body)
	if _, err := body.ReadFrom(io.LimitReader(r.Body, c.opts.ReadLimit+1)); err != nil {
		c.writeFault(w, soap.ClientFault("read request: "+err.Error()))
		return
	}
	if int64(body.Len()) > c.opts.ReadLimit {
		c.writeFault(w, soap.ClientFault("request exceeds size limit"))
		return
	}
	// DecodeRequest copies every string out of the envelope, so the body
	// buffer is free for reuse once the handler returns.
	req, err := soap.DecodeRequest(body.Bytes())
	if err != nil {
		c.writeFault(w, soap.ClientFault("decode request: "+err.Error()))
		return
	}
	for _, ic := range c.opts.Interceptors {
		if err := ic(req, handle); err != nil {
			c.writeFault(w, soap.ClientFault(err.Error()))
			return
		}
	}
	in, ok := c.hosting.LookupHandle(handle)
	if !ok {
		c.writeFault(w, &soap.Fault{Code: soap.FaultClient, String: "no such service instance", Detail: handle.String()})
		return
	}

	cursor, hasCursor := req.Header(HeaderCursor)
	sizeStr, hasSize := req.Header(HeaderPageSize)
	paged := hasCursor || hasSize
	pageSize := 0
	if hasSize {
		pageSize, err = strconv.Atoi(sizeStr)
		if err != nil || pageSize < 0 {
			c.writeFault(w, soap.ClientFault("bad "+HeaderPageSize+" header: "+sizeStr))
			return
		}
	}

	// The request context carries client disconnection; the HeaderDeadline
	// budget (relative milliseconds — no clock synchronization needed)
	// tightens it to the caller's remaining deadline. Context-aware
	// services propagate it through singleflight waits, cache fills, and
	// Mapping-Layer fetches, so an expired request stops costing work as
	// early as possible.
	ctx := r.Context()
	if dlStr, ok := req.Header(HeaderDeadline); ok {
		ms, perr := strconv.ParseInt(dlStr, 10, 64)
		if perr != nil || ms <= 0 {
			c.writeFault(w, soap.ClientFault("bad "+HeaderDeadline+" header: "+dlStr))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	// Admission control, in front of the worker pool. A draining
	// container sheds everything; a full queue sheds before queueing; a
	// queued request is shed when its queue-wait budget expires. Sheds
	// are µs-scale typed rejections that never consume a worker slot —
	// the difference between degrading and collapsing past saturation.
	if c.draining.Load() {
		c.shed(w, arrived, "container draining")
		return
	}
	if c.workers != nil {
		if depth := c.opts.QueueDepth; depth > 0 {
			for {
				q := c.queued.Load()
				if q >= int64(depth) {
					c.shed(w, arrived, "admission queue full")
					return
				}
				if c.queued.CompareAndSwap(q, q+1) {
					break
				}
			}
		} else {
			c.queued.Add(1)
		}
		// Acquire a simulated-CPU worker slot for the invocation itself.
		// A caller that gave up — a hedged or deadline-bounded federated
		// request whose client side cancelled the HTTP request — is
		// turned away while still queued, so abandoned work never
		// occupies a simulated CPU.
		var waitC <-chan time.Time
		if c.opts.QueueWait > 0 {
			tm := time.NewTimer(c.opts.QueueWait)
			defer tm.Stop()
			waitC = tm.C
		}
		select {
		case c.workers <- struct{}{}:
			c.queued.Add(-1)
		case <-waitC:
			c.queued.Add(-1)
			// The shed latency sample starts at the budget expiry, not at
			// arrival: the queue wait is configured policy, and the sample
			// measures how fast the rejection itself is produced.
			c.shed(w, time.Now(), "queue-wait budget exceeded")
			return
		case <-ctx.Done():
			c.queued.Add(-1)
			c.writeFault(w, soap.ClientFault("request cancelled while queued: "+ctx.Err().Error()))
			return
		}
	} else if err := ctx.Err(); err != nil {
		c.writeFault(w, soap.ClientFault("request cancelled: "+err.Error()))
		return
	}
	c.executing.Add(1)
	start := time.Now()
	var (
		returns  []string
		next     string
		raw      []byte
		streamed bool
	)
	// out serves double duty: the raw streamers encode straight into it
	// (zero-intermediate cold path), and the string path below reuses it
	// as the response encode buffer. It is acquired lazily so the
	// verbatim cache-hit path (InvokeRaw, served from pre-encoded bytes)
	// stays free of pool traffic.
	var out *bytes.Buffer
	defer func() {
		if out != nil {
			soap.PutBuffer(out)
		}
	}()
	getOut := func() *bytes.Buffer {
		if out == nil {
			out = soap.GetBuffer()
		}
		return out
	}
	if paged {
		// A paging-aware service that can stream its own page envelope
		// (cursor header included) goes first; everything else pages
		// through the string protocol.
		next, streamed, err = in.InvokePagedRawToContext(ctx, req.Operation, req.Params, cursor, pageSize, getOut())
		if !streamed && err == nil {
			returns, next, err = in.InvokePagedContext(ctx, req.Operation, req.Params, cursor, pageSize)
		}
	} else {
		// The raw fast paths first: a service that caches encoded response
		// envelopes answers verbatim with zero marshalling; a service that
		// can stream the encode writes the envelope into the pooled buffer
		// with no intermediate result strings. The plain string protocol
		// is the fallback.
		var tookRaw bool
		raw, tookRaw, err = in.InvokeRawContext(ctx, req.Operation, req.Params)
		if !tookRaw && err == nil {
			streamed, err = in.InvokeRawToContext(ctx, req.Operation, req.Params, getOut())
		}
		if raw == nil && !streamed && err == nil {
			returns, err = in.InvokeContext(ctx, req.Operation, req.Params)
		}
	}
	elapsed := time.Since(start)
	if c.workers != nil {
		<-c.workers
	}
	c.executing.Add(-1)
	c.noteServiceTime(elapsed)
	if c.opts.Logf != nil {
		result := fmt.Sprintf("%d values", len(returns))
		switch {
		case raw != nil:
			result = fmt.Sprintf("%d raw bytes", len(raw))
		case streamed:
			result = fmt.Sprintf("%d streamed bytes", out.Len())
		}
		c.opts.Logf("container %s: %s %s(%d params) -> %s, err=%v, %s",
			c.Host(), handle.ServiceType+"/"+handle.InstanceID, req.Operation,
			len(req.Params), result, err, elapsed)
	}
	if err != nil {
		c.writeFault(w, soap.ServerFault(err))
		return
	}
	if raw != nil {
		w.Header().Set("Content-Type", soap.ContentType)
		_, _ = w.Write(raw)
		return
	}
	if !streamed {
		var respHeaders []soap.HeaderEntry
		if next != "" {
			respHeaders = []soap.HeaderEntry{{Name: HeaderCursor, Value: next}}
		}
		if err := soap.EncodeResponseTo(getOut(), req.Operation, respHeaders, returns); err != nil {
			c.writeFault(w, soap.ServerFault(err))
			return
		}
	}
	w.Header().Set("Content-Type", soap.ContentType)
	_, _ = w.Write(out.Bytes())
}

// retryHint estimates when a retry has a chance of admission: roughly
// the time to clear the current backlog at the container's recent
// service rate, clamped to [1ms, 5s]. With no samples yet it assumes
// 1 ms per request — the hint only has to be the right order of
// magnitude for client backoff to stop hammering a saturated site.
func (c *Container) retryHint() time.Duration {
	meanMs := c.MeanServiceMs()
	if meanMs <= 0 {
		meanMs = 1
	}
	workers := 1.0
	if c.workers != nil {
		workers = float64(cap(c.workers))
	}
	backlog := float64(c.queued.Load()+c.executing.Load()) + 1
	d := time.Duration(meanMs * backlog / workers * float64(time.Millisecond))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// shed rejects a request at the front door: a typed overload fault
// (soap.FaultOverloaded) on HTTP 503, with the Retry-After hint both in
// the fault detail (for SOAP peers — the Stub surfaces it through
// soap.AsOverload) and in the standard Retry-After header (for generic
// HTTP clients). No worker slot is consumed; the decision latency since
// arrival is sampled for the soak bench.
func (c *Container) shed(w http.ResponseWriter, arrived time.Time, msg string) {
	hint := c.retryHint()
	f := soap.OverloadFault(msg, hint)
	data, err := soap.EncodeFault(f)
	if err != nil {
		http.Error(w, f.String, http.StatusServiceUnavailable)
		return
	}
	secs := int64((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Content-Type", soap.ContentType)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write(data)

	c.sheds.Add(1)
	i := c.shedSeq.Add(1) - 1
	c.shedLat[i%shedSampleN].Store(time.Since(arrived).Nanoseconds())
}

func (c *Container) writeFault(w http.ResponseWriter, f *soap.Fault) {
	c.faults.Add(1)
	data, err := soap.EncodeFault(f)
	if err != nil {
		http.Error(w, f.String, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", soap.ContentType)
	// SOAP 1.1 carries faults with HTTP 500.
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(data)
}
