package container

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/soap"
	"pperfgrid/internal/wsdl"
)

// HeaderProvider supplies SOAP header entries for an outgoing call — the
// hook the gsi package uses to attach request signatures.
type HeaderProvider func(op string, params []string) []soap.HeaderEntry

// Stub is the client-side architecture adapter: it presents a grid service
// instance as a local object whose Call method marshals the invocation to
// SOAP, posts it to the instance's endpoint, and demarshals the response.
// A Stub is safe for concurrent use.
type Stub struct {
	handle  gsh.Handle
	client  *http.Client
	headers HeaderProvider

	mu  sync.Mutex
	def *wsdl.Definition // fetched lazily by Definition()
}

// sharedTransport is the process-wide persistent-connection pool behind
// every stub, like the per-JVM HTTP connection pools of the paper's
// client — but sized for the one-goroutine-per-Execution fan-out of
// QueryPerformanceResults: the default Transport caps idle connections at
// 2 per host, which forces most of a parallel batch onto fresh TCP
// connections every round.
var sharedTransport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// sharedClient reuses pooled connections across all stubs.
var sharedClient = &http.Client{Transport: sharedTransport, Timeout: 60 * time.Second}

// Dial creates a stub bound to the instance named by handle. No network
// traffic occurs until the first call.
func Dial(handle gsh.Handle) *Stub {
	return &Stub{handle: handle, client: sharedClient}
}

// DialString parses a GSH string and dials it.
func DialString(handleStr string) (*Stub, error) {
	h, err := gsh.Parse(handleStr)
	if err != nil {
		return nil, err
	}
	return Dial(h), nil
}

// SetHeaderProvider installs a provider of per-call SOAP headers.
func (s *Stub) SetHeaderProvider(p HeaderProvider) { s.headers = p }

// SetHTTPClient replaces the HTTP client (e.g. to set timeouts in tests).
func (s *Stub) SetHTTPClient(c *http.Client) { s.client = c }

// Handle returns the stub's target handle.
func (s *Stub) Handle() gsh.Handle { return s.handle }

// Call invokes an operation on the remote instance and returns its string
// array result. Remote failures surface as *soap.Fault errors.
func (s *Stub) Call(op string, params ...string) ([]string, error) {
	return s.CallContext(context.Background(), op, params...)
}

// CallContext is Call under a caller-supplied context: the deadline (or
// cancellation) aborts the HTTP round trip in flight, so a federated
// fan-out's per-site budget propagates down to the transport instead of
// waiting out the shared client's 60 s timeout. A cancelled call returns
// an error wrapping ctx.Err().
func (s *Stub) CallContext(ctx context.Context, op string, params ...string) ([]string, error) {
	resp, err := s.roundTrip(ctx, op, nil, params)
	if err != nil {
		return nil, err
	}
	return resp.Returns, nil
}

// CallPaged invokes an operation through the paged protocol: the cursor
// and page size travel in SOAP header entries (HeaderCursor,
// HeaderPageSize). An empty cursor opens a new paged result set; the
// returned next cursor is "" once the set is exhausted. limit <= 0 lets
// the service choose its default page size. Servers that do not page the
// operation return the whole result as one terminal page, so callers can
// use CallPaged unconditionally.
func (s *Stub) CallPaged(op, cursor string, limit int, params ...string) ([]string, string, error) {
	return s.CallPagedContext(context.Background(), op, cursor, limit, params...)
}

// CallPagedContext is CallPaged under a caller-supplied context; see
// CallContext for the cancellation semantics.
func (s *Stub) CallPagedContext(ctx context.Context, op, cursor string, limit int, params ...string) ([]string, string, error) {
	extra := []soap.HeaderEntry{{Name: HeaderPageSize, Value: strconv.Itoa(max(limit, 0))}}
	if cursor != "" {
		extra = append(extra, soap.HeaderEntry{Name: HeaderCursor, Value: cursor})
	}
	resp, err := s.roundTrip(ctx, op, extra, params)
	if err != nil {
		return nil, "", err
	}
	next, _ := resp.Header(HeaderCursor)
	return resp.Returns, next, nil
}

// roundTrip posts one encoded request envelope and decodes the reply,
// reusing pooled buffers for both bodies. The context bounds the whole
// round trip: connection establishment, the write, and the response read.
func (s *Stub) roundTrip(ctx context.Context, op string, extraHeaders []soap.HeaderEntry, params []string) (*soap.Response, error) {
	var hdrs []soap.HeaderEntry
	if s.headers != nil {
		hdrs = s.headers(op, params)
	}
	hdrs = append(hdrs, extraHeaders...)
	// A context deadline travels to the server as a relative millisecond
	// budget (HeaderDeadline), so the container can expire the request
	// inside its own layers instead of doing doomed work until the client
	// hangs up. Rounded up: a truncated budget of 0 would be rejected.
	if dl, ok := ctx.Deadline(); ok {
		if ms := int64((time.Until(dl) + time.Millisecond - 1) / time.Millisecond); ms > 0 {
			hdrs = append(hdrs, soap.HeaderEntry{Name: HeaderDeadline, Value: strconv.FormatInt(ms, 10)})
		}
	}
	// The request body must be freshly owned, not pooled: when the server
	// answers before draining the body (e.g. a size-limit fault), Post
	// returns while the Transport's write loop is still reading it, so a
	// pooled buffer could be reset and rewritten mid-send. EncodeRequest
	// does its scratch work in the pool and returns a right-sized copy.
	reqBody, err := soap.EncodeRequest(op, hdrs, params)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, s.handle.URL(), bytes.NewReader(reqBody))
	if err != nil {
		return nil, fmt.Errorf("container: call %s on %s: %w", op, s.handle, err)
	}
	httpReq.Header.Set("Content-Type", soap.ContentType)
	httpResp, err := s.client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("container: call %s on %s: %w", op, s.handle, err)
	}
	defer httpResp.Body.Close()
	respBuf := soap.GetBuffer()
	defer soap.PutBuffer(respBuf)
	if _, err := respBuf.ReadFrom(httpResp.Body); err != nil {
		return nil, fmt.Errorf("container: read response for %s: %w", op, err)
	}
	// DecodeResponse copies all strings out of the envelope, so both
	// buffers can return to the pool when this function exits.
	resp, err := soap.DecodeResponse(respBuf.Bytes())
	if err != nil {
		return nil, err // includes *soap.Fault for remote failures
	}
	if resp.Operation != op {
		return nil, fmt.Errorf("container: response for %q to a %q call", resp.Operation, op)
	}
	return resp, nil
}

// Definition fetches (once) and returns the remote instance's WSDL
// definition.
func (s *Stub) Definition() (*wsdl.Definition, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.def != nil {
		return s.def, nil
	}
	httpResp, err := s.client.Get(s.handle.URL())
	if err != nil {
		return nil, fmt.Errorf("container: fetch definition of %s: %w", s.handle, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("container: fetch definition of %s: HTTP %d", s.handle, httpResp.StatusCode)
	}
	body, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	def, err := wsdl.Parse(body)
	if err != nil {
		return nil, err
	}
	s.def = def
	return def, nil
}

// Destroy invokes the GridService Destroy operation on the remote
// instance.
func (s *Stub) Destroy() error {
	_, err := s.Call(ogsi.OpDestroy)
	return err
}

// CreateService calls the Factory PortType's CreateService on the remote
// factory and returns a stub bound to the new instance.
func (s *Stub) CreateService(params ...string) (*Stub, error) {
	out, err := s.Call(ogsi.OpCreateService, params...)
	if err != nil {
		return nil, err
	}
	if len(out) != 1 {
		return nil, fmt.Errorf("container: CreateService returned %d values, want 1", len(out))
	}
	child, err := DialString(out[0])
	if err != nil {
		return nil, err
	}
	child.headers = s.headers
	child.client = s.client
	return child, nil
}

// SOAPSinkDialer returns an ogsi.SinkDialer that delivers notifications to
// remote sinks with DeliverNotification calls over SOAP.
func SOAPSinkDialer() ogsi.SinkDialer {
	return func(handle gsh.Handle) ogsi.Sink {
		stub := Dial(handle)
		return ogsi.SinkFunc(func(topic, message string) error {
			_, err := stub.Call(ogsi.OpDeliverNotification, topic, message)
			return err
		})
	}
}

// SinkService adapts a local ogsi.Sink into a deployable grid service
// implementing the NotificationSink PortType, so a client can receive
// push notifications by hosting one in its own container.
type SinkService struct {
	Sink ogsi.Sink
}

// Invoke implements DeliverNotification.
func (s *SinkService) Invoke(op string, params []string) ([]string, error) {
	if op != ogsi.OpDeliverNotification {
		return nil, fmt.Errorf("%w: %q on notification sink", ogsi.ErrUnknownOperation, op)
	}
	if len(params) != 2 {
		return nil, fmt.Errorf("container: %s requires [topic, message]", ogsi.OpDeliverNotification)
	}
	if err := s.Sink.Deliver(params[0], params[1]); err != nil {
		return nil, err
	}
	return []string{"delivered"}, nil
}

// DeploySink hosts a sink in the given hosting table and returns its
// instance (whose handle is passed to SubscribeToNotificationTopic).
func DeploySink(h *ogsi.Hosting, sink ogsi.Sink) (*ogsi.Instance, error) {
	def := wsdl.New("NotificationSink", ogsi.NotificationSinkPortType())
	return h.CreateInstance("NotificationSink", &SinkService{Sink: sink}, def)
}
