package container

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pperfgrid/internal/soap"
	"pperfgrid/internal/wsdl"
)

// gateService blocks every "block" invocation until the gate closes, so
// tests can hold the worker pool saturated deterministically. "count"
// increments an invocation counter — the probe for "this request never
// reached the service".
type gateService struct {
	entered chan struct{}
	gate    chan struct{}
	counted atomic.Int64
}

func newGateService() *gateService {
	return &gateService{entered: make(chan struct{}, 64), gate: make(chan struct{})}
}

func (g *gateService) Invoke(op string, params []string) ([]string, error) {
	switch op {
	case "block":
		g.entered <- struct{}{}
		<-g.gate
		return []string{"done"}, nil
	case "count":
		g.counted.Add(1)
		return []string{"counted"}, nil
	}
	return nil, fmt.Errorf("gate: unknown op %q", op)
}

func gateDef() *wsdl.Definition {
	return wsdl.New("Gate", wsdl.PortType{Name: "Gate", Operations: []wsdl.Operation{
		wsdl.Op("block", "Blocks until the test opens the gate.", wsdl.PRep("arg")),
		wsdl.Op("count", "Counts invocations.", wsdl.PRep("arg")),
	}})
}

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionShedsExactCount saturates a 1-worker container (one
// executing request, a full 2-deep queue) and pins that every further
// request is shed with the typed overload fault — HTTP 503, Retry-After
// set, soap.AsOverload recoverable — without consuming the worker slot,
// and that the shed count is exact. The queued requests complete
// untouched once the gate opens.
func TestAdmissionShedsExactCount(t *testing.T) {
	c := startContainer(t, Options{Workers: 1, QueueDepth: 2})
	svc := newGateService()
	in, err := c.Hosting().DeployPersistent("Gate", svc, gateDef())
	if err != nil {
		t.Fatal(err)
	}
	stub := Dial(in.Handle())

	// One request holds the worker, two fill the queue.
	var wg sync.WaitGroup
	results := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = stub.Call("block", fmt.Sprint(i))
		}(i)
	}
	<-svc.entered // the executing request is inside the service
	waitUntil(t, "queue to fill", func() bool { return c.Queued() == 2 })
	if got := c.Executing(); got != 1 {
		t.Errorf("executing = %d, want 1", got)
	}

	// Every further request sheds, immediately and countably.
	const extra = 5
	for i := 0; i < extra; i++ {
		_, err := stub.Call("block", "extra")
		hint, ok := soap.AsOverload(err)
		if !ok {
			t.Fatalf("saturated call %d: %v, want overload fault", i, err)
		}
		if hint <= 0 {
			t.Errorf("saturated call %d: Retry-After hint %v, want > 0", i, hint)
		}
	}
	if got := c.Sheds(); got != extra {
		t.Errorf("sheds = %d, want %d", got, extra)
	}
	if got := c.Faults(); got != 0 {
		t.Errorf("faults = %d, want 0 (sheds are backpressure, not faults)", got)
	}
	if got := c.Queued(); got != 2 {
		t.Errorf("queued = %d after sheds, want 2 (sheds never queue)", got)
	}
	if got := c.Executing(); got != 1 {
		t.Errorf("executing = %d after sheds, want 1 (sheds never take the worker)", got)
	}
	if lats := c.ShedLatenciesNs(); len(lats) != extra {
		t.Errorf("shed latency samples = %d, want %d", len(lats), extra)
	}

	// The raw wire shape of a shed: HTTP 503 with a Retry-After header.
	req, err := soap.EncodeRequest("block", nil, []string{"raw"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(in.Handle().URL(), soap.ContentType, bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("shed status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	if !bytes.Contains(body, []byte(soap.FaultOverloaded)) {
		t.Errorf("shed body missing %s fault code: %s", soap.FaultOverloaded, body)
	}

	// The saturating requests were never disturbed: open the gate and all
	// three complete successfully.
	close(svc.gate)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Errorf("queued request %d: %v", i, err)
		}
	}
	waitUntil(t, "container to go idle", func() bool {
		return c.Queued() == 0 && c.Executing() == 0
	})
	if got := c.Sheds(); got != extra+1 {
		t.Errorf("final sheds = %d, want %d", got, extra+1)
	}
}

// TestQueueWaitBudgetSheds pins the second shed trigger: a request
// admitted to the queue is shed with the overload fault once its
// queue-wait budget expires, instead of waiting forever for the worker.
func TestQueueWaitBudgetSheds(t *testing.T) {
	c := startContainer(t, Options{Workers: 1, QueueDepth: 8, QueueWait: 30 * time.Millisecond})
	svc := newGateService()
	in, _ := c.Hosting().DeployPersistent("Gate", svc, gateDef())
	stub := Dial(in.Handle())

	var wg sync.WaitGroup
	wg.Add(1)
	var blockErr error
	go func() {
		defer wg.Done()
		_, blockErr = stub.Call("block", "holder")
	}()
	<-svc.entered

	start := time.Now()
	_, err := stub.Call("count", "queued-past-budget")
	elapsed := time.Since(start)
	if _, ok := soap.AsOverload(err); !ok {
		t.Fatalf("queued call: %v, want overload fault after wait budget", err)
	}
	if elapsed < 30*time.Millisecond {
		t.Errorf("shed after %v, before the 30ms budget", elapsed)
	}
	if got := svc.counted.Load(); got != 0 {
		t.Errorf("count invocations = %d, want 0 (shed request must not run)", got)
	}
	if got := c.Sheds(); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}

	close(svc.gate)
	wg.Wait()
	if blockErr != nil {
		t.Errorf("holder request: %v", blockErr)
	}
}

// TestDeadlineExpiredWhileQueuedNeverInvokes pins deadline propagation at
// the front door: a request whose ppg-deadline budget expires while it
// waits for the worker is turned away with a client fault and never
// reaches the service implementation.
func TestDeadlineExpiredWhileQueuedNeverInvokes(t *testing.T) {
	c := startContainer(t, Options{Workers: 1, QueueDepth: 8})
	svc := newGateService()
	in, _ := c.Hosting().DeployPersistent("Gate", svc, gateDef())
	stub := Dial(in.Handle())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = stub.Call("block", "holder")
	}()
	<-svc.entered

	// The stub turns the context deadline into the ppg-deadline header;
	// the container folds it into the request context, and the queued
	// request exits via ctx.Done while the worker is still held.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := stub.CallContext(ctx, "count", "doomed")
	if err == nil {
		t.Fatal("deadline-expired queued call succeeded, want failure")
	}
	if _, ok := soap.AsOverload(err); ok {
		t.Errorf("deadline expiry classified as overload: %v", err)
	}
	if got := svc.counted.Load(); got != 0 {
		t.Errorf("count invocations = %d, want 0 (expired request must not dispatch)", got)
	}
	// The client gives up marginally before the server-side budget (the
	// header rounds the remaining budget up); wait for the server to
	// reject the queued request before freeing the worker, or the two
	// races and the doomed request could still dispatch.
	waitUntil(t, "doomed request to leave the queue", func() bool { return c.Queued() == 0 })

	close(svc.gate)
	wg.Wait()

	// The service is intact: a fresh in-budget call dispatches.
	if _, err := stub.Call("count", "alive"); err != nil {
		t.Fatalf("post-expiry call: %v", err)
	}
	if got := svc.counted.Load(); got != 1 {
		t.Errorf("count invocations = %d, want 1", got)
	}
}

// deadlineProbe records whether the request context carried a deadline
// into the service — the end-to-end pin for the stub attaching
// ppg-deadline and the container folding it into ctx.
type deadlineProbe struct {
	sawDeadline atomic.Bool
	remaining   atomic.Int64 // ns until the observed deadline
}

func (p *deadlineProbe) Invoke(op string, params []string) ([]string, error) {
	return []string{"no-ctx"}, nil
}

func (p *deadlineProbe) InvokeContext(ctx context.Context, op string, params []string) ([]string, error) {
	if dl, ok := ctx.Deadline(); ok {
		p.sawDeadline.Store(true)
		p.remaining.Store(int64(time.Until(dl)))
	} else {
		p.sawDeadline.Store(false)
	}
	return []string{"ok"}, nil
}

func probeDef() *wsdl.Definition {
	return wsdl.New("Probe", wsdl.PortType{Name: "Probe", Operations: []wsdl.Operation{
		wsdl.Op("probe", "Reports the request deadline.", wsdl.PRep("arg")),
	}})
}

func TestStubPropagatesDeadlineHeader(t *testing.T) {
	c := startContainer(t, Options{})
	probe := &deadlineProbe{}
	in, err := c.Hosting().DeployPersistent("Probe", probe, probeDef())
	if err != nil {
		t.Fatal(err)
	}
	stub := Dial(in.Handle())

	const budget = 500 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if _, err := stub.CallContext(ctx, "probe", "x"); err != nil {
		t.Fatal(err)
	}
	if !probe.sawDeadline.Load() {
		t.Fatal("service saw no deadline; ppg-deadline not propagated")
	}
	remaining := time.Duration(probe.remaining.Load())
	if remaining <= 0 || remaining > budget+50*time.Millisecond {
		t.Errorf("observed remaining budget %v, want in (0, ~%v]", remaining, budget)
	}

	// Without a client deadline, the service must see none.
	if _, err := stub.Call("probe", "y"); err != nil {
		t.Fatal(err)
	}
	if probe.sawDeadline.Load() {
		t.Error("service saw a deadline on a deadline-less call")
	}
}

// TestDrainingShedsThenDrainCompletes pins the drain lifecycle: a
// draining container sheds new work with the overload fault while
// in-flight requests run to completion, and Drain leaves the instance
// table empty.
func TestDrainingShedsThenDrainCompletes(t *testing.T) {
	c := startContainer(t, Options{Workers: 1})
	svc := newGateService()
	in, _ := c.Hosting().DeployPersistent("Gate", svc, gateDef())
	stub := Dial(in.Handle())

	var wg sync.WaitGroup
	wg.Add(1)
	var inflightErr error
	go func() {
		defer wg.Done()
		_, inflightErr = stub.Call("block", "inflight")
	}()
	<-svc.entered

	// Flip the drain flag directly (Drain itself also stops the listener,
	// which would race this test's fresh connections).
	c.draining.Store(true)
	_, err := stub.Call("count", "late")
	if _, ok := soap.AsOverload(err); !ok {
		t.Fatalf("call on draining container: %v, want overload fault", err)
	}
	if got := svc.counted.Load(); got != 0 {
		t.Errorf("count invocations = %d, want 0 during drain", got)
	}

	// Full drain: the in-flight request finishes, instances are destroyed.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- c.Drain(ctx)
	}()
	time.Sleep(10 * time.Millisecond) // let Shutdown begin with the request in flight
	close(svc.gate)
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if inflightErr != nil {
		t.Errorf("in-flight request during drain: %v", inflightErr)
	}
	if n := c.Hosting().NumInstances(); n != 0 {
		t.Errorf("instances after drain = %d, want 0", n)
	}
	if !c.Draining() {
		t.Error("Draining() = false after Drain")
	}
}
