package container

// Wire-path tests: the paged-call protocol (cursor in SOAP headers), the
// raw pre-encoded response path, and the fault behaviour for malformed,
// truncated, and oversized envelopes.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"pperfgrid/internal/soap"
	"pperfgrid/internal/wsdl"
)

// pagedEchoService serves a fixed value list with real cursor state, so
// stub-level paging is tested against an independent implementation
// (core's Execution service has its own tests).
type pagedEchoService struct {
	values  []string
	cursors map[string]int
}

func newPagedEcho(n int) *pagedEchoService {
	s := &pagedEchoService{cursors: map[string]int{}}
	for i := 0; i < n; i++ {
		s.values = append(s.values, fmt.Sprintf("value-%03d", i))
	}
	return s
}

func (s *pagedEchoService) Invoke(op string, params []string) ([]string, error) {
	if op != "list" {
		return nil, fmt.Errorf("unknown op %q", op)
	}
	return s.values, nil
}

func (s *pagedEchoService) InvokePaged(op string, params []string, cursor string, limit int) ([]string, string, error) {
	if op != "list" {
		out, err := s.Invoke(op, params)
		return out, "", err
	}
	if limit <= 0 {
		limit = 4
	}
	start := 0
	if cursor != "" {
		off, ok := s.cursors[cursor]
		if !ok {
			return nil, "", errors.New("unknown cursor")
		}
		start = off
		delete(s.cursors, cursor)
	}
	end := start + limit
	if end >= len(s.values) {
		return s.values[start:], "", nil
	}
	id := "c" + strconv.Itoa(end)
	s.cursors[id] = end
	return s.values[start:end], id, nil
}

func pagedEchoDef() *wsdl.Definition {
	return wsdl.New("PagedEcho", wsdl.PortType{Name: "PagedEcho", Operations: []wsdl.Operation{
		wsdl.Op("list", "Returns the value list."),
	}})
}

// TestPagedCallOverWire: stub.CallPaged drains the set in limit-sized
// pages whose concatenation equals the unpaged Call.
func TestPagedCallOverWire(t *testing.T) {
	c := startContainer(t, Options{})
	in, err := c.Hosting().DeployPersistent("PagedEcho", newPagedEcho(19), pagedEchoDef())
	if err != nil {
		t.Fatal(err)
	}
	stub := Dial(in.Handle())
	want, err := stub.Call("list")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	cursor := ""
	pages := 0
	for {
		page, next, err := stub.CallPaged("list", cursor, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) > 5 {
			t.Fatalf("page has %d values", len(page))
		}
		got = append(got, page...)
		pages++
		if next == "" {
			break
		}
		cursor = next
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged %v != unpaged %v", got, want)
	}
	if pages != 4 {
		t.Errorf("%d pages for 19 values at limit 5", pages)
	}
}

// TestPagedCallAgainstUnpagedService: a service without PagedService
// support answers a paged call with one terminal page.
func TestPagedCallAgainstUnpagedService(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())
	page, next, err := stub.CallPaged("ping", "", 1, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if next != "" {
		t.Errorf("unpaged service returned cursor %q", next)
	}
	if !reflect.DeepEqual(page, []string{"pong", "a", "b"}) {
		t.Errorf("page = %v", page)
	}
}

// TestBadPageSizeHeaderFaults: a non-numeric page size is a client fault.
func TestBadPageSizeHeaderFaults(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	data, err := soap.EncodeRequest("ping", []soap.HeaderEntry{{Name: HeaderPageSize, Value: "lots"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fault := postForFault(t, in.Handle().URL(), data)
	if fault.Code != soap.FaultClient || !strings.Contains(fault.String, HeaderPageSize) {
		t.Errorf("fault = %+v", fault)
	}
}

// rawEchoService answers "list" with a pre-encoded envelope.
type rawEchoService struct {
	raw      []byte
	rawCalls int
}

func (s *rawEchoService) Invoke(op string, params []string) ([]string, error) {
	return nil, errors.New("plain Invoke must not be reached when raw answers")
}

func (s *rawEchoService) InvokeRaw(op string, params []string) ([]byte, bool, error) {
	if op != "list" {
		return nil, false, nil
	}
	s.rawCalls++
	return s.raw, true, nil
}

// TestRawResponsePath: pre-encoded envelope bytes reach the client
// verbatim, with no server-side marshalling step.
func TestRawResponsePath(t *testing.T) {
	raw, err := soap.EncodeResponse("list", nil, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	svc := &rawEchoService{raw: raw}
	c := startContainer(t, Options{})
	in, err := c.Hosting().DeployPersistent("PagedEcho", svc, pagedEchoDef())
	if err != nil {
		t.Fatal(err)
	}
	stub := Dial(in.Handle())
	out, err := stub.Call("list")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []string{"x", "y"}) {
		t.Errorf("raw-served call = %v", out)
	}
	if svc.rawCalls != 1 {
		t.Errorf("rawCalls = %d", svc.rawCalls)
	}
}

// postForFault posts a raw body and decodes the expected SOAP Fault.
func postForFault(t *testing.T, url string, body []byte) *soap.Fault {
	t.Helper()
	resp, err := http.Post(url, soap.ContentType, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("HTTP %d, want 500 (SOAP fault)", resp.StatusCode)
	}
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, err = soap.DecodeResponse(respBody)
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("response is not a fault: %v", err)
	}
	return fault
}

// TestTruncatedEnvelopeFaults: a request cut off mid-body must produce a
// client fault, not a hang or a 400.
func TestTruncatedEnvelopeFaults(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	data, err := soap.EncodeRequest("ping", nil, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{10, len(data) / 2, len(data) - 40} {
		fault := postForFault(t, in.Handle().URL(), data[:cut])
		if fault.Code != soap.FaultClient || !strings.Contains(fault.String, "decode request") {
			t.Errorf("cut %d: fault = %+v", cut, fault)
		}
	}
}

// TestGarbageBodyFaults: non-XML bodies produce client faults.
func TestGarbageBodyFaults(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	for _, body := range []string{"", "not xml at all", "<html><body>hi</body></html>", "{\"json\":true}"} {
		fault := postForFault(t, in.Handle().URL(), []byte(body))
		if fault.Code != soap.FaultClient {
			t.Errorf("body %q: fault = %+v", body, fault)
		}
	}
}

// TestOversizedHeaderFaults: an envelope blown past ReadLimit by a giant
// header entry is rejected by the size gate before any decode.
func TestOversizedHeaderFaults(t *testing.T) {
	c := startContainer(t, Options{ReadLimit: 4096})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	huge := strings.Repeat("x", 8192)
	data, err := soap.EncodeRequest("ping", []soap.HeaderEntry{{Name: "token", Value: huge}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fault := postForFault(t, in.Handle().URL(), data)
	if fault.Code != soap.FaultClient || !strings.Contains(fault.String, "size limit") {
		t.Errorf("fault = %+v", fault)
	}
	if c.Faults() == 0 {
		t.Error("fault counter not bumped")
	}
}

// TestUnknownOperationFaultsOverWire: an operation absent from the WSDL
// definition is a server fault naming the operation.
func TestUnknownOperationFaultsOverWire(t *testing.T) {
	c := startContainer(t, Options{})
	in, _ := c.Hosting().DeployPersistent("Echo", echoService{}, echoDef())
	stub := Dial(in.Handle())
	_, err := stub.Call("noSuchOperation")
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("want fault, got %v", err)
	}
	if !strings.Contains(fault.String, "noSuchOperation") {
		t.Errorf("fault does not name the operation: %+v", fault)
	}
	// Same through the paged protocol.
	_, _, err = stub.CallPaged("noSuchOperation", "", 3)
	if !errors.As(err, &fault) {
		t.Fatalf("paged: want fault, got %v", err)
	}
}
