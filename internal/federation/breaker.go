package federation

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed admits every call (healthy site).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every call until the open window elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe call at a time; its
	// outcome decides between reclosing and reopening.
	BreakerHalfOpen
)

// String renders the state for annotations and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-site circuit breaker. The breaker
// generalizes the scale-out layer's adaptive load-EWMA policy into site
// selection: instead of merely preferring faster replicas, a site whose
// calls keep failing is taken out of the fan-out entirely, then
// re-admitted through probe traffic.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the breaker open. 0 means 5.
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before admitting a
	// half-open probe. 0 means 1 s.
	OpenTimeout time.Duration
	// ProbeSuccesses is the number of consecutive successful probes that
	// reclose the breaker. 0 means 1.
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	return c
}

// Breaker is one site's closed/open/half-open circuit breaker. It is safe
// for concurrent use; in the half-open state at most one probe is
// admitted at a time, so a recovering site sees a trickle, not the whole
// resumed fan-out at once.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for deterministic tests

	mu            sync.Mutex
	state         BreakerState
	consecFails   int
	probeWins     int
	openedAt      time.Time
	probeInFlight bool
	trips         int64
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// SetClock replaces the breaker's time source (tests drive transitions
// without sleeping).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// State returns the current state, folding in open-window expiry: an open
// breaker whose window has elapsed reports half-open.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Allow asks whether a call may proceed. ok is false when the breaker
// rejects the call (open, or half-open with a probe already in flight).
// probe marks an admitted call as the half-open probe; its outcome MUST be
// reported through Record(probe=true, ...) or the breaker would stay
// half-open with a phantom probe forever.
func (b *Breaker) Allow() (probe, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenTimeout {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probeWins = 0
		b.probeInFlight = true
		return true, true
	case BreakerHalfOpen:
		if b.probeInFlight {
			return false, false
		}
		b.probeInFlight = true
		return true, true
	}
	return false, false
}

// Record reports an admitted call's outcome. probe must echo what Allow
// returned for that call: probe outcomes drive the half-open state
// machine, while non-probe outcomes only count in the closed state (a
// straggler finishing after the breaker already tripped must not corrupt
// the probe bookkeeping).
func (b *Breaker) Record(probe, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probeInFlight = false
		if b.state != BreakerHalfOpen {
			return
		}
		if success {
			b.probeWins++
			if b.probeWins >= b.cfg.ProbeSuccesses {
				b.state = BreakerClosed
				b.consecFails = 0
				b.probeWins = 0
			}
			return
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probeWins = 0
		b.trips++
		return
	}
	if b.state != BreakerClosed {
		return
	}
	if success {
		b.consecFails = 0
		return
	}
	b.consecFails++
	if b.consecFails >= b.cfg.FailureThreshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}
