package federation

import (
	"sync"
	"time"
)

// latencyEWMA tracks a site's success latency as two exponential moving
// averages — the mean and the mean absolute deviation — the same
// cheap-to-update signal the container's worker pools feed the adaptive
// replica policy, reused here to time hedges. For roughly bell-shaped
// latency, mean + 3*MAD sits near the 99th percentile (MAD ≈ 0.8σ, and
// p99 ≈ mean + 2.33σ), which is exactly when a hedge is worth firing:
// the outstanding attempt is already slower than ~99% of its peers.
type latencyEWMA struct {
	mu   sync.Mutex
	mean float64 // milliseconds
	dev  float64 // mean absolute deviation, milliseconds
	n    int64
}

// ewmaAlpha matches the container-side service-time EWMA.
const ewmaAlpha = 0.2

// Observe folds one successful attempt's latency in.
func (l *latencyEWMA) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		l.mean = ms
		l.dev = 0
	} else {
		diff := ms - l.mean
		if diff < 0 {
			diff = -diff
		}
		l.mean = (1-ewmaAlpha)*l.mean + ewmaAlpha*ms
		l.dev = (1-ewmaAlpha)*l.dev + ewmaAlpha*diff
	}
	l.n++
}

// Samples returns how many latencies have been observed.
func (l *latencyEWMA) Samples() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// MeanMs returns the EWMA mean in milliseconds.
func (l *latencyEWMA) MeanMs() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mean
}

// HedgeDelay derives the EWMA-p99-informed hedge delay, clamped to
// [min, max]. With no samples yet it returns 0 — the engine reads that
// as "no basis to hedge" and lets the first calls establish a baseline.
func (l *latencyEWMA) HedgeDelay(min, max time.Duration) time.Duration {
	l.mu.Lock()
	n, mean, dev := l.n, l.mean, l.dev
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	d := time.Duration((mean + 3*dev) * float64(time.Millisecond))
	if d < min {
		d = min
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// siteHealth pairs one site's breaker with its latency tracker.
type siteHealth struct {
	breaker *Breaker
	lat     latencyEWMA
}
