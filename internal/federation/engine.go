// Package federation implements PPerfGrid's multi-site scatter-gather
// layer: the robustness subsystem that turns "compare heterogeneous
// performance stores regardless of location" (section 7 of the paper)
// from a fair-weather demo into something that survives slow, flaky, and
// dead sites.
//
// The Engine fans a getPR query out to N sites concurrently and applies,
// per site:
//
//   - a per-attempt deadline, propagated as context cancellation down
//     through client → stub → container dispatch (an abandoned request
//     is turned away before it consumes a server worker slot);
//   - hedged requests: when an attempt outlives an EWMA-p99-informed
//     delay, a second identical request races it and the loser is
//     cancelled;
//   - exponential-backoff-with-jitter retries, drawn from a retry budget
//     shared by the whole query (one sick site cannot amplify a fan-out
//     into a retry storm);
//   - a closed/open/half-open circuit breaker, generalizing the
//     scale-out layer's adaptive load-EWMA replica policy into site
//     selection: persistently failing sites are skipped outright and
//     re-admitted through single probe calls.
//
// The merge layer never fails all-or-nothing: a Report carries results
// from every site that answered next to explicit per-site annotations —
// answered, timed out, errored, tripped, hedged — so callers degrade
// gracefully and visibly. With no faults, a federated query is
// byte-identical to sequential per-site collection (the differential
// oracle the tests pin); the seeded chaos transport in chaos.go injects
// deterministic latency, errors, blackholes, and slow drips to prove the
// failure-path claims.
package federation

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pperfgrid/internal/federation/backoff"
	"pperfgrid/internal/perfdata"
)

// Config tunes the scatter-gather engine.
type Config struct {
	// PerSiteTimeout bounds each attempt against one site (connection,
	// query fan-out within the site, and response). 0 means 2 s.
	PerSiteTimeout time.Duration
	// QueryTimeout bounds the whole federated query. 0 means no limit
	// beyond the caller's context.
	QueryTimeout time.Duration
	// RetryBudget is the number of extra attempts — retries plus hedges
	// combined — one query may spend across all its sites. 0 means 3;
	// negative disables extra attempts entirely.
	RetryBudget int
	// MaxAttemptsPerSite caps attempts against one site, the first
	// included. 0 means 3.
	MaxAttemptsPerSite int
	// HedgeDelay fixes the hedge delay. 0 derives it per site from the
	// latency EWMA (mean + 3*MAD, a p99-ish bound), clamped to
	// [HedgeMinDelay, PerSiteTimeout/2]; until a site has a latency
	// sample, it is not hedged at all.
	HedgeDelay time.Duration
	// HedgeMinDelay floors the derived hedge delay. 0 means 1 ms.
	HedgeMinDelay time.Duration
	// DisableHedging turns hedged requests off.
	DisableHedging bool
	// DisableBreaker turns the per-site circuit breaker off (tests that
	// pin exact attempt counts use this).
	DisableBreaker bool
	// Backoff schedules the delay before each retry; the zero value is
	// backoff.Default().
	Backoff backoff.Policy
	// Breaker tunes the per-site circuit breaker.
	Breaker BreakerConfig
}

func (c Config) withDefaults() Config {
	if c.PerSiteTimeout <= 0 {
		c.PerSiteTimeout = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.MaxAttemptsPerSite <= 0 {
		c.MaxAttemptsPerSite = 3
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = time.Millisecond
	}
	c.Backoff = c.Backoff.WithDefaults()
	return c
}

// Status is a site's outcome classification in a Report.
type Status string

const (
	// StatusOK: the site answered.
	StatusOK Status = "ok"
	// StatusTimeout: every admitted attempt ran out of deadline.
	StatusTimeout Status = "timeout"
	// StatusError: the site kept failing (or failed unretryably).
	StatusError Status = "error"
	// StatusTripped: the circuit breaker was open; no attempt was made.
	StatusTripped Status = "tripped"
)

// SiteOutcome annotates one site's part in a federated query — the
// explicit partial-failure contract: which sites answered, which timed
// out, errored, or were skipped by their breaker, and how much extra
// work (retries, hedges) each one cost.
type SiteOutcome struct {
	Site     string
	Status   Status
	Err      error // nil iff Status == StatusOK
	Attempts int   // requests actually launched, hedges included
	Retries  int   // sequential re-attempts after failures
	Hedged   bool  // a hedge was launched
	HedgeWon bool  // ... and it beat the primary
	Probe    bool  // the (final) attempt was a half-open breaker probe
	Elapsed  time.Duration
	Data     *SiteData // non-nil iff Status == StatusOK
}

// Report is a federated query's merged outcome.
type Report struct {
	Outcomes []SiteOutcome // in the caller's site order
	Answered int
	TimedOut int
	Errored  int
	Tripped  int
	Complete bool // every site answered
	Elapsed  time.Duration
}

// Data returns the answered sites' data, in the caller's site order —
// the merge layer's partial-result view.
func (r *Report) Data() []*SiteData {
	out := make([]*SiteData, 0, r.Answered)
	for _, o := range r.Outcomes {
		if o.Status == StatusOK {
			out = append(out, o.Data)
		}
	}
	return out
}

// Outcome returns one site's annotation, or nil.
func (r *Report) Outcome(site string) *SiteOutcome {
	for i := range r.Outcomes {
		if r.Outcomes[i].Site == site {
			return &r.Outcomes[i]
		}
	}
	return nil
}

// Summary renders a one-line annotation digest.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d sites answered in %v", r.Answered, len(r.Outcomes), r.Elapsed.Round(time.Microsecond))
	for _, o := range r.Outcomes {
		if o.Status == StatusOK && !o.Hedged && o.Retries == 0 {
			continue
		}
		fmt.Fprintf(&b, "; %s=%s", o.Site, o.Status)
		if o.Retries > 0 {
			fmt.Fprintf(&b, "(+%d retries)", o.Retries)
		}
		if o.Hedged {
			b.WriteString("(hedged")
			if o.HedgeWon {
				b.WriteString(", hedge won")
			}
			b.WriteString(")")
		}
	}
	return b.String()
}

// Stats counts the engine's lifetime activity.
type Stats struct {
	Queries   int64
	Attempts  int64
	Hedges    int64
	HedgeWins int64
	Retries   int64
	Tripped   int64
	// Overloads counts attempts answered with a typed overload shed —
	// the site's admission control turning the request away with a
	// Retry-After hint the retry loop then honors.
	Overloads int64
}

// Engine is the scatter-gather query engine. Safe for concurrent use;
// per-site health (breaker state, latency EWMA) is shared across queries.
type Engine struct {
	cfg       Config
	transport Transport

	mu    sync.Mutex
	sites map[string]*siteHealth

	queries   atomic.Int64
	attempts  atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	retries   atomic.Int64
	tripped   atomic.Int64
	overloads atomic.Int64
}

// New creates an engine over a transport.
func New(transport Transport, cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), transport: transport, sites: make(map[string]*siteHealth)}
}

// Transport returns the engine's transport.
func (e *Engine) Transport() Transport { return e.transport }

// Stats returns lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:   e.queries.Load(),
		Attempts:  e.attempts.Load(),
		Hedges:    e.hedges.Load(),
		HedgeWins: e.hedgeWins.Load(),
		Retries:   e.retries.Load(),
		Tripped:   e.tripped.Load(),
		Overloads: e.overloads.Load(),
	}
}

// BreakerState reports a site's breaker position (closed for unknown
// sites — they have not failed yet).
func (e *Engine) BreakerState(site string) BreakerState {
	e.mu.Lock()
	h := e.sites[site]
	e.mu.Unlock()
	if h == nil {
		return BreakerClosed
	}
	return h.breaker.State()
}

// health returns (creating on first use) a site's health record.
func (e *Engine) health(site string) *siteHealth {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.sites[site]
	if h == nil {
		h = &siteHealth{breaker: NewBreaker(e.cfg.Breaker)}
		e.sites[site] = h
	}
	return h
}

// Query fans q out to the named sites concurrently and merges the
// per-site outcomes. It never fails all-or-nothing and never hangs: every
// site resolves to an annotated outcome within the configured deadlines,
// and results from healthy sites are returned no matter how many others
// are down.
func (e *Engine) Query(ctx context.Context, sites []string, q perfdata.Query) *Report {
	e.queries.Add(1)
	start := time.Now()
	if e.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.QueryTimeout)
		defer cancel()
	}
	budget := newRetryBudget(e.cfg.RetryBudget)
	report := &Report{Outcomes: make([]SiteOutcome, len(sites))}
	var wg sync.WaitGroup
	for i, site := range sites {
		wg.Add(1)
		go func(i int, site string) {
			defer wg.Done()
			report.Outcomes[i] = e.querySite(ctx, site, q, budget)
		}(i, site)
	}
	wg.Wait()
	for _, o := range report.Outcomes {
		switch o.Status {
		case StatusOK:
			report.Answered++
		case StatusTimeout:
			report.TimedOut++
		case StatusError:
			report.Errored++
		case StatusTripped:
			report.Tripped++
		}
	}
	report.Complete = report.Answered == len(sites)
	report.Elapsed = time.Since(start)
	return report
}

// querySite runs one site's retry loop: breaker admission, attempts with
// per-attempt deadlines and hedging, backoff between retries, all under
// the query-wide retry budget.
func (e *Engine) querySite(ctx context.Context, site string, q perfdata.Query, budget *retryBudget) SiteOutcome {
	out := SiteOutcome{Site: site, Status: StatusError}
	h := e.health(site)
	start := time.Now()
	defer func() { out.Elapsed = time.Since(start) }()
	for attempt := 0; ; attempt++ {
		probe := false
		if !e.cfg.DisableBreaker {
			var ok bool
			probe, ok = h.breaker.Allow()
			if !ok {
				e.tripped.Add(1)
				out.Status = StatusTripped
				out.Err = &SiteError{Site: site, Cause: ErrSiteTripped}
				return out
			}
		}
		out.Probe = probe
		data, err := e.attempt(ctx, h, site, q, probe, budget, &out)
		if err == nil {
			out.Status = StatusOK
			out.Data = data
			out.Err = nil
			return out
		}
		se := classify(site, err)
		out.Err = se
		if se.Timeout {
			out.Status = StatusTimeout
		} else {
			out.Status = StatusError
		}
		if se.Overloaded {
			e.overloads.Add(1)
		}
		if ctx.Err() != nil || !se.Retryable || attempt+1 >= e.cfg.MaxAttemptsPerSite || !budget.take() {
			return out
		}
		out.Retries++
		e.retries.Add(1)
		// An overload shed carries the server's own Retry-After hint —
		// retrying sooner than that is a wasted attempt against a site
		// that already said "not yet", so the hint overrides the generic
		// schedule when it asks for a longer wait.
		var slept bool
		if se.Overloaded && se.RetryAfter > e.cfg.Backoff.Delay(attempt, nil) {
			slept = sleepUntil(se.RetryAfter, ctx.Done())
		} else {
			slept = e.cfg.Backoff.Sleep(attempt, nil, ctx.Done())
		}
		if !slept {
			out.Status = StatusTimeout
			out.Err = &SiteError{Site: site, Cause: ctx.Err(), Retryable: false, Timeout: true}
			return out
		}
	}
}

// sleepUntil waits d, returning early with false if done closes first.
func sleepUntil(d time.Duration, done <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// armResult is one request arm's (primary or hedge) outcome.
type armResult struct {
	data    *SiteData
	err     error
	hedge   bool
	elapsed time.Duration
}

// attempt launches one deadline-bounded request against a site, hedging
// it with a second identical request if it outlives the hedge delay. The
// first arm to succeed wins and the loser's context is cancelled; the
// attempt fails only when every launched arm has failed (or the deadline
// expires). Breaker admission covers the whole attempt group: one
// Record per attempt, success if any arm succeeded.
func (e *Engine) attempt(ctx context.Context, h *siteHealth, site string, q perfdata.Query, probe bool, budget *retryBudget, out *SiteOutcome) (*SiteData, error) {
	actx, cancel := context.WithTimeout(ctx, e.cfg.PerSiteTimeout)
	defer cancel()

	ch := make(chan armResult, 2) // both arms can always deliver; no goroutine leak
	var cancels [2]context.CancelFunc
	launch := func(hedge bool) {
		armCtx, armCancel := context.WithCancel(actx)
		idx := 0
		if hedge {
			idx = 1
		}
		cancels[idx] = armCancel
		out.Attempts++
		e.attempts.Add(1)
		go func() {
			s := time.Now()
			data, err := e.transport.Do(armCtx, site, q)
			ch <- armResult{data: data, err: err, hedge: hedge, elapsed: time.Since(s)}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if !e.cfg.DisableHedging && !probe {
		if d := e.hedgeDelay(h); d > 0 {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}

	launched, failed := 1, 0
	var firstErr error
	win := func(r armResult) *SiteData {
		h.lat.Observe(r.elapsed)
		if !e.cfg.DisableBreaker {
			h.breaker.Record(probe, true)
		}
		if r.hedge {
			out.HedgeWon = true
			e.hedgeWins.Add(1)
		}
		for _, c := range cancels {
			if c != nil {
				c() // cancel the losing arm (the winner's is spent)
			}
		}
		return r.data
	}
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return win(r), nil
			}
			failed++
			if firstErr == nil {
				firstErr = r.err
			}
			if failed == launched {
				if !e.cfg.DisableBreaker {
					h.breaker.Record(probe, false)
				}
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if launched == 1 && budget.take() {
				out.Hedged = true
				e.hedges.Add(1)
				launch(true)
				launched = 2
			}
		case <-actx.Done():
			// The attempt deadline expired. Well-behaved transports unwind
			// through their contexts and deliver promptly, but the "never
			// a hang" guarantee cannot depend on that — give up now,
			// preferring any success already delivered.
			for {
				select {
				case r := <-ch:
					if r.err == nil {
						return win(r), nil
					}
					if firstErr == nil {
						firstErr = r.err
					}
					continue
				default:
				}
				break
			}
			if !e.cfg.DisableBreaker {
				h.breaker.Record(probe, false)
			}
			return nil, &SiteError{Site: site, Cause: actx.Err(), Retryable: true, Timeout: true}
		}
	}
}

// hedgeDelay picks the attempt's hedge delay: fixed when configured,
// otherwise EWMA-derived per site (0 = do not hedge yet).
func (e *Engine) hedgeDelay(h *siteHealth) time.Duration {
	if e.cfg.HedgeDelay > 0 {
		return e.cfg.HedgeDelay
	}
	return h.lat.HedgeDelay(e.cfg.HedgeMinDelay, e.cfg.PerSiteTimeout/2)
}

// retryBudget is a query-wide pool of extra attempts (retries and hedges
// combined). Shared across the fan-out so a single dead site cannot turn
// an N-site query into an attempt storm.
type retryBudget struct {
	left atomic.Int64
}

func newRetryBudget(n int) *retryBudget {
	b := &retryBudget{}
	b.left.Store(int64(n))
	return b
}

// take consumes one extra attempt if any remain.
func (b *retryBudget) take() bool {
	for {
		cur := b.left.Load()
		if cur <= 0 {
			return false
		}
		if b.left.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// remaining returns the unspent budget.
func (b *retryBudget) remaining() int64 { return b.left.Load() }
