package federation

import (
	"fmt"

	"pperfgrid/internal/client"
	"pperfgrid/internal/registry"
)

// Discover browses the registry behind a client session and binds every
// published service whose organization matches the query substring
// (empty = all), returning a BindingTransport with one site per service
// and the site names in registry order (organization, then service) —
// the order federated queries and their differential oracle iterate in.
//
// Site names are the binding keys ("org/service"), so outcomes in a
// Report line up with what the registry published.
func Discover(c *client.Client, orgQuery string) (*BindingTransport, []string, error) {
	orgs, err := c.DiscoverOrganizations(orgQuery)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: discover organizations: %w", err)
	}
	t := NewBindingTransport()
	var names []string
	for _, org := range orgs {
		svcs, err := c.DiscoverServices(org.Name)
		if err != nil {
			return nil, nil, fmt.Errorf("federation: discover services of %s: %w", org.Name, err)
		}
		for _, entry := range svcs {
			b, err := c.Bind(entry)
			if err != nil {
				return nil, nil, fmt.Errorf("federation: bind %s/%s: %w", entry.Organization, entry.Name, err)
			}
			t.AddSite(b.Key(), b)
			names = append(names, b.Key())
		}
	}
	return t, names, nil
}

// DiscoverEntries binds an explicit list of registry entries (e.g. when
// factory handles are known out of band) into a transport.
func DiscoverEntries(c *client.Client, entries []registry.ServiceEntry) (*BindingTransport, []string, error) {
	t := NewBindingTransport()
	var names []string
	for _, entry := range entries {
		b, err := c.Bind(entry)
		if err != nil {
			return nil, nil, fmt.Errorf("federation: bind %s/%s: %w", entry.Organization, entry.Name, err)
		}
		t.AddSite(b.Key(), b)
		names = append(names, b.Key())
	}
	return t, names, nil
}
