package federation

import (
	"context"
	"testing"
	"time"

	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
)

// TestOverloadShedRetriedAfterHint pins the client half of admission
// control: a typed overload shed (soap.FaultOverloaded carrying a
// Retry-After hint) is classified retryable, counted in Stats.Overloads,
// and retried no sooner than the server's hint — the hint overrides the
// generic backoff schedule when it asks for a longer wait.
func TestOverloadShedRetriedAfterHint(t *testing.T) {
	const hint = 80 * time.Millisecond
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		if call == 0 {
			return nil, soap.OverloadFault("admission queue full", hint)
		}
		return okData(site), nil
	})
	cfg := quietConfig()
	cfg.RetryBudget = 4
	cfg.MaxAttemptsPerSite = 2
	e := New(mt, cfg)

	start := time.Now()
	r := e.Query(context.Background(), []string{"busy"}, perfdata.Query{})
	elapsed := time.Since(start)

	o := r.Outcome("busy")
	if o == nil || o.Status != StatusOK || o.Data == nil {
		t.Fatalf("overloaded-then-healthy site outcome: %+v", o)
	}
	if o.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (shed, then success)", o.Attempts)
	}
	if got := e.Stats().Overloads; got != 1 {
		t.Errorf("Stats.Overloads = %d, want 1", got)
	}
	if mt.count("busy") != 2 {
		t.Errorf("transport calls = %d, want 2", mt.count("busy"))
	}
	if elapsed < hint {
		t.Errorf("retried after %v, sooner than the server's %v Retry-After hint", elapsed, hint)
	}
}

// TestOverloadClassification pins the error surface: a wire-level
// overload fault maps to a SiteError with Overloaded set and the hint
// preserved, recoverable through the package's AsOverload.
func TestOverloadClassification(t *testing.T) {
	const hint = 250 * time.Millisecond
	se := classify("s0", soap.OverloadFault("draining", hint))
	if !se.Overloaded || !se.Retryable {
		t.Fatalf("classified overload: %+v, want Overloaded and Retryable", se)
	}
	if se.RetryAfter != hint {
		t.Errorf("RetryAfter = %v, want %v", se.RetryAfter, hint)
	}
	got, ok := AsOverload(se)
	if !ok || got != hint {
		t.Errorf("AsOverload = %v, %v; want %v, true", got, ok, hint)
	}
}
