package federation

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives breaker transitions without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestBreakerTransitions walks the full closed → open → half-open →
// closed cycle, plus the half-open → open relapse.
func TestBreakerTransitions(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second, ProbeSuccesses: 2})
	b.SetClock(clock.Now)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}

	// Failures below the threshold keep it closed; a success resets the
	// streak.
	for i := 0; i < 2; i++ {
		if _, ok := b.Allow(); !ok {
			t.Fatal("closed breaker rejected a call")
		}
		b.Record(false, false)
	}
	b.Record(false, true) // reset
	for i := 0; i < 2; i++ {
		b.Record(false, false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after reset + 2 failures = %v, want closed", b.State())
	}

	// The third consecutive failure trips it.
	b.Record(false, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker admitted a call")
	}

	// After the open window, one probe is admitted.
	clock.Advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after open window = %v, want half-open", b.State())
	}
	probe, ok := b.Allow()
	if !ok || !probe {
		t.Fatalf("half-open Allow = (probe=%v, ok=%v), want (true, true)", probe, ok)
	}
	// While the probe is out, everything else is rejected.
	if _, ok := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// First probe success: still half-open (ProbeSuccesses=2).
	b.Record(true, true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", b.State())
	}
	probe, ok = b.Allow()
	if !ok || !probe {
		t.Fatal("half-open breaker did not admit the second probe")
	}
	b.Record(true, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", b.State())
	}

	// Relapse: trip again, probe fails, back to open for a full window.
	for i := 0; i < 3; i++ {
		b.Record(false, false)
	}
	clock.Advance(time.Second)
	if probe, ok = b.Allow(); !ok || !probe {
		t.Fatal("relapse probe not admitted")
	}
	b.Record(true, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if got := b.Trips(); got != 3 {
		t.Fatalf("trips = %d, want 3", got)
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("reopened breaker admitted a call before the window")
	}
}

// TestBreakerStragglerRecords pins that late non-probe outcomes (calls
// admitted while closed, finishing after the breaker moved on) do not
// corrupt the open/half-open bookkeeping.
func TestBreakerStragglerRecords(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Second, ProbeSuccesses: 1})
	b.SetClock(clock.Now)

	b.Record(false, false)
	b.Record(false, false) // trips
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Straggler success/failure while open: ignored.
	b.Record(false, true)
	b.Record(false, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after stragglers = %v, want open", b.State())
	}

	clock.Advance(time.Second)
	if probe, ok := b.Allow(); !ok || !probe {
		t.Fatal("probe not admitted")
	}
	// Straggler non-probe success in half-open must not close it.
	b.Record(false, true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after half-open straggler = %v, want half-open", b.State())
	}
	b.Record(true, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
}

// TestBreakerProbeAdmissionConcurrent hammers a half-open breaker from
// many goroutines and pins that exactly one probe is admitted per
// outstanding-probe window (-race covers the locking).
func TestBreakerProbeAdmissionConcurrent(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Millisecond, ProbeSuccesses: 1})
	b.SetClock(clock.Now)
	b.Record(false, false) // trip
	clock.Advance(time.Millisecond)

	const goroutines = 32
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if probe, ok := b.Allow(); ok {
				if !probe {
					t.Error("half-open admission without probe flag")
				}
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
	// The probe's outcome frees the slot for exactly one more.
	b.Record(true, false)
	clock.Advance(time.Millisecond)
	admitted.Store(0)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := b.Allow(); ok {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("second window admitted %d probes, want exactly 1", got)
	}
}
