package backoff

import (
	"math/rand"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Multiplier: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := p.Delay(i, nil); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayFirstFastShiftsSchedule(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Multiplier: 2, Jitter: 0, FirstFast: true}
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	for i, w := range want {
		if got := p.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayJitterStaysInBand(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.5}
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		d := p.Delay(0, rnd)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered Delay(0) = %v, want within [50ms, 100ms]", d)
		}
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	d := p.Delay(0, nil)
	def := Default()
	if d <= 0 || d > def.Base {
		t.Errorf("zero-policy Delay(0) = %v, want in (0, %v]", d, def.Base)
	}
}

func TestSleepHonorsDone(t *testing.T) {
	p := Policy{Base: time.Minute, Max: time.Minute, Multiplier: 2, Jitter: 0}
	done := make(chan struct{})
	close(done)
	start := time.Now()
	if p.Sleep(0, nil, done) {
		t.Error("Sleep returned true with done already closed")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Sleep blocked %v despite closed done", elapsed)
	}
}

func TestSleepZeroDelayChecksDone(t *testing.T) {
	p := Policy{Base: time.Minute, Max: time.Minute, Multiplier: 2, Jitter: 0, FirstFast: true}
	if !p.Sleep(0, nil, make(chan struct{})) {
		t.Error("Sleep(0) with open done = false, want true (immediate retry admitted)")
	}
	done := make(chan struct{})
	close(done)
	if p.Sleep(0, nil, done) {
		t.Error("Sleep(0) with closed done = true, want false")
	}
}
