// Package backoff is the shared exponential-backoff-with-jitter helper
// behind every retry loop in the federation layer — the scatter-gather
// engine's per-site retries and the registry client's hardened lookup
// calls both draw their delays from it, so retry pacing is tuned in one
// place.
//
// It lives in its own leaf package (rather than in federation proper)
// because the registry client needs it too, and federation imports
// registry for site discovery; a leaf keeps the import graph acyclic.
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// Policy describes an exponential backoff schedule with jitter.
type Policy struct {
	// Base is the delay before the first retry (attempt 0).
	Base time.Duration
	// Max caps the grown delay.
	Max time.Duration
	// Multiplier grows the delay per attempt; values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the
	// returned delay is uniform in [delay*(1-Jitter), delay]. 0 disables
	// jitter; values outside [0, 1] are clamped.
	Jitter float64
	// FirstFast makes the first retry immediate (attempt 0 delay = 0),
	// with the exponential schedule starting from the second retry —
	// the fast-retry pattern for transient single-shot failures, where
	// waiting a full base delay before the first re-send only adds tail
	// latency. Later retries still back off, so a persistently sick
	// target is not hammered.
	FirstFast bool
}

// Default is the schedule used when a zero Policy is supplied: 10 ms
// base, 2x growth, 500 ms cap, half of each delay jittered. Desynchronizing
// retriers matters more than the exact curve — a wave of queries that all
// failed against the same sick site must not re-arrive in step.
func Default() Policy {
	return Policy{Base: 10 * time.Millisecond, Max: 500 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
}

// WithDefaults fills zero fields from Default.
func (p Policy) WithDefaults() Policy {
	d := Default()
	if p.Base <= 0 {
		p.Base = d.Base
	}
	if p.Max <= 0 {
		p.Max = d.Max
	}
	if p.Multiplier <= 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the jittered delay before retry number attempt (0-based).
// rnd supplies the jitter draw; nil uses a process-wide locked source.
func (p Policy) Delay(attempt int, rnd *rand.Rand) time.Duration {
	p = p.WithDefaults()
	if p.FirstFast {
		if attempt == 0 {
			return 0
		}
		attempt--
	}
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		u := globalFloat64(rnd)
		d *= 1 - p.Jitter*u
	}
	return time.Duration(d)
}

var (
	globalMu  sync.Mutex
	globalRnd = rand.New(rand.NewSource(1))
)

func globalFloat64(rnd *rand.Rand) float64 {
	if rnd != nil {
		return rnd.Float64()
	}
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalRnd.Float64()
}

// Sleep waits the jittered delay for attempt, returning early with false
// if done closes first (the caller's deadline or cancellation) — a retry
// loop must never outlive the query it serves.
func (p Policy) Sleep(attempt int, rnd *rand.Rand, done <-chan struct{}) bool {
	d := p.Delay(attempt, rnd)
	if d == 0 {
		select {
		case <-done:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
