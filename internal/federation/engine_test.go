package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pperfgrid/internal/perfdata"
)

// quietConfig turns off the adaptive machinery so tests can pin exact
// behavior, then opts pieces back in per test.
func quietConfig() Config {
	return Config{
		PerSiteTimeout: time.Second,
		DisableHedging: true,
		DisableBreaker: true,
		RetryBudget:    -1, // no extra attempts
	}
}

func TestQueryAllHealthy(t *testing.T) {
	mt := newMockTransport(alwaysOK)
	e := New(mt, quietConfig())
	sites := []string{"s0", "s1", "s2", "s3"}

	r := e.Query(context.Background(), sites, perfdata.Query{})
	if !r.Complete || r.Answered != 4 || r.TimedOut+r.Errored+r.Tripped != 0 {
		t.Fatalf("healthy fleet report: %s", r.Summary())
	}
	for i, o := range r.Outcomes {
		if o.Site != sites[i] {
			t.Fatalf("outcome %d is %s, want caller order %s", i, o.Site, sites[i])
		}
		if o.Status != StatusOK || o.Err != nil || o.Attempts != 1 || o.Data == nil {
			t.Fatalf("site %s outcome: %+v", o.Site, o)
		}
	}
	if got := len(r.Data()); got != 4 {
		t.Fatalf("Data() returned %d sites, want 4", got)
	}
}

// TestPartialFailureGuarantee pins the headline robustness contract: with
// K of N sites down (one blackholed, one always-erroring), the federated
// query returns within the deadline envelope carrying all N-K healthy
// results and accurate per-site annotations — never all-or-nothing,
// never a hang.
func TestPartialFailureGuarantee(t *testing.T) {
	inner := newMockTransport(alwaysOK)
	chaos := NewChaosTransport(inner, 99)
	chaos.SetSiteFaults("dead", SiteFaults{BlackholeRate: 1})
	chaos.SetSiteFaults("sick", SiteFaults{ErrorRate: 1})

	cfg := quietConfig()
	cfg.PerSiteTimeout = 100 * time.Millisecond
	cfg.RetryBudget = 2
	cfg.MaxAttemptsPerSite = 2
	e := New(chaos, cfg)

	sites := []string{"h0", "dead", "h1", "sick"}
	start := time.Now()
	r := e.Query(context.Background(), sites, perfdata.Query{})
	elapsed := time.Since(start)

	// Worst case: 2 attempts x 100ms against the blackhole plus one
	// backoff sleep. Anything near a second means a hang.
	if elapsed > 900*time.Millisecond {
		t.Fatalf("partial-failure query took %v, want bounded by deadlines", elapsed)
	}
	if r.Answered != 2 || r.Complete {
		t.Fatalf("want 2/4 answered, got: %s", r.Summary())
	}
	for _, site := range []string{"h0", "h1"} {
		o := r.Outcome(site)
		if o == nil || o.Status != StatusOK || o.Data == nil || o.Data.Site != site {
			t.Fatalf("healthy site %s lost its result: %+v", site, o)
		}
	}
	if o := r.Outcome("dead"); o.Status != StatusTimeout || o.Err == nil {
		t.Fatalf("blackholed site annotation: %+v", o)
	} else if !IsTimeout(o.Err) {
		t.Fatalf("blackholed site error not a timeout: %v", o.Err)
	}
	if o := r.Outcome("sick"); o.Status != StatusError || !errors.Is(o.Err, ErrInjected) {
		t.Fatalf("erroring site annotation: %+v", o)
	}
	if r.TimedOut != 1 || r.Errored != 1 {
		t.Fatalf("tallies: %s", r.Summary())
	}
}

// TestRetryBudgetExactCounts pins the retry-storm bound: a wave of B
// queries against a fleet with one dead site consumes exactly
// min(budget, maxAttempts-1) extra attempts per query on the dead site
// and exactly one attempt per healthy site — never more.
func TestRetryBudgetExactCounts(t *testing.T) {
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		if site == "dead" {
			return nil, &SiteError{Site: site, Cause: fmt.Errorf("connection refused"), Retryable: true}
		}
		return okData(site), nil
	})
	cfg := quietConfig()
	cfg.RetryBudget = 2
	cfg.MaxAttemptsPerSite = 3
	cfg.Backoff.Base = time.Millisecond
	cfg.Backoff.Max = 2 * time.Millisecond
	e := New(mt, cfg)

	sites := []string{"h0", "dead", "h1", "h2"}
	const waves = 5
	for w := 0; w < waves; w++ {
		r := e.Query(context.Background(), sites, perfdata.Query{})
		if r.Answered != 3 {
			t.Fatalf("wave %d: %s", w, r.Summary())
		}
		o := r.Outcome("dead")
		if o.Status != StatusError || o.Attempts != 3 || o.Retries != 2 {
			t.Fatalf("wave %d dead-site outcome: attempts=%d retries=%d status=%s",
				w, o.Attempts, o.Retries, o.Status)
		}
	}
	// Exact call accounting across the wave: healthy sites one call per
	// query, the dead site 1 + budget per query.
	for _, site := range []string{"h0", "h1", "h2"} {
		if got := mt.count(site); got != waves {
			t.Fatalf("healthy site %s saw %d calls, want %d", site, got, waves)
		}
	}
	if got := mt.count("dead"); got != waves*3 {
		t.Fatalf("dead site saw %d calls, want %d (1 + budget per query)", got, waves*3)
	}
	if s := e.Stats(); s.Retries != waves*2 || s.Hedges != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestRetryBudgetSharedAcrossSites pins that the budget is per query, not
// per site: two dead sites competing for a budget of 1 spend exactly one
// extra attempt between them.
func TestRetryBudgetSharedAcrossSites(t *testing.T) {
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		return nil, &SiteError{Site: site, Cause: errors.New("down"), Retryable: true}
	})
	cfg := quietConfig()
	cfg.RetryBudget = 1
	cfg.MaxAttemptsPerSite = 5
	cfg.Backoff.Base = time.Millisecond
	cfg.Backoff.Max = 2 * time.Millisecond
	e := New(mt, cfg)

	r := e.Query(context.Background(), []string{"d0", "d1"}, perfdata.Query{})
	total := mt.count("d0") + mt.count("d1")
	if total != 3 {
		t.Fatalf("two dead sites, budget 1: %d total attempts, want 3 (2 first + 1 retry); report: %s",
			total, r.Summary())
	}
}

// TestHedgeCancelsLoser pins hedged-request semantics: a slow primary is
// raced by a hedge after the configured delay, the hedge's answer wins,
// and the loser's context is cancelled.
func TestHedgeCancelsLoser(t *testing.T) {
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		if call == 0 {
			// Slow primary: parks until cancelled.
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return okData(site), nil
	})
	cfg := quietConfig()
	cfg.DisableHedging = false
	cfg.HedgeDelay = 20 * time.Millisecond
	cfg.RetryBudget = 1 // hedges draw from the budget
	e := New(mt, cfg)

	r := e.Query(context.Background(), []string{"s"}, perfdata.Query{})
	o := r.Outcome("s")
	if o.Status != StatusOK || !o.Hedged || !o.HedgeWon || o.Attempts != 2 {
		t.Fatalf("hedged outcome: %+v", o)
	}
	// The losing primary's context must have been cancelled by the win.
	primary := mt.callCtx("s", 0)
	select {
	case <-primary.Done():
	case <-time.After(time.Second):
		t.Fatal("losing arm's context was never cancelled")
	}
	if s := e.Stats(); s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestHedgeRequiresBudget pins that hedges spend the shared budget: with
// nothing left, no hedge fires even after the delay.
func TestHedgeRequiresBudget(t *testing.T) {
	released := make(chan struct{})
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		if call == 0 {
			<-released
			return okData(site), nil
		}
		return okData(site), nil
	})
	cfg := quietConfig()
	cfg.DisableHedging = false
	cfg.HedgeDelay = 5 * time.Millisecond
	cfg.RetryBudget = -1 // explicitly empty
	e := New(mt, cfg)

	done := make(chan *Report, 1)
	go func() { done <- e.Query(context.Background(), []string{"s"}, perfdata.Query{}) }()
	// Give the hedge timer ample time to fire (and be denied).
	time.Sleep(50 * time.Millisecond)
	close(released)
	r := <-done
	o := r.Outcome("s")
	if o.Status != StatusOK || o.Hedged || o.Attempts != 1 {
		t.Fatalf("no-budget outcome: %+v", o)
	}
	if mt.count("s") != 1 {
		t.Fatalf("transport saw %d calls, want 1", mt.count("s"))
	}
}

// TestHedgeDelayFromEWMA pins the adaptive path: with no fixed delay
// configured, the first call (no samples) is never hedged; once a latency
// baseline exists, a straggling call is.
func TestHedgeDelayFromEWMA(t *testing.T) {
	var mu sync.Mutex
	slow := false
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		mu.Lock()
		s := slow
		mu.Unlock()
		if s && call == 1 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return okData(site), nil
	})
	cfg := quietConfig()
	cfg.DisableHedging = false
	cfg.HedgeDelay = 0 // derive from EWMA
	cfg.HedgeMinDelay = 5 * time.Millisecond
	cfg.RetryBudget = 2
	e := New(mt, cfg)

	r := e.Query(context.Background(), []string{"s"}, perfdata.Query{})
	if o := r.Outcome("s"); o.Status != StatusOK || o.Hedged {
		t.Fatalf("first call (no latency baseline) hedged: %+v", o)
	}

	mu.Lock()
	slow = true
	mu.Unlock()
	r = e.Query(context.Background(), []string{"s"}, perfdata.Query{})
	o := r.Outcome("s")
	if o.Status != StatusOK || !o.Hedged || !o.HedgeWon {
		t.Fatalf("straggler with baseline not hedged: %+v", o)
	}
}

// TestBreakerTripsInEngine pins breaker integration: a persistently
// failing site trips after the threshold, later queries skip it outright
// (StatusTripped, zero transport calls), and healthy sites are untouched.
func TestBreakerTripsInEngine(t *testing.T) {
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		if site == "dead" {
			return nil, &SiteError{Site: site, Cause: errors.New("down"), Retryable: true}
		}
		return okData(site), nil
	})
	cfg := quietConfig()
	cfg.DisableBreaker = false
	cfg.Breaker = BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Hour}
	cfg.RetryBudget = -1 // one attempt per query; trips on the 2nd query
	e := New(mt, cfg)

	sites := []string{"dead", "ok"}
	for i := 0; i < 2; i++ {
		r := e.Query(context.Background(), sites, perfdata.Query{})
		if o := r.Outcome("dead"); o.Status != StatusError {
			t.Fatalf("query %d dead-site status: %+v", i, o)
		}
	}
	if e.BreakerState("dead") != BreakerOpen {
		t.Fatalf("breaker state after threshold failures: %v", e.BreakerState("dead"))
	}
	callsBefore := mt.count("dead")
	r := e.Query(context.Background(), sites, perfdata.Query{})
	o := r.Outcome("dead")
	if o.Status != StatusTripped || !errors.Is(o.Err, ErrSiteTripped) || o.Attempts != 0 {
		t.Fatalf("tripped-site outcome: %+v", o)
	}
	if mt.count("dead") != callsBefore {
		t.Fatal("tripped site still received a transport call")
	}
	if ro := r.Outcome("ok"); ro.Status != StatusOK {
		t.Fatalf("healthy site disturbed by neighbor's breaker: %+v", ro)
	}
	if r.Tripped != 1 {
		t.Fatalf("report tallies: %s", r.Summary())
	}
	if s := e.Stats(); s.Tripped != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestBreakerRecoversThroughProbe pins the half-open path end to end: an
// open breaker admits a single probe after the window, and a probe
// success re-closes the site for normal traffic.
func TestBreakerRecoversThroughProbe(t *testing.T) {
	var mu sync.Mutex
	healthy := false
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		mu.Lock()
		h := healthy
		mu.Unlock()
		if !h {
			return nil, &SiteError{Site: site, Cause: errors.New("down"), Retryable: true}
		}
		return okData(site), nil
	})
	cfg := quietConfig()
	cfg.DisableBreaker = false
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenTimeout: 20 * time.Millisecond}
	cfg.RetryBudget = -1
	e := New(mt, cfg)

	sites := []string{"s"}
	if r := e.Query(context.Background(), sites, perfdata.Query{}); r.Outcome("s").Status != StatusError {
		t.Fatal("first query should have errored")
	}
	if e.BreakerState("s") != BreakerOpen {
		t.Fatalf("breaker not open: %v", e.BreakerState("s"))
	}
	mu.Lock()
	healthy = true
	mu.Unlock()
	time.Sleep(30 * time.Millisecond) // let the open window lapse

	r := e.Query(context.Background(), sites, perfdata.Query{})
	o := r.Outcome("s")
	if o.Status != StatusOK || !o.Probe {
		t.Fatalf("probe query outcome: %+v", o)
	}
	if e.BreakerState("s") != BreakerClosed {
		t.Fatalf("breaker not re-closed after probe success: %v", e.BreakerState("s"))
	}
	if r := e.Query(context.Background(), sites, perfdata.Query{}); r.Outcome("s").Probe {
		t.Fatal("post-recovery query still flagged as probe")
	}
}

// TestQueryNeverHangsOnMisbehavingTransport pins the worst case: a
// transport that ignores its context entirely. The engine must still
// resolve the site within the per-attempt deadline envelope.
func TestQueryNeverHangsOnMisbehavingTransport(t *testing.T) {
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		time.Sleep(3 * time.Second) // deaf to ctx
		return okData(site), nil
	})
	cfg := quietConfig()
	cfg.PerSiteTimeout = 80 * time.Millisecond
	cfg.MaxAttemptsPerSite = 1
	e := New(mt, cfg)

	start := time.Now()
	r := e.Query(context.Background(), []string{"deaf"}, perfdata.Query{})
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("query against ctx-deaf transport took %v", elapsed)
	}
	if o := r.Outcome("deaf"); o.Status != StatusTimeout {
		t.Fatalf("outcome: %+v", o)
	}
}

// TestQueryTimeoutBoundsWholeFanOut pins the query-wide deadline: even
// with generous per-site settings, QueryTimeout caps the whole call.
func TestQueryTimeoutBoundsWholeFanOut(t *testing.T) {
	mt := newMockTransport(func(ctx context.Context, site string, call int) (*SiteData, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	cfg := quietConfig()
	cfg.PerSiteTimeout = 10 * time.Second
	cfg.QueryTimeout = 60 * time.Millisecond
	e := New(mt, cfg)

	start := time.Now()
	r := e.Query(context.Background(), []string{"a", "b"}, perfdata.Query{})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("query outlived QueryTimeout: %v", elapsed)
	}
	for _, o := range r.Outcomes {
		if o.Status != StatusTimeout {
			t.Fatalf("outcome under query timeout: %+v", o)
		}
	}
}

// TestConcurrentQueriesRace exercises shared engine state (breakers,
// EWMAs, stats) from many concurrent queries — a -race canary.
func TestConcurrentQueriesRace(t *testing.T) {
	inner := newMockTransport(alwaysOK)
	chaos := NewChaosTransport(inner, 5)
	chaos.SetSiteFaults("flaky", SiteFaults{ErrorRate: 0.3, Latency: time.Millisecond})
	cfg := Config{
		PerSiteTimeout: 200 * time.Millisecond,
		RetryBudget:    2,
		HedgeDelay:     50 * time.Millisecond,
		Breaker:        BreakerConfig{FailureThreshold: 4, OpenTimeout: 10 * time.Millisecond},
	}
	cfg.Backoff.Base = time.Millisecond
	e := New(chaos, cfg)

	sites := []string{"s0", "flaky", "s1"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r := e.Query(context.Background(), sites, perfdata.Query{})
				for _, site := range []string{"s0", "s1"} {
					if o := r.Outcome(site); o.Status != StatusOK {
						t.Errorf("healthy site %s: %+v", site, o)
					}
				}
			}
		}()
	}
	wg.Wait()
}
