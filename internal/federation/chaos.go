package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pperfgrid/internal/perfdata"
)

// ErrInjected marks a chaos-injected fast failure (a retryable
// transport-level error, as a flaky network or crashed handler would
// produce).
var ErrInjected = errors.New("federation: injected fault")

// SiteFaults describes one site's injected failure modes. All decisions
// and latencies are drawn deterministically from the transport seed, the
// site name, and the per-site call index — the same seed always yields
// the same fault schedule, concurrency notwithstanding.
type SiteFaults struct {
	// Latency is injected into every call.
	Latency time.Duration
	// LatencyJitter adds a deterministic per-call extra in [0, LatencyJitter).
	LatencyJitter time.Duration
	// ErrorRate is the probability a call fails fast with ErrInjected
	// (after its injected latency).
	ErrorRate float64
	// BlackholeRate is the probability a call never answers: it blocks
	// until the caller's context expires. 1 models a dead or partitioned
	// site.
	BlackholeRate float64
	// SlowDripRate is the probability a call answers only after
	// SlowDripLatency — the long-tail straggler hedging exists for.
	SlowDripRate float64
	// SlowDripLatency is the straggler's injected latency; 0 means 20x
	// the base Latency (or 200 ms if no base is set).
	SlowDripLatency time.Duration
}

func (f SiteFaults) slowDrip() time.Duration {
	if f.SlowDripLatency > 0 {
		return f.SlowDripLatency
	}
	if f.Latency > 0 {
		return 20 * f.Latency
	}
	return 200 * time.Millisecond
}

// FaultDecision is one call's precomputed fate — exposed so tests can pin
// that a seed fully determines the schedule.
type FaultDecision struct {
	Latency   time.Duration
	Error     bool
	Blackhole bool
	SlowDrip  bool
}

// ChaosTransport decorates a Transport with deterministic seeded fault
// injection: per-site latency distributions, fast errors, blackholes, and
// slow-drip responses. Sites without configured faults pass through
// untouched, so a chaos-wrapped fleet with no faults set is byte-identical
// to the bare transport — the differential-oracle discipline.
type ChaosTransport struct {
	inner Transport
	seed  int64

	mu     sync.Mutex
	faults map[string]*siteChaos

	injectedErrors     atomic.Int64
	injectedBlackholes atomic.Int64
	injectedSlowDrips  atomic.Int64
}

type siteChaos struct {
	cfg   SiteFaults
	calls atomic.Int64 // per-site call index allocator
}

// NewChaosTransport wraps inner with a seeded fault injector.
func NewChaosTransport(inner Transport, seed int64) *ChaosTransport {
	return &ChaosTransport{inner: inner, seed: seed, faults: make(map[string]*siteChaos)}
}

// SetSiteFaults installs (or replaces) one site's failure modes and
// resets its call index.
func (c *ChaosTransport) SetSiteFaults(site string, f SiteFaults) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults[site] = &siteChaos{cfg: f}
}

// ClearFaults removes every configured fault.
func (c *ChaosTransport) ClearFaults() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = make(map[string]*siteChaos)
}

// Injected returns how many errors, blackholes, and slow drips have been
// injected so far.
func (c *ChaosTransport) Injected() (errors, blackholes, slowDrips int64) {
	return c.injectedErrors.Load(), c.injectedBlackholes.Load(), c.injectedSlowDrips.Load()
}

// decide computes call k's fate for a site — pure function of (seed,
// site, k, cfg).
func decide(seed int64, site string, k int64, cfg SiteFaults) FaultDecision {
	// One splitmix64 stream per (seed, site, call): three independent
	// uniform draws decide blackhole, error, and slow-drip; a fourth sets
	// the latency jitter.
	s := uint64(seed) ^ fnv64(site) ^ (uint64(k)+1)*0x9e3779b97f4a7c15
	uBlack := unitFloat(&s)
	uErr := unitFloat(&s)
	uDrip := unitFloat(&s)
	uJit := unitFloat(&s)

	d := FaultDecision{Latency: cfg.Latency}
	if cfg.LatencyJitter > 0 {
		d.Latency += time.Duration(uJit * float64(cfg.LatencyJitter))
	}
	switch {
	case uBlack < cfg.BlackholeRate:
		d.Blackhole = true
	case uErr < cfg.ErrorRate:
		d.Error = true
	case uDrip < cfg.SlowDripRate:
		d.SlowDrip = true
		d.Latency = cfg.slowDrip()
	}
	return d
}

// Schedule returns the first n fault decisions for a site as the seed
// determines them, without consuming the live call index — the
// determinism contract tests pin (same seed ⇒ identical schedule).
func (c *ChaosTransport) Schedule(site string, n int) []FaultDecision {
	c.mu.Lock()
	sc := c.faults[site]
	c.mu.Unlock()
	out := make([]FaultDecision, n)
	if sc == nil {
		return out
	}
	for k := 0; k < n; k++ {
		out[k] = decide(c.seed, site, int64(k), sc.cfg)
	}
	return out
}

// Do implements Transport: it applies call k's precomputed fate, then
// (if the call survives) forwards to the inner transport.
func (c *ChaosTransport) Do(ctx context.Context, site string, q perfdata.Query) (*SiteData, error) {
	c.mu.Lock()
	sc := c.faults[site]
	c.mu.Unlock()
	if sc == nil {
		return c.inner.Do(ctx, site, q)
	}
	k := sc.calls.Add(1) - 1
	d := decide(c.seed, site, k, sc.cfg)

	if d.Blackhole {
		c.injectedBlackholes.Add(1)
		<-ctx.Done()
		return nil, &SiteError{Site: site, Cause: fmt.Errorf("%w: blackholed call %d: %v", ErrInjected, k, ctx.Err()), Retryable: true, Timeout: true}
	}
	if d.SlowDrip {
		c.injectedSlowDrips.Add(1)
	}
	if d.Latency > 0 {
		if !sleepCtx(ctx, d.Latency) {
			return nil, &SiteError{Site: site, Cause: ctx.Err(), Retryable: true, Timeout: true}
		}
	}
	if d.Error {
		c.injectedErrors.Add(1)
		return nil, &SiteError{Site: site, Cause: fmt.Errorf("%w: call %d", ErrInjected, k), Retryable: true}
	}
	return c.inner.Do(ctx, site, q)
}

// sleepCtx waits d, returning false if ctx expires first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// fnv64 hashes a site name (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unitFloat advances a splitmix64 state and returns a uniform draw in
// [0, 1).
func unitFloat(state *uint64) float64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
