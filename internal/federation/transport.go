package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
)

// Observation is one execution's answer within a site's reply: identity,
// attributes, and the metric results. It is the federation-level unit the
// compare package converts into its own Observation type.
type Observation struct {
	ExecID  string
	Attrs   []perfdata.KV
	Results []perfdata.Result
}

// SiteData is one site's complete answer to a federated query: one
// Observation per execution, in the site's stable execution order.
type SiteData struct {
	Site         string
	Observations []Observation
}

// Transport performs one attempt of a federated query against one site.
// The engine owns retries, hedging, and deadlines; a Transport does one
// call and honors ctx. Implementations must be safe for concurrent use
// and for concurrent duplicate attempts against the same site (hedges).
type Transport interface {
	Do(ctx context.Context, site string, q perfdata.Query) (*SiteData, error)
}

// SiteError is a typed per-site failure: which site, what happened, and
// whether retrying could help. The merge layer surfaces these in the
// per-site annotations, and the compare layer converts them into
// per-observation errors.
type SiteError struct {
	Site      string
	Cause     error
	Retryable bool
	Timeout   bool
	// Overloaded marks a typed overload shed (soap.FaultOverloaded) from
	// a saturated container's admission control — retryable, but backed
	// off by RetryAfter (the server's hint) rather than the generic
	// policy, so budgets and breakers compose with shedding instead of
	// hammering a saturated site.
	Overloaded bool
	RetryAfter time.Duration
}

// Error implements error.
func (e *SiteError) Error() string {
	kind := "error"
	switch {
	case e.Timeout:
		kind = "timeout"
	case e.Overloaded:
		kind = "overloaded"
	}
	return fmt.Sprintf("federation: site %s %s: %v", e.Site, kind, e.Cause)
}

// Unwrap exposes the cause.
func (e *SiteError) Unwrap() error { return e.Cause }

// ErrSiteTripped marks a site skipped because its circuit breaker is
// open: no attempt was made, by design.
var ErrSiteTripped = errors.New("federation: site circuit breaker open")

// ErrUnknownSite marks a query against a site the transport has never
// heard of — a configuration error, never retryable.
var ErrUnknownSite = errors.New("federation: unknown site")

// Retryable classifies an error for the retry loop. Timeouts,
// cancellations, and transport-level failures are retryable; remote SOAP
// faults are not — they are deterministic application-level answers
// ("no such metric") that a retry would only repeat — with one
// exception: the typed overload fault is a transient "come back later",
// retryable with the server's Retry-After backoff; and a breaker
// rejection is not an attempt at all.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var se *SiteError
	if errors.As(err, &se) {
		return se.Retryable
	}
	if _, ok := soap.AsOverload(err); ok {
		return true
	}
	var fault *soap.Fault
	if errors.As(err, &fault) {
		return false
	}
	if errors.Is(err, ErrSiteTripped) || errors.Is(err, ErrUnknownSite) {
		return false
	}
	return true
}

// AsOverload reports whether err is (or wraps) an overload shed, and the
// server's Retry-After hint when present.
func AsOverload(err error) (time.Duration, bool) {
	var se *SiteError
	if errors.As(err, &se) && se.Overloaded {
		return se.RetryAfter, true
	}
	return soap.AsOverload(err)
}

// IsTimeout reports whether an error is a deadline/cancellation outcome.
func IsTimeout(err error) bool {
	var se *SiteError
	if errors.As(err, &se) {
		return se.Timeout
	}
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// classify wraps a raw transport error as a SiteError.
func classify(site string, err error) *SiteError {
	var se *SiteError
	if errors.As(err, &se) {
		return se
	}
	retryAfter, overloaded := soap.AsOverload(err)
	return &SiteError{
		Site:       site,
		Cause:      err,
		Retryable:  Retryable(err),
		Timeout:    errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled),
		Overloaded: overloaded,
		RetryAfter: retryAfter,
	}
}

// BindingTransport queries sites through bound Application Grid services —
// the production Transport. Each site is one client.Binding (an
// Application instance, possibly remote); a Do call resolves the site's
// executions (memoized after the first success), then fans the getPR
// query out across them under the attempt's context, collecting one
// Observation per execution in stable execution order.
type BindingTransport struct {
	mu    sync.Mutex
	sites map[string]*boundSite
}

type boundSite struct {
	binding *client.Binding

	mu    sync.Mutex
	refs  []*client.ExecutionRef
	attrs [][]perfdata.KV // memoized per ref, parallel to refs
}

// NewBindingTransport creates an empty transport; add sites with AddSite
// or through Discover.
func NewBindingTransport() *BindingTransport {
	return &BindingTransport{sites: make(map[string]*boundSite)}
}

// AddSite registers a bound site under a name (typically org/service).
// Re-adding a name replaces the binding and drops memoized state.
func (t *BindingTransport) AddSite(name string, b *client.Binding) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sites[name] = &boundSite{binding: b}
}

// Sites lists the registered site names, sorted.
func (t *BindingTransport) Sites() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.sites))
	for name := range t.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Binding returns a registered site's binding, or nil.
func (t *BindingTransport) Binding(name string) *client.Binding {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.sites[name]; s != nil {
		return s.binding
	}
	return nil
}

// Do implements Transport.
func (t *BindingTransport) Do(ctx context.Context, site string, q perfdata.Query) (*SiteData, error) {
	t.mu.Lock()
	s := t.sites[site]
	t.mu.Unlock()
	if s == nil {
		return nil, &SiteError{Site: site, Cause: fmt.Errorf("%w: %q", ErrUnknownSite, site), Retryable: false}
	}
	refs, attrs, err := s.resolve(ctx)
	if err != nil {
		return nil, classify(site, err)
	}
	data := &SiteData{Site: site, Observations: make([]Observation, len(refs))}
	errs := make([]error, len(refs))
	var wg sync.WaitGroup
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref *client.ExecutionRef) {
			defer wg.Done()
			rs, err := ref.PerformanceResultsContext(ctx, q)
			if err != nil {
				errs[i] = err
				return
			}
			data.Observations[i] = Observation{ExecID: execIDOf(attrs[i]), Attrs: attrs[i], Results: rs}
		}(i, ref)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Site-granular attempt semantics: one failed execution fails
			// the attempt (the engine may retry it whole). Per-execution
			// partial results are the compare layer's concern.
			return nil, classify(site, err)
		}
	}
	return data, nil
}

// resolve returns the site's execution refs and memoized attributes,
// resolving and fetching them on first use. Memoization only commits on
// full success, so a partially-failed resolution retries cleanly.
func (s *boundSite) resolve(ctx context.Context) ([]*client.ExecutionRef, [][]perfdata.KV, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refs != nil {
		return s.refs, s.attrs, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	refs, err := s.binding.QueryExecutions(nil)
	if err != nil {
		return nil, nil, err
	}
	attrs := make([][]perfdata.KV, len(refs))
	for i, ref := range refs {
		kvs, err := ref.InfoContext(ctx)
		if err != nil {
			return nil, nil, err
		}
		attrs[i] = kvs
	}
	s.refs, s.attrs = refs, attrs
	return refs, attrs, nil
}

// execIDOf extracts the "id" attribute.
func execIDOf(kvs []perfdata.KV) string {
	for _, kv := range kvs {
		if kv.Name == "id" {
			return kv.Value
		}
	}
	return ""
}
