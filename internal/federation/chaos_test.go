package federation

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pperfgrid/internal/perfdata"
)

// mockTransport is a controllable in-process Transport: it records every
// call's context (for cancellation assertions) and per-site call index,
// then delegates to fn.
type mockTransport struct {
	mu    sync.Mutex
	calls map[string]int
	ctxs  map[string][]context.Context
	fn    func(ctx context.Context, site string, call int) (*SiteData, error)
}

func newMockTransport(fn func(ctx context.Context, site string, call int) (*SiteData, error)) *mockTransport {
	return &mockTransport{calls: make(map[string]int), ctxs: make(map[string][]context.Context), fn: fn}
}

func (m *mockTransport) Do(ctx context.Context, site string, q perfdata.Query) (*SiteData, error) {
	m.mu.Lock()
	k := m.calls[site]
	m.calls[site]++
	m.ctxs[site] = append(m.ctxs[site], ctx)
	m.mu.Unlock()
	return m.fn(ctx, site, k)
}

func (m *mockTransport) count(site string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls[site]
}

func (m *mockTransport) callCtx(site string, k int) context.Context {
	m.mu.Lock()
	defer m.mu.Unlock()
	if k >= len(m.ctxs[site]) {
		return nil
	}
	return m.ctxs[site][k]
}

func okData(site string) *SiteData {
	return &SiteData{Site: site, Observations: []Observation{{
		ExecID:  site + "-exec0",
		Attrs:   []perfdata.KV{{Name: "id", Value: site + "-exec0"}},
		Results: []perfdata.Result{{Metric: "gflops", Value: 1.0}},
	}}}
}

func alwaysOK(ctx context.Context, site string, call int) (*SiteData, error) {
	return okData(site), nil
}

// TestChaosDeterminism pins the seed contract: the same seed yields an
// identical fault schedule — both through the Schedule preview and
// through live Do calls — and a different seed yields a different one.
func TestChaosDeterminism(t *testing.T) {
	faults := SiteFaults{
		Latency:       time.Millisecond,
		LatencyJitter: 3 * time.Millisecond,
		ErrorRate:     0.3,
		SlowDripRate:  0.2,
	}
	const n = 256
	mk := func(seed int64) *ChaosTransport {
		c := NewChaosTransport(newMockTransport(alwaysOK), seed)
		c.SetSiteFaults("siteA", faults)
		c.SetSiteFaults("siteB", faults)
		return c
	}

	a, b := mk(42), mk(42)
	for _, site := range []string{"siteA", "siteB"} {
		sa, sb := a.Schedule(site, n), b.Schedule(site, n)
		for k := range sa {
			if sa[k] != sb[k] {
				t.Fatalf("same seed, %s call %d: %+v vs %+v", site, k, sa[k], sb[k])
			}
		}
	}
	// Two sites under the same seed must not share a schedule (the site
	// name is folded into the stream).
	sameAB := true
	for k, d := range a.Schedule("siteA", n) {
		if d != a.Schedule("siteB", n)[k] {
			sameAB = false
			break
		}
	}
	if sameAB {
		t.Fatal("siteA and siteB drew identical schedules under one seed")
	}
	// A different seed changes the schedule.
	c := mk(43)
	diff := false
	for k, d := range a.Schedule("siteA", n) {
		if d != c.Schedule("siteA", n)[k] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}

	// Live Do calls follow the previewed schedule: the k-th call errors
	// exactly when Schedule says so.
	want := a.Schedule("siteA", 64)
	ctx := context.Background()
	for k := 0; k < 64; k++ {
		_, err := a.Do(ctx, "siteA", perfdata.Query{})
		gotErr := err != nil
		if gotErr != want[k].Error {
			t.Fatalf("live call %d: err=%v, schedule says error=%v", k, err, want[k].Error)
		}
	}
}

// TestChaosPassThrough pins the differential-oracle discipline: a site
// with no configured faults flows through the decorator untouched.
func TestChaosPassThrough(t *testing.T) {
	inner := newMockTransport(alwaysOK)
	c := NewChaosTransport(inner, 7)
	c.SetSiteFaults("faulty", SiteFaults{ErrorRate: 1})

	data, err := c.Do(context.Background(), "clean", perfdata.Query{})
	if err != nil {
		t.Fatalf("unconfigured site errored: %v", err)
	}
	if data.Site != "clean" || len(data.Observations) != 1 {
		t.Fatalf("unconfigured site data mangled: %+v", data)
	}
	if e, b, s := c.Injected(); e+b+s != 0 {
		t.Fatalf("injected counters moved for an unconfigured site: %d/%d/%d", e, b, s)
	}

	if _, err := c.Do(context.Background(), "faulty", perfdata.Query{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrorRate=1 site returned %v, want ErrInjected", err)
	}
	if inner.count("faulty") != 0 {
		t.Fatal("fast-failed call still reached the inner transport")
	}
}

// TestChaosBlackholeHonorsContext pins that a blackholed call blocks
// until the caller's deadline and then reports a retryable timeout.
func TestChaosBlackholeHonorsContext(t *testing.T) {
	c := NewChaosTransport(newMockTransport(alwaysOK), 1)
	c.SetSiteFaults("dead", SiteFaults{BlackholeRate: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Do(ctx, "dead", perfdata.Query{})
	elapsed := time.Since(start)

	var se *SiteError
	if !errors.As(err, &se) || !se.Timeout || !se.Retryable {
		t.Fatalf("blackhole returned %v, want retryable timeout SiteError", err)
	}
	if elapsed < 40*time.Millisecond {
		t.Fatalf("blackhole answered after %v, before the deadline", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("blackhole took %v to observe the deadline", elapsed)
	}
	if _, b, _ := c.Injected(); b != 1 {
		t.Fatalf("blackhole counter = %d, want 1", b)
	}
}

// TestChaosSlowDrip pins the straggler mode: the call eventually answers,
// but only after the drip latency.
func TestChaosSlowDrip(t *testing.T) {
	c := NewChaosTransport(newMockTransport(alwaysOK), 11)
	c.SetSiteFaults("slow", SiteFaults{SlowDripRate: 1, SlowDripLatency: 30 * time.Millisecond})

	start := time.Now()
	data, err := c.Do(context.Background(), "slow", perfdata.Query{})
	if err != nil || data == nil {
		t.Fatalf("slow drip errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("slow drip answered in %v, want >= ~30ms", elapsed)
	}
	if _, _, s := c.Injected(); s != 1 {
		t.Fatalf("slow-drip counter = %d, want 1", s)
	}
}
