package federation_test

// The federation differential oracle: with no faults injected, a
// federated scatter-gather query over live wire-connected sites must be
// byte-identical to a plain sequential per-site collection — over 2, 4,
// and 8 sites, with all three store shapes (star, wide-table, flat-file)
// in the fleet. The engine runs with its production defaults (hedging,
// breakers, retries all armed) and the transport is chaos-wrapped with no
// faults configured, so the oracle also pins the decorator's pass-through.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/federation"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// oracleQueries are the per-shape headline getPR queries; each one is
// federated across the whole heterogeneous fleet (sites without the
// metric answer with empty observations, identically on both paths).
var oracleQueries = map[string]perfdata.Query{
	"hpl":    {Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"},
	"presta": {Metric: "bandwidth", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "presta"},
	"vampir": {Metric: "func_calls", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "vampir"},
}

// startFleet stands up n live sites cycling through the three store
// shapes and returns their names and factory handles.
func startFleet(t *testing.T, n int) []*core.Site {
	t.Helper()
	sites := make([]*core.Site, n)
	for i := 0; i < n; i++ {
		var (
			w    mapping.ApplicationWrapper
			name string
			err  error
		)
		seed := int64(100 + i)
		switch i % 3 {
		case 0:
			name = fmt.Sprintf("SMG98-%d", i)
			w, err = mapping.NewStar(datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 3, Seed: seed}))
		case 1:
			name = fmt.Sprintf("HPL-%d", i)
			w, err = mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 4, Seed: seed}))
		case 2:
			name = fmt.Sprintf("RMA-%d", i)
			w, err = mapping.NewFlatFile(datagen.PrestaRMA(datagen.RMAConfig{Executions: 2, MessageSizes: 4, Seed: seed}))
		}
		if err != nil {
			t.Fatal(err)
		}
		site, err := core.StartSite(core.SiteConfig{AppName: name, Wrappers: []mapping.ApplicationWrapper{w}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(site.Close)
		sites[i] = site
	}
	return sites
}

func siteName(i int) string {
	switch i % 3 {
	case 0:
		return fmt.Sprintf("SMG98-%d", i)
	case 1:
		return fmt.Sprintf("HPL-%d", i)
	default:
		return fmt.Sprintf("RMA-%d", i)
	}
}

// renderSiteData serializes one site's answer canonically; the oracle
// compares these bytes.
func renderSiteData(d *federation.SiteData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "site %s\n", d.Site)
	for _, o := range d.Observations {
		fmt.Fprintf(&b, " exec %s", o.ExecID)
		for _, kv := range o.Attrs {
			fmt.Fprintf(&b, " %s=%s", kv.Name, kv.Value)
		}
		b.WriteByte('\n')
		for _, r := range o.Results {
			fmt.Fprintf(&b, "  %s\n", r.Encode())
		}
	}
	return b.String()
}

// collectSequential is the baseline: visit each site in order over its
// own wire session, resolve executions, and run getPR one execution at a
// time — no concurrency, no retries, no hedging.
func collectSequential(t *testing.T, c *client.Client, names []string, q perfdata.Query) string {
	t.Helper()
	var b strings.Builder
	for _, name := range names {
		var binding *client.Binding
		for _, cand := range c.Bindings() {
			if cand.Key() == name {
				binding = cand
			}
		}
		if binding == nil {
			t.Fatalf("no baseline binding for %s", name)
		}
		refs, err := binding.QueryExecutions(nil)
		if err != nil {
			t.Fatalf("baseline executions of %s: %v", name, err)
		}
		data := &federation.SiteData{Site: name}
		for _, ref := range refs {
			attrs, err := ref.Info()
			if err != nil {
				t.Fatalf("baseline info: %v", err)
			}
			rs, err := ref.PerformanceResults(q)
			if err != nil {
				t.Fatalf("baseline getPR: %v", err)
			}
			id := ""
			for _, kv := range attrs {
				if kv.Name == "id" {
					id = kv.Value
				}
			}
			data.Observations = append(data.Observations, federation.Observation{ExecID: id, Attrs: attrs, Results: rs})
		}
		b.WriteString(renderSiteData(data))
	}
	return b.String()
}

func TestFederatedQueryMatchesSequentialOracle(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("%dsites", n), func(t *testing.T) {
			fleet := startFleet(t, n)
			names := make([]string, n)
			for i := range fleet {
				names[i] = siteName(i)
			}

			// Federated path: its own client sessions, engine defaults, a
			// no-fault chaos wrapper.
			fedClient := client.NewWithoutRegistry()
			transport := federation.NewBindingTransport()
			for i, site := range fleet {
				b, err := fedClient.BindFactory(names[i], site.ApplicationFactoryHandle())
				if err != nil {
					t.Fatal(err)
				}
				transport.AddSite(names[i], b)
			}
			engine := federation.New(federation.NewChaosTransport(transport, 1), federation.Config{})

			// Baseline path: separate sessions, plain sequential calls.
			seqClient := client.NewWithoutRegistry()
			for i, site := range fleet {
				if _, err := seqClient.BindFactory(names[i], site.ApplicationFactoryHandle()); err != nil {
					t.Fatal(err)
				}
			}

			for qname, q := range oracleQueries {
				want := collectSequential(t, seqClient, names, q)

				r := engine.Query(context.Background(), names, q)
				if !r.Complete {
					t.Fatalf("%s: fault-free federated query incomplete: %s", qname, r.Summary())
				}
				var b strings.Builder
				for _, d := range r.Data() {
					b.WriteString(renderSiteData(d))
				}
				got := b.String()

				if got != want {
					t.Fatalf("%s over %d sites: federated answer diverges from sequential oracle\nfederated:\n%s\nsequential:\n%s",
						qname, n, got, want)
				}
				if got == "" {
					t.Fatalf("%s: oracle compared empty answers", qname)
				}
			}
		})
	}
}
