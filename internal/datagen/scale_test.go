package datagen_test

import (
	"fmt"
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/minidb"
)

// loadScale loads one small scale dataset and renders every table.
func loadScale(t *testing.T, cfg datagen.ScaleConfig) map[string][][]string {
	t.Helper()
	db := minidb.NewDatabase()
	if _, err := datagen.LoadScaleStar(db, cfg); err != nil {
		t.Fatal(err)
	}
	out := map[string][][]string{}
	for _, table := range db.TableNames() {
		rows, err := db.QueryStrings("SELECT * FROM " + table)
		if err != nil {
			t.Fatal(err)
		}
		out[table] = rows
	}
	return out
}

// TestLoadScaleStarDeterministic pins worker-count independence: the
// loaded tables — contents AND row order — must be identical whether
// generation ran on one goroutine or many, because every execution is
// seeded from (Seed, index) alone and insertion happens in index order.
func TestLoadScaleStarDeterministic(t *testing.T) {
	cfg := datagen.ScaleConfig{Executions: 37, ResultsPerExec: 50, Foci: 16, Metrics: 4, Seed: 3}
	one := cfg
	one.Workers = 1
	many := cfg
	many.Workers = 7

	a := loadScale(t, one)
	b := loadScale(t, many)
	if len(a) != len(b) {
		t.Fatalf("table sets differ: %d vs %d", len(a), len(b))
	}
	for table, rowsA := range a {
		rowsB := b[table]
		if len(rowsA) != len(rowsB) {
			t.Fatalf("%s: %d rows with 1 worker, %d with 7", table, len(rowsA), len(rowsB))
		}
		for i := range rowsA {
			for j := range rowsA[i] {
				if rowsA[i][j] != rowsB[i][j] {
					t.Fatalf("%s row %d col %d: %q (1 worker) vs %q (7 workers)",
						table, i, j, rowsA[i][j], rowsB[i][j])
				}
			}
		}
	}
}

// TestLoadScaleStarShape checks the generated volume and the skew the
// scale experiments rely on: the configured row counts land exactly,
// every fact row joins to a real dimension row, and the Zipf focus
// distribution is actually skewed (the hottest focus absorbs far more
// than a uniform share).
func TestLoadScaleStarShape(t *testing.T) {
	db := minidb.NewDatabase()
	cfg, err := datagen.LoadScaleStar(db, datagen.ScaleConfig{
		Executions: 40, ResultsPerExec: 100, Foci: 32, Metrics: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.NumRows("results")
	if err != nil {
		t.Fatal(err)
	}
	if n != cfg.Rows() {
		t.Fatalf("results has %d rows, want %d", n, cfg.Rows())
	}
	nExec, err := db.NumRows("executions")
	if err != nil {
		t.Fatal(err)
	}
	if nExec != cfg.Executions*2 { // two EAV attribute rows per execution
		t.Fatalf("executions has %d rows, want %d", nExec, cfg.Executions*2)
	}

	// Referential integrity: every fact row's fociid joins.
	joined, err := db.Query("SELECT COUNT(*) FROM results r JOIN foci f ON r.fociid = f.fociid")
	if err != nil {
		t.Fatal(err)
	}
	if got := joined.Strings()[0][0]; got != fmt.Sprint(cfg.Rows()) {
		t.Fatalf("fact-dimension join covers %s rows, want %d", got, cfg.Rows())
	}

	// Zipf skew: the hottest focus should absorb well over the uniform
	// share (rows/foci).
	top, err := db.Query("SELECT COUNT(*) FROM results WHERE fociid = 1")
	if err != nil {
		t.Fatal(err)
	}
	var hot int
	fmt.Sscan(top.Strings()[0][0], &hot)
	uniform := cfg.Rows() / cfg.Foci
	if hot < 3*uniform {
		t.Fatalf("hottest focus has %d rows; want >= 3x the uniform share %d (Zipf skew missing)", hot, uniform)
	}

	// Time axis: each execution's window selects only its own rows.
	lo, hi := cfg.TimeWindow(5)
	win, err := db.Query(fmt.Sprintf(
		"SELECT DISTINCT execid FROM results WHERE starttime >= %g AND starttime <= %g", lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	ids := win.Strings()
	if len(ids) != 1 || ids[0][0] != cfg.ExecID(5) {
		t.Fatalf("time window of execution 5 selected execids %v, want exactly [%s]", ids, cfg.ExecID(5))
	}
}
