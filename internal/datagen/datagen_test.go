package datagen

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
)

func TestHPLShape(t *testing.T) {
	d := HPL(DefaultHPL)
	if d.Name != "HPL" {
		t.Errorf("Name = %q", d.Name)
	}
	if len(d.Execs) != 124 {
		t.Fatalf("executions = %d, want 124 (paper's HPL store size)", len(d.Execs))
	}
	if d.Execs[0].ID != "100" || d.Execs[123].ID != "223" {
		t.Errorf("IDs run %s..%s, want 100..223", d.Execs[0].ID, d.Execs[123].ID)
	}
	for _, e := range d.Execs {
		if len(e.Results) != 3 {
			t.Fatalf("execution %s has %d results, want 3", e.ID, len(e.Results))
		}
		for _, r := range e.Results {
			if r.Type != "hpl" || r.Focus != "/" {
				t.Fatalf("result %+v not whole-run hpl", r)
			}
		}
		for _, attr := range []string{"numprocesses", "problemsize", "blocksize", "rundate", "machine"} {
			if _, ok := e.Attrs[attr]; !ok {
				t.Fatalf("execution %s missing attr %s", e.ID, attr)
			}
		}
	}
}

func TestHPLDeterministic(t *testing.T) {
	a := HPL(HPLConfig{Executions: 10, Seed: 42})
	b := HPL(HPLConfig{Executions: 10, Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different datasets")
	}
	c := HPL(HPLConfig{Executions: 10, Seed: 43})
	if reflect.DeepEqual(a.Execs[0].Results, c.Execs[0].Results) {
		t.Error("different seeds produced identical results")
	}
}

func TestRMAShapeAndPayload(t *testing.T) {
	d := PrestaRMA(DefaultRMA)
	if len(d.Execs) != 12 {
		t.Fatalf("executions = %d", len(d.Execs))
	}
	e := d.Execs[0]
	wantResults := len(RMAOps) * DefaultRMA.MessageSizes * 2
	if len(e.Results) != wantResults {
		t.Fatalf("results per exec = %d, want %d", len(e.Results), wantResults)
	}
	// A bandwidth query should return len(RMAOps)*MessageSizes results
	// whose encoded size lands in the multi-kilobyte range, matching the
	// paper's ~5.7 KB RMA payloads.
	q := perfdata.Query{Metric: "bandwidth", Time: e.Time, Type: "presta"}
	var matched []perfdata.Result
	for _, r := range e.Results {
		if q.Matches(r) {
			matched = append(matched, r)
		}
	}
	if len(matched) != len(RMAOps)*DefaultRMA.MessageSizes {
		t.Fatalf("bandwidth results = %d", len(matched))
	}
	bytes := 0
	for _, s := range perfdata.EncodeResults(matched) {
		bytes += len(s)
	}
	if bytes < 3000 || bytes > 12000 {
		t.Errorf("bandwidth payload = %d bytes, want a few KB", bytes)
	}
}

func TestRMABandwidthMonotoneInMessageSize(t *testing.T) {
	d := PrestaRMA(RMAConfig{Executions: 1, MessageSizes: 10, Seed: 7})
	var prev float64 = -1
	for _, r := range d.Execs[0].Results {
		if r.Metric != "bandwidth" || !strings.HasPrefix(r.Focus, "/Comm/unidir/") {
			continue
		}
		// Saturating curve: allow noise but require overall growth.
		if prev > 0 && r.Value < prev*0.8 {
			t.Errorf("bandwidth dropped sharply: %v after %v at %s", r.Value, prev, r.Focus)
		}
		prev = r.Value
	}
}

func TestSMG98Shape(t *testing.T) {
	cfg := SMG98Config{Executions: 2, Processes: 3, TimeBins: 4, Seed: 9}
	d := SMG98(cfg)
	if len(d.Execs) != 2 {
		t.Fatalf("executions = %d", len(d.Execs))
	}
	want := cfg.Processes * len(SMG98Functions) * cfg.TimeBins * len(SMG98Metrics)
	for _, e := range d.Execs {
		if len(e.Results) != want {
			t.Fatalf("results = %d, want %d", len(e.Results), want)
		}
	}
	// Foci are hierarchical /Process/<p>/Code/MPI/<fn>.
	r := d.Execs[0].Results[0]
	if !strings.HasPrefix(r.Focus, "/Process/0/Code/MPI/") {
		t.Errorf("focus = %q", r.Focus)
	}
}

func TestAttrNames(t *testing.T) {
	d := &Dataset{Execs: []Execution{
		{Attrs: map[string]string{"b": "1", "a": "2"}},
		{Attrs: map[string]string{"c": "3", "a": "4"}},
	}}
	if got := d.AttrNames(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("AttrNames = %v", got)
	}
}

func TestToFlatfileAndXML(t *testing.T) {
	d := PrestaRMA(RMAConfig{Executions: 2, MessageSizes: 3, Seed: 1})
	ff := d.ToFlatfile()
	if ff.Name != d.Name || len(ff.Execs) != 2 || len(ff.Execs[0].Results) != len(d.Execs[0].Results) {
		t.Error("flatfile conversion lost data")
	}
	x := d.ToXML()
	if x.Name != d.Name || len(x.Execs) != 2 || len(x.Execs[1].Results) != len(d.Execs[1].Results) {
		t.Error("xml conversion lost data")
	}
}

func TestLoadWideTable(t *testing.T) {
	d := HPL(HPLConfig{Executions: 5, Seed: 1})
	db := minidb.NewDatabase()
	if err := LoadWideTable(db, "hpl", d); err != nil {
		t.Fatal(err)
	}
	n, err := db.NumRows("hpl")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("rows = %d", n)
	}
	rs, err := db.Query(`SELECT gflops FROM hpl WHERE execid = '100'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("got %v", rs.Strings())
	}
	want := d.Execs[0].Results[0].Value // gflops is first
	got, _ := rs.Rows[0][0].AsFloat()
	if got != want {
		t.Errorf("gflops = %v, want %v", got, want)
	}
	// Attribute query path used by getExecs.
	rs, err = db.Query(`SELECT execid FROM hpl WHERE numprocesses = '4'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text != "101" {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestLoadWideTableRejectsRepeatedMetrics(t *testing.T) {
	d := SMG98(SMG98Config{Executions: 1, Processes: 1, TimeBins: 2, Seed: 1})
	db := minidb.NewDatabase()
	if err := LoadWideTable(db, "t", d); err == nil {
		t.Error("SMG98-shaped data must not fit a wide table")
	}
}

func TestLoadStarSchema(t *testing.T) {
	cfg := SMG98Config{Executions: 2, Processes: 2, TimeBins: 3, Seed: 5}
	d := SMG98(cfg)
	db := minidb.NewDatabase()
	if err := LoadStarSchema(db, d); err != nil {
		t.Fatal(err)
	}
	for _, table := range StarTables {
		if _, err := db.NumRows(table); err != nil {
			t.Errorf("missing table %s: %v", table, err)
		}
	}
	wantFacts := 0
	for _, e := range d.Execs {
		wantFacts += len(e.Results)
	}
	if n, _ := db.NumRows("results"); n != wantFacts {
		t.Errorf("fact rows = %d, want %d", n, wantFacts)
	}
	// Metric dimension interned once per metric.
	if n, _ := db.NumRows("metrics"); n != len(SMG98Metrics) {
		t.Errorf("metrics rows = %d, want %d", n, len(SMG98Metrics))
	}
	// Round-trip one fact through the dimensions, the way the star
	// wrapper queries it.
	rs, err := db.Query(`SELECT metricid FROM metrics WHERE name = 'func_calls'`)
	if err != nil || len(rs.Rows) != 1 {
		t.Fatalf("metric lookup: %v %v", rs, err)
	}
	mid := rs.Rows[0][0].Int
	rs, err = db.Query(fmt.Sprintf(
		`SELECT COUNT(*) FROM results WHERE execid = '1' AND metricid = %d`, mid))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Processes * len(SMG98Functions) * cfg.TimeBins)
	if rs.Rows[0][0].Int != want {
		t.Errorf("func_calls facts for exec 1 = %d, want %d", rs.Rows[0][0].Int, want)
	}
}

func TestStarSchemaEAVAttributes(t *testing.T) {
	d := HPL(HPLConfig{Executions: 2, Seed: 1})
	db := minidb.NewDatabase()
	if err := LoadStarSchema(db, d); err != nil {
		t.Fatal(err)
	}
	rs, err := db.Query(`SELECT attrvalue FROM executions WHERE execid = '100' AND attrname = 'numprocesses'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text != d.Execs[0].Attrs["numprocesses"] {
		t.Errorf("EAV lookup: %v", rs.Strings())
	}
}

func TestGeneratorsHaveValidTimeRanges(t *testing.T) {
	for name, d := range map[string]*Dataset{
		"hpl": HPL(HPLConfig{Executions: 6, Seed: 1}),
		"rma": PrestaRMA(RMAConfig{Executions: 2, MessageSizes: 4, Seed: 1}),
		"smg": SMG98(SMG98Config{Executions: 1, Processes: 2, TimeBins: 2, Seed: 1}),
	} {
		for _, e := range d.Execs {
			if e.Time.End <= e.Time.Start {
				t.Errorf("%s exec %s: bad time range %+v", name, e.ID, e.Time)
			}
			for _, r := range e.Results {
				if r.Time.End < r.Time.Start {
					t.Errorf("%s exec %s: result range %+v inverted", name, e.ID, r.Time)
				}
				if r.Time.Start < e.Time.Start-1e-9 || r.Time.End > e.Time.End+1e-9 {
					t.Errorf("%s exec %s: result range %+v outside execution %+v", name, e.ID, r.Time, e.Time)
				}
			}
		}
	}
}

func TestZeroConfigsUseDefaults(t *testing.T) {
	if got := len(HPL(HPLConfig{}).Execs); got != DefaultHPL.Executions {
		t.Errorf("HPL zero config: %d execs", got)
	}
	if got := len(PrestaRMA(RMAConfig{}).Execs); got != DefaultRMA.Executions {
		t.Errorf("RMA zero config: %d execs", got)
	}
	if got := len(SMG98(SMG98Config{}).Execs); got != DefaultSMG98.Executions {
		t.Errorf("SMG98 zero config: %d execs", got)
	}
}
