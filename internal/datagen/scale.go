package datagen

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"

	"pperfgrid/internal/minidb"
)

// This file is the million-row generator: paper-scale datasets (SMG98 ≈
// 1024 results) load through LoadStarSchema, but the scale experiments
// need 10^6+ fact rows with realistic skew. Following the FK-aware
// worker-pool seeding pattern, generation is parallelized per execution
// with a deterministic per-execution seed, so the output is byte-identical
// for any worker count, and field distributions are Zipf/weighted rather
// than uniform: focus and metric popularity follow a Zipf law (a few hot
// code regions absorb most samples) and values are exponentially
// heavy-tailed.

// ScaleConfig parameterizes the scale star-schema generator.
type ScaleConfig struct {
	Executions     int     // number of executions
	ResultsPerExec int     // fact rows per execution
	Foci           int     // focus-path vocabulary size (Zipf-skewed)
	Metrics        int     // metric vocabulary size (Zipf-skewed)
	Collectors     int     // collector vocabulary size (uniform)
	ZipfS          float64 // Zipf skew exponent; must be > 1, default 1.2
	Seed           int64
	Workers        int // generation workers; <= 0 means GOMAXPROCS
}

// DefaultScale is the million-row shape: 1000 executions × 1000 fact rows.
var DefaultScale = ScaleConfig{
	Executions:     1000,
	ResultsPerExec: 1000,
	Foci:           512,
	Metrics:        16,
	Collectors:     4,
	ZipfS:          1.2,
	Seed:           7,
}

// Rows returns the total fact-table row count the config generates.
func (c ScaleConfig) Rows() int { return c.Executions * c.ResultsPerExec }

// ExecID returns the execid of the i-th execution (0-based), matching the
// generator's key layout.
func (c ScaleConfig) ExecID(i int) string { return strconv.Itoa(i + 1) }

// TimeWindow returns a selective fact-table time window inside execution
// i (0-based): result bins of that execution start from the window's low
// edge, and the shortest execution the generator emits still overlaps the
// window, so the returned range always selects rows — but only execution
// i's slice of the time axis.
func (c ScaleConfig) TimeWindow(i int) (lo, hi float64) {
	lo = float64(i) * scaleExecSpacing
	return lo, lo + scaleExecDuration*0.5
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	d := DefaultScale
	if c.Executions <= 0 {
		c.Executions = d.Executions
	}
	if c.ResultsPerExec <= 0 {
		c.ResultsPerExec = d.ResultsPerExec
	}
	if c.Foci < 2 {
		c.Foci = d.Foci
	}
	if c.Metrics < 2 {
		c.Metrics = d.Metrics
	}
	if c.Collectors < 1 {
		c.Collectors = d.Collectors
	}
	if c.ZipfS <= 1 {
		c.ZipfS = d.ZipfS
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Execution time-axis layout: executions are spaced along a global time
// axis so time-window queries select by execution era.
const (
	scaleExecSpacing  = 100.0 // seconds between execution starts
	scaleExecDuration = 60.0  // nominal execution duration
)

// scaleApps are the application-attribute choices with their relative
// weights: a realistic workload reruns a few codes far more than others.
var (
	scaleApps       = []string{"smg98", "sweep3d", "hpl", "sppm"}
	scaleAppWeights = []int{8, 4, 2, 1}
)

// LoadScaleStar generates a ScaleConfig's dataset directly into the
// five-table star schema of db. Generation runs on cfg.Workers goroutines
// in bounded windows (memory stays proportional to the window, not the
// dataset); each execution is seeded from (Seed, execution index), so the
// loaded tables are identical regardless of worker count. Declare indexes
// after loading — ordered indexes are lazily built, so declaration order
// does not matter, but loading into index-free tables keeps hash-index
// maintenance off the bulk path. On a disk-backed database the whole load
// runs inside BulkLoad: per-batch fsyncs are suppressed, rows stream
// straight into sealed segments, and one checkpoint at the end makes the
// load durable.
func LoadScaleStar(db *minidb.Database, cfg ScaleConfig) (ScaleConfig, error) {
	cfg = cfg.withDefaults()
	if err := db.BulkLoad(func() error { return loadScaleStarRows(db, cfg) }); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func loadScaleStarRows(db *minidb.Database, cfg ScaleConfig) error {
	if err := CreateStarTables(db); err != nil {
		return err
	}
	if err := loadScaleDims(db, cfg); err != nil {
		return err
	}

	type execData struct {
		attrs   [][]minidb.Value
		results [][]minidb.Value
	}
	window := cfg.Workers * 8
	bufs := make([]execData, window)
	for base := 0; base < cfg.Executions; base += window {
		m := window
		if rest := cfg.Executions - base; rest < m {
			m = rest
		}
		ch := make(chan int, m)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range ch {
					attrs, results := genScaleExec(cfg, base+k)
					bufs[k] = execData{attrs: attrs, results: results}
				}
			}()
		}
		for k := 0; k < m; k++ {
			ch <- k
		}
		close(ch)
		wg.Wait()
		// Insert sequentially in execution order: table contents stay
		// deterministic and row positions reproducible.
		for k := 0; k < m; k++ {
			if err := db.InsertRows("executions", bufs[k].attrs); err != nil {
				return err
			}
			if err := db.InsertRows("results", bufs[k].results); err != nil {
				return err
			}
			bufs[k] = execData{}
		}
	}
	return nil
}

// loadScaleDims inserts the dimension vocabularies (single-threaded; they
// are tiny next to the fact table).
func loadScaleDims(db *minidb.Database, cfg ScaleConfig) error {
	foci := make([][]minidb.Value, cfg.Foci)
	for i := range foci {
		path := fmt.Sprintf("/SMG98/p%d/MPI/%s", i%64, SMG98Functions[i%len(SMG98Functions)])
		foci[i] = []minidb.Value{minidb.Int(int64(i + 1)), minidb.Text(fmt.Sprintf("%s#%d", path, i))}
	}
	if err := db.InsertRows("foci", foci); err != nil {
		return err
	}
	metrics := make([][]minidb.Value, cfg.Metrics)
	for i := range metrics {
		name := fmt.Sprintf("%s_%d", SMG98Metrics[i%len(SMG98Metrics)], i/len(SMG98Metrics))
		metrics[i] = []minidb.Value{minidb.Int(int64(i + 1)), minidb.Text(name)}
	}
	if err := db.InsertRows("metrics", metrics); err != nil {
		return err
	}
	collectors := make([][]minidb.Value, cfg.Collectors)
	for i := range collectors {
		collectors[i] = []minidb.Value{minidb.Int(int64(i + 1)), minidb.Text(fmt.Sprintf("collector_%d", i+1))}
	}
	return db.InsertRows("collectors", collectors)
}

// genScaleExec generates one execution's EAV attribute rows and fact rows.
// The rng is seeded from (Seed, index) alone — never from worker identity
// — so output is independent of scheduling.
func genScaleExec(cfg ScaleConfig, i int) (attrs, results [][]minidb.Value) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1000003 + 1))
	zipfFocus := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Foci-1))
	zipfMetric := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Metrics-1))

	execID := minidb.Text(strconv.Itoa(i + 1))
	start := float64(i) * scaleExecSpacing
	dur := scaleExecDuration * (0.5 + rng.Float64())
	end := start + dur
	st, en := minidb.Float(start), minidb.Float(end)

	app := weightedChoice(rng, scaleApps, scaleAppWeights)
	procs := strconv.Itoa(1 << (1 + rng.Intn(5))) // 2..32, powers of two
	attrs = [][]minidb.Value{
		{execID, st, en, minidb.Text("application"), minidb.Text(app)},
		{execID, st, en, minidb.Text("numprocesses"), minidb.Text(procs)},
	}

	n := cfg.ResultsPerExec
	results = make([][]minidb.Value, n)
	binW := dur / float64(n)
	for j := 0; j < n; j++ {
		fid := int64(1 + zipfFocus.Uint64())
		mid := int64(1 + zipfMetric.Uint64())
		tid := int64(1 + rng.Intn(cfg.Collectors))
		binStart := start + binW*float64(j)
		results[j] = []minidb.Value{
			execID,
			minidb.Int(fid),
			minidb.Int(mid),
			minidb.Int(tid),
			minidb.Float(binStart),
			minidb.Float(binStart + binW),
			minidb.Float(rng.ExpFloat64() * 100),
		}
	}
	return attrs, results
}

// weightedChoice picks one of choices with probability proportional to
// its weight.
func weightedChoice(rng *rand.Rand, choices []string, weights []int) string {
	total := 0
	for _, w := range weights {
		total += w
	}
	pick := rng.Intn(total)
	for i, w := range weights {
		if pick < w {
			return choices[i]
		}
		pick -= w
	}
	return choices[len(choices)-1]
}
