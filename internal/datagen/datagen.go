// Package datagen generates deterministic synthetic datasets shaped like
// the three test data stores of the paper's evaluation (section 6.1):
//
//   - HPL — High-Performance Linpack runs: 124 executions with a handful
//     of whole-run metrics each, stored in a single-table relational
//     database (and, per the paper's future work, as native XML).
//   - PRESTA RMA — MPI bandwidth/latency benchmark runs: few executions,
//     each with hundreds of per-message-size results, stored as flat ASCII
//     text files. One getPR answer is several kilobytes, which is what
//     drives the paper's 71% Table-4 overhead for this store.
//   - SMG98 — Vampir traces of the semicoarsening multigrid solver: a
//     five-table relational schema whose fact table holds tens of
//     thousands of rows per execution, which is what makes the paper's
//     SMG98 queries long-running.
//
// The real datasets are not redistributable; these generators reproduce
// their *shapes* — execution counts, attribute vocabularies, result
// cardinalities and payload sizes — which are the only properties the
// paper's experiments depend on. All output is deterministic for a given
// seed.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"pperfgrid/internal/flatfile"
	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/xmlstore"
)

// Execution is one generated run.
type Execution struct {
	ID      string
	Attrs   map[string]string
	Time    perfdata.TimeRange
	Results []perfdata.Result
}

// Dataset is a generated application dataset, convertible to any of the
// three store formats.
type Dataset struct {
	Name  string
	Meta  []perfdata.KV
	Execs []Execution
}

// ToFlatfile converts the dataset to the flat-text store representation.
func (d *Dataset) ToFlatfile() *flatfile.Dataset {
	out := &flatfile.Dataset{Name: d.Name, Meta: d.Meta}
	for _, e := range d.Execs {
		out.Execs = append(out.Execs, flatfile.Execution{
			ID: e.ID, Attrs: e.Attrs, Time: e.Time, Results: e.Results,
		})
	}
	return out
}

// ToXML converts the dataset to the XML store representation.
func (d *Dataset) ToXML() *xmlstore.Dataset {
	out := &xmlstore.Dataset{Name: d.Name, Meta: d.Meta}
	for _, e := range d.Execs {
		out.Execs = append(out.Execs, xmlstore.Execution{
			ID: e.ID, Attrs: e.Attrs, Time: e.Time, Results: e.Results,
		})
	}
	return out
}

// AttrNames returns the sorted union of attribute names across executions.
func (d *Dataset) AttrNames() []string {
	set := map[string]bool{}
	for _, e := range d.Execs {
		for n := range e.Attrs {
			set[n] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HPLConfig parameterizes the HPL generator.
type HPLConfig struct {
	// Executions is the number of runs; the paper's HPL store had 124.
	Executions int
	Seed       int64
}

// DefaultHPL matches the paper's dataset size.
var DefaultHPL = HPLConfig{Executions: 124, Seed: 1}

// HPL generates an HPL-shaped dataset: run IDs starting at 100 (as in the
// paper's Figure 9 screenshot, which queries runid 100-109), power-of-two
// process counts, and whole-run gflops/runtimesec/residual metrics.
func HPL(cfg HPLConfig) *Dataset {
	if cfg.Executions <= 0 {
		cfg.Executions = DefaultHPL.Executions
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Name: "HPL",
		Meta: []perfdata.KV{
			{Name: "name", Value: "HPL"},
			{Name: "version", Value: "1.0"},
			{Name: "description", Value: "HPL - A Portable Implementation of the High-Performance Linpack Benchmark for Distributed-Memory Computers"},
		},
	}
	procs := []int{2, 4, 8, 16, 32, 64}
	blockSizes := []int{32, 64, 128}
	for i := 0; i < cfg.Executions; i++ {
		np := procs[i%len(procs)]
		nb := blockSizes[(i/len(procs))%len(blockSizes)]
		n := 5000 + 1000*(i%8)
		day := 10 + i%20
		// Linpack scales sublinearly with process count; add mild noise.
		gflops := 0.9*float64(np)*(1-0.04*float64(i%6)) + rng.Float64()*0.3
		runtime := 2.0 * float64(n) * float64(n) / (gflops * 1e6)
		residual := 1e-12 * (1 + rng.Float64())
		e := Execution{
			ID: fmt.Sprintf("%d", 100+i),
			Attrs: map[string]string{
				"numprocesses": fmt.Sprintf("%d", np),
				"problemsize":  fmt.Sprintf("%d", n),
				"blocksize":    fmt.Sprintf("%d", nb),
				"rundate":      fmt.Sprintf("2004-03-%02d", day),
				"machine":      "mcnary.cs.pdx.edu",
			},
			Time: perfdata.TimeRange{Start: 0, End: runtime},
		}
		whole := e.Time
		e.Results = []perfdata.Result{
			{Metric: "gflops", Focus: "/", Type: "hpl", Time: whole, Value: round3(gflops)},
			{Metric: "runtimesec", Focus: "/", Type: "hpl", Time: whole, Value: round3(runtime)},
			{Metric: "residual", Focus: "/", Type: "hpl", Time: whole, Value: residual},
		}
		d.Execs = append(d.Execs, e)
	}
	return d
}

// RMAConfig parameterizes the PRESTA RMA generator.
type RMAConfig struct {
	// Executions is the number of benchmark runs.
	Executions int
	// MessageSizes is the number of power-of-two message sizes per
	// operation; the result payload grows linearly with it.
	MessageSizes int
	Seed         int64
}

// DefaultRMA produces ~5.7 KB bandwidth-query payloads like the paper's.
var DefaultRMA = RMAConfig{Executions: 12, MessageSizes: 20, Seed: 2}

// RMAOps are the Presta communication operations used as focus subtrees.
var RMAOps = []string{"unidir", "bidir", "put", "get"}

// PrestaRMA generates a Presta-shaped dataset: bandwidth and latency for
// every (operation, message size) pair, foci of the form
// /Comm/<op>/msgsize/<bytes>.
func PrestaRMA(cfg RMAConfig) *Dataset {
	if cfg.Executions <= 0 {
		cfg.Executions = DefaultRMA.Executions
	}
	if cfg.MessageSizes <= 0 {
		cfg.MessageSizes = DefaultRMA.MessageSizes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Name: "PRESTA-RMA",
		Meta: []perfdata.KV{
			{Name: "name", Value: "PRESTA-RMA"},
			{Name: "description", Value: "PRESTA MPI Bandwidth and Latency Benchmark, RMA/one-sided operations"},
		},
	}
	for i := 0; i < cfg.Executions; i++ {
		np := 2 << (i % 4)
		e := Execution{
			ID: fmt.Sprintf("%d", i+1),
			Attrs: map[string]string{
				"numprocesses": fmt.Sprintf("%d", np),
				"rundate":      fmt.Sprintf("2004-04-%02d", 1+i%28),
				"interconnect": "myrinet",
			},
			Time: perfdata.TimeRange{Start: 0, End: 300},
		}
		t := 0.0
		step := 300.0 / float64(len(RMAOps)*cfg.MessageSizes)
		for _, op := range RMAOps {
			for s := 0; s < cfg.MessageSizes; s++ {
				size := 8 << s
				focus := fmt.Sprintf("/Comm/%s/msgsize/%d", op, size)
				tr := perfdata.TimeRange{Start: t, End: t + step}
				t += step
				// Bandwidth saturates with message size; latency grows.
				bw := 240.0 * float64(size) / (float64(size) + 8192.0) * (1 + 0.05*rng.Float64())
				lat := 8.0 + float64(size)/180.0*(1+0.05*rng.Float64())
				e.Results = append(e.Results,
					perfdata.Result{Metric: "bandwidth", Focus: focus, Type: "presta", Time: tr, Value: round3(bw)},
					perfdata.Result{Metric: "latency", Focus: focus, Type: "presta", Time: tr, Value: round3(lat)},
				)
			}
		}
		d.Execs = append(d.Execs, e)
	}
	return d
}

// SMG98Config parameterizes the SMG98 Vampir-trace generator.
type SMG98Config struct {
	Executions int
	// Processes is the per-execution MPI process count.
	Processes int
	// TimeBins is the number of trace intervals per (process, function).
	TimeBins int
	Seed     int64
}

// DefaultSMG98 keeps unit tests fast; benchmarks scale it up to make the
// fact-table scans dominate query time the way the paper's 250 MB SMG98
// store did.
var DefaultSMG98 = SMG98Config{Executions: 6, Processes: 4, TimeBins: 12, Seed: 3}

// SMG98Functions are the traced MPI entry points, used as /Code/MPI foci.
var SMG98Functions = []string{
	"MPI_Allgather", "MPI_Allreduce", "MPI_Barrier", "MPI_Bcast",
	"MPI_Comm_rank", "MPI_Comm_size", "MPI_Irecv", "MPI_Isend",
	"MPI_Recv", "MPI_Reduce", "MPI_Send", "MPI_Wait", "MPI_Waitall",
	"MPI_Test", "MPI_Sendrecv", "MPI_Gather",
}

// SMG98Metrics are the per-interval trace metrics.
var SMG98Metrics = []string{"func_calls", "excl_time", "incl_time", "msg_bytes"}

// SMG98 generates a Vampir-trace-shaped dataset: per-process, per-MPI-
// function, per-time-bin interval records. Result cardinality per
// execution is Processes × len(SMG98Functions) × TimeBins × len(SMG98Metrics).
func SMG98(cfg SMG98Config) *Dataset {
	if cfg.Executions <= 0 {
		cfg.Executions = DefaultSMG98.Executions
	}
	if cfg.Processes <= 0 {
		cfg.Processes = DefaultSMG98.Processes
	}
	if cfg.TimeBins <= 0 {
		cfg.TimeBins = DefaultSMG98.TimeBins
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Name: "SMG98",
		Meta: []perfdata.KV{
			{Name: "name", Value: "SMG98"},
			{Name: "description", Value: "Semicoarsening multigrid solver traced with Vampir"},
			{Name: "collector", Value: "vampir"},
		},
	}
	for i := 0; i < cfg.Executions; i++ {
		duration := 60.0 + 10.0*float64(i)
		e := Execution{
			ID: fmt.Sprintf("%d", i+1),
			Attrs: map[string]string{
				"numprocesses": fmt.Sprintf("%d", cfg.Processes),
				"rundate":      fmt.Sprintf("2004-05-%02d", 1+i%28),
				"gridsize":     fmt.Sprintf("%d", 64*(1+i%4)),
			},
			Time: perfdata.TimeRange{Start: 0, End: duration},
		}
		binW := duration / float64(cfg.TimeBins)
		for p := 0; p < cfg.Processes; p++ {
			for _, fn := range SMG98Functions {
				focus := "/Code/MPI/" + fn
				for b := 0; b < cfg.TimeBins; b++ {
					tr := perfdata.TimeRange{Start: float64(b) * binW, End: float64(b+1) * binW}
					calls := float64(1 + rng.Intn(40))
					excl := binW * rng.Float64() * 0.3
					procFocus := fmt.Sprintf("/Process/%d%s", p, focus)
					for _, metric := range SMG98Metrics {
						var v float64
						switch metric {
						case "func_calls":
							v = calls
						case "excl_time":
							v = round3(excl)
						case "incl_time":
							v = round3(excl * (1.2 + 0.4*rng.Float64()))
						case "msg_bytes":
							v = float64(64 * (1 + rng.Intn(512)))
						}
						e.Results = append(e.Results, perfdata.Result{
							Metric: metric, Focus: procFocus, Type: "vampir", Time: tr, Value: v,
						})
					}
				}
			}
		}
		d.Execs = append(d.Execs, e)
	}
	return d
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

// LoadWideTable loads a dataset into a single-table relational schema —
// the paper's HPL store layout. The table has one row per execution with
// columns: execid, starttime, endtime, one column per attribute, and one
// column per metric. It requires every execution to carry at most one
// result per metric (whole-run metrics), which holds for HPL-shaped data.
func LoadWideTable(db *minidb.Database, table string, d *Dataset) error {
	attrs := d.AttrNames()
	metrics := map[string]bool{}
	types := map[string]bool{}
	for _, e := range d.Execs {
		seen := map[string]bool{}
		for _, r := range e.Results {
			if seen[r.Metric] {
				return fmt.Errorf("datagen: execution %s has multiple %q results; wide table needs whole-run metrics", e.ID, r.Metric)
			}
			seen[r.Metric] = true
			metrics[r.Metric] = true
			types[r.Type] = true
		}
	}
	if len(types) > 1 {
		return fmt.Errorf("datagen: wide table requires a single collector type, got %d", len(types))
	}
	metricCols := make([]string, 0, len(metrics))
	for m := range metrics {
		metricCols = append(metricCols, m)
	}
	sort.Strings(metricCols)

	ddl := "CREATE TABLE " + table + " (execid TEXT, starttime FLOAT, endtime FLOAT, collector TEXT"
	for _, a := range attrs {
		ddl += ", " + a + " TEXT"
	}
	for _, m := range metricCols {
		ddl += ", " + m + " FLOAT"
	}
	ddl += ")"
	if _, err := db.Exec(ddl); err != nil {
		return err
	}
	for _, e := range d.Execs {
		vals := make([]minidb.Value, 0, 4+len(attrs)+len(metricCols))
		collector := ""
		byMetric := map[string]float64{}
		for _, r := range e.Results {
			byMetric[r.Metric] = r.Value
			collector = r.Type
		}
		vals = append(vals, minidb.Text(e.ID), minidb.Float(e.Time.Start), minidb.Float(e.Time.End), minidb.Text(collector))
		for _, a := range attrs {
			if v, ok := e.Attrs[a]; ok {
				vals = append(vals, minidb.Text(v))
			} else {
				vals = append(vals, minidb.Null())
			}
		}
		for _, m := range metricCols {
			if v, ok := byMetric[m]; ok {
				vals = append(vals, minidb.Float(v))
			} else {
				vals = append(vals, minidb.Null())
			}
		}
		if err := db.InsertRow(table, vals...); err != nil {
			return err
		}
	}
	return nil
}

// StarTables are the five tables of the star schema, the paper's SMG98
// store layout ("a relational database with 5 tables").
var StarTables = []string{"executions", "foci", "metrics", "collectors", "results"}

// CreateStarTables creates the five empty star-schema tables; LoadStarSchema
// and the million-row scale loader (scale.go) share this DDL.
func CreateStarTables(db *minidb.Database) error {
	stmts := []string{
		`CREATE TABLE executions (execid TEXT, starttime FLOAT, endtime FLOAT, attrname TEXT, attrvalue TEXT)`,
		`CREATE TABLE foci (fociid INT, path TEXT)`,
		`CREATE TABLE metrics (metricid INT, name TEXT)`,
		`CREATE TABLE collectors (typeid INT, name TEXT)`,
		`CREATE TABLE results (execid TEXT, fociid INT, metricid INT, typeid INT, starttime FLOAT, endtime FLOAT, value FLOAT)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// LoadStarSchema loads a dataset into the five-table star schema:
//
//	executions(execid, starttime, endtime, attrname, attrvalue) — one row
//	  per execution attribute (an EAV layout, so arbitrary attribute sets
//	  fit one schema)
//	foci(fociid, path)
//	metrics(metricid, name)
//	collectors(typeid, name)
//	results(execid, fociid, metricid, typeid, starttime, endtime, value)
func LoadStarSchema(db *minidb.Database, d *Dataset) error {
	if err := CreateStarTables(db); err != nil {
		return err
	}
	fociIDs := map[string]int64{}
	metricIDs := map[string]int64{}
	typeIDs := map[string]int64{}
	intern := func(table string, ids map[string]int64, key string) (int64, error) {
		if id, ok := ids[key]; ok {
			return id, nil
		}
		id := int64(len(ids) + 1)
		ids[key] = id
		return id, db.InsertRow(table, minidb.Int(id), minidb.Text(key))
	}
	for _, e := range d.Execs {
		names := make([]string, 0, len(e.Attrs))
		for n := range e.Attrs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := db.InsertRow("executions",
				minidb.Text(e.ID), minidb.Float(e.Time.Start), minidb.Float(e.Time.End),
				minidb.Text(n), minidb.Text(e.Attrs[n])); err != nil {
				return err
			}
		}
		for _, r := range e.Results {
			fid, err := intern("foci", fociIDs, r.Focus)
			if err != nil {
				return err
			}
			mid, err := intern("metrics", metricIDs, r.Metric)
			if err != nil {
				return err
			}
			tid, err := intern("collectors", typeIDs, r.Type)
			if err != nil {
				return err
			}
			if err := db.InsertRow("results",
				minidb.Text(e.ID), minidb.Int(fid), minidb.Int(mid), minidb.Int(tid),
				minidb.Float(r.Time.Start), minidb.Float(r.Time.End), minidb.Float(r.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}
