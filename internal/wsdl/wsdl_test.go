package wsdl

import (
	"errors"
	"reflect"
	"testing"
)

func sampleDef() *Definition {
	return New("Application",
		PortType{Name: "Application", Operations: []Operation{
			Op("getAppInfo", "Returns general information about the application."),
			Op("getNumExecs", "Returns the number of unique executions."),
			Op("getExecs", "Returns Execution GSHs matching attribute/value.", P("attribute"), P("value")),
			Op("getPR", "Returns performance results.", P("metric"), P("startTime"), P("endTime"), P("type"), PRep("focus")),
		}},
		PortType{Name: "GridService", Operations: []Operation{
			Op("Destroy", "Terminate the instance."),
		}},
	)
}

func TestMarshalParseRoundTrip(t *testing.T) {
	d := sampleDef()
	d.Endpoint = "http://host:1/ogsa/services/Application/0"
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != d.Service || got.Endpoint != d.Endpoint {
		t.Errorf("service/endpoint: got %q/%q", got.Service, got.Endpoint)
	}
	if !reflect.DeepEqual(got.PortTypeNames(), d.PortTypeNames()) {
		t.Errorf("port types: got %v want %v", got.PortTypeNames(), d.PortTypeNames())
	}
	if !reflect.DeepEqual(got.OperationNames(), d.OperationNames()) {
		t.Errorf("operations: got %v want %v", got.OperationNames(), d.OperationNames())
	}
	op, err := got.Lookup("getPR")
	if err != nil {
		t.Fatal(err)
	}
	if len(op.Params) != 5 || !op.Params[4].Repeated {
		t.Errorf("getPR params after round trip: %+v", op.Params)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("not xml")); err == nil {
		t.Error("Parse(not xml): want error")
	}
	if _, err := Parse([]byte("<definitions/>")); err == nil {
		t.Error("Parse(no service attr): want error")
	}
}

func TestLookup(t *testing.T) {
	d := sampleDef()
	if _, err := d.Lookup("getAppInfo"); err != nil {
		t.Errorf("Lookup(getAppInfo): %v", err)
	}
	if _, err := d.Lookup("Destroy"); err != nil {
		t.Errorf("Lookup across port types: %v", err)
	}
	if _, err := d.Lookup("nope"); !errors.Is(err, ErrUnknownOperation) {
		t.Errorf("Lookup(nope): want ErrUnknownOperation, got %v", err)
	}
}

func TestValidateFixedArity(t *testing.T) {
	d := sampleDef()
	if err := d.Validate("getAppInfo", nil); err != nil {
		t.Errorf("zero-arg op with no args: %v", err)
	}
	if err := d.Validate("getAppInfo", []string{"x"}); !errors.Is(err, ErrBadArity) {
		t.Errorf("zero-arg op with arg: want ErrBadArity, got %v", err)
	}
	if err := d.Validate("getExecs", []string{"runid", "5"}); err != nil {
		t.Errorf("getExecs 2 args: %v", err)
	}
	if err := d.Validate("getExecs", []string{"runid"}); !errors.Is(err, ErrBadArity) {
		t.Errorf("getExecs 1 arg: want ErrBadArity, got %v", err)
	}
	if err := d.Validate("missing", nil); !errors.Is(err, ErrUnknownOperation) {
		t.Errorf("unknown op: got %v", err)
	}
}

func TestValidateVariadic(t *testing.T) {
	d := sampleDef()
	// getPR: 4 fixed params + repeated focus; at least 4 args.
	if err := d.Validate("getPR", []string{"m", "0", "1", "t"}); err != nil {
		t.Errorf("getPR with zero foci: %v", err)
	}
	if err := d.Validate("getPR", []string{"m", "0", "1", "t", "/Process/1", "/Process/2"}); err != nil {
		t.Errorf("getPR with 2 foci: %v", err)
	}
	if err := d.Validate("getPR", []string{"m", "0", "1"}); !errors.Is(err, ErrBadArity) {
		t.Errorf("getPR too few: want ErrBadArity, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleDef()
	c := d.Clone()
	c.PortTypes[0].Operations[0].Name = "mutated"
	c.PortTypes[0].Operations[2].Params[0].Name = "mutated"
	if d.PortTypes[0].Operations[0].Name == "mutated" {
		t.Error("Clone shares Operations slice")
	}
	if d.PortTypes[0].Operations[2].Params[0].Name == "mutated" {
		t.Error("Clone shares Params slice")
	}
}

func TestMergeAddsAndReplaces(t *testing.T) {
	d := sampleDef()
	merged := d.Merge(
		PortType{Name: "Factory", Operations: []Operation{Op("CreateService", "Create instance.")}},
		PortType{Name: "GridService", Operations: []Operation{
			Op("Destroy", "Terminate."),
			Op("FindServiceData", "Query service data.", P("query")),
		}},
	)
	if _, err := merged.Lookup("CreateService"); err != nil {
		t.Errorf("merged factory op: %v", err)
	}
	if _, err := merged.Lookup("FindServiceData"); err != nil {
		t.Errorf("replaced GridService port type: %v", err)
	}
	// Original untouched.
	if _, err := d.Lookup("CreateService"); err == nil {
		t.Error("Merge mutated receiver")
	}
	if got := len(merged.PortTypes); got != 3 {
		t.Errorf("merged has %d port types, want 3", got)
	}
}

func TestOperationDocsSurvive(t *testing.T) {
	d := sampleDef()
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	op, err := got.Lookup("getNumExecs")
	if err != nil {
		t.Fatal(err)
	}
	if op.Doc != "Returns the number of unique executions." {
		t.Errorf("Doc = %q", op.Doc)
	}
}
