// Package wsdl implements a GWSDL-style service description language for
// PPerfGrid grid services.
//
// A Definition document describes one deployable grid service: its name,
// the PortTypes it exposes, and the operations of each PortType with their
// named input parameters and a human-readable statement of the operation's
// semantics. Client stubs download a service's Definition from the hosting
// container and validate every call against it before marshalling, playing
// the role of the generated WSDL2Java stubs in the paper's Services Layer.
//
// The paper's Tables 1–3 are exactly such PortType descriptions; package
// core and package ogsi publish them programmatically through this package.
package wsdl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
)

// TargetNS is the namespace of PPerfGrid service definitions.
const TargetNS = "http://pperfgrid.pdx.edu/ns/2004/wsdl"

// Param is one named input parameter of an operation. All PPerfGrid
// parameters are strings on the wire; Repeated marks trailing parameters
// that may appear any number of times (e.g. the Foci list of getPR).
type Param struct {
	Name     string `xml:"name,attr"`
	Repeated bool   `xml:"repeated,attr,omitempty"`
}

// Operation describes one invocable operation of a PortType.
type Operation struct {
	Name string `xml:"name,attr"`
	// Doc is the operation-semantics text, as in the paper's tables.
	Doc    string  `xml:"documentation"`
	Params []Param `xml:"input>param"`
	// Returns documents the shape of the returned string array.
	Returns string `xml:"output>documentation"`
}

// PortType is a named group of operations, e.g. "GridService", "Factory",
// "Application", "Execution".
type PortType struct {
	Name       string      `xml:"name,attr"`
	Operations []Operation `xml:"operation"`
}

// Definition is a full service description document.
type Definition struct {
	XMLName   xml.Name   `xml:"definitions"`
	Service   string     `xml:"service,attr"`
	Endpoint  string     `xml:"endpoint,attr,omitempty"`
	PortTypes []PortType `xml:"portType"`
}

// Errors reported by validation and lookup.
var (
	ErrUnknownOperation = errors.New("wsdl: unknown operation")
	ErrBadArity         = errors.New("wsdl: wrong parameter count")
)

// New builds a Definition for a service exposing the given PortTypes.
func New(service string, portTypes ...PortType) *Definition {
	return &Definition{Service: service, PortTypes: portTypes}
}

// Clone returns a deep copy of d, so containers can publish per-instance
// endpoints without sharing mutable state.
func (d *Definition) Clone() *Definition {
	out := &Definition{Service: d.Service, Endpoint: d.Endpoint}
	out.PortTypes = make([]PortType, len(d.PortTypes))
	for i, pt := range d.PortTypes {
		ops := make([]Operation, len(pt.Operations))
		for j, op := range pt.Operations {
			params := make([]Param, len(op.Params))
			copy(params, op.Params)
			ops[j] = Operation{Name: op.Name, Doc: op.Doc, Params: params, Returns: op.Returns}
		}
		out.PortTypes[i] = PortType{Name: pt.Name, Operations: ops}
	}
	return out
}

// Merge returns a new Definition combining the PortTypes of d and extra.
// PortTypes in extra with the same name as one in d replace it.
func (d *Definition) Merge(extra ...PortType) *Definition {
	out := d.Clone()
	for _, pt := range extra {
		replaced := false
		for i := range out.PortTypes {
			if out.PortTypes[i].Name == pt.Name {
				out.PortTypes[i] = pt
				replaced = true
				break
			}
		}
		if !replaced {
			out.PortTypes = append(out.PortTypes, pt)
		}
	}
	return out
}

// Lookup finds the named operation across all PortTypes.
func (d *Definition) Lookup(op string) (*Operation, error) {
	for i := range d.PortTypes {
		for j := range d.PortTypes[i].Operations {
			if d.PortTypes[i].Operations[j].Name == op {
				return &d.PortTypes[i].Operations[j], nil
			}
		}
	}
	return nil, fmt.Errorf("%w: %q on service %q", ErrUnknownOperation, op, d.Service)
}

// PortTypeNames returns the sorted names of all PortTypes.
func (d *Definition) PortTypeNames() []string {
	names := make([]string, 0, len(d.PortTypes))
	for _, pt := range d.PortTypes {
		names = append(names, pt.Name)
	}
	sort.Strings(names)
	return names
}

// OperationNames returns the sorted names of all operations across
// PortTypes.
func (d *Definition) OperationNames() []string {
	var names []string
	for _, pt := range d.PortTypes {
		for _, op := range pt.Operations {
			names = append(names, op.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Validate checks an outgoing call's operation name and argument count
// against the definition. Operations whose final parameter is Repeated
// accept any count >= len(Params)-1.
func (d *Definition) Validate(op string, args []string) error {
	o, err := d.Lookup(op)
	if err != nil {
		return err
	}
	min := len(o.Params)
	variadic := false
	if n := len(o.Params); n > 0 && o.Params[n-1].Repeated {
		variadic = true
		min = n - 1
	}
	if variadic {
		if len(args) < min {
			return fmt.Errorf("%w: %s requires at least %d args, got %d", ErrBadArity, op, min, len(args))
		}
		return nil
	}
	if len(args) != min {
		return fmt.Errorf("%w: %s requires %d args, got %d", ErrBadArity, op, min, len(args))
	}
	return nil
}

// Marshal renders the Definition as an XML document.
func (d *Definition) Marshal() ([]byte, error) {
	type defn Definition // avoid recursive MarshalXML
	body, err := xml.MarshalIndent((*defn)(d), "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), body...), nil
}

// Parse decodes a Definition document.
func Parse(data []byte) (*Definition, error) {
	var d Definition
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("wsdl: parse: %w", err)
	}
	if d.Service == "" {
		return nil, errors.New("wsdl: parse: missing service name")
	}
	return &d, nil
}

// Op is a convenience constructor for Operation.
func Op(name, doc string, params ...Param) Operation {
	return Operation{Name: name, Doc: doc, Params: params}
}

// P constructs a required Param; PRep constructs a repeated (variadic) one.
func P(name string) Param    { return Param{Name: name} }
func PRep(name string) Param { return Param{Name: name, Repeated: true} }
