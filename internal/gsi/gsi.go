// Package gsi implements a Grid Security Infrastructure-inspired security
// layer for PPerfGrid — the paper's future-work item "incorporate GT3.2's
// Grid Security Infrastructure (GSI) to secure communications between
// components", including its "single sign-on" credential delegation.
//
// The design is symmetric-key (the module is offline and stdlib-only, so
// no X.509 PKI): a virtual organization shares an Authority whose master
// key plays the role of the Grid CA trust root. The authority derives one
// long-term Credential per identity; credentials sign every SOAP request
// with an HMAC-SHA256 over the operation, parameters, timestamp, and a
// random nonce. Verifiers re-derive the credential from the master key, so
// no per-identity state is stored server side. A replay cache rejects
// reused nonces inside the freshness window.
//
// Delegation mirrors GSI proxy certificates: a credential mints a
// time-limited ProxyToken whose key is derived from the long-term secret
// and the expiry; intermediary services can sign requests with the proxy
// on the user's behalf until it expires, without ever holding the
// long-term secret.
package gsi

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"pperfgrid/internal/soap"
)

// Header names used in signed requests.
const (
	HeaderIdentity  = "gsi-identity"
	HeaderTimestamp = "gsi-timestamp"
	HeaderNonce     = "gsi-nonce"
	HeaderSignature = "gsi-signature"
	HeaderProxy     = "gsi-proxy" // present when signing with a delegated proxy
)

// Verification errors.
var (
	ErrUnsigned     = errors.New("gsi: request is not signed")
	ErrBadSignature = errors.New("gsi: signature verification failed")
	ErrStale        = errors.New("gsi: request timestamp outside freshness window")
	ErrReplay       = errors.New("gsi: nonce replayed")
	ErrProxyExpired = errors.New("gsi: proxy token expired")
)

// Authority is the virtual organization's trust root.
type Authority struct {
	master []byte
}

// NewAuthority creates an authority from a master key. The key must be
// non-empty; production deployments would provision it out of band.
func NewAuthority(master []byte) (*Authority, error) {
	if len(master) == 0 {
		return nil, errors.New("gsi: empty master key")
	}
	key := make([]byte, len(master))
	copy(key, master)
	return &Authority{master: key}, nil
}

// Issue derives the long-term credential for an identity.
func (a *Authority) Issue(identity string) (Credential, error) {
	if identity == "" || strings.ContainsAny(identity, "|\n") {
		return Credential{}, fmt.Errorf("gsi: bad identity %q", identity)
	}
	return Credential{Identity: identity, secret: derive(a.master, "cred", identity)}, nil
}

func derive(key []byte, parts ...string) []byte {
	mac := hmac.New(sha256.New, key)
	for _, p := range parts {
		mac.Write([]byte(p))
		mac.Write([]byte{0})
	}
	return mac.Sum(nil)
}

// Credential is one identity's long-term signing key.
type Credential struct {
	Identity string
	secret   []byte
}

// signingString canonicalizes the signed content of a request.
func signingString(identity, proxy, op string, params []string, ts, nonce string) string {
	var b strings.Builder
	for _, s := range []string{identity, proxy, op, ts, nonce} {
		b.WriteString(s)
		b.WriteByte(0)
	}
	for _, p := range params {
		b.WriteString(p)
		b.WriteByte(0)
	}
	return b.String()
}

func sign(secret []byte, content string) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(content))
	return hex.EncodeToString(mac.Sum(nil))
}

func newNonce() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failure is unrecoverable for security purposes.
		panic("gsi: crypto/rand: " + err.Error())
	}
	return base64.RawURLEncoding.EncodeToString(buf[:])
}

// HeaderProvider returns a per-call SOAP header provider that signs every
// outgoing request with this credential. It matches the signature of
// container.Stub.SetHeaderProvider.
func (c Credential) HeaderProvider() func(op string, params []string) []soap.HeaderEntry {
	return c.headerProvider("", c.secret, time.Now)
}

func (c Credential) headerProvider(proxy string, secret []byte, now func() time.Time) func(op string, params []string) []soap.HeaderEntry {
	return func(op string, params []string) []soap.HeaderEntry {
		ts := strconv.FormatInt(now().UnixNano(), 10)
		nonce := newNonce()
		sig := sign(secret, signingString(c.Identity, proxy, op, params, ts, nonce))
		hdrs := []soap.HeaderEntry{
			{Name: HeaderIdentity, Value: c.Identity},
			{Name: HeaderTimestamp, Value: ts},
			{Name: HeaderNonce, Value: nonce},
			{Name: HeaderSignature, Value: sig},
		}
		if proxy != "" {
			hdrs = append(hdrs, soap.HeaderEntry{Name: HeaderProxy, Value: proxy})
		}
		return hdrs
	}
}

// ProxyToken is a delegated, time-limited signing capability — the
// single-sign-on analogue of a GSI proxy certificate.
type ProxyToken struct {
	Identity string
	Expires  time.Time
	secret   []byte
}

// proxyClaim is the wire form of the delegation claim: "expiresUnixNano".
func proxyClaim(expires time.Time) string {
	return strconv.FormatInt(expires.UnixNano(), 10)
}

// Delegate mints a proxy valid for ttl. The proxy secret is derived from
// the long-term secret and the expiry, so the verifier can re-derive it
// and the long-term secret never travels.
func (c Credential) Delegate(ttl time.Duration) ProxyToken {
	expires := time.Now().Add(ttl)
	return ProxyToken{
		Identity: c.Identity,
		Expires:  expires,
		secret:   derive(c.secret, "proxy", proxyClaim(expires)),
	}
}

// HeaderProvider signs outgoing requests with the proxy token.
func (p ProxyToken) HeaderProvider() func(op string, params []string) []soap.HeaderEntry {
	c := Credential{Identity: p.Identity}
	return c.headerProvider(proxyClaim(p.Expires), p.secret, time.Now)
}

// Verifier checks request signatures against an authority.
type Verifier struct {
	authority *Authority
	// MaxSkew is the freshness window around the verifier's clock.
	MaxSkew time.Duration
	nowFn   func() time.Time

	mu        sync.Mutex
	nonces    map[string]time.Time // nonce -> expiry of its freshness window
	purgeSize int                  // cache size that triggers the next purge sweep
}

// NewVerifier creates a verifier with a default 5-minute freshness window.
func NewVerifier(a *Authority) *Verifier {
	return &Verifier{authority: a, MaxSkew: 5 * time.Minute, nowFn: time.Now, nonces: make(map[string]time.Time)}
}

// SetClock replaces the verifier's time source, for tests.
func (v *Verifier) SetClock(now func() time.Time) { v.nowFn = now }

// Verify checks a request's signature headers and returns the
// authenticated identity.
func (v *Verifier) Verify(req *soap.Request) (string, error) {
	identity, ok := req.Header(HeaderIdentity)
	if !ok {
		return "", ErrUnsigned
	}
	ts, ok1 := req.Header(HeaderTimestamp)
	nonce, ok2 := req.Header(HeaderNonce)
	sig, ok3 := req.Header(HeaderSignature)
	if !ok1 || !ok2 || !ok3 {
		return "", ErrUnsigned
	}
	tsNano, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return "", fmt.Errorf("%w: bad timestamp", ErrBadSignature)
	}
	now := v.nowFn()
	reqTime := time.Unix(0, tsNano)
	if reqTime.Before(now.Add(-v.MaxSkew)) || reqTime.After(now.Add(v.MaxSkew)) {
		return "", ErrStale
	}

	cred, err := v.authority.Issue(identity)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	secret := cred.secret
	proxy, isProxy := req.Header(HeaderProxy)
	if isProxy {
		expNano, err := strconv.ParseInt(proxy, 10, 64)
		if err != nil {
			return "", fmt.Errorf("%w: bad proxy claim", ErrBadSignature)
		}
		if time.Unix(0, expNano).Before(now) {
			return "", ErrProxyExpired
		}
		secret = derive(secret, "proxy", proxy)
	}

	want := sign(secret, signingString(identity, proxy, req.Operation, req.Params, ts, nonce))
	if !hmac.Equal([]byte(want), []byte(sig)) {
		return "", ErrBadSignature
	}
	if err := v.recordNonce(nonce, now); err != nil {
		return "", err
	}
	return identity, nil
}

func (v *Verifier) recordNonce(nonce string, now time.Time) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if exp, seen := v.nonces[nonce]; seen && now.Before(exp) {
		return ErrReplay
	}
	// Opportunistic purge keeps the cache bounded by the traffic of one
	// freshness window. The trigger size doubles when a sweep frees
	// nothing (a burst of still-fresh nonces), so the sweep cost stays
	// amortized O(1) per request instead of O(n) under sustained load.
	if v.purgeSize == 0 {
		v.purgeSize = 10000
	}
	if len(v.nonces) >= v.purgeSize {
		for n, exp := range v.nonces {
			if !now.Before(exp) {
				delete(v.nonces, n)
			}
		}
		v.purgeSize = max(10000, 2*len(v.nonces))
	}
	v.nonces[nonce] = now.Add(2 * v.MaxSkew)
	return nil
}

// Policy decides whether an authenticated identity may invoke an operation
// on a service type. A nil Policy admits every verified identity.
type Policy func(identity, serviceType, op string) error

// AllowIdentities builds a policy admitting exactly the given identities.
func AllowIdentities(ids ...string) Policy {
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(identity, serviceType, op string) error {
		if !set[identity] {
			return fmt.Errorf("gsi: identity %q not authorized for %s.%s", identity, serviceType, op)
		}
		return nil
	}
}
