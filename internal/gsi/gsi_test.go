package gsi

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/soap"
	"pperfgrid/internal/wsdl"
)

func newAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority([]byte("test-master-key"))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// signedRequest builds a request with headers produced by the provider.
func signedRequest(provider func(op string, params []string) []soap.HeaderEntry, op string, params ...string) *soap.Request {
	return &soap.Request{Operation: op, Params: params, Headers: provider(op, params)}
}

func TestSignAndVerify(t *testing.T) {
	a := newAuthority(t)
	cred, err := a.Issue("karavanic@pdx.edu")
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(a)
	req := signedRequest(cred.HeaderProvider(), "getExecs", "runid", "100")
	id, err := v.Verify(req)
	if err != nil {
		t.Fatal(err)
	}
	if id != "karavanic@pdx.edu" {
		t.Errorf("identity = %q", id)
	}
}

func TestVerifyRejectsUnsigned(t *testing.T) {
	v := NewVerifier(newAuthority(t))
	if _, err := v.Verify(&soap.Request{Operation: "op"}); !errors.Is(err, ErrUnsigned) {
		t.Errorf("got %v", err)
	}
	// Partial headers also count as unsigned.
	req := &soap.Request{Operation: "op", Headers: []soap.HeaderEntry{{Name: HeaderIdentity, Value: "x"}}}
	if _, err := v.Verify(req); !errors.Is(err, ErrUnsigned) {
		t.Errorf("partial: got %v", err)
	}
}

func TestVerifyRejectsTamperedParams(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	v := NewVerifier(a)
	req := signedRequest(cred.HeaderProvider(), "getExecs", "runid", "100")
	req.Params = []string{"runid", "999"} // tampered after signing
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Errorf("got %v", err)
	}
}

func TestVerifyRejectsTamperedOperation(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	v := NewVerifier(a)
	req := signedRequest(cred.HeaderProvider(), "getAppInfo")
	req.Operation = "Destroy"
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Errorf("got %v", err)
	}
}

func TestVerifyRejectsWrongAuthority(t *testing.T) {
	other, _ := NewAuthority([]byte("different-master"))
	cred, _ := other.Issue("user")
	v := NewVerifier(newAuthority(t))
	req := signedRequest(cred.HeaderProvider(), "op")
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Errorf("got %v", err)
	}
}

func TestVerifyRejectsStale(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	v := NewVerifier(a)
	var mu sync.Mutex
	now := time.Now()
	v.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	req := signedRequest(cred.HeaderProvider(), "op")
	mu.Lock()
	now = now.Add(10 * time.Minute)
	mu.Unlock()
	if _, err := v.Verify(req); !errors.Is(err, ErrStale) {
		t.Errorf("got %v", err)
	}
}

func TestVerifyRejectsReplay(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	v := NewVerifier(a)
	req := signedRequest(cred.HeaderProvider(), "op")
	if _, err := v.Verify(req); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(req); !errors.Is(err, ErrReplay) {
		t.Errorf("replay: got %v", err)
	}
}

func TestProxyDelegation(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	proxy := cred.Delegate(time.Minute)
	v := NewVerifier(a)
	req := signedRequest(proxy.HeaderProvider(), "getPR", "gflops", "0", "1", "hpl")
	id, err := v.Verify(req)
	if err != nil {
		t.Fatal(err)
	}
	if id != "user" {
		t.Errorf("identity through proxy = %q", id)
	}
}

func TestProxyExpires(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	proxy := cred.Delegate(-time.Second) // already expired
	v := NewVerifier(a)
	req := signedRequest(proxy.HeaderProvider(), "op")
	if _, err := v.Verify(req); !errors.Is(err, ErrProxyExpired) {
		t.Errorf("got %v", err)
	}
}

func TestProxyClaimTamperRejected(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	proxy := cred.Delegate(time.Millisecond)
	v := NewVerifier(a)
	req := signedRequest(proxy.HeaderProvider(), "op")
	// Extend the claimed expiry without re-deriving the key.
	for i, h := range req.Headers {
		if h.Name == HeaderProxy {
			req.Headers[i].Value = proxyClaim(time.Now().Add(time.Hour))
		}
	}
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Errorf("got %v", err)
	}
}

func TestIssueValidation(t *testing.T) {
	a := newAuthority(t)
	for _, bad := range []string{"", "a|b", "line\nbreak"} {
		if _, err := a.Issue(bad); err == nil {
			t.Errorf("Issue(%q): want error", bad)
		}
	}
	if _, err := NewAuthority(nil); err == nil {
		t.Error("empty master: want error")
	}
}

func TestAllowIdentitiesPolicy(t *testing.T) {
	p := AllowIdentities("alice", "bob")
	if err := p("alice", "Application", "getExecs"); err != nil {
		t.Errorf("alice: %v", err)
	}
	if err := p("mallory", "Application", "getExecs"); err == nil {
		t.Error("mallory admitted")
	}
}

func TestNoncesIndependentAcrossRequests(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	v := NewVerifier(a)
	for i := 0; i < 50; i++ {
		req := signedRequest(cred.HeaderProvider(), "op")
		if _, err := v.Verify(req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

// TestSecuredContainerEndToEnd wires the verifier into a real container:
// unsigned calls fault, signed calls succeed, policy rejects outsiders.
func TestSecuredContainerEndToEnd(t *testing.T) {
	a := newAuthority(t)
	v := NewVerifier(a)
	c := container.New(ogsi.NewHosting("x:0"), container.Options{
		Interceptors: []container.Interceptor{Interceptor(v, AllowIdentities("alice"))},
	})
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	def := wsdl.New("Echo", wsdl.PortType{Name: "Echo", Operations: []wsdl.Operation{
		wsdl.Op("ping", "Echo.", wsdl.PRep("arg")),
	}})
	in, err := c.Hosting().DeployPersistent("Echo", ogsi.ServiceFunc(func(op string, params []string) ([]string, error) {
		return params, nil
	}), def)
	if err != nil {
		t.Fatal(err)
	}

	// Unsigned call faults.
	anon := container.Dial(in.Handle())
	if _, err := anon.Call("ping", "x"); err == nil || !strings.Contains(err.Error(), "not signed") {
		t.Errorf("unsigned: %v", err)
	}

	// Signed call from an authorized identity succeeds.
	alice, _ := a.Issue("alice")
	stub := container.Dial(in.Handle())
	stub.SetHeaderProvider(alice.HeaderProvider())
	out, err := stub.Call("ping", "x")
	if err != nil || len(out) != 1 || out[0] != "x" {
		t.Errorf("alice: %v %v", out, err)
	}

	// Signed call from an unauthorized identity is rejected by policy.
	mallory, _ := a.Issue("mallory")
	stub2 := container.Dial(in.Handle())
	stub2.SetHeaderProvider(mallory.HeaderProvider())
	if _, err := stub2.Call("ping", "x"); err == nil || !strings.Contains(err.Error(), "not authorized") {
		t.Errorf("mallory: %v", err)
	}

	// Delegated proxy of an authorized identity succeeds.
	proxy := alice.Delegate(time.Minute)
	stub3 := container.Dial(in.Handle())
	stub3.SetHeaderProvider(proxy.HeaderProvider())
	if _, err := stub3.Call("ping", "y"); err != nil {
		t.Errorf("proxy: %v", err)
	}
}

// TestNoncePurge drives the verifier past its purge threshold with a fake
// clock and checks that expired nonces are actually swept rather than
// accumulating forever (and that fresh bursts don't trigger quadratic
// rescans — the purge threshold adapts upward).
func TestNoncePurge(t *testing.T) {
	a := newAuthority(t)
	cred, _ := a.Issue("user")
	v := NewVerifier(a)
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	v.SetClock(clock)

	verifyN := func(n int) {
		for i := 0; i < n; i++ {
			provider := cred.headerProvider("", cred.secret, clock)
			req := &soap.Request{Operation: "op", Headers: provider("op", nil)}
			if _, err := v.Verify(req); err != nil {
				t.Fatalf("verify %d: %v", i, err)
			}
		}
	}
	verifyN(12000)
	v.mu.Lock()
	grown := len(v.nonces)
	v.mu.Unlock()
	if grown < 12000 {
		t.Fatalf("fresh nonces were purged early: %d", grown)
	}
	// Advance past the freshness window: the old nonces expire and the
	// next purge-triggering burst sweeps them.
	mu.Lock()
	now = now.Add(time.Hour)
	mu.Unlock()
	verifyN(13000)
	v.mu.Lock()
	after := len(v.nonces)
	v.mu.Unlock()
	if after >= grown+13000 {
		t.Errorf("expired nonces never purged: %d entries", after)
	}
}
