package gsi

import (
	"pperfgrid/internal/container"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/soap"
)

// Interceptor adapts a Verifier (and optional Policy) into a container
// request interceptor, so a container rejects unsigned, stale, replayed,
// or unauthorized requests with a SOAP Fault before dispatch.
func Interceptor(v *Verifier, p Policy) container.Interceptor {
	return func(req *soap.Request, handle gsh.Handle) error {
		identity, err := v.Verify(req)
		if err != nil {
			return err
		}
		if p != nil {
			return p(identity, handle.ServiceType, req.Operation)
		}
		return nil
	}
}
