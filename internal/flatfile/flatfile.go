// Package flatfile implements the flat ASCII text data store used by the
// paper's Presta-RMA dataset, together with the custom parser the Mapping
// Layer uses to query it.
//
// A dataset is a directory of plain text files: one index file (app.txt)
// naming the application, its metadata, and the per-execution data files;
// and one data file per execution holding its attributes, time range, and
// whitespace-separated performance-result records.
//
// The store deliberately re-reads and re-parses the execution file on every
// Results call — exactly what a custom text-file parser does per query —
// so the Mapping-Layer cost that Tables 4 and 5 of the paper attribute to
// "ASCII text files" is actually paid.
package flatfile

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode"
	"unicode/utf8"

	"pperfgrid/internal/perfdata"
)

// IndexFile is the name of the dataset index file.
const IndexFile = "app.txt"

// Execution is one run's data in a flat-file dataset.
type Execution struct {
	ID      string
	Attrs   map[string]string
	Time    perfdata.TimeRange
	Results []perfdata.Result
}

// Dataset is a fully materialized flat-file dataset, used by writers and
// generators. Stores read lazily via Store instead.
type Dataset struct {
	Name  string
	Meta  []perfdata.KV
	Execs []Execution
}

// Encode renders the dataset as its file set: file name to content.
func Encode(ds *Dataset) (map[string][]byte, error) {
	if ds.Name == "" {
		return nil, fmt.Errorf("flatfile: dataset has no application name")
	}
	files := make(map[string][]byte, len(ds.Execs)+1)
	var idx strings.Builder
	fmt.Fprintf(&idx, "application %s\n", ds.Name)
	for _, kv := range ds.Meta {
		fmt.Fprintf(&idx, "meta %s %s\n", kv.Name, kv.Value)
	}
	for _, e := range ds.Execs {
		if e.ID == "" || strings.ContainsAny(e.ID, " \t\n") {
			return nil, fmt.Errorf("flatfile: bad execution ID %q", e.ID)
		}
		fname := "exec_" + e.ID + ".txt"
		fmt.Fprintf(&idx, "execution %s %s\n", e.ID, fname)
		files[fname] = encodeExec(&e)
	}
	files[IndexFile] = []byte(idx.String())
	return files, nil
}

func encodeExec(e *Execution) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "execution %s\n", e.ID)
	names := make([]string, 0, len(e.Attrs))
	for n := range e.Attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "attr %s %s\n", n, e.Attrs[n])
	}
	fmt.Fprintf(&b, "timerange %s %s\n", ftoa(e.Time.Start), ftoa(e.Time.End))
	b.WriteString("columns metric focus type start end value\n")
	for _, r := range e.Results {
		fmt.Fprintf(&b, "data %s %s %s %s %s %s\n",
			r.Metric, r.Focus, r.Type, ftoa(r.Time.Start), ftoa(r.Time.End),
			strconv.FormatFloat(r.Value, 'g', -1, 64))
	}
	b.WriteString("end\n")
	return []byte(b.String())
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WriteDir writes the dataset's files into a directory, creating it if
// necessary.
func WriteDir(ds *Dataset, dir string) error {
	files, err := Encode(ds)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Store provides lazy, per-query access to a flat-file dataset rooted in
// an fs.FS (a real directory via os.DirFS, or an in-memory fstest.MapFS).
// Stores opened over in-memory file sets (OpenFiles) additionally accept
// appends via AppendResults.
type Store struct {
	// mu guards the file set: AppendResults replaces a file's content
	// under the write lock, opens take the read lock. A replaced file's
	// old byte slice is never mutated, so readers streaming from an
	// already-open file are unaffected by a concurrent append.
	mu    sync.RWMutex
	fsys  fs.FS
	name  string
	meta  []perfdata.KV
	order []string          // execution IDs in index order
	files map[string]string // execution ID -> file name
}

// open opens one stored file under the read lock.
func (s *Store) open(fname string) (fs.File, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fsys.Open(fname)
}

// Open reads and validates the dataset index. Execution data files are
// parsed only when queried.
func Open(fsys fs.FS) (*Store, error) {
	f, err := fsys.Open(IndexFile)
	if err != nil {
		return nil, fmt.Errorf("flatfile: open index: %w", err)
	}
	defer f.Close()
	s := &Store{fsys: fsys, files: make(map[string]string)}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "application":
			if len(fields) < 2 {
				return nil, indexErr(line, "application needs a name")
			}
			s.name = strings.Join(fields[1:], " ")
		case "meta":
			if len(fields) < 2 {
				return nil, indexErr(line, "meta needs a key")
			}
			s.meta = append(s.meta, perfdata.KV{Name: fields[1], Value: strings.Join(fields[2:], " ")})
		case "execution":
			if len(fields) != 3 {
				return nil, indexErr(line, "execution needs <id> <file>")
			}
			id, fname := fields[1], fields[2]
			if _, dup := s.files[id]; dup {
				return nil, indexErr(line, "duplicate execution ID "+id)
			}
			s.files[id] = fname
			s.order = append(s.order, id)
		default:
			return nil, indexErr(line, "unknown directive "+fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flatfile: read index: %w", err)
	}
	if s.name == "" {
		return nil, fmt.Errorf("flatfile: index missing application name")
	}
	return s, nil
}

// OpenDir opens a dataset stored in a filesystem directory.
func OpenDir(dir string) (*Store, error) { return Open(os.DirFS(dir)) }

// OpenFiles opens a dataset held in memory as a file-name-to-content map,
// e.g. the output of Encode. The parse-per-query cost model is identical
// to the on-disk path minus the OS read.
func OpenFiles(files map[string][]byte) (*Store, error) { return Open(memFS(files)) }

// memFS is a minimal read-only fs.FS over a map.
type memFS map[string][]byte

func (m memFS) Open(name string) (fs.File, error) {
	content, ok := m[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memFile{name: name, Reader: *bytes.NewReader(content)}, nil
}

type memFile struct {
	name string
	bytes.Reader
}

func (f *memFile) Stat() (fs.FileInfo, error) {
	return memFileInfo{name: f.name, size: f.Reader.Size()}, nil
}

func (f *memFile) Close() error { return nil }

type memFileInfo struct {
	name string
	size int64
}

func (i memFileInfo) Name() string       { return path.Base(i.name) }
func (i memFileInfo) Size() int64        { return i.size }
func (i memFileInfo) Mode() fs.FileMode  { return 0o444 }
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return false }
func (i memFileInfo) Sys() any           { return nil }

func indexErr(line int, msg string) error {
	return fmt.Errorf("flatfile: %s:%d: %s", IndexFile, line, msg)
}

// Name returns the application name.
func (s *Store) Name() string { return s.name }

// Meta returns the application metadata pairs.
func (s *Store) Meta() []perfdata.KV {
	out := make([]perfdata.KV, len(s.meta))
	copy(out, s.meta)
	return out
}

// ExecIDs returns the execution IDs in index order.
func (s *Store) ExecIDs() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// NumExecs returns the number of executions in the dataset.
func (s *Store) NumExecs() int { return len(s.order) }

// Execution parses and returns one execution's full data, including all
// performance results. Each call re-reads the underlying file.
func (s *Store) Execution(id string) (*Execution, error) {
	return s.parseExec(id, true)
}

// ExecutionHeader parses only an execution's attributes and time range,
// stopping before the data records.
func (s *Store) ExecutionHeader(id string) (*Execution, error) {
	return s.parseExec(id, false)
}

func (s *Store) parseExec(id string, withData bool) (*Execution, error) {
	fname, ok := s.files[id]
	if !ok {
		return nil, fmt.Errorf("flatfile: no execution %q", id)
	}
	f, err := s.open(fname)
	if err != nil {
		return nil, fmt.Errorf("flatfile: open %s: %w", fname, err)
	}
	defer f.Close()
	return parseExecFile(f, fname, id, withData)
}

func parseExecFile(r io.Reader, fname, wantID string, withData bool) (*Execution, error) {
	e := &Execution{Attrs: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	line, sawEnd := 0, false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "execution":
			if len(fields) != 2 {
				return nil, execErr(fname, line, "execution needs an ID")
			}
			e.ID = fields[1]
		case "attr":
			if len(fields) < 2 {
				return nil, execErr(fname, line, "attr needs a name")
			}
			e.Attrs[fields[1]] = strings.Join(fields[2:], " ")
		case "timerange":
			if len(fields) != 3 {
				return nil, execErr(fname, line, "timerange needs <start> <end>")
			}
			start, err1 := strconv.ParseFloat(fields[1], 64)
			end, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || end < start {
				return nil, execErr(fname, line, "bad timerange")
			}
			e.Time = perfdata.TimeRange{Start: start, End: end}
		case "columns":
			// Documentation line; the layout is fixed.
		case "data":
			if !withData {
				return finishExec(e, fname, wantID)
			}
			if len(fields) != 7 {
				return nil, execErr(fname, line, fmt.Sprintf("data record has %d fields, want 7", len(fields)))
			}
			start, err1 := strconv.ParseFloat(fields[4], 64)
			end, err2 := strconv.ParseFloat(fields[5], 64)
			val, err3 := strconv.ParseFloat(fields[6], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, execErr(fname, line, "bad numeric field in data record")
			}
			e.Results = append(e.Results, perfdata.Result{
				Metric: fields[1], Focus: fields[2], Type: fields[3],
				Time:  perfdata.TimeRange{Start: start, End: end},
				Value: val,
			})
		case "end":
			sawEnd = true
		default:
			return nil, execErr(fname, line, "unknown directive "+fields[0])
		}
		if sawEnd {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flatfile: read %s: %w", fname, err)
	}
	if withData && !sawEnd {
		return nil, fmt.Errorf("flatfile: %s: missing end directive", fname)
	}
	return finishExec(e, fname, wantID)
}

func finishExec(e *Execution, fname, wantID string) (*Execution, error) {
	if e.ID == "" {
		return nil, fmt.Errorf("flatfile: %s: missing execution directive", fname)
	}
	if e.ID != wantID {
		return nil, fmt.Errorf("flatfile: %s: file declares execution %q, index says %q", fname, e.ID, wantID)
	}
	return e, nil
}

func execErr(fname string, line int, msg string) error {
	return fmt.Errorf("flatfile: %s:%d: %s", fname, line, msg)
}

// AppendResults appends data records for rs to one execution's file, in
// argument order, producing byte-for-byte the file Encode would write for
// the extended execution: the existing content up to the trailing end
// directive, one data line per result in encodeExec's format, and the
// end directive re-appended. Only in-memory stores (OpenFiles) are
// writable. The file's content slice is replaced, never mutated, so
// queries already streaming from the old content are unaffected.
func (s *Store) AppendResults(id string, rs []perfdata.Result) error {
	if len(rs) == 0 {
		return nil
	}
	for _, r := range rs {
		for _, field := range [3]string{r.Metric, r.Focus, r.Type} {
			if field == "" || strings.ContainsAny(field, " \t\n") {
				return fmt.Errorf("flatfile: result field %q cannot be stored in a whitespace-separated record", field)
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fname, ok := s.files[id]
	if !ok {
		return fmt.Errorf("flatfile: no execution %q", id)
	}
	m, ok := s.fsys.(memFS)
	if !ok {
		return fmt.Errorf("flatfile: store over %T is read-only", s.fsys)
	}
	content := m[fname]
	const endDirective = "end\n"
	if !bytes.HasSuffix(content, []byte(endDirective)) {
		return fmt.Errorf("flatfile: %s: missing end directive", fname)
	}
	var b bytes.Buffer
	b.Grow(len(content) + 64*len(rs))
	b.Write(content[:len(content)-len(endDirective)])
	for _, r := range rs {
		fmt.Fprintf(&b, "data %s %s %s %s %s %s\n",
			r.Metric, r.Focus, r.Type, ftoa(r.Time.Start), ftoa(r.Time.End),
			strconv.FormatFloat(r.Value, 'g', -1, 64))
	}
	b.WriteString(endDirective)
	m[fname] = b.Bytes()
	return nil
}

// Query scans one execution's results for those matching q, re-parsing the
// backing file. This is the per-query path the Mapping Layer uses.
func (s *Store) Query(id string, q perfdata.Query) ([]perfdata.Result, error) {
	return s.QueryAppend(id, q, nil)
}

// queryScratch is the pooled per-parse scratch of the byte-level query
// path: the scanner's token buffer, the reused field-split slice, and a
// small intern table for the collector-type strings (a handful of
// distinct values repeated across thousands of records). Pooling these
// keeps the paper's parse-per-query cost model — every record is still
// read, tokenized, and numerically parsed on every query — while the
// steady-state RMA cold path stops handing the garbage collector one
// fields slice and one record string per line.
type queryScratch struct {
	buf    []byte
	fields [][]byte
	types  map[string]string
}

var queryScratchPool = sync.Pool{New: func() any {
	return &queryScratch{buf: make([]byte, 64*1024), types: make(map[string]string)}
}}

// maxInternedTypes bounds the scratch's intern table across reuses.
const maxInternedTypes = 256

// splitFieldsBytes appends the whitespace-separated fields of line to
// dst, with strings.Fields semantics (any run of Unicode white space
// separates).
func splitFieldsBytes(dst [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		r, w := utf8.DecodeRune(line[i:])
		if unicode.IsSpace(r) {
			i += w
			continue
		}
		start := i
		for i < len(line) {
			r, w := utf8.DecodeRune(line[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += w
		}
		dst = append(dst, line[start:i])
	}
	return dst
}

// focusMatchesBytes is perfdata.FocusMatches with the stored path still
// in scanner-owned bytes, so non-matching records allocate nothing.
func focusMatchesBytes(query string, stored []byte) bool {
	if query == "/" || query == "" || string(stored) == query {
		return true
	}
	base := strings.TrimSuffix(query, "/")
	return len(stored) > len(base) && stored[len(base)] == '/' && string(stored[:len(base)]) == base
}

// matchesBytes mirrors perfdata.Query.Matches over a data record's raw
// fields (metric, focus, type) plus its parsed time range.
func matchesBytes(q perfdata.Query, metric, focus, typ []byte, tr perfdata.TimeRange) bool {
	if string(metric) != q.Metric {
		return false
	}
	if q.Type != perfdata.UndefinedType && string(typ) != q.Type {
		return false
	}
	if !q.Time.Overlaps(tr) {
		return false
	}
	if len(q.Foci) == 0 {
		return true
	}
	for _, f := range q.Foci {
		if focusMatchesBytes(f, focus) {
			return true
		}
	}
	return false
}

// intern returns a durable string for b, reusing a previously interned
// copy when one exists (collector types recur; focus paths usually do
// not and are allocated per match).
func (sc *queryScratch) intern(b []byte) string {
	if s, ok := sc.types[string(b)]; ok {
		return s
	}
	if len(sc.types) >= maxInternedTypes {
		sc.types = make(map[string]string)
	}
	s := string(b)
	sc.types[s] = s
	return s
}

// QueryAppend appends one execution's results matching q to dst,
// re-parsing the backing file with pooled scratch: records are scanned
// and filtered as raw bytes, and only matching records materialize
// strings. The full row-materializing parse (Execution + filter) is the
// differential oracle for this path.
func (s *Store) QueryAppend(id string, q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error) {
	fname, ok := s.files[id]
	if !ok {
		return dst, fmt.Errorf("flatfile: no execution %q", id)
	}
	f, err := s.open(fname)
	if err != nil {
		return dst, fmt.Errorf("flatfile: open %s: %w", fname, err)
	}
	defer f.Close()

	sc := queryScratchPool.Get().(*queryScratch)
	defer func() {
		sc.fields = sc.fields[:0]
		queryScratchPool.Put(sc)
	}()

	sr := bufio.NewScanner(f)
	sr.Buffer(sc.buf, 4*1024*1024)
	line, sawEnd := 0, false
	declaredID := "" // last "execution" directive's ID, like the oracle's e.ID
	for sr.Scan() {
		line++
		text := bytes.TrimSpace(sr.Bytes())
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		sc.fields = splitFieldsBytes(sc.fields[:0], text)
		fields := sc.fields
		switch string(fields[0]) {
		case "execution":
			if len(fields) != 2 {
				return dst, execErr(fname, line, "execution needs an ID")
			}
			if string(fields[1]) == id {
				declaredID = id // avoid re-allocating the common case
			} else {
				declaredID = string(fields[1])
			}
		case "attr":
			if len(fields) < 2 {
				return dst, execErr(fname, line, "attr needs a name")
			}
		case "timerange":
			if len(fields) != 3 {
				return dst, execErr(fname, line, "timerange needs <start> <end>")
			}
			start, err1 := strconv.ParseFloat(string(fields[1]), 64)
			end, err2 := strconv.ParseFloat(string(fields[2]), 64)
			if err1 != nil || err2 != nil || end < start {
				return dst, execErr(fname, line, "bad timerange")
			}
		case "columns":
			// Documentation line; the layout is fixed.
		case "data":
			if len(fields) != 7 {
				return dst, execErr(fname, line, fmt.Sprintf("data record has %d fields, want 7", len(fields)))
			}
			start, err1 := strconv.ParseFloat(string(fields[4]), 64)
			end, err2 := strconv.ParseFloat(string(fields[5]), 64)
			val, err3 := strconv.ParseFloat(string(fields[6]), 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return dst, execErr(fname, line, "bad numeric field in data record")
			}
			tr := perfdata.TimeRange{Start: start, End: end}
			if !matchesBytes(q, fields[1], fields[2], fields[3], tr) {
				continue
			}
			dst = append(dst, perfdata.Result{
				Metric: q.Metric, // matched, so equal to the record's field
				Focus:  string(fields[2]),
				Type:   sc.intern(fields[3]),
				Time:   tr,
				Value:  val,
			})
		case "end":
			sawEnd = true
		default:
			return dst, execErr(fname, line, "unknown directive "+string(fields[0]))
		}
		if sawEnd {
			break
		}
	}
	if err := sr.Err(); err != nil {
		return dst, fmt.Errorf("flatfile: read %s: %w", fname, err)
	}
	if !sawEnd {
		return dst, fmt.Errorf("flatfile: %s: missing end directive", fname)
	}
	if declaredID == "" {
		return dst, fmt.Errorf("flatfile: %s: missing execution directive", fname)
	}
	if declaredID != id {
		return dst, fmt.Errorf("flatfile: %s: file declares execution %q, index says %q", fname, declaredID, id)
	}
	return dst, nil
}
