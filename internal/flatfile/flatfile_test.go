package flatfile

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/fstest"

	"pperfgrid/internal/perfdata"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Name: "PRESTA-RMA",
		Meta: []perfdata.KV{
			{Name: "description", Value: "PRESTA MPI Bandwidth and Latency Benchmark"},
			{Name: "version", Value: "1.2"},
		},
		Execs: []Execution{
			{
				ID:    "1",
				Attrs: map[string]string{"numprocesses": "2", "rundate": "2004-03-15"},
				Time:  perfdata.TimeRange{Start: 0, End: 120},
				Results: []perfdata.Result{
					{Metric: "bandwidth", Focus: "/Comm/unidir/1024", Type: "presta", Time: perfdata.TimeRange{Start: 0, End: 10}, Value: 88.5},
					{Metric: "latency", Focus: "/Comm/bidir/8", Type: "presta", Time: perfdata.TimeRange{Start: 10, End: 20}, Value: 12.25},
				},
			},
			{
				ID:    "2",
				Attrs: map[string]string{"numprocesses": "4", "rundate": "2004-03-16"},
				Time:  perfdata.TimeRange{Start: 0, End: 60},
				Results: []perfdata.Result{
					{Metric: "bandwidth", Focus: "/Comm/unidir/1024", Type: "presta", Time: perfdata.TimeRange{Start: 0, End: 30}, Value: 91},
				},
			},
		},
	}
}

func openSample(t *testing.T) *Store {
	t.Helper()
	files, err := Encode(sampleDataset())
	if err != nil {
		t.Fatal(err)
	}
	fsys := fstest.MapFS{}
	for name, content := range files {
		fsys[name] = &fstest.MapFile{Data: content}
	}
	s, err := Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeOpenRoundTrip(t *testing.T) {
	s := openSample(t)
	if s.Name() != "PRESTA-RMA" {
		t.Errorf("Name = %q", s.Name())
	}
	wantMeta := sampleDataset().Meta
	if !reflect.DeepEqual(s.Meta(), wantMeta) {
		t.Errorf("Meta = %+v", s.Meta())
	}
	if !reflect.DeepEqual(s.ExecIDs(), []string{"1", "2"}) {
		t.Errorf("ExecIDs = %v", s.ExecIDs())
	}
	if s.NumExecs() != 2 {
		t.Errorf("NumExecs = %d", s.NumExecs())
	}
}

func TestExecutionFullParse(t *testing.T) {
	s := openSample(t)
	e, err := s.Execution("1")
	if err != nil {
		t.Fatal(err)
	}
	want := sampleDataset().Execs[0]
	if e.ID != want.ID || !reflect.DeepEqual(e.Attrs, want.Attrs) || e.Time != want.Time {
		t.Errorf("header mismatch: %+v", e)
	}
	if !reflect.DeepEqual(e.Results, want.Results) {
		t.Errorf("results = %+v, want %+v", e.Results, want.Results)
	}
}

func TestExecutionHeaderSkipsData(t *testing.T) {
	s := openSample(t)
	e, err := s.ExecutionHeader("1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Results) != 0 {
		t.Errorf("header parse returned %d results", len(e.Results))
	}
	if e.Attrs["numprocesses"] != "2" {
		t.Errorf("attrs = %v", e.Attrs)
	}
}

func TestExecutionMissing(t *testing.T) {
	s := openSample(t)
	if _, err := s.Execution("99"); err == nil {
		t.Error("want error for missing execution")
	}
}

func TestQueryFiltering(t *testing.T) {
	s := openSample(t)
	rs, err := s.Query("1", perfdata.Query{
		Metric: "bandwidth",
		Time:   perfdata.TimeRange{Start: 0, End: 120},
		Type:   "presta",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 88.5 {
		t.Errorf("got %+v", rs)
	}
	// Focus subtree match.
	rs, err = s.Query("1", perfdata.Query{
		Metric: "latency",
		Foci:   []string{"/Comm/bidir"},
		Time:   perfdata.TimeRange{Start: 0, End: 120},
		Type:   perfdata.UndefinedType,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 12.25 {
		t.Errorf("got %+v", rs)
	}
	// No match.
	rs, err = s.Query("1", perfdata.Query{Metric: "nope", Time: perfdata.TimeRange{Start: 0, End: 120}, Type: perfdata.UndefinedType})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("got %+v", rs)
	}
}

func TestWriteDirAndOpenDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rma")
	if err := WriteDir(sampleDataset(), dir); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Execution("2")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Results) != 1 || e.Results[0].Value != 91 {
		t.Errorf("got %+v", e.Results)
	}
	// Files are really on disk.
	if _, err := os.Stat(filepath.Join(dir, IndexFile)); err != nil {
		t.Errorf("index file: %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(&Dataset{}); err == nil {
		t.Error("empty dataset name: want error")
	}
	if _, err := Encode(&Dataset{Name: "X", Execs: []Execution{{ID: "has space"}}}); err == nil {
		t.Error("bad execution ID: want error")
	}
}

func TestOpenIndexErrors(t *testing.T) {
	cases := map[string]string{
		"missing application": "meta a b\n",
		"bad directive":       "application X\nbogus\n",
		"short execution":     "application X\nexecution 1\n",
		"duplicate execution": "application X\nexecution 1 a.txt\nexecution 1 b.txt\n",
		"meta no key":         "application X\nmeta\n",
	}
	for name, content := range cases {
		fsys := fstest.MapFS{IndexFile: &fstest.MapFile{Data: []byte(content)}}
		if _, err := Open(fsys); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if _, err := Open(fstest.MapFS{}); err == nil {
		t.Error("missing index file: want error")
	}
}

func TestExecFileErrors(t *testing.T) {
	mk := func(content string) *Store {
		fsys := fstest.MapFS{
			IndexFile: &fstest.MapFile{Data: []byte("application X\nexecution 1 e.txt\n")},
			"e.txt":   &fstest.MapFile{Data: []byte(content)},
		}
		s, err := Open(fsys)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := map[string]string{
		"missing execution line": "attr a b\nend\n",
		"wrong ID":               "execution 2\nend\n",
		"bad timerange":          "execution 1\ntimerange 5 1\nend\n",
		"short data":             "execution 1\ndata a b\nend\n",
		"bad data number":        "execution 1\ndata m /f t x 1 2\nend\n",
		"unknown directive":      "execution 1\nwhatever\nend\n",
		"missing end":            "execution 1\ndata m /f t 0 1 2\n",
	}
	for name, content := range cases {
		s := mk(content)
		if _, err := s.Execution("1"); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	fsys := fstest.MapFS{
		IndexFile: &fstest.MapFile{Data: []byte("# comment\n\napplication X\nexecution 1 e.txt\n")},
		"e.txt": &fstest.MapFile{Data: []byte(
			"# header comment\nexecution 1\n\nattr a b\ntimerange 0 1\ncolumns metric focus type start end value\ndata m /f t 0 1 2\nend\n")},
	}
	s, err := Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Execution("1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Results) != 1 || e.Attrs["a"] != "b" {
		t.Errorf("got %+v", e)
	}
}

func TestAttrValuesWithSpaces(t *testing.T) {
	ds := &Dataset{
		Name: "X",
		Execs: []Execution{{
			ID:    "1",
			Attrs: map[string]string{"description": "a longer value with spaces"},
			Time:  perfdata.TimeRange{Start: 0, End: 1},
		}},
	}
	files, err := Encode(ds)
	if err != nil {
		t.Fatal(err)
	}
	fsys := fstest.MapFS{}
	for n, c := range files {
		fsys[n] = &fstest.MapFile{Data: c}
	}
	s, err := Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Execution("1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs["description"] != "a longer value with spaces" {
		t.Errorf("attr = %q", e.Attrs["description"])
	}
}

func TestLargeDatasetRoundTrip(t *testing.T) {
	ds := &Dataset{Name: "big"}
	var results []perfdata.Result
	for i := 0; i < 2000; i++ {
		results = append(results, perfdata.Result{
			Metric: "bandwidth",
			Focus:  "/Comm/unidir/" + strings.Repeat("x", i%5),
			Type:   "presta",
			Time:   perfdata.TimeRange{Start: float64(i), End: float64(i + 1)},
			Value:  float64(i) * 1.5,
		})
	}
	ds.Execs = []Execution{{ID: "1", Attrs: map[string]string{}, Time: perfdata.TimeRange{Start: 0, End: 2000}, Results: results}}
	files, err := Encode(ds)
	if err != nil {
		t.Fatal(err)
	}
	fsys := fstest.MapFS{}
	for n, c := range files {
		fsys[n] = &fstest.MapFile{Data: c}
	}
	s, err := Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Execution("1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Results) != 2000 {
		t.Fatalf("results = %d", len(e.Results))
	}
	if !reflect.DeepEqual(e.Results, results) {
		t.Error("large dataset mangled in round trip")
	}
}

// TestAppendResultsByteIdentity pins the append contract: after
// AppendResults the stored file is byte-for-byte what Encode would have
// written for the extended dataset — so a store grown by appends is
// indistinguishable from one encoded from the final data.
func TestAppendResultsByteIdentity(t *testing.T) {
	ds := sampleDataset()
	files, err := Encode(ds)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	adds := []perfdata.Result{
		{Metric: "bandwidth", Focus: "/Comm/unidir/4096", Type: "presta", Time: perfdata.TimeRange{Start: 20, End: 30}, Value: 104.5},
		{Metric: "jitter", Focus: "/Comm/bidir/8", Type: "presta2", Time: perfdata.TimeRange{Start: 30, End: 40}, Value: 0.125},
	}
	// Two calls: the splice must compose, not just work once.
	if err := s.AppendResults("1", adds[:1]); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResults("1", adds[1:]); err != nil {
		t.Fatal(err)
	}
	ext := sampleDataset()
	ext.Execs[0].Results = append(ext.Execs[0].Results, adds...)
	wantFiles, err := Encode(ext)
	if err != nil {
		t.Fatal(err)
	}
	// OpenFiles shares the caller's map, so files holds the live content.
	if string(files["exec_1.txt"]) != string(wantFiles["exec_1.txt"]) {
		t.Fatalf("appended file diverges from re-encode:\n%s\n--- want ---\n%s",
			files["exec_1.txt"], wantFiles["exec_1.txt"])
	}
	e, err := s.Execution("1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Results, ext.Execs[0].Results) {
		t.Error("parsed results diverge from extended dataset")
	}
}

// TestAppendResultsErrors pins the rejection shapes: fields a
// whitespace-separated record cannot hold, unknown executions, and
// stores not opened over in-memory file sets — all without mutating the
// stored content.
func TestAppendResultsErrors(t *testing.T) {
	files, err := Encode(sampleDataset())
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	before := string(files["exec_1.txt"])
	ok := perfdata.Result{Metric: "bandwidth", Focus: "/Comm/unidir/8", Type: "presta", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: 1}
	for name, bad := range map[string]perfdata.Result{
		"space in metric": {Metric: "band width", Focus: "/", Type: "t", Value: 1},
		"tab in focus":    {Metric: "m", Focus: "/a\tb", Type: "t", Value: 1},
		"empty type":      {Metric: "m", Focus: "/", Type: "", Value: 1},
		"newline in type": {Metric: "m", Focus: "/", Type: "t\nu", Value: 1},
	} {
		if err := s.AppendResults("1", []perfdata.Result{bad}); err == nil {
			t.Errorf("%s: append did not error", name)
		}
	}
	if err := s.AppendResults("nosuch", []perfdata.Result{ok}); err == nil {
		t.Error("append to unknown execution did not error")
	}
	if err := s.AppendResults("1", nil); err != nil {
		t.Errorf("empty append: %v", err)
	}
	if got := string(files["exec_1.txt"]); got != before {
		t.Error("rejected appends mutated the stored file")
	}
	// Stores over arbitrary fs.FS values (directories, MapFS) are
	// read-only.
	if err := openSample(t).AppendResults("1", []perfdata.Result{ok}); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("append to fs.FS-backed store: %v, want read-only error", err)
	}
}
