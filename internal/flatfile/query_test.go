package flatfile

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pperfgrid/internal/perfdata"
)

// queryOracle is the retained full-materialization path: parse
// everything, then filter with perfdata.Query.Matches — the semantics
// QueryAppend's byte-level scan must reproduce exactly.
func queryOracle(s *Store, id string, q perfdata.Query) ([]perfdata.Result, error) {
	e, err := s.Execution(id)
	if err != nil {
		return nil, err
	}
	var out []perfdata.Result
	for _, r := range e.Results {
		if q.Matches(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

func randDataset(rng *rand.Rand, execs int) *Dataset {
	metrics := []string{"bandwidth", "latency", "m_1"}
	foci := []string{"/", "/Process/0", "/Process/1", "/Code/MPI/MPI_Put", "/Code/MPI", "/Machine/n0"}
	types := []string{"presta", "vampir", "UNDEFINED"}
	ds := &Dataset{Name: "rand", Meta: []perfdata.KV{{Name: "v", Value: "1"}}}
	for e := 0; e < execs; e++ {
		ex := Execution{
			ID:    fmt.Sprintf("e%d", e),
			Attrs: map[string]string{"np": fmt.Sprint(1 + rng.Intn(8)), "note": "two words"},
			Time:  perfdata.TimeRange{Start: 0, End: 100},
		}
		for r, n := 0, 5+rng.Intn(40); r < n; r++ {
			start := rng.Float64() * 90
			ex.Results = append(ex.Results, perfdata.Result{
				Metric: metrics[rng.Intn(len(metrics))],
				Focus:  foci[rng.Intn(len(foci))],
				Type:   types[rng.Intn(len(types))],
				Time:   perfdata.TimeRange{Start: start, End: start + rng.Float64()*10},
				Value:  rng.NormFloat64() * 1000,
			})
		}
		ds.Execs = append(ds.Execs, ex)
	}
	return ds
}

func TestQueryAppendMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ds := randDataset(rng, 4)
	files, err := Encode(ds)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	queries := []perfdata.Query{
		{Metric: "bandwidth", Type: perfdata.UndefinedType, Time: perfdata.TimeRange{Start: 0, End: 100}},
		{Metric: "bandwidth", Type: "presta", Time: perfdata.TimeRange{Start: 20, End: 60}},
		{Metric: "latency", Type: "vampir", Time: perfdata.TimeRange{Start: 0, End: 100}, Foci: []string{"/Code/MPI"}},
		{Metric: "m_1", Type: perfdata.UndefinedType, Time: perfdata.TimeRange{Start: 0, End: 100}, Foci: []string{"/Process/0", "/Machine"}},
		{Metric: "nope", Type: perfdata.UndefinedType, Time: perfdata.TimeRange{Start: 0, End: 100}},
		{Metric: "bandwidth", Type: perfdata.UndefinedType, Time: perfdata.TimeRange{Start: 200, End: 300}},
		{Metric: "bandwidth", Type: perfdata.UndefinedType, Time: perfdata.TimeRange{Start: 0, End: 100}, Foci: []string{"/"}},
		{Metric: "bandwidth", Type: perfdata.UndefinedType, Time: perfdata.TimeRange{Start: 0, End: 100}, Foci: []string{"/Code/MPI/"}},
	}
	for i := 0; i < 60; i++ {
		e := ds.Execs[rng.Intn(len(ds.Execs))]
		q := queries[rng.Intn(len(queries))]
		want, werr := queryOracle(s, e.ID, q)
		got, gerr := s.Query(e.ID, q)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error divergence for %s %+v: %v vs %v", e.ID, q, gerr, werr)
		}
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("result divergence for %s %+v:\nbyte-path %v\noracle    %v", e.ID, q, got, want)
		}
	}
	// dst-appending form preserves the prefix.
	prefix := []perfdata.Result{{Metric: "sentinel"}}
	out, err := s.QueryAppend(ds.Execs[0].ID, queries[0], prefix)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Metric != "sentinel" {
		t.Fatal("QueryAppend clobbered dst prefix")
	}
}

// TestQueryAppendErrorShapes pins the byte-level scan's error parity with
// the oracle parse on malformed files.
func TestQueryAppendErrorShapes(t *testing.T) {
	good := "execution e1\nattr np 4\ntimerange 0 100\ncolumns metric focus type start end value\n" +
		"data bandwidth / presta 0 10 5.5\nend\n"
	cases := map[string]string{
		"good":             good,
		"missing-end":      strings.Replace(good, "end\n", "", 1),
		"bad-data-fields":  strings.Replace(good, "data bandwidth / presta 0 10 5.5", "data bandwidth / presta 0 10", 1),
		"bad-data-number":  strings.Replace(good, "0 10 5.5", "0 ten 5.5", 1),
		"bad-timerange":    strings.Replace(good, "timerange 0 100", "timerange 100 0", 1),
		"unknown":          strings.Replace(good, "attr np 4", "bogus directive", 1),
		"wrong-id":         strings.Replace(good, "execution e1", "execution other", 1),
		"missing-exec":     strings.Replace(good, "execution e1\n", "", 1),
		"attr-missing-arg": strings.Replace(good, "attr np 4", "attr", 1),
		"exec-extra-arg":   strings.Replace(good, "execution e1", "execution e1 junk", 1),
		"comments-blank":   "# c\n\n" + good,
	}
	q := perfdata.Query{Metric: "bandwidth", Type: perfdata.UndefinedType, Time: perfdata.TimeRange{Start: 0, End: 100}}
	for name, content := range cases {
		files := map[string][]byte{
			IndexFile:     []byte("application a\nexecution e1 exec_e1.txt\n"),
			"exec_e1.txt": []byte(content),
		}
		s, err := OpenFiles(files)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		want, werr := queryOracle(s, "e1", q)
		got, gerr := s.Query("e1", q)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: error divergence: byte-path %v, oracle %v", name, gerr, werr)
		}
		if werr != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: result divergence: %v vs %v", name, got, want)
		}
	}
}

// TestQueryAppendAllocs pins the pooled-scratch contract: a warmed
// repeat query allocates proportionally to its matches, not to the file
// size (non-matching records cost nothing).
func TestQueryAppendAllocs(t *testing.T) {
	var ds Dataset
	ds.Name = "alloc"
	ex := Execution{ID: "e1", Attrs: map[string]string{"np": "4"}, Time: perfdata.TimeRange{Start: 0, End: 100}}
	for i := 0; i < 500; i++ {
		ex.Results = append(ex.Results, perfdata.Result{
			Metric: "other", Focus: "/Process/0", Type: "presta",
			Time: perfdata.TimeRange{Start: 0, End: 1}, Value: float64(i),
		})
	}
	ds.Execs = append(ds.Execs, ex)
	files, err := Encode(&ds)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	q := perfdata.Query{Metric: "bandwidth", Type: perfdata.UndefinedType, Time: perfdata.TimeRange{Start: 0, End: 100}}
	dst := make([]perfdata.Result, 0, 8)
	run := func() {
		var err error
		dst, err = s.QueryAppend("e1", q, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	run()
	allocs := testing.AllocsPerRun(20, run)
	if allocs > 12 {
		t.Fatalf("no-match scan over 500 records allocates %.1f times per query, want a small constant (<= 12)", allocs)
	}
	t.Logf("no-match 500-record scan: %.1f allocs/query", allocs)
}
