package experiment

import (
	"fmt"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

// StoreFormatRow is one storage format's measured query cost over the same
// dataset content.
type StoreFormatRow struct {
	Format        string
	MeanTotalMs   float64
	MeanMappingMs float64
	MeanOverhead  float64
}

// RunStoreFormatComparison implements the paper's first future-work test:
// "an XML version of the HPL data store should be used to compare
// performance and overhead between data stores of the same content but
// different formats." The same HPL dataset is served from the single-table
// relational store, the native-XML store, and flat text files; the same
// getPR queries are timed at both layers against each.
//
// No latency calibration is applied here — the comparison is between the
// real mapping costs of the three formats on this stack.
func RunStoreFormatComparison(cfg Config, queries int) ([]StoreFormatRow, error) {
	cfg = cfg.withDefaults()
	if queries <= 0 {
		queries = 50
	}
	d := datagen.HPL(datagen.HPLConfig{Executions: 24, Seed: cfg.Seed})

	builders := []struct {
		name  string
		build func() (mapping.ApplicationWrapper, error)
	}{
		{"RDBMS (single table)", func() (mapping.ApplicationWrapper, error) { return mapping.NewWideTable(d) }},
		{"native XML", func() (mapping.ApplicationWrapper, error) { return mapping.NewXML(d) }},
		{"flat text files", func() (mapping.ApplicationWrapper, error) { return mapping.NewFlatFile(d) }},
	}
	var out []StoreFormatRow
	for _, bld := range builders {
		w, err := bld.build()
		if err != nil {
			return nil, err
		}
		timed := NewTimedWrapper(w)
		site, err := core.StartSite(core.SiteConfig{
			AppName:    "HPL",
			Wrappers:   []mapping.ApplicationWrapper{timed},
			CachingOff: true,
		})
		if err != nil {
			return nil, err
		}
		row, err := measureFormat(site, timed, d, queries)
		site.Close()
		if err != nil {
			return nil, fmt.Errorf("experiment: format %s: %w", bld.name, err)
		}
		row.Format = bld.name
		out = append(out, row)
	}
	return out, nil
}

func measureFormat(site *core.Site, timed *TimedWrapper, d *datagen.Dataset, queries int) (StoreFormatRow, error) {
	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		return StoreFormatRow{}, err
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil {
		return StoreFormatRow{}, err
	}
	var total, mappingS Sample
	for i := 0; i < queries; i++ {
		e := d.Execs[i%len(d.Execs)]
		q := perfdata.Query{Metric: "gflops", Time: e.Time, Type: "hpl"}
		ref := refs[i%len(refs)]
		timed.Rec.Reset()
		start := time.Now()
		if _, err := ref.PerformanceResults(q); err != nil {
			return StoreFormatRow{}, err
		}
		elapsed := float64(time.Since(start)) / float64(time.Millisecond)
		durs := timed.Rec.Durations()
		if len(durs) != 1 {
			return StoreFormatRow{}, fmt.Errorf("recorder saw %d calls", len(durs))
		}
		total.Add(elapsed)
		mappingS.Add(float64(durs[0]) / float64(time.Millisecond))
	}
	return StoreFormatRow{
		MeanTotalMs:   total.Mean(),
		MeanMappingMs: mappingS.Mean(),
		MeanOverhead:  total.Mean() - mappingS.Mean(),
	}, nil
}

// RenderStoreFormats formats the comparison.
func RenderStoreFormats(rows []StoreFormatRow) string {
	header := []string{"Store format", "Total (ms)", "Mapping (ms)", "Overhead (ms)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Format, Fmt(r.MeanTotalMs), Fmt(r.MeanMappingMs), Fmt(r.MeanOverhead)})
	}
	return viz.Table("Future work — same HPL content, three store formats (uncalibrated)", header, cells)
}
