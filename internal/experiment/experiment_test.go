package experiment

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.COV() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample stats nonzero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if math.Abs(s.StdDev()-2.138) > 0.01 {
		t.Errorf("StdDev = %v", s.StdDev())
	}
	if math.Abs(s.COV()-s.StdDev()/5) > 1e-12 {
		t.Errorf("COV = %v", s.COV())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Percentile(50) != 4 {
		t.Errorf("P50 = %v", s.Percentile(50))
	}
	if s.Percentile(100) != 9 {
		t.Errorf("P100 = %v", s.Percentile(100))
	}
}

func TestSpeedupAndRelativeChange(t *testing.T) {
	if Speedup(100, 50) != 2 {
		t.Errorf("Speedup = %v", Speedup(100, 50))
	}
	if Speedup(1, 0) != 0 {
		t.Error("Speedup div by zero")
	}
	if RelativeChange(100, 50) != 100 {
		t.Errorf("RelativeChange = %v", RelativeChange(100, 50))
	}
	if RelativeChange(1, 0) != 0 {
		t.Error("RelativeChange div by zero")
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Record(10*time.Millisecond, 100)
	r.Record(20*time.Millisecond, 300)
	if got := r.MeanMillis(); got != 15 {
		t.Errorf("MeanMillis = %v", got)
	}
	if got := r.MeanBytes(); got != 200 {
		t.Errorf("MeanBytes = %v", got)
	}
	if len(r.Durations()) != 2 {
		t.Error("Durations")
	}
	r.Reset()
	if r.MeanMillis() != 0 || len(r.Durations()) != 0 {
		t.Error("Reset failed")
	}
}

func TestTimedWrapperRecords(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: 51})
	tw := NewTimedWrapper(mapping.NewMemory(d))
	ew, err := tw.ExecutionWrapper("100")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ew.TimeStartEnd()
	rs, err := ew.PerformanceResults(perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"})
	if err != nil || len(rs) != 1 {
		t.Fatalf("getPR: %v, %v", rs, err)
	}
	durs := tw.Rec.Durations()
	if len(durs) != 1 || durs[0] <= 0 {
		t.Errorf("recorded %v", durs)
	}
	if tw.Rec.MeanBytes() <= 0 {
		t.Error("payload bytes not recorded")
	}
}

// quickCfg keeps experiment runs fast for unit tests.
func quickCfg() Config {
	return Config{
		Scale: 0.001,
		Seed:  7,
		SMG98: datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 4},
	}
}

func TestRunTable4Quick(t *testing.T) {
	report, err := RunTable4(Table4Config{Config: quickCfg(), QueriesPerSource: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 3 {
		t.Fatalf("rows = %d", len(report.Rows))
	}
	for _, row := range report.Rows {
		if row.Queries != 6 {
			t.Errorf("%s: queries = %d", row.Source, row.Queries)
		}
		if row.MeanTotalMs <= 0 || row.MeanMappingMs <= 0 {
			t.Errorf("%s: nonpositive times %+v", row.Source, row)
		}
		if row.MeanTotalMs < row.MeanMappingMs {
			t.Errorf("%s: total %v < mapping %v", row.Source, row.MeanTotalMs, row.MeanMappingMs)
		}
		if row.BytesPerQuery <= 0 {
			t.Errorf("%s: no payload bytes", row.Source)
		}
	}
	// Payload ordering is structural, not timing-dependent: SMG > RMA > HPL.
	byName := map[string]Table4Row{}
	for _, r := range report.Rows {
		byName[r.Source] = r
	}
	if !(byName["SMG98"].BytesPerQuery > byName["RMA"].BytesPerQuery &&
		byName["RMA"].BytesPerQuery > byName["HPL"].BytesPerQuery) {
		t.Errorf("payload ordering wrong: %+v", byName)
	}
	// SMG98's mapping dominance is structural too (calibrated latency).
	if byName["SMG98"].OverheadPct >= byName["HPL"].OverheadPct {
		t.Errorf("SMG98 overhead%% %v not below HPL %v",
			byName["SMG98"].OverheadPct, byName["HPL"].OverheadPct)
	}
	text := report.Render()
	for _, want := range []string{"Table 4", "paper reference", "Shape checks", "HPL", "RMA", "SMG98"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunTable5Quick(t *testing.T) {
	report, err := RunTable5(Table5Config{Config: quickCfg(), QueriesPerRun: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 3 {
		t.Fatalf("rows = %d", len(report.Rows))
	}
	byName := map[string]Table5Row{}
	for _, row := range report.Rows {
		byName[row.Source] = row
		if row.MeanOffMs <= 0 || row.MeanOnMs <= 0 {
			t.Errorf("%s: nonpositive means %+v", row.Source, row)
		}
		if row.Speedup < 0.9 {
			t.Errorf("%s: caching slowed queries: %+v", row.Source, row)
		}
	}
	// SMG98's caching win is structural: the calibrated mapping time is
	// skipped entirely on hits.
	if byName["SMG98"].Speedup < 2 {
		t.Errorf("SMG98 speedup = %v, want clearly > 1", byName["SMG98"].Speedup)
	}
	text := report.Render()
	if !strings.Contains(text, "Table 5") || !strings.Contains(text, "Speedup") {
		t.Error("render incomplete")
	}
}

func TestRunFigure12Quick(t *testing.T) {
	report, err := RunFigure12(Figure12Config{
		Config:          quickCfg(),
		ExecutionCounts: []int{2, 8},
		Repeats:         3,
		BatchRuns:       2,
		HostCounts:      []int{2, 4}, // 1-host baseline is prepended
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 4}; !reflect.DeepEqual(report.HostCounts, want) {
		t.Fatalf("host axis = %v, want %v", report.HostCounts, want)
	}
	if len(report.Points) != 2 {
		t.Fatalf("points = %d", len(report.Points))
	}
	for _, p := range report.Points {
		for _, h := range report.HostCounts {
			if p.WallMs[h] <= 0 {
				t.Errorf("nonpositive wall time at %d execs / %d hosts: %+v", p.Executions, h, p)
			}
		}
		for _, h := range report.HostCounts[1:] {
			if p.Speedup[h] <= 0 {
				t.Errorf("nonpositive speedup at %d execs / %d hosts", p.Executions, h)
			}
		}
	}
	// getAllExecs instantiated the full dataset on every replicated
	// configuration, interleaved within ±1 (62/62 on 2 hosts, 31×4 on 4).
	for _, h := range report.HostCounts[1:] {
		counts := report.InstanceCounts[h]
		if len(counts) != h {
			t.Fatalf("%d-host instance counts = %v", h, counts)
		}
		total, lo, hi := 0, -1, -1
		for _, c := range counts {
			total += c
			if lo == -1 || c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if total != 124 {
			t.Errorf("%d hosts: instances created = %d, want 124", h, total)
		}
		if hi-lo > 1 {
			t.Errorf("%d hosts: unbalanced distribution: %v", h, counts)
		}
	}
	text := report.Render()
	for _, want := range []string{"Figure 12", "Mean speedup", "Non-Optimized", "4 hosts", "Shape checks"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunFigure12SweepPolicies(t *testing.T) {
	sweep, err := RunFigure12Sweep(Figure12Config{
		Config:          quickCfg(),
		ExecutionCounts: []int{2, 4},
		Repeats:         2,
		BatchRuns:       1,
		HostCounts:      []int{2},
	}, []string{"interleave", "least-loaded"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Reports) != 2 {
		t.Fatalf("reports = %d", len(sweep.Reports))
	}
	if sweep.Reports[0].Policy != "interleave" || sweep.Reports[1].Policy != "least-loaded" {
		t.Errorf("policies = %q, %q", sweep.Reports[0].Policy, sweep.Reports[1].Policy)
	}
	if !strings.Contains(sweep.Render(), "mean speedup per replica policy") {
		t.Error("sweep render missing cross-policy summary")
	}
}

func TestNewSourceUnknown(t *testing.T) {
	if _, err := NewSource("nope", Config{}); err == nil {
		t.Error("want error")
	}
}

func TestSourceQueryForCycles(t *testing.T) {
	src, err := NewHPLSource(Config{Scale: 0.0001, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	id0, q0 := src.QueryFor(0)
	idN, _ := src.QueryFor(len(src.Dataset.Execs))
	if id0 != idN {
		t.Error("QueryFor does not cycle")
	}
	if q0.Metric != "gflops" || q0.Type != "hpl" {
		t.Errorf("query = %+v", q0)
	}
	if len(src.ExecIDs()) != 124 {
		t.Errorf("ExecIDs = %d", len(src.ExecIDs()))
	}
}

func TestFmt(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		1234.5:   "1234.5",
		12.345:   "12.35",
		0.004567: "0.0046",
	}
	for in, want := range cases {
		if got := Fmt(in); got != want {
			t.Errorf("Fmt(%v) = %q, want %q", in, got, want)
		}
	}
}
