package experiment

import (
	"fmt"
	"strings"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/viz"
)

// Table4Config tunes the overhead experiment (section 6.4).
type Table4Config struct {
	Config
	// QueriesPerSource overrides the paper's counts (100 for HPL and RMA,
	// 30 for SMG98) when > 0 — used by quick test runs.
	QueriesPerSource int
	// Sources restricts the experiment; nil runs all three.
	Sources []string
}

// Table4Row is one measured row of the reproduced Table 4.
type Table4Row struct {
	Source        string
	Queries       int
	MeanTotalMs   float64
	MeanMappingMs float64
	MeanOverhead  float64
	OverheadPct   float64
	COV           float64
	BytesPerQuery float64
}

// Table4Report is the reproduced Table 4 with the paper's reference rows.
type Table4Report struct {
	Rows  []Table4Row
	Paper []PaperTable4Row
}

// paperQueryCount reproduces section 6.4's sample sizes.
func paperQueryCount(source string) int {
	if source == "SMG98" {
		return 30
	}
	return 100
}

// bindRefs binds a client to the source and resolves every execution to
// its ExecutionRef, keyed by execution ID (setup work, not timed).
func bindRefs(s *Source) (map[string]*client.ExecutionRef, error) {
	c := client.NewWithoutRegistry()
	b, err := c.BindFactory(s.Name, s.Site.ApplicationFactoryHandle())
	if err != nil {
		return nil, err
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*client.ExecutionRef, len(refs))
	for _, ref := range refs {
		info, err := ref.Info()
		if err != nil {
			return nil, err
		}
		if len(info) == 0 || info[0].Name != "id" {
			return nil, fmt.Errorf("experiment: getInfo of %s lacks id", ref.Handle)
		}
		out[info[0].Value] = ref
	}
	return out, nil
}

// RunTable4 measures grid-services overhead per data source: each getPR is
// timed at the Virtualization Layer (the client stub call) and at the
// Mapping Layer (the wrapper), overhead being the difference. Caching is
// off so every query pays the full mapping cost, and client and services
// share one machine to eliminate network variability, per the paper.
func RunTable4(cfg Table4Config) (*Table4Report, error) {
	names := cfg.Sources
	if names == nil {
		names = AllSourceNames
	}
	base := cfg.Config
	base.CachingOff = true
	base.Replicas = 1

	report := &Table4Report{Paper: PaperTable4}
	for _, name := range names {
		src, err := NewSource(name, base)
		if err != nil {
			return nil, err
		}
		row, err := runTable4Source(src, cfg)
		src.Close()
		if err != nil {
			return nil, err
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

func runTable4Source(src *Source, cfg Table4Config) (Table4Row, error) {
	refs, err := bindRefs(src)
	if err != nil {
		return Table4Row{}, err
	}
	n := cfg.QueriesPerSource
	if n <= 0 {
		n = paperQueryCount(src.Name)
	}
	var total, mappingS, overhead Sample
	var bytes Sample
	for i := 0; i < n; i++ {
		execID, q := src.QueryFor(i)
		ref, ok := refs[execID]
		if !ok {
			return Table4Row{}, fmt.Errorf("experiment: no ref for execution %s", execID)
		}
		src.Rec.Reset()
		start := time.Now()
		rs, err := ref.PerformanceResults(q)
		if err != nil {
			return Table4Row{}, fmt.Errorf("experiment: %s query %d: %w", src.Name, i, err)
		}
		elapsed := time.Since(start)
		durs := src.Rec.Durations()
		if len(durs) != 1 {
			return Table4Row{}, fmt.Errorf("experiment: recorder saw %d mapping calls for one query", len(durs))
		}
		totalMs := float64(elapsed) / float64(time.Millisecond)
		mapMs := float64(durs[0]) / float64(time.Millisecond)
		total.Add(totalMs)
		mappingS.Add(mapMs)
		overhead.Add(totalMs - mapMs)
		bytes.Add(float64(payloadBytes(rs)))
	}
	row := Table4Row{
		Source:        src.Name,
		Queries:       n,
		MeanTotalMs:   total.Mean(),
		MeanMappingMs: mappingS.Mean(),
		MeanOverhead:  overhead.Mean(),
		COV:           total.COV(),
		BytesPerQuery: bytes.Mean(),
	}
	if row.MeanTotalMs > 0 {
		row.OverheadPct = row.MeanOverhead / row.MeanTotalMs * 100
	}
	return row, nil
}

// Render prints the measured table next to the paper's values.
func (r *Table4Report) Render() string {
	header := []string{"Source", "Queries", "Total (ms)", "Mapping (ms)", "Overhead (ms)", "Overhead %", "COV", "Bytes/query"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Source, fmt.Sprint(row.Queries), Fmt(row.MeanTotalMs), Fmt(row.MeanMappingMs),
			Fmt(row.MeanOverhead), Fmt(row.OverheadPct) + "%", Fmt(row.COV), Fmt(row.BytesPerQuery),
		})
	}
	out := viz.Table("Table 4 — PPerfGrid Overhead (measured)", header, rows)
	var paperRows [][]string
	for _, row := range r.Paper {
		paperRows = append(paperRows, []string{
			row.Source, "-", Fmt(row.MeanTotalMs), Fmt(row.MeanMappingMs),
			Fmt(row.MeanOverhead), Fmt(row.OverheadPct) + "%", Fmt(row.COV), Fmt(row.BytesPerQuery),
		})
	}
	out += "\n" + viz.Table("Table 4 — paper reference values", header, paperRows)
	checks := r.CheckShape()
	out += "\nShape checks:\n"
	for _, c := range checks {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape evaluates the paper's qualitative findings against the
// measured rows, returning one "ok"/"MISMATCH" line per relationship.
func (r *Table4Report) CheckShape() []string {
	row := map[string]Table4Row{}
	for _, x := range r.Rows {
		row[x.Source] = x
	}
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	hpl, hasHPL := row["HPL"]
	rma, hasRMA := row["RMA"]
	smg, hasSMG := row["SMG98"]
	if hasHPL && hasRMA {
		check("RMA overhead % exceeds HPL's (payload-driven overhead)", rma.OverheadPct > hpl.OverheadPct)
		check("RMA transfers more bytes per query than HPL", rma.BytesPerQuery > hpl.BytesPerQuery)
		check("absolute overhead grows with payload (RMA > HPL)", rma.MeanOverhead > hpl.MeanOverhead)
	}
	if hasHPL && hasSMG {
		check("SMG98 overhead % is the smallest (mapping-dominated)", smg.OverheadPct < hpl.OverheadPct)
		check("SMG98 total time dwarfs HPL's", smg.MeanTotalMs > 10*hpl.MeanTotalMs)
	}
	if hasRMA && hasSMG {
		check("SMG98 overhead % below RMA's", smg.OverheadPct < rma.OverheadPct)
		check("SMG98 transfers the most bytes", smg.BytesPerQuery > rma.BytesPerQuery)
	}
	if hasHPL && hasRMA && hasSMG {
		order := []string{}
		for _, x := range []Table4Row{rma, hpl, smg} {
			order = append(order, x.Source)
		}
		check("overhead % ordering RMA > HPL > SMG98 (paper's 71/28/11)",
			rma.OverheadPct > hpl.OverheadPct && hpl.OverheadPct > smg.OverheadPct)
		_ = order
	}
	if len(out) == 0 {
		out = append(out, "no checks ran (need at least two sources)")
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *Table4Report) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}
