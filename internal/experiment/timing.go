package experiment

import (
	"sync"
	"time"

	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// Recorder accumulates per-call Mapping-Layer durations, the paper's
// "Mapping Layer class call to getPR was timed" instrumentation point.
type Recorder struct {
	mu        sync.Mutex
	durations []time.Duration
	bytes     []int
}

// Record stores one observation: the mapping-layer duration and the
// result payload size in bytes.
func (r *Recorder) Record(d time.Duration, payloadBytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.durations = append(r.durations, d)
	r.bytes = append(r.bytes, payloadBytes)
}

// Reset clears all observations.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.durations = r.durations[:0]
	r.bytes = r.bytes[:0]
}

// Durations returns a copy of the recorded durations.
func (r *Recorder) Durations() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.durations))
	copy(out, r.durations)
	return out
}

// MeanMillis returns the mean duration in milliseconds.
func (r *Recorder) MeanMillis() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.durations) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.durations {
		sum += d
	}
	return float64(sum) / float64(len(r.durations)) / float64(time.Millisecond)
}

// MeanBytes returns the mean result payload size.
func (r *Recorder) MeanBytes() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.bytes) == 0 {
		return 0
	}
	sum := 0
	for _, b := range r.bytes {
		sum += b
	}
	return float64(sum) / float64(len(r.bytes))
}

// payloadBytes approximates the wire size of a result list the way the
// paper approximated Java object sizes: the sum of the encoded strings.
func payloadBytes(rs []perfdata.Result) int {
	n := 0
	for _, s := range perfdata.EncodeResults(rs) {
		n += len(s)
	}
	return n
}

// TimedWrapper decorates an ApplicationWrapper so every getPR through it
// records its Mapping-Layer duration and payload size into a Recorder.
type TimedWrapper struct {
	mapping.ApplicationWrapper
	Rec *Recorder
}

// NewTimedWrapper wraps w with recording.
func NewTimedWrapper(w mapping.ApplicationWrapper) *TimedWrapper {
	return &TimedWrapper{ApplicationWrapper: w, Rec: &Recorder{}}
}

// ExecutionWrapper implements mapping.ApplicationWrapper.
func (t *TimedWrapper) ExecutionWrapper(id string) (mapping.ExecutionWrapper, error) {
	ew, err := t.ApplicationWrapper.ExecutionWrapper(id)
	if err != nil {
		return nil, err
	}
	return &timedExec{ExecutionWrapper: ew, rec: t.Rec}, nil
}

type timedExec struct {
	mapping.ExecutionWrapper
	rec *Recorder
}

func (e *timedExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	start := time.Now()
	rs, err := e.ExecutionWrapper.PerformanceResults(q)
	if err != nil {
		return nil, err
	}
	e.rec.Record(time.Since(start), payloadBytes(rs))
	return rs, nil
}

// AppendPerformanceResults forwards the vectorized cold path
// (mapping.ResultAppender) with the same per-call recording, so timed
// sources measure whichever path the Semantic Layer picks exactly once.
func (e *timedExec) AppendPerformanceResults(q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error) {
	a, ok := e.ExecutionWrapper.(mapping.ResultAppender)
	if !ok {
		rs, err := e.PerformanceResults(q) // records internally
		return append(dst, rs...), err
	}
	before := len(dst)
	start := time.Now()
	out, err := a.AppendPerformanceResults(q, dst)
	if err != nil {
		return out, err
	}
	e.rec.Record(time.Since(start), payloadBytes(out[before:]))
	return out, nil
}
