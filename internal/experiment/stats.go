// Package experiment implements the paper's evaluation (section 6): the
// measurement method, the three calibrated data sources, and one driver
// per table/figure — Table 4 (grid services overhead), Table 5
// (Performance Results caching), and Figure 12 (scalability) — plus
// ablation studies beyond the paper.
//
// Measurements follow section 6.2: wall-clock timing at two layers, the
// Virtualization Layer (the client-side stub call) and the Mapping Layer
// (the wrapper query), with overhead their difference. The paper used
// Java's System.currentTimeMillis; we use time.Now with the same
// subtraction scheme.
//
// Because the paper's testbed (440 MHz UltraSPARC servers, PostgreSQL
// 7.4.1, Globus GT3.2 on a JVM) is ~2 orders of magnitude slower than a
// modern host running this Go implementation, the Mapping Layer is
// calibrated: each source's wrapper is wrapped in a latency decorator
// whose per-query delay is the paper's measured Mapping-Layer time scaled
// by Config.Scale (default 1/100). The SOAP/marshalling overhead is NOT
// simulated — it is the real cost of this stack — so the experiments test
// whether the paper's *relationships* (overhead orderings, caching-speedup
// orderings, two-host speedup ≈ 2×) emerge from the reconstructed system
// rather than being painted onto it.
package experiment

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations and reports the statistics the paper's
// tables use: mean, standard deviation, and the coefficient of variation
// (COV = stddev / mean, "normalizes standard deviation with respect to the
// mean", section 6.4).
type Sample struct {
	values []float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// COV returns the coefficient of variation.
func (s *Sample) COV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / m
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.values))
	copy(sorted, s.values)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Speedup returns base/other — the paper's speedup convention (e.g. mean
// query time with caching off over caching on).
func Speedup(base, other float64) float64 {
	if other == 0 {
		return 0
	}
	return base / other
}

// RelativeChange returns (base-other)/other as a percentage — the paper's
// "Relative Change" rows.
func RelativeChange(base, other float64) float64 {
	if other == 0 {
		return 0
	}
	return (base - other) / other * 100
}

// Fmt renders a float with the table-friendly precision used in reports.
func Fmt(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
