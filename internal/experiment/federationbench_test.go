package experiment

import (
	"strings"
	"testing"
)

// A tiny end-to-end run of the federation sweep: one fault-free cell and
// one faulted cell over a live 2-site fleet. Keeps `go test ./...`
// covering the harness itself (fleet assembly, per-cell engine wiring,
// stats deltas, JSON row layout) without the full grid's runtime.
func TestRunFederationBenchTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("live multi-site fleet")
	}
	cfg := FederationBenchConfig{
		Seed:           7,
		SiteCounts:     []int{2},
		LatenciesMs:    []int{2},
		FailureRates:   []float64{0, 0.10},
		QueriesPerCell: 40,
	}
	rep, err := RunFederationBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Queries != cfg.QueriesPerCell {
			t.Errorf("cell %d sites %.0f%% fail: queries = %d, want %d", row.Sites, row.FailureRate*100, row.Queries, cfg.QueriesPerCell)
		}
		if row.P50Ms <= 0 || row.P99Ms < row.P50Ms {
			t.Errorf("cell %d sites %.0f%% fail: bad percentiles p50=%v p99=%v", row.Sites, row.FailureRate*100, row.P50Ms, row.P99Ms)
		}
	}
	clean := rep.row(2, 2, 0)
	if clean.Completeness != 1 {
		t.Errorf("fault-free completeness = %v, want 1", clean.Completeness)
	}
	faulted := rep.row(2, 2, 0.10)
	if faulted.Completeness < 0.9 {
		t.Errorf("faulted completeness = %v, want >= 0.9 (retries should absorb 10%% errors)", faulted.Completeness)
	}
	if out := rep.Render(); !strings.Contains(out, "sites") {
		t.Errorf("Render output missing table header:\n%s", out)
	}
}
