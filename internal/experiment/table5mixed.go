package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

// This file extends Table 5 to the mixed read/write regime the write
// path (PublishResults) opened: live Execution services over a shared
// star store, with writers streaming results in — the paper's
// future-work "data streamed in from a running application" — while
// readers re-query the hot set. Every publish bumps the target
// instance's epoch and purges its cache, so the measurement is the real
// cost of write-driven invalidation: how much of the read-only hit
// throughput survives when ingestion runs alongside.
//
// Writes are paced (WriteInterval) rather than closed-loop: a running
// application emits results at its own measurement rate, not at the
// store's CPU speed. The read/write worker ratio (95/5 and 50/50) sets
// how many paced writers run beside the readers.

// Table5MixedConfig tunes the mixed read/write experiment.
type Table5MixedConfig struct {
	Config
	// Readers lists the concurrent reader counts; nil means {1, 4, 16}.
	Readers []int
	// Mixes lists the reader/writer worker ratios to measure, as the
	// writer share of a 100-worker mix; nil means {5, 50} (95/5 and
	// 50/50). The read-only baseline (share 0) is always measured.
	Mixes []int
	// Executions is the number of live Execution instances (writes are
	// per-execution scoped; default 4).
	Executions int
	// HotQueries is the per-execution hot query set size (default 8).
	HotQueries int
	// OpsPerReader is each reader's minimum operation count (default
	// 20000).
	OpsPerReader int
	// MinDuration is the minimum wall time per cell: readers keep
	// cycling past OpsPerReader until it elapses, so the paced writers
	// participate in every cell even when reads are fast (default
	// 300ms).
	MinDuration time.Duration
	// WriteInterval paces each writer between publishes (default 2ms —
	// with the default batch of 8, 4000 results/sec per writer).
	WriteInterval time.Duration
	// WriteBatch is the number of results per publish (default 8).
	WriteBatch int
}

func (cfg Table5MixedConfig) withT5MDefaults() Table5MixedConfig {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Readers == nil {
		cfg.Readers = []int{1, 4, 16}
	}
	if cfg.Mixes == nil {
		cfg.Mixes = []int{5, 50}
	}
	if cfg.Executions <= 0 {
		cfg.Executions = 4
	}
	if cfg.HotQueries <= 0 {
		cfg.HotQueries = 8
	}
	if cfg.OpsPerReader <= 0 {
		cfg.OpsPerReader = 20000
	}
	if cfg.MinDuration <= 0 {
		cfg.MinDuration = 300 * time.Millisecond
	}
	if cfg.WriteInterval <= 0 {
		cfg.WriteInterval = 2 * time.Millisecond
	}
	if cfg.WriteBatch <= 0 {
		cfg.WriteBatch = 8
	}
	if cfg.CachePolicy == "" {
		cfg.CachePolicy = "cost"
	}
	return cfg
}

// Table5MixedRow is one (writer share, readers) measurement.
type Table5MixedRow struct {
	WriterShare int     `json:"writerShare"` // percent of a 100-worker mix; 0 = read-only baseline
	Readers     int     `json:"readers"`
	Writers     int     `json:"writers"`
	ReadsPerSec float64 `json:"readsPerSec"`
	MeanReadUs  float64 `json:"meanReadUs"`
	P99ReadUs   float64 `json:"p99ReadUs"`
	HitRate     float64 `json:"hitRate"`
	Writes      int64   `json:"writes"`      // publish calls completed
	Invalidated int64   `json:"invalidated"` // cache entries purged by writes
	Retention   float64 `json:"retention"`   // ReadsPerSec / read-only baseline at same reader count
}

// Table5MixedReport is the measured mixed read/write Table 5.
type Table5MixedReport struct {
	Policy        string           `json:"policy"`
	Executions    int              `json:"executions"`
	WriteInterval string           `json:"writeInterval"`
	WriteBatch    int              `json:"writeBatch"`
	Rows          []Table5MixedRow `json:"rows"`
}

// mixedServices builds the live topology: one star store over an
// E-execution SMG98 dataset, one cached ExecutionService per execution
// (the per-instance-cache topology of a real site).
func mixedServices(cfg Table5MixedConfig) ([]*core.ExecutionService, []perfdata.Query, error) {
	smg := cfg.SMG98
	smg.Executions = cfg.Executions
	smg.Seed = cfg.Seed
	d := datagen.SMG98(smg)
	star, err := mapping.NewStar(d)
	if err != nil {
		return nil, nil, err
	}
	svcs := make([]*core.ExecutionService, len(d.Execs))
	for i, e := range d.Execs {
		ew, err := star.ExecutionWrapper(e.ID)
		if err != nil {
			return nil, nil, err
		}
		cache := core.NewCacheFromConfig(core.CacheConfig{Policy: cfg.CachePolicy})
		svcs[i] = core.NewExecutionService(e.ID, ew, cache, nil)
	}
	tr := d.Execs[0].Time
	hot := make([]perfdata.Query, cfg.HotQueries)
	for i := range hot {
		hot[i] = perfdata.Query{
			Metric: "func_calls",
			Foci:   []string{fmt.Sprintf("/Process/%d", i%8)},
			Time:   perfdata.TimeRange{Start: float64(i), End: tr.End},
			Type:   "vampir",
		}
	}
	return svcs, hot, nil
}

// RunTable5Mixed measures read throughput and latency for each
// reader-count × writer-share cell, including the writer-free baseline
// retention is computed against.
func RunTable5Mixed(cfg Table5MixedConfig) (*Table5MixedReport, error) {
	cfg = cfg.withT5MDefaults()
	report := &Table5MixedReport{
		Policy:        cfg.CachePolicy,
		Executions:    cfg.Executions,
		WriteInterval: cfg.WriteInterval.String(),
		WriteBatch:    cfg.WriteBatch,
	}
	shares := append([]int{0}, cfg.Mixes...)
	baseline := map[int]float64{} // readers -> read-only ReadsPerSec
	for _, share := range shares {
		for _, readers := range cfg.Readers {
			row, err := table5MixedCell(cfg, share, readers)
			if err != nil {
				return nil, err
			}
			if share == 0 {
				baseline[readers] = row.ReadsPerSec
				row.Retention = 1
			} else if base := baseline[readers]; base > 0 {
				row.Retention = row.ReadsPerSec / base
			}
			report.Rows = append(report.Rows, row)
		}
	}
	return report, nil
}

// writersFor converts a writer share (percent of a 100-worker mix) into
// a writer count beside n readers: 5% beside 16 readers ≈ 1 writer,
// 50% beside 16 readers = 16 writers. Any nonzero share runs at least
// one writer.
func writersFor(share, readers int) int {
	if share <= 0 {
		return 0
	}
	w := readers * share / (100 - share)
	if w < 1 {
		w = 1
	}
	return w
}

func table5MixedCell(cfg Table5MixedConfig, share, readers int) (Table5MixedRow, error) {
	svcs, hot, err := mixedServices(cfg)
	if err != nil {
		return Table5MixedRow{}, err
	}
	// Warm every instance's hot set so the baseline starts from hits.
	for _, svc := range svcs {
		for _, q := range hot {
			if _, err := svc.PerformanceResults(q); err != nil {
				return Table5MixedRow{}, err
			}
		}
	}

	writers := writersFor(share, readers)
	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		writes    atomic.Int64
		runErr    atomic.Value
		samples   = make([][]float64, readers)
		readTotal atomic.Int64
	)
	fail := func(err error) { runErr.CompareAndSwap(nil, error(err)) }

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1e6 + int64(w)*104729))
			seq := 0
			for {
				select {
				case <-stop:
					return
				case <-time.After(cfg.WriteInterval):
				}
				svc := svcs[rng.Intn(len(svcs))]
				batch := make([]perfdata.Result, cfg.WriteBatch)
				for i := range batch {
					batch[i] = perfdata.Result{
						Metric: "func_calls",
						Focus:  fmt.Sprintf("/Process/%d/Code/MPI/MPI_Stream%d", 900+w, seq),
						Type:   "vampir",
						Time:   perfdata.TimeRange{Start: float64(seq % 60), End: float64(seq%60) + 1},
						Value:  float64(w*100000 + seq),
					}
					seq++
				}
				if err := svc.PublishResults(batch); err != nil {
					fail(err)
					return
				}
				writes.Add(1)
			}
		}(w)
	}

	var readersWG sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		readersWG.Add(1)
		go func(r int) {
			defer wg.Done()
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
			local := make([]float64, 0, cfg.OpsPerReader/4+1)
			ops := 0
			for i := 0; i < cfg.OpsPerReader || time.Since(start) < cfg.MinDuration; i++ {
				svc := svcs[rng.Intn(len(svcs))]
				q := hot[rng.Intn(len(hot))]
				t0 := time.Now()
				if _, err := svc.PerformanceResults(q); err != nil {
					fail(err)
					return
				}
				ops++
				if i%4 == 0 {
					local = append(local, float64(time.Since(t0))/float64(time.Microsecond))
				}
			}
			readTotal.Add(int64(ops))
			samples[r] = local
		}(r)
	}
	readersWG.Wait()
	wall := time.Since(start)
	close(stop)
	wg.Wait()
	if err, _ := runErr.Load().(error); err != nil {
		return Table5MixedRow{}, err
	}

	var lat Sample
	for _, s := range samples {
		for _, v := range s {
			lat.Add(v)
		}
	}
	var hits, misses, invalidated int64
	for _, svc := range svcs {
		c := svc.CacheStats()
		hits += c.Hits
		misses += c.Misses
		invalidated += svc.Invalidations()
	}
	row := Table5MixedRow{
		WriterShare: share,
		Readers:     readers,
		Writers:     writers,
		ReadsPerSec: float64(readTotal.Load()) / wall.Seconds(),
		MeanReadUs:  lat.Mean(),
		P99ReadUs:   lat.Percentile(99),
		Writes:      writes.Load(),
		Invalidated: invalidated,
	}
	if hits+misses > 0 {
		row.HitRate = float64(hits) / float64(hits+misses)
	}
	return row, nil
}

// row returns the (share, readers) measurement, or a zero row.
func (r *Table5MixedReport) row(share, readers int) Table5MixedRow {
	for _, row := range r.Rows {
		if row.WriterShare == share && row.Readers == readers {
			return row
		}
	}
	return Table5MixedRow{}
}

func (r *Table5MixedReport) maxReaders() int {
	out := 0
	for _, row := range r.Rows {
		if row.Readers > out {
			out = row.Readers
		}
	}
	return out
}

// RetentionAt returns the fraction of read-only throughput retained at
// one writer share and reader count (0 when either cell is missing).
func (r *Table5MixedReport) RetentionAt(share, readers int) float64 {
	return r.row(share, readers).Retention
}

// Render prints the mixed table and its shape checks.
func (r *Table5MixedReport) Render() string {
	header := []string{"Mix (R/W)", "Readers", "Writers", "Reads/s", "Mean read (µs)", "p99 read (µs)", "Hit rate", "Publishes", "Invalidated", "Retention"}
	var rows [][]string
	for _, row := range r.Rows {
		mix := "read-only"
		if row.WriterShare > 0 {
			mix = fmt.Sprintf("%d/%d", 100-row.WriterShare, row.WriterShare)
		}
		rows = append(rows, []string{
			mix, fmt.Sprint(row.Readers), fmt.Sprint(row.Writers), Fmt(row.ReadsPerSec),
			Fmt(row.MeanReadUs), Fmt(row.P99ReadUs), Fmt(row.HitRate),
			fmt.Sprint(row.Writes), fmt.Sprint(row.Invalidated), Fmt(row.Retention),
		})
	}
	title := fmt.Sprintf("Table 5 (mixed read/write) — live ingestion beside hot reads (policy=%s, executions=%d, write interval=%s, batch=%d)",
		r.Policy, r.Executions, r.WriteInterval, r.WriteBatch)
	out := viz.Table(title, header, rows)
	out += "Shape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape evaluates the write path's performance claims.
func (r *Table5MixedReport) CheckShape() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	max := r.maxReaders()
	for _, row := range r.Rows {
		if row.WriterShare == 0 {
			check(fmt.Sprintf("read-only@%d: warmed hot set serves from cache (hit rate ≥ 0.95)", row.Readers),
				row.HitRate >= 0.95)
		} else {
			check(fmt.Sprintf("%d/%d@%d: writers actually ran (publishes > 0) and invalidated entries", 100-row.WriterShare, row.WriterShare, row.Readers),
				row.Writes > 0 && row.Invalidated > 0)
		}
	}
	check(fmt.Sprintf("95/5@%d readers retains ≥ 50%% of read-only hit throughput", max),
		r.RetentionAt(5, max) >= 0.5)
	heavy := r.row(50, max)
	light := r.row(5, max)
	if heavy.Writes > 0 && light.Writes > 0 {
		check(fmt.Sprintf("50/50@%d publishes more than 95/5 (the mix knob works)", max),
			heavy.Writes > light.Writes)
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *Table5MixedReport) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}
