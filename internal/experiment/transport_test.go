package experiment

import (
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/soap"
)

func TestRunTransportCodecSweep(t *testing.T) {
	points, err := RunTransportCodecSweep([]int{1, 50}, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	for _, p := range points {
		if p.Legacy <= 0 || p.Fast <= 0 {
			t.Errorf("unmeasured point %+v", p)
		}
	}
	if soap.LegacyCodec() {
		t.Error("sweep left the legacy codec enabled")
	}
	if RenderTransportCodecSweep(points) == "" {
		t.Error("empty render")
	}
}

func TestRunTransportTable4(t *testing.T) {
	cfg := Table4Config{
		Config: Config{
			Scale: 0.001,
			Seed:  1,
			SMG98: datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8},
		},
		QueriesPerSource: 3,
		Sources:          []string{"HPL"},
	}
	report, err := RunTransportTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if soap.LegacyCodec() {
		t.Error("run left the legacy codec enabled")
	}
	if len(report.Rows) != 1 || report.Rows[0].Source != "HPL" {
		t.Fatalf("rows = %+v", report.Rows)
	}
	if report.Render() == "" {
		t.Error("empty render")
	}
}
