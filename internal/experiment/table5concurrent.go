package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

// This file extends the paper's Table 5 to the concurrent regime PR 3
// created: replicated hosts fan hundreds of simultaneous getPR calls into
// each Execution instance, so the Performance Results cache is measured
// under reader concurrency — hit throughput and tail latency versus
// reader count, for the retained single-lock cache against the sharded
// heap-evicting rebuild.
//
// The workload is SMG98-shaped cache traffic: a hot set of real decoded
// SMG98 result payloads that every reader re-queries (the paper's
// repeated-query scenario), plus a tail of small window queries that
// miss, fill, and force eviction churn at capacity. Under the lfu/cost
// policies the single-lock cache pays an O(n) victim scan inside its one
// mutex for every tail insertion — stalling all concurrent hits — while
// the sharded cache pays O(log n) on one shard.

// Table5ConcurrentConfig tunes the concurrent caching experiment.
type Table5ConcurrentConfig struct {
	Config
	// Readers lists the concurrent reader counts; nil means {1, 4, 16, 64}.
	Readers []int
	// Entries is the cache capacity in entries (default 4096). The tail
	// keeps the cache at capacity so every tail insertion evicts.
	Entries int
	// CacheBytes > 0 additionally byte-budgets the sharded cache
	// (the single-lock baseline predates byte accounting and ignores it).
	CacheBytes int64
	// TailFraction is the probability a reader op is a tail miss+insert
	// instead of a hot hit (default 0.05).
	TailFraction float64
	// HotQueries is the hot-set size (default 16).
	HotQueries int
	// OpsPerReader is each reader's operation count (default 20000).
	OpsPerReader int
}

func (cfg Table5ConcurrentConfig) withT5Defaults() Table5ConcurrentConfig {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Readers == nil {
		cfg.Readers = []int{1, 4, 16, 64}
	}
	if cfg.Entries <= 0 {
		cfg.Entries = 4096
	}
	if cfg.TailFraction <= 0 {
		cfg.TailFraction = 0.05
	}
	if cfg.HotQueries <= 0 {
		cfg.HotQueries = 16
	}
	if cfg.OpsPerReader <= 0 {
		cfg.OpsPerReader = 20000
	}
	if cfg.CachePolicy == "" {
		cfg.CachePolicy = "cost"
	}
	return cfg
}

// Table5ConcurrentRow is one (implementation, readers) measurement.
type Table5ConcurrentRow struct {
	Impl       string  `json:"impl"` // "single-lock" or "sharded"
	Readers    int     `json:"readers"`
	HitsPerSec float64 `json:"hitsPerSec"`
	MeanHitUs  float64 `json:"meanHitUs"`
	P99HitUs   float64 `json:"p99HitUs"`
	HitRate    float64 `json:"hitRate"`
	Evictions  int64   `json:"evictions"`
}

// Table5ConcurrentReport is the measured concurrent Table 5.
type Table5ConcurrentReport struct {
	Policy     string                `json:"policy"`
	Entries    int                   `json:"entries"`
	CacheBytes int64                 `json:"cacheBytes"`
	Rows       []Table5ConcurrentRow `json:"rows"`
}

// smg98CachePayloads builds real SMG98-shaped cache payloads: the hot
// whole-trace result set and a small tail-window result set, decoded
// through the production star-schema mapping wrapper.
func smg98CachePayloads(cfg Config) (hot, tail []perfdata.Result, err error) {
	d := datagen.SMG98(cfg.SMG98)
	star, err := mapping.NewStar(d)
	if err != nil {
		return nil, nil, err
	}
	ew, err := star.ExecutionWrapper(d.Execs[0].ID)
	if err != nil {
		return nil, nil, err
	}
	tr := d.Execs[0].Time
	hot, err = ew.PerformanceResults(perfdata.Query{Metric: "func_calls", Time: tr, Type: "vampir"})
	if err != nil {
		return nil, nil, err
	}
	fn := datagen.SMG98Functions[0]
	tail, err = ew.PerformanceResults(perfdata.Query{
		Metric: "excl_time",
		Foci:   []string{"/Process/0/Code/MPI/" + fn},
		Time:   perfdata.TimeRange{Start: 0, End: tr.End / 4},
		Type:   "vampir",
	})
	if err != nil {
		return nil, nil, err
	}
	return hot, tail, nil
}

// hotKeysFor derives n distinct hot query keys from real SMG98 getPR
// queries (per-process func_calls over shifted windows).
func hotKeysFor(n int, end float64) []string {
	keys := make([]string, n)
	for i := range keys {
		q := perfdata.Query{
			Metric: "func_calls",
			Foci:   []string{fmt.Sprintf("/Process/%d", i%8)},
			Time:   perfdata.TimeRange{Start: float64(i), End: end + float64(i)},
			Type:   "vampir",
		}
		keys[i] = q.Key()
	}
	return keys
}

// tailKeyFor derives a distinct tail query key (a per-function window
// query, the long tail of the SMG98 mix). Negative indexes (the prefill
// range) are distinct from every reader's positive range.
func tailKeyFor(i int64) string {
	n := i
	if n < 0 {
		n = -n
	}
	fn := datagen.SMG98Functions[int(n)%len(datagen.SMG98Functions)]
	q := perfdata.Query{
		Metric: "excl_time",
		Foci:   []string{fmt.Sprintf("/Process/%d/Code/MPI/%s", n%8, fn)},
		Time:   perfdata.TimeRange{Start: float64(n), End: float64(n) + 1},
		Type:   "vampir",
	}
	if i < 0 {
		q.Metric = "incl_time" // keep the prefill key space disjoint
	}
	return q.Key()
}

// RunTable5Concurrent measures cache hit throughput and latency under
// concurrency for the single-lock and sharded implementations.
func RunTable5Concurrent(cfg Table5ConcurrentConfig) (*Table5ConcurrentReport, error) {
	cfg = cfg.withT5Defaults()
	hotPayload, tailPayload, err := smg98CachePayloads(cfg.Config)
	if err != nil {
		return nil, err
	}
	hotKeys := hotKeysFor(cfg.HotQueries, 1e6)
	report := &Table5ConcurrentReport{Policy: cfg.CachePolicy, Entries: cfg.Entries, CacheBytes: cfg.CacheBytes}
	for _, impl := range []string{"single-lock", "sharded"} {
		for _, readers := range cfg.Readers {
			row, err := table5ConcurrentCell(cfg, impl, readers, hotKeys, hotPayload, tailPayload)
			if err != nil {
				return nil, err
			}
			report.Rows = append(report.Rows, row)
		}
	}
	return report, nil
}

func table5ConcurrentCell(cfg Table5ConcurrentConfig, impl string, readers int,
	hotKeys []string, hotPayload, tailPayload []perfdata.Result) (Table5ConcurrentRow, error) {
	cacheCfg := core.CacheConfig{
		Policy:     cfg.CachePolicy,
		MaxEntries: cfg.Entries,
		SingleLock: impl == "single-lock",
	}
	if impl == "sharded" {
		cacheCfg.MaxBytes = cfg.CacheBytes
	}
	c := core.NewCacheFromConfig(cacheCfg)

	// Prefill to capacity with tail entries so every tail insertion during
	// the run evicts, then install the hot set. Hot entries carry the
	// whole-trace mapping cost (the paper's ~66 s SMG98 query), tail
	// entries a millisecond window cost — so the cost policy protects the
	// hot set while the tail churns, and lru/lfu protect it through
	// recency/frequency.
	for i := 0; i < cfg.Entries; i++ {
		c.Put(tailKeyFor(int64(-i-1)), tailPayload, time.Millisecond)
	}
	for _, k := range hotKeys {
		c.Put(k, hotPayload, time.Minute)
	}

	before := c.Stats()
	samples := make([][]float64, readers)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
			local := make([]float64, 0, cfg.OpsPerReader/4+1)
			tailBase := int64(r+1) * 1e9
			for i := 0; i < cfg.OpsPerReader; i++ {
				if rng.Float64() < cfg.TailFraction {
					k := tailKeyFor(tailBase + int64(i))
					if _, ok := c.Get(k); !ok {
						c.Put(k, tailPayload, time.Millisecond)
					}
					continue
				}
				k := hotKeys[rng.Intn(len(hotKeys))]
				t0 := time.Now()
				c.Get(k)
				if i%4 == 0 {
					local = append(local, float64(time.Since(t0))/float64(time.Microsecond))
				}
			}
			samples[r] = local
		}(r)
	}
	wg.Wait()
	wall := time.Since(start)
	after := c.Stats()

	var lat Sample
	for _, s := range samples {
		for _, v := range s {
			lat.Add(v)
		}
	}
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	row := Table5ConcurrentRow{
		Impl:       impl,
		Readers:    readers,
		HitsPerSec: float64(hits) / wall.Seconds(),
		MeanHitUs:  lat.Mean(),
		P99HitUs:   lat.Percentile(99),
		Evictions:  after.Evictions - before.Evictions,
	}
	if hits+misses > 0 {
		row.HitRate = float64(hits) / float64(hits+misses)
	}
	return row, nil
}

// row returns the (impl, readers) measurement, or a zero row.
func (r *Table5ConcurrentReport) row(impl string, readers int) Table5ConcurrentRow {
	for _, row := range r.Rows {
		if row.Impl == impl && row.Readers == readers {
			return row
		}
	}
	return Table5ConcurrentRow{}
}

// maxReaders returns the largest measured reader count.
func (r *Table5ConcurrentReport) maxReaders() int {
	out := 0
	for _, row := range r.Rows {
		if row.Readers > out {
			out = row.Readers
		}
	}
	return out
}

// SpeedupAt returns sharded/single-lock hit throughput at one reader
// count (0 when either cell is missing).
func (r *Table5ConcurrentReport) SpeedupAt(readers int) float64 {
	single := r.row("single-lock", readers)
	sharded := r.row("sharded", readers)
	if single.HitsPerSec == 0 {
		return 0
	}
	return sharded.HitsPerSec / single.HitsPerSec
}

// Render prints the concurrent table and its shape checks.
func (r *Table5ConcurrentReport) Render() string {
	header := []string{"Cache", "Readers", "Hit throughput (hits/s)", "Mean hit (µs)", "p99 hit (µs)", "Hit rate", "Evictions"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Impl, fmt.Sprint(row.Readers), Fmt(row.HitsPerSec), Fmt(row.MeanHitUs),
			Fmt(row.P99HitUs), Fmt(row.HitRate), fmt.Sprint(row.Evictions),
		})
	}
	title := fmt.Sprintf("Table 5 (concurrent) — SMG98-shaped hits under eviction churn (policy=%s, entries=%d)",
		r.Policy, r.Entries)
	out := viz.Table(title, header, rows)
	readerSet := map[int]bool{}
	for _, row := range r.Rows {
		readerSet[row.Readers] = true
	}
	counts := make([]int, 0, len(readerSet))
	for n := range readerSet {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for _, n := range counts {
		out += fmt.Sprintf("Sharded speedup at %d readers: %s\n", n, Fmt(r.SpeedupAt(n)))
	}
	out += "Shape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape evaluates the qualitative claims of the cache overhaul.
func (r *Table5ConcurrentReport) CheckShape() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	max := r.maxReaders()
	for _, row := range r.Rows {
		check(fmt.Sprintf("%s@%d: hot set stays cached under tail churn (hit rate ≥ 0.9)", row.Impl, row.Readers),
			row.HitRate >= 0.9)
	}
	if r.Policy != "lru" {
		// The O(n)-scan pathology only exists for lfu/cost eviction; the
		// single-lock LRU evicts O(1) from its list tail.
		check(fmt.Sprintf("sharded beats single-lock hit throughput at %d readers (O(log n) vs O(n) eviction)", max),
			r.SpeedupAt(max) >= 1.2)
		check(fmt.Sprintf("sharded p99 hit latency at %d readers not above single-lock's (hits no longer wait out victim scans)", max),
			r.row("sharded", max).P99HitUs <= r.row("single-lock", max).P99HitUs*1.1)
	}
	single1 := r.row("single-lock", 1)
	sharded1 := r.row("sharded", 1)
	if single1.HitsPerSec > 0 && sharded1.HitsPerSec > 0 {
		check("single-reader throughput within 2x of single-lock (sharding costs no serial performance)",
			sharded1.HitsPerSec >= single1.HitsPerSec/2)
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *Table5ConcurrentReport) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}
