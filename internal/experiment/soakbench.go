package experiment

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
	"pperfgrid/internal/viz"
)

// This file is the C10k front-door evaluation: an open-loop soak over
// real loopback sockets against one admission-controlled site.
//
// Unlike the scale bench (openloop.go), which drives the query engine
// in-process, every request here crosses a real TCP connection: each
// simulated client owns one persistent socket (its own http.Transport,
// capped at one connection), so the measurement includes the whole front
// door — HTTP, SOAP decode, the ppg-deadline header, admission control,
// the worker pool, and the typed overload shed. The load is open-loop
// (see openloop.go for why): request i has an intended send time fixed
// before the run, and latency is measured from that intended time, so
// saturation shows up as latency and sheds instead of silently slowing
// the arrival process.
//
// The connection axis extends to thousands of sockets; the acceptance
// criteria are the overload-behavior ones: goodput past the saturation
// knee holds near the peak (shedding degrades, never collapses), the
// shed fast path answers in microseconds (measured server-side, where
// client scheduling noise cannot confound it), and after a graceful
// drain nothing leaks — no goroutines, no live paging cursors.
//
// A slice of the traffic (every PagedEvery-th request) opens a paged
// getPR and abandons its cursor after the first page, so the soak
// continuously churns the cursor table the byte/entry/TTL budgets bound.
//
// pperfgrid-bench -soak-bench drives it and emits BENCH_PR9.json.

// SoakBenchConfig tunes the soak evaluation.
type SoakBenchConfig struct {
	// Conns is the connection axis: how many persistent loopback sockets
	// offer load concurrently. Nil uses DefaultSoakConns.
	Conns []int
	// Rates is the offered-load sweep in requests/sec, swept per
	// connection count until two points past the saturation knee. Nil
	// uses DefaultSoakRates.
	Rates []float64
	// Duration is the window each rate point schedules requests over.
	// Zero means 2s.
	Duration time.Duration
	// Workers is the container worker-pool size; <= 0 means 1 (the
	// paper's single-CPU host, and the easiest knee to find).
	Workers int
	// QueueDepth and QueueWait configure admission control; zero values
	// default to 4 and 10ms — a deliberately tight front door, so the
	// sweep saturates it within the rate axis even on small hosts. A
	// full queue (4 x the calibrated 2ms fetch = 8ms) drains inside the
	// wait budget, so the budget is the backstop and nearly all sheds
	// happen at admission, where they cost microseconds instead of
	// holding the socket for the wait.
	QueueDepth int
	QueueWait  time.Duration
	// RequestTimeout is each request's client-side deadline, which the
	// stub propagates to the server as the ppg-deadline header. Zero
	// means 1s.
	RequestTimeout time.Duration
	// Burst quantizes intended send times to this granularity, so
	// arrivals land in bursts (the timer-wheel granularity of real load
	// generators, and of real traffic) instead of a perfectly smooth
	// fluid schedule no client fleet produces. The schedule stays
	// open-loop: intended times are fixed before the run and latency is
	// measured from them. Zero means 10ms; negative disables.
	Burst time.Duration
	// PagedEvery makes every n-th request a paged getPR whose cursor is
	// abandoned after the first page (cursor-table churn); 0 means 16,
	// negative disables.
	PagedEvery int
	// MissEvery makes every n-th request a unique never-cached query
	// that holds the worker for a full Mapping-Layer fetch. 0 means 1 —
	// every non-paged request is cold — so the knee is set by Mapping
	// capacity, the paper's regime: an all-hits workload is answered
	// from the raw-envelope cache faster than any in-process client
	// fleet can offer load, so its queue never builds, and the ms-scale
	// sleeps keep the CPU free for the client fleet, which keeps the
	// measured curve about the server rather than about scheduler
	// contention. Negative disables (all requests hot).
	MissEvery int
	// MappingLatency is the calibrated per-query Mapping-Layer delay
	// (the same mapping.WithLatency decorator the paper-table
	// experiments use — the paper's Mapping Layer is ms-scale, this
	// stack's in-memory store is not). 0 means 2ms, negative disables.
	MappingLatency time.Duration
	// Seed seeds the dataset generator.
	Seed int64
}

// DefaultSoakConns is the default connection axis: well past the
// worker-pool size, up into the thousands of sockets the front door must
// keep answering.
var DefaultSoakConns = []int{256, 1024, 4096}

// DefaultSoakRates is the default offered-load sweep. It climbs past
// single-worker capacity; the knee cutoff stops each sweep.
var DefaultSoakRates = []float64{250, 500, 1000, 2000, 4000, 8000, 16000}

// soakPastKneePoints is how many points past the saturation knee each
// sweep records: the acceptance criterion is about behavior *past* the
// knee, so stopping at the first past-knee point would leave no
// degradation evidence.
const soakPastKneePoints = 2

// SoakPoint is one (connections, offered-rate) measurement.
type SoakPoint struct {
	Conns    int     `json:"conns"`
	Offered  float64 `json:"offeredPerSec"`
	Requests int     `json:"requests"`
	// Goodput counts only successful responses; sheds and timeouts are
	// excluded by construction.
	GoodputPerSec float64 `json:"goodputPerSec"`
	OK            int     `json:"ok"`
	Sheds         int     `json:"sheds"`
	Timeouts      int     `json:"timeouts"`
	Errors        int     `json:"errors"`
	ShedRate      float64 `json:"shedRate"`
	// Latency percentiles of successful requests, from intended send
	// time, in ms.
	P50ms  float64 `json:"p50ms"`
	P99ms  float64 `json:"p99ms"`
	P999ms float64 `json:"p999ms"`
	// ServerSheds cross-checks the client-side shed count against the
	// container's own counter delta for the point.
	ServerSheds int64 `json:"serverSheds"`
}

// SoakCurve is one connection count's sweep to (and past) the knee.
type SoakCurve struct {
	Conns       int         `json:"conns"`
	Points      []SoakPoint `json:"points"`
	PeakGoodput float64     `json:"peakGoodputPerSec"`
	// Server-side shed-decision latency percentiles (µs) sampled from
	// the container's lock-free ring at the end of the sweep. Zero when
	// the sweep shed nothing.
	ShedSamples int     `json:"shedSamples"`
	ShedP50us   float64 `json:"shedP50us"`
	ShedP99us   float64 `json:"shedP99us"`
}

// SoakReport is the full soak evaluation.
type SoakReport struct {
	Workers        int         `json:"workers"`
	QueueDepth     int         `json:"queueDepth"`
	QueueWait      string      `json:"queueWait"`
	RequestTimeout string      `json:"requestTimeout"`
	PagedEvery     int         `json:"pagedEvery"`
	Curves         []SoakCurve `json:"curves"`

	// Cursor-table accounting: budget/TTL evictions accumulated during
	// the soak (the backpressure working), live cursors just before the
	// drain, and live cursors after (must be zero).
	CursorEvictions          int64 `json:"cursorEvictions"`
	CursorEntriesBeforeDrain int   `json:"cursorEntriesBeforeDrain"`
	CursorEntriesAfterDrain  int   `json:"cursorEntriesAfterDrain"`

	// Drain/leak accounting: goroutine count before the site existed vs
	// after the graceful drain settled.
	DrainMs              float64 `json:"drainMs"`
	GoroutinesBaseline   int     `json:"goroutinesBaseline"`
	GoroutinesAfterDrain int     `json:"goroutinesAfterDrain"`
}

// soakQueries is the warm/paged query set: a handful of distinct getPR
// shapes that establish every socket and exercise the paged path.
const soakQueries = 8

// soakWorkload holds the running site and everything a connection needs
// to offer load at it.
type soakWorkload struct {
	site   *core.Site
	cont   *container.Container
	svc    *core.ExecutionService
	handle gsh.Handle
	params [][]string // warm/paged-query wire params, indexed by request hash
	// missBase is the template for the unique never-cached queries: a
	// narrow time slice over a single focus, so the query's own scan and
	// encode cost stays small next to the calibrated Mapping latency and
	// the knee reflects the Mapping Layer, not the store. missSeq makes
	// each derived query globally unique across every point of the sweep
	// (a per-point index would repeat and start hitting the cache).
	missBase perfdata.Query
	missSeq  atomic.Int64
}

// missParams builds request i's unique cold-query wire params.
func (w *soakWorkload) missParams(i int) []string {
	uniq := w.missSeq.Add(1)
	q := w.missBase
	q.Foci = []string{fmt.Sprintf("/Process/%d", int(uniq)%soakQueries)}
	q.Time.Start += float64(uniq) * 1e-9
	return q.WireParams()
}

// startSoakSite stands up the admission-controlled site: one SMG98 star
// store, one execution, Workers/QueueDepth/QueueWait from the config.
func startSoakSite(cfg SoakBenchConfig) (*soakWorkload, error) {
	d := datagen.SMG98(datagen.SMG98Config{
		Executions: 1, Processes: soakQueries, TimeBins: 32, Seed: cfg.Seed,
	})
	var w0 mapping.ApplicationWrapper
	w0, err := mapping.NewStar(d)
	if err != nil {
		return nil, err
	}
	if cfg.MappingLatency > 0 {
		w0 = mapping.WithLatency(w0, cfg.MappingLatency, 0)
	}
	site, err := core.StartSite(core.SiteConfig{
		AppName:    "SMG98-soak",
		Wrappers:   []mapping.ApplicationWrapper{w0},
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		QueueWait:  cfg.QueueWait,
		// Bounded cache: the miss slice manufactures unique queries, and
		// unbounded retention of their entries would be a leak of its own.
		CacheCapacity: 1024,
	})
	if err != nil {
		return nil, err
	}
	w := &soakWorkload{site: site, cont: site.Containers()[0]}

	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("SMG98-soak", site.ApplicationFactoryHandle())
	if err != nil {
		site.Close()
		return nil, err
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil || len(refs) == 0 {
		site.Close()
		return nil, fmt.Errorf("experiment: soak: resolve execution: %v", err)
	}
	w.handle = refs[0].Handle

	execID := d.Execs[0].ID
	svcs := site.ExecutionServices(execID)
	if len(svcs) == 0 {
		site.Close()
		return nil, fmt.Errorf("experiment: soak: no live ExecutionService for %s", execID)
	}
	w.svc = svcs[0]

	tr := d.Execs[0].Time
	w.params = make([][]string, soakQueries)
	for i := range w.params {
		q := perfdata.Query{
			Metric: "func_calls",
			Foci:   []string{fmt.Sprintf("/Process/%d", i)},
			Time:   tr,
			Type:   "vampir",
		}
		w.params[i] = q.WireParams()
	}
	w.missBase = perfdata.Query{
		Metric: "func_calls",
		Time:   perfdata.TimeRange{Start: tr.Start, End: tr.Start + (tr.End-tr.Start)/32},
		Type:   "vampir",
	}
	return w, nil
}

// soakConn is one simulated client: a stub over its own single-socket
// transport, so the connection is persistent and exclusively its own.
type soakConn struct {
	stub *container.Stub
	tr   *http.Transport
}

func dialSoakConns(handle gsh.Handle, n int) []soakConn {
	conns := make([]soakConn, n)
	for i := range conns {
		tr := &http.Transport{
			MaxIdleConns:        1,
			MaxIdleConnsPerHost: 1,
			MaxConnsPerHost:     1,
			IdleConnTimeout:     5 * time.Minute,
		}
		st := container.Dial(handle)
		st.SetHTTPClient(&http.Client{Transport: tr})
		conns[i] = soakConn{stub: st, tr: tr}
	}
	return conns
}

func closeSoakConns(conns []soakConn) {
	for _, c := range conns {
		c.tr.CloseIdleConnections()
	}
}

// warmSoakConns establishes every socket (and warms the server-side
// cache) before measurement, at bounded concurrency so the warm wave
// itself is not shed wholesale. Individual overload sheds during the
// warm are retried after the server's hint.
func warmSoakConns(conns []soakConn, params [][]string, timeout time.Duration) error {
	sem := make(chan struct{}, 16)
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for attempt := 0; ; attempt++ {
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				_, err := conns[i].stub.CallContext(ctx, core.OpGetPR, params[i%len(params)]...)
				cancel()
				if err == nil {
					return
				}
				hint, overloaded := soap.AsOverload(err)
				if !overloaded || attempt >= 50 {
					errs[i] = err
					return
				}
				if hint <= 0 || hint > 50*time.Millisecond {
					hint = 2 * time.Millisecond
				}
				time.Sleep(hint)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("experiment: soak warm: %w", err)
		}
	}
	return nil
}

// runSoakPoint executes one (conns, rate) open-loop point. Request i is
// assigned to connection i%len(conns); each connection works its own
// requests in intended-time order, so requests on one socket serialize —
// the connection-level backpressure a real client experiences.
func runSoakPoint(w *soakWorkload, conns []soakConn, cfg SoakBenchConfig, rate float64) (*SoakPoint, error) {
	n := int(rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	const (
		outcomeOK = 1 + iota
		outcomeShed
		outcomeTimeout
		outcomeError
	)
	outcomes := make([]uint8, n)
	lats := make([]float64, n) // ms from intended send, successes only
	ends := make([]time.Time, len(conns))
	var firstErr atomic.Value
	shedsBefore := w.cont.Sheds()

	start := time.Now()
	var wg sync.WaitGroup
	for c := range conns {
		if c >= n {
			break
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < n; i += len(conns) {
				step := time.Duration(float64(i) / rate * float64(time.Second))
				if cfg.Burst > 0 {
					step = step / cfg.Burst * cfg.Burst
				}
				intended := start.Add(step)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				ctx, cancel := context.WithTimeout(context.Background(), cfg.RequestTimeout)
				var err error
				switch {
				case cfg.PagedEvery > 0 && i%cfg.PagedEvery == 0:
					// Open a paged result set and abandon the cursor after
					// the first page: the cursor-table churn the budgets
					// must bound and the drain must clean up.
					_, _, err = conns[c].stub.CallPagedContext(ctx, core.OpGetPR, "", 1, w.params[i%len(w.params)]...)
				case cfg.MissEvery > 0 && i%cfg.MissEvery == cfg.MissEvery/2:
					// A unique cold query: the worker holds its slot for the
					// (calibrated) Mapping-Layer fetch, and the requests
					// arriving behind it build the queue admission control
					// guards. At the default MissEvery=1 this is every
					// non-paged request.
					_, err = conns[c].stub.CallContext(ctx, core.OpGetPR, w.missParams(i)...)
				default:
					_, err = conns[c].stub.CallContext(ctx, core.OpGetPR, w.params[i%len(w.params)]...)
				}
				cancel()
				done := time.Now()
				switch {
				case err == nil:
					outcomes[i] = outcomeOK
					lats[i] = float64(done.Sub(intended)) / float64(time.Millisecond)
				default:
					if _, ok := soap.AsOverload(err); ok {
						outcomes[i] = outcomeShed
					} else if errors.Is(err, context.DeadlineExceeded) {
						outcomes[i] = outcomeTimeout
					} else {
						outcomes[i] = outcomeError
						firstErr.CompareAndSwap(nil, err)
					}
				}
				ends[c] = done
			}
		}(c)
	}
	wg.Wait()

	pt := &SoakPoint{Conns: len(conns), Offered: rate, Requests: n}
	var s Sample
	for i, o := range outcomes {
		switch o {
		case outcomeOK:
			pt.OK++
			s.Add(lats[i])
		case outcomeShed:
			pt.Sheds++
		case outcomeTimeout:
			pt.Timeouts++
		case outcomeError:
			pt.Errors++
		}
	}
	end := start
	for _, e := range ends {
		if e.After(end) {
			end = e
		}
	}
	if elapsed := end.Sub(start).Seconds(); elapsed > 0 {
		pt.GoodputPerSec = float64(pt.OK) / elapsed
	}
	pt.ShedRate = float64(pt.Sheds) / float64(n)
	pt.P50ms = s.Percentile(50)
	pt.P99ms = s.Percentile(99)
	pt.P999ms = s.Percentile(99.9)
	pt.ServerSheds = w.cont.Sheds() - shedsBefore
	// An occasional transport-level error under thousands of sockets on
	// a loaded host is tolerable; a systematic one is not.
	if err, ok := firstErr.Load().(error); ok && pt.Errors > n/20 {
		return nil, fmt.Errorf("experiment: soak point conns=%d rate=%.0f: %d/%d errors, first: %w",
			len(conns), rate, pt.Errors, n, err)
	}
	return pt, nil
}

// runSoakCurve sweeps one connection count across the offered rates,
// continuing soakPastKneePoints past the saturation knee so the report
// shows how goodput holds up when shedding starts.
func runSoakCurve(w *soakWorkload, cfg SoakBenchConfig, nConns int, rates []float64) (*SoakCurve, error) {
	conns := dialSoakConns(w.handle, nConns)
	defer closeSoakConns(conns)
	if err := warmSoakConns(conns, w.params, cfg.RequestTimeout); err != nil {
		return nil, err
	}
	curve := &SoakCurve{Conns: nConns}
	pastKnee := 0
	for _, rate := range rates {
		pt, err := runSoakPoint(w, conns, cfg, rate)
		if err != nil {
			return nil, err
		}
		curve.Points = append(curve.Points, *pt)
		if pt.GoodputPerSec > curve.PeakGoodput {
			curve.PeakGoodput = pt.GoodputPerSec
		}
		if pt.GoodputPerSec < kneeFraction*pt.Offered {
			if pastKnee++; pastKnee >= soakPastKneePoints {
				break
			}
		}
	}
	var shed Sample
	for _, ns := range w.cont.ShedLatenciesNs() {
		shed.Add(float64(ns) / float64(time.Microsecond))
	}
	curve.ShedSamples = shed.N()
	curve.ShedP50us = shed.Percentile(50)
	curve.ShedP99us = shed.Percentile(99)
	return curve, nil
}

// RunSoakBench stands the admission-controlled site up, sweeps every
// connection count, then gracefully drains and accounts for leaks.
func RunSoakBench(cfg SoakBenchConfig) (*SoakReport, error) {
	if cfg.Conns == nil {
		cfg.Conns = DefaultSoakConns
	}
	if cfg.Rates == nil {
		cfg.Rates = DefaultSoakRates
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4
	}
	if cfg.QueueWait == 0 {
		// One burst bucket's worth of queueing: a hot request queued
		// behind a burst tail or a couple of Mapping-Layer misses still
		// gets served, but one behind a deeper backlog sheds instead of
		// holding its socket — admitted-then-shed requests are the
		// expensive kind of rejection, so the budget stays tight.
		cfg.QueueWait = 10 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = time.Second
	}
	if cfg.Burst == 0 {
		cfg.Burst = 10 * time.Millisecond
	}
	if cfg.PagedEvery == 0 {
		cfg.PagedEvery = 16
	}
	if cfg.MissEvery == 0 {
		cfg.MissEvery = 1
	}
	if cfg.MappingLatency == 0 {
		cfg.MappingLatency = 2 * time.Millisecond
	}

	// The goroutine baseline is taken before the site exists, so the
	// after-drain count proves the whole soak topology (listener, worker
	// pool, per-request handlers) unwound.
	runtime.GC()
	baseline := runtime.NumGoroutine()

	w, err := startSoakSite(cfg)
	if err != nil {
		return nil, err
	}
	report := &SoakReport{
		Workers:            cfg.Workers,
		QueueDepth:         cfg.QueueDepth,
		QueueWait:          cfg.QueueWait.String(),
		RequestTimeout:     cfg.RequestTimeout.String(),
		PagedEvery:         cfg.PagedEvery,
		GoroutinesBaseline: baseline,
	}
	for _, n := range cfg.Conns {
		curve, err := runSoakCurve(w, cfg, n, cfg.Rates)
		if err != nil {
			w.site.Close()
			return nil, err
		}
		report.Curves = append(report.Curves, *curve)
	}

	entries, _, evictions := w.svc.CursorStats()
	report.CursorEntriesBeforeDrain = entries
	report.CursorEvictions = evictions

	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = w.site.Drain(ctx)
	cancel()
	report.DrainMs = float64(time.Since(drainStart)) / float64(time.Millisecond)
	if err != nil {
		return nil, fmt.Errorf("experiment: soak drain: %w", err)
	}

	entries, _, _ = w.svc.CursorStats()
	report.CursorEntriesAfterDrain = entries
	// Idle-timeout goroutines (transport readers, timer wheels) unwind
	// asynchronously; poll briefly before recording the final count.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		report.GoroutinesAfterDrain = runtime.NumGoroutine()
		if report.GoroutinesAfterDrain <= baseline || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return report, nil
}

// Render prints the curves and the shape checks.
func (r *SoakReport) Render() string {
	header := []string{"Conns", "Offered/s", "Goodput/s", "Requests", "OK", "Sheds", "Shed rate", "Timeouts", "p50 ms", "p99 ms", "p999 ms"}
	var rows [][]string
	for _, c := range r.Curves {
		for _, p := range c.Points {
			rows = append(rows, []string{
				fmt.Sprint(p.Conns), Fmt(p.Offered), Fmt(p.GoodputPerSec), fmt.Sprint(p.Requests),
				fmt.Sprint(p.OK), fmt.Sprint(p.Sheds), fmt.Sprintf("%.3f", p.ShedRate),
				fmt.Sprint(p.Timeouts), Fmt(p.P50ms), Fmt(p.P99ms), Fmt(p.P999ms),
			})
		}
	}
	title := fmt.Sprintf("Open-loop soak over real loopback sockets (workers=%d, queue depth=%d, queue wait=%s, request timeout=%s)",
		r.Workers, r.QueueDepth, r.QueueWait, r.RequestTimeout)
	out := viz.Table(title, header, rows)
	out += "\nServer-side shed fast path (decision to rejection written):\n"
	for _, c := range r.Curves {
		if c.ShedSamples == 0 {
			out += fmt.Sprintf("  %5d conns: no sheds\n", c.Conns)
			continue
		}
		out += fmt.Sprintf("  %5d conns: p50 %.1f µs, p99 %.1f µs (%d samples)\n",
			c.Conns, c.ShedP50us, c.ShedP99us, c.ShedSamples)
	}
	out += fmt.Sprintf("\nCursor table: %d budget/TTL evictions during the soak, %d live before drain, %d after\n",
		r.CursorEvictions, r.CursorEntriesBeforeDrain, r.CursorEntriesAfterDrain)
	out += fmt.Sprintf("Drain: %.0f ms; goroutines %d baseline -> %d after drain\n",
		r.DrainMs, r.GoroutinesBaseline, r.GoroutinesAfterDrain)
	out += "\nShape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// soakGoroutineSlack tolerates runtime-owned goroutines (GC workers,
// netpoll, timer maintenance) that come and go around the baseline.
const soakGoroutineSlack = 16

// CheckShape evaluates the front-door acceptance criteria: each curve
// sustains its lowest offered rate, goodput past the knee holds at
// >= 0.8x the curve's peak (shedding degrades instead of collapsing),
// the largest connection count actually shed (the admission control
// engaged), the server-side shed fast path stays under 1ms at p99, and
// nothing leaks across the drain.
func (r *SoakReport) CheckShape() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	for _, c := range r.Curves {
		name := fmt.Sprintf("%d conns", c.Conns)
		check(fmt.Sprintf("%s: measured %d rate points", name, len(c.Points)), len(c.Points) >= 1)
		if len(c.Points) == 0 {
			continue
		}
		coherent := true
		for _, p := range c.Points {
			if p.OK > 0 && (p.P50ms > p.P99ms || p.P99ms > p.P999ms) {
				coherent = false
			}
		}
		check(fmt.Sprintf("%s: percentiles coherent (p50<=p99<=p999)", name), coherent)
		first := c.Points[0]
		check(fmt.Sprintf("%s: lowest offered rate sustained (%.0f/s offered, %.0f/s goodput; peak %.0f/s)",
			name, first.Offered, first.GoodputPerSec, c.PeakGoodput),
			first.GoodputPerSec >= kneeFraction*first.Offered)
		held := true
		pastKnee := false
		for _, p := range c.Points {
			if p.GoodputPerSec < kneeFraction*p.Offered {
				pastKnee = true
				if p.GoodputPerSec < 0.8*c.PeakGoodput {
					held = false
				}
			}
		}
		if pastKnee {
			check(fmt.Sprintf("%s: goodput past the knee held >= 0.8x peak", name), held)
		} else {
			check(fmt.Sprintf("%s: sweep never found the knee (capacity above the rate axis)", name), true)
		}
		if c.ShedSamples > 0 {
			check(fmt.Sprintf("%s: server-side shed p99 %.1f µs < 1 ms", name, c.ShedP99us), c.ShedP99us < 1000)
		}
	}
	if len(r.Curves) > 0 {
		last := r.Curves[len(r.Curves)-1]
		shed := 0
		for _, p := range last.Points {
			shed += p.Sheds
		}
		check(fmt.Sprintf("%d conns: admission control engaged (%d sheds)", last.Conns, shed), shed > 0)
	}
	check(fmt.Sprintf("cursor table empty after drain (%d live, %d evictions during soak)",
		r.CursorEntriesAfterDrain, r.CursorEvictions), r.CursorEntriesAfterDrain == 0)
	check(fmt.Sprintf("no goroutine leak across drain (%d baseline, %d after)",
		r.GoroutinesBaseline, r.GoroutinesAfterDrain),
		r.GoroutinesAfterDrain <= r.GoroutinesBaseline+soakGoroutineSlack)
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *SoakReport) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if len(line) >= 8 && line[:8] == "MISMATCH" {
			return false
		}
	}
	return true
}
