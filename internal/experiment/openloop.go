package experiment

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/minidb"
	"pperfgrid/internal/viz"
)

// This file is the million-row engine evaluation: an open-loop
// (constant-arrival-rate) load harness over the scale star schema, plus
// the range/top-k speedup comparison against the retained naive executor.
//
// The load generator is open-loop, not closed-loop: request i has an
// intended send time start + i/rate fixed before the run, independent of
// how long earlier requests took. Latency is measured from the INTENDED
// send time to completion, so when the engine falls behind, queueing
// delay lands in the recorded latencies instead of silently stretching
// the inter-arrival gaps — the coordinated-omission error a closed loop
// makes. A fixed worker pool executes the schedule (a bounded-concurrency
// open loop); a worker that is ahead of schedule sleeps until its
// request's intended time.
//
// pperfgrid-bench -scale-bench drives it and emits BENCH_PR6.json.

// ScaleBenchConfig tunes the scale evaluation.
type ScaleBenchConfig struct {
	// Scale sizes the dataset; the zero value loads datagen.DefaultScale
	// (10^6 fact rows).
	Scale datagen.ScaleConfig
	// Rates is the offered-load sweep in queries/sec. The sweep stops
	// early once a rate's achieved throughput falls below kneeFraction of
	// offered — the saturation knee. Nil uses DefaultScaleRates.
	Rates []float64
	// Duration is the time window each rate point schedules requests
	// over (so a point issues rate×Duration requests). Zero means 1s.
	Duration time.Duration
	// Workers is the executing pool size; <= 0 means GOMAXPROCS.
	Workers int
}

// DefaultScaleRates is the default offered-load sweep. It climbs well
// past any plausible single-host capacity; the knee cutoff stops it.
var DefaultScaleRates = []float64{
	1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
}

// kneeFraction: a rate point whose achieved throughput is below this
// fraction of the offered rate is past the saturation knee; the sweep
// records it and stops.
const kneeFraction = 0.7

// LoadPoint is one (scenario, offered-rate) measurement.
type LoadPoint struct {
	Offered  float64 `json:"offeredPerSec"`
	Achieved float64 `json:"achievedPerSec"`
	Requests int     `json:"requests"`
	P50ms    float64 `json:"p50ms"`
	P99ms    float64 `json:"p99ms"`
	P999ms   float64 `json:"p999ms"`
	MaxMs    float64 `json:"maxMs"`
}

// LoadCurve is one scenario's latency-vs-offered-load curve, swept to
// the saturation knee.
type LoadCurve struct {
	Scenario string      `json:"scenario"`
	SQL      string      `json:"sql"`
	Plan     string      `json:"plan"` // EXPLAIN of the scenario statement
	Points   []LoadPoint `json:"points"`
	// Peak is the highest achieved throughput across the sweep — the
	// capacity estimate the knee brackets.
	Peak float64 `json:"peakAchievedPerSec"`
}

// SpeedupRow is one planned-vs-naive comparison on the full dataset.
type SpeedupRow struct {
	Name       string  `json:"name"`
	SQL        string  `json:"sql"`
	Plan       string  `json:"plan"`
	ResultRows int     `json:"resultRows"`
	PlannedNs  float64 `json:"plannedNsPerOp"`
	NaiveNs    float64 `json:"naiveNsPerOp"`
	Speedup    float64 `json:"speedup"`
}

// ScaleReport is the full scale evaluation: the dataset shape, the
// open-loop curves, and the indexed-vs-naive speedups.
type ScaleReport struct {
	Rows         int          `json:"factRows"`
	Workers      int          `json:"workers"`
	Curves       []LoadCurve  `json:"curves"`
	Speedups     []SpeedupRow `json:"speedups"`
	Differential int          `json:"differentialQueriesChecked"`
}

// scaleScenario is one load-harness workload over the scale schema.
type scaleScenario struct {
	name string
	sql  string
	// args returns request i's parameter bindings. Derived from i alone,
	// never from worker identity or time, so a run's request stream is
	// deterministic.
	args func(i int) []minidb.Value
	// literals renders a few parameter-free instances for the
	// differential gate against the naive executor.
	literals func() []string
	access   string // the access path Explain must report
}

// scaleScenarios builds the three workloads: a repeated point query on
// one hot key (plan cache + hash index, every probe hits the same
// bucket), point queries spread across the whole key space (cold
// probes), and rotating selective time windows through the ordered
// index.
func scaleScenarios(cfg datagen.ScaleConfig) []scaleScenario {
	nExec := cfg.Executions
	hotID := cfg.ExecID(nExec / 2)
	pointSQL := "SELECT starttime, value FROM results WHERE execid = ?"
	rangeSQL := "SELECT execid, starttime, value FROM results WHERE starttime >= ? AND starttime <= ?"
	coldID := func(i int) string {
		// Multiplicative hashing walks the key space in a fixed
		// scattered order, so consecutive requests probe unrelated keys.
		return cfg.ExecID(int((uint64(i) * 2654435761) % uint64(nExec)))
	}
	return []scaleScenario{
		{
			name: "hot-hit",
			sql:  pointSQL,
			args: func(i int) []minidb.Value {
				return []minidb.Value{minidb.Text(hotID)}
			},
			literals: func() []string {
				return []string{strings.Replace(pointSQL, "?", "'"+hotID+"'", 1)}
			},
			access: "index-eq",
		},
		{
			name: "cold-miss",
			sql:  pointSQL,
			args: func(i int) []minidb.Value {
				return []minidb.Value{minidb.Text(coldID(i))}
			},
			literals: func() []string {
				var out []string
				for _, i := range []int{0, 7, 131} {
					out = append(out, strings.Replace(pointSQL, "?", "'"+coldID(i)+"'", 1))
				}
				return out
			},
			access: "index-eq",
		},
		{
			name: "range-scan",
			sql:  rangeSQL,
			args: func(i int) []minidb.Value {
				lo, hi := cfg.TimeWindow((i * 613) % nExec)
				return []minidb.Value{minidb.Float(lo), minidb.Float(hi)}
			},
			literals: func() []string {
				var out []string
				for _, i := range []int{0, nExec / 3, nExec - 1} {
					lo, hi := cfg.TimeWindow(i)
					s := strings.Replace(rangeSQL, "?", fmtFloatLit(lo), 1)
					out = append(out, strings.Replace(s, "?", fmtFloatLit(hi), 1))
				}
				return out
			},
			access: "index-range",
		},
	}
}

// fmtFloatLit renders a float as an exact SQL literal.
func fmtFloatLit(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	if !strings.Contains(s, ".") {
		s += ".0"
	}
	return s
}

// RunScaleBench loads the scale dataset, differentially gates every
// scenario against the naive executor, asserts each scenario's access
// path through EXPLAIN, sweeps the open-loop curves, and measures the
// range/top-k speedups.
func RunScaleBench(cfg ScaleBenchConfig) (*ScaleReport, error) {
	db := minidb.NewDatabase()
	scale, err := datagen.LoadScaleStar(db, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("experiment: load scale star: %w", err)
	}
	if err := mapping.DeclareStarIndexes(db); err != nil {
		return nil, err
	}
	rates := cfg.Rates
	if rates == nil {
		rates = DefaultScaleRates
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = time.Second
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	report := &ScaleReport{Rows: scale.Rows(), Workers: workers}

	scenarios := scaleScenarios(scale)
	for _, sc := range scenarios {
		n, err := differentialGate(db, sc.literals())
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", sc.name, err)
		}
		report.Differential += n
	}

	for _, sc := range scenarios {
		curve, err := runLoadCurve(db, sc, rates, dur, workers)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", sc.name, err)
		}
		report.Curves = append(report.Curves, *curve)
	}

	speedups, n, err := runScaleSpeedups(db, scale)
	if err != nil {
		return nil, err
	}
	report.Speedups = speedups
	report.Differential += n
	return report, nil
}

// differentialGate proves each literal query byte-equivalent between the
// planned pipeline and the naive reference executor, and returns how
// many queries it checked.
func differentialGate(db *minidb.Database, queries []string) (int, error) {
	for _, q := range queries {
		got, err := db.Query(q)
		if err != nil {
			return 0, fmt.Errorf("planned %q: %w", q, err)
		}
		want, err := db.QueryNaive(q)
		if err != nil {
			return 0, fmt.Errorf("naive %q: %w", q, err)
		}
		if err := sameStrings(got.Strings(), want.Strings()); err != nil {
			return 0, fmt.Errorf("differential gate %q: %w", q, err)
		}
	}
	return len(queries), nil
}

// sameStrings compares two rendered result sets cell by cell.
func sameStrings(got, want [][]string) error {
	if len(got) != len(want) {
		return fmt.Errorf("planned %d rows, naive %d rows", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return fmt.Errorf("row %d: planned %d cells, naive %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return fmt.Errorf("row %d col %d: planned %q, naive %q", i, j, got[i][j], want[i][j])
			}
		}
	}
	return nil
}

// runLoadCurve sweeps one scenario across the offered rates until the
// saturation knee.
func runLoadCurve(db *minidb.Database, sc scaleScenario, rates []float64, dur time.Duration, workers int) (*LoadCurve, error) {
	stmt, err := db.Prepare(sc.sql)
	if err != nil {
		return nil, err
	}
	// Warm: the first probe builds any stale ordered index (a lazy build
	// inside the measured window would be charged to one unlucky
	// request), and the plan cache fills.
	for i := 0; i < 3; i++ {
		if err := drainOnce(stmt, sc.args(i)); err != nil {
			return nil, err
		}
	}
	info, err := stmt.Explain(sc.args(0)...)
	if err != nil {
		return nil, err
	}
	if info.Access != sc.access {
		return nil, fmt.Errorf("explain: access %q, want %q (%s)", info.Access, sc.access, info)
	}
	curve := &LoadCurve{Scenario: sc.name, SQL: sc.sql, Plan: info.String()}
	for _, rate := range rates {
		pt, err := runOpenLoop(stmt, sc.args, rate, dur, workers)
		if err != nil {
			return nil, err
		}
		curve.Points = append(curve.Points, *pt)
		if pt.Achieved > curve.Peak {
			curve.Peak = pt.Achieved
		}
		if pt.Achieved < kneeFraction*pt.Offered {
			break // past the knee; higher offered rates only queue deeper
		}
	}
	return curve, nil
}

// drainOnce runs the statement once through the streaming batch path and
// discards the rows.
func drainOnce(stmt *minidb.Stmt, args []minidb.Value) error {
	rows, err := stmt.QueryStream(args...)
	if err != nil {
		return err
	}
	b := minidb.NewBatch()
	for rows.NextBatch(b, 0) {
	}
	b.Release()
	if err := rows.Err(); err != nil {
		return err
	}
	rows.Close()
	return nil
}

// runOpenLoop executes one rate point: n = rate×dur requests with
// intended send times start + i/rate, executed by a fixed worker pool.
// Latency for request i runs from its intended send time (not its actual
// start) to completion.
func runOpenLoop(stmt *minidb.Stmt, argsFor func(int) []minidb.Value, rate float64, dur time.Duration, workers int) (*LoadPoint, error) {
	n := int(rate * dur.Seconds())
	if n < 1 {
		n = 1
	}
	lats := make([]float64, n) // ms, indexed by request; no contention
	var next atomic.Int64
	var firstErr atomic.Value
	ends := make([]time.Time, workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := minidb.NewBatch()
			defer b.Release()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				intended := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				rows, err := stmt.QueryStream(argsFor(i)...)
				if err == nil {
					for rows.NextBatch(b, 0) {
					}
					err = rows.Err()
					rows.Close()
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				done := time.Now()
				lats[i] = float64(done.Sub(intended)) / float64(time.Millisecond)
				ends[w] = done
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}

	var s Sample
	for _, l := range lats {
		s.Add(l)
	}
	end := start
	for _, e := range ends {
		if e.After(end) {
			end = e
		}
	}
	elapsed := end.Sub(start).Seconds()
	achieved := rate
	if elapsed > 0 {
		achieved = float64(n) / elapsed
	}
	return &LoadPoint{
		Offered:  rate,
		Achieved: achieved,
		Requests: n,
		P50ms:    s.Percentile(50),
		P99ms:    s.Percentile(99),
		P999ms:   s.Percentile(99.9),
		MaxMs:    s.Max(),
	}, nil
}

// runScaleSpeedups measures the PR's acceptance comparisons on the full
// dataset: a selective time-range query and an ORDER BY+LIMIT top-k,
// planned pipeline vs the naive full-scan executor, each differentially
// gated first. Measurement uses the testing harness so ns/op is exact.
func runScaleSpeedups(db *minidb.Database, scale datagen.ScaleConfig) ([]SpeedupRow, int, error) {
	lo, hi := scale.TimeWindow(scale.Executions / 3)
	rangeSQL := fmt.Sprintf(
		"SELECT execid, starttime, value FROM results WHERE starttime >= %s AND starttime <= %s",
		fmtFloatLit(lo), fmtFloatLit(hi))
	topkSQL := "SELECT execid, starttime, value FROM results ORDER BY value DESC LIMIT 10"

	var out []SpeedupRow
	checked := 0
	for _, m := range []struct{ name, sql, access string }{
		{"time-range", rangeSQL, "index-range"},
		{"order-by-limit top-k", topkSQL, "ordered-walk"},
	} {
		if n, err := differentialGate(db, []string{m.sql}); err != nil {
			return nil, 0, err
		} else {
			checked += n
		}
		info, err := db.Explain(m.sql)
		if err != nil {
			return nil, 0, err
		}
		if info.Access != m.access {
			return nil, 0, fmt.Errorf("experiment: %s: access %q, want %q (%s)", m.name, info.Access, m.access, info)
		}
		rs, err := db.Query(m.sql)
		if err != nil {
			return nil, 0, err
		}
		nRows := len(rs.Strings())

		planned := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(m.sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		naive := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryNaive(m.sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		row := SpeedupRow{
			Name:       m.name,
			SQL:        m.sql,
			Plan:       info.String(),
			ResultRows: nRows,
			PlannedNs:  float64(planned.NsPerOp()),
			NaiveNs:    float64(naive.NsPerOp()),
		}
		row.Speedup = Speedup(row.NaiveNs, row.PlannedNs)
		out = append(out, row)
	}
	return out, checked, nil
}

// Render prints the curves, the speedup comparison, and the shape checks.
func (r *ScaleReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale engine evaluation: %d fact rows, %d workers, %d differential queries byte-equivalent to the naive executor\n\n",
		r.Rows, r.Workers, r.Differential)
	header := []string{"Scenario", "Offered/s", "Achieved/s", "Requests", "p50 ms", "p99 ms", "p999 ms", "max ms"}
	var rows [][]string
	for _, c := range r.Curves {
		for i, p := range c.Points {
			name := ""
			if i == 0 {
				name = c.Scenario
			}
			rows = append(rows, []string{
				name, Fmt(p.Offered), Fmt(p.Achieved), fmt.Sprint(p.Requests),
				Fmt(p.P50ms), Fmt(p.P99ms), Fmt(p.P999ms), Fmt(p.MaxMs),
			})
		}
	}
	b.WriteString(viz.Table("Open-loop latency vs offered load (latency from intended send time)", header, rows))
	b.WriteString("\nPlans:\n")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "  %-10s %s\n", c.Scenario, c.Plan)
	}
	b.WriteString("\nIndexed pipeline vs naive full scan:\n")
	for _, s := range r.Speedups {
		fmt.Fprintf(&b, "  %-20s %10.1f ns/op vs %12.1f ns/op  =  %.0fx  (%d rows; %s)\n",
			s.Name, s.PlannedNs, s.NaiveNs, s.Speedup, s.ResultRows, s.Plan)
	}
	b.WriteString("\nShape checks:\n")
	for _, c := range r.CheckShape() {
		b.WriteString("  " + c + "\n")
	}
	return b.String()
}

// CheckShape evaluates the PR's acceptance criteria: every scenario went
// through its index (asserted during the run), each curve found its
// knee or sustained the whole sweep, latency percentiles are coherent,
// and the range/top-k speedups clear the bar — 20x at million-row
// scale, 5x for reduced smoke shapes.
func (r *ScaleReport) CheckShape() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	for _, c := range r.Curves {
		check(fmt.Sprintf("%s: measured %d rate points", c.Scenario, len(c.Points)), len(c.Points) >= 1)
		if len(c.Points) == 0 {
			continue
		}
		coherent := true
		for _, p := range c.Points {
			if p.P50ms > p.P99ms || p.P99ms > p.P999ms || p.P999ms > p.MaxMs {
				coherent = false
			}
		}
		check(fmt.Sprintf("%s: percentiles coherent (p50<=p99<=p999<=max)", c.Scenario), coherent)
		first := c.Points[0]
		check(fmt.Sprintf("%s: lowest offered rate sustained (%.0f/s offered, %.0f/s achieved; peak %.0f/s)",
			c.Scenario, first.Offered, first.Achieved, c.Peak),
			first.Achieved >= kneeFraction*first.Offered)
	}
	bar := 5.0
	if r.Rows >= 1_000_000 {
		bar = 20.0
	}
	for _, s := range r.Speedups {
		check(fmt.Sprintf("%s >= %.0fx vs naive full scan (got %.0fx)", s.Name, bar, s.Speedup),
			s.Speedup >= bar)
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *ScaleReport) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}
