package experiment

// This file is the Figure 12 successor for the federation layer: where
// Figure 12 scales one site out across replica hosts, this sweep scales
// a federated query across whole sites under an emulated WAN — per-site
// injected latency, jitter, and failure rates from the deterministic
// seeded chaos transport — and measures what the scatter-gather engine
// (deadlines, hedged requests, budgeted retries, breakers) delivers:
// completeness (fraction of sites answering), goodput, and the p50/p99
// query-latency tail. The headline acceptance bound: at 4 sites, p99
// with a 10% per-site failure rate stays within 3x the fault-free p99 —
// graceful degradation, not collapse.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/federation"
	"pperfgrid/internal/federation/backoff"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

// FederationBenchConfig tunes the emulated-WAN federation sweep.
type FederationBenchConfig struct {
	// Seed feeds the dataset generators and the chaos transport.
	Seed int64
	// SiteCounts is the fan-out axis; nil means {2, 4, 8}.
	SiteCounts []int
	// LatenciesMs is the emulated per-site WAN latency axis; nil means
	// {2, 10}. Each cell also injects 50% jitter.
	LatenciesMs []int
	// FailureRates is the per-site fast-failure probability axis; nil
	// means {0, 0.01, 0.10}.
	FailureRates []float64
	// QueriesPerCell is the measured query count per cell (after
	// warmup); 0 means 200 — enough that nearest-rank p99 sits below
	// the worst one or two queries instead of being the max.
	QueriesPerCell int
	// PerSiteTimeout bounds each attempt; 0 means 500ms.
	PerSiteTimeout time.Duration
}

func (c FederationBenchConfig) withDefaults() FederationBenchConfig {
	if len(c.SiteCounts) == 0 {
		c.SiteCounts = []int{2, 4, 8}
	}
	if len(c.LatenciesMs) == 0 {
		c.LatenciesMs = []int{2, 10}
	}
	if len(c.FailureRates) == 0 {
		c.FailureRates = []float64{0, 0.01, 0.10}
	}
	if c.QueriesPerCell <= 0 {
		c.QueriesPerCell = 200
	}
	if c.PerSiteTimeout <= 0 {
		c.PerSiteTimeout = 500 * time.Millisecond
	}
	return c
}

// FederationBenchRow is one sweep cell.
type FederationBenchRow struct {
	Sites        int     `json:"sites"`
	LatencyMs    int     `json:"latencyMs"`
	FailureRate  float64 `json:"failureRate"`
	Queries      int     `json:"queries"`
	Completeness float64 `json:"completeness"` // mean answered/total
	GoodputQPS   float64 `json:"goodputQPS"`   // completed queries per wall second
	P50Ms        float64 `json:"p50Ms"`
	P99Ms        float64 `json:"p99Ms"`
	Hedges       int64   `json:"hedges"`
	HedgeWins    int64   `json:"hedgeWins"`
	Retries      int64   `json:"retries"`
	Tripped      int64   `json:"tripped"`
}

// FederationBenchReport is the full sweep.
type FederationBenchReport struct {
	Rows           []FederationBenchRow `json:"rows"`
	Seed           int64                `json:"seed"`
	PerSiteTimeout string               `json:"perSiteTimeout"`
	QueriesPerCell int                  `json:"queriesPerCell"`
}

// row finds one cell (zero value when absent).
func (r *FederationBenchReport) row(sites, latMs int, rate float64) FederationBenchRow {
	for _, row := range r.Rows {
		if row.Sites == sites && row.LatencyMs == latMs && row.FailureRate == rate {
			return row
		}
	}
	return FederationBenchRow{}
}

// TailRatioAt returns p99(rate)/p99(fault-free) for one (sites, latency)
// cell pair — the graceful-degradation figure the acceptance bound pins.
func (r *FederationBenchReport) TailRatioAt(sites, latMs int, rate float64) float64 {
	base := r.row(sites, latMs, 0)
	hot := r.row(sites, latMs, rate)
	if base.P99Ms == 0 || hot.Queries == 0 {
		return 0
	}
	return hot.P99Ms / base.P99Ms
}

// RunFederationBench runs the sweep: one live heterogeneous fleet per
// site count (the three store shapes cycling), wire bindings, and a
// fresh chaos-wrapped engine per cell so breaker and EWMA state never
// leaks between cells.
func RunFederationBench(cfg FederationBenchConfig) (*FederationBenchReport, error) {
	cfg = cfg.withDefaults()
	report := &FederationBenchReport{
		Seed:           cfg.Seed,
		PerSiteTimeout: cfg.PerSiteTimeout.String(),
		QueriesPerCell: cfg.QueriesPerCell,
	}
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}

	for _, n := range cfg.SiteCounts {
		fleet, names, transport, err := startBenchFleet(cfg.Seed, n)
		if err != nil {
			return nil, err
		}
		for _, latMs := range cfg.LatenciesMs {
			for _, rate := range cfg.FailureRates {
				row, err := runFederationCell(cfg, transport, names, q, n, latMs, rate)
				if err != nil {
					closeFleet(fleet)
					return nil, err
				}
				report.Rows = append(report.Rows, row)
			}
		}
		closeFleet(fleet)
	}
	return report, nil
}

// runFederationCell measures one (sites, latency, failure-rate) cell.
func runFederationCell(cfg FederationBenchConfig, inner federation.Transport, names []string, q perfdata.Query, n, latMs int, rate float64) (FederationBenchRow, error) {
	chaos := federation.NewChaosTransport(inner, cfg.Seed)
	for _, name := range names {
		chaos.SetSiteFaults(name, federation.SiteFaults{
			Latency:       time.Duration(latMs) * time.Millisecond,
			LatencyJitter: time.Duration(latMs) * time.Millisecond / 2,
			ErrorRate:     rate,
		})
	}
	// Retry pacing is tuned to the emulated WAN: an immediate first
	// retry (a dropped call should be re-sent at once, not after a
	// server-scale backoff), then short exponential delays. This is what
	// keeps the failure-rate cells inside the graceful-degradation
	// bound — a retried query costs ~2 RTTs, not RTT + 10ms.
	engine := federation.New(chaos, federation.Config{
		PerSiteTimeout: cfg.PerSiteTimeout,
		Backoff:        backoff.Policy{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, FirstFast: true},
	})
	ctx := context.Background()

	// Warmup: resolve executions and give the latency EWMA a baseline so
	// hedging is armed for the measured queries.
	for i := 0; i < 3; i++ {
		engine.Query(ctx, names, q)
	}
	statsBase := engine.Stats()

	var lat Sample
	answered, total := 0, 0
	start := time.Now()
	for i := 0; i < cfg.QueriesPerCell; i++ {
		qs := time.Now()
		r := engine.Query(ctx, names, q)
		lat.Add(float64(time.Since(qs)) / float64(time.Millisecond))
		answered += r.Answered
		total += len(r.Outcomes)
	}
	wall := time.Since(start)
	stats := engine.Stats()

	row := FederationBenchRow{
		Sites:       n,
		LatencyMs:   latMs,
		FailureRate: rate,
		Queries:     cfg.QueriesPerCell,
		GoodputQPS:  float64(cfg.QueriesPerCell) / wall.Seconds(),
		P50Ms:       lat.Percentile(50),
		P99Ms:       lat.Percentile(99),
		Hedges:      stats.Hedges - statsBase.Hedges,
		HedgeWins:   stats.HedgeWins - statsBase.HedgeWins,
		Retries:     stats.Retries - statsBase.Retries,
		Tripped:     stats.Tripped - statsBase.Tripped,
	}
	if total > 0 {
		row.Completeness = float64(answered) / float64(total)
	}
	return row, nil
}

// startBenchFleet stands up n live sites cycling the three store shapes
// (small datasets — the sweep measures the federation layer, not the
// stores) and binds them over the wire into a BindingTransport.
func startBenchFleet(seed int64, n int) ([]*core.Site, []string, *federation.BindingTransport, error) {
	fleet := make([]*core.Site, 0, n)
	names := make([]string, 0, n)
	c := client.NewWithoutRegistry()
	transport := federation.NewBindingTransport()
	for i := 0; i < n; i++ {
		var (
			w    mapping.ApplicationWrapper
			name string
			err  error
		)
		s := seed + int64(i)
		switch i % 3 {
		case 0:
			name = fmt.Sprintf("HPL-%d", i)
			w, err = mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: s}))
		case 1:
			name = fmt.Sprintf("SMG98-%d", i)
			w, err = mapping.NewStar(datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 2, TimeBins: 3, Seed: s}))
		case 2:
			name = fmt.Sprintf("RMA-%d", i)
			w, err = mapping.NewFlatFile(datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 3, Seed: s}))
		}
		if err != nil {
			closeFleet(fleet)
			return nil, nil, nil, err
		}
		site, err := core.StartSite(core.SiteConfig{AppName: name, Wrappers: []mapping.ApplicationWrapper{w}})
		if err != nil {
			closeFleet(fleet)
			return nil, nil, nil, err
		}
		fleet = append(fleet, site)
		b, err := c.BindFactory(name, site.ApplicationFactoryHandle())
		if err != nil {
			closeFleet(fleet)
			return nil, nil, nil, err
		}
		transport.AddSite(name, b)
		names = append(names, name)
	}
	return fleet, names, transport, nil
}

func closeFleet(fleet []*core.Site) {
	for _, s := range fleet {
		s.Close()
	}
}

// Render prints the sweep and its shape checks.
func (r *FederationBenchReport) Render() string {
	header := []string{"Sites", "WAN lat (ms)", "Failure rate", "Queries", "Completeness", "Goodput (q/s)", "p50 ms", "p99 ms", "Hedges (won)", "Retries", "Tripped"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Sites), fmt.Sprint(row.LatencyMs), fmt.Sprintf("%.0f%%", row.FailureRate*100),
			fmt.Sprint(row.Queries), fmt.Sprintf("%.3f", row.Completeness), Fmt(row.GoodputQPS),
			Fmt(row.P50Ms), Fmt(row.P99Ms),
			fmt.Sprintf("%d (%d)", row.Hedges, row.HedgeWins),
			fmt.Sprint(row.Retries), fmt.Sprint(row.Tripped),
		})
	}
	title := fmt.Sprintf("Federated scatter-gather under emulated WAN (seed=%d, per-site timeout=%s, %d queries/cell)",
		r.Seed, r.PerSiteTimeout, r.QueriesPerCell)
	out := viz.Table(title, header, rows)
	out += "Shape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape evaluates the robustness claims.
func (r *FederationBenchReport) CheckShape() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}

	// Fault-free cells are complete; faulted cells still deliver the
	// overwhelming share of site answers (failures are retried within
	// the budget, not surrendered).
	for _, row := range r.Rows {
		if row.FailureRate == 0 {
			check(fmt.Sprintf("%d sites @%dms fault-free: complete", row.Sites, row.LatencyMs),
				row.Completeness == 1)
		} else {
			check(fmt.Sprintf("%d sites @%dms %.0f%% failures: completeness >= 0.95", row.Sites, row.LatencyMs, row.FailureRate*100),
				row.Completeness >= 0.95)
		}
	}
	// Latency percentiles are coherent everywhere.
	coherent := true
	for _, row := range r.Rows {
		if row.P50Ms > row.P99Ms {
			coherent = false
		}
	}
	check("p50 <= p99 in every cell", coherent)
	// The WAN latency axis registers: fault-free p50 grows with the
	// injected latency.
	if len(r.LatencyAxis()) >= 2 {
		lats := r.LatencyAxis()
		lo, hi := lats[0], lats[len(lats)-1]
		for _, n := range r.SiteAxis() {
			a, b := r.row(n, lo, 0), r.row(n, hi, 0)
			if a.Queries > 0 && b.Queries > 0 {
				check(fmt.Sprintf("%d sites: p50 grows with WAN latency (%dms -> %dms)", n, lo, hi),
					b.P50Ms > a.P50Ms)
			}
		}
	}
	// The headline acceptance bound: graceful tail degradation at 4
	// sites, 10% per-site failures.
	for _, latMs := range r.LatencyAxis() {
		ratio := r.TailRatioAt(4, latMs, 0.10)
		if ratio > 0 {
			check(fmt.Sprintf("4 sites @%dms: p99 at 10%% failures <= 3x fault-free p99 (ratio %.2f)", latMs, ratio),
				ratio <= 3)
		}
	}
	return out
}

// SiteAxis returns the distinct site counts in row order.
func (r *FederationBenchReport) SiteAxis() []int {
	return r.axis(func(row FederationBenchRow) int { return row.Sites })
}

// LatencyAxis returns the distinct WAN latencies in row order.
func (r *FederationBenchReport) LatencyAxis() []int {
	return r.axis(func(row FederationBenchRow) int { return row.LatencyMs })
}

func (r *FederationBenchReport) axis(key func(FederationBenchRow) int) []int {
	var out []int
	seen := map[int]bool{}
	for _, row := range r.Rows {
		if k := key(row); !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *FederationBenchReport) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}
