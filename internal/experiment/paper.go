package experiment

// This file records the paper's published measurements, so every report
// can print paper-vs-measured side by side and check that the qualitative
// relationships hold.

// PaperTable4Row is one row of the paper's Table 4 (PPerfGrid Overhead).
type PaperTable4Row struct {
	Source        string
	StoreType     string
	MeanTotalMs   float64
	MeanMappingMs float64
	MeanOverhead  float64
	OverheadPct   float64 // percentage of total time
	COV           float64
	BytesPerQuery float64
}

// PaperTable4 is the paper's Table 4.
var PaperTable4 = []PaperTable4Row{
	{Source: "HPL", StoreType: "RDBMS (single table)", MeanTotalMs: 112.85, MeanMappingMs: 81.8, MeanOverhead: 31.05, OverheadPct: 28, COV: 0.47, BytesPerQuery: 8},
	{Source: "RMA", StoreType: "ASCII text files", MeanTotalMs: 358.49, MeanMappingMs: 97.65, MeanOverhead: 260.84, OverheadPct: 71, COV: 0.67, BytesPerQuery: 5692},
	{Source: "SMG98", StoreType: "RDBMS (5 tables)", MeanTotalMs: 74306.9, MeanMappingMs: 66037.17, MeanOverhead: 8269.73, OverheadPct: 11, COV: 0.14, BytesPerQuery: 421844},
}

// PaperTable5Row is one row of the paper's Table 5 (PPerfGrid Caching).
type PaperTable5Row struct {
	Source         string
	StoreType      string
	MeanOffMs      float64
	MeanOnMs       float64
	RelativeChange float64 // percent
	Speedup        float64
}

// PaperTable5 is the paper's Table 5.
var PaperTable5 = []PaperTable5Row{
	{Source: "HPL", StoreType: "PostgreSQL", MeanOffMs: 107.39, MeanOnMs: 54.77, RelativeChange: 96.05, Speedup: 1.96},
	{Source: "RMA", StoreType: "ASCII Text Files", MeanOffMs: 280.55, MeanOnMs: 271.84, RelativeChange: 3.20, Speedup: 1.03},
	{Source: "SMG98", StoreType: "PostgreSQL", MeanOffMs: 50693.06, MeanOnMs: 368.58, RelativeChange: 13653.59, Speedup: 137.54},
}

// PaperFigure12 records the per-point speedups beneath the paper's
// Figure 12: execution counts and the speedup of the two-host (optimized)
// configuration over one host. The 124-instance single-host run hit
// socket timeouts in the paper, so its speedup is absent (N/A).
var PaperFigure12 = struct {
	ExecutionCounts []int
	Speedups        map[int]float64
	MeanSpeedup     float64
}{
	ExecutionCounts: []int{2, 4, 8, 16, 32, 64, 124},
	Speedups:        map[int]float64{2: 1.49, 4: 2.31, 8: 1.83, 16: 1.67, 32: 2.46, 64: 2.17},
	MeanSpeedup:     2.14,
}
