package experiment

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"pperfgrid/internal/minidb"
)

// This file is the durable-engine evaluation: the disk-resident segment
// engine measured against the in-memory engine on the same data and the
// same queries, plus the two ablations the design claims rest on
// (zone-map block skipping and WAL group commit) and the recovery-time
// curve.
//
// The query sweep runs three scenarios over a 10^6-row table whose range
// column (ts) is correlated with insertion order — the layout zone maps
// exploit — and deliberately carries NO ordered index on ts, so BETWEEN
// runs through the block-scan path the zone maps prune rather than an
// index walk:
//
//	hot-hit      full-scan aggregate with every block resident in the
//	             page cache — the zero-per-row-alloc decoded-block path
//	range        selective BETWEEN (~0.1% of rows) with zone-map pruning
//	             on; also measured with pruning off for the ablation
//	cold         full-scan aggregate with the page cache disabled, so
//	             every block decodes from disk every time
//
// Each scenario also runs on an in-memory database loaded with identical
// rows; the disk/memory ratio is the cost of durability on that path.
//
// pperfgrid-bench -durability-bench drives it and emits BENCH_PR10.json.

// DurabilityBenchConfig tunes the durable-engine evaluation.
type DurabilityBenchConfig struct {
	// Rows is the fact-table size. 0 means 10^6.
	Rows int
	// Writers is the concurrent committer count for the group-commit
	// comparison. 0 means 64 — enough concurrency that a leader's fsync
	// covers a deep follower batch.
	Writers int
	// CommitsPerWriter is each committer's transaction count. 0 means 50.
	CommitsPerWriter int
	// RecoveryRows is the dataset-size axis of the recovery-time curve.
	// Nil means {Rows/100, Rows/10, Rows}.
	RecoveryRows []int
	// Dir is the scratch directory; "" means a fresh os.MkdirTemp that is
	// removed when the run finishes.
	Dir string
	// Seed feeds the row generator.
	Seed int64
}

func (c *DurabilityBenchConfig) withDefaults() {
	if c.Rows <= 0 {
		c.Rows = 1_000_000
	}
	if c.Writers <= 0 {
		c.Writers = 64
	}
	if c.CommitsPerWriter <= 0 {
		c.CommitsPerWriter = 50
	}
	if c.RecoveryRows == nil {
		c.RecoveryRows = []int{c.Rows / 100, c.Rows / 10, c.Rows}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// QueryCell is one scenario measured on both engines.
type QueryCell struct {
	Scenario   string  `json:"scenario"`
	SQL        string  `json:"sql"`
	Plan       string  `json:"plan"` // disk-engine EXPLAIN
	ResultRows int     `json:"resultRows"`
	DiskNs     float64 `json:"diskNsPerOp"`
	MemNs      float64 `json:"memNsPerOp"`
	// Ratio is disk/memory; < 1 means the disk engine is faster (the
	// pruned range scan is, because zone maps skip what memory reads).
	Ratio float64 `json:"diskOverMemory"`
	// Blocks/BlocksSkipped are the EXPLAIN zone-map counters (sealed
	// blocks total and pruned at plan time).
	Blocks        int `json:"blocks,omitempty"`
	BlocksSkipped int `json:"blocksSkipped,omitempty"`
}

// ZoneMapAblation is the pruned-vs-unpruned range scan on the same disk
// database, same query, same warm cache.
type ZoneMapAblation struct {
	PrunedNs    float64 `json:"prunedNsPerOp"`
	UnprunedNs  float64 `json:"unprunedNsPerOp"`
	Speedup     float64 `json:"speedup"`
	ScanSkipped int64   `json:"scanBlocksSkipped"` // engine counter delta during the pruned runs
}

// IngestCell is one durable-ingest configuration.
type IngestCell struct {
	Mode          string  `json:"mode"` // "group-commit" | "serialized-fsync"
	Writers       int     `json:"writers"`
	Commits       int     `json:"commits"`
	WallMs        float64 `json:"wallMs"`
	CommitsPerSec float64 `json:"commitsPerSec"`
	Fsyncs        int64   `json:"walFsyncs"`
}

// RecoveryPoint is one point on the recovery-time curve: build a
// database of Rows rows, close it cleanly, and time a fresh Open.
type RecoveryPoint struct {
	Rows       int     `json:"rows"`
	SealedRows int     `json:"sealedRows"`
	Segments   int     `json:"segments"`
	OpenMs     float64 `json:"openMs"`
}

// DurabilityReport is the full durable-engine evaluation.
type DurabilityReport struct {
	Rows               int             `json:"rows"`
	SealedRows         int             `json:"sealedRows"`
	Segments           int             `json:"segments"`
	Queries            []QueryCell     `json:"queries"`
	ZoneMap            ZoneMapAblation `json:"zoneMapAblation"`
	Ingest             []IngestCell    `json:"ingest"`
	GroupCommitSpeedup float64         `json:"groupCommitSpeedup"`
	Recovery           []RecoveryPoint `json:"recoveryCurve"`
	// Differential counts query instances checked byte-identical across
	// disk planned, disk naive, and memory planned executors.
	Differential int `json:"differentialQueriesChecked"`
}

const durabilitySchema = `CREATE TABLE samples (
	id INT, ts INT, host TEXT, metric TEXT, val FLOAT
)`

// durabilityRows generates n rows whose ts column grows monotonically
// with insertion order (so sealed blocks carry tight, disjoint ts zone
// maps) while val and the text columns stay uncorrelated.
func durabilityRows(n int, seed int64) [][]minidb.Value {
	rng := rand.New(rand.NewSource(seed))
	hosts := []string{"node-a", "node-b", "node-c", "node-d"}
	metrics := []string{"flops", "cache_miss", "wall_clock", "mpi_wait"}
	rows := make([][]minidb.Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []minidb.Value{
			minidb.Int(int64(i)),
			minidb.Int(int64(i)*10 + rng.Int63n(10)), // monotone, jittered
			minidb.Text(hosts[rng.Intn(len(hosts))]),
			minidb.Text(metrics[rng.Intn(len(metrics))]),
			minidb.Float(rng.Float64() * 100),
		}
	}
	return rows
}

func loadDurability(db *minidb.Database, rows [][]minidb.Value) error {
	return db.BulkLoad(func() error {
		if _, err := db.Exec(durabilitySchema); err != nil {
			return err
		}
		for off := 0; off < len(rows); off += 8192 {
			end := off + 8192
			if end > len(rows) {
				end = len(rows)
			}
			if err := db.InsertRows("samples", rows[off:end]); err != nil {
				return err
			}
		}
		return nil
	})
}

// RunDurabilityBench runs the full durable-engine evaluation.
func RunDurabilityBench(cfg DurabilityBenchConfig) (*DurabilityReport, error) {
	cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "pperfgrid-durability-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	rows := durabilityRows(cfg.Rows, cfg.Seed)

	// The memory baseline: identical rows, identical (absent) indexes.
	mem := minidb.NewDatabase()
	if _, err := mem.Exec(durabilitySchema); err != nil {
		return nil, err
	}
	if err := mem.InsertRows("samples", rows); err != nil {
		return nil, err
	}

	// The disk database under test. The page-cache budget is sized so the
	// whole decoded dataset fits: the hot-hit scenario measures the
	// cache-hit path, not eviction.
	diskDir := filepath.Join(dir, "main")
	opts := minidb.Options{Dir: diskDir, PageCacheBytes: 1 << 30}
	db, err := minidb.Open(opts)
	if err != nil {
		return nil, err
	}
	if err := loadDurability(db, rows); err != nil {
		db.Close()
		return nil, err
	}

	rep := &DurabilityReport{Rows: cfg.Rows}
	st := db.EngineStats()
	rep.SealedRows, rep.Segments = st.SealedRows, st.Segments

	// The selective range: ~0.1% of rows, centered mid-table. ts is
	// monotone so the match set lives in a handful of adjacent blocks and
	// zone maps prune the rest.
	lo := int64(cfg.Rows/2) * 10
	hi := lo + int64(cfg.Rows/1000)*10
	rangeSQL := fmt.Sprintf("SELECT COUNT(*), AVG(val) FROM samples WHERE ts BETWEEN %d AND %d", lo, hi)
	scanSQL := "SELECT COUNT(*), AVG(val), MIN(ts), MAX(ts) FROM samples"

	// Differential gate: every scenario must agree byte-for-byte across
	// disk planned, disk naive, and memory planned execution.
	for _, sql := range []string{rangeSQL, scanSQL, "SELECT COUNT(*) FROM samples WHERE host = 'node-b' AND val < 1.0"} {
		if err := diffCheck(db, mem, sql); err != nil {
			db.Close()
			return nil, err
		}
		rep.Differential++
	}

	// Query sweep. Warm every path once before timing.
	cells := []struct{ name, sql string }{
		{"hot-hit full scan", scanSQL},
		{"selective range (zone maps)", rangeSQL},
	}
	for _, c := range cells {
		cell, err := timeCell(c.name, c.sql, db, mem)
		if err != nil {
			db.Close()
			return nil, err
		}
		rep.Queries = append(rep.Queries, *cell)
	}

	// Zone-map ablation on the warm database: same range query with
	// pruning toggled off. The scan-time skip counter delta confirms the
	// pruned runs actually skipped blocks (not just the plan-time probe).
	before := db.EngineStats().BlocksSkipped
	pruned := benchQuery(db, rangeSQL)
	rep.ZoneMap.ScanSkipped = db.EngineStats().BlocksSkipped - before
	db.SetZoneMapPruning(false)
	unpruned := benchQuery(db, rangeSQL)
	db.SetZoneMapPruning(true)
	rep.ZoneMap.PrunedNs = pruned
	rep.ZoneMap.UnprunedNs = unpruned
	if pruned > 0 {
		rep.ZoneMap.Speedup = unpruned / pruned
	}

	// Cold full scan: reopen the same directory with the page cache
	// disabled, so every block fetch decodes from disk.
	if err := db.Close(); err != nil {
		return nil, err
	}
	cold, err := minidb.Open(minidb.Options{Dir: diskDir, PageCacheBytes: -1, DisableAutoCompact: true})
	if err != nil {
		return nil, err
	}
	coldCell, err := timeCell("cold full scan (cache off)", scanSQL, cold, mem)
	if err != nil {
		cold.Close()
		return nil, err
	}
	rep.Queries = append(rep.Queries, *coldCell)
	if err := cold.Close(); err != nil {
		return nil, err
	}

	// Durable ingest: the same committer pool with group commit on and
	// off. Each InsertRow is one durable commit (one fsync barrier).
	group, err := runIngest(filepath.Join(dir, "ingest-group"), cfg, false)
	if err != nil {
		return nil, err
	}
	serial, err := runIngest(filepath.Join(dir, "ingest-serial"), cfg, true)
	if err != nil {
		return nil, err
	}
	rep.Ingest = []IngestCell{*group, *serial}
	if serial.CommitsPerSec > 0 {
		rep.GroupCommitSpeedup = group.CommitsPerSec / serial.CommitsPerSec
	}

	// Recovery curve: build, close cleanly, time the reopen (WAL replay +
	// checkpoint restore + segment directory load).
	for i, n := range cfg.RecoveryRows {
		pt, err := recoveryPoint(filepath.Join(dir, fmt.Sprintf("recover-%d", i)), n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rep.Recovery = append(rep.Recovery, *pt)
	}
	return rep, nil
}

// timeCell measures one SQL statement on the disk and memory engines and
// captures the disk plan's zone-map counters.
func timeCell(name, sql string, db, mem *minidb.Database) (*QueryCell, error) {
	info, err := db.Explain(sql)
	if err != nil {
		return nil, err
	}
	rs, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	cell := &QueryCell{
		Scenario:      name,
		SQL:           sql,
		Plan:          info.String(),
		ResultRows:    len(rs.Rows),
		Blocks:        info.Blocks,
		BlocksSkipped: info.BlocksSkipped,
	}
	cell.DiskNs = benchQuery(db, sql)
	cell.MemNs = benchQuery(mem, sql)
	if cell.MemNs > 0 {
		cell.Ratio = cell.DiskNs / cell.MemNs
	}
	return cell, nil
}

func benchQuery(db *minidb.Database, sql string) float64 {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return 0
	}
	if _, err := stmt.Query(); err != nil { // warm caches and plans
		return 0
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Query(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(r.NsPerOp())
}

// diffCheck requires identical results from the disk planned executor,
// the disk naive executor, and the memory planned executor.
func diffCheck(db, mem *minidb.Database, sql string) error {
	want, err := mem.Query(sql)
	if err != nil {
		return fmt.Errorf("memory %q: %w", sql, err)
	}
	got, err := db.Query(sql)
	if err != nil {
		return fmt.Errorf("disk %q: %w", sql, err)
	}
	naive, err := db.QueryNaive(sql)
	if err != nil {
		return fmt.Errorf("disk naive %q: %w", sql, err)
	}
	w, g, n := renderRS(want), renderRS(got), renderRS(naive)
	if g != w {
		return fmt.Errorf("differential mismatch (disk vs memory) for %q:\ndisk:   %s\nmemory: %s", sql, g, w)
	}
	if n != w {
		return fmt.Errorf("differential mismatch (naive vs memory) for %q:\nnaive:  %s\nmemory: %s", sql, n, w)
	}
	return nil
}

func renderRS(rs *minidb.ResultSet) string {
	var b strings.Builder
	for _, row := range rs.Strings() {
		b.WriteString(strings.Join(row, "|"))
		b.WriteByte('\n')
	}
	return b.String()
}

// runIngest times cfg.Writers concurrent committers each performing
// cfg.CommitsPerWriter durable single-row inserts.
//
// Group commit only batches when follower appends overlap the leader's
// fsync. On a single-P runtime that overlap is a scheduling accident:
// the leader's blocking fsync keeps its P until sysmon's syscall retake,
// which can outlast the fsync itself and serialize the committers. Extra
// Ps let followers run the moment the leader blocks, so the measurement
// reflects the engine, not the scheduler.
func runIngest(dir string, cfg DurabilityBenchConfig, serialize bool) (*IngestCell, error) {
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	db, err := minidb.Open(minidb.Options{Dir: dir, DisableGroupCommit: serialize, DisableAutoCompact: true})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Exec(durabilitySchema); err != nil {
		return nil, err
	}
	total := cfg.Writers * cfg.CommitsPerWriter
	errs := make(chan error, cfg.Writers)
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		go func(w int) {
			for i := 0; i < cfg.CommitsPerWriter; i++ {
				id := int64(w*cfg.CommitsPerWriter + i)
				if err := db.InsertRow("samples",
					minidb.Int(id), minidb.Int(id*10), minidb.Text("node-a"),
					minidb.Text("flops"), minidb.Float(1.5)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < cfg.Writers; w++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	wall := time.Since(start)
	mode := "group-commit"
	if serialize {
		mode = "serialized-fsync"
	}
	return &IngestCell{
		Mode:          mode,
		Writers:       cfg.Writers,
		Commits:       total,
		WallMs:        float64(wall) / float64(time.Millisecond),
		CommitsPerSec: float64(total) / wall.Seconds(),
		Fsyncs:        db.EngineStats().WALFsyncs,
	}, nil
}

// recoveryPoint builds an n-row database, closes it cleanly, and times
// the reopen.
func recoveryPoint(dir string, n int, seed int64) (*RecoveryPoint, error) {
	db, err := minidb.Open(minidb.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	if err := loadDurability(db, durabilityRows(n, seed)); err != nil {
		db.Close()
		return nil, err
	}
	// Leave a live WAL tail beyond the checkpoint so recovery exercises
	// replay, not just checkpoint restore.
	for i := 0; i < 100; i++ {
		if err := db.InsertRow("samples",
			minidb.Int(int64(n+i)), minidb.Int(int64(n+i)*10), minidb.Text("node-d"),
			minidb.Text("tail"), minidb.Float(0)); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.Close(); err != nil {
		return nil, err
	}
	start := time.Now()
	db, err = minidb.Open(minidb.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	openMs := float64(time.Since(start)) / float64(time.Millisecond)
	got, err := db.NumRows("samples")
	if err == nil && got != n+100 {
		err = fmt.Errorf("recovery: %d rows, want %d", got, n+100)
	}
	st := db.EngineStats()
	db.Close()
	if err != nil {
		return nil, err
	}
	return &RecoveryPoint{Rows: got, SealedRows: st.SealedRows, Segments: st.Segments, OpenMs: openMs}, nil
}

// Render formats the report for the terminal.
func (r *DurabilityReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nDurable engine evaluation — %d rows (%d sealed in %d segments)\n\n",
		r.Rows, r.SealedRows, r.Segments)
	fmt.Fprintf(&b, "%-30s %14s %14s %8s %s\n", "scenario", "disk ns/op", "memory ns/op", "ratio", "plan")
	for _, q := range r.Queries {
		fmt.Fprintf(&b, "%-30s %14.0f %14.0f %8.2f %s\n", q.Scenario, q.DiskNs, q.MemNs, q.Ratio, q.Plan)
	}
	fmt.Fprintf(&b, "\nZone-map ablation (same disk db, warm cache):\n")
	fmt.Fprintf(&b, "  pruned %12.0f ns/op   unpruned %12.0f ns/op   speedup %.1fx   blocks skipped/run batch %d\n",
		r.ZoneMap.PrunedNs, r.ZoneMap.UnprunedNs, r.ZoneMap.Speedup, r.ZoneMap.ScanSkipped)
	fmt.Fprintf(&b, "\nDurable ingest (%d writers, 1 row per commit):\n", r.Ingest[0].Writers)
	for _, c := range r.Ingest {
		fmt.Fprintf(&b, "  %-18s %7d commits in %9.1f ms = %9.0f commits/s (%d fsyncs)\n",
			c.Mode, c.Commits, c.WallMs, c.CommitsPerSec, c.Fsyncs)
	}
	fmt.Fprintf(&b, "  group-commit speedup: %.1fx\n", r.GroupCommitSpeedup)
	fmt.Fprintf(&b, "\nRecovery (clean close + WAL tail, timed reopen):\n")
	for _, p := range r.Recovery {
		fmt.Fprintf(&b, "  %9d rows (%d sealed, %d segments): %8.1f ms\n", p.Rows, p.SealedRows, p.Segments, p.OpenMs)
	}
	fmt.Fprintf(&b, "\nDifferential: %d query shapes byte-identical across disk planned / disk naive / memory.\n", r.Differential)
	return b.String()
}

// CheckShape verifies the acceptance criteria. Violations are returned,
// not fatal: quick CI runs print them, the committed full run must be
// clean.
func (r *DurabilityReport) CheckShape() []string {
	var bad []string
	var rng *QueryCell
	for i := range r.Queries {
		if strings.HasPrefix(r.Queries[i].Scenario, "selective range") {
			rng = &r.Queries[i]
		}
	}
	if rng == nil {
		bad = append(bad, "no selective-range cell")
	} else {
		if rng.BlocksSkipped <= 0 {
			bad = append(bad, "selective range: EXPLAIN reports no blocks skipped")
		}
		if rng.Ratio > 3 {
			bad = append(bad, fmt.Sprintf("selective range: disk %.2fx memory, want <= 3x", rng.Ratio))
		}
	}
	if r.ZoneMap.Speedup < 20 {
		bad = append(bad, fmt.Sprintf("zone-map ablation: %.1fx speedup, want >= 20x", r.ZoneMap.Speedup))
	}
	if r.ZoneMap.ScanSkipped <= 0 {
		bad = append(bad, "zone-map ablation: scan-time skip counter did not move")
	}
	if r.GroupCommitSpeedup < 10 {
		bad = append(bad, fmt.Sprintf("group commit: %.1fx over serialized fsync, want >= 10x", r.GroupCommitSpeedup))
	}
	if n := len(r.Recovery); n > 0 {
		if last := r.Recovery[n-1]; last.OpenMs > 30_000 {
			bad = append(bad, fmt.Sprintf("recovery: %d rows took %.0f ms, want seconds", last.Rows, last.OpenMs))
		}
	}
	return bad
}

// ShapeOK reports whether CheckShape found no violations.
func (r *DurabilityReport) ShapeOK() bool { return len(r.CheckShape()) == 0 }
