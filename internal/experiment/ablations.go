package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
	"pperfgrid/internal/viz"
)

// This file holds ablation studies beyond the paper's evaluation,
// isolating the design choices DESIGN.md calls out:
//
//   - SOAP marshalling cost vs payload size (where Table 4's overhead
//     comes from).
//   - Manager replica policies (interleave vs block vs hash).
//   - Cache replacement policies under a skewed query mix.
//   - Local bypass vs Services-Layer access (future-work optimization).

// SOAPOverheadPoint is one payload size's marshalling cost.
type SOAPOverheadPoint struct {
	Items        int
	PayloadBytes int
	EncodeDecode time.Duration // round-trip encode request + decode request + encode response + decode response
}

// RunSOAPOverheadSweep measures pure marshalling/demarshalling cost as the
// result array grows, isolating the payload-proportional component of the
// Table 4 overhead (no sockets involved).
func RunSOAPOverheadSweep(itemCounts []int, itemBytes, rounds int) ([]SOAPOverheadPoint, error) {
	if itemBytes <= 0 {
		itemBytes = 64
	}
	if rounds <= 0 {
		rounds = 50
	}
	var out []SOAPOverheadPoint
	for _, n := range itemCounts {
		items := make([]string, n)
		for i := range items {
			items[i] = fmt.Sprintf("%0*d", itemBytes, i)
		}
		payload := 0
		for _, s := range items {
			payload += len(s)
		}
		var total time.Duration
		for r := 0; r < rounds; r++ {
			start := time.Now()
			req, err := soap.EncodeRequest("getPR", nil, items)
			if err != nil {
				return nil, err
			}
			if _, err := soap.DecodeRequest(req); err != nil {
				return nil, err
			}
			resp, err := soap.EncodeResponse("getPR", nil, items)
			if err != nil {
				return nil, err
			}
			if _, err := soap.DecodeResponse(resp); err != nil {
				return nil, err
			}
			total += time.Since(start)
		}
		out = append(out, SOAPOverheadPoint{
			Items:        n,
			PayloadBytes: payload,
			EncodeDecode: total / time.Duration(rounds),
		})
	}
	return out, nil
}

// RenderSOAPOverhead formats the sweep as a table.
func RenderSOAPOverhead(points []SOAPOverheadPoint) string {
	header := []string{"Items", "Payload (B)", "Marshal+demarshal (µs)"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprint(p.Items), fmt.Sprint(p.PayloadBytes),
			Fmt(float64(p.EncodeDecode) / float64(time.Microsecond)),
		})
	}
	return viz.Table("Ablation — SOAP marshalling cost vs payload", header, rows)
}

// PolicyAblationRow is one replica policy's outcome.
type PolicyAblationRow struct {
	Policy     string
	WallMs     float64
	HostSpread int // max(instances per host) - min(instances per host)
}

// RunPolicyAblation compares Manager replica policies on an N-host HPL
// site: same threaded query batch, different placement. Interleaving,
// hashing, and the load-aware policies balance instances; block placement
// balances too on a full batch but skews under prefix batches — the
// spread column shows placement, the wall-time column its effect under
// single-CPU hosts. nil policies runs every built-in policy; replicas <= 0
// means the classic two hosts.
func RunPolicyAblation(cfg Config, policies []string, replicas, executions, repeats int) ([]PolicyAblationRow, error) {
	cfg = cfg.withDefaults()
	if len(policies) == 0 {
		policies = core.AllPolicyNames
	}
	if replicas <= 0 {
		replicas = 2
	}
	if executions <= 0 {
		executions = 32
	}
	if repeats <= 0 {
		repeats = 5
	}
	var out []PolicyAblationRow
	for _, name := range policies {
		policy, err := core.PolicyByName(name)
		if err != nil {
			return nil, err
		}
		d := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: cfg.Seed})
		wrappers := make([]mapping.ApplicationWrapper, replicas)
		for i := range wrappers {
			w, err := mapping.NewWideTable(d)
			if err != nil {
				return nil, err
			}
			delay := time.Duration(paperMappingMs("HPL") * cfg.Scale * float64(time.Millisecond))
			wrappers[i] = mapping.WithLatency(w, delay, 0)
		}
		site, err := core.StartSite(core.SiteConfig{
			AppName:    "HPL",
			Wrappers:   wrappers,
			Workers:    1,
			CachingOff: true,
			Policy:     policy,
		})
		if err != nil {
			return nil, err
		}
		row, err := runPolicyBatch(site, executions, repeats)
		site.Close()
		if err != nil {
			return nil, err
		}
		row.Policy = policy.Name()
		out = append(out, row)
	}
	return out, nil
}

func runPolicyBatch(site *core.Site, executions, repeats int) (PolicyAblationRow, error) {
	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		return PolicyAblationRow{}, err
	}
	// Query the full set (placing every instance under the policy), then
	// run the batch against a prefix subset, like the paper's Figure 9
	// batch (runid 100-109). Under block placement the prefix lands on
	// one host; under interleaving it splits evenly.
	refs, err := b.QueryExecutions(nil)
	if err != nil {
		return PolicyAblationRow{}, err
	}
	refs = refs[:executions]
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	start := time.Now()
	results := client.QueryPerformanceResults(refs, q, client.ParallelOptions{Repeats: repeats})
	wall := time.Since(start)
	for _, r := range results {
		if r.Err != nil {
			return PolicyAblationRow{}, r.Err
		}
	}
	lo, hi := -1, -1
	for _, v := range site.Manager().PerHostCounts() {
		if lo == -1 || v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	spread := 0
	if lo >= 0 {
		spread = hi - lo
	}
	return PolicyAblationRow{
		WallMs:     float64(wall) / float64(time.Millisecond),
		HostSpread: spread,
	}, nil
}

// RenderPolicyAblation formats the comparison.
func RenderPolicyAblation(rows []PolicyAblationRow, replicas int) string {
	if replicas <= 0 {
		replicas = 2
	}
	header := []string{"Policy", "Batch wall (ms)", "Host spread"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Policy, Fmt(r.WallMs), fmt.Sprint(r.HostSpread)})
	}
	return viz.Table(fmt.Sprintf("Ablation — Manager replica policies (%d hosts, 1 CPU each)", replicas), header, cells)
}

// CachePolicyRow is one replacement policy's outcome under a skewed mix.
type CachePolicyRow struct {
	Policy    string
	HitRate   float64
	MeanMs    float64
	Evictions int64
}

// RunCachePolicyAblation drives a capacity-limited Performance Results
// cache with a Zipf-like query mix over an SMG98-shaped execution: a few
// hot queries, a long tail, and one expensive whole-trace query that
// recurs periodically. Cost-aware replacement should protect the
// expensive entry that LRU/LFU evict under tail pressure.
func RunCachePolicyAblation(cfg Config, capacity, queries int) ([]CachePolicyRow, error) {
	cfg = cfg.withDefaults()
	if capacity <= 0 {
		capacity = 8
	}
	if queries <= 0 {
		queries = 300
	}
	d := datagen.SMG98(cfg.SMG98)
	var out []CachePolicyRow
	for _, policy := range []string{"lru", "lfu", "cost"} {
		star, err := mapping.NewStar(d)
		if err != nil {
			return nil, err
		}
		delay := time.Duration(paperMappingMs("SMG98") * cfg.Scale / 50 * float64(time.Millisecond))
		slowed := mapping.WithLatency(star, delay, 0)
		ew, err := slowed.ExecutionWrapper(d.Execs[0].ID)
		if err != nil {
			return nil, err
		}
		cache := core.NewCache(policy, capacity)
		svc := core.NewExecutionService(d.Execs[0].ID, ew, cache, nil)

		tr := d.Execs[0].Time
		rng := rand.New(rand.NewSource(cfg.Seed))
		var sample Sample
		for i := 0; i < queries; i++ {
			var q perfdata.Query
			switch {
			case i%10 == 0:
				// The recurring expensive query: whole trace, all foci.
				q = perfdata.Query{Metric: "func_calls", Time: tr, Type: "vampir"}
			case rng.Float64() < 0.5:
				// Hot set: per-process func_calls.
				p := rng.Intn(2)
				q = perfdata.Query{Metric: "func_calls", Foci: []string{fmt.Sprintf("/Process/%d", p)}, Time: tr, Type: "vampir"}
			default:
				// Long tail: per-function windows.
				fn := datagen.SMG98Functions[rng.Intn(len(datagen.SMG98Functions))]
				q = perfdata.Query{
					Metric: "excl_time",
					Foci:   []string{fmt.Sprintf("/Process/%d/Code/MPI/%s", rng.Intn(2), fn)},
					Time:   perfdata.TimeRange{Start: tr.End * rng.Float64() / 2, End: tr.End},
					Type:   "vampir",
				}
			}
			start := time.Now()
			if _, err := svc.PerformanceResults(q); err != nil {
				return nil, err
			}
			sample.Add(float64(time.Since(start)) / float64(time.Millisecond))
		}
		stats := cache.Stats()
		out = append(out, CachePolicyRow{
			Policy:    policy,
			HitRate:   stats.HitRate(),
			MeanMs:    sample.Mean(),
			Evictions: stats.Evictions,
		})
	}
	return out, nil
}

// RenderCachePolicyAblation formats the comparison.
func RenderCachePolicyAblation(rows []CachePolicyRow) string {
	header := []string{"Policy", "Hit rate", "Mean query (ms)", "Evictions"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Policy, Fmt(r.HitRate), Fmt(r.MeanMs), fmt.Sprint(r.Evictions)})
	}
	return viz.Table("Ablation — cache replacement under a skewed SMG98 mix", header, cells)
}

// CacheBytesRow is one replacement policy's outcome under a byte budget.
type CacheBytesRow struct {
	Policy    string  `json:"policy"`
	Budget    int64   `json:"budgetBytes"`
	HitRate   float64 `json:"hitRate"`
	MeanMs    float64 `json:"meanMs"`
	Evictions int64   `json:"evictions"`
	PeakBytes int64   `json:"peakBytes"`
	EndBytes  int64   `json:"endBytes"`
}

// RunCacheBytesAblation drives the same skewed SMG98 mix as
// RunCachePolicyAblation against byte-budgeted sharded caches: capacity
// is accounted in result+wire bytes instead of entries, so one recurring
// whole-trace result set competes against many small tail windows for the
// same budget. PeakBytes is sampled after every query; it never exceeds
// the budget (the invariant the byte accounting guarantees).
func RunCacheBytesAblation(cfg Config, budget int64, queries int) ([]CacheBytesRow, error) {
	cfg = cfg.withDefaults()
	if budget <= 0 {
		budget = 64 << 10
	}
	if queries <= 0 {
		queries = 300
	}
	d := datagen.SMG98(cfg.SMG98)
	var out []CacheBytesRow
	for _, policy := range []string{"lru", "lfu", "cost"} {
		star, err := mapping.NewStar(d)
		if err != nil {
			return nil, err
		}
		delay := time.Duration(paperMappingMs("SMG98") * cfg.Scale / 50 * float64(time.Millisecond))
		slowed := mapping.WithLatency(star, delay, 0)
		ew, err := slowed.ExecutionWrapper(d.Execs[0].ID)
		if err != nil {
			return nil, err
		}
		cache := core.NewCacheFromConfig(core.CacheConfig{Policy: policy, MaxBytes: budget})
		svc := core.NewExecutionService(d.Execs[0].ID, ew, cache, nil)

		tr := d.Execs[0].Time
		rng := rand.New(rand.NewSource(cfg.Seed))
		var sample Sample
		var peak int64
		for i := 0; i < queries; i++ {
			var q perfdata.Query
			switch {
			case i%10 == 0:
				q = perfdata.Query{Metric: "func_calls", Time: tr, Type: "vampir"}
			case rng.Float64() < 0.5:
				p := rng.Intn(2)
				q = perfdata.Query{Metric: "func_calls", Foci: []string{fmt.Sprintf("/Process/%d", p)}, Time: tr, Type: "vampir"}
			default:
				fn := datagen.SMG98Functions[rng.Intn(len(datagen.SMG98Functions))]
				q = perfdata.Query{
					Metric: "excl_time",
					Foci:   []string{fmt.Sprintf("/Process/%d/Code/MPI/%s", rng.Intn(2), fn)},
					Time:   perfdata.TimeRange{Start: tr.End * rng.Float64() / 2, End: tr.End},
					Type:   "vampir",
				}
			}
			start := time.Now()
			if _, err := svc.PerformanceResults(q); err != nil {
				return nil, err
			}
			sample.Add(float64(time.Since(start)) / float64(time.Millisecond))
			if b := cache.SizeBytes(); b > peak {
				peak = b
			}
		}
		stats := cache.Stats()
		out = append(out, CacheBytesRow{
			Policy:    policy,
			Budget:    budget,
			HitRate:   stats.HitRate(),
			MeanMs:    sample.Mean(),
			Evictions: stats.Evictions,
			PeakBytes: peak,
			EndBytes:  cache.SizeBytes(),
		})
	}
	return out, nil
}

// RenderCacheBytesAblation formats the comparison.
func RenderCacheBytesAblation(rows []CacheBytesRow) string {
	header := []string{"Policy", "Budget (B)", "Hit rate", "Mean query (ms)", "Evictions", "Peak bytes", "End bytes"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Policy, fmt.Sprint(r.Budget), Fmt(r.HitRate), Fmt(r.MeanMs),
			fmt.Sprint(r.Evictions), fmt.Sprint(r.PeakBytes), fmt.Sprint(r.EndBytes),
		})
	}
	return viz.Table("Ablation — byte-budgeted cache under a skewed SMG98 mix", header, cells)
}

// LocalBypassRow compares Services-Layer and direct-wrapper access.
type LocalBypassRow struct {
	Path   string
	MeanMs float64
}

// RunLocalBypass measures the future-work local-bypass optimization: the
// same getPR query through the full SOAP stack versus in-process through
// the co-located site. The difference is the per-query Services-Layer
// cost a co-located client can avoid.
func RunLocalBypass(cfg Config, queries int) ([]LocalBypassRow, error) {
	cfg = cfg.withDefaults()
	cfg.CachingOff = true
	cfg.Replicas = 1
	if queries <= 0 {
		queries = 50
	}
	src, err := NewRMASource(cfg) // payload-heavy source shows the gap best
	if err != nil {
		return nil, err
	}
	defer src.Close()

	remoteClient := client.NewWithoutRegistry()
	rb, err := remoteClient.BindFactory(src.Name, src.Site.ApplicationFactoryHandle())
	if err != nil {
		return nil, err
	}
	localClient := client.NewWithoutRegistry()
	lb, err := localClient.BindLocal(src.Name, src.Site)
	if err != nil {
		return nil, err
	}

	measure := func(b *client.Binding) (float64, error) {
		refs, err := b.QueryExecutions(nil)
		if err != nil {
			return 0, err
		}
		_, q := src.QueryFor(0)
		var sample Sample
		for i := 0; i < queries; i++ {
			ref := refs[i%len(refs)]
			start := time.Now()
			if _, err := ref.PerformanceResults(q); err != nil {
				return 0, err
			}
			sample.Add(float64(time.Since(start)) / float64(time.Millisecond))
		}
		return sample.Mean(), nil
	}

	remoteMs, err := measure(rb)
	if err != nil {
		return nil, err
	}
	localMs, err := measure(lb)
	if err != nil {
		return nil, err
	}
	return []LocalBypassRow{
		{Path: "services layer (SOAP)", MeanMs: remoteMs},
		{Path: "local bypass (in-process)", MeanMs: localMs},
	}, nil
}

// RenderLocalBypass formats the comparison.
func RenderLocalBypass(rows []LocalBypassRow) string {
	header := []string{"Access path", "Mean getPR (ms)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Path, Fmt(r.MeanMs)})
	}
	out := viz.Table("Ablation — local bypass vs Services Layer (RMA source)", header, cells)
	if len(rows) == 2 && rows[1].MeanMs > 0 {
		out += fmt.Sprintf("Bypass speedup: %s\n", Fmt(rows[0].MeanMs/rows[1].MeanMs))
	}
	return out
}

// NotificationFanoutPoint is one fan-out size's delivery latency.
type NotificationFanoutPoint struct {
	Sinks        int
	AllDelivered time.Duration
}

// RunNotificationFanout measures push-notification delivery: one Execution
// update fanned out to N SOAP sinks hosted in a client container.
func RunNotificationFanout(sinkCounts []int) ([]NotificationFanoutPoint, error) {
	clientCont := container.New(ogsi.NewHosting("x:0"), container.Options{})
	if err := clientCont.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer clientCont.Close()

	var out []NotificationFanoutPoint
	for _, n := range sinkCounts {
		hub := ogsi.NewNotificationHub(container.SOAPSinkDialer())
		done := make(chan struct{}, n)
		for i := 0; i < n; i++ {
			in, err := container.DeploySink(clientCont.Hosting(), ogsi.SinkFunc(func(string, string) error {
				done <- struct{}{}
				return nil
			}))
			if err != nil {
				return nil, err
			}
			if err := hub.SubscribeHandle("updates", in.Handle()); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		hub.Notify("updates", "data changed")
		for i := 0; i < n; i++ {
			<-done
		}
		out = append(out, NotificationFanoutPoint{Sinks: n, AllDelivered: time.Since(start)})
		hub.Flush()
	}
	return out, nil
}

// RenderNotificationFanout formats the sweep.
func RenderNotificationFanout(points []NotificationFanoutPoint) string {
	header := []string{"Sinks", "All delivered (ms)"}
	var cells [][]string
	for _, p := range points {
		cells = append(cells, []string{fmt.Sprint(p.Sinks), Fmt(float64(p.AllDelivered) / float64(time.Millisecond))})
	}
	return viz.Table("Ablation — notification fan-out latency", header, cells)
}
