package experiment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
	"pperfgrid/internal/viz"
)

// This file is the cold-path companion of Table 4: where table4.go
// measures the calibrated end-to-end overhead split, RunTable4Cold
// measures what one cold (cache-off) getPR costs the allocator and the
// CPU per store shape, comparing the vectorized zero-intermediate wire
// path (minidb batches -> mapping.ResultAppender -> streamed envelope
// encode) against the retained row-at-a-time / string-building oracle
// (core.SetRowOracle). No latency calibration is injected: the point is
// the real marshalling and decoding work, not the modelled 2004 store.
//
// pperfgrid-bench -cold-bench drives it and emits BENCH_PR5.json.

// Table4ColdConfig tunes the cold-path experiment.
type Table4ColdConfig struct {
	// Seed feeds the dataset generators (0 means 1).
	Seed int64
	// SMG98 sizes the star store; the zero value uses a bench-appropriate
	// shape.
	SMG98 datagen.SMG98Config
	// Sources restricts the experiment; nil runs all three.
	Sources []string
}

// Table4ColdRow is one measured implementation of one store shape.
type Table4ColdRow struct {
	Source      string  `json:"source"`
	Impl        string  `json:"impl"` // "oracle" or "vectorized"
	Results     int     `json:"resultsPerQuery"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// Table4ColdReport is the full cold-path comparison.
type Table4ColdReport struct {
	Rows []Table4ColdRow `json:"rows"`
	// EnvelopeBytes records the wire envelope size per source; the two
	// implementations were verified byte-identical before measuring.
	EnvelopeBytes map[string]int `json:"envelopeBytes"`
}

// coldStore is one uncalibrated store shape under measurement.
type coldStore struct {
	name string
	svc  *core.ExecutionService
	q    perfdata.Query
}

// newColdStore builds one source's wrapper chain without latency
// injection and an uncached Execution service over it.
func newColdStore(name string, cfg Table4ColdConfig) (*coldStore, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	var (
		w      mapping.ApplicationWrapper
		execID string
		q      perfdata.Query
		err    error
	)
	switch name {
	case "HPL":
		d := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: seed})
		w, err = mapping.NewWideTable(d)
		execID = d.Execs[0].ID
		q = perfdata.Query{Metric: "gflops", Time: d.Execs[0].Time, Type: "hpl"}
	case "RMA":
		d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 12, MessageSizes: 20, Seed: seed})
		w, err = mapping.NewFlatFile(d)
		execID = d.Execs[0].ID
		q = perfdata.Query{Metric: "bandwidth", Time: d.Execs[0].Time, Type: "presta"}
	case "SMG98":
		smgCfg := cfg.SMG98
		if smgCfg.Executions == 0 {
			smgCfg = datagen.SMG98Config{Executions: 4, Processes: 4, TimeBins: 16}
		}
		smgCfg.Seed = seed
		d := datagen.SMG98(smgCfg)
		w, err = mapping.NewStar(d)
		execID = d.Execs[0].ID
		q = perfdata.Query{Metric: "func_calls", Time: d.Execs[0].Time, Type: "vampir"}
	default:
		return nil, fmt.Errorf("experiment: unknown cold source %q", name)
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: build %s cold store: %w", name, err)
	}
	ew, err := w.ExecutionWrapper(execID)
	if err != nil {
		return nil, err
	}
	return &coldStore{name: name, svc: core.NewExecutionService(execID, ew, nil, nil), q: q}, nil
}

// envelope renders one cold getPR response envelope on the selected
// implementation, exactly as the transport would.
func (s *coldStore) envelope(buf *bytes.Buffer, oracle bool) error {
	buf.Reset()
	if oracle {
		returns, err := s.svc.Invoke(core.OpGetPR, s.q.WireParams())
		if err != nil {
			return err
		}
		return soap.EncodeResponseTo(buf, core.OpGetPR, nil, returns)
	}
	took, err := s.svc.InvokeRawTo(core.OpGetPR, s.q.WireParams(), buf)
	if err != nil {
		return err
	}
	if !took {
		return fmt.Errorf("experiment: %s service declined the raw stream path", s.name)
	}
	return nil
}

// RunTable4Cold measures the cold getPR wire path per store shape, both
// implementations, after proving their envelopes byte-identical.
func RunTable4Cold(cfg Table4ColdConfig) (*Table4ColdReport, error) {
	names := cfg.Sources
	if names == nil {
		names = AllSourceNames
	}
	report := &Table4ColdReport{EnvelopeBytes: map[string]int{}}
	for _, name := range names {
		store, err := newColdStore(name, cfg)
		if err != nil {
			return nil, err
		}

		// Differential gate: the two implementations must agree byte for
		// byte before either is worth timing.
		var fast, oracle bytes.Buffer
		core.SetRowOracle(true)
		err = store.envelope(&oracle, true)
		core.SetRowOracle(false)
		if err != nil {
			return nil, err
		}
		if err := store.envelope(&fast, false); err != nil {
			return nil, err
		}
		if !bytes.Equal(fast.Bytes(), oracle.Bytes()) {
			return nil, fmt.Errorf("experiment: %s cold envelopes diverge (%d vs %d bytes)", name, fast.Len(), oracle.Len())
		}
		report.EnvelopeBytes[name] = fast.Len()
		resp, err := soap.DecodeResponse(fast.Bytes())
		if err != nil {
			return nil, err
		}
		nResults := len(resp.Returns)

		for _, impl := range []string{"oracle", "vectorized"} {
			isOracle := impl == "oracle"
			core.SetRowOracle(isOracle)
			buf := soap.GetBuffer()
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := store.envelope(buf, isOracle); err != nil {
						b.Fatal(err)
					}
				}
			})
			soap.PutBuffer(buf)
			core.SetRowOracle(false)
			report.Rows = append(report.Rows, Table4ColdRow{
				Source:      name,
				Impl:        impl,
				Results:     nResults,
				NsPerOp:     float64(r.NsPerOp()),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
		}
	}
	return report, nil
}

// row returns one (source, impl) row.
func (r *Table4ColdReport) row(source, impl string) (Table4ColdRow, bool) {
	for _, row := range r.Rows {
		if row.Source == source && row.Impl == impl {
			return row, true
		}
	}
	return Table4ColdRow{}, false
}

// AllocReduction returns the oracle/vectorized allocs-per-op ratio for a
// source (0 when either row is missing).
func (r *Table4ColdReport) AllocReduction(source string) float64 {
	o, ok1 := r.row(source, "oracle")
	v, ok2 := r.row(source, "vectorized")
	if !ok1 || !ok2 || v.AllocsPerOp == 0 {
		return 0
	}
	return float64(o.AllocsPerOp) / float64(v.AllocsPerOp)
}

// ByteReduction returns the oracle/vectorized B/op ratio for a source.
func (r *Table4ColdReport) ByteReduction(source string) float64 {
	o, ok1 := r.row(source, "oracle")
	v, ok2 := r.row(source, "vectorized")
	if !ok1 || !ok2 || v.BytesPerOp == 0 {
		return 0
	}
	return float64(o.BytesPerOp) / float64(v.BytesPerOp)
}

// Render prints the comparison with per-source reduction ratios.
func (r *Table4ColdReport) Render() string {
	header := []string{"Source", "Impl", "Results/query", "ns/op", "B/op", "allocs/op"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Source, row.Impl, fmt.Sprint(row.Results),
			Fmt(row.NsPerOp), fmt.Sprint(row.BytesPerOp), fmt.Sprint(row.AllocsPerOp),
		})
	}
	out := viz.Table("Cold getPR wire path (cache off) — row/string oracle vs vectorized", header, rows)
	out += "\nReduction (oracle / vectorized):\n"
	for _, name := range AllSourceNames {
		if _, ok := r.row(name, "oracle"); !ok {
			continue
		}
		o, _ := r.row(name, "oracle")
		v, _ := r.row(name, "vectorized")
		speed := 0.0
		if v.NsPerOp > 0 {
			speed = o.NsPerOp / v.NsPerOp
		}
		out += fmt.Sprintf("  %-6s allocs %5.1fx   bytes %5.1fx   time %5.2fx   (envelope %d B, byte-identical)\n",
			name, r.AllocReduction(name), r.ByteReduction(name), speed, r.EnvelopeBytes[name])
	}
	out += "\nShape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape evaluates the PR's acceptance criteria: every shape's
// vectorized path must cut allocations at least 5x, and the SMG98 shape
// (the Mapping-Layer-dominated workload of Table 4) must also halve
// bytes allocated per query.
func (r *Table4ColdReport) CheckShape() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	for _, name := range AllSourceNames {
		if _, ok := r.row(name, "oracle"); !ok {
			continue
		}
		if name == "HPL" {
			// A whole-run store answers with one result, so fixed
			// query-path overhead dominates; require improvement, not the
			// series-shape reduction factor.
			check(fmt.Sprintf("HPL cold allocs/op improved (got %.1fx)", r.AllocReduction(name)),
				r.AllocReduction(name) >= 1.2)
			continue
		}
		check(fmt.Sprintf("%s cold allocs/op reduced >= 5x (got %.1fx)", name, r.AllocReduction(name)),
			r.AllocReduction(name) >= 5)
	}
	if _, ok := r.row("SMG98", "oracle"); ok {
		check(fmt.Sprintf("SMG98 cold B/op reduced >= 2x (got %.1fx)", r.ByteReduction("SMG98")),
			r.ByteReduction("SMG98") >= 2)
	}
	if len(out) == 0 {
		out = append(out, "no checks ran (no sources measured)")
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *Table4ColdReport) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}
