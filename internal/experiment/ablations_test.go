package experiment

import (
	"strings"
	"testing"

	"pperfgrid/internal/datagen"
)

func TestRunSOAPOverheadSweep(t *testing.T) {
	points, err := RunSOAPOverheadSweep([]int{1, 10, 100}, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Cost grows with payload.
	if points[2].EncodeDecode <= points[0].EncodeDecode {
		t.Errorf("marshalling cost flat: %v vs %v", points[0].EncodeDecode, points[2].EncodeDecode)
	}
	if points[1].PayloadBytes != 10*64 {
		t.Errorf("payload = %d", points[1].PayloadBytes)
	}
	if out := RenderSOAPOverhead(points); !strings.Contains(out, "SOAP marshalling") {
		t.Error("render incomplete")
	}
}

func TestRunPolicyAblation(t *testing.T) {
	rows, err := RunPolicyAblation(Config{Scale: 0.001, Seed: 9}, nil, 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PolicyAblationRow{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.WallMs <= 0 {
			t.Errorf("%s: wall = %v", r.Policy, r.WallMs)
		}
	}
	// Every balanced policy places the full 124-instance set within ±1;
	// block balances the full batch too. Adaptive is excluded: it
	// deliberately skews toward hosts it has observed to be faster.
	for _, p := range []string{"interleave", "hash", "least-loaded", "block"} {
		if byName[p].HostSpread > 1 {
			t.Errorf("%s spread = %d", p, byName[p].HostSpread)
		}
	}
	if out := RenderPolicyAblation(rows, 2); !strings.Contains(out, "interleave") {
		t.Error("render incomplete")
	}
}

func TestRunPolicyAblationFourHosts(t *testing.T) {
	rows, err := RunPolicyAblation(Config{Scale: 0.001, Seed: 9}, []string{"interleave", "least-loaded"}, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.HostSpread > 1 {
			t.Errorf("%s spread = %d on 4 hosts", r.Policy, r.HostSpread)
		}
	}
	if out := RenderPolicyAblation(rows, 4); !strings.Contains(out, "4 hosts") {
		t.Error("render missing host count")
	}
}

func TestRunCachePolicyAblation(t *testing.T) {
	cfg := Config{Scale: 0.001, Seed: 9, SMG98: datagen.SMG98Config{Executions: 1, Processes: 2, TimeBins: 4}}
	rows, err := RunCachePolicyAblation(cfg, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.HitRate < 0 || r.HitRate > 1 {
			t.Errorf("%s: hit rate %v", r.Policy, r.HitRate)
		}
		if r.MeanMs <= 0 {
			t.Errorf("%s: mean %v", r.Policy, r.MeanMs)
		}
	}
	if out := RenderCachePolicyAblation(rows); !strings.Contains(out, "cache replacement") {
		t.Error("render incomplete")
	}
}

func TestRunCacheBytesAblation(t *testing.T) {
	cfg := Config{Scale: 0.001, Seed: 9, SMG98: datagen.SMG98Config{Executions: 1, Processes: 2, TimeBins: 4}}
	const budget = 12 << 10
	rows, err := RunCacheBytesAblation(cfg, budget, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The invariant the byte accounting guarantees: cached bytes
		// (results + wire) never exceed the configured budget, under any
		// replacement policy.
		if r.PeakBytes > budget {
			t.Errorf("%s: peak bytes %d exceed budget %d", r.Policy, r.PeakBytes, budget)
		}
		if r.EndBytes > budget {
			t.Errorf("%s: end bytes %d exceed budget %d", r.Policy, r.EndBytes, budget)
		}
		if r.PeakBytes == 0 {
			t.Errorf("%s: workload never filled the cache", r.Policy)
		}
		if r.Evictions == 0 {
			t.Errorf("%s: workload never evicted; budget untested", r.Policy)
		}
		if r.HitRate < 0 || r.HitRate > 1 {
			t.Errorf("%s: hit rate %v", r.Policy, r.HitRate)
		}
	}
	if out := RenderCacheBytesAblation(rows); !strings.Contains(out, "byte-budgeted") {
		t.Error("render incomplete")
	}
}

func TestRunTable5Concurrent(t *testing.T) {
	cfg := Table5ConcurrentConfig{
		Config:       Config{Scale: 0.001, Seed: 3, SMG98: datagen.SMG98Config{Executions: 1, Processes: 2, TimeBins: 4}},
		Readers:      []int{1, 4},
		Entries:      256,
		OpsPerReader: 1500,
	}
	report, err := RunTable5Concurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 4 { // 2 impls × 2 reader counts
		t.Fatalf("rows = %d", len(report.Rows))
	}
	for _, row := range report.Rows {
		if row.HitsPerSec <= 0 {
			t.Errorf("%s@%d: hit throughput %v", row.Impl, row.Readers, row.HitsPerSec)
		}
		if row.HitRate < 0.9 {
			t.Errorf("%s@%d: hot set not protected, hit rate %v", row.Impl, row.Readers, row.HitRate)
		}
		if row.Evictions == 0 {
			t.Errorf("%s@%d: tail churn never evicted", row.Impl, row.Readers)
		}
	}
	if report.SpeedupAt(4) <= 0 {
		t.Errorf("speedup at 4 readers = %v", report.SpeedupAt(4))
	}
	if out := report.Render(); !strings.Contains(out, "Table 5 (concurrent)") {
		t.Error("render incomplete")
	}
	// The ratio shape checks are bench territory (they depend on host
	// parallelism); here only the structural checks must hold.
	for _, line := range report.CheckShape() {
		if strings.Contains(line, "hit rate") && strings.HasPrefix(line, "MISMATCH") {
			t.Errorf("shape: %s", line)
		}
	}
}

func TestRunLocalBypass(t *testing.T) {
	rows, err := RunLocalBypass(Config{Scale: 0.0005, Seed: 9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	remote, local := rows[0], rows[1]
	if remote.MeanMs <= 0 || local.MeanMs <= 0 {
		t.Fatalf("nonpositive means: %+v", rows)
	}
	// The bypass must not be slower: it does strictly less work.
	if local.MeanMs > remote.MeanMs {
		t.Errorf("bypass slower than SOAP path: %v vs %v", local.MeanMs, remote.MeanMs)
	}
	if out := RenderLocalBypass(rows); !strings.Contains(out, "Bypass speedup") {
		t.Error("render incomplete")
	}
}

func TestRunNotificationFanout(t *testing.T) {
	points, err := RunNotificationFanout([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.AllDelivered <= 0 {
			t.Errorf("fanout %d: zero latency", p.Sinks)
		}
	}
	if out := RenderNotificationFanout(points); !strings.Contains(out, "fan-out") {
		t.Error("render incomplete")
	}
}

func TestRunStoreFormatComparison(t *testing.T) {
	rows, err := RunStoreFormatComparison(Config{Seed: 9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanTotalMs <= 0 || r.MeanMappingMs <= 0 {
			t.Errorf("%s: nonpositive means %+v", r.Format, r)
		}
		if r.MeanTotalMs < r.MeanMappingMs {
			t.Errorf("%s: total below mapping: %+v", r.Format, r)
		}
	}
	if out := RenderStoreFormats(rows); !strings.Contains(out, "three store formats") {
		t.Error("render incomplete")
	}
}

func TestRunQueryModels(t *testing.T) {
	rows, err := RunQueryModels(Config{Scale: 0.001, Seed: 9}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WallMs <= 0 {
			t.Errorf("%s: wall = %v", r.Model, r.WallMs)
		}
	}
	if out := RenderQueryModels(rows, 8); !strings.Contains(out, "registry-callback") {
		t.Error("render incomplete")
	}
}
