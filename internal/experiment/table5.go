package experiment

import (
	"fmt"
	"strings"
	"time"

	"pperfgrid/internal/viz"
)

// Table5Config tunes the caching experiment (section 6.6).
type Table5Config struct {
	Config
	// QueriesPerRun overrides the paper's 30-query sample when > 0.
	QueriesPerRun int
	// Sources restricts the experiment; nil runs all three.
	Sources []string
}

// Table5Row is one measured row of the reproduced Table 5.
type Table5Row struct {
	Source         string
	Queries        int
	MeanOffMs      float64
	MeanOnMs       float64
	RelativeChange float64
	Speedup        float64
}

// Table5Report is the reproduced Table 5 with the paper's reference rows.
type Table5Report struct {
	Rows  []Table5Row
	Paper []PaperTable5Row
}

// RunTable5 measures the Performance Results cache: the same getPR query
// repeated against one Execution service instance, 30 times with caching
// off and 30 times with caching on (cache warmed by one untimed query),
// per the paper's section 6.6 method.
func RunTable5(cfg Table5Config) (*Table5Report, error) {
	names := cfg.Sources
	if names == nil {
		names = AllSourceNames
	}
	n := cfg.QueriesPerRun
	if n <= 0 {
		n = 30
	}
	report := &Table5Report{Paper: PaperTable5}
	for _, name := range names {
		off, err := table5Run(name, cfg.Config, true, n)
		if err != nil {
			return nil, err
		}
		on, err := table5Run(name, cfg.Config, false, n)
		if err != nil {
			return nil, err
		}
		report.Rows = append(report.Rows, Table5Row{
			Source:         name,
			Queries:        n,
			MeanOffMs:      off,
			MeanOnMs:       on,
			RelativeChange: RelativeChange(off, on),
			Speedup:        Speedup(off, on),
		})
	}
	return report, nil
}

func table5Run(name string, base Config, cachingOff bool, n int) (float64, error) {
	cfg := base
	cfg.CachingOff = cachingOff
	cfg.Replicas = 1
	src, err := NewSource(name, cfg)
	if err != nil {
		return 0, err
	}
	defer src.Close()

	refs, err := bindRefs(src)
	if err != nil {
		return 0, err
	}
	execID, q := src.QueryFor(0)
	ref := refs[execID]
	if ref == nil {
		return 0, fmt.Errorf("experiment: no ref for %s", execID)
	}
	if !cachingOff {
		// Warm the cache: the paper's caching-on means report steady-state
		// hits (their SMG98 caching-on mean is far below one miss's cost).
		if _, err := ref.PerformanceResults(q); err != nil {
			return 0, err
		}
	}
	var sample Sample
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := ref.PerformanceResults(q); err != nil {
			return 0, err
		}
		sample.Add(float64(time.Since(start)) / float64(time.Millisecond))
	}
	return sample.Mean(), nil
}

// Render prints the measured table next to the paper's values.
func (r *Table5Report) Render() string {
	header := []string{"Source", "Queries", "Caching off (ms)", "Caching on (ms)", "Relative change", "Speedup"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Source, fmt.Sprint(row.Queries), Fmt(row.MeanOffMs), Fmt(row.MeanOnMs),
			Fmt(row.RelativeChange) + "%", Fmt(row.Speedup),
		})
	}
	out := viz.Table("Table 5 — PPerfGrid Caching (measured)", header, rows)
	var paperRows [][]string
	for _, row := range r.Paper {
		paperRows = append(paperRows, []string{
			row.Source, "30", Fmt(row.MeanOffMs), Fmt(row.MeanOnMs),
			Fmt(row.RelativeChange) + "%", Fmt(row.Speedup),
		})
	}
	out += "\n" + viz.Table("Table 5 — paper reference values", header, paperRows)
	out += "\nShape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape evaluates the paper's qualitative caching findings.
func (r *Table5Report) CheckShape() []string {
	row := map[string]Table5Row{}
	for _, x := range r.Rows {
		row[x.Source] = x
	}
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	hpl, hasHPL := row["HPL"]
	rma, hasRMA := row["RMA"]
	smg, hasSMG := row["SMG98"]
	for _, x := range r.Rows {
		check(fmt.Sprintf("%s: caching reduces mean query time", x.Source), x.Speedup >= 1.0)
	}
	if hasSMG && hasHPL {
		check("SMG98 speedup dwarfs HPL's (long queries cache best)", smg.Speedup > 5*hpl.Speedup)
	}
	if hasHPL && hasRMA {
		check("HPL benefits more than RMA (RMA cost is payload transfer, not mapping)", hpl.Speedup > rma.Speedup)
	}
	if hasRMA && hasHPL && hasSMG {
		check("RMA speedup is the smallest (its cost is payload transfer, which caching cannot avoid)",
			rma.Speedup <= hpl.Speedup && rma.Speedup <= smg.Speedup)
	}
	if hasSMG && hasRMA {
		check("speedup ordering SMG98 > HPL > RMA (paper 137.5/1.96/1.03)",
			hasHPL && smg.Speedup > hpl.Speedup && hpl.Speedup > rma.Speedup)
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *Table5Report) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}
