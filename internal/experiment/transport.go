package experiment

// The transport ablation: how much of Table 4's grid-services overhead
// the wire-path overhaul removed. Two measurements, both against the
// retained legacy codec (soap.SetLegacyCodec):
//
//   - RunTransportCodecSweep isolates pure marshalling/demarshalling cost
//     per payload size, old codec vs new.
//   - RunTransportTable4 runs the full Table 4 experiment twice — every
//     byte of the wire path through the legacy codec, then through the
//     hand-rolled codec — and reports the before/after overhead split
//     end to end.

import (
	"fmt"
	"time"

	"pperfgrid/internal/soap"
	"pperfgrid/internal/viz"
)

// TransportCodecPoint is one payload size's marshalling cost under both
// codecs.
type TransportCodecPoint struct {
	Items        int
	PayloadBytes int
	Legacy       time.Duration // encoding/xml round trip (enc+dec request and response)
	Fast         time.Duration // hand-rolled codec, same work
}

// Speedup returns legacy/fast.
func (p TransportCodecPoint) Speedup() float64 {
	if p.Fast == 0 {
		return 0
	}
	return float64(p.Legacy) / float64(p.Fast)
}

// RunTransportCodecSweep measures the pure marshal+demarshal round trip
// (encode request, decode request, encode response, decode response) for
// growing result arrays, under the legacy codec and the hand-rolled one.
func RunTransportCodecSweep(itemCounts []int, itemBytes, rounds int) ([]TransportCodecPoint, error) {
	if itemBytes <= 0 {
		itemBytes = 64
	}
	if rounds <= 0 {
		rounds = 50
	}
	roundTrip := func(items []string) error {
		req, err := soap.EncodeRequest("getPR", nil, items)
		if err != nil {
			return err
		}
		if _, err := soap.DecodeRequest(req); err != nil {
			return err
		}
		resp, err := soap.EncodeResponse("getPR", nil, items)
		if err != nil {
			return err
		}
		_, err = soap.DecodeResponse(resp)
		return err
	}
	var out []TransportCodecPoint
	for _, n := range itemCounts {
		items := make([]string, n)
		payload := 0
		for i := range items {
			items[i] = fmt.Sprintf("%0*d", itemBytes, i)
			payload += len(items[i])
		}
		p := TransportCodecPoint{Items: n, PayloadBytes: payload}
		for _, legacy := range []bool{true, false} {
			soap.SetLegacyCodec(legacy)
			var total time.Duration
			for r := 0; r < rounds; r++ {
				start := time.Now()
				if err := roundTrip(items); err != nil {
					soap.SetLegacyCodec(false)
					return nil, err
				}
				total += time.Since(start)
			}
			mean := total / time.Duration(rounds)
			if legacy {
				p.Legacy = mean
			} else {
				p.Fast = mean
			}
		}
		out = append(out, p)
	}
	soap.SetLegacyCodec(false)
	return out, nil
}

// RenderTransportCodecSweep formats the sweep as a table.
func RenderTransportCodecSweep(points []TransportCodecPoint) string {
	header := []string{"Items", "Payload (B)", "Legacy (µs)", "Hand-rolled (µs)", "Speedup"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprint(p.Items), fmt.Sprint(p.PayloadBytes),
			Fmt(float64(p.Legacy) / float64(time.Microsecond)),
			Fmt(float64(p.Fast) / float64(time.Microsecond)),
			Fmt(p.Speedup()) + "x",
		})
	}
	return viz.Table("Transport ablation — SOAP codec cost, legacy vs hand-rolled", header, rows)
}

// TransportTable4Row is one source's before/after overhead split.
type TransportTable4Row struct {
	Source            string
	LegacyOverheadMs  float64
	FastOverheadMs    float64
	LegacyOverheadPct float64
	FastOverheadPct   float64
}

// TransportTable4Report is the end-to-end before/after comparison.
type TransportTable4Report struct {
	Rows []TransportTable4Row
}

// RunTransportTable4 runs the Table 4 overhead experiment under the
// legacy codec ("before" — the seed's reflection-based wire path) and
// under the hand-rolled codec ("after"), reporting the overhead split per
// source. Mapping-layer latencies are identical in both runs, so any
// difference is transport.
func RunTransportTable4(cfg Table4Config) (*TransportTable4Report, error) {
	soap.SetLegacyCodec(true)
	legacy, err := RunTable4(cfg)
	soap.SetLegacyCodec(false)
	if err != nil {
		return nil, err
	}
	fast, err := RunTable4(cfg)
	if err != nil {
		return nil, err
	}
	report := &TransportTable4Report{}
	for i, lr := range legacy.Rows {
		if i >= len(fast.Rows) || fast.Rows[i].Source != lr.Source {
			return nil, fmt.Errorf("experiment: transport runs disagree on sources")
		}
		fr := fast.Rows[i]
		report.Rows = append(report.Rows, TransportTable4Row{
			Source:            lr.Source,
			LegacyOverheadMs:  lr.MeanOverhead,
			FastOverheadMs:    fr.MeanOverhead,
			LegacyOverheadPct: lr.OverheadPct,
			FastOverheadPct:   fr.OverheadPct,
		})
	}
	return report, nil
}

// Render prints the before/after table.
func (r *TransportTable4Report) Render() string {
	header := []string{"Source", "Overhead before (ms)", "Overhead after (ms)", "Before %", "After %", "Overhead cut"}
	var rows [][]string
	for _, row := range r.Rows {
		cut := 0.0
		if row.LegacyOverheadMs > 0 {
			cut = (1 - row.FastOverheadMs/row.LegacyOverheadMs) * 100
		}
		rows = append(rows, []string{
			row.Source,
			Fmt(row.LegacyOverheadMs), Fmt(row.FastOverheadMs),
			Fmt(row.LegacyOverheadPct) + "%", Fmt(row.FastOverheadPct) + "%",
			Fmt(cut) + "%",
		})
	}
	out := viz.Table("Transport ablation — Table 4 overhead, before/after the wire-path overhaul", header, rows)
	out += "\nShape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape verifies the overhaul's qualitative claim: overhead must not
// grow under the hand-rolled codec for any source.
func (r *TransportTable4Report) CheckShape() []string {
	var out []string
	for _, row := range r.Rows {
		status := "ok      "
		if row.FastOverheadMs > row.LegacyOverheadMs {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s overhead does not grow (%.3f -> %.3f ms)",
			status, row.Source, row.LegacyOverheadMs, row.FastOverheadMs))
	}
	if len(out) == 0 {
		out = append(out, "no checks ran (no sources)")
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *TransportTable4Report) ShapeOK() bool {
	for _, row := range r.Rows {
		if row.FastOverheadMs > row.LegacyOverheadMs {
			return false
		}
	}
	return true
}
