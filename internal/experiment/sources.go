package experiment

import (
	"fmt"
	"time"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// Config tunes the calibrated experiment environment.
type Config struct {
	// Scale multiplies the paper's measured Mapping-Layer latencies to
	// produce the injected per-query delay (see the package comment).
	// The default 0.01 makes the full evaluation run in tens of seconds.
	Scale float64
	// Seed feeds the dataset generators.
	Seed int64
	// SMG98 sizes the trace-shaped dataset; the zero value uses a
	// bench-appropriate size.
	SMG98 datagen.SMG98Config
	// Workers bounds per-host concurrency in the sites (0 = unbounded);
	// Figure 12 uses 1 to model single-CPU hosts.
	Workers int
	// Replicas is the number of replica hosts per site (>= 1).
	Replicas int
	// Policy names the Manager's replica policy ("interleave", "block",
	// "hash", "least-loaded", "adaptive"); empty means interleave.
	Policy string
	// CachingOff disables the Performance Results cache.
	CachingOff bool
	// CachePolicy selects the cache replacement policy ("lru", "lfu",
	// "cost"); empty means LRU. CacheBytes > 0 byte-budgets each
	// instance cache; CacheSingleLock selects the retained single-lock
	// cache implementation (the sharded cache's ablation baseline).
	CachePolicy     string
	CacheBytes      int64
	CacheSingleLock bool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SMG98.Executions == 0 {
		c.SMG98 = datagen.SMG98Config{Executions: 4, Processes: 4, TimeBins: 16, Seed: c.Seed}
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	return c
}

// Source is one calibrated data source: its dataset, the site serving it,
// and the Mapping-Layer recorder behind the primary wrapper.
type Source struct {
	Name    string
	Dataset *datagen.Dataset
	Site    *core.Site
	Rec     *Recorder
	// MetricType pairs the representative query's metric and collector.
	Metric string
	Type   string
}

// Close shuts the source's site down.
func (s *Source) Close() { s.Site.Close() }

// ExecIDs returns the dataset's execution IDs.
func (s *Source) ExecIDs() []string {
	out := make([]string, len(s.Dataset.Execs))
	for i, e := range s.Dataset.Execs {
		out[i] = e.ID
	}
	return out
}

// QueryFor builds the i-th representative getPR query, cycling through
// executions so consecutive queries hit different instances.
func (s *Source) QueryFor(i int) (execID string, q perfdata.Query) {
	e := s.Dataset.Execs[i%len(s.Dataset.Execs)]
	return e.ID, perfdata.Query{
		Metric: s.Metric,
		Time:   e.Time,
		Type:   s.Type,
	}
}

// paperMappingMs returns the paper's Mapping-Layer time for a source.
func paperMappingMs(name string) float64 {
	for _, row := range PaperTable4 {
		if row.Source == name {
			return row.MeanMappingMs
		}
	}
	return 0
}

// NewHPLSource builds the HPL source: 124 executions in a single-table
// relational store, calibrated to the paper's 81.8 ms mapping time.
func NewHPLSource(cfg Config) (*Source, error) {
	cfg = cfg.withDefaults()
	d := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: cfg.Seed})
	build := func() (mapping.ApplicationWrapper, *Recorder, error) {
		w, err := mapping.NewWideTable(d)
		if err != nil {
			return nil, nil, err
		}
		return calibrate(w, "HPL", cfg)
	}
	return newSource("HPL", d, "gflops", "hpl", cfg, build)
}

// NewRMASource builds the Presta RMA source: flat ASCII text files,
// calibrated to the paper's 97.65 ms mapping time. Its representative
// query returns the multi-kilobyte bandwidth series.
func NewRMASource(cfg Config) (*Source, error) {
	cfg = cfg.withDefaults()
	d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 12, MessageSizes: 20, Seed: cfg.Seed})
	build := func() (mapping.ApplicationWrapper, *Recorder, error) {
		w, err := mapping.NewFlatFile(d)
		if err != nil {
			return nil, nil, err
		}
		return calibrate(w, "RMA", cfg)
	}
	return newSource("RMA", d, "bandwidth", "presta", cfg, build)
}

// NewSMG98Source builds the SMG98 source: a five-table star schema whose
// fact-table scans dominate query time, calibrated to the paper's
// 66,037 ms mapping time (scaled).
func NewSMG98Source(cfg Config) (*Source, error) {
	cfg = cfg.withDefaults()
	smgCfg := cfg.SMG98
	smgCfg.Seed = cfg.Seed
	d := datagen.SMG98(smgCfg)
	build := func() (mapping.ApplicationWrapper, *Recorder, error) {
		w, err := mapping.NewStar(d)
		if err != nil {
			return nil, nil, err
		}
		return calibrate(w, "SMG98", cfg)
	}
	return newSource("SMG98", d, "func_calls", "vampir", cfg, build)
}

// calibrate injects the scaled paper latency and adds timing.
func calibrate(w mapping.ApplicationWrapper, name string, cfg Config) (mapping.ApplicationWrapper, *Recorder, error) {
	delay := time.Duration(paperMappingMs(name) * cfg.Scale * float64(time.Millisecond))
	slowed := mapping.WithLatency(w, delay, 0)
	timed := NewTimedWrapper(slowed)
	return timed, timed.Rec, nil
}

func newSource(name string, d *datagen.Dataset, metric, typ string, cfg Config,
	build func() (mapping.ApplicationWrapper, *Recorder, error)) (*Source, error) {
	wrappers := make([]mapping.ApplicationWrapper, cfg.Replicas)
	var rec *Recorder
	for i := range wrappers {
		w, r, err := build()
		if err != nil {
			return nil, fmt.Errorf("experiment: build %s wrapper: %w", name, err)
		}
		wrappers[i] = w
		if i == 0 {
			rec = r
		}
	}
	policy, err := core.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	site, err := core.StartSite(core.SiteConfig{
		AppName:         name,
		Wrappers:        wrappers,
		Workers:         cfg.Workers,
		CachingOff:      cfg.CachingOff,
		CachePolicy:     cfg.CachePolicy,
		CacheBytes:      cfg.CacheBytes,
		CacheSingleLock: cfg.CacheSingleLock,
		Policy:          policy,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: start %s site: %w", name, err)
	}
	return &Source{Name: name, Dataset: d, Site: site, Rec: rec, Metric: metric, Type: typ}, nil
}

// NewSource builds a source by name ("HPL", "RMA", "SMG98").
func NewSource(name string, cfg Config) (*Source, error) {
	switch name {
	case "HPL":
		return NewHPLSource(cfg)
	case "RMA":
		return NewRMASource(cfg)
	case "SMG98":
		return NewSMG98Source(cfg)
	}
	return nil, fmt.Errorf("experiment: unknown source %q", name)
}

// AllSourceNames lists the paper's three data sources.
var AllSourceNames = []string{"HPL", "RMA", "SMG98"}
