package experiment

import (
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

// QueryModelRow is one query-dispatch model's measured batch cost.
type QueryModelRow struct {
	Model  string
	WallMs float64
}

// RunQueryModels compares the paper's two client dispatch models over the
// same batch: the thesis prototype's blocking model (one thread per
// Execution Grid service call) against the future-work registry-callback
// model (fire-and-collect through one NotificationSink). The paper hoped
// the callback model "could eliminate some of the inefficiencies involved
// in using a separate thread for each service call in a large query"; this
// ablation quantifies the difference on this stack.
func RunQueryModels(cfg Config, executions, rounds int) ([]QueryModelRow, error) {
	cfg = cfg.withDefaults()
	cfg.CachingOff = true
	cfg.Replicas = 1
	if executions <= 0 {
		executions = 64
	}
	if rounds <= 0 {
		rounds = 3
	}
	src, err := NewHPLSource(cfg)
	if err != nil {
		return nil, err
	}
	defer src.Close()

	c := client.NewWithoutRegistry()
	defer c.Close()
	if err := c.EnableCallbacks(); err != nil {
		return nil, err
	}
	b, err := c.BindFactory(src.Name, src.Site.ApplicationFactoryHandle())
	if err != nil {
		return nil, err
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil {
		return nil, err
	}
	if executions > len(refs) {
		executions = len(refs)
	}
	refs = refs[:executions]
	q := perfdata.Query{Metric: src.Metric, Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: src.Type}

	var blocking, callback Sample
	for r := 0; r < rounds; r++ {
		start := time.Now()
		results := client.QueryPerformanceResults(refs, q, client.ParallelOptions{})
		for _, res := range results {
			if res.Err != nil {
				return nil, res.Err
			}
		}
		blocking.Add(float64(time.Since(start)) / float64(time.Millisecond))

		start = time.Now()
		cbResults, err := c.QueryPerformanceResultsCallback(refs, q, 30*time.Second)
		if err != nil {
			return nil, err
		}
		for _, res := range cbResults {
			if res.Err != nil {
				return nil, res.Err
			}
		}
		callback.Add(float64(time.Since(start)) / float64(time.Millisecond))
	}
	return []QueryModelRow{
		{Model: "blocking (thread per call)", WallMs: blocking.Mean()},
		{Model: "registry-callback", WallMs: callback.Mean()},
	}, nil
}

// RenderQueryModels formats the comparison.
func RenderQueryModels(rows []QueryModelRow, executions int) string {
	header := []string{"Dispatch model", "Batch wall (ms)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Model, Fmt(r.WallMs)})
	}
	return viz.Table("Future work — blocking vs registry-callback dispatch", header, cells)
}
