package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

// Figure12Config tunes the scalability experiment (section 6.5).
type Figure12Config struct {
	Config
	// ExecutionCounts are the query sizes; nil uses the paper's
	// {2, 4, 8, 16, 32, 64, 124}.
	ExecutionCounts []int
	// Repeats re-runs each execution's query within its thread; the paper
	// used 10 "to create a greater load on each host". 0 means 10.
	Repeats int
	// BatchRuns repeats the whole query set; the paper used 10. 0 means 3
	// (enough for a stable mean at modern timer resolution).
	BatchRuns int
	// HostCounts is the replicas axis. The paper measured {1, 2}; nil
	// extends it to {1, 2, 4, 8}. 1 (the non-optimized baseline) is
	// prepended when absent.
	HostCounts []int
	// Policy names the Manager's replica policy for the replicated runs;
	// empty means the paper's interleaving.
	Policy string
}

// Figure12Point is one x-position of the reproduced Figure 12: the mean
// batch wall time per replica count, and each replicated configuration's
// speedup over the one-host baseline.
type Figure12Point struct {
	Executions     int
	WallMs         map[int]float64 // replica count -> mean batch wall ms
	Speedup        map[int]float64 // replica count > 1 -> speedup vs 1 host
	RelativeChange map[int]float64 // replica count > 1 -> % change vs 1 host
}

// OneHostMs returns the non-optimized baseline wall time.
func (p Figure12Point) OneHostMs() float64 { return p.WallMs[1] }

// Figure12Report is the reproduced Figure 12, generalized to an N-host
// replicas axis.
type Figure12Report struct {
	Policy     string
	HostCounts []int // ascending; element 0 is the 1-host baseline
	Points     []Figure12Point
	// MeanSpeedup is the mean speedup over the measured sizes, per
	// replicated host count.
	MeanSpeedup map[int]float64
	// InstanceCounts records, per replicated configuration, how many
	// Execution instances the Manager placed on each replica host.
	InstanceCounts map[int]map[string]int
}

// RunFigure12 measures scalability: Performance Result queries against
// 2..124 HPL Execution service instances, each query in its own thread
// and repeated to increase host load, comparing one single-CPU host
// ("non-optimized") against the Manager's distribution over N single-CPU
// replica hosts ("optimized") — the paper's section 6.5, extended past
// its two-host testbed.
func RunFigure12(cfg Figure12Config) (*Figure12Report, error) {
	counts := cfg.ExecutionCounts
	if counts == nil {
		counts = PaperFigure12.ExecutionCounts
	}
	sort.Ints(counts)
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 10
	}
	batchRuns := cfg.BatchRuns
	if batchRuns <= 0 {
		batchRuns = 3
	}
	hosts := normalizeHostCounts(cfg.HostCounts)
	maxCount := counts[len(counts)-1]

	report := &Figure12Report{
		Policy:         policyName(cfg.Policy),
		HostCounts:     hosts,
		MeanSpeedup:    make(map[int]float64),
		InstanceCounts: make(map[int]map[string]int),
	}
	base := cfg.Config
	base.Policy = cfg.Policy
	wall := make(map[int]map[int]float64) // replicas -> executions -> ms
	for _, r := range hosts {
		var instances map[string]int
		if r > 1 {
			instances = map[string]int{}
		}
		ms, err := runScalability(base, r, counts, maxCount, repeats, batchRuns, instances)
		if err != nil {
			return nil, err
		}
		wall[r] = ms
		if r > 1 {
			report.InstanceCounts[r] = instances
		}
	}

	speedups := make(map[int]*Sample)
	for _, n := range counts {
		p := Figure12Point{
			Executions:     n,
			WallMs:         map[int]float64{},
			Speedup:        map[int]float64{},
			RelativeChange: map[int]float64{},
		}
		for _, r := range hosts {
			p.WallMs[r] = wall[r][n]
			if r == 1 {
				continue
			}
			p.Speedup[r] = Speedup(wall[1][n], wall[r][n])
			p.RelativeChange[r] = RelativeChange(wall[1][n], wall[r][n])
			if speedups[r] == nil {
				speedups[r] = &Sample{}
			}
			speedups[r].Add(p.Speedup[r])
		}
		report.Points = append(report.Points, p)
	}
	for r, s := range speedups {
		report.MeanSpeedup[r] = s.Mean()
	}
	return report, nil
}

// normalizeHostCounts sorts, deduplicates, and prepends the 1-host
// baseline. nil selects the default {1, 2, 4, 8} axis.
func normalizeHostCounts(hosts []int) []int {
	if len(hosts) == 0 {
		return []int{1, 2, 4, 8}
	}
	seen := map[int]bool{1: true}
	out := []int{1}
	for _, h := range hosts {
		if h > 1 && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	sort.Ints(out)
	return out
}

func policyName(name string) string {
	if name == "" {
		return "interleave"
	}
	return name
}

// runScalability measures mean batch wall time per execution count on a
// site with the given replica count. Hosts are single-worker (one
// simulated CPU) unless the config overrides Workers.
func runScalability(base Config, replicas int, counts []int, maxCount, repeats, batchRuns int, hostCounts map[string]int) (map[int]float64, error) {
	cfg := base
	cfg.Replicas = replicas
	cfg.CachingOff = true // repeats must generate real load, as in the paper
	if cfg.Workers == 0 {
		cfg.Workers = 1 // the paper's hosts had one 440 MHz CPU each
	}
	src, err := NewHPLSource(cfg)
	if err != nil {
		return nil, err
	}
	defer src.Close()

	c := client.NewWithoutRegistry()
	b, err := c.BindFactory(src.Name, src.Site.ApplicationFactoryHandle())
	if err != nil {
		return nil, err
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil {
		return nil, err
	}
	if len(refs) < maxCount {
		return nil, fmt.Errorf("experiment: only %d executions for max count %d", len(refs), maxCount)
	}
	q := perfdata.Query{Metric: src.Metric, Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: src.Type}

	out := make(map[int]float64, len(counts))
	for _, n := range counts {
		var wall Sample
		for run := 0; run < batchRuns; run++ {
			start := time.Now()
			results := client.QueryPerformanceResults(refs[:n], q, client.ParallelOptions{Repeats: repeats})
			elapsed := time.Since(start)
			for _, r := range results {
				if r.Err != nil {
					return nil, fmt.Errorf("experiment: scalability query: %w", r.Err)
				}
			}
			wall.Add(float64(elapsed) / float64(time.Millisecond))
		}
		out[n] = wall.Mean()
	}
	if hostCounts != nil {
		for h, c := range src.Site.Manager().PerHostCounts() {
			hostCounts[h] = c
		}
	}
	return out, nil
}

// Render prints the measured figure (table + ASCII chart) with the
// paper's reference speedups for the two-host column.
func (r *Figure12Report) Render() string {
	header := []string{"Executions", "1 host (ms)"}
	for _, h := range r.HostCounts[1:] {
		header = append(header, fmt.Sprintf("%d hosts (ms)", h), fmt.Sprintf("Speedup x%d", h))
	}
	header = append(header, "Paper speedup (2 hosts)")
	var rows [][]string
	for _, p := range r.Points {
		row := []string{fmt.Sprint(p.Executions), Fmt(p.OneHostMs())}
		for _, h := range r.HostCounts[1:] {
			row = append(row, Fmt(p.WallMs[h]), Fmt(p.Speedup[h]))
		}
		paper := "N/A"
		if v, ok := PaperFigure12.Speedups[p.Executions]; ok {
			paper = Fmt(v)
		}
		rows = append(rows, append(row, paper))
	}
	out := viz.Table(fmt.Sprintf("Figure 12 — PPerfGrid Scalability (measured, policy=%s)", r.Policy), header, rows)
	for _, h := range r.HostCounts[1:] {
		note := ""
		if h == 2 {
			note = fmt.Sprintf(" (paper: %s over its measured points)", Fmt(PaperFigure12.MeanSpeedup))
		}
		out += fmt.Sprintf("Mean speedup %d hosts: %s%s\n", h, Fmt(r.MeanSpeedup[h]), note)
	}

	var series []viz.Series
	for _, h := range r.HostCounts {
		name := "Non-Optimized (1 host)"
		if h > 1 {
			name = fmt.Sprintf("Optimized (%d hosts)", h)
		}
		s := viz.Series{Name: name, Points: map[float64]float64{}}
		for _, p := range r.Points {
			s.Points[float64(p.Executions)] = p.WallMs[h]
		}
		series = append(series, s)
	}
	out += "\n" + viz.LineChart("Batch wall time (ms) vs # of Execution GSs in query", series, 14, 60)
	out += "\nShape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape evaluates the paper's qualitative scalability findings,
// extended to the N-host axis.
func (r *Figure12Report) CheckShape() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	if _, measured := r.MeanSpeedup[2]; measured {
		check("two-host mean speedup is significant (> 1.5x; paper 2.14x)", r.MeanSpeedup[2] > 1.5)
		check("two-host mean speedup bounded by 2 replicas (< 2.6x)", r.MeanSpeedup[2] < 2.6)
	}
	allFaster := true
	for _, p := range r.Points {
		for _, s := range p.Speedup {
			if s <= 1 {
				allFaster = false
			}
		}
	}
	check("distribution helps at every query size and replica count", allFaster)
	if len(r.Points) >= 2 {
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		for _, h := range r.HostCounts {
			check(fmt.Sprintf("wall time grows with query size on %d host(s)", h),
				last.WallMs[h] > first.WallMs[h])
		}
	}
	if len(r.HostCounts) > 2 && len(r.Points) > 0 {
		// More replicas should keep helping at the largest batch size
		// (within 20% slack — the largest size may exceed replicas*workers
		// saturation anyway).
		last := r.Points[len(r.Points)-1]
		growing := true
		for i := 2; i < len(r.HostCounts); i++ {
			prev, cur := r.HostCounts[i-1], r.HostCounts[i]
			if last.Speedup[cur] < 0.8*last.Speedup[prev] {
				growing = false
			}
		}
		check("speedup scales with replicas at the largest size (20% slack)", growing)
	}
	for _, h := range r.HostCounts[1:] {
		counts := r.InstanceCounts[h]
		if len(counts) != h {
			check(fmt.Sprintf("%d-host run used all replica hosts", h), false)
			continue
		}
		if r.Policy == "adaptive" {
			continue // adaptive deliberately skews toward observed-faster hosts
		}
		lo, hi := -1, -1
		for _, c := range counts {
			if lo == -1 || c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		check(fmt.Sprintf("Manager %s balances instances across %d hosts (±1)", r.Policy, h), hi-lo <= 1)
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *Figure12Report) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}

// Figure12Sweep is one Figure 12 run per replica policy — the speedup
// curves the scale-out ablation compares.
type Figure12Sweep struct {
	Reports []*Figure12Report
}

// RunFigure12Sweep reruns Figure 12 once per named policy.
func RunFigure12Sweep(cfg Figure12Config, policies []string) (*Figure12Sweep, error) {
	if len(policies) == 0 {
		policies = []string{cfg.Policy}
	}
	sweep := &Figure12Sweep{}
	for _, p := range policies {
		c := cfg
		c.Policy = p
		report, err := RunFigure12(c)
		if err != nil {
			return nil, fmt.Errorf("experiment: figure 12 policy %q: %w", policyName(p), err)
		}
		sweep.Reports = append(sweep.Reports, report)
	}
	return sweep, nil
}

// Render prints each policy's figure plus a cross-policy summary of mean
// speedups per replica count.
func (s *Figure12Sweep) Render() string {
	var out strings.Builder
	for _, r := range s.Reports {
		out.WriteString(r.Render())
		out.WriteString("\n")
	}
	if len(s.Reports) > 1 {
		header := []string{"Policy"}
		for _, h := range s.Reports[0].HostCounts[1:] {
			header = append(header, fmt.Sprintf("Mean speedup x%d", h))
		}
		var rows [][]string
		for _, r := range s.Reports {
			row := []string{r.Policy}
			for _, h := range r.HostCounts[1:] {
				row = append(row, Fmt(r.MeanSpeedup[h]))
			}
			rows = append(rows, row)
		}
		out.WriteString(viz.Table("Figure 12 — mean speedup per replica policy", header, rows))
	}
	return out.String()
}

// ShapeOK reports whether every policy's shape checks passed.
func (s *Figure12Sweep) ShapeOK() bool {
	for _, r := range s.Reports {
		if !r.ShapeOK() {
			return false
		}
	}
	return true
}
