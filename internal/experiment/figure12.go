package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

// Figure12Config tunes the scalability experiment (section 6.5).
type Figure12Config struct {
	Config
	// ExecutionCounts are the query sizes; nil uses the paper's
	// {2, 4, 8, 16, 32, 64, 124}.
	ExecutionCounts []int
	// Repeats re-runs each execution's query within its thread; the paper
	// used 10 "to create a greater load on each host". 0 means 10.
	Repeats int
	// BatchRuns repeats the whole query set; the paper used 10. 0 means 3
	// (enough for a stable mean at modern timer resolution).
	BatchRuns int
}

// Figure12Point is one x-position of the reproduced Figure 12.
type Figure12Point struct {
	Executions     int
	OneHostMs      float64
	TwoHostMs      float64
	Speedup        float64
	RelativeChange float64
}

// Figure12Report is the reproduced Figure 12.
type Figure12Report struct {
	Points      []Figure12Point
	MeanSpeedup float64
	// HostCounts records how many Execution instances each replica host
	// received in the two-host run at the largest size.
	HostCounts map[string]int
}

// RunFigure12 measures scalability: Performance Result queries against
// 2..124 HPL Execution service instances, each query in its own thread
// and repeated to increase host load, comparing one single-CPU host
// ("non-optimized") against the Manager's interleaved distribution over
// two single-CPU replica hosts ("optimized") — the paper's section 6.5.
func RunFigure12(cfg Figure12Config) (*Figure12Report, error) {
	counts := cfg.ExecutionCounts
	if counts == nil {
		counts = PaperFigure12.ExecutionCounts
	}
	sort.Ints(counts)
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 10
	}
	batchRuns := cfg.BatchRuns
	if batchRuns <= 0 {
		batchRuns = 3
	}
	maxCount := counts[len(counts)-1]

	report := &Figure12Report{}
	oneHost, err := runScalability(cfg.Config, 1, counts, maxCount, repeats, batchRuns, nil)
	if err != nil {
		return nil, err
	}
	hostCounts := map[string]int{}
	twoHost, err := runScalability(cfg.Config, 2, counts, maxCount, repeats, batchRuns, hostCounts)
	if err != nil {
		return nil, err
	}
	var speedups Sample
	for _, n := range counts {
		p := Figure12Point{
			Executions:     n,
			OneHostMs:      oneHost[n],
			TwoHostMs:      twoHost[n],
			Speedup:        Speedup(oneHost[n], twoHost[n]),
			RelativeChange: RelativeChange(oneHost[n], twoHost[n]),
		}
		speedups.Add(p.Speedup)
		report.Points = append(report.Points, p)
	}
	report.MeanSpeedup = speedups.Mean()
	report.HostCounts = hostCounts
	return report, nil
}

// runScalability measures mean batch wall time per execution count on a
// site with the given replica count. Hosts are single-worker (one
// simulated CPU) unless the config overrides Workers.
func runScalability(base Config, replicas int, counts []int, maxCount, repeats, batchRuns int, hostCounts map[string]int) (map[int]float64, error) {
	cfg := base
	cfg.Replicas = replicas
	cfg.CachingOff = true // repeats must generate real load, as in the paper
	if cfg.Workers == 0 {
		cfg.Workers = 1 // the paper's hosts had one 440 MHz CPU each
	}
	src, err := NewHPLSource(cfg)
	if err != nil {
		return nil, err
	}
	defer src.Close()

	c := client.NewWithoutRegistry()
	b, err := c.BindFactory(src.Name, src.Site.ApplicationFactoryHandle())
	if err != nil {
		return nil, err
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil {
		return nil, err
	}
	if len(refs) < maxCount {
		return nil, fmt.Errorf("experiment: only %d executions for max count %d", len(refs), maxCount)
	}
	q := perfdata.Query{Metric: src.Metric, Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: src.Type}

	out := make(map[int]float64, len(counts))
	for _, n := range counts {
		var wall Sample
		for run := 0; run < batchRuns; run++ {
			start := time.Now()
			results := client.QueryPerformanceResults(refs[:n], q, client.ParallelOptions{Repeats: repeats})
			elapsed := time.Since(start)
			for _, r := range results {
				if r.Err != nil {
					return nil, fmt.Errorf("experiment: scalability query: %w", r.Err)
				}
			}
			wall.Add(float64(elapsed) / float64(time.Millisecond))
		}
		out[n] = wall.Mean()
	}
	if hostCounts != nil {
		for h, c := range src.Site.Manager().PerHostCounts() {
			hostCounts[h] = c
		}
	}
	return out, nil
}

// Render prints the measured figure (table + ASCII chart) with the
// paper's reference speedups.
func (r *Figure12Report) Render() string {
	header := []string{"Executions", "1 host (ms)", "2 hosts (ms)", "Relative change", "Speedup", "Paper speedup"}
	var rows [][]string
	for _, p := range r.Points {
		paper := "N/A"
		if v, ok := PaperFigure12.Speedups[p.Executions]; ok {
			paper = Fmt(v)
		}
		rows = append(rows, []string{
			fmt.Sprint(p.Executions), Fmt(p.OneHostMs), Fmt(p.TwoHostMs),
			Fmt(p.RelativeChange) + "%", Fmt(p.Speedup), paper,
		})
	}
	out := viz.Table("Figure 12 — PPerfGrid Scalability (measured)", header, rows)
	out += fmt.Sprintf("\nMean speedup: %s (paper: %s over its measured points)\n",
		Fmt(r.MeanSpeedup), Fmt(PaperFigure12.MeanSpeedup))

	one := viz.Series{Name: "Non-Optimized (1 host)", Points: map[float64]float64{}}
	two := viz.Series{Name: "Optimized (2 hosts)", Points: map[float64]float64{}}
	for _, p := range r.Points {
		one.Points[float64(p.Executions)] = p.OneHostMs
		two.Points[float64(p.Executions)] = p.TwoHostMs
	}
	out += "\n" + viz.LineChart("Batch wall time (ms) vs # of Execution GSs in query", []viz.Series{one, two}, 14, 60)
	out += "\nShape checks:\n"
	for _, c := range r.CheckShape() {
		out += "  " + c + "\n"
	}
	return out
}

// CheckShape evaluates the paper's qualitative scalability findings.
func (r *Figure12Report) CheckShape() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "ok      "
		if !ok {
			status = "MISMATCH"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, name))
	}
	check("two-host mean speedup is significant (> 1.5x; paper 2.14x)", r.MeanSpeedup > 1.5)
	check("two-host mean speedup bounded by 2 replicas (< 2.6x)", r.MeanSpeedup < 2.6)
	allFaster := true
	for _, p := range r.Points {
		if p.Speedup <= 1 {
			allFaster = false
		}
	}
	check("distribution helps at every query size", allFaster)
	if len(r.Points) >= 2 {
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		check("wall time grows with query size on one host", last.OneHostMs > first.OneHostMs)
		check("wall time grows with query size on two hosts", last.TwoHostMs > first.TwoHostMs)
	}
	if len(r.HostCounts) == 2 {
		counts := make([]int, 0, 2)
		for _, c := range r.HostCounts {
			counts = append(counts, c)
		}
		diff := counts[0] - counts[1]
		if diff < 0 {
			diff = -diff
		}
		check("Manager interleaving balances instances across hosts (±1)", diff <= 1)
	}
	return out
}

// ShapeOK reports whether every shape check passed.
func (r *Figure12Report) ShapeOK() bool {
	for _, line := range r.CheckShape() {
		if strings.HasPrefix(line, "MISMATCH") {
			return false
		}
	}
	return true
}
