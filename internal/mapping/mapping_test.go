package mapping

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/perfdata"
)

// wrapperSet builds every wrapper family over the same dataset, so
// conformance tests can compare them against the Memory oracle.
func wrapperSet(t *testing.T, d *datagen.Dataset) map[string]ApplicationWrapper {
	t.Helper()
	wide, err := NewWideTable(d)
	if err != nil {
		// Datasets with repeated metrics per execution don't fit a wide
		// table; callers pass wideOK datasets when they want it included.
		wide = nil
	}
	star, err := NewStar(d)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewFlatFile(d)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewXML(d)
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]ApplicationWrapper{
		"memory": NewMemory(d),
		"star":   star,
		"flat":   flat,
		"xml":    x,
	}
	if wide != nil {
		set["wide"] = wide
	}
	return set
}

func sortedResults(rs []perfdata.Result) []string {
	out := perfdata.EncodeResults(rs)
	sort.Strings(out)
	return out
}

// TestWrapperConformance runs every wrapper family over identical data and
// requires identical answers for the full Table 1 + Table 2 operation set.
func TestWrapperConformance(t *testing.T) {
	hpl := datagen.HPL(datagen.HPLConfig{Executions: 8, Seed: 11})
	rma := datagen.PrestaRMA(datagen.RMAConfig{Executions: 3, MessageSizes: 5, Seed: 12})
	for name, d := range map[string]*datagen.Dataset{"hpl": hpl, "rma": rma} {
		d := d
		t.Run(name, func(t *testing.T) {
			set := wrapperSet(t, d)
			oracle := set["memory"]

			wantN, _ := oracle.NumExecs()
			wantIDs, _ := oracle.AllExecIDs()
			sort.Strings(wantIDs)
			wantParams, _ := oracle.ExecQueryParams()

			for wname, w := range set {
				if wname == "memory" {
					continue
				}
				n, err := w.NumExecs()
				if err != nil || n != wantN {
					t.Errorf("%s.NumExecs = %d, %v; want %d", wname, n, err, wantN)
				}
				ids, err := w.AllExecIDs()
				if err != nil {
					t.Fatalf("%s.AllExecIDs: %v", wname, err)
				}
				sort.Strings(ids)
				if !reflect.DeepEqual(ids, wantIDs) {
					t.Errorf("%s.AllExecIDs = %v, want %v", wname, ids, wantIDs)
				}
				params, err := w.ExecQueryParams()
				if err != nil {
					t.Fatalf("%s.ExecQueryParams: %v", wname, err)
				}
				if !reflect.DeepEqual(params, wantParams) {
					t.Errorf("%s.ExecQueryParams = %+v, want %+v", wname, params, wantParams)
				}
			}

			// Attribute queries agree for every attribute/value pair.
			for _, p := range wantParams {
				for _, v := range p.Values {
					want, _ := oracle.ExecIDs(p.Name, v)
					sort.Strings(want)
					for wname, w := range set {
						got, err := w.ExecIDs(p.Name, v)
						if err != nil {
							t.Fatalf("%s.ExecIDs(%s,%s): %v", wname, p.Name, v, err)
						}
						sort.Strings(got)
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s.ExecIDs(%s,%s) = %v, want %v", wname, p.Name, v, got, want)
						}
					}
				}
			}

			// Execution-level conformance on the first execution.
			id := wantIDs[0]
			oe, _ := oracle.ExecutionWrapper(id)
			wantFoci, _ := oe.Foci()
			wantMetrics, _ := oe.Metrics()
			wantTypes, _ := oe.Types()
			wantTime, _ := oe.TimeStartEnd()
			fullQ := perfdata.Query{
				Metric: wantMetrics[0],
				Time:   perfdata.TimeRange{Start: wantTime.Start, End: wantTime.End + 1},
				Type:   perfdata.UndefinedType,
			}
			wantRS, _ := oe.PerformanceResults(fullQ)

			for wname, w := range set {
				ew, err := w.ExecutionWrapper(id)
				if err != nil {
					t.Fatalf("%s.ExecutionWrapper(%s): %v", wname, id, err)
				}
				if foci, _ := ew.Foci(); !reflect.DeepEqual(foci, wantFoci) {
					t.Errorf("%s.Foci = %v, want %v", wname, foci, wantFoci)
				}
				if ms, _ := ew.Metrics(); !reflect.DeepEqual(ms, wantMetrics) {
					t.Errorf("%s.Metrics = %v, want %v", wname, ms, wantMetrics)
				}
				if ts, _ := ew.Types(); !reflect.DeepEqual(ts, wantTypes) {
					t.Errorf("%s.Types = %v, want %v", wname, ts, wantTypes)
				}
				tr, err := ew.TimeStartEnd()
				if err != nil || tr != wantTime {
					t.Errorf("%s.TimeStartEnd = %+v, %v; want %+v", wname, tr, err, wantTime)
				}
				rs, err := ew.PerformanceResults(fullQ)
				if err != nil {
					t.Fatalf("%s.PerformanceResults: %v", wname, err)
				}
				if !reflect.DeepEqual(sortedResults(rs), sortedResults(wantRS)) {
					t.Errorf("%s.PerformanceResults differs from oracle:\n got %v\nwant %v",
						wname, sortedResults(rs), sortedResults(wantRS))
				}
			}
		})
	}
}

// TestStarWrapperFilters exercises the star wrapper's focus, time, and
// type filters against the oracle on SMG98-shaped data (which only the
// star and file wrappers can hold).
func TestStarWrapperFilters(t *testing.T) {
	d := datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 4, Seed: 13})
	star, err := NewStar(d)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewMemory(d)

	id := d.Execs[0].ID
	se, err := star.ExecutionWrapper(id)
	if err != nil {
		t.Fatal(err)
	}
	me, _ := oracle.ExecutionWrapper(id)

	tr, _ := me.TimeStartEnd()
	queries := []perfdata.Query{
		// Focus subtree: one process.
		{Metric: "func_calls", Foci: []string{"/Process/0"}, Time: tr, Type: "vampir"},
		// Focus subtree: one MPI function under one process.
		{Metric: "excl_time", Foci: []string{"/Process/1/Code/MPI/MPI_Send"}, Time: tr, Type: "vampir"},
		// Two foci OR'd together.
		{Metric: "func_calls", Foci: []string{"/Process/0/Code/MPI/MPI_Barrier", "/Process/1/Code/MPI/MPI_Bcast"}, Time: tr, Type: "vampir"},
		// Time window: middle half.
		{Metric: "msg_bytes", Time: perfdata.TimeRange{Start: tr.End / 4, End: tr.End / 2}, Type: "vampir"},
		// UNDEFINED type.
		{Metric: "incl_time", Time: tr, Type: perfdata.UndefinedType},
		// Unknown metric.
		{Metric: "nope", Time: tr, Type: "vampir"},
		// Unknown type.
		{Metric: "func_calls", Time: tr, Type: "paradyn"},
		// Root focus.
		{Metric: "func_calls", Foci: []string{"/"}, Time: tr, Type: "vampir"},
	}
	for _, q := range queries {
		want, _ := me.PerformanceResults(q)
		got, err := se.PerformanceResults(q)
		if err != nil {
			t.Fatalf("star getPR %v: %v", q, err)
		}
		if !reflect.DeepEqual(sortedResults(got), sortedResults(want)) {
			t.Errorf("star getPR %+v: got %d results, oracle %d", q, len(got), len(want))
		}
	}
}

func TestNoSuchExecution(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 3, Seed: 14})
	for name, w := range wrapperSet(t, d) {
		if _, err := w.ExecutionWrapper("bogus"); !errors.Is(err, ErrNoSuchExecution) {
			t.Errorf("%s: got %v", name, err)
		}
	}
}

func TestExecIDsNoMatches(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 3, Seed: 15})
	for name, w := range wrapperSet(t, d) {
		ids, err := w.ExecIDs("numprocesses", "9999")
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(ids) != 0 {
			t.Errorf("%s: matched %v", name, ids)
		}
	}
}

func TestWideWrapperFocusFilter(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: 16})
	w, err := NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	ew, _ := w.ExecutionWrapper(d.Execs[0].ID)
	tr, _ := ew.TimeStartEnd()
	// Whole-run metrics live at "/"; a non-root focus returns nothing.
	rs, err := ew.PerformanceResults(perfdata.Query{
		Metric: "gflops", Foci: []string{"/Process/3"}, Time: tr, Type: "hpl"})
	if err != nil || len(rs) != 0 {
		t.Errorf("non-root focus: %v, %v", rs, err)
	}
	rs, err = ew.PerformanceResults(perfdata.Query{
		Metric: "gflops", Foci: []string{"/"}, Time: tr, Type: "hpl"})
	if err != nil || len(rs) != 1 {
		t.Errorf("root focus: %v, %v", rs, err)
	}
}

func TestSQLInjectionResistance(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: 17})
	wide, err := NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	star, err := NewStar(d)
	if err != nil {
		t.Fatal(err)
	}
	hostile := []string{
		"x' OR '1'='1",
		"'; DROP TABLE executions; --",
		"100'; DELETE FROM executions WHERE '1'='1",
	}
	for _, payload := range hostile {
		// Attribute values are quoted; hostile payloads match nothing.
		if ids, err := wide.ExecIDs("numprocesses", payload); err != nil || len(ids) != 0 {
			t.Errorf("wide.ExecIDs(%q) = %v, %v", payload, ids, err)
		}
		if ids, err := star.ExecIDs("numprocesses", payload); err != nil || len(ids) != 0 {
			t.Errorf("star.ExecIDs(%q) = %v, %v", payload, ids, err)
		}
		// Attribute *names* are identifiers and must be rejected outright.
		if _, err := wide.ExecIDs(payload, "2"); err == nil {
			t.Errorf("wide.ExecIDs with hostile attr name: want error")
		}
		// Hostile execution IDs are quoted values.
		if _, err := wide.ExecutionWrapper(payload); !errors.Is(err, ErrNoSuchExecution) {
			t.Errorf("wide.ExecutionWrapper(%q): %v", payload, err)
		}
		if _, err := star.ExecutionWrapper(payload); !errors.Is(err, ErrNoSuchExecution) {
			t.Errorf("star.ExecutionWrapper(%q): %v", payload, err)
		}
	}
	// Tables are intact afterwards.
	if n, _ := wide.NumExecs(); n != 2 {
		t.Errorf("wide table damaged: %d execs", n)
	}
	if n, _ := star.NumExecs(); n != 2 {
		t.Errorf("star schema damaged: %d execs", n)
	}
}

func TestLatencyDecorator(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: 18})
	base := NewMemory(d)
	const delay = 20 * time.Millisecond
	slow := WithLatency(base, delay, 0)

	start := time.Now()
	if _, err := slow.NumExecs(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("NumExecs took %v, want >= %v", elapsed, delay)
	}

	ew, err := slow.ExecutionWrapper(d.Execs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ew.TimeStartEnd()
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	rs, err := ew.PerformanceResults(perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"})
	if err != nil || len(rs) != 1 {
		t.Fatalf("getPR: %v, %v", rs, err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("getPR took %v, want >= %v", elapsed, delay)
	}
	// Results pass through unchanged.
	direct, _ := base.ExecutionWrapper(d.Execs[0].ID)
	want, _ := direct.PerformanceResults(perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"})
	if !reflect.DeepEqual(rs, want) {
		t.Error("latency decorator altered results")
	}
}

func TestPerResultLatency(t *testing.T) {
	d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 10, Seed: 19})
	slow := WithLatency(NewMemory(d), 0, time.Millisecond)
	ew, err := slow.ExecutionWrapper("1")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ew.TimeStartEnd()
	start := time.Now()
	rs, err := ew.PerformanceResults(perfdata.Query{Metric: "bandwidth", Time: tr, Type: "presta"})
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(len(rs)) * time.Millisecond
	if elapsed := time.Since(start); elapsed < want {
		t.Errorf("getPR took %v, want >= %v for %d results", elapsed, want, len(rs))
	}
}

func TestIdentOK(t *testing.T) {
	good := []string{"a", "runid", "num_processes", "a9"}
	bad := []string{"", "9a", "a-b", "a b", "a;b", "a'b", "日本"}
	for _, s := range good {
		if !identOK(s) {
			t.Errorf("identOK(%q) = false", s)
		}
	}
	for _, s := range bad {
		if identOK(s) {
			t.Errorf("identOK(%q) = true", s)
		}
	}
}

func TestMemoryWrapperBasics(t *testing.T) {
	m := &Memory{
		Name: "X",
		Meta: []perfdata.KV{{Name: "name", Value: "X"}},
		Execs: []MemoryExecution{
			{ID: "1", Attrs: map[string]string{"n": "2"}, Time: perfdata.TimeRange{Start: 0, End: 10},
				Results: []perfdata.Result{{Metric: "m", Focus: "/", Type: "t", Time: perfdata.TimeRange{Start: 0, End: 10}, Value: 5}}},
			{ID: "2", Attrs: map[string]string{"n": "4"}, Time: perfdata.TimeRange{Start: 0, End: 10}},
		},
	}
	info, _ := m.AppInfo()
	if len(info) != 1 || info[0].Value != "X" {
		t.Errorf("AppInfo = %v", info)
	}
	ids, _ := m.ExecIDs("n", "4")
	if !reflect.DeepEqual(ids, []string{"2"}) {
		t.Errorf("ExecIDs = %v", ids)
	}
	ew, _ := m.ExecutionWrapper("2")
	foci, _ := ew.Foci()
	if len(foci) != 0 {
		t.Errorf("Foci of resultless exec = %v", foci)
	}
}
