package mapping

import (
	"fmt"
	"sort"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/flatfile"
	"pperfgrid/internal/minidb"
	"pperfgrid/internal/xmlstore"
)

// This file provides one-call builders that stand up each wrapper family
// over a generated dataset — the Data Layer + Mapping Layer of one
// PPerfGrid site, in the store format the paper used for that dataset.

// NewMemory builds the in-memory reference wrapper from a dataset.
func NewMemory(d *datagen.Dataset) *Memory {
	m := &Memory{Name: d.Name, Meta: d.Meta}
	for _, e := range d.Execs {
		m.Execs = append(m.Execs, MemoryExecution{
			ID: e.ID, Attrs: e.Attrs, Time: e.Time, Results: e.Results,
		})
	}
	return m
}

// WideOrderedIndexes are the wide table's sorted range indexes: the
// time-window columns every interval query bounds.
var WideOrderedIndexes = []string{"starttime", "endtime"}

// NewWideTable loads the dataset into a fresh single-table database and
// returns the wrapper over it — the paper's HPL store. The execid point-
// query column is hash-indexed, so per-execution lookups probe instead of
// scanning, and the time-window columns carry ordered indexes so range
// predicates binary-search instead of scanning.
func NewWideTable(d *datagen.Dataset) (*WideTableWrapper, error) {
	return NewWideTableWithOptions(d, minidb.Options{})
}

// NewWideTableWithOptions is NewWideTable with storage-engine options.
// When opts.Dir names a directory that already holds a recovered wide
// table, the load is skipped and the store serves the recovered rows —
// the restart path; a fresh directory (or no Dir: the in-memory engine)
// loads the dataset, disk-backed loads streaming through BulkLoad.
func NewWideTableWithOptions(d *datagen.Dataset, opts minidb.Options) (*WideTableWrapper, error) {
	db, recovered, err := openStore(opts)
	if err != nil {
		return nil, err
	}
	const table = "executions"
	if !recovered {
		if err := db.BulkLoad(func() error {
			return datagen.LoadWideTable(db, table, d)
		}); err != nil {
			return nil, fmt.Errorf("mapping: load wide table: %w", err)
		}
	}
	if err := db.CreateIndex(table, "execid"); err != nil {
		return nil, fmt.Errorf("mapping: index wide table: %w", err)
	}
	for _, col := range WideOrderedIndexes {
		if err := db.CreateOrderedIndex(table, col); err != nil {
			return nil, fmt.Errorf("mapping: ordered-index wide table: %w", err)
		}
	}
	metrics := map[string]bool{}
	for _, e := range d.Execs {
		for _, r := range e.Results {
			metrics[r.Metric] = true
		}
	}
	metricCols := make([]string, 0, len(metrics))
	for m := range metrics {
		metricCols = append(metricCols, m)
	}
	sort.Strings(metricCols)
	return &WideTableWrapper{
		DB:      db,
		Table:   table,
		Meta:    d.Meta,
		Attrs:   d.AttrNames(),
		Metrics: metricCols,
	}, nil
}

// StarIndexes are the star-schema index declarations: the fact table's
// join/filter columns (execid, metricid, fociid), the dimension keys the
// joins probe, and the EAV execution table's lookup columns. NewStar
// declares them; tests and benchmarks reuse the list to reproduce the
// production configuration.
var StarIndexes = [][2]string{
	{"results", "execid"},
	{"results", "metricid"},
	{"results", "fociid"},
	{"foci", "fociid"},
	{"metrics", "metricid"},
	{"metrics", "name"},
	{"collectors", "typeid"},
	{"collectors", "name"},
	{"executions", "execid"},
	{"executions", "attrname"},
}

// StarOrderedIndexes are the star schema's sorted range indexes: the fact
// table's time-window columns (every interval query bounds starttime and
// endtime) and its value column (top-k and threshold queries).
var StarOrderedIndexes = [][2]string{
	{"results", "starttime"},
	{"results", "endtime"},
	{"results", "value"},
}

// NewStar loads the dataset into a fresh five-table star schema and
// returns the wrapper over it — the paper's SMG98 store — with hash
// indexes declared on the join and filter columns and ordered indexes on
// the fact table's time and value columns.
func NewStar(d *datagen.Dataset) (*StarWrapper, error) {
	return NewStarWithOptions(d, minidb.Options{})
}

// NewStarWithOptions is NewStar with storage-engine options. A Dir that
// already holds a recovered star schema skips the load and serves the
// recovered rows (the restart path); otherwise the dataset loads through
// BulkLoad when disk-backed. Index declarations are idempotent, so they
// run on both paths.
func NewStarWithOptions(d *datagen.Dataset, opts minidb.Options) (*StarWrapper, error) {
	db, recovered, err := openStore(opts)
	if err != nil {
		return nil, err
	}
	if !recovered {
		if err := db.BulkLoad(func() error {
			return datagen.LoadStarSchema(db, d)
		}); err != nil {
			return nil, fmt.Errorf("mapping: load star schema: %w", err)
		}
	}
	if err := DeclareStarIndexes(db); err != nil {
		return nil, err
	}
	return &StarWrapper{DB: db, Meta: d.Meta}, nil
}

// openStore opens the backing database for a builder: in-memory when
// opts.Dir is empty, otherwise the disk engine rooted there. recovered
// reports whether the directory already held tables (so the caller must
// not re-load the dataset on top of them).
func openStore(opts minidb.Options) (db *minidb.Database, recovered bool, err error) {
	if opts.Dir == "" {
		return minidb.NewDatabase(), false, nil
	}
	db, err = minidb.Open(opts)
	if err != nil {
		return nil, false, fmt.Errorf("mapping: open store %s: %w", opts.Dir, err)
	}
	return db, len(db.TableNames()) > 0, nil
}

// DeclareStarIndexes declares the production star-schema index
// configuration (StarIndexes + StarOrderedIndexes) on a loaded database.
// Tests, benchmarks, and the scale harness reuse it so every star
// database matches the wrapper's configuration.
func DeclareStarIndexes(db *minidb.Database) error {
	for _, ix := range StarIndexes {
		if err := db.CreateIndex(ix[0], ix[1]); err != nil {
			return fmt.Errorf("mapping: index star schema: %w", err)
		}
	}
	for _, ix := range StarOrderedIndexes {
		if err := db.CreateOrderedIndex(ix[0], ix[1]); err != nil {
			return fmt.Errorf("mapping: ordered-index star schema: %w", err)
		}
	}
	return nil
}

// NewFlatFile encodes the dataset as flat text files held in memory and
// returns the wrapper over them — the paper's Presta RMA store.
func NewFlatFile(d *datagen.Dataset) (*FlatFileWrapper, error) {
	files, err := flatfile.Encode(d.ToFlatfile())
	if err != nil {
		return nil, fmt.Errorf("mapping: encode flat files: %w", err)
	}
	store, err := flatfile.OpenFiles(files)
	if err != nil {
		return nil, fmt.Errorf("mapping: open flat files: %w", err)
	}
	return &FlatFileWrapper{Store: store}, nil
}

// NewXML encodes the dataset as one XML document and returns the wrapper
// over it — the paper's future-work XML variant of the HPL store.
func NewXML(d *datagen.Dataset) (*XMLWrapper, error) {
	raw, err := xmlstore.Encode(d.ToXML())
	if err != nil {
		return nil, fmt.Errorf("mapping: encode xml: %w", err)
	}
	store, err := xmlstore.Open(raw)
	if err != nil {
		return nil, fmt.Errorf("mapping: open xml: %w", err)
	}
	return &XMLWrapper{Store: store}, nil
}
