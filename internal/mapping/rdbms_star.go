package mapping

import (
	"fmt"
	"strings"
	"sync"

	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
)

// StarWrapper maps the five-table relational star schema — the paper's
// SMG98 layout, produced by datagen.LoadStarSchema — onto the PPerfGrid
// interfaces.
//
// A getPR call performs the realistic multi-query dance of a star-schema
// client: resolve the metric (and type) in the dimension tables, resolve
// the queried foci with LIKE prefix scans, then run a fact-table join
// filtered by execution, metric, type, time overlap, and focus set. On a
// large fact table this is by far the slowest wrapper, which is exactly
// the SMG98 behaviour Table 4 and Table 5 of the paper report.
//
// All statements are prepared (parsed once, parameters bound per call —
// see minidb.Database.Prepare) and the fact-table join streams its rows,
// so the wrapper decodes each result straight into the output slice. The
// builders declare hash indexes on the join and filter columns (execid,
// metricid, fociid), which the prepared statements' plans probe.
type StarWrapper struct {
	DB   *minidb.Database
	Meta []perfdata.KV

	// pubMu serializes publishes: dimension interning is a read-then-
	// create sequence over several statements, and per-statement database
	// locking alone would let two concurrent publishes mint the same
	// dimension ID.
	pubMu sync.Mutex
}

// query runs a prepared statement with bindings, materializing the rows
// (the discovery queries are small; only the fact join streams).
func (w *StarWrapper) query(sql string, args ...minidb.Value) (*minidb.ResultSet, error) {
	return prepQuery(w.DB, sql, args...)
}

// EngineStats reports the backing storage engine's counters (page cache,
// zone-map skipping, WAL) for service-data publication.
func (w *StarWrapper) EngineStats() minidb.EngineStats { return w.DB.EngineStats() }

// Close flushes and closes the backing store (a no-op for the in-memory
// engine).
func (w *StarWrapper) Close() error { return w.DB.Close() }

// AppInfo implements ApplicationWrapper.
func (w *StarWrapper) AppInfo() ([]perfdata.KV, error) {
	out := make([]perfdata.KV, len(w.Meta))
	copy(out, w.Meta)
	return out, nil
}

// NumExecs implements ApplicationWrapper.
func (w *StarWrapper) NumExecs() (int, error) {
	rs, err := w.query("SELECT COUNT(DISTINCT execid) FROM executions")
	if err != nil {
		return 0, err
	}
	return int(rs.Rows[0][0].Int), nil
}

// ExecQueryParams implements ApplicationWrapper over the EAV executions
// table.
func (w *StarWrapper) ExecQueryParams() ([]perfdata.Attribute, error) {
	names, err := w.query("SELECT DISTINCT attrname FROM executions ORDER BY attrname")
	if err != nil {
		return nil, err
	}
	var out []perfdata.Attribute
	for _, row := range names.Rows {
		name := row[0].String()
		vals, err := w.query(
			"SELECT DISTINCT attrvalue FROM executions WHERE attrname = ? ORDER BY attrvalue",
			minidb.Text(name))
		if err != nil {
			return nil, err
		}
		out = append(out, perfdata.Attribute{Name: name, Values: column0(vals)})
	}
	return out, nil
}

// AllExecIDs implements ApplicationWrapper.
func (w *StarWrapper) AllExecIDs() ([]string, error) {
	rs, err := w.query("SELECT DISTINCT execid FROM executions ORDER BY execid")
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

// ExecIDs implements ApplicationWrapper.
func (w *StarWrapper) ExecIDs(attr, value string) ([]string, error) {
	rs, err := w.query(
		"SELECT DISTINCT execid FROM executions WHERE attrname = ? AND attrvalue = ? ORDER BY execid",
		minidb.Text(attr), minidb.Text(value))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

// ExecutionWrapper implements ApplicationWrapper.
func (w *StarWrapper) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	rs, err := w.query("SELECT COUNT(*) FROM executions WHERE execid = ?", minidb.Text(id))
	if err != nil {
		return nil, err
	}
	if rs.Rows[0][0].Int == 0 {
		return nil, fmt.Errorf("%w: %q in star schema", ErrNoSuchExecution, id)
	}
	return &starExec{w: w, id: id}, nil
}

type starExec struct {
	w  *StarWrapper
	id string
}

func (e *starExec) Info() ([]perfdata.KV, error) {
	rs, err := e.w.query(
		"SELECT attrname, attrvalue FROM executions WHERE execid = ? ORDER BY attrname",
		minidb.Text(e.id))
	if err != nil {
		return nil, err
	}
	out := []perfdata.KV{{Name: "id", Value: e.id}}
	for _, row := range rs.Rows {
		out = append(out, perfdata.KV{Name: row[0].String(), Value: row[1].String()})
	}
	return out, nil
}

func (e *starExec) Foci() ([]string, error) {
	rs, err := e.w.query(
		"SELECT DISTINCT f.path FROM results r JOIN foci f ON r.fociid = f.fociid WHERE r.execid = ? ORDER BY f.path",
		minidb.Text(e.id))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *starExec) Metrics() ([]string, error) {
	rs, err := e.w.query(
		"SELECT DISTINCT m.name FROM results r JOIN metrics m ON r.metricid = m.metricid WHERE r.execid = ? ORDER BY m.name",
		minidb.Text(e.id))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *starExec) Types() ([]string, error) {
	rs, err := e.w.query(
		"SELECT DISTINCT c.name FROM results r JOIN collectors c ON r.typeid = c.typeid WHERE r.execid = ? ORDER BY c.name",
		minidb.Text(e.id))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *starExec) TimeStartEnd() (perfdata.TimeRange, error) {
	rs, err := e.w.query(
		"SELECT MIN(starttime), MAX(endtime) FROM executions WHERE execid = ?", minidb.Text(e.id))
	if err != nil {
		return perfdata.TimeRange{}, err
	}
	if len(rs.Rows) == 0 || rs.Rows[0][0].IsNull() {
		return perfdata.TimeRange{}, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	start, _ := rs.Rows[0][0].AsFloat()
	end, _ := rs.Rows[0][1].AsFloat()
	return perfdata.TimeRange{Start: start, End: end}, nil
}

// PerformanceResults implements the star-schema getPR path by collecting
// the streamed rows.
func (e *starExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	return CollectResults(e, q)
}

// starPRPlan is the resolved dimension half of one star-schema getPR:
// the prepared fact-join statement, its bindings, and the collector
// names needed to decode the joined rows.
type starPRPlan struct {
	st        *minidb.Stmt
	args      []minidb.Value
	typeNames map[int64]string
}

// planPR resolves the dimension lookups of a getPR (metric, collector
// type, foci prefix scans) and prepares the fact-table join. ok=false
// (with a nil error) means a dimension lookup proved the query matches
// nothing. The collector names resolve here too, before the join stream
// opens and takes the database's read lock.
func (e *starExec) planPR(q perfdata.Query) (plan starPRPlan, ok bool, err error) {
	// 1. Resolve the metric dimension.
	rs, err := e.w.query("SELECT metricid FROM metrics WHERE name = ?", minidb.Text(q.Metric))
	if err != nil {
		return plan, false, err
	}
	if len(rs.Rows) == 0 {
		return plan, false, nil
	}
	metricID := rs.Rows[0][0].Int

	// 2. Resolve the collector type, unless UNDEFINED matches all.
	typeFilter := ""
	var typeArg []minidb.Value
	if q.Type != perfdata.UndefinedType {
		rs, err = e.w.query("SELECT typeid FROM collectors WHERE name = ?", minidb.Text(q.Type))
		if err != nil {
			return plan, false, err
		}
		if len(rs.Rows) == 0 {
			return plan, false, nil
		}
		typeFilter = " AND r.typeid = ?"
		typeArg = []minidb.Value{minidb.Int(rs.Rows[0][0].Int)}
	}

	// 3. Resolve the queried foci to dimension IDs with prefix scans.
	fociFilter := ""
	var fociArgs []minidb.Value
	if len(q.Foci) > 0 {
		var conds []string
		var args []minidb.Value
		for _, f := range q.Foci {
			base := strings.TrimSuffix(f, "/")
			if base == "" {
				conds = nil // root focus matches everything
				break
			}
			conds = append(conds, "path = ? OR path LIKE ?")
			args = append(args, minidb.Text(base), minidb.Text(likeEscape(base)+"/%"))
		}
		if conds != nil {
			rs, err = e.w.query("SELECT fociid FROM foci WHERE "+strings.Join(conds, " OR "), args...)
			if err != nil {
				return plan, false, err
			}
			if len(rs.Rows) == 0 {
				return plan, false, nil
			}
			ph := make([]string, len(rs.Rows))
			for i, row := range rs.Rows {
				ph[i] = "?"
				fociArgs = append(fociArgs, row[0])
			}
			fociFilter = " AND r.fociid IN (" + strings.Join(ph, ", ") + ")"
		}
	}

	// 4. Resolve collector names before the streaming join opens: the
	// stream holds the database's read lock, so no further queries may
	// run until it closes.
	plan.typeNames, err = e.typeNames()
	if err != nil {
		return plan, false, err
	}

	// 5. Fact-table join filtered by execution, metric, type, time, foci.
	// The plan probes the results(execid) index, pushes the remaining
	// filters into the scan, and hash-joins the foci dimension.
	sql := "SELECT f.path, r.starttime, r.endtime, r.value, r.typeid FROM results r JOIN foci f ON r.fociid = f.fociid " +
		"WHERE r.execid = ? AND r.metricid = ? AND r.endtime > ? AND r.starttime < ?" + typeFilter + fociFilter
	plan.st, err = e.w.DB.Prepare(sql)
	if err != nil {
		return plan, false, err
	}
	plan.args = append([]minidb.Value{
		minidb.Text(e.id), minidb.Int(metricID),
		minidb.Float(q.Time.Start), minidb.Float(q.Time.End),
	}, append(typeArg, fociArgs...)...)
	return plan, true, nil
}

// StreamPerformanceResults implements ResultStreamer: the dimension
// lookups resolve first (small materialized queries), then the fact-table
// join streams through minidb's result iterator, decoding each row into a
// perfdata.Result handed to yield — no intermediate materialized copy of
// the (potentially huge) fact scan exists. This row-at-a-time path is the
// differential oracle for AppendPerformanceResults.
func (e *starExec) StreamPerformanceResults(q perfdata.Query, yield func(perfdata.Result) error) error {
	plan, ok, err := e.planPR(q)
	if err != nil || !ok {
		return err
	}
	rows, err := plan.st.QueryStream(plan.args...)
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
		row := rows.Row()
		start, _ := row[1].AsFloat()
		end, _ := row[2].AsFloat()
		val, _ := row[3].AsFloat()
		if err := yield(perfdata.Result{
			Metric: q.Metric,
			Focus:  row[0].String(),
			Type:   plan.typeNames[row[4].Int],
			Time:   perfdata.TimeRange{Start: start, End: end},
			Value:  val,
		}); err != nil {
			return err
		}
	}
	return rows.Err()
}

// AppendPerformanceResults implements ResultAppender: the same fact-table
// join consumed through minidb's vectorized NextBatch, decoding each
// column-oriented batch straight into dst. No per-row []Value is
// materialized and no per-result callback runs — this is the cold-path
// counterpart of the streaming oracle above.
func (e *starExec) AppendPerformanceResults(q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error) {
	plan, ok, err := e.planPR(q)
	if err != nil || !ok {
		return dst, err
	}
	rows, err := plan.st.QueryStream(plan.args...)
	if err != nil {
		return dst, err
	}
	defer rows.Close()
	b := minidb.NewBatch()
	defer b.Release()
	for rows.NextBatch(b, 0) {
		paths, starts, ends, vals, typeids := b.Col(0), b.Col(1), b.Col(2), b.Col(3), b.Col(4)
		for i := range paths {
			start, _ := starts[i].AsFloat()
			end, _ := ends[i].AsFloat()
			val, _ := vals[i].AsFloat()
			dst = append(dst, perfdata.Result{
				Metric: q.Metric,
				Focus:  paths[i].String(),
				Type:   plan.typeNames[typeids[i].Int],
				Time:   perfdata.TimeRange{Start: start, End: end},
				Value:  val,
			})
		}
	}
	return dst, rows.Err()
}

// starDims maps each dimension table to its lookup statements, fixed SQL
// texts so every publish reuses the same prepared statements.
var starDims = []struct{ table, sel, ins string }{
	{"foci", "SELECT fociid FROM foci WHERE path = ?", "INSERT INTO foci VALUES (?, ?)"},
	{"metrics", "SELECT metricid FROM metrics WHERE name = ?", "INSERT INTO metrics VALUES (?, ?)"},
	{"collectors", "SELECT typeid FROM collectors WHERE name = ?", "INSERT INTO collectors VALUES (?, ?)"},
}

// internDim resolves a dimension key to its ID, creating the row when it
// is new. IDs are dense 1..n in first-appearance order — exactly
// datagen.LoadStarSchema's interning, whose in-memory map always holds
// one entry per dimension row, so the next ID is the row count plus one.
// The caller must hold pubMu.
func (w *StarWrapper) internDim(dim int, key string) (int64, error) {
	d := starDims[dim]
	rs, err := w.query(d.sel, minidb.Text(key))
	if err != nil {
		return 0, err
	}
	if len(rs.Rows) > 0 {
		return rs.Rows[0][0].Int, nil
	}
	n, err := w.DB.NumRows(d.table)
	if err != nil {
		return 0, err
	}
	id := int64(n + 1)
	ins, err := w.DB.Prepare(d.ins)
	if err != nil {
		return 0, err
	}
	if _, err := ins.Exec(minidb.Int(id), minidb.Text(key)); err != nil {
		return 0, err
	}
	return id, nil
}

// starInsertResult is the prepared fact-table insert of the publish path.
// Inserting through the statement maintains the results table's hash
// indexes incrementally and marks its ordered indexes stale, per minidb's
// insert contract — the next range probe lazily rebuilds.
const starInsertResult = "INSERT INTO results VALUES (?, ?, ?, ?, ?, ?, ?)"

// PublishResults implements ResultWriter: each result interns its
// dimension values (focus, then metric, then collector — LoadStarSchema's
// order, so a store rebuilt from the extended dataset mints identical
// dimension IDs) and appends one fact row through the prepared insert.
func (e *starExec) PublishResults(rs []perfdata.Result) error {
	if len(rs) == 0 {
		return nil
	}
	w := e.w
	w.pubMu.Lock()
	defer w.pubMu.Unlock()
	ins, err := w.DB.Prepare(starInsertResult)
	if err != nil {
		return err
	}
	for _, r := range rs {
		fid, err := w.internDim(0, r.Focus)
		if err != nil {
			return err
		}
		mid, err := w.internDim(1, r.Metric)
		if err != nil {
			return err
		}
		tid, err := w.internDim(2, r.Type)
		if err != nil {
			return err
		}
		if _, err := ins.Exec(
			minidb.Text(e.id), minidb.Int(fid), minidb.Int(mid), minidb.Int(tid),
			minidb.Float(r.Time.Start), minidb.Float(r.Time.End), minidb.Float(r.Value)); err != nil {
			return err
		}
	}
	return nil
}

func (e *starExec) typeNames() (map[int64]string, error) {
	rs, err := e.w.query("SELECT typeid, name FROM collectors")
	if err != nil {
		return nil, err
	}
	out := make(map[int64]string, len(rs.Rows))
	for _, row := range rs.Rows {
		out[row[0].Int] = row[1].String()
	}
	return out, nil
}

// likeEscape escapes LIKE wildcards in a literal prefix. minidb's LIKE has
// no ESCAPE clause, so occurrences of % and _ in focus paths are treated
// as single-character wildcards by substituting _ (which matches them-
// selves too); focus paths in practice contain neither.
func likeEscape(s string) string {
	return strings.NewReplacer("%", "_", "_", "_").Replace(s)
}
