package mapping

import (
	"fmt"
	"strings"

	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
)

// StarWrapper maps the five-table relational star schema — the paper's
// SMG98 layout, produced by datagen.LoadStarSchema — onto the PPerfGrid
// interfaces.
//
// A getPR call performs the realistic multi-query dance of a star-schema
// client: resolve the metric (and type) in the dimension tables, resolve
// the queried foci with LIKE prefix scans, then run a fact-table join
// filtered by execution, metric, type, time overlap, and focus set. On a
// large fact table this is by far the slowest wrapper, which is exactly
// the SMG98 behaviour Table 4 and Table 5 of the paper report.
type StarWrapper struct {
	DB   *minidb.Database
	Meta []perfdata.KV
}

// AppInfo implements ApplicationWrapper.
func (w *StarWrapper) AppInfo() ([]perfdata.KV, error) {
	out := make([]perfdata.KV, len(w.Meta))
	copy(out, w.Meta)
	return out, nil
}

// NumExecs implements ApplicationWrapper.
func (w *StarWrapper) NumExecs() (int, error) {
	rs, err := w.DB.Query("SELECT COUNT(DISTINCT execid) FROM executions")
	if err != nil {
		return 0, err
	}
	return int(rs.Rows[0][0].Int), nil
}

// ExecQueryParams implements ApplicationWrapper over the EAV executions
// table.
func (w *StarWrapper) ExecQueryParams() ([]perfdata.Attribute, error) {
	names, err := w.DB.Query("SELECT DISTINCT attrname FROM executions ORDER BY attrname")
	if err != nil {
		return nil, err
	}
	var out []perfdata.Attribute
	for _, row := range names.Rows {
		name := row[0].String()
		vals, err := w.DB.Query(fmt.Sprintf(
			"SELECT DISTINCT attrvalue FROM executions WHERE attrname = %s ORDER BY attrvalue",
			sqlQuote(name)))
		if err != nil {
			return nil, err
		}
		out = append(out, perfdata.Attribute{Name: name, Values: column0(vals)})
	}
	return out, nil
}

// AllExecIDs implements ApplicationWrapper.
func (w *StarWrapper) AllExecIDs() ([]string, error) {
	rs, err := w.DB.Query("SELECT DISTINCT execid FROM executions ORDER BY execid")
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

// ExecIDs implements ApplicationWrapper.
func (w *StarWrapper) ExecIDs(attr, value string) ([]string, error) {
	rs, err := w.DB.Query(fmt.Sprintf(
		"SELECT DISTINCT execid FROM executions WHERE attrname = %s AND attrvalue = %s ORDER BY execid",
		sqlQuote(attr), sqlQuote(value)))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

// ExecutionWrapper implements ApplicationWrapper.
func (w *StarWrapper) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	rs, err := w.DB.Query(fmt.Sprintf(
		"SELECT COUNT(*) FROM executions WHERE execid = %s", sqlQuote(id)))
	if err != nil {
		return nil, err
	}
	if rs.Rows[0][0].Int == 0 {
		return nil, fmt.Errorf("%w: %q in star schema", ErrNoSuchExecution, id)
	}
	return &starExec{w: w, id: id}, nil
}

type starExec struct {
	w  *StarWrapper
	id string
}

func (e *starExec) Info() ([]perfdata.KV, error) {
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT attrname, attrvalue FROM executions WHERE execid = %s ORDER BY attrname",
		sqlQuote(e.id)))
	if err != nil {
		return nil, err
	}
	out := []perfdata.KV{{Name: "id", Value: e.id}}
	for _, row := range rs.Rows {
		out = append(out, perfdata.KV{Name: row[0].String(), Value: row[1].String()})
	}
	return out, nil
}

func (e *starExec) Foci() ([]string, error) {
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT DISTINCT f.path FROM results r JOIN foci f ON r.fociid = f.fociid WHERE r.execid = %s ORDER BY f.path",
		sqlQuote(e.id)))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *starExec) Metrics() ([]string, error) {
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT DISTINCT m.name FROM results r JOIN metrics m ON r.metricid = m.metricid WHERE r.execid = %s ORDER BY m.name",
		sqlQuote(e.id)))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *starExec) Types() ([]string, error) {
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT DISTINCT c.name FROM results r JOIN collectors c ON r.typeid = c.typeid WHERE r.execid = %s ORDER BY c.name",
		sqlQuote(e.id)))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *starExec) TimeStartEnd() (perfdata.TimeRange, error) {
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT MIN(starttime), MAX(endtime) FROM executions WHERE execid = %s", sqlQuote(e.id)))
	if err != nil {
		return perfdata.TimeRange{}, err
	}
	if len(rs.Rows) == 0 || rs.Rows[0][0].IsNull() {
		return perfdata.TimeRange{}, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	start, _ := rs.Rows[0][0].AsFloat()
	end, _ := rs.Rows[0][1].AsFloat()
	return perfdata.TimeRange{Start: start, End: end}, nil
}

// PerformanceResults implements the star-schema getPR path.
func (e *starExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	// 1. Resolve the metric dimension.
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT metricid FROM metrics WHERE name = %s", sqlQuote(q.Metric)))
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, nil
	}
	metricID := rs.Rows[0][0].Int

	// 2. Resolve the collector type, unless UNDEFINED matches all.
	typeFilter := ""
	if q.Type != perfdata.UndefinedType {
		rs, err = e.w.DB.Query(fmt.Sprintf(
			"SELECT typeid FROM collectors WHERE name = %s", sqlQuote(q.Type)))
		if err != nil {
			return nil, err
		}
		if len(rs.Rows) == 0 {
			return nil, nil
		}
		typeFilter = fmt.Sprintf(" AND r.typeid = %d", rs.Rows[0][0].Int)
	}

	// 3. Resolve the queried foci to dimension IDs with prefix scans.
	fociFilter := ""
	if len(q.Foci) > 0 {
		var conds []string
		for _, f := range q.Foci {
			base := strings.TrimSuffix(f, "/")
			if base == "" {
				conds = nil // root focus matches everything
				break
			}
			conds = append(conds, fmt.Sprintf("path = %s OR path LIKE %s",
				sqlQuote(base), sqlQuote(likeEscape(base)+"/%")))
		}
		if conds != nil {
			rs, err = e.w.DB.Query("SELECT fociid FROM foci WHERE " + strings.Join(conds, " OR "))
			if err != nil {
				return nil, err
			}
			if len(rs.Rows) == 0 {
				return nil, nil
			}
			ids := make([]string, len(rs.Rows))
			for i, row := range rs.Rows {
				ids[i] = row[0].String()
			}
			fociFilter = " AND r.fociid IN (" + strings.Join(ids, ", ") + ")"
		}
	}

	// 4. Fact-table join filtered by execution, metric, type, time, foci.
	sql := fmt.Sprintf(
		"SELECT f.path, r.starttime, r.endtime, r.value, r.typeid FROM results r JOIN foci f ON r.fociid = f.fociid "+
			"WHERE r.execid = %s AND r.metricid = %d AND r.endtime > %g AND r.starttime < %g%s%s",
		sqlQuote(e.id), metricID, q.Time.Start, q.Time.End, typeFilter, fociFilter)
	rs, err = e.w.DB.Query(sql)
	if err != nil {
		return nil, err
	}

	// 5. Decode rows, resolving collector names from the small dimension.
	typeNames, err := e.typeNames()
	if err != nil {
		return nil, err
	}
	out := make([]perfdata.Result, 0, len(rs.Rows))
	for _, row := range rs.Rows {
		start, _ := row[1].AsFloat()
		end, _ := row[2].AsFloat()
		val, _ := row[3].AsFloat()
		out = append(out, perfdata.Result{
			Metric: q.Metric,
			Focus:  row[0].String(),
			Type:   typeNames[row[4].Int],
			Time:   perfdata.TimeRange{Start: start, End: end},
			Value:  val,
		})
	}
	return out, nil
}

func (e *starExec) typeNames() (map[int64]string, error) {
	rs, err := e.w.DB.Query("SELECT typeid, name FROM collectors")
	if err != nil {
		return nil, err
	}
	out := make(map[int64]string, len(rs.Rows))
	for _, row := range rs.Rows {
		out[row[0].Int] = row[1].String()
	}
	return out, nil
}

// likeEscape escapes LIKE wildcards in a literal prefix. minidb's LIKE has
// no ESCAPE clause, so occurrences of % and _ in focus paths are treated
// as single-character wildcards by substituting _ (which matches them-
// selves too); focus paths in practice contain neither.
func likeEscape(s string) string {
	return strings.NewReplacer("%", "_", "_", "_").Replace(s)
}
