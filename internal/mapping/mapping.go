// Package mapping implements PPerfGrid's Mapping Layer: wrapper modules
// that translate the semantic-layer operations of Tables 1 and 2 into each
// data store's native query mechanism, and translate the results back into
// the PPerfGrid formats (Figure 4 of the paper).
//
// Four wrapper families are provided, covering the paper's data sources:
//
//   - WideTableWrapper — single-table relational store (the HPL layout),
//     queried with SQL text against a minidb database.
//   - StarWrapper — five-table relational star schema (the SMG98 layout),
//     queried with dimension lookups plus a fact-table join per getPR.
//   - FlatFileWrapper — flat ASCII text files (the Presta RMA layout),
//     re-parsed per query by the custom parser in package flatfile.
//   - XMLWrapper — a native-XML store, re-decoded per query.
//
// The Latency decorator adds a configurable per-query delay to any
// wrapper, calibrating the mapping-layer cost to the paper's 2004-era
// testbed (440 MHz UltraSPARC hosts and PostgreSQL 7.4.1) so the Table 4
// overhead ratios are reproducible on modern hardware; README.md
// documents this substitution.
package mapping

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pperfgrid/internal/perfdata"
)

// ApplicationWrapper is the mapping-layer contract behind an Application
// semantic object. Its operations correspond one-to-one with the
// Application PortType (Table 1); the semantic layer adds Grid service
// instance management on top.
type ApplicationWrapper interface {
	// AppInfo returns general application metadata (name, version, ...).
	AppInfo() ([]perfdata.KV, error)
	// NumExecs returns the number of unique executions available.
	NumExecs() (int, error)
	// ExecQueryParams returns the attributes that describe executions,
	// each with its set of unique values.
	ExecQueryParams() ([]perfdata.Attribute, error)
	// AllExecIDs returns every unique execution ID.
	AllExecIDs() ([]string, error)
	// ExecIDs returns the IDs of executions whose attribute equals value.
	ExecIDs(attr, value string) ([]string, error)
	// ExecutionWrapper opens the execution-level wrapper for one ID.
	ExecutionWrapper(id string) (ExecutionWrapper, error)
}

// ExecutionWrapper is the mapping-layer contract behind an Execution
// semantic object, mirroring the Execution PortType (Table 2).
type ExecutionWrapper interface {
	// Info returns general execution metadata.
	Info() ([]perfdata.KV, error)
	// Foci returns the unique focus values, sorted, no duplicates.
	Foci() ([]string, error)
	// Metrics returns the unique metric names, sorted, no duplicates.
	Metrics() ([]string, error)
	// Types returns the unique collector types, sorted, no duplicates.
	Types() ([]string, error)
	// TimeStartEnd returns the execution's start and end times.
	TimeStartEnd() (perfdata.TimeRange, error)
	// PerformanceResults returns the results matching the query.
	PerformanceResults(q perfdata.Query) ([]perfdata.Result, error)
}

// ErrNoSuchExecution reports a query for an execution ID the store does
// not contain.
var ErrNoSuchExecution = errors.New("mapping: no such execution")

// ErrNotWritable reports a publish against a wrapper whose store has no
// write path (the read-only XML store, or a decorator over one).
var ErrNotWritable = errors.New("mapping: store does not support publishing")

// ResultWriter is the write-path extension of ExecutionWrapper: live
// ingestion of new performance results into an existing execution. The
// star, wide-table, flat-file, and Memory wrappers implement it; the XML
// wrapper does not (its store is a read-only document).
//
// Contract:
//
//   - PublishResults appends rs to the execution's result set in argument
//     order. On a nil error return the results are durable in the store
//     and visible to every subsequent read through any wrapper over it —
//     a store rebuilt from scratch with the extended dataset must answer
//     every query identically (the differential write-oracle the tests
//     pin).
//   - The wrapper copies what it retains; the caller keeps ownership of
//     rs and its backing array.
//   - Calls for the same store may run concurrently with reads and with
//     each other; the wrapper serializes internally as needed. Results
//     of a failed call may be partially applied (matching minidb INSERT's
//     partial-progress semantics) but never torn within one result.
//   - Invalidation is the caller's job: the Semantic Layer
//     (core.ExecutionService.PublishResults) bumps its epoch and purges
//     its caches after the wrapper returns; wrappers only make the store
//     itself consistent (indexes maintained, ordered indexes re-marked
//     stale).
type ResultWriter interface {
	PublishResults(rs []perfdata.Result) error
}

// ResultStreamer is an optional extension of ExecutionWrapper. Wrappers
// whose stores can produce results incrementally (the relational wrappers,
// via minidb's streaming result iterator) implement it so the Semantic
// Layer decodes each row straight into the slice it caches, instead of
// materializing an intermediate result set. The yield callback must not
// retain its argument's backing store or call back into the wrapper.
//
// It is retained as the row-at-a-time oracle of the vectorized cold path:
// differential tests pin ResultAppender implementations to the stream's
// output, result for result.
type ResultStreamer interface {
	StreamPerformanceResults(q perfdata.Query, yield func(perfdata.Result) error) error
}

// ResultAppender is the vectorized extension of ExecutionWrapper: the
// cold getPR fast path. AppendPerformanceResults appends every result
// matching q to dst (growing it as needed) and returns the extended
// slice. The relational wrappers implement it by decoding minidb's
// column-oriented ValueBatches straight into dst — no per-row []Value,
// no per-result append through a yield callback — and the flat-file
// wrapper by filtering records during its byte-level re-parse.
//
// Ownership: the returned slice (and its backing array, which may have
// been reallocated away from dst's) belongs to the caller; the wrapper
// retains no reference. Callers that recycle dst through the arena pool
// below therefore know the backing array is theirs to reuse.
type ResultAppender interface {
	AppendPerformanceResults(q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error)
}

// CollectResults drains a streamer into a slice — the adapter behind
// every materializing PerformanceResults built on a streaming wrapper.
func CollectResults(s ResultStreamer, q perfdata.Query) ([]perfdata.Result, error) {
	var out []perfdata.Result
	err := s.StreamPerformanceResults(q, func(r perfdata.Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// resultArenaPool recycles []perfdata.Result backing arrays for result
// sets whose lifetime ends inside one request — the cache-off cold wire
// path, which decodes a result set, encodes it into the response
// envelope, and drops it. Pooling the arrays stops that steady-state
// workload from allocating one arena per query.
var resultArenaPool = sync.Pool{New: func() any { return new([]perfdata.Result) }}

// GetResultArena hands out a pooled arena with empty-slice contents and
// capacity at least hint. The pointer box travels with the arena: append
// through `*p`, write the grown slice back into `*p`, and hand the same
// pointer to PutResultArena — no per-cycle box allocation. Pool only
// when nothing retains the slice (never for results handed to a cache
// or a caller).
func GetResultArena(hint int) *[]perfdata.Result {
	p := resultArenaPool.Get().(*[]perfdata.Result)
	if cap(*p) < hint {
		*p = make([]perfdata.Result, 0, hint)
	}
	*p = (*p)[:0]
	return p
}

// PutResultArena clears the arena (dropping its string references so the
// pool pins no store data) and recycles it.
func PutResultArena(p *[]perfdata.Result) {
	rs := (*p)[:cap(*p)]
	clear(rs)
	*p = rs[:0]
	resultArenaPool.Put(p)
}

// Latency decorates an ApplicationWrapper with a fixed per-operation
// delay, modelling the paper's slower testbed. Execution wrappers opened
// through it inherit the delay.
type Latency struct {
	Wrapped ApplicationWrapper
	// PerQuery is added to every wrapper operation.
	PerQuery time.Duration
	// PerResult is added per returned performance result, modelling
	// row-fetch cost.
	PerResult time.Duration
}

// WithLatency wraps w with per-query and per-result delays.
func WithLatency(w ApplicationWrapper, perQuery, perResult time.Duration) *Latency {
	return &Latency{Wrapped: w, PerQuery: perQuery, PerResult: perResult}
}

func (l *Latency) pause() {
	if l.PerQuery > 0 {
		time.Sleep(l.PerQuery)
	}
}

// AppInfo implements ApplicationWrapper.
func (l *Latency) AppInfo() ([]perfdata.KV, error) { l.pause(); return l.Wrapped.AppInfo() }

// NumExecs implements ApplicationWrapper.
func (l *Latency) NumExecs() (int, error) { l.pause(); return l.Wrapped.NumExecs() }

// ExecQueryParams implements ApplicationWrapper.
func (l *Latency) ExecQueryParams() ([]perfdata.Attribute, error) {
	l.pause()
	return l.Wrapped.ExecQueryParams()
}

// AllExecIDs implements ApplicationWrapper.
func (l *Latency) AllExecIDs() ([]string, error) { l.pause(); return l.Wrapped.AllExecIDs() }

// ExecIDs implements ApplicationWrapper.
func (l *Latency) ExecIDs(attr, value string) ([]string, error) {
	l.pause()
	return l.Wrapped.ExecIDs(attr, value)
}

// ExecutionWrapper implements ApplicationWrapper.
func (l *Latency) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	ew, err := l.Wrapped.ExecutionWrapper(id)
	if err != nil {
		return nil, err
	}
	return &latencyExec{wrapped: ew, l: l}, nil
}

type latencyExec struct {
	wrapped ExecutionWrapper
	l       *Latency
}

func (e *latencyExec) Info() ([]perfdata.KV, error) { e.l.pause(); return e.wrapped.Info() }
func (e *latencyExec) Foci() ([]string, error)      { e.l.pause(); return e.wrapped.Foci() }
func (e *latencyExec) Metrics() ([]string, error)   { e.l.pause(); return e.wrapped.Metrics() }
func (e *latencyExec) Types() ([]string, error)     { e.l.pause(); return e.wrapped.Types() }
func (e *latencyExec) TimeStartEnd() (perfdata.TimeRange, error) {
	e.l.pause()
	return e.wrapped.TimeStartEnd()
}

func (e *latencyExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	e.l.pause()
	rs, err := e.wrapped.PerformanceResults(q)
	if err != nil {
		return nil, err
	}
	if e.l.PerResult > 0 && len(rs) > 0 {
		time.Sleep(time.Duration(len(rs)) * e.l.PerResult)
	}
	return rs, nil
}

// AppendPerformanceResults implements ResultAppender, forwarding to the
// wrapped wrapper's vectorized path when it has one (falling back to its
// plain query otherwise). The per-result delay is charged in aggregate
// after the underlying query returns, matching PerformanceResults.
func (e *latencyExec) AppendPerformanceResults(q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error) {
	e.l.pause()
	before := len(dst)
	var err error
	if a, ok := e.wrapped.(ResultAppender); ok {
		dst, err = a.AppendPerformanceResults(q, dst)
	} else {
		var rs []perfdata.Result
		rs, err = e.wrapped.PerformanceResults(q)
		dst = append(dst, rs...)
	}
	if err != nil {
		return dst, err
	}
	if n := len(dst) - before; e.l.PerResult > 0 && n > 0 {
		time.Sleep(time.Duration(n) * e.l.PerResult)
	}
	return dst, nil
}

// PublishResults implements ResultWriter, forwarding to the wrapped
// execution wrapper's writer after the per-operation pause (a write costs
// a store round trip just like a query on the calibrated testbed).
func (e *latencyExec) PublishResults(rs []perfdata.Result) error {
	w, ok := e.wrapped.(ResultWriter)
	if !ok {
		return fmt.Errorf("%w: %T", ErrNotWritable, e.wrapped)
	}
	e.l.pause()
	return w.PublishResults(rs)
}

// StreamPerformanceResults implements ResultStreamer, forwarding to the
// wrapped wrapper's stream when it has one. The per-result delay is
// charged in aggregate after the underlying stream has finished (and
// released the store's read lock), matching PerformanceResults — sleeping
// inside the yield would hold minidb's read lock for the whole calibrated
// latency and serialize every concurrent query on the store.
func (e *latencyExec) StreamPerformanceResults(q perfdata.Query, yield func(perfdata.Result) error) error {
	e.l.pause()
	n := 0
	count := func(r perfdata.Result) error {
		n++
		return yield(r)
	}
	var err error
	if s, ok := e.wrapped.(ResultStreamer); ok {
		err = s.StreamPerformanceResults(q, count)
	} else {
		var rs []perfdata.Result
		rs, err = e.wrapped.PerformanceResults(q)
		if err == nil {
			for _, r := range rs {
				if err = count(r); err != nil {
					break
				}
			}
		}
	}
	if err != nil {
		return err
	}
	if e.l.PerResult > 0 && n > 0 {
		time.Sleep(time.Duration(n) * e.l.PerResult)
	}
	return nil
}

// memoryExec is the generic in-memory execution representation shared by
// the file-backed wrappers and the Memory reference wrapper.
type memoryExec struct {
	id      string
	attrs   map[string]string
	time    perfdata.TimeRange
	results []perfdata.Result
}

func (e *memoryExec) Info() ([]perfdata.KV, error) {
	ex := perfdata.Execution{ID: e.id, Attrs: e.attrs}
	return ex.Info(), nil
}

func (e *memoryExec) Foci() ([]string, error) {
	vals := make([]string, len(e.results))
	for i, r := range e.results {
		vals[i] = r.Focus
	}
	return perfdata.UniqueSorted(vals), nil
}

func (e *memoryExec) Metrics() ([]string, error) {
	vals := make([]string, len(e.results))
	for i, r := range e.results {
		vals[i] = r.Metric
	}
	return perfdata.UniqueSorted(vals), nil
}

func (e *memoryExec) Types() ([]string, error) {
	vals := make([]string, len(e.results))
	for i, r := range e.results {
		vals[i] = r.Type
	}
	return perfdata.UniqueSorted(vals), nil
}

func (e *memoryExec) TimeStartEnd() (perfdata.TimeRange, error) { return e.time, nil }

func (e *memoryExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	var out []perfdata.Result
	for _, r := range e.results {
		if q.Matches(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

func (e *memoryExec) AppendPerformanceResults(q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error) {
	for _, r := range e.results {
		if q.Matches(r) {
			dst = append(dst, r)
		}
	}
	return dst, nil
}

// Memory is the in-memory reference wrapper: the simplest correct
// implementation of the mapping contract, used as a behavioural oracle in
// cross-wrapper tests and for small ad-hoc datasets.
type Memory struct {
	Name  string
	Meta  []perfdata.KV
	Execs []MemoryExecution

	// mu guards each execution's Results slice header: PublishResults
	// swaps it under the write lock, live views copy it under the read
	// lock. Element storage needs no guard — readers only index below
	// the length their header snapshot carries, and appends never write
	// below it.
	mu sync.RWMutex
}

// MemoryExecution is one execution of a Memory wrapper.
type MemoryExecution struct {
	ID      string
	Attrs   map[string]string
	Time    perfdata.TimeRange
	Results []perfdata.Result
}

// AppInfo implements ApplicationWrapper.
func (m *Memory) AppInfo() ([]perfdata.KV, error) {
	out := make([]perfdata.KV, len(m.Meta))
	copy(out, m.Meta)
	return out, nil
}

// NumExecs implements ApplicationWrapper.
func (m *Memory) NumExecs() (int, error) { return len(m.Execs), nil }

// ExecQueryParams implements ApplicationWrapper.
func (m *Memory) ExecQueryParams() ([]perfdata.Attribute, error) {
	byName := map[string][]string{}
	for _, e := range m.Execs {
		for n, v := range e.Attrs {
			byName[n] = append(byName[n], v)
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]perfdata.Attribute, len(names))
	for i, n := range names {
		out[i] = perfdata.Attribute{Name: n, Values: perfdata.UniqueSorted(byName[n])}
	}
	return out, nil
}

// AllExecIDs implements ApplicationWrapper.
func (m *Memory) AllExecIDs() ([]string, error) {
	out := make([]string, len(m.Execs))
	for i, e := range m.Execs {
		out[i] = e.ID
	}
	return out, nil
}

// ExecIDs implements ApplicationWrapper.
func (m *Memory) ExecIDs(attr, value string) ([]string, error) {
	var out []string
	for _, e := range m.Execs {
		if v, ok := e.Attrs[attr]; ok && v == value {
			out = append(out, e.ID)
		}
	}
	return out, nil
}

// ExecutionWrapper implements ApplicationWrapper. The returned wrapper
// reads through to the live MemoryExecution on every call, so stores that
// are appended to while being served (the paper's streamed-from-a-running-
// application case) expose fresh data after each update notification.
func (m *Memory) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	for i := range m.Execs {
		if m.Execs[i].ID == id {
			return &liveMemoryExec{m: m, e: &m.Execs[i]}, nil
		}
	}
	return nil, fmt.Errorf("%w: %q in %s", ErrNoSuchExecution, id, m.Name)
}

// liveMemoryExec views a MemoryExecution through a pointer, building a
// fresh snapshot per call.
type liveMemoryExec struct {
	m *Memory
	e *MemoryExecution
}

func (l *liveMemoryExec) view() *memoryExec {
	l.m.mu.RLock()
	results := l.e.Results
	l.m.mu.RUnlock()
	return &memoryExec{id: l.e.ID, attrs: l.e.Attrs, time: l.e.Time, results: results}
}

// PublishResults implements ResultWriter by appending to the live
// execution. Views snapshotted before the publish keep serving their old
// length; views opened after it see the new results.
func (l *liveMemoryExec) PublishResults(rs []perfdata.Result) error {
	l.m.mu.Lock()
	l.e.Results = append(l.e.Results, rs...)
	l.m.mu.Unlock()
	return nil
}

func (l *liveMemoryExec) Info() ([]perfdata.KV, error) { return l.view().Info() }
func (l *liveMemoryExec) Foci() ([]string, error)      { return l.view().Foci() }
func (l *liveMemoryExec) Metrics() ([]string, error)   { return l.view().Metrics() }
func (l *liveMemoryExec) Types() ([]string, error)     { return l.view().Types() }
func (l *liveMemoryExec) TimeStartEnd() (perfdata.TimeRange, error) {
	return l.view().TimeStartEnd()
}
func (l *liveMemoryExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	return l.view().PerformanceResults(q)
}

// AppendPerformanceResults implements ResultAppender over the live view.
func (l *liveMemoryExec) AppendPerformanceResults(q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error) {
	return l.view().AppendPerformanceResults(q, dst)
}
