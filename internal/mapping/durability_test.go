package mapping

// Write-oracle coverage across a restart: publishes through a
// disk-backed star wrapper must survive Close + reopen (WAL replay,
// segment recovery, index rebuild) and answer exactly like the Memory
// oracle over the extended dataset — the PR 7 conformance contract
// extended to cross a recovery.

import (
	"reflect"
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
)

func TestStarWriterSurvivesRestart(t *testing.T) {
	cfg := datagen.SMG98Config{Executions: 2, Processes: 4, TimeBins: 8, Seed: 31}
	d := datagen.SMG98(cfg)
	id := d.Execs[0].ID
	adds := []perfdata.Result{
		{Metric: "func_calls", Focus: "/Process/0/Code/MPI/MPI_Allreduce", Type: "vampir", Time: perfdata.TimeRange{Start: 900, End: 901}, Value: 13},
		{Metric: "func_calls", Focus: "/Process/3/Code/MPI/MPI_Allreduce", Type: "vampir", Time: perfdata.TimeRange{Start: 900, End: 901}, Value: 17},
	}

	// Oracle: a Memory wrapper over the dataset with the adds baked in.
	ext := datagen.SMG98(cfg)
	ext.Execs[0].Results = append(ext.Execs[0].Results, adds...)
	oe, err := NewMemory(ext).ExecutionWrapper(id)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := oe.TimeStartEnd()
	queries := []perfdata.Query{
		{Metric: "func_calls", Time: perfdata.TimeRange{Start: tr.Start, End: tr.End + 100}, Type: perfdata.UndefinedType},
		{Metric: "func_calls", Time: perfdata.TimeRange{Start: 899, End: 902}, Type: "vampir", Foci: []string{"/Process/3"}},
	}

	// First lifetime: load from the dataset, publish, close.
	dir := t.TempDir()
	w1, err := NewStarWithOptions(d, minidb.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ew, err := w1.ExecutionWrapper(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := ew.(ResultWriter).PublishResults(adds); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second lifetime: the same directory recovers (no dataset reload —
	// pass a dataset missing the adds to prove the rows come from disk,
	// not the loader).
	w2, err := NewStarWithOptions(d, minidb.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.EngineStats().Engine; got != "disk" {
		t.Fatalf("recovered engine = %q, want disk", got)
	}
	ew2, err := w2.ExecutionWrapper(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, _ := oe.PerformanceResults(q)
		got, err := ew2.PerformanceResults(q)
		if err != nil {
			t.Fatalf("post-restart query: %v", err)
		}
		if !reflect.DeepEqual(sortedResults(got), sortedResults(want)) {
			t.Errorf("post-restart %v:\n got %v\nwant %v", q, sortedResults(got), sortedResults(want))
		}
	}
	wantMetrics, _ := oe.Metrics()
	if ms, _ := ew2.Metrics(); !reflect.DeepEqual(ms, wantMetrics) {
		t.Errorf("Metrics after restart = %v, want %v", ms, wantMetrics)
	}
}
