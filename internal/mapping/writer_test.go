package mapping

// ResultWriter conformance across the wrapper families: every writable
// shape must answer post-publish queries exactly like the Memory oracle
// over the extended dataset, the XML wrapper must stay read-only, the
// latency decorator must forward writes, and the wide table must enforce
// its whole-run-metrics schema constraints.

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/perfdata"
)

// TestResultWriterConformance publishes the same batch through every
// writable wrapper family and requires identical answers afterwards:
// results, foci, metrics, and types all reflect the write.
func TestResultWriterConformance(t *testing.T) {
	d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 2, MessageSizes: 4, Seed: 21})
	adds := []perfdata.Result{
		{Metric: "bandwidth", Focus: "/Comm/put/msgsize/1048576", Type: "presta", Time: perfdata.TimeRange{Start: 40, End: 50}, Value: 512.25},
		{Metric: "jitter", Focus: "/Comm/get/msgsize/8", Type: "presta2", Time: perfdata.TimeRange{Start: 50, End: 60}, Value: 0.5},
	}
	id := d.Execs[0].ID

	// Oracle: a Memory wrapper over the dataset with the adds baked in.
	ext := datagen.PrestaRMA(datagen.RMAConfig{Executions: 2, MessageSizes: 4, Seed: 21})
	ext.Execs[0].Results = append(ext.Execs[0].Results, adds...)
	oe, err := NewMemory(ext).ExecutionWrapper(id)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := oe.TimeStartEnd()
	queries := []perfdata.Query{
		{Metric: "bandwidth", Time: perfdata.TimeRange{Start: tr.Start, End: tr.End + 100}, Type: perfdata.UndefinedType},
		{Metric: "jitter", Time: perfdata.TimeRange{Start: tr.Start, End: tr.End + 100}, Type: "presta2"},
		{Metric: "bandwidth", Time: perfdata.TimeRange{Start: 45, End: 55}, Type: perfdata.UndefinedType, Foci: []string{"/Comm/put"}},
	}

	set := wrapperSet(t, d)
	set["latency"] = WithLatency(NewMemory(d), time.Microsecond, 0)
	for wname, w := range set {
		if wname == "wide" || wname == "xml" {
			continue // wide can't hold RMA foci; xml is read-only
		}
		ew, err := w.ExecutionWrapper(id)
		if err != nil {
			t.Fatal(err)
		}
		rw, ok := ew.(ResultWriter)
		if !ok {
			t.Fatalf("%s execution wrapper is not a ResultWriter", wname)
		}
		if err := rw.PublishResults(adds); err != nil {
			t.Fatalf("%s.PublishResults: %v", wname, err)
		}
		for _, q := range queries {
			want, _ := oe.PerformanceResults(q)
			got, err := ew.PerformanceResults(q)
			if err != nil {
				t.Fatalf("%s post-publish query: %v", wname, err)
			}
			if !reflect.DeepEqual(sortedResults(got), sortedResults(want)) {
				t.Errorf("%s post-publish %v:\n got %v\nwant %v", wname, q, sortedResults(got), sortedResults(want))
			}
		}
		// The new metric, focus, and type surface in the vocabulary ops.
		wantMetrics, _ := oe.Metrics()
		if ms, _ := ew.Metrics(); !reflect.DeepEqual(ms, wantMetrics) {
			t.Errorf("%s.Metrics after publish = %v, want %v", wname, ms, wantMetrics)
		}
		wantTypes, _ := oe.Types()
		if ts, _ := ew.Types(); !reflect.DeepEqual(ts, wantTypes) {
			t.Errorf("%s.Types after publish = %v, want %v", wname, ts, wantTypes)
		}
		wantFoci, _ := oe.Foci()
		if fs, _ := ew.Foci(); !reflect.DeepEqual(fs, wantFoci) {
			t.Errorf("%s.Foci after publish = %v, want %v", wname, fs, wantFoci)
		}
		// The write is scoped: the sibling execution is untouched.
		sib, err := w.ExecutionWrapper(d.Execs[1].ID)
		if err != nil {
			t.Fatal(err)
		}
		osib, _ := NewMemory(ext).ExecutionWrapper(d.Execs[1].ID)
		want, _ := osib.PerformanceResults(queries[0])
		got, err := sib.PerformanceResults(queries[0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedResults(got), sortedResults(want)) {
			t.Errorf("%s: publish to execution %s leaked into %s", wname, id, d.Execs[1].ID)
		}
	}

	// XML stays read-only, and a latency decorator over it inherits that.
	xe, err := set["xml"].ExecutionWrapper(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := xe.(ResultWriter); ok {
		t.Error("XML execution wrapper claims to be writable")
	}
	lx, err := WithLatency(set["xml"], 0, 0).ExecutionWrapper(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := lx.(ResultWriter).PublishResults(adds); !errors.Is(err, ErrNotWritable) {
		t.Errorf("latency-wrapped XML publish: %v, want ErrNotWritable", err)
	}
}

// TestWideWriterRules pins the wide table's schema constraints: a
// publish must target an existing metric column of a known execution at
// whole-run focus, land in a NULL cell, and carry the row's collector
// type (adopting it when the row has none).
func TestWideWriterRules(t *testing.T) {
	d := &datagen.Dataset{
		Name: "HPL",
		Execs: []datagen.Execution{
			{
				ID: "100", Attrs: map[string]string{"nprocs": "4"},
				Time: perfdata.TimeRange{Start: 0, End: 10},
				// No results at all: the collector column starts empty.
			},
			{
				ID: "101", Attrs: map[string]string{"nprocs": "8"},
				Time: perfdata.TimeRange{Start: 0, End: 12},
				Results: []perfdata.Result{
					{Metric: "gflops", Focus: "/", Type: "hpl", Time: perfdata.TimeRange{Start: 0, End: 12}, Value: 3.5},
					{Metric: "runtimesec", Focus: "/", Type: "hpl", Time: perfdata.TimeRange{Start: 0, End: 12}, Value: 120},
				},
			},
		},
	}
	w, err := NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := w.ExecutionWrapper("100")
	if err != nil {
		t.Fatal(err)
	}
	rw := ew.(ResultWriter)
	mk := func(metric, focus, typ string, v float64) []perfdata.Result {
		return []perfdata.Result{{Metric: metric, Focus: focus, Type: typ, Time: perfdata.TimeRange{Start: 0, End: 10}, Value: v}}
	}

	// First write adopts the collector; "" and "/" foci both mean
	// whole-run.
	if err := rw.PublishResults(mk("gflops", "/", "hpl", 2.25)); err != nil {
		t.Fatal(err)
	}
	if err := rw.PublishResults(mk("runtimesec", "", "hpl", 240)); err != nil {
		t.Fatal(err)
	}
	rejections := map[string][]perfdata.Result{
		"unknown metric column": mk("watts", "/", "hpl", 1),
		"non-root focus":        mk("gflops", "/Process/0", "hpl", 1),
		"cell already filled":   mk("gflops", "/", "hpl", 9),
		"collector mismatch":    mk("gflops", "/", "papi", 9),
	}
	for name, rs := range rejections {
		if err := rw.PublishResults(rs); err == nil {
			t.Errorf("%s: publish did not error", name)
		}
	}

	// The written row answers queries like a Memory wrapper over the
	// final data.
	ext := &datagen.Dataset{Name: d.Name, Execs: []datagen.Execution{
		{ID: "100", Attrs: d.Execs[0].Attrs, Time: d.Execs[0].Time, Results: []perfdata.Result{
			{Metric: "gflops", Focus: "/", Type: "hpl", Time: d.Execs[0].Time, Value: 2.25},
			{Metric: "runtimesec", Focus: "/", Type: "hpl", Time: d.Execs[0].Time, Value: 240},
		}},
		d.Execs[1],
	}}
	oe, _ := NewMemory(ext).ExecutionWrapper("100")
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 20}, Type: perfdata.UndefinedType}
	want, _ := oe.PerformanceResults(q)
	got, err := ew.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedResults(got), sortedResults(want)) {
		t.Errorf("wide post-publish results = %v, want %v", sortedResults(got), sortedResults(want))
	}
}
