package mapping

import (
	"fmt"
	"sort"

	"pperfgrid/internal/flatfile"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/xmlstore"
)

// FlatFileWrapper maps a flat ASCII text dataset — the paper's Presta RMA
// layout — onto the PPerfGrid interfaces via the custom parser in package
// flatfile. Performance Result queries re-read and re-parse the backing
// execution file, which is the per-query cost profile the paper measured
// for this store.
type FlatFileWrapper struct {
	Store *flatfile.Store
}

// AppInfo implements ApplicationWrapper.
func (w *FlatFileWrapper) AppInfo() ([]perfdata.KV, error) {
	meta := w.Store.Meta()
	out := make([]perfdata.KV, 0, len(meta)+1)
	out = append(out, perfdata.KV{Name: "name", Value: w.Store.Name()})
	for _, kv := range meta {
		if kv.Name == "name" {
			continue
		}
		out = append(out, kv)
	}
	return out, nil
}

// NumExecs implements ApplicationWrapper.
func (w *FlatFileWrapper) NumExecs() (int, error) { return w.Store.NumExecs(), nil }

// ExecQueryParams implements ApplicationWrapper by parsing every execution
// header.
func (w *FlatFileWrapper) ExecQueryParams() ([]perfdata.Attribute, error) {
	byName := map[string][]string{}
	for _, id := range w.Store.ExecIDs() {
		e, err := w.Store.ExecutionHeader(id)
		if err != nil {
			return nil, err
		}
		for n, v := range e.Attrs {
			byName[n] = append(byName[n], v)
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]perfdata.Attribute, len(names))
	for i, n := range names {
		out[i] = perfdata.Attribute{Name: n, Values: perfdata.UniqueSorted(byName[n])}
	}
	return out, nil
}

// AllExecIDs implements ApplicationWrapper.
func (w *FlatFileWrapper) AllExecIDs() ([]string, error) { return w.Store.ExecIDs(), nil }

// ExecIDs implements ApplicationWrapper.
func (w *FlatFileWrapper) ExecIDs(attr, value string) ([]string, error) {
	var out []string
	for _, id := range w.Store.ExecIDs() {
		e, err := w.Store.ExecutionHeader(id)
		if err != nil {
			return nil, err
		}
		if v, ok := e.Attrs[attr]; ok && v == value {
			out = append(out, id)
		}
	}
	return out, nil
}

// ExecutionWrapper implements ApplicationWrapper.
func (w *FlatFileWrapper) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	// Validate existence by parsing the header once.
	if _, err := w.Store.ExecutionHeader(id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchExecution, err)
	}
	return &flatExec{store: w.Store, id: id}, nil
}

type flatExec struct {
	store *flatfile.Store
	id    string
}

func (e *flatExec) header() (*flatfile.Execution, error) {
	return e.store.ExecutionHeader(e.id)
}

func (e *flatExec) full() (*memoryExec, error) {
	fe, err := e.store.Execution(e.id)
	if err != nil {
		return nil, err
	}
	return &memoryExec{id: fe.ID, attrs: fe.Attrs, time: fe.Time, results: fe.Results}, nil
}

func (e *flatExec) Info() ([]perfdata.KV, error) {
	h, err := e.header()
	if err != nil {
		return nil, err
	}
	ex := perfdata.Execution{ID: h.ID, Attrs: h.Attrs}
	return ex.Info(), nil
}

func (e *flatExec) Foci() ([]string, error) {
	m, err := e.full()
	if err != nil {
		return nil, err
	}
	return m.Foci()
}

func (e *flatExec) Metrics() ([]string, error) {
	m, err := e.full()
	if err != nil {
		return nil, err
	}
	return m.Metrics()
}

func (e *flatExec) Types() ([]string, error) {
	m, err := e.full()
	if err != nil {
		return nil, err
	}
	return m.Types()
}

func (e *flatExec) TimeStartEnd() (perfdata.TimeRange, error) {
	h, err := e.header()
	if err != nil {
		return perfdata.TimeRange{}, err
	}
	return h.Time, nil
}

func (e *flatExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	return e.store.Query(e.id, q)
}

// AppendPerformanceResults implements ResultAppender: the store's
// byte-level re-parse filters records into dst with pooled scratch,
// keeping the paper's parse-per-query cost model without its per-line
// garbage.
func (e *flatExec) AppendPerformanceResults(q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error) {
	return e.store.QueryAppend(e.id, q, dst)
}

// PublishResults implements ResultWriter by appending data records to the
// execution's backing file, byte-identical to re-encoding the extended
// execution.
func (e *flatExec) PublishResults(rs []perfdata.Result) error {
	return e.store.AppendResults(e.id, rs)
}

// XMLWrapper maps a native-XML dataset onto the PPerfGrid interfaces.
// Result queries re-decode the document, per the store's cost model.
type XMLWrapper struct {
	Store *xmlstore.Store
}

// AppInfo implements ApplicationWrapper.
func (w *XMLWrapper) AppInfo() ([]perfdata.KV, error) {
	meta := w.Store.Meta()
	out := make([]perfdata.KV, 0, len(meta)+1)
	out = append(out, perfdata.KV{Name: "name", Value: w.Store.Name()})
	for _, kv := range meta {
		if kv.Name == "name" {
			continue
		}
		out = append(out, kv)
	}
	return out, nil
}

// NumExecs implements ApplicationWrapper.
func (w *XMLWrapper) NumExecs() (int, error) { return w.Store.NumExecs(), nil }

// ExecQueryParams implements ApplicationWrapper.
func (w *XMLWrapper) ExecQueryParams() ([]perfdata.Attribute, error) {
	byName := map[string][]string{}
	for _, id := range w.Store.ExecIDs() {
		e, err := w.Store.Execution(id)
		if err != nil {
			return nil, err
		}
		for n, v := range e.Attrs {
			byName[n] = append(byName[n], v)
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]perfdata.Attribute, len(names))
	for i, n := range names {
		out[i] = perfdata.Attribute{Name: n, Values: perfdata.UniqueSorted(byName[n])}
	}
	return out, nil
}

// AllExecIDs implements ApplicationWrapper.
func (w *XMLWrapper) AllExecIDs() ([]string, error) { return w.Store.ExecIDs(), nil }

// ExecIDs implements ApplicationWrapper.
func (w *XMLWrapper) ExecIDs(attr, value string) ([]string, error) {
	var out []string
	for _, id := range w.Store.ExecIDs() {
		e, err := w.Store.Execution(id)
		if err != nil {
			return nil, err
		}
		if v, ok := e.Attrs[attr]; ok && v == value {
			out = append(out, id)
		}
	}
	return out, nil
}

// ExecutionWrapper implements ApplicationWrapper.
func (w *XMLWrapper) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	if _, err := w.Store.Execution(id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchExecution, err)
	}
	return &xmlExec{store: w.Store, id: id}, nil
}

type xmlExec struct {
	store *xmlstore.Store
	id    string
}

func (e *xmlExec) full() (*memoryExec, error) {
	xe, err := e.store.Execution(e.id)
	if err != nil {
		return nil, err
	}
	return &memoryExec{id: xe.ID, attrs: xe.Attrs, time: xe.Time, results: xe.Results}, nil
}

func (e *xmlExec) Info() ([]perfdata.KV, error) {
	m, err := e.full()
	if err != nil {
		return nil, err
	}
	return m.Info()
}

func (e *xmlExec) Foci() ([]string, error) {
	m, err := e.full()
	if err != nil {
		return nil, err
	}
	return m.Foci()
}

func (e *xmlExec) Metrics() ([]string, error) {
	m, err := e.full()
	if err != nil {
		return nil, err
	}
	return m.Metrics()
}

func (e *xmlExec) Types() ([]string, error) {
	m, err := e.full()
	if err != nil {
		return nil, err
	}
	return m.Types()
}

func (e *xmlExec) TimeStartEnd() (perfdata.TimeRange, error) {
	m, err := e.full()
	if err != nil {
		return perfdata.TimeRange{}, err
	}
	return m.time, nil
}

func (e *xmlExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	return e.store.Query(e.id, q)
}
