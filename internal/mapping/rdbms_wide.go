package mapping

import (
	"fmt"
	"sync"

	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
)

// WideTableWrapper maps a single-table relational store — the paper's HPL
// layout — onto the PPerfGrid interfaces. The table has one row per
// execution with the fixed columns (execid, starttime, endtime, collector)
// followed by one TEXT column per attribute and one FLOAT column per
// whole-run metric, the schema produced by datagen.LoadWideTable.
//
// Every operation is answered by a prepared statement, like the paper's
// JDBC wrapper of Figure 4 upgraded to PreparedStatement: the SQL
// template is parsed once (minidb.Database.Prepare caches by text) and
// values are bound per call, so only the plan/scan cost is paid per
// query. Identifiers (table, attribute, and metric column names) cannot
// be parameters; each composed text is built once under the identOK
// guard and cached on the wrapper (see wideSQLCache), so repeat queries
// hand Prepare the same interned string — one statement/plan cache entry
// per template, zero per-call SQL construction.
type WideTableWrapper struct {
	DB    *minidb.Database
	Table string
	// Meta is the application metadata returned by AppInfo.
	Meta []perfdata.KV
	// Attrs and Metrics partition the table's non-fixed columns.
	Attrs   []string
	Metrics []string

	sql wideSQLCache

	// pubMu serializes publishes: the NULL-cell and collector checks plus
	// the UPDATE are separate statements, and two concurrent publishes of
	// the same metric would otherwise both pass the duplicate check.
	pubMu sync.Mutex
}

// EngineStats reports the backing storage engine's counters (page cache,
// zone-map skipping, WAL) for service-data publication.
func (w *WideTableWrapper) EngineStats() minidb.EngineStats { return w.DB.EngineStats() }

// Close flushes and closes the backing store (a no-op for the in-memory
// engine).
func (w *WideTableWrapper) Close() error { return w.DB.Close() }

// wideSQLCache holds the wrapper's composed SQL texts: the fixed
// per-table statements (built once) and the identifier-parameterized
// templates, keyed by attribute or metric column name. Identifiers
// cannot be `?` binds, so this cache is what routes every wide-table
// query through the statement/plan cache instead of re-deriving SQL text
// (and re-keying the statement cache map) per call.
type wideSQLCache struct {
	once                                                          sync.Once
	numExecs, allExecIDs, hasExec, rowByExec, typesByID, timeByID string

	mu           sync.Mutex
	distinctAttr map[string]string // ExecQueryParams projection per attribute
	execIDsAttr  map[string]string // ExecIDs filter per attribute
	prByMetric   map[string]string // getPR projection per metric column
	pubCheck     map[string]string // publish pre-check per metric column
	pubSet       map[string]string // publish cell update per metric column
	pubSetColl   map[string]string // publish cell+collector update per metric column
}

// fixed returns the table-only statement texts, composing them on first
// use.
func (w *WideTableWrapper) fixed() *wideSQLCache {
	c := &w.sql
	c.once.Do(func() {
		t := w.Table
		c.numExecs = "SELECT COUNT(DISTINCT execid) FROM " + t
		c.allExecIDs = "SELECT execid FROM " + t + " ORDER BY execid"
		c.hasExec = "SELECT COUNT(*) FROM " + t + " WHERE execid = ?"
		c.rowByExec = "SELECT * FROM " + t + " WHERE execid = ?"
		c.typesByID = "SELECT DISTINCT collector FROM " + t + " WHERE execid = ?"
		c.timeByID = "SELECT starttime, endtime FROM " + t + " WHERE execid = ?"
	})
	return c
}

// identSQL returns the cached composed text for one identifier under one
// template map, building it on first use.
func (c *wideSQLCache) identSQL(m *map[string]string, ident string, build func(string) string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if *m == nil {
		*m = make(map[string]string)
	}
	if s, ok := (*m)[ident]; ok {
		return s
	}
	s := build(ident)
	(*m)[ident] = s
	return s
}

// prepQuery runs a prepared statement with bindings, materializing the
// result: the shared helper behind the relational wrappers' small
// discovery queries (only the getPR paths stream).
func prepQuery(db *minidb.Database, sql string, args ...minidb.Value) (*minidb.ResultSet, error) {
	st, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// identOK reports whether a string is usable as a column name, the guard
// that keeps attribute names from smuggling SQL into composed queries.
func identOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// AppInfo implements ApplicationWrapper.
func (w *WideTableWrapper) AppInfo() ([]perfdata.KV, error) {
	out := make([]perfdata.KV, len(w.Meta))
	copy(out, w.Meta)
	return out, nil
}

// query runs a prepared statement with bindings.
func (w *WideTableWrapper) query(sql string, args ...minidb.Value) (*minidb.ResultSet, error) {
	return prepQuery(w.DB, sql, args...)
}

// NumExecs implements ApplicationWrapper.
func (w *WideTableWrapper) NumExecs() (int, error) {
	rs, err := w.query(w.fixed().numExecs)
	if err != nil {
		return 0, err
	}
	return int(rs.Rows[0][0].Int), nil
}

// ExecQueryParams implements ApplicationWrapper: one DISTINCT projection
// per attribute column.
func (w *WideTableWrapper) ExecQueryParams() ([]perfdata.Attribute, error) {
	c := w.fixed()
	out := make([]perfdata.Attribute, 0, len(w.Attrs))
	for _, attr := range w.Attrs {
		if !identOK(attr) {
			return nil, fmt.Errorf("mapping: bad attribute column %q", attr)
		}
		sql := c.identSQL(&c.distinctAttr, attr, func(a string) string {
			return "SELECT DISTINCT " + a + " FROM " + w.Table + " WHERE " + a + " IS NOT NULL ORDER BY " + a
		})
		rs, err := w.query(sql)
		if err != nil {
			return nil, err
		}
		a := perfdata.Attribute{Name: attr}
		for _, row := range rs.Rows {
			a.Values = append(a.Values, row[0].String())
		}
		out = append(out, a)
	}
	return out, nil
}

// AllExecIDs implements ApplicationWrapper.
func (w *WideTableWrapper) AllExecIDs() ([]string, error) {
	rs, err := w.query(w.fixed().allExecIDs)
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

// ExecIDs implements ApplicationWrapper.
func (w *WideTableWrapper) ExecIDs(attr, value string) ([]string, error) {
	if !identOK(attr) {
		return nil, fmt.Errorf("mapping: bad attribute %q", attr)
	}
	c := w.fixed()
	sql := c.identSQL(&c.execIDsAttr, attr, func(a string) string {
		return "SELECT execid FROM " + w.Table + " WHERE " + a + " = ? ORDER BY execid"
	})
	rs, err := w.query(sql, minidb.Text(value))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func column0(rs *minidb.ResultSet) []string {
	out := make([]string, len(rs.Rows))
	for i, row := range rs.Rows {
		out[i] = row[0].String()
	}
	return out
}

// ExecutionWrapper implements ApplicationWrapper.
func (w *WideTableWrapper) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	rs, err := w.query(w.fixed().hasExec, minidb.Text(id))
	if err != nil {
		return nil, err
	}
	if rs.Rows[0][0].Int == 0 {
		return nil, fmt.Errorf("%w: %q in table %s", ErrNoSuchExecution, id, w.Table)
	}
	return &wideExec{w: w, id: id}, nil
}

type wideExec struct {
	w  *WideTableWrapper
	id string
}

func (e *wideExec) row() (*minidb.ResultSet, error) {
	return e.w.query(e.w.fixed().rowByExec, minidb.Text(e.id))
}

// Info returns the execution's attributes as metadata pairs.
func (e *wideExec) Info() ([]perfdata.KV, error) {
	rs, err := e.row()
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	out := []perfdata.KV{{Name: "id", Value: e.id}}
	for i, col := range rs.Columns {
		for _, attr := range e.w.Attrs {
			if col == attr && !rs.Rows[0][i].IsNull() {
				out = append(out, perfdata.KV{Name: col, Value: rs.Rows[0][i].String()})
			}
		}
	}
	return out, nil
}

// Foci: a wide table stores whole-run metrics, so the only focus is the
// root of the resource hierarchy.
func (e *wideExec) Foci() ([]string, error) { return []string{"/"}, nil }

// Metrics returns the metric columns that are non-NULL for this execution.
func (e *wideExec) Metrics() ([]string, error) {
	rs, err := e.row()
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	var out []string
	for i, col := range rs.Columns {
		for _, m := range e.w.Metrics {
			if col == m && !rs.Rows[0][i].IsNull() {
				out = append(out, col)
			}
		}
	}
	return perfdata.UniqueSorted(out), nil
}

func (e *wideExec) Types() ([]string, error) {
	rs, err := e.w.query(e.w.fixed().typesByID, minidb.Text(e.id))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *wideExec) TimeStartEnd() (perfdata.TimeRange, error) {
	rs, err := e.w.query(e.w.fixed().timeByID, minidb.Text(e.id))
	if err != nil {
		return perfdata.TimeRange{}, err
	}
	if len(rs.Rows) == 0 {
		return perfdata.TimeRange{}, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	start, _ := rs.Rows[0][0].AsFloat()
	end, _ := rs.Rows[0][1].AsFloat()
	return perfdata.TimeRange{Start: start, End: end}, nil
}

// PerformanceResults answers a getPR query by collecting the streamed
// rows.
func (e *wideExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	return CollectResults(e, q)
}

// prPlan resolves a getPR against the wide schema: metric and focus
// checks plus the prepared point-query statement. ok=false (nil error)
// means the query provably matches nothing.
func (e *wideExec) prPlan(q perfdata.Query) (st *minidb.Stmt, ok bool, err error) {
	metricOK := false
	for _, m := range e.w.Metrics {
		if m == q.Metric {
			metricOK = true
			break
		}
	}
	if !metricOK || !identOK(q.Metric) {
		return nil, false, nil // unknown metric: no results, not an error
	}
	// Whole-run results live at focus "/"; honor focus filters.
	if len(q.Foci) > 0 {
		rootOK := false
		for _, f := range q.Foci {
			if perfdata.FocusMatches(f, "/") {
				rootOK = true
				break
			}
		}
		if !rootOK {
			return nil, false, nil
		}
	}
	c := e.w.fixed()
	sql := c.identSQL(&c.prByMetric, q.Metric, func(m string) string {
		return "SELECT " + m + ", starttime, endtime, collector FROM " + e.w.Table +
			" WHERE execid = ? AND " + m + " IS NOT NULL"
	})
	st, err = e.w.DB.Prepare(sql)
	if err != nil {
		return nil, false, err
	}
	return st, true, nil
}

// PublishResults implements ResultWriter under the wide schema's
// constraints: an execution is one row holding at most one whole-run
// value per metric column, all collected by the table's single collector
// type over the execution's time range. A publish therefore must name an
// existing metric column whose cell is still NULL, carry the root focus,
// and match the row's collector; it lands as an UPDATE of that one cell.
// Those are exactly the datagen.LoadWideTable invariants, so a table
// rebuilt from the extended dataset is identical — readers stamp every
// result with the row's time range and focus "/" either way.
func (e *wideExec) PublishResults(rs []perfdata.Result) error {
	if len(rs) == 0 {
		return nil
	}
	w := e.w
	w.pubMu.Lock()
	defer w.pubMu.Unlock()
	c := w.fixed()
	for _, r := range rs {
		metricOK := false
		for _, m := range w.Metrics {
			if m == r.Metric {
				metricOK = true
				break
			}
		}
		if !metricOK || !identOK(r.Metric) {
			return fmt.Errorf("mapping: wide table %s has no metric column %q", w.Table, r.Metric)
		}
		if r.Focus != "" && r.Focus != "/" {
			return fmt.Errorf("mapping: wide table stores whole-run results at focus \"/\", not %q", r.Focus)
		}
		check := c.identSQL(&c.pubCheck, r.Metric, func(m string) string {
			return "SELECT collector, " + m + " FROM " + w.Table + " WHERE execid = ?"
		})
		row, err := w.query(check, minidb.Text(e.id))
		if err != nil {
			return err
		}
		if len(row.Rows) == 0 {
			return fmt.Errorf("%w: %q in table %s", ErrNoSuchExecution, e.id, w.Table)
		}
		if !row.Rows[0][1].IsNull() {
			return fmt.Errorf("mapping: execution %q already has a %q result (wide table holds whole-run metrics)", e.id, r.Metric)
		}
		collector := row.Rows[0][0].String()
		var sql string
		var args []minidb.Value
		switch {
		case collector == "":
			// First result for this execution: the collector column adopts
			// the result's type, as LoadWideTable would.
			sql = c.identSQL(&c.pubSetColl, r.Metric, func(m string) string {
				return "UPDATE " + w.Table + " SET " + m + " = ?, collector = ? WHERE execid = ?"
			})
			args = []minidb.Value{minidb.Float(r.Value), minidb.Text(r.Type), minidb.Text(e.id)}
		case r.Type == collector:
			sql = c.identSQL(&c.pubSet, r.Metric, func(m string) string {
				return "UPDATE " + w.Table + " SET " + m + " = ? WHERE execid = ?"
			})
			args = []minidb.Value{minidb.Float(r.Value), minidb.Text(e.id)}
		default:
			return fmt.Errorf("mapping: wide table collector is %q, result has type %q", collector, r.Type)
		}
		st, err := w.DB.Prepare(sql)
		if err != nil {
			return err
		}
		if _, err := st.Exec(args...); err != nil {
			return err
		}
	}
	return nil
}

// StreamPerformanceResults implements ResultStreamer with a prepared
// projection of the requested metric column, decoding rows as they
// stream out of the point query. Retained as the row-at-a-time oracle
// for AppendPerformanceResults.
func (e *wideExec) StreamPerformanceResults(q perfdata.Query, yield func(perfdata.Result) error) error {
	st, ok, err := e.prPlan(q)
	if err != nil || !ok {
		return err
	}
	rows, err := st.QueryStream(minidb.Text(e.id))
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
		row := rows.Row()
		val, _ := row[0].AsFloat()
		start, _ := row[1].AsFloat()
		end, _ := row[2].AsFloat()
		r := perfdata.Result{
			Metric: q.Metric, Focus: "/", Type: row[3].String(),
			Time:  perfdata.TimeRange{Start: start, End: end},
			Value: val,
		}
		if !q.Matches(r) {
			continue
		}
		if err := yield(r); err != nil {
			return err
		}
	}
	return rows.Err()
}

// AppendPerformanceResults implements ResultAppender: the same point
// query consumed through minidb's vectorized NextBatch, decoded column-
// wise into dst.
func (e *wideExec) AppendPerformanceResults(q perfdata.Query, dst []perfdata.Result) ([]perfdata.Result, error) {
	st, ok, err := e.prPlan(q)
	if err != nil || !ok {
		return dst, err
	}
	rows, err := st.QueryStream(minidb.Text(e.id))
	if err != nil {
		return dst, err
	}
	defer rows.Close()
	b := minidb.NewBatch()
	defer b.Release()
	for rows.NextBatch(b, 0) {
		vals, starts, ends, collectors := b.Col(0), b.Col(1), b.Col(2), b.Col(3)
		for i := range vals {
			val, _ := vals[i].AsFloat()
			start, _ := starts[i].AsFloat()
			end, _ := ends[i].AsFloat()
			r := perfdata.Result{
				Metric: q.Metric, Focus: "/", Type: collectors[i].String(),
				Time:  perfdata.TimeRange{Start: start, End: end},
				Value: val,
			}
			if !q.Matches(r) {
				continue
			}
			dst = append(dst, r)
		}
	}
	return dst, rows.Err()
}
