package mapping

import (
	"fmt"
	"strings"

	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
)

// WideTableWrapper maps a single-table relational store — the paper's HPL
// layout — onto the PPerfGrid interfaces. The table has one row per
// execution with the fixed columns (execid, starttime, endtime, collector)
// followed by one TEXT column per attribute and one FLOAT column per
// whole-run metric, the schema produced by datagen.LoadWideTable.
//
// Every operation is answered by composing and executing SQL text, exactly
// like the paper's JDBC wrapper of Figure 4, so the parse/plan/scan cost
// is paid per query.
type WideTableWrapper struct {
	DB    *minidb.Database
	Table string
	// Meta is the application metadata returned by AppInfo.
	Meta []perfdata.KV
	// Attrs and Metrics partition the table's non-fixed columns.
	Attrs   []string
	Metrics []string
}

// sqlQuote renders a string as a single-quoted SQL literal.
func sqlQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// identOK reports whether a string is usable as a column name, the guard
// that keeps attribute names from smuggling SQL into composed queries.
func identOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// AppInfo implements ApplicationWrapper.
func (w *WideTableWrapper) AppInfo() ([]perfdata.KV, error) {
	out := make([]perfdata.KV, len(w.Meta))
	copy(out, w.Meta)
	return out, nil
}

// NumExecs implements ApplicationWrapper.
func (w *WideTableWrapper) NumExecs() (int, error) {
	rs, err := w.DB.Query("SELECT COUNT(DISTINCT execid) FROM " + w.Table)
	if err != nil {
		return 0, err
	}
	return int(rs.Rows[0][0].Int), nil
}

// ExecQueryParams implements ApplicationWrapper: one DISTINCT projection
// per attribute column.
func (w *WideTableWrapper) ExecQueryParams() ([]perfdata.Attribute, error) {
	out := make([]perfdata.Attribute, 0, len(w.Attrs))
	for _, attr := range w.Attrs {
		if !identOK(attr) {
			return nil, fmt.Errorf("mapping: bad attribute column %q", attr)
		}
		rs, err := w.DB.Query(fmt.Sprintf(
			"SELECT DISTINCT %s FROM %s WHERE %s IS NOT NULL ORDER BY %s", attr, w.Table, attr, attr))
		if err != nil {
			return nil, err
		}
		a := perfdata.Attribute{Name: attr}
		for _, row := range rs.Rows {
			a.Values = append(a.Values, row[0].String())
		}
		out = append(out, a)
	}
	return out, nil
}

// AllExecIDs implements ApplicationWrapper.
func (w *WideTableWrapper) AllExecIDs() ([]string, error) {
	rs, err := w.DB.Query("SELECT execid FROM " + w.Table + " ORDER BY execid")
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

// ExecIDs implements ApplicationWrapper.
func (w *WideTableWrapper) ExecIDs(attr, value string) ([]string, error) {
	if !identOK(attr) {
		return nil, fmt.Errorf("mapping: bad attribute %q", attr)
	}
	rs, err := w.DB.Query(fmt.Sprintf(
		"SELECT execid FROM %s WHERE %s = %s ORDER BY execid", w.Table, attr, sqlQuote(value)))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func column0(rs *minidb.ResultSet) []string {
	out := make([]string, len(rs.Rows))
	for i, row := range rs.Rows {
		out[i] = row[0].String()
	}
	return out
}

// ExecutionWrapper implements ApplicationWrapper.
func (w *WideTableWrapper) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	rs, err := w.DB.Query(fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE execid = %s", w.Table, sqlQuote(id)))
	if err != nil {
		return nil, err
	}
	if rs.Rows[0][0].Int == 0 {
		return nil, fmt.Errorf("%w: %q in table %s", ErrNoSuchExecution, id, w.Table)
	}
	return &wideExec{w: w, id: id}, nil
}

type wideExec struct {
	w  *WideTableWrapper
	id string
}

func (e *wideExec) row() (*minidb.ResultSet, error) {
	return e.w.DB.Query(fmt.Sprintf(
		"SELECT * FROM %s WHERE execid = %s", e.w.Table, sqlQuote(e.id)))
}

// Info returns the execution's attributes as metadata pairs.
func (e *wideExec) Info() ([]perfdata.KV, error) {
	rs, err := e.row()
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	out := []perfdata.KV{{Name: "id", Value: e.id}}
	for i, col := range rs.Columns {
		for _, attr := range e.w.Attrs {
			if col == attr && !rs.Rows[0][i].IsNull() {
				out = append(out, perfdata.KV{Name: col, Value: rs.Rows[0][i].String()})
			}
		}
	}
	return out, nil
}

// Foci: a wide table stores whole-run metrics, so the only focus is the
// root of the resource hierarchy.
func (e *wideExec) Foci() ([]string, error) { return []string{"/"}, nil }

// Metrics returns the metric columns that are non-NULL for this execution.
func (e *wideExec) Metrics() ([]string, error) {
	rs, err := e.row()
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	var out []string
	for i, col := range rs.Columns {
		for _, m := range e.w.Metrics {
			if col == m && !rs.Rows[0][i].IsNull() {
				out = append(out, col)
			}
		}
	}
	return perfdata.UniqueSorted(out), nil
}

func (e *wideExec) Types() ([]string, error) {
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT DISTINCT collector FROM %s WHERE execid = %s", e.w.Table, sqlQuote(e.id)))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *wideExec) TimeStartEnd() (perfdata.TimeRange, error) {
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT starttime, endtime FROM %s WHERE execid = %s", e.w.Table, sqlQuote(e.id)))
	if err != nil {
		return perfdata.TimeRange{}, err
	}
	if len(rs.Rows) == 0 {
		return perfdata.TimeRange{}, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	start, _ := rs.Rows[0][0].AsFloat()
	end, _ := rs.Rows[0][1].AsFloat()
	return perfdata.TimeRange{Start: start, End: end}, nil
}

// PerformanceResults answers a getPR query with a projection of the
// requested metric column.
func (e *wideExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	metricOK := false
	for _, m := range e.w.Metrics {
		if m == q.Metric {
			metricOK = true
			break
		}
	}
	if !metricOK || !identOK(q.Metric) {
		return nil, nil // unknown metric: no results, not an error
	}
	// Whole-run results live at focus "/"; honor focus filters.
	if len(q.Foci) > 0 {
		rootOK := false
		for _, f := range q.Foci {
			if perfdata.FocusMatches(f, "/") {
				rootOK = true
				break
			}
		}
		if !rootOK {
			return nil, nil
		}
	}
	rs, err := e.w.DB.Query(fmt.Sprintf(
		"SELECT %s, starttime, endtime, collector FROM %s WHERE execid = %s AND %s IS NOT NULL",
		q.Metric, e.w.Table, sqlQuote(e.id), q.Metric))
	if err != nil {
		return nil, err
	}
	var out []perfdata.Result
	for _, row := range rs.Rows {
		val, _ := row[0].AsFloat()
		start, _ := row[1].AsFloat()
		end, _ := row[2].AsFloat()
		r := perfdata.Result{
			Metric: q.Metric, Focus: "/", Type: row[3].String(),
			Time:  perfdata.TimeRange{Start: start, End: end},
			Value: val,
		}
		if q.Matches(r) {
			out = append(out, r)
		}
	}
	return out, nil
}
