package mapping

import (
	"fmt"

	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
)

// WideTableWrapper maps a single-table relational store — the paper's HPL
// layout — onto the PPerfGrid interfaces. The table has one row per
// execution with the fixed columns (execid, starttime, endtime, collector)
// followed by one TEXT column per attribute and one FLOAT column per
// whole-run metric, the schema produced by datagen.LoadWideTable.
//
// Every operation is answered by a prepared statement, like the paper's
// JDBC wrapper of Figure 4 upgraded to PreparedStatement: the SQL
// template is parsed once (minidb.Database.Prepare caches by text) and
// values are bound per call, so only the plan/scan cost is paid per
// query. Identifiers (table, attribute, and metric column names) cannot
// be parameters; they are interpolated under the identOK guard.
type WideTableWrapper struct {
	DB    *minidb.Database
	Table string
	// Meta is the application metadata returned by AppInfo.
	Meta []perfdata.KV
	// Attrs and Metrics partition the table's non-fixed columns.
	Attrs   []string
	Metrics []string
}

// prepQuery runs a prepared statement with bindings, materializing the
// result: the shared helper behind the relational wrappers' small
// discovery queries (only the getPR paths stream).
func prepQuery(db *minidb.Database, sql string, args ...minidb.Value) (*minidb.ResultSet, error) {
	st, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// identOK reports whether a string is usable as a column name, the guard
// that keeps attribute names from smuggling SQL into composed queries.
func identOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// AppInfo implements ApplicationWrapper.
func (w *WideTableWrapper) AppInfo() ([]perfdata.KV, error) {
	out := make([]perfdata.KV, len(w.Meta))
	copy(out, w.Meta)
	return out, nil
}

// query runs a prepared statement with bindings.
func (w *WideTableWrapper) query(sql string, args ...minidb.Value) (*minidb.ResultSet, error) {
	return prepQuery(w.DB, sql, args...)
}

// NumExecs implements ApplicationWrapper.
func (w *WideTableWrapper) NumExecs() (int, error) {
	rs, err := w.query("SELECT COUNT(DISTINCT execid) FROM " + w.Table)
	if err != nil {
		return 0, err
	}
	return int(rs.Rows[0][0].Int), nil
}

// ExecQueryParams implements ApplicationWrapper: one DISTINCT projection
// per attribute column.
func (w *WideTableWrapper) ExecQueryParams() ([]perfdata.Attribute, error) {
	out := make([]perfdata.Attribute, 0, len(w.Attrs))
	for _, attr := range w.Attrs {
		if !identOK(attr) {
			return nil, fmt.Errorf("mapping: bad attribute column %q", attr)
		}
		rs, err := w.query(fmt.Sprintf(
			"SELECT DISTINCT %s FROM %s WHERE %s IS NOT NULL ORDER BY %s", attr, w.Table, attr, attr))
		if err != nil {
			return nil, err
		}
		a := perfdata.Attribute{Name: attr}
		for _, row := range rs.Rows {
			a.Values = append(a.Values, row[0].String())
		}
		out = append(out, a)
	}
	return out, nil
}

// AllExecIDs implements ApplicationWrapper.
func (w *WideTableWrapper) AllExecIDs() ([]string, error) {
	rs, err := w.query("SELECT execid FROM " + w.Table + " ORDER BY execid")
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

// ExecIDs implements ApplicationWrapper.
func (w *WideTableWrapper) ExecIDs(attr, value string) ([]string, error) {
	if !identOK(attr) {
		return nil, fmt.Errorf("mapping: bad attribute %q", attr)
	}
	rs, err := w.query(fmt.Sprintf(
		"SELECT execid FROM %s WHERE %s = ? ORDER BY execid", w.Table, attr), minidb.Text(value))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func column0(rs *minidb.ResultSet) []string {
	out := make([]string, len(rs.Rows))
	for i, row := range rs.Rows {
		out[i] = row[0].String()
	}
	return out
}

// ExecutionWrapper implements ApplicationWrapper.
func (w *WideTableWrapper) ExecutionWrapper(id string) (ExecutionWrapper, error) {
	rs, err := w.query(fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE execid = ?", w.Table), minidb.Text(id))
	if err != nil {
		return nil, err
	}
	if rs.Rows[0][0].Int == 0 {
		return nil, fmt.Errorf("%w: %q in table %s", ErrNoSuchExecution, id, w.Table)
	}
	return &wideExec{w: w, id: id}, nil
}

type wideExec struct {
	w  *WideTableWrapper
	id string
}

func (e *wideExec) row() (*minidb.ResultSet, error) {
	return e.w.query(fmt.Sprintf(
		"SELECT * FROM %s WHERE execid = ?", e.w.Table), minidb.Text(e.id))
}

// Info returns the execution's attributes as metadata pairs.
func (e *wideExec) Info() ([]perfdata.KV, error) {
	rs, err := e.row()
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	out := []perfdata.KV{{Name: "id", Value: e.id}}
	for i, col := range rs.Columns {
		for _, attr := range e.w.Attrs {
			if col == attr && !rs.Rows[0][i].IsNull() {
				out = append(out, perfdata.KV{Name: col, Value: rs.Rows[0][i].String()})
			}
		}
	}
	return out, nil
}

// Foci: a wide table stores whole-run metrics, so the only focus is the
// root of the resource hierarchy.
func (e *wideExec) Foci() ([]string, error) { return []string{"/"}, nil }

// Metrics returns the metric columns that are non-NULL for this execution.
func (e *wideExec) Metrics() ([]string, error) {
	rs, err := e.row()
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	var out []string
	for i, col := range rs.Columns {
		for _, m := range e.w.Metrics {
			if col == m && !rs.Rows[0][i].IsNull() {
				out = append(out, col)
			}
		}
	}
	return perfdata.UniqueSorted(out), nil
}

func (e *wideExec) Types() ([]string, error) {
	rs, err := e.w.query(fmt.Sprintf(
		"SELECT DISTINCT collector FROM %s WHERE execid = ?", e.w.Table), minidb.Text(e.id))
	if err != nil {
		return nil, err
	}
	return column0(rs), nil
}

func (e *wideExec) TimeStartEnd() (perfdata.TimeRange, error) {
	rs, err := e.w.query(fmt.Sprintf(
		"SELECT starttime, endtime FROM %s WHERE execid = ?", e.w.Table), minidb.Text(e.id))
	if err != nil {
		return perfdata.TimeRange{}, err
	}
	if len(rs.Rows) == 0 {
		return perfdata.TimeRange{}, fmt.Errorf("%w: %q", ErrNoSuchExecution, e.id)
	}
	start, _ := rs.Rows[0][0].AsFloat()
	end, _ := rs.Rows[0][1].AsFloat()
	return perfdata.TimeRange{Start: start, End: end}, nil
}

// PerformanceResults answers a getPR query by collecting the streamed
// rows.
func (e *wideExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	return CollectResults(e, q)
}

// StreamPerformanceResults implements ResultStreamer with a prepared
// projection of the requested metric column, decoding rows as they
// stream out of the point query.
func (e *wideExec) StreamPerformanceResults(q perfdata.Query, yield func(perfdata.Result) error) error {
	metricOK := false
	for _, m := range e.w.Metrics {
		if m == q.Metric {
			metricOK = true
			break
		}
	}
	if !metricOK || !identOK(q.Metric) {
		return nil // unknown metric: no results, not an error
	}
	// Whole-run results live at focus "/"; honor focus filters.
	if len(q.Foci) > 0 {
		rootOK := false
		for _, f := range q.Foci {
			if perfdata.FocusMatches(f, "/") {
				rootOK = true
				break
			}
		}
		if !rootOK {
			return nil
		}
	}
	st, err := e.w.DB.Prepare(fmt.Sprintf(
		"SELECT %s, starttime, endtime, collector FROM %s WHERE execid = ? AND %s IS NOT NULL",
		q.Metric, e.w.Table, q.Metric))
	if err != nil {
		return err
	}
	rows, err := st.QueryStream(minidb.Text(e.id))
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
		row := rows.Row()
		val, _ := row[0].AsFloat()
		start, _ := row[1].AsFloat()
		end, _ := row[2].AsFloat()
		r := perfdata.Result{
			Metric: q.Metric, Focus: "/", Type: row[3].String(),
			Time:  perfdata.TimeRange{Start: start, End: end},
			Value: val,
		}
		if !q.Matches(r) {
			continue
		}
		if err := yield(r); err != nil {
			return err
		}
	}
	return rows.Err()
}
