package mapping

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/perfdata"
)

// randPRQuery composes one getPR query over a dataset, mixing exact and
// non-matching metrics/types, partial time windows, and focus filters —
// the shapes the appender and the streaming oracle must agree on.
func randPRQuery(rng *rand.Rand, d *datagen.Dataset) perfdata.Query {
	e := d.Execs[rng.Intn(len(d.Execs))]
	var metrics, foci, types []string
	for _, r := range e.Results {
		metrics = append(metrics, r.Metric)
		foci = append(foci, r.Focus)
		types = append(types, r.Type)
	}
	metrics = append(metrics, "no_such_metric")
	types = append(types, perfdata.UndefinedType, "no_such_type")
	q := perfdata.Query{
		Metric: metrics[rng.Intn(len(metrics))],
		Type:   types[rng.Intn(len(types))],
		Time:   e.Time,
	}
	switch rng.Intn(4) {
	case 0: // narrow window
		span := e.Time.End - e.Time.Start
		q.Time = perfdata.TimeRange{
			Start: e.Time.Start + span*rng.Float64()*0.5,
			End:   e.Time.End - span*rng.Float64()*0.4,
		}
	case 1: // disjoint window
		q.Time = perfdata.TimeRange{Start: e.Time.End + 10, End: e.Time.End + 20}
	}
	if len(foci) > 0 && rng.Intn(2) == 0 {
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			f := foci[rng.Intn(len(foci))]
			if rng.Intn(2) == 0 {
				// Query an ancestor, exercising subtree matching.
				if j := lastSlash(f); j > 0 {
					f = f[:j]
				}
			}
			q.Foci = append(q.Foci, f)
		}
	}
	return q
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// TestAppenderMatchesStreamOracle pins every ResultAppender to the
// retained row-at-a-time ResultStreamer (or the plain query where no
// stream exists): same results, same order.
func TestAppenderMatchesStreamOracle(t *testing.T) {
	datasets := map[string]*datagen.Dataset{
		"hpl":   datagen.HPL(datagen.HPLConfig{Executions: 8, Seed: 31}),
		"rma":   datagen.PrestaRMA(datagen.RMAConfig{Executions: 3, MessageSizes: 6, Seed: 32}),
		"smg98": datagen.SMG98(datagen.SMG98Config{Executions: 3, Processes: 2, TimeBins: 4, Seed: 33}),
	}
	for dname, d := range datasets {
		d := d
		t.Run(dname, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(dname)) * 6151))
			for wname, w := range wrapperSet(t, d) {
				appenderQueries := 0
				for _, e := range d.Execs {
					ew, err := w.ExecutionWrapper(e.ID)
					if err != nil {
						t.Fatalf("%s: %v", wname, err)
					}
					a, ok := ew.(ResultAppender)
					if !ok {
						continue
					}
					for i := 0; i < 25; i++ {
						q := randPRQuery(rng, d)
						want, err := ew.PerformanceResults(q)
						if err != nil {
							t.Fatalf("%s oracle: %v", wname, err)
						}
						prefix := []perfdata.Result{{Metric: "sentinel"}}
						got, err := a.AppendPerformanceResults(q, prefix)
						if err != nil {
							t.Fatalf("%s appender: %v", wname, err)
						}
						if len(got) < 1 || got[0].Metric != "sentinel" {
							t.Fatalf("%s appender clobbered dst prefix", wname)
						}
						got = got[1:]
						if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
							t.Fatalf("%s %s divergence for %+v:\nappender %v\noracle   %v",
								dname, wname, q, got, want)
						}
						appenderQueries++
					}
				}
				if wname != "xml" && appenderQueries == 0 {
					t.Fatalf("%s wrapper does not implement ResultAppender", wname)
				}
			}
		})
	}
}

// TestLatencyAppenderForwards pins the Latency decorator's appender:
// results flow through unchanged and the per-result delay is charged.
func TestLatencyAppenderForwards(t *testing.T) {
	d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 8, Seed: 34})
	flat, err := NewFlatFile(d)
	if err != nil {
		t.Fatal(err)
	}
	lw := WithLatency(flat, 0, 200*time.Microsecond)
	ew, err := lw.ExecutionWrapper(d.Execs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := ew.(ResultAppender)
	if !ok {
		t.Fatal("latency-wrapped execution wrapper lost ResultAppender")
	}
	q := perfdata.Query{Metric: "bandwidth", Time: d.Execs[0].Time, Type: perfdata.UndefinedType}
	want, err := ew.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("representative query matched nothing; per-result delay untestable")
	}
	start := time.Now()
	got, err := a.AppendPerformanceResults(q, nil)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("latency appender diverges:\n%v\n%v", got, want)
	}
	if min := time.Duration(len(want)) * 200 * time.Microsecond; elapsed < min {
		t.Fatalf("per-result delay not charged: %v < %v", elapsed, min)
	}
}

// TestResultArenaReuse pins the arena contract: a recycled arena comes
// back empty, holds no stale references, grows to the hint, and the
// warmed Get/append/Put cycle allocates nothing.
func TestResultArenaReuse(t *testing.T) {
	a := GetResultArena(8)
	if len(*a) != 0 || cap(*a) < 8 {
		t.Fatalf("fresh arena len=%d cap=%d", len(*a), cap(*a))
	}
	*a = append(*a, perfdata.Result{Metric: "x"})
	PutResultArena(a)
	b := GetResultArena(4)
	if len(*b) != 0 {
		t.Fatalf("recycled arena not empty: len=%d", len(*b))
	}
	if cap(*b) > 0 {
		if r := (*b)[:1][0]; r.Metric != "" {
			t.Fatalf("recycled arena retains stale contents: %+v", r)
		}
	}
	PutResultArena(b)
	if n := testing.AllocsPerRun(100, func() {
		p := GetResultArena(8)
		*p = append(*p, perfdata.Result{Metric: "y"})
		PutResultArena(p)
	}); n != 0 {
		t.Fatalf("warmed arena cycle allocates %.1f times per run, want 0", n)
	}
}
