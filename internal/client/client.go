// Package client implements PPerfGrid's Virtualization Layer: the consumer
// side of the system (section 5.5 of the paper). It provides programmatic
// equivalents of the PPerfGrid client's four GUI panels:
//
//   - Service publishing and discovery against the UDDI registry
//     (Figure 8) — Discover* and Bind*.
//   - The Application Query Panel (Figure 9) — attribute discovery and
//     batched execution queries, each attribute/value pair a separate
//     query OR'd together.
//   - The Execution Query Panel (Figure 10) — metric/foci/type/time
//     discovery and parallel Performance Result queries, one goroutine per
//     Execution instance like the paper's one-thread-per-query client.
//   - Visualization (Figure 11) — package viz renders the results.
//
// A Binding presents a remote Application Grid service as a local object;
// the same interface covers the paper's future-work "local bypass", where
// a co-located client skips the Services Layer entirely.
//
// Dialing is idempotent: a session keeps one stub per Grid Service
// Handle, so repeated discovery and querying share the pooled persistent
// HTTP connections underneath. Large getPR result sets can be consumed
// incrementally through PerformanceResultsPaged, a Rows-style iterator
// over the paged wire protocol; QueryPerformanceResults accepts a
// PageSize option to route a whole parallel batch through it.
package client

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/registry"
)

// Caller abstracts an invocable service endpoint: a SOAP stub for remote
// services, or a direct in-process invoker for the local bypass.
type Caller interface {
	Call(op string, params ...string) ([]string, error)
}

// ContextCaller is a Caller whose calls honor a context: the deadline or
// cancellation aborts the round trip in flight (container.Stub does this
// through the HTTP request's context). The federation layer's per-site
// deadlines and hedged requests depend on it; endpoints without it are
// still usable, but a cancelled call runs to completion on the wire.
type ContextCaller interface {
	CallContext(ctx context.Context, op string, params ...string) ([]string, error)
}

// callContext invokes through the context-aware path when the endpoint
// supports one, otherwise checks the context once and falls back to the
// plain call.
func callContext(ctx context.Context, c Caller, op string, params ...string) ([]string, error) {
	if cc, ok := c.(ContextCaller); ok {
		return cc.CallContext(ctx, op, params...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Call(op, params...)
}

// PagedCaller is a Caller that supports the paged-call protocol
// (container.Stub does; the local bypass does not need to — its results
// never cross the wire).
type PagedCaller interface {
	CallPaged(op, cursor string, limit int, params ...string) ([]string, string, error)
}

// Resolver turns a GSH string into a Caller.
type Resolver func(handle string) (Caller, error)

// Client is a PPerfGrid consumer session.
type Client struct {
	reg *registry.Client

	mu        sync.Mutex
	headers   container.HeaderProvider
	bindings  map[string]*Binding        // key: org/name
	stubs     map[string]*container.Stub // key: GSH string; dialing is idempotent
	callbacks *callbackHub               // non-nil once EnableCallbacks succeeds
}

// New creates a client session against the registry at host:port.
func New(registryHost string) *Client {
	return &Client{
		reg:      registry.Connect(registryHost),
		bindings: make(map[string]*Binding),
		stubs:    make(map[string]*container.Stub),
	}
}

// NewWithoutRegistry creates a client session for direct binding (no
// registry discovery), e.g. when factory handles are known out of band.
func NewWithoutRegistry() *Client {
	return &Client{bindings: make(map[string]*Binding), stubs: make(map[string]*container.Stub)}
}

// SetCredential installs a SOAP header provider (e.g. a gsi credential's
// HeaderProvider) applied to every remote call made by this client —
// including calls through stubs the session has already dialed.
func (c *Client) SetCredential(p container.HeaderProvider) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.headers = p
	for _, s := range c.stubs {
		s.SetHeaderProvider(p)
	}
}

// DiscoverOrganizations queries the registry by name substring; empty
// returns all (the Figure 8 search box).
func (c *Client) DiscoverOrganizations(query string) ([]registry.Organization, error) {
	if c.reg == nil {
		return nil, fmt.Errorf("client: no registry configured")
	}
	return c.reg.FindOrganizations(query)
}

// DiscoverServices lists an organization's published services.
func (c *Client) DiscoverServices(org string) ([]registry.ServiceEntry, error) {
	if c.reg == nil {
		return nil, fmt.Errorf("client: no registry configured")
	}
	return c.reg.Services(org)
}

// maxCachedStubs bounds the session's stub cache. Every transient
// Execution instance has a unique GSH, so a long-lived session that keeps
// discovering instances would otherwise accumulate stubs forever; past
// the bound the cache restarts empty (stubs are cheap to redial, and the
// persistent connections live in the shared transport, not the stub).
const maxCachedStubs = 1024

// newStub returns the session's stub for a handle, dialing on first use.
// Dialing is idempotent: repeated resolutions of the same GSH share one
// stub (and therefore the pooled persistent HTTP connections behind it)
// instead of building a fresh stub per call.
func (c *Client) newStub(h gsh.Handle) *container.Stub {
	key := h.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.stubs[key]; ok {
		return s
	}
	if len(c.stubs) >= maxCachedStubs {
		c.stubs = make(map[string]*container.Stub)
	}
	s := container.Dial(h)
	if c.headers != nil {
		s.SetHeaderProvider(c.headers)
	}
	c.stubs[key] = s
	return s
}

// remoteResolver resolves handles to credentialed SOAP stubs.
func (c *Client) remoteResolver(handle string) (Caller, error) {
	h, err := gsh.Parse(handle)
	if err != nil {
		return nil, err
	}
	return c.newStub(h), nil
}

// Bind binds to a discovered service: it dials the Application factory,
// calls CreateService, and adds the resulting Application instance to the
// client's current bindings (the Figure 8 "Current Bindings" list).
func (c *Client) Bind(entry registry.ServiceEntry) (*Binding, error) {
	h, err := gsh.Parse(entry.FactoryHandle)
	if err != nil {
		return nil, fmt.Errorf("client: bind %s: %w", entry.Name, err)
	}
	factory := c.newStub(h)
	app, err := factory.CreateService()
	if err != nil {
		return nil, fmt.Errorf("client: bind %s: %w", entry.Name, err)
	}
	b := &Binding{
		Entry:   entry,
		app:     app,
		resolve: c.remoteResolver,
	}
	c.addBinding(b)
	return b, nil
}

// BindFactory binds directly to an Application factory handle, without
// registry discovery.
func (c *Client) BindFactory(name string, factory gsh.Handle) (*Binding, error) {
	return c.Bind(registry.ServiceEntry{Name: name, FactoryHandle: factory.String()})
}

// BindLocal binds to a co-located site, skipping the Services Layer — the
// paper's future-work local-bypass optimization. Operations invoke the
// site's service instances in-process, with no SOAP marshalling.
func (c *Client) BindLocal(name string, site *core.Site) (*Binding, error) {
	hosting := site.Containers()[0].Hosting()
	resolve := func(handle string) (Caller, error) {
		h, err := gsh.Parse(handle)
		if err != nil {
			return nil, err
		}
		for _, cont := range site.Containers() {
			if in, ok := cont.Hosting().LookupHandle(h); ok {
				return localCaller{in}, nil
			}
		}
		return nil, fmt.Errorf("client: handle %s not hosted by local site", handle)
	}
	// Create the Application instance through the local factory.
	fin, ok := hosting.LookupHandle(site.ApplicationFactoryHandle())
	if !ok {
		return nil, fmt.Errorf("client: local site has no application factory")
	}
	out, err := fin.Invoke(ogsi.OpCreateService, nil)
	if err != nil {
		return nil, err
	}
	app, err := resolve(out[0])
	if err != nil {
		return nil, err
	}
	b := &Binding{
		Entry:   registry.ServiceEntry{Name: name, FactoryHandle: site.ApplicationFactoryHandle().String()},
		app:     app,
		resolve: resolve,
		local:   true,
	}
	c.addBinding(b)
	return b, nil
}

func (c *Client) addBinding(b *Binding) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bindings[b.Key()] = b
}

// Bindings returns the current bindings, sorted by key.
func (c *Client) Bindings() []*Binding {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Binding, 0, len(c.bindings))
	for _, b := range c.bindings {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Unbind removes a binding from the session.
func (c *Client) Unbind(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.bindings, key)
}

// localCaller invokes an in-process instance directly.
type localCaller struct {
	in *ogsi.Instance
}

func (l localCaller) Call(op string, params ...string) ([]string, error) {
	return l.in.Invoke(op, params)
}

// CallContext checks the context before invoking; an in-process dispatch
// cannot be interrupted mid-invocation, but an already-expired deadline
// is honored without doing the work.
func (l localCaller) CallContext(ctx context.Context, op string, params ...string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.in.Invoke(op, params)
}

// Binding is one bound Application Grid service instance.
type Binding struct {
	Entry   registry.ServiceEntry
	app     Caller
	resolve Resolver
	local   bool
}

// Key identifies the binding in the session.
func (b *Binding) Key() string {
	if b.Entry.Organization != "" {
		return b.Entry.Organization + "/" + b.Entry.Name
	}
	return b.Entry.Name
}

// Local reports whether the binding bypasses the Services Layer.
func (b *Binding) Local() bool { return b.local }

// AppInfo returns the application's metadata.
func (b *Binding) AppInfo() ([]perfdata.KV, error) {
	out, err := b.app.Call(core.OpGetAppInfo)
	if err != nil {
		return nil, err
	}
	return perfdata.ParseKVs(out)
}

// NumExecs returns the number of available executions.
func (b *Binding) NumExecs() (int, error) {
	out, err := b.app.Call(core.OpGetNumExecs)
	if err != nil {
		return 0, err
	}
	if len(out) != 1 {
		return 0, fmt.Errorf("client: getNumExecs returned %d values", len(out))
	}
	return strconv.Atoi(out[0])
}

// ExecQueryParams returns the execution-describing attributes and their
// value sets — the Application Query Panel's attribute discovery.
func (b *Binding) ExecQueryParams() ([]perfdata.Attribute, error) {
	rows, err := b.app.Call(core.OpGetExecQueryParams)
	if err != nil {
		return nil, err
	}
	out := make([]perfdata.Attribute, len(rows))
	for i, row := range rows {
		a, err := perfdata.ParseAttribute(row)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// AttrQuery is one Application Query Panel row: executions where
// Attribute = Value.
type AttrQuery struct {
	Attribute string
	Value     string
}

// QueryExecutions runs a batch of attribute queries (OR semantics, like
// "stringing 'OR' terms together in SQL" per section 5.3.1.2) and returns
// the deduplicated Execution references. An empty batch returns all
// executions. The attribute queries go out concurrently — each already
// resolves its matching Execution instances in one Manager round trip
// server-side, so a multi-row Application Query Panel batch costs one
// parallel wave of calls, not a sequential chain.
func (b *Binding) QueryExecutions(queries []AttrQuery) ([]*ExecutionRef, error) {
	var handles []string
	if len(queries) == 0 {
		out, err := b.app.Call(core.OpGetAllExecs)
		if err != nil {
			return nil, err
		}
		handles = out
	} else {
		outs := make([][]string, len(queries))
		errs := make([]error, len(queries))
		var wg sync.WaitGroup
		for qi, q := range queries {
			wg.Add(1)
			go func() {
				defer wg.Done()
				outs[qi], errs[qi] = b.app.Call(core.OpGetExecs, q.Attribute, q.Value)
			}()
		}
		wg.Wait()
		// Deduplicate in query order, so results are deterministic
		// regardless of which call finished first.
		seen := map[string]bool{}
		for qi, q := range queries {
			if errs[qi] != nil {
				return nil, fmt.Errorf("client: getExecs(%s,%s): %w", q.Attribute, q.Value, errs[qi])
			}
			for _, h := range outs[qi] {
				if !seen[h] {
					seen[h] = true
					handles = append(handles, h)
				}
			}
		}
	}
	return b.ResolveExecutions(handles)
}

// ResolveExecutions turns a batch of Execution GSH strings into bound
// references in input order — the handle-resolution step before a
// QueryPerformanceResults fan-out. Resolution is session-local (stubs are
// dialed lazily and idempotently), so the batch costs no wire traffic.
func (b *Binding) ResolveExecutions(handles []string) ([]*ExecutionRef, error) {
	refs := make([]*ExecutionRef, len(handles))
	for i, h := range handles {
		caller, err := b.resolve(h)
		if err != nil {
			return nil, err
		}
		parsed, err := gsh.Parse(h)
		if err != nil {
			return nil, err
		}
		refs[i] = &ExecutionRef{Binding: b, Handle: parsed, exec: caller}
	}
	return refs, nil
}

// ExecutionRef is a bound Execution Grid service instance.
type ExecutionRef struct {
	Binding *Binding
	Handle  gsh.Handle
	exec    Caller
}

// Call exposes raw operations (e.g. FindServiceData) on the instance.
func (e *ExecutionRef) Call(op string, params ...string) ([]string, error) {
	return e.exec.Call(op, params...)
}

// CallContext is Call bounded by a context (see ContextCaller).
func (e *ExecutionRef) CallContext(ctx context.Context, op string, params ...string) ([]string, error) {
	return callContext(ctx, e.exec, op, params...)
}

// Info returns the execution's metadata.
func (e *ExecutionRef) Info() ([]perfdata.KV, error) {
	return e.InfoContext(context.Background())
}

// InfoContext is Info bounded by a context.
func (e *ExecutionRef) InfoContext(ctx context.Context) ([]perfdata.KV, error) {
	out, err := callContext(ctx, e.exec, core.OpGetInfo)
	if err != nil {
		return nil, err
	}
	return perfdata.ParseKVs(out)
}

// Foci returns the execution's unique focus values.
func (e *ExecutionRef) Foci() ([]string, error) { return e.exec.Call(core.OpGetFoci) }

// Metrics returns the execution's unique metric names.
func (e *ExecutionRef) Metrics() ([]string, error) { return e.exec.Call(core.OpGetMetrics) }

// Types returns the execution's unique collector types.
func (e *ExecutionRef) Types() ([]string, error) { return e.exec.Call(core.OpGetTypes) }

// TimeStartEnd returns the execution's time range.
func (e *ExecutionRef) TimeStartEnd() (perfdata.TimeRange, error) {
	out, err := e.exec.Call(core.OpGetTimeStartEnd)
	if err != nil {
		return perfdata.TimeRange{}, err
	}
	if len(out) != 2 {
		return perfdata.TimeRange{}, fmt.Errorf("client: getTimeStartEnd returned %d values", len(out))
	}
	start, err1 := strconv.ParseFloat(out[0], 64)
	end, err2 := strconv.ParseFloat(out[1], 64)
	if err1 != nil || err2 != nil {
		return perfdata.TimeRange{}, fmt.Errorf("client: bad time values %v", out)
	}
	return perfdata.TimeRange{Start: start, End: end}, nil
}

// PublishResults publishes Performance Results into this execution's
// data store — the live-ingestion write path (publishPR). On success the
// results are immediately visible to subsequent queries from any client;
// the service never serves a pre-write cached envelope afterwards. It
// returns the number of results the service reports as published.
func (e *ExecutionRef) PublishResults(rs []perfdata.Result) (int, error) {
	out, err := e.exec.Call(core.OpPublishPR, perfdata.EncodeResults(rs)...)
	if err != nil {
		return 0, err
	}
	if len(out) != 1 {
		return 0, fmt.Errorf("client: publishPR returned %d values", len(out))
	}
	return strconv.Atoi(out[0])
}

// PerformanceResults runs one getPR query against this execution.
func (e *ExecutionRef) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	return e.PerformanceResultsContext(context.Background(), q)
}

// PerformanceResultsContext runs one getPR query bounded by a context:
// the deadline or cancellation aborts the wire round trip in flight —
// the per-attempt budget the federation engine's hedges and retries are
// built on.
func (e *ExecutionRef) PerformanceResultsContext(ctx context.Context, q perfdata.Query) ([]perfdata.Result, error) {
	out, err := callContext(ctx, e.exec, core.OpGetPR, q.WireParams()...)
	if err != nil {
		return nil, err
	}
	return perfdata.ParseResults(out)
}

// PerformanceResultsPaged runs one getPR query through the paged wire
// protocol and returns a Rows-style iterator: results stream to the caller
// page by page instead of arriving in one giant envelope. pageSize <= 0
// uses the service's default. Endpoints without paging support (the local
// bypass) are served as a single page, so callers need not special-case
// them.
func (e *ExecutionRef) PerformanceResultsPaged(q perfdata.Query, pageSize int) *PRRows {
	return &PRRows{exec: e.exec, params: q.WireParams(), pageSize: pageSize}
}

// PRRows iterates a paged getPR result set, fetching pages lazily:
//
//	rows := ref.PerformanceResultsPaged(q, 512)
//	for rows.Next() {
//		use(rows.Result())
//	}
//	if err := rows.Err(); err != nil { ... }
type PRRows struct {
	exec     Caller
	params   []string
	pageSize int

	page    []string // undecoded remainder of the current page
	cursor  string   // server-side continuation token, "" when exhausted
	started bool
	done    bool
	cur     perfdata.Result
	err     error
}

// Next advances to the next result, fetching the next page from the
// service when the current one is exhausted. It returns false at the end
// of the set or on error (check Err).
func (r *PRRows) Next() bool {
	if r.err != nil || r.done {
		return false
	}
	for len(r.page) == 0 {
		if r.started && r.cursor == "" {
			r.done = true
			return false
		}
		if err := r.fetch(); err != nil {
			r.err = err
			r.done = true
			return false
		}
	}
	// The index-walking parser decodes the wire string in place — the
	// result's fields are substrings of the page entry, so iterating a
	// paged set produces no per-result parse garbage.
	if err := perfdata.ParseResultInto(r.page[0], &r.cur); err != nil {
		r.err = err
		r.done = true
		return false
	}
	r.page = r.page[1:]
	return true
}

// fetch retrieves the next page (or, against an endpoint without paging
// support, the entire result set as one terminal page).
func (r *PRRows) fetch() error {
	if pc, ok := r.exec.(PagedCaller); ok {
		page, next, err := pc.CallPaged(core.OpGetPR, r.cursor, r.pageSize, r.params...)
		if err != nil {
			return err
		}
		r.page, r.cursor, r.started = page, next, true
		return nil
	}
	page, err := r.exec.Call(core.OpGetPR, r.params...)
	if err != nil {
		return err
	}
	r.page, r.cursor, r.started = page, "", true
	return nil
}

// Result returns the row Next advanced to.
func (r *PRRows) Result() perfdata.Result { return r.cur }

// Err returns the first error encountered while iterating.
func (r *PRRows) Err() error { return r.err }

// Close abandons the iteration. The server retires its cursor when the
// set is read to the end; an abandoned cursor ages out of the service's
// bounded cursor table.
func (r *PRRows) Close() { r.done = true }

// Collect drains the iterator into a slice.
func (r *PRRows) Collect() ([]perfdata.Result, error) {
	var out []perfdata.Result
	for r.Next() {
		out = append(out, r.Result())
	}
	return out, r.Err()
}

// Destroy destroys the remote Execution instance.
func (e *ExecutionRef) Destroy() error {
	_, err := e.exec.Call(ogsi.OpDestroy)
	return err
}

// PRResult is the outcome of one execution's query in a parallel batch.
type PRResult struct {
	Exec    *ExecutionRef
	Results []perfdata.Result
	Err     error
	Elapsed time.Duration
}

// ParallelOptions tunes QueryPerformanceResults.
type ParallelOptions struct {
	// Repeats re-runs each execution's query N times in its goroutine
	// (the paper repeated each query 10 times per thread to increase host
	// load); the recorded results come from the final run. 0 means 1.
	Repeats int
	// MaxInFlight bounds concurrent queries; 0 means one goroutine per
	// execution, the paper's model.
	MaxInFlight int
	// PageSize > 0 routes each execution's query through the paged wire
	// protocol (PerformanceResultsPaged) with that page size, bounding
	// per-response envelope size across the whole fan-out.
	PageSize int
}

// QueryPerformanceResults queries every execution in parallel — one
// goroutine per Execution Grid service instance — and returns per-
// execution outcomes in input order.
func QueryPerformanceResults(execs []*ExecutionRef, q perfdata.Query, opts ParallelOptions) []PRResult {
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	out := make([]PRResult, len(execs))
	var sem chan struct{}
	if opts.MaxInFlight > 0 {
		sem = make(chan struct{}, opts.MaxInFlight)
	}
	var wg sync.WaitGroup
	for i, e := range execs {
		wg.Add(1)
		go func(i int, e *ExecutionRef) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			start := time.Now()
			var rs []perfdata.Result
			var err error
			for r := 0; r < repeats; r++ {
				if opts.PageSize > 0 {
					rs, err = e.PerformanceResultsPaged(q, opts.PageSize).Collect()
				} else {
					rs, err = e.PerformanceResults(q)
				}
				if err != nil {
					break
				}
			}
			out[i] = PRResult{Exec: e, Results: rs, Err: err, Elapsed: time.Since(start)}
		}(i, e)
	}
	wg.Wait()
	return out
}
