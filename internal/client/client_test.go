package client

import (
	"strings"
	"testing"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/gsi"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/registry"
)

// testGrid stands up a registry plus one HPL site and publishes it.
type testGrid struct {
	regHost string
	site    *core.Site
}

func startGrid(t *testing.T, execs int) *testGrid {
	t.Helper()
	regCont := container.New(ogsi.NewHosting("x:0"), container.Options{})
	if err := regCont.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { regCont.Close() })
	if _, err := registry.Deploy(regCont.Hosting(), registry.New()); err != nil {
		t.Fatal(err)
	}

	d := datagen.HPL(datagen.HPLConfig{Executions: execs, Seed: 41})
	w, err := mapping.NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)

	pub := registry.Connect(regCont.Host())
	if err := pub.PublishOrganization(registry.Organization{Name: "PSU", Contact: "pperfgrid@pdx.edu"}); err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishService(registry.ServiceEntry{
		Organization: "PSU", Name: "HPL", Description: "Linpack runs",
		FactoryHandle: site.ApplicationFactoryHandle().String(),
	}); err != nil {
		t.Fatal(err)
	}
	return &testGrid{regHost: regCont.Host(), site: site}
}

// TestDiscoverBindQueryVisualizeFlow is the full consumer workflow of the
// paper's Figures 8–11, driven programmatically.
func TestDiscoverBindQueryVisualizeFlow(t *testing.T) {
	grid := startGrid(t, 10)
	c := New(grid.regHost)

	orgs, err := c.DiscoverOrganizations("")
	if err != nil || len(orgs) != 1 || orgs[0].Name != "PSU" {
		t.Fatalf("discover orgs: %+v, %v", orgs, err)
	}
	svcs, err := c.DiscoverServices("PSU")
	if err != nil || len(svcs) != 1 {
		t.Fatalf("discover services: %+v, %v", svcs, err)
	}

	b, err := c.Bind(svcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Bindings(); len(got) != 1 || got[0].Key() != "PSU/HPL" {
		t.Errorf("bindings = %v", got)
	}

	info, err := b.AppInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info[0].Name != "name" || info[0].Value != "HPL" {
		t.Errorf("app info = %+v", info)
	}
	if n, err := b.NumExecs(); err != nil || n != 10 {
		t.Errorf("NumExecs = %d, %v", n, err)
	}

	params, err := b.ExecQueryParams()
	if err != nil {
		t.Fatal(err)
	}
	var numProcVals []string
	for _, p := range params {
		if p.Name == "numprocesses" {
			numProcVals = p.Values
		}
	}
	if len(numProcVals) == 0 {
		t.Fatal("attribute discovery missing numprocesses")
	}

	// Application Query Panel: two attribute queries OR'd.
	execs, err := b.QueryExecutions([]AttrQuery{
		{Attribute: "numprocesses", Value: numProcVals[0]},
		{Attribute: "numprocesses", Value: numProcVals[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) < 2 {
		t.Fatalf("execs = %d", len(execs))
	}

	// Execution Query Panel: discovery then parallel getPR.
	tr, err := execs[0].TimeStartEnd()
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := execs[0].Metrics()
	if err != nil || len(metrics) == 0 {
		t.Fatalf("metrics: %v, %v", metrics, err)
	}
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: tr.End * 10}, Type: "hpl"}
	results := QueryPerformanceResults(execs, q, ParallelOptions{})
	if len(results) != len(execs) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("query %s: %v", r.Exec.Handle, r.Err)
		}
		if len(r.Results) != 1 || r.Results[0].Metric != "gflops" {
			t.Errorf("results for %s: %+v", r.Exec.Handle, r.Results)
		}
		if r.Elapsed <= 0 {
			t.Error("elapsed not recorded")
		}
	}
}

func TestQueryExecutionsDeduplicates(t *testing.T) {
	grid := startGrid(t, 6)
	c := New(grid.regHost)
	svcs, _ := c.DiscoverServices("PSU")
	b, err := c.Bind(svcs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The same query twice must not duplicate handles.
	execs, err := b.QueryExecutions([]AttrQuery{
		{Attribute: "numprocesses", Value: "2"},
		{Attribute: "numprocesses", Value: "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range execs {
		h := e.Handle.String()
		if seen[h] {
			t.Errorf("duplicate handle %s", h)
		}
		seen[h] = true
	}
}

func TestQueryExecutionsEmptyBatchReturnsAll(t *testing.T) {
	grid := startGrid(t, 4)
	c := New(grid.regHost)
	svcs, _ := c.DiscoverServices("PSU")
	b, _ := c.Bind(svcs[0])
	execs, err := b.QueryExecutions(nil)
	if err != nil || len(execs) != 4 {
		t.Fatalf("all execs = %d, %v", len(execs), err)
	}
}

func TestRepeatsAndMaxInFlight(t *testing.T) {
	grid := startGrid(t, 4)
	c := New(grid.regHost)
	svcs, _ := c.DiscoverServices("PSU")
	b, _ := c.Bind(svcs[0])
	execs, _ := b.QueryExecutions(nil)
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e6}, Type: "hpl"}
	results := QueryPerformanceResults(execs, q, ParallelOptions{Repeats: 3, MaxInFlight: 2})
	for _, r := range results {
		if r.Err != nil || len(r.Results) != 1 {
			t.Errorf("repeat query: %+v", r)
		}
	}
}

func TestLocalBypassBinding(t *testing.T) {
	grid := startGrid(t, 5)
	c := NewWithoutRegistry()
	b, err := c.BindLocal("HPL", grid.site)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Local() {
		t.Error("local binding not marked local")
	}
	if n, err := b.NumExecs(); err != nil || n != 5 {
		t.Fatalf("NumExecs = %d, %v", n, err)
	}
	execs, err := b.QueryExecutions([]AttrQuery{{Attribute: "numprocesses", Value: "2"}})
	if err != nil || len(execs) == 0 {
		t.Fatalf("execs: %d, %v", len(execs), err)
	}
	tr, _ := execs[0].TimeStartEnd()
	rs, err := execs[0].PerformanceResults(perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"})
	if err != nil || len(rs) != 1 {
		t.Fatalf("local getPR: %v, %v", rs, err)
	}
	// Remote and local answers agree.
	cr := New(grid.regHost)
	svcs, _ := cr.DiscoverServices("PSU")
	rb, _ := cr.Bind(svcs[0])
	rexecs, _ := rb.QueryExecutions([]AttrQuery{{Attribute: "numprocesses", Value: "2"}})
	rtr, _ := rexecs[0].TimeStartEnd()
	rrs, err := rexecs[0].PerformanceResults(perfdata.Query{Metric: "gflops", Time: rtr, Type: "hpl"})
	if err != nil || len(rrs) != 1 || rrs[0].Value != rs[0].Value {
		t.Errorf("local/remote mismatch: %v vs %v (%v)", rs, rrs, err)
	}
}

func TestClientWithoutRegistryErrors(t *testing.T) {
	c := NewWithoutRegistry()
	if _, err := c.DiscoverOrganizations(""); err == nil {
		t.Error("want error without registry")
	}
	if _, err := c.DiscoverServices("PSU"); err == nil {
		t.Error("want error without registry")
	}
}

func TestBindBadHandle(t *testing.T) {
	c := NewWithoutRegistry()
	if _, err := c.Bind(registry.ServiceEntry{Name: "X", FactoryHandle: "junk"}); err == nil {
		t.Error("bad factory handle: want error")
	}
}

func TestUnbind(t *testing.T) {
	grid := startGrid(t, 2)
	c := New(grid.regHost)
	svcs, _ := c.DiscoverServices("PSU")
	b, _ := c.Bind(svcs[0])
	c.Unbind(b.Key())
	if len(c.Bindings()) != 0 {
		t.Error("binding survived Unbind")
	}
}

// TestSecuredGridEndToEnd drives the client through a GSI-secured site.
func TestSecuredGridEndToEnd(t *testing.T) {
	authority, err := gsi.NewAuthority([]byte("vo-master"))
	if err != nil {
		t.Fatal(err)
	}
	verifier := gsi.NewVerifier(authority)

	d := datagen.HPL(datagen.HPLConfig{Executions: 3, Seed: 42})
	w, err := mapping.NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{
		AppName:      "HPL",
		Wrappers:     []mapping.ApplicationWrapper{w},
		Interceptors: []container.Interceptor{gsi.Interceptor(verifier, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	// Unsigned client is rejected.
	anon := NewWithoutRegistry()
	if _, err := anon.BindFactory("HPL", site.ApplicationFactoryHandle()); err == nil || !strings.Contains(err.Error(), "not signed") {
		t.Fatalf("unsigned bind: %v", err)
	}

	// Credentialed client succeeds end to end.
	cred, err := authority.Issue("analyst@pdx.edu")
	if err != nil {
		t.Fatal(err)
	}
	c := NewWithoutRegistry()
	c.SetCredential(cred.HeaderProvider())
	b, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil || len(execs) != 3 {
		t.Fatalf("execs: %d, %v", len(execs), err)
	}
	tr, err := execs[0].TimeStartEnd()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := execs[0].PerformanceResults(perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"})
	if err != nil || len(rs) != 1 {
		t.Errorf("secured getPR: %v, %v", rs, err)
	}

	// Delegated proxy works too (single sign-on).
	proxy := cred.Delegate(time.Minute)
	c2 := NewWithoutRegistry()
	c2.SetCredential(proxy.HeaderProvider())
	if _, err := c2.BindFactory("HPL", site.ApplicationFactoryHandle()); err != nil {
		t.Errorf("proxy bind: %v", err)
	}
}

// TestCallbackQueryModel exercises the future-work registry-callback
// query path end to end and checks it agrees with the blocking model.
func TestCallbackQueryModel(t *testing.T) {
	grid := startGrid(t, 8)
	c := New(grid.regHost)
	t.Cleanup(c.Close)
	if err := c.EnableCallbacks(); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableCallbacks(); err != nil { // idempotent
		t.Fatal(err)
	}
	svcs, _ := c.DiscoverServices("PSU")
	b, err := c.Bind(svcs[0])
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}

	blocking := QueryPerformanceResults(execs, q, ParallelOptions{})
	callback, err := c.QueryPerformanceResultsCallback(execs, q, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(callback) != len(blocking) {
		t.Fatalf("sizes differ: %d vs %d", len(callback), len(blocking))
	}
	for i := range callback {
		if callback[i].Err != nil {
			t.Fatalf("callback %d: %v", i, callback[i].Err)
		}
		want := perfdata.EncodeResults(blocking[i].Results)
		got := perfdata.EncodeResults(callback[i].Results)
		if len(got) != len(want) || got[0] != want[0] {
			t.Errorf("execution %d differs: %v vs %v", i, got, want)
		}
		if callback[i].Elapsed <= 0 {
			t.Error("elapsed not recorded")
		}
	}
}

func TestCallbackQueryRequiresEnable(t *testing.T) {
	grid := startGrid(t, 2)
	c := New(grid.regHost)
	svcs, _ := c.DiscoverServices("PSU")
	b, _ := c.Bind(svcs[0])
	execs, _ := b.QueryExecutions(nil)
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	if _, err := c.QueryPerformanceResultsCallback(execs, q, time.Second); err == nil {
		t.Error("want error without EnableCallbacks")
	}
}

func TestCallbackErrorOutcomeDelivered(t *testing.T) {
	grid := startGrid(t, 2)
	c := New(grid.regHost)
	t.Cleanup(c.Close)
	if err := c.EnableCallbacks(); err != nil {
		t.Fatal(err)
	}
	svcs, _ := c.DiscoverServices("PSU")
	b, _ := c.Bind(svcs[0])
	execs, _ := b.QueryExecutions(nil)
	// An invalid time range is rejected synchronously at parse; a valid
	// range with an unknown metric succeeds with zero results. Exercise
	// the synchronous-failure branch with a malformed request instead.
	if _, err := execs[0].Call(core.OpGetPRAsync, "id-1"); err == nil {
		t.Error("short params: want synchronous fault")
	}
	// Unknown metric: delivered outcome with empty results, no error.
	q := perfdata.Query{Metric: "nope", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	out, err := c.QueryPerformanceResultsCallback(execs[:1], q, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || len(out[0].Results) != 0 {
		t.Errorf("unknown metric outcome: %+v", out[0])
	}
}
