package client

// Concurrency tests for the parallel getPR fan-out: MaxInFlight bounding,
// input-order results, and per-execution error isolation.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pperfgrid/internal/core"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/perfdata"
)

// gaugeCaller answers getPR with a fixed value after a short delay,
// tracking the number of concurrently executing calls.
type gaugeCaller struct {
	value float64
	delay time.Duration
	err   error

	calls   atomic.Int64
	cur     *atomic.Int64
	highCur *atomic.Int64 // high-water mark of cur
}

func (g *gaugeCaller) Call(op string, params ...string) ([]string, error) {
	if op != core.OpGetPR {
		return nil, fmt.Errorf("unexpected op %q", op)
	}
	g.calls.Add(1)
	if g.cur != nil {
		now := g.cur.Add(1)
		for {
			high := g.highCur.Load()
			if now <= high || g.highCur.CompareAndSwap(high, now) {
				break
			}
		}
		defer g.cur.Add(-1)
	}
	if g.delay > 0 {
		time.Sleep(g.delay)
	}
	if g.err != nil {
		return nil, g.err
	}
	rs := []perfdata.Result{{
		Metric: "gflops", Focus: "/", Type: "hpl",
		Time: perfdata.TimeRange{Start: 0, End: 1}, Value: g.value,
	}}
	return perfdata.EncodeResults(rs), nil
}

func fakeRefs(callers []*gaugeCaller) []*ExecutionRef {
	refs := make([]*ExecutionRef, len(callers))
	for i, c := range callers {
		refs[i] = &ExecutionRef{
			Handle: gsh.New("h:1", core.ExecutionType, fmt.Sprint(i)),
			exec:   c,
		}
	}
	return refs
}

func testQuery() perfdata.Query {
	return perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1}, Type: "hpl"}
}

func TestQueryPerformanceResultsMaxInFlight(t *testing.T) {
	var cur, high atomic.Int64
	callers := make([]*gaugeCaller, 32)
	for i := range callers {
		callers[i] = &gaugeCaller{value: float64(i), delay: 2 * time.Millisecond, cur: &cur, highCur: &high}
	}
	refs := fakeRefs(callers)
	results := QueryPerformanceResults(refs, testQuery(), ParallelOptions{MaxInFlight: 3})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("exec %d: %v", i, r.Err)
		}
	}
	if got := high.Load(); got > 3 {
		t.Errorf("in-flight high-water mark = %d, want <= 3", got)
	}
	if got := high.Load(); got == 0 {
		t.Error("no calls observed")
	}
	var total int64
	for _, c := range callers {
		total += c.calls.Load()
	}
	if total != 32 {
		t.Errorf("calls = %d, want 32", total)
	}
}

func TestQueryPerformanceResultsUnboundedRunsWide(t *testing.T) {
	var cur, high atomic.Int64
	callers := make([]*gaugeCaller, 16)
	for i := range callers {
		callers[i] = &gaugeCaller{value: float64(i), delay: 10 * time.Millisecond, cur: &cur, highCur: &high}
	}
	refs := fakeRefs(callers)
	QueryPerformanceResults(refs, testQuery(), ParallelOptions{})
	// One goroutine per execution, the paper's model: with a 10 ms floor
	// per call, substantially more than one call overlaps.
	if got := high.Load(); got < 4 {
		t.Errorf("unbounded fan-out peaked at %d concurrent calls", got)
	}
}

func TestQueryPerformanceResultsInputOrder(t *testing.T) {
	callers := make([]*gaugeCaller, 20)
	for i := range callers {
		callers[i] = &gaugeCaller{value: float64(i), delay: time.Duration(20-i) * time.Millisecond}
	}
	refs := fakeRefs(callers)
	results := QueryPerformanceResults(refs, testQuery(), ParallelOptions{})
	if len(results) != len(refs) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Exec != refs[i] {
			t.Fatalf("result %d belongs to a different execution", i)
		}
		if r.Err != nil {
			t.Fatalf("exec %d: %v", i, r.Err)
		}
		if len(r.Results) != 1 || r.Results[0].Value != float64(i) {
			t.Errorf("result %d = %+v, want value %d (input order violated)", i, r.Results, i)
		}
	}
}

func TestQueryPerformanceResultsErrorIsolation(t *testing.T) {
	callers := make([]*gaugeCaller, 8)
	for i := range callers {
		callers[i] = &gaugeCaller{value: float64(i)}
	}
	boom := errors.New("store offline")
	callers[5].err = boom
	refs := fakeRefs(callers)
	results := QueryPerformanceResults(refs, testQuery(), ParallelOptions{Repeats: 3})
	for i, r := range results {
		if i == 5 {
			if !errors.Is(r.Err, boom) {
				t.Errorf("exec 5 error = %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("exec %d poisoned by exec 5's failure: %v", i, r.Err)
		}
		if len(r.Results) != 1 || r.Results[0].Value != float64(i) {
			t.Errorf("exec %d results = %+v", i, r.Results)
		}
	}
	// Repeats: healthy executions re-ran the query 3 times; the failing
	// one stopped at its first error.
	if got := callers[0].calls.Load(); got != 3 {
		t.Errorf("exec 0 ran %d times, want 3", got)
	}
	if got := callers[5].calls.Load(); got != 1 {
		t.Errorf("failing exec ran %d times, want 1 (stop on error)", got)
	}
}
