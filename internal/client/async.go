package client

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
)

// This file implements the paper's future-work "registry-callback model"
// for large queries: instead of one blocked goroutine per Execution call,
// the client hosts a single NotificationSink, fires non-blocking
// getPRAsync requests at every Execution instance, and collects the
// results as they are pushed back.

// callbackHub is the client's callback endpoint: one container, one sink,
// and a routing table from request ID to waiting channel.
type callbackHub struct {
	cont *container.Container
	sink gsh.Handle
	seq  atomic.Uint64

	mu      sync.Mutex
	pending map[string]chan asyncOutcome
}

type asyncOutcome struct {
	results []perfdata.Result
	err     error
}

// EnableCallbacks starts the client's callback endpoint (an in-process
// container hosting one NotificationSink). It is idempotent.
func (c *Client) EnableCallbacks() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.callbacks != nil {
		return nil
	}
	hub := &callbackHub{pending: make(map[string]chan asyncOutcome)}
	hub.cont = container.New(ogsi.NewHosting("pending:0"), container.Options{})
	if err := hub.cont.Start("127.0.0.1:0"); err != nil {
		return fmt.Errorf("client: start callback container: %w", err)
	}
	sinkIn, err := container.DeploySink(hub.cont.Hosting(), ogsi.SinkFunc(hub.deliver))
	if err != nil {
		hub.cont.Close()
		return fmt.Errorf("client: deploy callback sink: %w", err)
	}
	hub.sink = sinkIn.Handle()
	c.callbacks = hub
	return nil
}

// Close releases the client's callback endpoint, if any.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.callbacks != nil {
		c.callbacks.cont.Close()
		c.callbacks = nil
	}
}

// deliver routes one pushed outcome to its waiting request.
func (h *callbackHub) deliver(topic, message string) error {
	if topic != core.AsyncPRTopic {
		return fmt.Errorf("client: unexpected callback topic %q", topic)
	}
	requestID, rs, err := core.DecodeAsyncOutcome(message)
	if requestID == "" {
		return err
	}
	h.mu.Lock()
	ch, ok := h.pending[requestID]
	delete(h.pending, requestID)
	h.mu.Unlock()
	if !ok {
		// Late delivery after timeout: drop silently (at-most-once).
		return nil
	}
	ch <- asyncOutcome{results: rs, err: err}
	return nil
}

// register allocates a request ID and its result channel.
func (h *callbackHub) register() (string, chan asyncOutcome) {
	id := fmt.Sprintf("req-%d", h.seq.Add(1))
	ch := make(chan asyncOutcome, 1)
	h.mu.Lock()
	h.pending[id] = ch
	h.mu.Unlock()
	return id, ch
}

// cancel abandons a pending request after timeout.
func (h *callbackHub) cancel(id string) {
	h.mu.Lock()
	delete(h.pending, id)
	h.mu.Unlock()
}

// QueryPerformanceResultsCallback runs one getPR against every execution
// using the callback model: each Execution instance is sent a non-blocking
// getPRAsync carrying the client sink's handle, and results are pushed
// back as notifications — no goroutine blocks per call. Results return in
// input order; executions that miss the timeout report an error.
//
// EnableCallbacks must have been called on the owning client.
func (c *Client) QueryPerformanceResultsCallback(execs []*ExecutionRef, q perfdata.Query, timeout time.Duration) ([]PRResult, error) {
	c.mu.Lock()
	hub := c.callbacks
	c.mu.Unlock()
	if hub == nil {
		return nil, fmt.Errorf("client: callbacks not enabled (call EnableCallbacks)")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	type pendingReq struct {
		id string
		ch chan asyncOutcome
	}
	out := make([]PRResult, len(execs))
	reqs := make([]pendingReq, len(execs))
	start := time.Now()

	// Fire phase: one short acknowledgment round trip per execution.
	for i, e := range execs {
		out[i].Exec = e
		id, ch := hub.register()
		reqs[i] = pendingReq{id: id, ch: ch}
		params := append([]string{id, hub.sink.String()}, q.WireParams()...)
		if _, err := e.Call(core.OpGetPRAsync, params...); err != nil {
			hub.cancel(id)
			out[i].Err = err
			reqs[i].ch = nil
		}
	}

	// Collect phase: wait for pushes, bounded by one shared deadline.
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for i := range execs {
		if reqs[i].ch == nil {
			continue
		}
		select {
		case outcome := <-reqs[i].ch:
			out[i].Results = outcome.results
			out[i].Err = outcome.err
			out[i].Elapsed = time.Since(start)
		case <-deadline.C:
			// Deadline hit: everything still pending times out.
			for j := i; j < len(execs); j++ {
				if reqs[j].ch == nil {
					continue
				}
				select {
				case outcome := <-reqs[j].ch:
					out[j].Results = outcome.results
					out[j].Err = outcome.err
					out[j].Elapsed = time.Since(start)
				default:
					hub.cancel(reqs[j].id)
					out[j].Err = fmt.Errorf("client: callback for %s timed out after %v", execs[j].Handle, timeout)
				}
			}
			return out, nil
		}
	}
	return out, nil
}
