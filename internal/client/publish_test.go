package client

// End-to-end live ingestion: PublishResults travels the full consumer
// path — client stub, SOAP envelope, WSDL validation, container worker
// pool, Execution service, Mapping-Layer writer — and subsequent reads
// over the same wire see the write immediately, cached or not.

import (
	"sort"
	"strings"
	"testing"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

func startWritableSite(t *testing.T) (*core.Site, *ExecutionRef) {
	t.Helper()
	smg := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 2, TimeBins: 4, Seed: 31})
	w, err := mapping.NewStar(smg)
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "SMG98", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)

	c := NewWithoutRegistry()
	b, err := c.BindFactory("SMG98", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil || len(execs) != 1 {
		t.Fatalf("QueryExecutions: %d refs, %v", len(execs), err)
	}
	return site, execs[0]
}

func TestPublishResultsOverWire(t *testing.T) {
	_, exec := startWritableSite(t)
	tr, err := exec.TimeStartEnd()
	if err != nil {
		t.Fatal(err)
	}
	q := perfdata.Query{Metric: "func_calls", Time: tr, Type: perfdata.UndefinedType}

	before, err := exec.PerformanceResults(q) // also warms the instance cache
	if err != nil {
		t.Fatal(err)
	}
	adds := []perfdata.Result{
		{Metric: "func_calls", Focus: "/Process/7/Code/MPI/MPI_Waitall", Type: "vampir", Time: perfdata.TimeRange{Start: 1, End: 2}, Value: 17},
		{Metric: "func_calls", Focus: "/Process/7/Code/MPI/MPI_Waitall", Type: "vampir", Time: perfdata.TimeRange{Start: 2, End: 3}, Value: 4},
	}
	n, err := exec.PublishResults(adds)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(adds) {
		t.Fatalf("published %d results, want %d", n, len(adds))
	}

	// The same query over the same wire now includes the write — the
	// pre-write cached envelope is never served.
	after, err := exec.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	want := append(perfdata.EncodeResults(before), perfdata.EncodeResults(adds)...)
	got := perfdata.EncodeResults(after)
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("post-publish read has %d results, want %d with the published rows", len(after), len(before)+len(adds))
	}

	// The interned focus shows up in discovery, and the paged iterator
	// agrees with the one-shot read.
	foci, err := exec.Foci()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range foci {
		if f == "/Process/7/Code/MPI/MPI_Waitall" {
			found = true
		}
	}
	if !found {
		t.Errorf("published focus missing from getFoci: %v", foci)
	}
	rows := exec.PerformanceResultsPaged(q, 5)
	var paged []string
	for rows.Next() {
		paged = append(paged, rows.Result().Encode())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(paged)
	if strings.Join(paged, "\n") != strings.Join(got, "\n") {
		t.Error("paged read after publish diverges from one-shot read")
	}

	// Empty publish is wire-legal (the repeated parameter's arity floor
	// is zero) and a no-op.
	if n, err := exec.PublishResults(nil); err != nil || n != 0 {
		t.Errorf("empty publish = %d, %v; want 0, nil", n, err)
	}
}

// TestPublishResultsWireRejections pins the failure shapes at the wire
// boundary: undecodable result encodings and unknown operations reject
// without mutating the store.
func TestPublishResultsWireRejections(t *testing.T) {
	_, exec := startWritableSite(t)
	tr, err := exec.TimeStartEnd()
	if err != nil {
		t.Fatal(err)
	}
	q := perfdata.Query{Metric: "func_calls", Time: tr, Type: perfdata.UndefinedType}
	before, err := exec.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}

	for name, bad := range map[string]string{
		"too few fields":  "func_calls|/",
		"bad time range":  "func_calls|/|vampir|x-y|1",
		"bad value":       "func_calls|/|vampir|0-1|notanumber",
		"empty parameter": "",
	} {
		if _, err := exec.Call(core.OpPublishPR, bad); err == nil {
			t.Errorf("%s: publishPR accepted %q", name, bad)
		}
	}
	if _, err := exec.Call("publishPRv2", "func_calls|/|vampir|0-1|1"); err == nil {
		t.Error("unknown operation accepted")
	}

	after, err := exec.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("rejected publishes changed the store: %d results, was %d", len(after), len(before))
	}
}

// TestSitePublishFansOutToReplicas drives Site.PublishResults on a
// two-replica site: the write must land in every replica's store (or
// replicas would diverge), and every live instance's epoch must advance
// so no instance serves a pre-write envelope.
func TestSitePublishFansOutToReplicas(t *testing.T) {
	smg := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 2, TimeBins: 2, Seed: 33})
	var wrappers []mapping.ApplicationWrapper
	for i := 0; i < 2; i++ {
		w, err := mapping.NewStar(smg)
		if err != nil {
			t.Fatal(err)
		}
		wrappers = append(wrappers, w)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "SMG98", Wrappers: wrappers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)

	c := NewWithoutRegistry()
	b, err := c.BindFactory("SMG98", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil || len(execs) != 1 {
		t.Fatalf("QueryExecutions: %d refs, %v", len(execs), err)
	}
	id := smg.Execs[0].ID
	// Warm the live instance's cache so the publish has an envelope to
	// invalidate.
	q := perfdata.Query{Metric: "func_calls", Foci: []string{"/Process/9"}, Time: perfdata.TimeRange{Start: 0, End: 60}, Type: perfdata.UndefinedType}
	if rs, err := execs[0].PerformanceResults(q); err != nil || len(rs) != 0 {
		t.Fatalf("pre-publish read: %v, %v", rs, err)
	}

	add := []perfdata.Result{{
		Metric: "func_calls", Focus: "/Process/9/Code/MPI/MPI_Barrier", Type: "vampir",
		Time: perfdata.TimeRange{Start: 0, End: 1}, Value: 3,
	}}
	if err := site.PublishResults(id, add); err != nil {
		t.Fatal(err)
	}
	// Every replica's store holds the write, not just the one hosting
	// the live instance.
	for i, w := range wrappers {
		ew, err := w.ExecutionWrapper(id)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ew.PerformanceResults(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 1 || rs[0].Value != 3 {
			t.Errorf("replica %d store missed the write: %v", i, rs)
		}
	}
	// The instance's epoch advanced and the wire read sees the write.
	for _, svc := range site.ExecutionServices(id) {
		if svc.Epoch() != 1 || svc.Publishes() != 1 {
			t.Errorf("instance epoch=%d publishes=%d, want 1/1", svc.Epoch(), svc.Publishes())
		}
	}
	rs, err := execs[0].PerformanceResults(q)
	if err != nil || len(rs) != 1 {
		t.Fatalf("post-publish wire read: %v, %v", rs, err)
	}
}
