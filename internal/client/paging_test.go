package client

// Tests for the session stub cache (idempotent dialing) and the paged
// getPR flow through the full stack: client iterator -> SOAP headers ->
// container -> Execution service cursors.

import (
	"reflect"
	"testing"

	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// startSMGSite stands up a site over one SMG98-shaped execution with a
// result set large enough to span several pages.
func startSMGSite(t *testing.T) *core.Site {
	t.Helper()
	d := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 4, TimeBins: 16, Seed: 9})
	w := mapping.NewMemory(d)
	site, err := core.StartSite(core.SiteConfig{AppName: "SMG98", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

func bindOneExec(t *testing.T, c *Client, site *core.Site) *ExecutionRef {
	t.Helper()
	b, err := c.BindFactory("SMG98", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil || len(refs) == 0 {
		t.Fatalf("QueryExecutions: %v, %v", refs, err)
	}
	return refs[0]
}

func smgQuery(t *testing.T, ref *ExecutionRef) perfdata.Query {
	t.Helper()
	tr, err := ref.TimeStartEnd()
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := ref.Metrics()
	if err != nil || len(metrics) == 0 {
		t.Fatalf("metrics: %v, %v", metrics, err)
	}
	return perfdata.Query{Metric: metrics[0], Time: tr, Type: perfdata.UndefinedType}
}

// TestDialingIdempotent is the regression test for the stub-per-call bug:
// resolving the same GSH repeatedly must return the same stub, so every
// call to one instance shares the pooled persistent connections.
func TestDialingIdempotent(t *testing.T) {
	site := startSMGSite(t)
	c := NewWithoutRegistry()
	h := site.ApplicationFactoryHandle()
	if s1, s2 := c.newStub(h), c.newStub(h); s1 != s2 {
		t.Error("newStub dialed twice for one handle")
	}
	// Execution refs resolved by two discovery rounds share stubs too.
	b, err := c.BindFactory("SMG98", h)
	if err != nil {
		t.Fatal(err)
	}
	refs1, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	refs2, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if refs1[0].Handle != refs2[0].Handle {
		t.Fatalf("discovery not deterministic: %v vs %v", refs1[0].Handle, refs2[0].Handle)
	}
	if refs1[0].exec != refs2[0].exec {
		t.Error("same execution GSH resolved to two different stubs")
	}
}

// TestPagedQueryEndToEnd: the PRRows iterator must yield exactly the
// unpaged result list, across page sizes, through the real wire path.
func TestPagedQueryEndToEnd(t *testing.T) {
	site := startSMGSite(t)
	c := NewWithoutRegistry()
	ref := bindOneExec(t, c, site)
	q := smgQuery(t, ref)
	want, err := ref.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 20 {
		t.Fatalf("result set too small (%d) to exercise paging", len(want))
	}
	for _, pageSize := range []int{1, 7, len(want), len(want) + 5, 0} {
		got, err := ref.PerformanceResultsPaged(q, pageSize).Collect()
		if err != nil {
			t.Fatalf("pageSize %d: %v", pageSize, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pageSize %d: paged results differ from unpaged (%d vs %d rows)", pageSize, len(got), len(want))
		}
	}
}

// TestPagedQueryIterationOrder: Next/Result walk rows one at a time
// without materializing the set.
func TestPagedQueryIterationOrder(t *testing.T) {
	site := startSMGSite(t)
	c := NewWithoutRegistry()
	ref := bindOneExec(t, c, site)
	q := smgQuery(t, ref)
	want, err := ref.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := ref.PerformanceResultsPaged(q, 5)
	for i := 0; rows.Next(); i++ {
		if rows.Result() != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, rows.Result(), want[i])
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// A closed iterator stops immediately.
	rows2 := ref.PerformanceResultsPaged(q, 5)
	rows2.Close()
	if rows2.Next() {
		t.Error("closed iterator advanced")
	}
}

// TestQueryPerformanceResultsPaged: the batched fan-out produces identical
// outcomes through the paged protocol.
func TestQueryPerformanceResultsPaged(t *testing.T) {
	site := startSMGSite(t)
	c := NewWithoutRegistry()
	ref := bindOneExec(t, c, site)
	q := smgQuery(t, ref)
	plain := QueryPerformanceResults([]*ExecutionRef{ref}, q, ParallelOptions{})
	paged := QueryPerformanceResults([]*ExecutionRef{ref}, q, ParallelOptions{PageSize: 9})
	if plain[0].Err != nil || paged[0].Err != nil {
		t.Fatalf("errs: %v, %v", plain[0].Err, paged[0].Err)
	}
	if !reflect.DeepEqual(plain[0].Results, paged[0].Results) {
		t.Error("paged fan-out results differ from plain")
	}
}

// TestPagedLocalBypass: the local bypass has no paging (nothing crosses
// the wire) but the iterator must still work, as a single page.
func TestPagedLocalBypass(t *testing.T) {
	site := startSMGSite(t)
	c := NewWithoutRegistry()
	b, err := c.BindLocal("SMG98", site)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil || len(refs) == 0 {
		t.Fatalf("local QueryExecutions: %v, %v", refs, err)
	}
	q := smgQuery(t, refs[0])
	want, err := refs[0].PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := refs[0].PerformanceResultsPaged(q, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("local paged iterator differs from plain query")
	}
}

// TestStubReusedAcrossBindings: binding twice to the same factory handle
// dials it once.
func TestStubReusedAcrossBindings(t *testing.T) {
	site := startSMGSite(t)
	c := NewWithoutRegistry()
	h := site.ApplicationFactoryHandle()
	if _, err := c.BindFactory("SMG98", h); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BindFactory("SMG98", h); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var factoryStubs int
	for key := range c.stubs {
		if parsed, err := gsh.Parse(key); err == nil && parsed == h {
			factoryStubs++
		}
	}
	if factoryStubs != 1 {
		t.Errorf("%d stubs for one factory handle", factoryStubs)
	}
}
