// Package xmlstore implements the native-XML performance data store format
// — the paper's third storage option alongside relational databases and
// flat text files (the HPL dataset was stored "in a text file as XML").
//
// A dataset is one XML document:
//
//	<performanceData application="HPL">
//	  <meta name="version">1.2</meta>
//	  <execution id="100">
//	    <attr name="numprocesses">4</attr>
//	    <time start="0" end="132.5"/>
//	    <result metric="gflops" focus="/Process/0" type="hpl"
//	            start="0" end="132.5" value="2.8"/>
//	  </execution>
//	</performanceData>
//
// Like package flatfile, queries re-decode the document so that the XML
// parse cost is paid per Mapping-Layer call, which is what the paper's
// future-work comparison between RDBMS-backed and XML-backed stores
// measures.
package xmlstore

import (
	"encoding/xml"
	"fmt"
	"os"
	"sort"

	"pperfgrid/internal/perfdata"
)

// Document mirrors the XML dataset structure.
type Document struct {
	XMLName     xml.Name       `xml:"performanceData"`
	Application string         `xml:"application,attr"`
	Meta        []metaElem     `xml:"meta"`
	Executions  []ExecutionDoc `xml:"execution"`
}

type metaElem struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// ExecutionDoc is one execution element.
type ExecutionDoc struct {
	ID      string       `xml:"id,attr"`
	Attrs   []metaElem   `xml:"attr"`
	Time    timeElem     `xml:"time"`
	Results []resultElem `xml:"result"`
}

type timeElem struct {
	Start float64 `xml:"start,attr"`
	End   float64 `xml:"end,attr"`
}

type resultElem struct {
	Metric string  `xml:"metric,attr"`
	Focus  string  `xml:"focus,attr"`
	Type   string  `xml:"type,attr"`
	Start  float64 `xml:"start,attr"`
	End    float64 `xml:"end,attr"`
	Value  float64 `xml:"value,attr"`
}

// Dataset is the logical content of an XML store, shared with generators.
type Dataset struct {
	Name  string
	Meta  []perfdata.KV
	Execs []Execution
}

// Execution is one run in a Dataset.
type Execution struct {
	ID      string
	Attrs   map[string]string
	Time    perfdata.TimeRange
	Results []perfdata.Result
}

// Encode renders the dataset as one XML document.
func Encode(ds *Dataset) ([]byte, error) {
	if ds.Name == "" {
		return nil, fmt.Errorf("xmlstore: dataset has no application name")
	}
	doc := Document{Application: ds.Name}
	for _, kv := range ds.Meta {
		doc.Meta = append(doc.Meta, metaElem{Name: kv.Name, Value: kv.Value})
	}
	for _, e := range ds.Execs {
		if e.ID == "" {
			return nil, fmt.Errorf("xmlstore: execution with empty ID")
		}
		ed := ExecutionDoc{ID: e.ID, Time: timeElem{Start: e.Time.Start, End: e.Time.End}}
		names := make([]string, 0, len(e.Attrs))
		for n := range e.Attrs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ed.Attrs = append(ed.Attrs, metaElem{Name: n, Value: e.Attrs[n]})
		}
		for _, r := range e.Results {
			ed.Results = append(ed.Results, resultElem{
				Metric: r.Metric, Focus: r.Focus, Type: r.Type,
				Start: r.Time.Start, End: r.Time.End, Value: r.Value,
			})
		}
		doc.Executions = append(doc.Executions, ed)
	}
	body, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlstore: encode: %w", err)
	}
	return append([]byte(xml.Header), body...), nil
}

// WriteFile writes the dataset to one XML file.
func WriteFile(ds *Dataset, path string) error {
	data, err := Encode(ds)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Store provides per-query access to an XML dataset. The raw document is
// held in memory (it is one file) and re-decoded on each data access.
type Store struct {
	raw []byte
	// The index below is decoded once at Open for cheap metadata calls;
	// result queries re-decode the full document.
	name  string
	meta  []perfdata.KV
	ids   []string
	index map[string]int
}

// Open validates and indexes an XML dataset held in memory.
func Open(raw []byte) (*Store, error) {
	doc, err := decode(raw)
	if err != nil {
		return nil, err
	}
	s := &Store{raw: raw, name: doc.Application, index: make(map[string]int)}
	for _, m := range doc.Meta {
		s.meta = append(s.meta, perfdata.KV{Name: m.Name, Value: m.Value})
	}
	for i, e := range doc.Executions {
		if _, dup := s.index[e.ID]; dup {
			return nil, fmt.Errorf("xmlstore: duplicate execution ID %q", e.ID)
		}
		s.index[e.ID] = i
		s.ids = append(s.ids, e.ID)
	}
	return s, nil
}

// OpenFile opens an XML dataset from a file.
func OpenFile(path string) (*Store, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: %w", err)
	}
	return Open(raw)
}

func decode(raw []byte) (*Document, error) {
	var doc Document
	if err := xml.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("xmlstore: decode: %w", err)
	}
	if doc.Application == "" {
		return nil, fmt.Errorf("xmlstore: document missing application attribute")
	}
	return &doc, nil
}

// Name returns the application name.
func (s *Store) Name() string { return s.name }

// Meta returns the application metadata.
func (s *Store) Meta() []perfdata.KV {
	out := make([]perfdata.KV, len(s.meta))
	copy(out, s.meta)
	return out
}

// ExecIDs returns execution IDs in document order.
func (s *Store) ExecIDs() []string {
	out := make([]string, len(s.ids))
	copy(out, s.ids)
	return out
}

// NumExecs returns the number of executions.
func (s *Store) NumExecs() int { return len(s.ids) }

// Execution re-decodes the document and returns one execution's data.
func (s *Store) Execution(id string) (*Execution, error) {
	i, ok := s.index[id]
	if !ok {
		return nil, fmt.Errorf("xmlstore: no execution %q", id)
	}
	doc, err := decode(s.raw)
	if err != nil {
		return nil, err
	}
	if i >= len(doc.Executions) {
		return nil, fmt.Errorf("xmlstore: document changed underfoot")
	}
	ed := doc.Executions[i]
	e := &Execution{
		ID:    ed.ID,
		Attrs: make(map[string]string, len(ed.Attrs)),
		Time:  perfdata.TimeRange{Start: ed.Time.Start, End: ed.Time.End},
	}
	for _, a := range ed.Attrs {
		e.Attrs[a.Name] = a.Value
	}
	for _, r := range ed.Results {
		e.Results = append(e.Results, perfdata.Result{
			Metric: r.Metric, Focus: r.Focus, Type: r.Type,
			Time:  perfdata.TimeRange{Start: r.Start, End: r.End},
			Value: r.Value,
		})
	}
	return e, nil
}

// Query scans one execution's results for those matching q.
func (s *Store) Query(id string, q perfdata.Query) ([]perfdata.Result, error) {
	e, err := s.Execution(id)
	if err != nil {
		return nil, err
	}
	var out []perfdata.Result
	for _, r := range e.Results {
		if q.Matches(r) {
			out = append(out, r)
		}
	}
	return out, nil
}
