package xmlstore

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pperfgrid/internal/perfdata"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Name: "HPL",
		Meta: []perfdata.KV{{Name: "version", Value: "1.2"}},
		Execs: []Execution{
			{
				ID:    "100",
				Attrs: map[string]string{"numprocesses": "4", "rundate": "2004-03-15"},
				Time:  perfdata.TimeRange{Start: 0, End: 132.5},
				Results: []perfdata.Result{
					{Metric: "gflops", Focus: "/Process/0", Type: "hpl", Time: perfdata.TimeRange{Start: 0, End: 132.5}, Value: 2.8},
					{Metric: "runtimesec", Focus: "/", Type: "hpl", Time: perfdata.TimeRange{Start: 0, End: 132.5}, Value: 132.5},
				},
			},
			{
				ID:    "101",
				Attrs: map[string]string{"numprocesses": "8"},
				Time:  perfdata.TimeRange{Start: 0, End: 70},
				Results: []perfdata.Result{
					{Metric: "gflops", Focus: "/Process/0", Type: "hpl", Time: perfdata.TimeRange{Start: 0, End: 70}, Value: 5.1},
				},
			},
		},
	}
}

func openSample(t *testing.T) *Store {
	t.Helper()
	raw, err := Encode(sampleDataset())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := openSample(t)
	if s.Name() != "HPL" {
		t.Errorf("Name = %q", s.Name())
	}
	if !reflect.DeepEqual(s.Meta(), sampleDataset().Meta) {
		t.Errorf("Meta = %+v", s.Meta())
	}
	if !reflect.DeepEqual(s.ExecIDs(), []string{"100", "101"}) {
		t.Errorf("ExecIDs = %v", s.ExecIDs())
	}
	if s.NumExecs() != 2 {
		t.Errorf("NumExecs = %d", s.NumExecs())
	}
	e, err := s.Execution("100")
	if err != nil {
		t.Fatal(err)
	}
	want := sampleDataset().Execs[0]
	if e.ID != want.ID || !reflect.DeepEqual(e.Attrs, want.Attrs) || e.Time != want.Time {
		t.Errorf("execution header: %+v", e)
	}
	if !reflect.DeepEqual(e.Results, want.Results) {
		t.Errorf("results: %+v", e.Results)
	}
}

func TestQuery(t *testing.T) {
	s := openSample(t)
	rs, err := s.Query("100", perfdata.Query{
		Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 200}, Type: "hpl",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 2.8 {
		t.Errorf("got %+v", rs)
	}
	rs, err = s.Query("100", perfdata.Query{
		Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 200}, Type: "vampir",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("type filter failed: %+v", rs)
	}
}

func TestExecutionMissing(t *testing.T) {
	s := openSample(t)
	if _, err := s.Execution("999"); err == nil {
		t.Error("want error for missing execution")
	}
}

func TestWriteAndOpenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hpl.xml")
	if err := WriteFile(sampleDataset(), path); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumExecs() != 2 {
		t.Errorf("NumExecs = %d", s.NumExecs())
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Error("want error")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(&Dataset{}); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := Encode(&Dataset{Name: "X", Execs: []Execution{{}}}); err == nil {
		t.Error("empty exec ID: want error")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open([]byte("not xml")); err == nil {
		t.Error("not xml: want error")
	}
	if _, err := Open([]byte("<performanceData/>")); err == nil {
		t.Error("missing application: want error")
	}
	dup := `<performanceData application="X"><execution id="1"/><execution id="1"/></performanceData>`
	if _, err := Open([]byte(dup)); err == nil {
		t.Error("duplicate IDs: want error")
	}
}

func TestSpecialCharactersInAttrs(t *testing.T) {
	ds := &Dataset{
		Name: "X<&>",
		Execs: []Execution{{
			ID:    "1",
			Attrs: map[string]string{"desc": `quotes " and <tags> & amps`},
			Time:  perfdata.TimeRange{Start: 0, End: 1},
		}},
	}
	raw, err := Encode(ds)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "X<&>" {
		t.Errorf("Name = %q", s.Name())
	}
	e, err := s.Execution("1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs["desc"] != `quotes " and <tags> & amps` {
		t.Errorf("attr = %q", e.Attrs["desc"])
	}
}

func TestDocumentHasExpectedShape(t *testing.T) {
	raw, err := Encode(sampleDataset())
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`<performanceData application="HPL">`,
		`<meta name="version">1.2</meta>`,
		`<execution id="100">`,
		`<attr name="numprocesses">4</attr>`,
		`metric="gflops"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("document missing %q:\n%s", want, text)
		}
	}
}

func TestLargeDataset(t *testing.T) {
	ds := &Dataset{Name: "big"}
	var results []perfdata.Result
	for i := 0; i < 1000; i++ {
		results = append(results, perfdata.Result{
			Metric: "m", Focus: "/P", Type: "t",
			Time:  perfdata.TimeRange{Start: float64(i), End: float64(i + 1)},
			Value: float64(i),
		})
	}
	ds.Execs = []Execution{{ID: "1", Attrs: map[string]string{}, Time: perfdata.TimeRange{Start: 0, End: 1000}, Results: results}}
	raw, err := Encode(ds)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Execution("1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Results, results) {
		t.Error("large dataset mangled")
	}
}
