// Package gsh implements Grid Service Handles (GSHs), the globally unique
// names that identify grid services and grid service instances in PPerfGrid.
//
// A GSH has the canonical form
//
//	http://host:port/ogsa/services/<serviceType>/<instanceID>
//
// where serviceType names the static service concept (for example
// "ApplicationFactory" or "Execution") and instanceID names one transient,
// stateful instantiation of that concept. Persistent (non-transient)
// services such as factories and the registry use the instance ID "0".
//
// The OGSI specification requires that no two grid services or grid service
// instances share a GSH; the Allocator type provides process-wide unique IDs
// and the container enforces uniqueness at deployment time.
package gsh

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
)

// PathPrefix is the URL path under which all grid services are hosted,
// mirroring the Globus Toolkit's /ogsa/services/ convention.
const PathPrefix = "/ogsa/services/"

// PersistentID is the instance ID used by persistent (non-transient)
// services such as factories, the Manager, and the registry.
const PersistentID = "0"

// Handle is a parsed Grid Service Handle.
type Handle struct {
	// Scheme is the transport scheme, always "http" in this implementation.
	Scheme string
	// Host is the host:port authority of the hosting container.
	Host string
	// ServiceType is the static service concept name, e.g. "Application".
	ServiceType string
	// InstanceID identifies one transient instance of the service type.
	InstanceID string
}

// ErrInvalid reports a malformed Grid Service Handle.
var ErrInvalid = errors.New("gsh: invalid grid service handle")

// New constructs a Handle from its parts.
func New(host, serviceType, instanceID string) Handle {
	return Handle{Scheme: "http", Host: host, ServiceType: serviceType, InstanceID: instanceID}
}

// Persistent constructs the Handle of a persistent service (instance ID "0").
func Persistent(host, serviceType string) Handle {
	return New(host, serviceType, PersistentID)
}

// Parse parses a GSH string into a Handle. It returns ErrInvalid (wrapped
// with detail) if the string is not a well-formed GSH.
func Parse(s string) (Handle, error) {
	u, err := url.Parse(s)
	if err != nil {
		return Handle{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return Handle{}, fmt.Errorf("%w: scheme %q", ErrInvalid, u.Scheme)
	}
	if u.Host == "" {
		return Handle{}, fmt.Errorf("%w: missing host", ErrInvalid)
	}
	if !strings.HasPrefix(u.Path, PathPrefix) {
		return Handle{}, fmt.Errorf("%w: path %q lacks prefix %q", ErrInvalid, u.Path, PathPrefix)
	}
	rest := strings.TrimPrefix(u.Path, PathPrefix)
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return Handle{}, fmt.Errorf("%w: path %q must be %sTYPE/ID", ErrInvalid, u.Path, PathPrefix)
	}
	return Handle{Scheme: u.Scheme, Host: u.Host, ServiceType: parts[0], InstanceID: parts[1]}, nil
}

// MustParse is like Parse but panics on error. It is intended for tests and
// for handles produced by this process, which are well-formed by construction.
func MustParse(s string) Handle {
	h, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return h
}

// String renders the Handle in canonical GSH form.
func (h Handle) String() string {
	scheme := h.Scheme
	if scheme == "" {
		scheme = "http"
	}
	return scheme + "://" + h.Host + PathPrefix + h.ServiceType + "/" + h.InstanceID
}

// URL returns the HTTP endpoint at which the instance accepts SOAP messages.
// In this implementation the Grid Service Reference (GSR) and the GSH share
// an address, so URL is simply the canonical string form.
func (h Handle) URL() string { return h.String() }

// IsPersistent reports whether the handle names a persistent service.
func (h Handle) IsPersistent() bool { return h.InstanceID == PersistentID }

// IsZero reports whether the handle is the zero Handle.
func (h Handle) IsZero() bool { return h == Handle{} }

// WithInstance returns a copy of h addressing a different instance of the
// same service type on the same host.
func (h Handle) WithInstance(id string) Handle {
	h.InstanceID = id
	return h
}

// Allocator issues process-wide unique instance IDs. The zero value is ready
// to use. IDs are small decimal strings, unique per Allocator.
type Allocator struct {
	next atomic.Uint64
}

// Next returns the next unique instance ID. The first ID returned is "1";
// "0" is reserved for persistent services.
func (a *Allocator) Next() string {
	return strconv.FormatUint(a.next.Add(1), 10)
}
