package gsh

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []Handle{
		New("localhost:8080", "Application", "17"),
		New("siteA.example.org:9090", "ExecutionFactory", "0"),
		Persistent("10.0.0.1:1234", "Registry"),
	}
	for _, want := range cases {
		got, err := Parse(want.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"ftp://host:1/ogsa/services/App/1",
		"http:///ogsa/services/App/1",
		"http://host:1/wrong/prefix/App/1",
		"http://host:1/ogsa/services/App",
		"http://host:1/ogsa/services//1",
		"http://host:1/ogsa/services/App/",
		"http://host:1/ogsa/services/App/1/extra",
		"not a url at all ://",
	}
	for _, s := range bad {
		if _, err := Parse(s); !errors.Is(err, ErrInvalid) {
			t.Errorf("Parse(%q): want ErrInvalid, got %v", s, err)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on malformed handle did not panic")
		}
	}()
	MustParse("bogus")
}

func TestPersistent(t *testing.T) {
	h := Persistent("host:1", "ApplicationFactory")
	if !h.IsPersistent() {
		t.Error("Persistent handle not reported persistent")
	}
	if h.InstanceID != PersistentID {
		t.Errorf("InstanceID = %q, want %q", h.InstanceID, PersistentID)
	}
	if New("host:1", "Application", "3").IsPersistent() {
		t.Error("transient handle reported persistent")
	}
}

func TestWithInstance(t *testing.T) {
	h := Persistent("host:1", "Execution")
	h2 := h.WithInstance("42")
	if h2.InstanceID != "42" || h2.Host != h.Host || h2.ServiceType != h.ServiceType {
		t.Errorf("WithInstance: got %+v", h2)
	}
	if h.InstanceID != PersistentID {
		t.Error("WithInstance mutated receiver")
	}
}

func TestIsZero(t *testing.T) {
	var h Handle
	if !h.IsZero() {
		t.Error("zero Handle not reported zero")
	}
	if New("h:1", "T", "1").IsZero() {
		t.Error("nonzero Handle reported zero")
	}
}

func TestURLEqualsString(t *testing.T) {
	h := New("host:8080", "Application", "5")
	if h.URL() != h.String() {
		t.Errorf("URL %q != String %q", h.URL(), h.String())
	}
}

func TestStringDefaultsScheme(t *testing.T) {
	h := Handle{Host: "h:1", ServiceType: "T", InstanceID: "1"}
	if !strings.HasPrefix(h.String(), "http://") {
		t.Errorf("String() = %q, want http:// prefix", h.String())
	}
}

func TestAllocatorUnique(t *testing.T) {
	var a Allocator
	const n = 1000
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		id := a.Next()
		if id == PersistentID {
			t.Fatalf("Allocator issued reserved ID %q", PersistentID)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestAllocatorConcurrent(t *testing.T) {
	var a Allocator
	const workers, per = 8, 500
	var mu sync.Mutex
	seen := make(map[string]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, 0, per)
			for i := 0; i < per; i++ {
				ids = append(ids, a.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate ID %q across goroutines", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Errorf("got %d unique IDs, want %d", len(seen), workers*per)
	}
}

// Property: any handle built from sane parts survives a String/Parse round trip.
func TestQuickRoundTrip(t *testing.T) {
	clean := func(s string, fallback string) string {
		var b strings.Builder
		for _, r := range s {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return fallback
		}
		return b.String()
	}
	f := func(host, typ, id string) bool {
		h := New(clean(host, "host")+":80", clean(typ, "T"), clean(id, "1"))
		got, err := Parse(h.String())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
