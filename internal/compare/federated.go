package compare

import (
	"context"
	"fmt"

	"pperfgrid/internal/client"
	"pperfgrid/internal/federation"
	"pperfgrid/internal/perfdata"
)

// ObservationError is a typed per-observation collection failure: which
// site and execution failed, why, and whether retrying could help.
// Analyses degrade gracefully on these — a failed execution costs one
// observation, not the whole study.
type ObservationError struct {
	Site      string // binding key of the owning site
	Exec      string // execution handle or ID, when known
	Cause     error
	Retryable bool
	Timeout   bool
}

// Error implements error.
func (e *ObservationError) Error() string {
	where := e.Site
	if e.Exec != "" {
		where += " " + e.Exec
	}
	kind := "error"
	if e.Timeout {
		kind = "timeout"
	}
	return fmt.Sprintf("compare: collect from %s: %s: %v", where, kind, e.Cause)
}

// Unwrap exposes the cause.
func (e *ObservationError) Unwrap() error { return e.Cause }

// CollectDetailed runs the query against every execution in parallel and
// returns the observations that succeeded (in input order) together with
// one typed error per execution that failed. A partial harvest is a
// result, not a failure.
func CollectDetailed(execs []*client.ExecutionRef, q perfdata.Query) ([]Observation, []*ObservationError) {
	results := client.QueryPerformanceResults(execs, q, client.ParallelOptions{})
	var out []Observation
	var errs []*ObservationError
	for _, r := range results {
		site := r.Exec.Binding.Key()
		handle := r.Exec.Handle.String()
		if r.Err != nil {
			errs = append(errs, &ObservationError{
				Site: site, Exec: handle, Cause: r.Err,
				Retryable: federation.Retryable(r.Err), Timeout: federation.IsTimeout(r.Err),
			})
			continue
		}
		info, err := r.Exec.Info()
		if err != nil {
			errs = append(errs, &ObservationError{
				Site: site, Exec: handle, Cause: err,
				Retryable: federation.Retryable(err), Timeout: federation.IsTimeout(err),
			})
			continue
		}
		out = append(out, observationFrom(site, info, r.Results))
	}
	return out, errs
}

// CollectFederated routes a collection through the federation engine:
// the query is scatter-gathered across the named sites with deadlines,
// hedging, retries, and breakers applied, and every site outcome comes
// back as either observations or a typed per-site error. The engine's
// Report rides along for callers that want the full annotations.
func CollectFederated(ctx context.Context, e *federation.Engine, sites []string, q perfdata.Query) ([]Observation, []*ObservationError, *federation.Report) {
	r := e.Query(ctx, sites, q)
	var out []Observation
	var errs []*ObservationError
	for _, o := range r.Outcomes {
		if o.Status == federation.StatusOK {
			for _, fo := range o.Data.Observations {
				out = append(out, federatedObservation(o.Site, fo))
			}
			continue
		}
		errs = append(errs, &ObservationError{
			Site: o.Site, Cause: o.Err,
			Retryable: federation.Retryable(o.Err),
			Timeout:   o.Status == federation.StatusTimeout,
		})
	}
	return out, errs, r
}

// observationFrom builds an Observation from raw execution info —
// shared by the direct and detailed collection paths.
func observationFrom(site string, info []perfdata.KV, results []perfdata.Result) Observation {
	o := Observation{Source: site, Attrs: map[string]string{}, Results: results}
	for _, kv := range info {
		if kv.Name == "id" {
			o.ExecID = kv.Value
			continue
		}
		o.Attrs[kv.Name] = kv.Value
	}
	return o
}

// federatedObservation converts a federation-level observation into the
// compare shape, identically to observationFrom.
func federatedObservation(site string, fo federation.Observation) Observation {
	o := Observation{Source: site, ExecID: fo.ExecID, Attrs: map[string]string{}, Results: fo.Results}
	for _, kv := range fo.Attrs {
		if kv.Name != "id" {
			o.Attrs[kv.Name] = kv.Value
		}
	}
	return o
}
