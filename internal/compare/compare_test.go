package compare

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

func obs(id string, attrs map[string]string, vals ...float64) Observation {
	o := Observation{ExecID: id, Attrs: attrs}
	for i, v := range vals {
		o.Results = append(o.Results, perfdata.Result{
			Metric: "m", Focus: "/", Type: "t",
			Time:  perfdata.TimeRange{Start: float64(i), End: float64(i + 1)},
			Value: v,
		})
	}
	return o
}

func TestObservationAggregates(t *testing.T) {
	o := obs("1", nil, 2, 4, 6)
	if o.Mean() != 4 {
		t.Errorf("Mean = %v", o.Mean())
	}
	if o.Sum() != 12 {
		t.Errorf("Sum = %v", o.Sum())
	}
	empty := Observation{}
	if empty.Mean() != 0 || empty.Sum() != 0 {
		t.Error("empty aggregates nonzero")
	}
}

func TestScalingStudyThroughput(t *testing.T) {
	var all []Observation
	// Two runs per process count; throughput roughly doubles per scale
	// doubling, at 80% efficiency for the largest.
	for _, g := range []struct {
		procs string
		vals  []float64
	}{
		{"2", []float64{10, 10}},
		{"4", []float64{19, 21}},
		{"8", []float64{32, 32}},
	} {
		for _, v := range g.vals {
			all = append(all, obs("x", map[string]string{"numprocesses": g.procs}, v))
		}
	}
	points, err := ScalingStudy(all, "numprocesses", Throughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Scale != 2 || points[0].Speedup != 1 || points[0].Efficiency != 1 {
		t.Errorf("base point: %+v", points[0])
	}
	if points[1].Mean != 20 || points[1].Speedup != 2 || points[1].Efficiency != 1 {
		t.Errorf("4-proc point: %+v", points[1])
	}
	if math.Abs(points[2].Speedup-3.2) > 1e-9 || math.Abs(points[2].Efficiency-0.8) > 1e-9 {
		t.Errorf("8-proc point: %+v", points[2])
	}
	out := RenderScaling("gflops", "numprocesses", points)
	if !strings.Contains(out, "Scaling study") || !strings.Contains(out, "80%") {
		t.Errorf("render:\n%s", out)
	}
}

func TestScalingStudyTimeLike(t *testing.T) {
	all := []Observation{
		obs("a", map[string]string{"numprocesses": "2"}, 100),
		obs("b", map[string]string{"numprocesses": "8"}, 30),
	}
	points, err := ScalingStudy(all, "numprocesses", TimeLike)
	if err != nil {
		t.Fatal(err)
	}
	// Time dropped 100 -> 30 across a 4x scale increase.
	if math.Abs(points[1].Speedup-100.0/30.0) > 1e-9 {
		t.Errorf("time-like speedup = %v", points[1].Speedup)
	}
	if math.Abs(points[1].Efficiency-100.0/30.0/4.0) > 1e-9 {
		t.Errorf("efficiency = %v", points[1].Efficiency)
	}
}

func TestScalingStudyErrors(t *testing.T) {
	one := []Observation{obs("a", map[string]string{"numprocesses": "2"}, 1)}
	if _, err := ScalingStudy(one, "numprocesses", Throughput); err == nil {
		t.Error("single group: want error")
	}
	bad := []Observation{
		obs("a", map[string]string{"numprocesses": "two"}, 1),
		obs("b", nil, 1),
	}
	if _, err := ScalingStudy(bad, "numprocesses", Throughput); err == nil {
		t.Error("no usable groups: want error")
	}
}

func TestDiffExecutions(t *testing.T) {
	a := Observation{ExecID: "a", Results: []perfdata.Result{
		{Metric: "excl_time", Focus: "/Code/MPI/MPI_Send", Value: 10, Time: perfdata.TimeRange{Start: 0, End: 1}},
		{Metric: "excl_time", Focus: "/Code/MPI/MPI_Recv", Value: 5, Time: perfdata.TimeRange{Start: 0, End: 1}},
		{Metric: "excl_time", Focus: "/Code/MPI/MPI_Wait", Value: 2, Time: perfdata.TimeRange{Start: 0, End: 1}},
	}}
	b := Observation{ExecID: "b", Results: []perfdata.Result{
		{Metric: "excl_time", Focus: "/Code/MPI/MPI_Send", Value: 20, Time: perfdata.TimeRange{Start: 0, End: 1}},
		{Metric: "excl_time", Focus: "/Code/MPI/MPI_Recv", Value: 5.5, Time: perfdata.TimeRange{Start: 0, End: 1}},
		{Metric: "excl_time", Focus: "/Code/MPI/MPI_Bcast", Value: 3, Time: perfdata.TimeRange{Start: 0, End: 1}},
	}}
	deltas := DiffExecutions(a, b)
	if len(deltas) != 4 {
		t.Fatalf("deltas = %d", len(deltas))
	}
	// Sorted by |relative change| descending, one-sided entries last.
	if deltas[0].Focus != "/Code/MPI/MPI_Send" || deltas[0].RelChange != 100 {
		t.Errorf("top delta: %+v", deltas[0])
	}
	if deltas[1].Focus != "/Code/MPI/MPI_Recv" || deltas[1].RelChange != 10 {
		t.Errorf("second delta: %+v", deltas[1])
	}
	onlySeen := map[string]string{}
	for _, d := range deltas[2:] {
		onlySeen[d.Focus] = d.OnlyIn
	}
	if onlySeen["/Code/MPI/MPI_Wait"] != "A" || onlySeen["/Code/MPI/MPI_Bcast"] != "B" {
		t.Errorf("one-sided entries: %v", onlySeen)
	}
	out := RenderDiff("run-a", "run-b", deltas, 2)
	if !strings.Contains(out, "+100.0%") || !strings.Contains(out, "2 more") {
		t.Errorf("render:\n%s", out)
	}
}

func TestDiffMeansRepeatedBins(t *testing.T) {
	a := Observation{Results: []perfdata.Result{
		{Metric: "m", Focus: "/f", Value: 1, Time: perfdata.TimeRange{Start: 0, End: 1}},
		{Metric: "m", Focus: "/f", Value: 3, Time: perfdata.TimeRange{Start: 1, End: 2}},
	}}
	b := Observation{Results: []perfdata.Result{
		{Metric: "m", Focus: "/f", Value: 4, Time: perfdata.TimeRange{Start: 0, End: 2}},
	}}
	deltas := DiffExecutions(a, b)
	if len(deltas) != 1 || deltas[0].A != 2 || deltas[0].B != 4 || deltas[0].RelChange != 100 {
		t.Errorf("deltas = %+v", deltas)
	}
}

func TestFilterByValue(t *testing.T) {
	all := []Observation{
		obs("slow", nil, 1),
		obs("mid", nil, 5),
		obs("fast", nil, 9),
		{ExecID: "empty"}, // no results: never matches
	}
	got, err := FilterByValue(all, ">", 4)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{}
	for _, o := range got {
		ids = append(ids, o.ExecID)
	}
	if !reflect.DeepEqual(ids, []string{"mid", "fast"}) {
		t.Errorf("ids = %v", ids)
	}
	for _, op := range []string{"<", "<=", ">=", "=", "!="} {
		if _, err := FilterByValue(all, op, 5); err != nil {
			t.Errorf("op %s: %v", op, err)
		}
	}
	if _, err := FilterByValue(all, "~", 5); err == nil {
		t.Error("unknown op: want error")
	}
}

// TestCollectOverWire drives Collect against a live site.
func TestCollectOverWire(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 12, Seed: 61})
	w, err := mapping.NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	obs, err := Collect(execs, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 12 {
		t.Fatalf("observations = %d", len(obs))
	}
	for _, o := range obs {
		if o.ExecID == "" || o.Attrs["numprocesses"] == "" || len(o.Results) != 1 {
			t.Errorf("observation incomplete: %+v", o)
		}
		if o.Source != "HPL" {
			t.Errorf("source = %q", o.Source)
		}
	}
	// End-to-end scaling study over the wire-collected data.
	points, err := ScalingStudy(obs, "numprocesses", Throughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 || points[0].Speedup != 1 {
		t.Errorf("points = %+v", points)
	}
	// Bigger process counts generally deliver more gflops in the
	// generator's model.
	last := points[len(points)-1]
	if last.Mean <= points[0].Mean {
		t.Errorf("scaling not increasing: %+v", points)
	}
}
