// Package compare implements multi-execution performance analysis over the
// PPerfGrid virtual view — the analysis capability the paper defers to its
// PPerfDB integration ("apply the full-featured analysis capability ...
// to performance data from multiple executions of an application,
// regardless of the data format, schema, or location", section 7).
//
// It collects one metric across any set of bound Execution Grid service
// instances (which may span sites and storage formats), then supports the
// two analyses the PPerfDB line of work centres on:
//
//   - scaling studies: group executions by a numeric attribute (typically
//     numprocesses) and compute per-group means, parallel speedup, and
//     efficiency;
//   - execution diffing: align two runs' results by (metric, focus) and
//     report per-resource changes, the core of comparative profiling.
package compare

import (
	"fmt"
	"sort"
	"strconv"

	"pperfgrid/internal/client"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

// Observation is one execution's answer to a metric query, together with
// the execution's identity and attributes.
type Observation struct {
	Source  string // binding key of the owning site
	ExecID  string
	Attrs   map[string]string
	Results []perfdata.Result
}

// Mean returns the mean result value, or 0 with no results.
func (o Observation) Mean() float64 {
	if len(o.Results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range o.Results {
		sum += r.Value
	}
	return sum / float64(len(o.Results))
}

// Sum returns the summed result value.
func (o Observation) Sum() float64 {
	sum := 0.0
	for _, r := range o.Results {
		sum += r.Value
	}
	return sum
}

// Collect runs the query against every execution in parallel (one
// goroutine per Execution Grid service instance) and returns one
// Observation per execution, in input order. Any failure aborts the
// collection with a typed *ObservationError naming the site and
// instance; use CollectDetailed to harvest partial results instead.
func Collect(execs []*client.ExecutionRef, q perfdata.Query) ([]Observation, error) {
	obs, errs := CollectDetailed(execs, q)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return obs, nil
}

// MetricKind tells the scaling analysis how to orient speedup.
type MetricKind int

const (
	// Throughput metrics (gflops, bandwidth) improve upward: speedup at
	// scale s is value(s)/value(base).
	Throughput MetricKind = iota
	// TimeLike metrics (runtimesec, latency) improve downward: speedup is
	// value(base)/value(s).
	TimeLike
)

// ScalingPoint is one group of a scaling study.
type ScalingPoint struct {
	Scale      int // the grouping attribute's value, e.g. process count
	Executions int
	Mean       float64
	Speedup    float64 // relative to the smallest scale
	Efficiency float64 // Speedup / (Scale / baseScale)
}

// ScalingStudy groups observations by an integer attribute and computes
// the classic strong-scaling table. Observations lacking the attribute or
// with a non-integer value are skipped; at least two groups are required.
func ScalingStudy(obs []Observation, attr string, kind MetricKind) ([]ScalingPoint, error) {
	groups := map[int][]Observation{}
	for _, o := range obs {
		raw, ok := o.Attrs[attr]
		if !ok {
			continue
		}
		scale, err := strconv.Atoi(raw)
		if err != nil {
			continue
		}
		groups[scale] = append(groups[scale], o)
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("compare: scaling study needs >= 2 %q groups, got %d", attr, len(groups))
	}
	scales := make([]int, 0, len(groups))
	for s := range groups {
		scales = append(scales, s)
	}
	sort.Ints(scales)

	out := make([]ScalingPoint, 0, len(scales))
	for _, s := range scales {
		sum := 0.0
		for _, o := range groups[s] {
			sum += o.Mean()
		}
		out = append(out, ScalingPoint{
			Scale:      s,
			Executions: len(groups[s]),
			Mean:       sum / float64(len(groups[s])),
		})
	}
	base := out[0]
	for i := range out {
		if base.Mean != 0 {
			switch kind {
			case Throughput:
				out[i].Speedup = out[i].Mean / base.Mean
			case TimeLike:
				if out[i].Mean != 0 {
					out[i].Speedup = base.Mean / out[i].Mean
				}
			}
		}
		ideal := float64(out[i].Scale) / float64(base.Scale)
		if ideal != 0 {
			out[i].Efficiency = out[i].Speedup / ideal
		}
	}
	return out, nil
}

// RenderScaling formats a scaling study.
func RenderScaling(metric, attr string, points []ScalingPoint) string {
	header := []string{attr, "Executions", "Mean " + metric, "Speedup", "Efficiency"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			strconv.Itoa(p.Scale), strconv.Itoa(p.Executions),
			fmt.Sprintf("%.4g", p.Mean), fmt.Sprintf("%.2f", p.Speedup),
			fmt.Sprintf("%.0f%%", p.Efficiency*100),
		})
	}
	return viz.Table(fmt.Sprintf("Scaling study — %s vs %s", metric, attr), header, rows)
}

// Delta is one aligned (metric, focus) pair's change between two runs.
type Delta struct {
	Metric string
	Focus  string
	A, B   float64 // mean values in each run
	// RelChange is (B-A)/A as a percentage; +Inf-like cases report 0 with
	// OnlyIn set instead.
	RelChange float64
	// OnlyIn marks resources present in just one run: "A", "B", or "".
	OnlyIn string
}

// DiffExecutions aligns two observations by (metric, focus) and reports
// per-resource changes, sorted by descending absolute relative change with
// one-sided entries last.
func DiffExecutions(a, b Observation) []Delta {
	type key struct{ metric, focus string }
	agg := func(o Observation) map[key][]float64 {
		m := map[key][]float64{}
		for _, r := range o.Results {
			k := key{r.Metric, r.Focus}
			m[k] = append(m[k], r.Value)
		}
		return m
	}
	mean := func(vs []float64) float64 {
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		return sum / float64(len(vs))
	}
	am, bm := agg(a), agg(b)
	keys := map[key]bool{}
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	var out []Delta
	for k := range keys {
		d := Delta{Metric: k.metric, Focus: k.focus}
		av, aok := am[k]
		bv, bok := bm[k]
		switch {
		case aok && bok:
			d.A, d.B = mean(av), mean(bv)
			if d.A != 0 {
				d.RelChange = (d.B - d.A) / d.A * 100
			}
		case aok:
			d.A = mean(av)
			d.OnlyIn = "A"
		default:
			d.B = mean(bv)
			d.OnlyIn = "B"
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if (out[i].OnlyIn == "") != (out[j].OnlyIn == "") {
			return out[i].OnlyIn == ""
		}
		ai, aj := out[i].RelChange, out[j].RelChange
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].Focus < out[j].Focus
	})
	return out
}

// RenderDiff formats an execution diff; top bounds the rows shown (0 =
// all).
func RenderDiff(aName, bName string, deltas []Delta, top int) string {
	header := []string{"Metric", "Focus", aName, bName, "Change"}
	var rows [][]string
	for i, d := range deltas {
		if top > 0 && i >= top {
			rows = append(rows, []string{fmt.Sprintf("... %d more", len(deltas)-top)})
			break
		}
		change := fmt.Sprintf("%+.1f%%", d.RelChange)
		if d.OnlyIn != "" {
			change = "only in " + d.OnlyIn
		}
		rows = append(rows, []string{
			d.Metric, d.Focus, fmt.Sprintf("%.4g", d.A), fmt.Sprintf("%.4g", d.B), change,
		})
	}
	return viz.Table(fmt.Sprintf("Execution diff — %s vs %s", aName, bName), header, rows)
}

// FilterByValue keeps observations whose aggregate satisfies the
// comparison — the paper's future-work Execution Query Panel "option to
// filter results based on a metric value". op is one of "<", "<=", ">",
// ">=", "=", "!=".
func FilterByValue(obs []Observation, op string, threshold float64) ([]Observation, error) {
	pred, err := valuePredicate(op, threshold)
	if err != nil {
		return nil, err
	}
	var out []Observation
	for _, o := range obs {
		if len(o.Results) > 0 && pred(o.Mean()) {
			out = append(out, o)
		}
	}
	return out, nil
}

func valuePredicate(op string, threshold float64) (func(float64) bool, error) {
	switch op {
	case "<":
		return func(v float64) bool { return v < threshold }, nil
	case "<=":
		return func(v float64) bool { return v <= threshold }, nil
	case ">":
		return func(v float64) bool { return v > threshold }, nil
	case ">=":
		return func(v float64) bool { return v >= threshold }, nil
	case "=":
		return func(v float64) bool { return v == threshold }, nil
	case "!=":
		return func(v float64) bool { return v != threshold }, nil
	}
	return nil, fmt.Errorf("compare: unknown operator %q", op)
}
