package compare

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/federation"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// scriptedTransport is a minimal federation.Transport for conversion and
// error-path tests.
type scriptedTransport struct {
	fn func(ctx context.Context, site string) (*federation.SiteData, error)
}

func (s *scriptedTransport) Do(ctx context.Context, site string, q perfdata.Query) (*federation.SiteData, error) {
	return s.fn(ctx, site)
}

// TestCollectFederatedPartialHarvest pins the typed-error contract: a
// down site costs its observations, not the study — the healthy sites'
// data arrives converted, the failure arrives as one *ObservationError
// with site, cause, and retryability filled in.
func TestCollectFederatedPartialHarvest(t *testing.T) {
	tr := &scriptedTransport{fn: func(ctx context.Context, site string) (*federation.SiteData, error) {
		if site == "LLNL/RMA" {
			return nil, &federation.SiteError{Site: site, Cause: errors.New("connection refused"), Retryable: true}
		}
		return &federation.SiteData{Site: site, Observations: []federation.Observation{{
			ExecID: site + "-e0",
			Attrs: []perfdata.KV{
				{Name: "id", Value: site + "-e0"},
				{Name: "numprocesses", Value: "4"},
			},
			Results: []perfdata.Result{{Metric: "gflops", Focus: "/", Type: "hpl", Value: 2.5}},
		}}}, nil
	}}
	e := federation.New(tr, federation.Config{
		PerSiteTimeout: time.Second, DisableHedging: true, DisableBreaker: true, RetryBudget: -1,
	})

	obs, errs, report := CollectFederated(context.Background(),
		e, []string{"PSU/HPL", "LLNL/RMA", "UO/SMG98"}, perfdata.Query{Metric: "gflops"})

	if len(obs) != 2 {
		t.Fatalf("observations = %d, want 2 (healthy sites)", len(obs))
	}
	want := Observation{
		Source: "PSU/HPL", ExecID: "PSU/HPL-e0",
		Attrs:   map[string]string{"numprocesses": "4"},
		Results: []perfdata.Result{{Metric: "gflops", Focus: "/", Type: "hpl", Value: 2.5}},
	}
	if !reflect.DeepEqual(obs[0], want) {
		t.Fatalf("converted observation:\n got %+v\nwant %+v", obs[0], want)
	}
	if len(errs) != 1 {
		t.Fatalf("errors = %d, want 1", len(errs))
	}
	oe := errs[0]
	if oe.Site != "LLNL/RMA" || !oe.Retryable || oe.Timeout || oe.Cause == nil {
		t.Fatalf("typed error: %+v", oe)
	}
	var se *federation.SiteError
	if !errors.As(oe, &se) {
		t.Fatalf("ObservationError does not unwrap to SiteError: %v", oe)
	}
	if report.Answered != 2 || report.Errored != 1 {
		t.Fatalf("report: %s", report.Summary())
	}
}

// TestCollectReturnsTypedError pins that the legacy all-or-nothing
// Collect now fails with a typed *ObservationError.
func TestCollectReturnsTypedError(t *testing.T) {
	site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{
		mustWide(t, datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: 64}))}})
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	site.Close() // kill the site out from under the collection

	_, err = Collect(execs, perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{End: 1e9}, Type: "hpl"})
	if err == nil {
		t.Fatal("collection from a dead site succeeded")
	}
	var oe *ObservationError
	if !errors.As(err, &oe) {
		t.Fatalf("error is %T, want *ObservationError: %v", err, err)
	}
	if oe.Site != "HPL" || oe.Cause == nil {
		t.Fatalf("typed error fields: %+v", oe)
	}
}

// TestCollectFederatedMatchesDirectCollect is the compare-level
// differential oracle: over a live fault-free site, routing through the
// federation engine yields exactly the observations direct collection
// yields.
func TestCollectFederatedMatchesDirectCollect(t *testing.T) {
	site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{
		mustWide(t, datagen.HPL(datagen.HPLConfig{Executions: 6, Seed: 65}))}})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}

	direct := client.NewWithoutRegistry()
	db, err := direct.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	execs, err := db.QueryExecutions(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(execs, q)
	if err != nil {
		t.Fatal(err)
	}

	fed := client.NewWithoutRegistry()
	fb, err := fed.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		t.Fatal(err)
	}
	tr := federation.NewBindingTransport()
	tr.AddSite("HPL", fb)
	e := federation.New(tr, federation.Config{})
	got, errs, report := CollectFederated(context.Background(), e, []string{"HPL"}, q)
	if len(errs) != 0 || !report.Complete {
		t.Fatalf("fault-free federated collection failed: %v, %s", errs, report.Summary())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("federated observations diverge from direct Collect:\n got %+v\nwant %+v", got, want)
	}
}

func mustWide(t *testing.T, d *datagen.Dataset) mapping.ApplicationWrapper {
	t.Helper()
	w, err := mapping.NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
