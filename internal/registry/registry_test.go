package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pperfgrid/internal/container"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
)

func factoryHandle(name string) string {
	return gsh.Persistent("site-a:8080", name+"Factory").String()
}

func TestPublishAndFind(t *testing.T) {
	r := New()
	if err := r.PublishOrganization(Organization{Name: "PSU", Contact: "karavanic@cs.pdx.edu", Description: "Portland State"}); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishOrganization(Organization{Name: "LLNL", Contact: "presta@llnl.gov"}); err != nil {
		t.Fatal(err)
	}
	all := r.FindOrganizations("")
	if len(all) != 2 || all[0].Name != "LLNL" || all[1].Name != "PSU" {
		t.Errorf("FindOrganizations(\"\") = %+v", all)
	}
	got := r.FindOrganizations("psu")
	if len(got) != 1 || got[0].Contact != "karavanic@cs.pdx.edu" {
		t.Errorf("case-insensitive find: %+v", got)
	}
	if len(r.FindOrganizations("zzz")) != 0 {
		t.Error("bogus query matched")
	}
}

func TestRepublishOrganizationUpdates(t *testing.T) {
	r := New()
	_ = r.PublishOrganization(Organization{Name: "PSU", Contact: "old"})
	_ = r.PublishService(ServiceEntry{Organization: "PSU", Name: "HPL", FactoryHandle: factoryHandle("Application")})
	_ = r.PublishOrganization(Organization{Name: "PSU", Contact: "new"})
	got := r.FindOrganizations("PSU")
	if got[0].Contact != "new" {
		t.Errorf("contact = %q", got[0].Contact)
	}
	// Services survive the update.
	svcs, err := r.Services("PSU")
	if err != nil || len(svcs) != 1 {
		t.Errorf("services after republish: %v %v", svcs, err)
	}
}

func TestPublishServiceValidation(t *testing.T) {
	r := New()
	_ = r.PublishOrganization(Organization{Name: "PSU"})
	good := ServiceEntry{Organization: "PSU", Name: "HPL", Description: "linpack", FactoryHandle: factoryHandle("Application")}
	if err := r.PublishService(good); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishService(good); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: got %v", err)
	}
	bad := good
	bad.Name = "RMA"
	bad.FactoryHandle = "not-a-handle"
	if err := r.PublishService(bad); err == nil {
		t.Error("bad handle: want error")
	}
	orphan := good
	orphan.Organization = "nobody"
	if err := r.PublishService(orphan); !errors.Is(err, ErrNoSuchOrganization) {
		t.Errorf("orphan: got %v", err)
	}
	empty := good
	empty.Name = ""
	if err := r.PublishService(empty); err == nil {
		t.Error("empty name: want error")
	}
	pipe := good
	pipe.Name = "a|b"
	if err := r.PublishService(pipe); err == nil {
		t.Error("pipe in name: want error")
	}
}

func TestOrganizationNameValidation(t *testing.T) {
	r := New()
	if err := r.PublishOrganization(Organization{Name: ""}); err == nil {
		t.Error("empty org name: want error")
	}
	if err := r.PublishOrganization(Organization{Name: "a|b"}); err == nil {
		t.Error("pipe in org name: want error")
	}
}

func TestRemove(t *testing.T) {
	r := New()
	_ = r.PublishOrganization(Organization{Name: "PSU"})
	_ = r.PublishService(ServiceEntry{Organization: "PSU", Name: "HPL", FactoryHandle: factoryHandle("A")})
	_ = r.PublishService(ServiceEntry{Organization: "PSU", Name: "RMA", FactoryHandle: factoryHandle("B")})

	if err := r.RemoveService("PSU", "HPL"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveService("PSU", "HPL"); !errors.Is(err, ErrNoSuchService) {
		t.Errorf("double remove: %v", err)
	}
	if err := r.RemoveService("nope", "HPL"); !errors.Is(err, ErrNoSuchOrganization) {
		t.Errorf("remove from missing org: %v", err)
	}
	svcs, _ := r.Services("PSU")
	if len(svcs) != 1 || svcs[0].Name != "RMA" {
		t.Errorf("remaining: %+v", svcs)
	}
	if err := r.RemoveOrganization("PSU"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveOrganization("PSU"); !errors.Is(err, ErrNoSuchOrganization) {
		t.Errorf("double org remove: %v", err)
	}
	if _, err := r.Services("PSU"); err == nil {
		t.Error("services of removed org: want error")
	}
}

func TestAllServicesSorted(t *testing.T) {
	r := New()
	_ = r.PublishOrganization(Organization{Name: "B-org"})
	_ = r.PublishOrganization(Organization{Name: "A-org"})
	_ = r.PublishService(ServiceEntry{Organization: "B-org", Name: "x", FactoryHandle: factoryHandle("X")})
	_ = r.PublishService(ServiceEntry{Organization: "A-org", Name: "z", FactoryHandle: factoryHandle("Z")})
	_ = r.PublishService(ServiceEntry{Organization: "A-org", Name: "a", FactoryHandle: factoryHandle("A")})
	all := r.AllServices()
	var order []string
	for _, e := range all {
		order = append(order, e.Organization+"/"+e.Name)
	}
	want := []string{"A-org/a", "A-org/z", "B-org/x"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v", order)
	}
}

func TestServiceEntryRoundTrip(t *testing.T) {
	e := ServiceEntry{Organization: "PSU", Name: "HPL", Description: "has | pipe", FactoryHandle: factoryHandle("A")}
	got, err := ParseServiceEntry(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// Description parses up to the handle; handle is the 4th field so the
	// pipe inside description would break framing — the registry rejects
	// pipes in names, and descriptions are the 3rd of 4 SplitN fields, so
	// a pipe in the description shifts the handle. Verify the documented
	// limitation explicitly: round trip only without pipes.
	if got.Organization != "PSU" || got.Name != "HPL" {
		t.Errorf("got %+v", got)
	}
	clean := ServiceEntry{Organization: "PSU", Name: "HPL", Description: "no pipes here", FactoryHandle: factoryHandle("A")}
	got, err = ParseServiceEntry(clean.Encode())
	if err != nil || got != clean {
		t.Errorf("clean round trip: %+v, %v", got, err)
	}
	if _, err := ParseServiceEntry("too|few"); err == nil {
		t.Error("short entry: want error")
	}
}

func TestWireInvokeUnknownOp(t *testing.T) {
	r := New()
	if _, err := r.Invoke("bogus", nil); !errors.Is(err, ogsi.ErrUnknownOperation) {
		t.Errorf("got %v", err)
	}
}

func TestServiceData(t *testing.T) {
	r := New()
	_ = r.PublishOrganization(Organization{Name: "PSU"})
	_ = r.PublishService(ServiceEntry{Organization: "PSU", Name: "HPL", FactoryHandle: factoryHandle("A")})
	sd := r.ServiceData()
	if sd["organizationCount"][0] != "1" || sd["serviceCount"][0] != "1" {
		t.Errorf("service data = %v", sd)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			org := fmt.Sprintf("org%d", w)
			if err := r.PublishOrganization(Organization{Name: org}); err != nil {
				t.Errorf("org: %v", err)
				return
			}
			for i := 0; i < 20; i++ {
				e := ServiceEntry{Organization: org, Name: fmt.Sprintf("svc%d", i), FactoryHandle: factoryHandle("A")}
				if err := r.PublishService(e); err != nil {
					t.Errorf("svc: %v", err)
					return
				}
				if _, err := r.Services(org); err != nil {
					t.Errorf("list: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.AllServices()); got != 8*20 {
		t.Errorf("total services = %d", got)
	}
}

// TestClientOverWire runs the full remote path: registry deployed in a
// container, accessed via the typed Client proxy — the paper's Figure 8
// workflow.
func TestClientOverWire(t *testing.T) {
	c := container.New(ogsi.NewHosting("x:0"), container.Options{})
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := Deploy(c.Hosting(), New()); err != nil {
		t.Fatal(err)
	}

	client := Connect(c.Host())
	if err := client.PublishOrganization(Organization{Name: "PSU", Contact: "pperfgrid@pdx.edu", Description: "Portland State University"}); err != nil {
		t.Fatal(err)
	}
	entry := ServiceEntry{Organization: "PSU", Name: "HPL", Description: "Linpack data", FactoryHandle: factoryHandle("Application")}
	if err := client.PublishService(entry); err != nil {
		t.Fatal(err)
	}

	orgs, err := client.FindOrganizations("port")
	if err != nil {
		t.Fatal(err)
	}
	if len(orgs) != 0 {
		t.Errorf("name-substring query matched description: %+v", orgs)
	}
	orgs, err = client.FindOrganizations("PSU")
	if err != nil || len(orgs) != 1 || orgs[0].Contact != "pperfgrid@pdx.edu" {
		t.Fatalf("find: %+v, %v", orgs, err)
	}

	svcs, err := client.Services("PSU")
	if err != nil || len(svcs) != 1 || svcs[0] != entry {
		t.Fatalf("services: %+v, %v", svcs, err)
	}
	all, err := client.AllServices()
	if err != nil || len(all) != 1 {
		t.Fatalf("all services: %+v, %v", all, err)
	}

	if err := client.RemoveService("PSU", "HPL"); err != nil {
		t.Fatal(err)
	}
	if err := client.RemoveService("PSU", "HPL"); err == nil {
		t.Error("remote double remove: want fault")
	}
	if err := client.RemoveOrganization("PSU"); err != nil {
		t.Fatal(err)
	}
	// Server-side error surfaces through the proxy.
	if _, err := client.Services("PSU"); err == nil {
		t.Error("services of removed org over wire: want fault")
	}
}
