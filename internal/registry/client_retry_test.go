package registry

import (
	"context"
	"errors"
	"testing"
	"time"

	"pperfgrid/internal/federation/backoff"
	"pperfgrid/internal/soap"
)

// fakeLookupCaller scripts lookup responses per call index.
type fakeLookupCaller struct {
	calls int
	fn    func(ctx context.Context, call int) ([]string, error)
}

func (f *fakeLookupCaller) CallContext(ctx context.Context, op string, params ...string) ([]string, error) {
	k := f.calls
	f.calls++
	return f.fn(ctx, k)
}

func hardenedClient(f *fakeLookupCaller) *Client {
	c := &Client{call: f, lookupTimeout: 100 * time.Millisecond, policy: backoff.Default()}
	c.policy.Base = time.Millisecond
	c.policy.Max = 2 * time.Millisecond
	return c
}

// TestLookupRetriesOnceOnTransientFailure pins the hardening contract:
// a transient failure earns exactly one retry — the second attempt's
// answer is returned, and exactly two calls hit the wire.
func TestLookupRetriesOnceOnTransientFailure(t *testing.T) {
	f := &fakeLookupCaller{fn: func(ctx context.Context, call int) ([]string, error) {
		if call == 0 {
			return nil, errors.New("connection reset")
		}
		return []string{"PSU|a@psu.edu|HPC center"}, nil
	}}
	c := hardenedClient(f)
	orgs, err := c.FindOrganizations("")
	if err != nil || len(orgs) != 1 || orgs[0].Name != "PSU" {
		t.Fatalf("FindOrganizations after transient failure: %v, %v", orgs, err)
	}
	if f.calls != 2 {
		t.Fatalf("transient failure drove %d calls, want exactly 2 (1 + 1 retry)", f.calls)
	}
}

// TestLookupGivesUpAfterOneRetry pins the upper bound: persistent
// transient failure means exactly two calls, then the error surfaces.
func TestLookupGivesUpAfterOneRetry(t *testing.T) {
	f := &fakeLookupCaller{fn: func(ctx context.Context, call int) ([]string, error) {
		return nil, errors.New("connection refused")
	}}
	c := hardenedClient(f)
	if _, err := c.AllServices(); err == nil {
		t.Fatal("persistent failure did not surface")
	}
	if f.calls != 2 {
		t.Fatalf("persistent failure drove %d calls, want exactly 2", f.calls)
	}
}

// TestLookupDoesNotRetryFaults pins that a SOAP fault — the registry
// answering, not the network failing — is never retried.
func TestLookupDoesNotRetryFaults(t *testing.T) {
	f := &fakeLookupCaller{fn: func(ctx context.Context, call int) ([]string, error) {
		return nil, &soap.Fault{Code: "Client", String: "no such organization"}
	}}
	c := hardenedClient(f)
	var fault *soap.Fault
	if _, err := c.Services("nowhere"); !errors.As(err, &fault) {
		t.Fatalf("fault not surfaced: %v", err)
	}
	if f.calls != 1 {
		t.Fatalf("SOAP fault drove %d calls, want exactly 1 (no retry)", f.calls)
	}
}

// TestLookupBoundsEachAttempt pins the timeout: a registry that never
// answers cannot hang a lookup — each attempt gets a deadline-carrying
// context, and the whole call resolves within the two-attempt envelope.
func TestLookupBoundsEachAttempt(t *testing.T) {
	f := &fakeLookupCaller{fn: func(ctx context.Context, call int) ([]string, error) {
		if _, ok := ctx.Deadline(); !ok {
			t.Error("lookup attempt carried no deadline")
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	c := hardenedClient(f)
	start := time.Now()
	_, err := c.FindOrganizations("")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dead registry lookup did not error")
	}
	if elapsed > time.Second {
		t.Fatalf("dead registry lookup took %v, want ~2x the 100ms attempt bound", elapsed)
	}
	if f.calls != 2 {
		t.Fatalf("dead registry drove %d calls, want 2", f.calls)
	}
}
