// Package registry implements the UDDI-compliant registry server of the
// paper's Virtualization Layer (section 5.5.1) as a grid service, plus the
// Organization/Service client proxies the PPerfGrid client uses in place
// of the raw UDDI4J API.
//
// Publishers create an Organization entry (contact information) and one
// Service entry per Application dataset they expose; the Service entry
// carries the Application factory's GSH so consumers can bind to it and
// call CreateService. Consumers browse all organizations or query them by
// name, then bind to the services they select.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/wsdl"
)

// ServiceType is the registry's grid service type name.
const ServiceType = "UDDIRegistry"

// Organization is one publisher: a research group or site.
type Organization struct {
	Name        string
	Contact     string
	Description string
}

// ServiceEntry is one published Application dataset.
type ServiceEntry struct {
	Organization  string
	Name          string
	Description   string
	FactoryHandle string
}

// Encode renders the entry in wire form.
func (s ServiceEntry) Encode() string {
	return strings.Join([]string{s.Organization, s.Name, s.Description, s.FactoryHandle}, "|")
}

// ParseServiceEntry decodes the wire form.
func ParseServiceEntry(s string) (ServiceEntry, error) {
	parts := strings.SplitN(s, "|", 4)
	if len(parts) != 4 {
		return ServiceEntry{}, fmt.Errorf("registry: malformed service entry %q", s)
	}
	return ServiceEntry{Organization: parts[0], Name: parts[1], Description: parts[2], FactoryHandle: parts[3]}, nil
}

// Errors returned by registry operations.
var (
	ErrNoSuchOrganization = errors.New("registry: no such organization")
	ErrNoSuchService      = errors.New("registry: no such service")
	ErrDuplicate          = errors.New("registry: duplicate entry")
)

// Registry is the registry state and grid service implementation.
type Registry struct {
	mu       sync.RWMutex
	orgs     map[string]Organization
	services map[string]map[string]ServiceEntry // org -> service name -> entry
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		orgs:     make(map[string]Organization),
		services: make(map[string]map[string]ServiceEntry),
	}
}

// PublishOrganization records a new organization. Re-publishing an
// existing name updates its contact information.
func (r *Registry) PublishOrganization(o Organization) error {
	if o.Name == "" || strings.Contains(o.Name, "|") {
		return fmt.Errorf("registry: bad organization name %q", o.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.services[o.Name]; !ok {
		r.services[o.Name] = make(map[string]ServiceEntry)
	}
	r.orgs[o.Name] = o
	return nil
}

// PublishService records a service under an existing organization. The
// factory handle must be a well-formed GSH. Duplicate service names within
// an organization are rejected.
func (r *Registry) PublishService(e ServiceEntry) error {
	if e.Name == "" || strings.Contains(e.Name, "|") {
		return fmt.Errorf("registry: bad service name %q", e.Name)
	}
	if _, err := gsh.Parse(e.FactoryHandle); err != nil {
		return fmt.Errorf("registry: service %q: %w", e.Name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	svcs, ok := r.services[e.Organization]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchOrganization, e.Organization)
	}
	if _, dup := svcs[e.Name]; dup {
		return fmt.Errorf("%w: service %q in %q", ErrDuplicate, e.Name, e.Organization)
	}
	svcs[e.Name] = e
	return nil
}

// RemoveService deletes a published service.
func (r *Registry) RemoveService(org, name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	svcs, ok := r.services[org]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchOrganization, org)
	}
	if _, ok := svcs[name]; !ok {
		return fmt.Errorf("%w: %q in %q", ErrNoSuchService, name, org)
	}
	delete(svcs, name)
	return nil
}

// RemoveOrganization deletes an organization and all of its services.
func (r *Registry) RemoveOrganization(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.orgs[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchOrganization, name)
	}
	delete(r.orgs, name)
	delete(r.services, name)
	return nil
}

// FindOrganizations returns organizations whose names contain the query
// substring (case-insensitive); the empty query returns all. Results are
// sorted by name.
func (r *Registry) FindOrganizations(query string) []Organization {
	q := strings.ToLower(query)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Organization
	for name, o := range r.orgs {
		if q == "" || strings.Contains(strings.ToLower(name), q) {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Services returns the services of one organization, sorted by name.
func (r *Registry) Services(org string) ([]ServiceEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	svcs, ok := r.services[org]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchOrganization, org)
	}
	out := make([]ServiceEntry, 0, len(svcs))
	for _, e := range svcs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// AllServices returns every published service across organizations.
func (r *Registry) AllServices() []ServiceEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ServiceEntry
	for _, svcs := range r.services {
		for _, e := range svcs {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Organization != out[j].Organization {
			return out[i].Organization < out[j].Organization
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Registry PortType operation names.
const (
	OpPublishOrganization = "publishOrganization"
	OpPublishService      = "publishService"
	OpRemoveService       = "removeService"
	OpRemoveOrganization  = "removeOrganization"
	OpFindOrganizations   = "findOrganizations"
	OpGetServices         = "getServices"
	OpGetAllServices      = "getAllServices"
)

// Definition describes the registry's PortType.
func Definition() *wsdl.Definition {
	return wsdl.New(ServiceType, wsdl.PortType{Name: ServiceType, Operations: []wsdl.Operation{
		wsdl.Op(OpPublishOrganization, "Create or update an Organization entry with contact information.",
			wsdl.P("name"), wsdl.P("contact"), wsdl.P("description")),
		wsdl.Op(OpPublishService, "Publish a Service entry carrying an Application factory GSH under an Organization.",
			wsdl.P("organization"), wsdl.P("name"), wsdl.P("description"), wsdl.P("factoryHandle")),
		wsdl.Op(OpRemoveService, "Remove a published Service entry.",
			wsdl.P("organization"), wsdl.P("name")),
		wsdl.Op(OpRemoveOrganization, "Remove an Organization and all of its Services.",
			wsdl.P("name")),
		wsdl.Op(OpFindOrganizations, "Find Organizations by name substring; empty query returns all. Each result is name|contact|description.",
			wsdl.P("query")),
		wsdl.Op(OpGetServices, "List the Services of one Organization. Each result is organization|name|description|factoryHandle.",
			wsdl.P("organization")),
		wsdl.Op(OpGetAllServices, "List every published Service."),
	}})
}

// Invoke implements the grid service wire protocol.
func (r *Registry) Invoke(op string, params []string) ([]string, error) {
	switch op {
	case OpPublishOrganization:
		if err := r.PublishOrganization(Organization{Name: params[0], Contact: params[1], Description: params[2]}); err != nil {
			return nil, err
		}
		return []string{"ok"}, nil
	case OpPublishService:
		err := r.PublishService(ServiceEntry{
			Organization: params[0], Name: params[1], Description: params[2], FactoryHandle: params[3],
		})
		if err != nil {
			return nil, err
		}
		return []string{"ok"}, nil
	case OpRemoveService:
		if err := r.RemoveService(params[0], params[1]); err != nil {
			return nil, err
		}
		return []string{"ok"}, nil
	case OpRemoveOrganization:
		if err := r.RemoveOrganization(params[0]); err != nil {
			return nil, err
		}
		return []string{"ok"}, nil
	case OpFindOrganizations:
		orgs := r.FindOrganizations(params[0])
		out := make([]string, len(orgs))
		for i, o := range orgs {
			out[i] = strings.Join([]string{o.Name, o.Contact, o.Description}, "|")
		}
		return out, nil
	case OpGetServices:
		svcs, err := r.Services(params[0])
		if err != nil {
			return nil, err
		}
		return encodeEntries(svcs), nil
	case OpGetAllServices:
		return encodeEntries(r.AllServices()), nil
	}
	return nil, fmt.Errorf("%w: %q on registry", ogsi.ErrUnknownOperation, op)
}

func encodeEntries(svcs []ServiceEntry) []string {
	out := make([]string, len(svcs))
	for i, e := range svcs {
		out[i] = e.Encode()
	}
	return out
}

// ServiceData publishes registry statistics.
func (r *Registry) ServiceData() map[string][]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, svcs := range r.services {
		total += len(svcs)
	}
	return map[string][]string{
		"organizationCount": {fmt.Sprintf("%d", len(r.orgs))},
		"serviceCount":      {fmt.Sprintf("%d", total)},
	}
}

// Deploy hosts the registry as a persistent grid service.
func Deploy(h *ogsi.Hosting, r *Registry) (*ogsi.Instance, error) {
	return h.DeployPersistent(ServiceType, r, Definition())
}
