package registry

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func populated(t *testing.T) *Registry {
	t.Helper()
	r := New()
	if err := r.PublishOrganization(Organization{Name: "PSU", Contact: "a@pdx.edu", Description: "Portland State"}); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishOrganization(Organization{Name: "LLNL", Contact: "b@llnl.gov"}); err != nil {
		t.Fatal(err)
	}
	for _, e := range []ServiceEntry{
		{Organization: "PSU", Name: "HPL", Description: "linpack", FactoryHandle: factoryHandle("A")},
		{Organization: "PSU", Name: "SMG98", Description: "traces", FactoryHandle: factoryHandle("B")},
		{Organization: "LLNL", Name: "RMA", FactoryHandle: factoryHandle("C")},
	} {
		if err := r.PublishService(e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := populated(t)
	data, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.FindOrganizations(""), r.FindOrganizations("")) {
		t.Error("organizations differ after restore")
	}
	if !reflect.DeepEqual(got.AllServices(), r.AllServices()) {
		t.Error("services differ after restore")
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore([]byte("not json")); err == nil {
		t.Error("bad json: want error")
	}
	if _, err := Restore([]byte(`{"version": 99}`)); err == nil {
		t.Error("bad version: want error")
	}
	// A snapshot with a service referencing a missing organization is
	// rejected rather than silently dropped.
	bad := `{"version":1,"services":[{"Organization":"ghost","Name":"X","FactoryHandle":"` + factoryHandle("A") + `"}]}`
	if _, err := Restore([]byte(bad)); err == nil {
		t.Error("orphan service: want error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := populated(t)
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Atomic write leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.AllServices(), r.AllServices()) {
		t.Error("services differ after file round trip")
	}
}

func TestLoadFileMissingYieldsEmpty(t *testing.T) {
	r, err := LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FindOrganizations("")) != 0 {
		t.Error("missing file did not yield empty registry")
	}
}

func TestLoadFileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := os.WriteFile(path, []byte("{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("corrupt file: want error")
	}
}
