package registry

import (
	"fmt"
	"strings"

	"pperfgrid/internal/container"
	"pperfgrid/internal/gsh"
)

// Client is the typed proxy PPerfGrid clients and publishers use against a
// remote registry — the analogue of the paper's Organization and Service
// proxy classes over UDDI4J.
type Client struct {
	stub *container.Stub
}

// Connect binds a client to the registry hosted at the given host:port.
func Connect(host string) *Client {
	return &Client{stub: container.Dial(gsh.Persistent(host, ServiceType))}
}

// ConnectHandle binds a client to a registry named by a full GSH.
func ConnectHandle(h gsh.Handle) *Client {
	return &Client{stub: container.Dial(h)}
}

// Stub exposes the underlying stub, e.g. to install security headers.
func (c *Client) Stub() *container.Stub { return c.stub }

// PublishOrganization creates or updates an organization entry.
func (c *Client) PublishOrganization(o Organization) error {
	_, err := c.stub.Call(OpPublishOrganization, o.Name, o.Contact, o.Description)
	return err
}

// PublishService publishes a service entry.
func (c *Client) PublishService(e ServiceEntry) error {
	_, err := c.stub.Call(OpPublishService, e.Organization, e.Name, e.Description, e.FactoryHandle)
	return err
}

// RemoveService removes one published service.
func (c *Client) RemoveService(org, name string) error {
	_, err := c.stub.Call(OpRemoveService, org, name)
	return err
}

// RemoveOrganization removes an organization and its services.
func (c *Client) RemoveOrganization(name string) error {
	_, err := c.stub.Call(OpRemoveOrganization, name)
	return err
}

// FindOrganizations queries organizations by name substring; empty query
// returns all.
func (c *Client) FindOrganizations(query string) ([]Organization, error) {
	rows, err := c.stub.Call(OpFindOrganizations, query)
	if err != nil {
		return nil, err
	}
	out := make([]Organization, len(rows))
	for i, row := range rows {
		parts := strings.SplitN(row, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("registry: malformed organization row %q", row)
		}
		out[i] = Organization{Name: parts[0], Contact: parts[1], Description: parts[2]}
	}
	return out, nil
}

// Services lists the services published by one organization.
func (c *Client) Services(org string) ([]ServiceEntry, error) {
	rows, err := c.stub.Call(OpGetServices, org)
	if err != nil {
		return nil, err
	}
	return parseEntries(rows)
}

// AllServices lists every published service.
func (c *Client) AllServices() ([]ServiceEntry, error) {
	rows, err := c.stub.Call(OpGetAllServices)
	if err != nil {
		return nil, err
	}
	return parseEntries(rows)
}

func parseEntries(rows []string) ([]ServiceEntry, error) {
	out := make([]ServiceEntry, len(rows))
	for i, row := range rows {
		e, err := ParseServiceEntry(row)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
