package registry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/federation/backoff"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/soap"
)

// Lookup hardening defaults: every discovery call is bounded, and a
// transient failure earns exactly one jittered retry. Registry lookups
// gate every federated query's site discovery, so they must neither hang
// on a dead registry nor give up on a single dropped packet.
const (
	// DefaultLookupTimeout bounds one lookup/browse attempt.
	DefaultLookupTimeout = 2 * time.Second
	// lookupRetries is the number of extra attempts after a transient
	// lookup failure.
	lookupRetries = 1
)

// lookupCaller abstracts the registry stub's context-aware call for the
// lookup path, so tests can pin the retry count without a wire.
type lookupCaller interface {
	CallContext(ctx context.Context, op string, params ...string) ([]string, error)
}

// Client is the typed proxy PPerfGrid clients and publishers use against a
// remote registry — the analogue of the paper's Organization and Service
// proxy classes over UDDI4J.
type Client struct {
	stub *container.Stub
	call lookupCaller

	lookupTimeout time.Duration
	policy        backoff.Policy
}

// Connect binds a client to the registry hosted at the given host:port.
func Connect(host string) *Client {
	return newClient(container.Dial(gsh.Persistent(host, ServiceType)))
}

// ConnectHandle binds a client to a registry named by a full GSH.
func ConnectHandle(h gsh.Handle) *Client {
	return newClient(container.Dial(h))
}

func newClient(stub *container.Stub) *Client {
	return &Client{stub: stub, call: stub, lookupTimeout: DefaultLookupTimeout, policy: backoff.Default()}
}

// Stub exposes the underlying stub, e.g. to install security headers.
func (c *Client) Stub() *container.Stub { return c.stub }

// SetLookupTimeout overrides the per-attempt bound on lookup/browse
// calls (<= 0 restores the default).
func (c *Client) SetLookupTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultLookupTimeout
	}
	c.lookupTimeout = d
}

// lookup runs one read-only registry call with a per-attempt deadline
// and a single jittered retry on transient failure. SOAP faults are the
// registry answering (malformed query, unknown org) — retrying would
// only repeat the answer, so they return immediately. Publish paths are
// deliberately not routed through here: blind write retries could
// duplicate side effects.
func (c *Client) lookup(op string, params ...string) ([]string, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), c.lookupTimeout)
		rows, err := c.call.CallContext(ctx, op, params...)
		cancel()
		if err == nil {
			return rows, nil
		}
		lastErr = err
		var fault *soap.Fault
		if errors.As(err, &fault) || attempt >= lookupRetries {
			return nil, lastErr
		}
		c.policy.Sleep(attempt, nil, nil)
	}
}

// PublishOrganization creates or updates an organization entry.
func (c *Client) PublishOrganization(o Organization) error {
	_, err := c.stub.Call(OpPublishOrganization, o.Name, o.Contact, o.Description)
	return err
}

// PublishService publishes a service entry.
func (c *Client) PublishService(e ServiceEntry) error {
	_, err := c.stub.Call(OpPublishService, e.Organization, e.Name, e.Description, e.FactoryHandle)
	return err
}

// RemoveService removes one published service.
func (c *Client) RemoveService(org, name string) error {
	_, err := c.stub.Call(OpRemoveService, org, name)
	return err
}

// RemoveOrganization removes an organization and its services.
func (c *Client) RemoveOrganization(name string) error {
	_, err := c.stub.Call(OpRemoveOrganization, name)
	return err
}

// FindOrganizations queries organizations by name substring; empty query
// returns all.
func (c *Client) FindOrganizations(query string) ([]Organization, error) {
	rows, err := c.lookup(OpFindOrganizations, query)
	if err != nil {
		return nil, err
	}
	out := make([]Organization, len(rows))
	for i, row := range rows {
		parts := strings.SplitN(row, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("registry: malformed organization row %q", row)
		}
		out[i] = Organization{Name: parts[0], Contact: parts[1], Description: parts[2]}
	}
	return out, nil
}

// Services lists the services published by one organization.
func (c *Client) Services(org string) ([]ServiceEntry, error) {
	rows, err := c.lookup(OpGetServices, org)
	if err != nil {
		return nil, err
	}
	return parseEntries(rows)
}

// AllServices lists every published service.
func (c *Client) AllServices() ([]ServiceEntry, error) {
	rows, err := c.lookup(OpGetAllServices)
	if err != nil {
		return nil, err
	}
	return parseEntries(rows)
}

func parseEntries(rows []string) ([]ServiceEntry, error) {
	out := make([]ServiceEntry, len(rows))
	for i, row := range rows {
		e, err := ParseServiceEntry(row)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
