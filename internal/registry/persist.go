package registry

import (
	"encoding/json"
	"fmt"
	"os"
)

// snapshot is the JSON persistence schema. UDDI registries are durable
// directories; this gives the pperfgrid-registry process restart survival
// without a database.
type snapshot struct {
	Version       int            `json:"version"`
	Organizations []Organization `json:"organizations"`
	Services      []ServiceEntry `json:"services"`
}

const snapshotVersion = 1

// Snapshot serializes the registry's full state as JSON.
func (r *Registry) Snapshot() ([]byte, error) {
	s := snapshot{Version: snapshotVersion}
	s.Organizations = r.FindOrganizations("")
	s.Services = r.AllServices()
	return json.MarshalIndent(s, "", "  ")
}

// Restore builds a registry from a Snapshot document.
func Restore(data []byte) (*Registry, error) {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("registry: restore: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("registry: restore: unsupported snapshot version %d", s.Version)
	}
	r := New()
	for _, o := range s.Organizations {
		if err := r.PublishOrganization(o); err != nil {
			return nil, fmt.Errorf("registry: restore organization %q: %w", o.Name, err)
		}
	}
	for _, e := range s.Services {
		if err := r.PublishService(e); err != nil {
			return nil, fmt.Errorf("registry: restore service %q: %w", e.Name, err)
		}
	}
	return r, nil
}

// SaveFile writes a snapshot atomically (write-temp-then-rename).
func (r *Registry) SaveFile(path string) error {
	data, err := r.Snapshot()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a registry from a snapshot file. A missing file yields
// an empty registry, so first runs need no special casing.
func LoadFile(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: load: %w", err)
	}
	return Restore(data)
}
