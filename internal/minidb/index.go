package minidb

import (
	"sort"
	"strconv"
)

// hashIndex is a secondary hash index over one column of a table. It maps
// a normalized value key to the positions (in Table.Rows order) of the
// rows holding that value, so equality probes and hash-join builds touch
// only matching rows instead of scanning the whole table.
//
// Buckets may contain false positives — two values whose keys collide but
// that are not Equal (e.g. the texts '5' and '5.0' share the numeric key)
// — so every consumer re-evaluates its predicate on the candidate rows.
// The key function guarantees there are no false negatives: any two
// values for which Equal reports true map to the same key.
type hashIndex struct {
	column  string
	col     int // column position in the table
	buckets map[string][]int
}

// appendIndexKey appends a value's normalized hash key to dst,
// consistently with Equal: all numerically equal values (ints, floats,
// and numeric text) share one key, and non-numeric text keys on the exact
// string. NULL is not indexed — SQL equality with NULL is never true, so
// NULL rows can never match an equality probe or an equi-join key.
//
// Probes pass a reused scratch buffer and look the bucket map up through
// string(key), which the compiler compiles without a heap allocation —
// the per-probe "n:" + FormatFloat garbage the string-building form paid
// is gone (pinned by TestIndexProbeAllocs).
func appendIndexKey(dst []byte, v Value) ([]byte, bool) {
	if v.IsNull() {
		return dst, false
	}
	if f, ok := v.AsFloat(); ok {
		if f == 0 {
			f = 0 // fold -0 onto +0; they compare equal
		}
		dst = append(dst, 'n', ':')
		return strconv.AppendFloat(dst, f, 'g', -1, 64), true
	}
	dst = append(dst, 't', ':')
	return append(dst, v.Text...), true
}

// indexKey materializes the key as a string, for bucket-map inserts
// (which must retain the key).
func indexKey(v Value) (string, bool) {
	var a [32]byte
	k, ok := appendIndexKey(a[:0], v)
	if !ok {
		return "", false
	}
	return string(k), true
}

// add records a newly appended row at position pos.
func (ix *hashIndex) add(pos int, row Row) {
	if k, ok := indexKey(row[ix.col]); ok {
		ix.buckets[k] = append(ix.buckets[k], pos)
	}
}

// lookup returns the candidate row positions for an equality probe, in
// ascending (insertion) order. A nil probe key yields no candidates. The
// probe key lives in a stack scratch buffer; no allocation per probe.
func (ix *hashIndex) lookup(v Value) []int {
	var a [32]byte
	k, ok := appendIndexKey(a[:0], v)
	if !ok {
		return nil
	}
	return ix.buckets[string(k)]
}

// rebuild recomputes the index from scratch, after deletes or updates
// invalidate stored positions. It iterates the table's full position
// space — sealed blocks then tail — so building an index on a disk table
// decodes every block once; the error is the view's block-read error, if
// any (impossible on pure-tail tables, which is every post-materialize
// rebuild site).
func (ix *hashIndex) rebuild(v *rowsView) error {
	ix.buckets = make(map[string][]int, len(ix.buckets))
	n := v.total()
	for pos := 0; pos < n; pos++ {
		ix.add(pos, v.row(pos))
	}
	return v.err
}

// addIndex builds a hash index on the named column. Indexing the same
// column twice is a no-op; created reports whether this call built it
// (so the caller knows to log the declaration).
func (t *Table) addIndex(column string) (created bool, err error) {
	col := t.ColumnIndex(column)
	if col < 0 {
		return false, errf("plan", "table %q has no column %q to index", t.Name, column)
	}
	if t.indexes == nil {
		t.indexes = make(map[string]*hashIndex)
	}
	if _, ok := t.indexes[column]; ok {
		return false, nil
	}
	ix := &hashIndex{column: column, col: col, buckets: make(map[string][]int)}
	v := t.view()
	if err := ix.rebuild(&v); err != nil {
		return false, err
	}
	t.indexes[column] = ix
	return true, nil
}

// index returns the hash index on the named column, or nil.
func (t *Table) index(column string) *hashIndex {
	return t.indexes[column]
}

// noteInsert maintains all indexes after a row append: hash indexes are
// appended to incrementally, ordered indexes are just marked stale (their
// rebuild is deferred to the next probe, keeping bulk loads O(1) per row).
func (t *Table) noteInsert() {
	pos := t.sealedRows + len(t.Rows) - 1
	row := t.Rows[len(t.Rows)-1]
	for _, ix := range t.indexes {
		ix.add(pos, row)
	}
	for _, ox := range t.ordered {
		ox.invalidate()
	}
}

// reindex rebuilds all indexes, after deletes or updates move or change
// rows in place. Every caller runs after materialize (or on a memory
// table), so the view is pure tail and cannot hit a block-read error.
func (t *Table) reindex() {
	for _, ix := range t.indexes {
		v := t.view()
		ix.rebuild(&v)
	}
	for _, ox := range t.ordered {
		ox.invalidate()
	}
}

// CreateIndex builds a secondary hash index on table.column. Subsequent
// equality filters and equi-joins on that column probe the index instead
// of scanning. The index is maintained automatically: inserts append to
// it, deletes and updates rebuild it.
func (db *Database) CreateIndex(table, column string) error {
	return db.commitDurable(db.createIndex(table, column, false))
}

// createIndex builds a hash (or declares an ordered) index, logging the
// declaration to the WAL when it is new.
func (db *Database) createIndex(table, column string, ordered bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(table)
	if err != nil {
		return err
	}
	var created bool
	if ordered {
		created, err = t.addOrderedIndex(column)
	} else {
		created, err = t.addIndex(column)
	}
	if err == nil && created && db.eng != nil {
		db.eng.logRecord(encCreateIndex(table, column, ordered))
	}
	return err
}

// Indexes reports the indexed columns of a table, for introspection and
// tests.
func (db *Database) Indexes(table string) ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out, nil
}
