package minidb

import (
	"sort"
	"sync"
)

// Table is one in-memory relation.
type Table struct {
	Name    string
	Columns []Column
	Rows    []Row

	colIndex map[string]int
	indexes  map[string]*hashIndex    // secondary hash indexes, by column
	ordered  map[string]*orderedIndex // sorted range indexes, by column

	// Disk-engine state (zero for memory databases). Rows is then only
	// the mutable tail: the table's first sealedRows rows live in
	// immutable columnar blocks, and global row positions — the ones
	// indexes store — run [0, sealedRows) in blocks, then the tail.
	// sealedRows is always a multiple of vecBlockSize. rewriteGen
	// increments whenever existing rows are rewritten (DELETE/UPDATE/
	// materialize), invalidating in-flight seal/merge snapshots;
	// append-only inserts never bump it.
	eng        *diskEngine
	sealedRows int
	blocks     []blockRef
	rewriteGen uint64
}

func newTable(name string, cols []Column) *Table {
	t := &Table{Name: name, Columns: cols, colIndex: make(map[string]int, len(cols))}
	for i, c := range cols {
		t.colIndex[c.Name] = i
	}
	return t
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIndex[name]; ok {
		return i
	}
	return -1
}

// Database is a collection of tables, safe for concurrent use.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// schemaGen increments on CREATE/DROP TABLE, invalidating cached
	// statement plans (which hold table pointers and column positions).
	schemaGen uint64

	stmtMu sync.Mutex
	stmts  map[string]*Stmt // prepared-statement cache, by SQL text

	// eng is non-nil for disk-backed databases opened with Open.
	eng *diskEngine
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table), stmts: make(map[string]*Stmt)}
}

// table looks up a table; the caller must hold at least a read lock.
func (db *Database) table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, errf("exec", "no such table %q", name)
	}
	return t, nil
}

// TableNames returns the sorted names of all tables.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumRows returns the row count of a table, or an error if it is missing.
func (db *Database) NumRows(table string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(table)
	if err != nil {
		return 0, err
	}
	return t.sealedRows + len(t.Rows), nil
}

// Exec parses and runs a DDL/DML statement (CREATE, DROP, INSERT, DELETE,
// UPDATE), returning the number of rows affected. Statements with `?`
// parameters must go through Prepare.
func (db *Database) Exec(sql string) (int, error) {
	st, nParams, err := parseSQL(sql)
	if err != nil {
		return 0, err
	}
	if nParams > 0 {
		return 0, errf("exec", "statement has %d parameters; use Prepare", nParams)
	}
	return db.execStatement(st, nil)
}

// execStatement runs a parsed non-SELECT statement with bound parameters
// and, on a disk engine, blocks until the commit's WAL records are
// durable (riding the group-commit leader's fsync when one is in flight).
func (db *Database) execStatement(st Statement, args []Value) (int, error) {
	n, err := db.applyStatement(st, args)
	return n, db.commitDurable(err)
}

func (db *Database) applyStatement(st Statement, args []Value) (int, error) {
	switch s := st.(type) {
	case *SelectStmt:
		return 0, errf("exec", "use Query for SELECT statements")
	case *CreateTableStmt:
		return 0, db.createTable(s)
	case *DropTableStmt:
		return 0, db.dropTable(s)
	case *CreateIndexStmt:
		if s.Ordered {
			return 0, db.CreateOrderedIndex(s.Table, s.Column)
		}
		return 0, db.CreateIndex(s.Table, s.Column)
	case *InsertStmt:
		return db.insert(s, args)
	case *DeleteStmt:
		return db.delete(s, args)
	case *UpdateStmt:
		return db.update(s, args)
	}
	return 0, errf("exec", "unsupported statement")
}

// MustExec is Exec that panics on error, for dataset construction code.
func (db *Database) MustExec(sql string) int {
	n, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return n
}

// Query parses and runs a SELECT statement through the planned pipeline
// (plan.go): predicate pushdown, hash join for equi-joins, and secondary
// index probes where indexes exist. Statements with `?` parameters must
// go through Prepare.
func (db *Database) Query(sql string) (*ResultSet, error) {
	sel, err := parseSelect(sql)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	rows, err := db.runPlan(sel, nil)
	if err != nil {
		return nil, err
	}
	return rows.drain()
}

// QueryNaive runs a SELECT through the retained reference executor: full
// materialization, nested-loop join, no index use. It exists so tests can
// differentially check the planned pipeline against the straightforward
// semantics; production callers should use Query or Prepare.
func (db *Database) QueryNaive(sql string) (*ResultSet, error) {
	sel, err := parseSelect(sql)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.runSelectNaive(sel, nil)
}

// parseSelect parses a parameter-free SELECT.
func parseSelect(sql string) (*SelectStmt, error) {
	st, nParams, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, errf("exec", "use Exec for non-SELECT statements")
	}
	if nParams > 0 {
		return nil, errf("exec", "statement has %d parameters; use Prepare", nParams)
	}
	return sel, nil
}

// QueryStrings runs a SELECT and renders every cell as a string.
func (db *Database) QueryStrings(sql string) ([][]string, error) {
	rs, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	return rs.Strings(), nil
}

func (db *Database) createTable(s *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[s.Name]; exists {
		return errf("exec", "table %q already exists", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if seen[c.Name] {
			return errf("exec", "duplicate column %q in table %q", c.Name, s.Name)
		}
		seen[c.Name] = true
	}
	t := newTable(s.Name, s.Columns)
	t.eng = db.eng
	db.tables[s.Name] = t
	db.schemaGen++
	if db.eng != nil {
		db.eng.logRecord(encCreateTable(s.Name, s.Columns))
	}
	return nil
}

func (db *Database) dropTable(s *DropTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, exists := db.tables[s.Name]
	if !exists {
		return errf("exec", "no such table %q", s.Name)
	}
	delete(db.tables, s.Name)
	db.schemaGen++
	db.dropCachedPlans()
	if db.eng != nil {
		t.retireBlocks()
		db.eng.logRecord(encDropTable(s.Name))
	}
	return nil
}

// retireBlocks drops every sealed block, retiring the backing segment
// files. Caller holds the database write lock (and db.eng is non-nil).
func (t *Table) retireBlocks() {
	seen := make(map[uint64]struct{})
	for i := range t.blocks {
		id := t.blocks[i].fileID
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			t.eng.retireFileLocked(id)
		}
	}
	t.blocks = nil
	t.sealedRows = 0
	t.rewriteGen++
}

// materialize pulls every sealed row back into the in-memory tail so
// DELETE/UPDATE can reuse the in-place row machinery. Sealed rows are
// deep-copied — decoded block rows are shared with the page cache and
// must never be mutated. Global row positions are preserved, so indexes
// stay valid. The swap is atomic: on a block read error the table is
// untouched. The caller is responsible for logging a rewrite record
// afterwards — the WAL's earlier seal records reference the retired
// segment files, which stay on disk until the next checkpoint.
func (db *Database) materialize(t *Table) error {
	if t.sealedRows == 0 {
		return nil
	}
	rows := make([]Row, 0, t.sealedRows+len(t.Rows))
	v := t.view()
	for pos := 0; pos < t.sealedRows; pos++ {
		rows = append(rows, v.row(pos).clone())
	}
	if v.err != nil {
		return v.err
	}
	rows = append(rows, t.Rows...)
	t.retireBlocks()
	t.Rows = rows
	return nil
}

// dropCachedPlans clears every prepared statement's cached plan. Plans
// hold *Table pointers (and through them full row storage), so after a
// DROP TABLE the stale plans must be released eagerly — waiting for each
// statement's next execution would pin the dropped table's rows
// indefinitely for statements that never run again.
func (db *Database) dropCachedPlans() {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	for _, s := range db.stmts {
		s.planMu.Lock()
		s.plan = nil
		s.planMu.Unlock()
	}
}

func (db *Database) insert(s *InsertStmt, args []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	// Map insert columns to table positions.
	positions := make([]int, 0, len(t.Columns))
	if s.Columns == nil {
		for i := range t.Columns {
			positions = append(positions, i)
		}
	} else {
		for _, name := range s.Columns {
			i := t.ColumnIndex(name)
			if i < 0 {
				return 0, errf("exec", "table %q has no column %q", s.Table, name)
			}
			positions = append(positions, i)
		}
	}
	valEnv := &env{args: args}
	inserted := 0
	// Rows applied before an error stay applied (partial-progress
	// semantics), so the WAL record must cover exactly the applied prefix.
	defer func() {
		if inserted > 0 && db.eng != nil {
			db.eng.logInsert(t, t.Rows[len(t.Rows)-inserted:])
		}
	}()
	for _, exprs := range s.Rows {
		if len(exprs) != len(positions) {
			return inserted, errf("exec", "INSERT row has %d values, want %d", len(exprs), len(positions))
		}
		row := make(Row, len(t.Columns))
		for i := range row {
			row[i] = Null()
		}
		for i, e := range exprs {
			v, err := eval(e, valEnv)
			if err != nil {
				return inserted, err
			}
			col := positions[i]
			row[col] = t.Columns[col].Type.Coerce(v)
		}
		t.Rows = append(t.Rows, row)
		t.noteInsert()
		inserted++
	}
	return inserted, nil
}

func (db *Database) delete(s *DeleteStmt, args []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	if s.Where == nil {
		n := t.sealedRows + len(t.Rows)
		t.Rows = nil
		if db.eng != nil {
			t.retireBlocks()
			if n > 0 {
				db.eng.logRecord(encRewrite(t.Name, nil))
			}
		}
		if n > 0 {
			t.reindex()
		}
		return n, nil
	}
	materialized := t.sealedRows > 0
	if err := db.materialize(t); err != nil {
		return 0, err
	}
	e := &env{cols: make([]qcol, len(t.Columns)), args: args}
	for i, c := range t.Columns {
		e.cols[i] = qcol{qualifier: t.Name, name: c.Name}
	}
	rows := t.Rows
	kept := rows[:0]
	deleted := 0
	// The in-place compaction rewrites positions only once a row has
	// been dropped, so indexes need rebuilding exactly when deleted > 0
	// — including on an early error return.
	defer func() {
		if deleted > 0 {
			t.reindex()
		}
		// A materialize alone already changed the storage layout out from
		// under the WAL's seal records, so it must log a rewrite even when
		// the DELETE itself matched nothing — otherwise a later seal would
		// replay against a tail those earlier records already consumed.
		if db.eng != nil && (materialized || deleted > 0) {
			t.rewriteGen++
			db.eng.logRecord(encRewrite(t.Name, t.Rows))
		}
	}()
	for i, r := range rows {
		e.row = r
		v, err := eval(s.Where, e)
		if err != nil {
			// Rows already deleted stay deleted (matching INSERT's
			// partial-progress semantics), but the compaction must be
			// completed for the unprocessed suffix — leaving t.Rows as
			// the original slice over the partially compacted array
			// would duplicate rows.
			t.Rows = append(kept, rows[i:]...)
			return deleted, err
		}
		if v.Truthy() {
			deleted++
			continue
		}
		kept = append(kept, r)
	}
	t.Rows = kept
	return deleted, nil
}

func (db *Database) update(s *UpdateStmt, args []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	// Resolve SET targets once.
	targets := make([]int, len(s.Set))
	for i, a := range s.Set {
		col := t.ColumnIndex(a.Column)
		if col < 0 {
			return 0, errf("exec", "table %q has no column %q", s.Table, a.Column)
		}
		targets[i] = col
	}
	materialized := t.sealedRows > 0
	if err := db.materialize(t); err != nil {
		return 0, err
	}
	updated := 0
	// UPDATE mutates rows in place (positions never move), so only the
	// indexes over assigned columns go stale — and only if a row changed.
	// In-place mutation is safe on a disk table too: materialize above
	// cloned every sealed row out of the shared page cache, and a seal
	// cannot run concurrently (it encodes under the read lock and its
	// flip revalidates rewriteGen, bumped below whenever rows changed).
	defer func() {
		if updated > 0 {
			tv := t.view()
			for _, ix := range t.indexes {
				for _, col := range targets {
					if ix.col == col {
						ix.rebuild(&tv)
						break
					}
				}
			}
			for _, ox := range t.ordered {
				for _, col := range targets {
					if ox.col == col {
						ox.invalidate()
						break
					}
				}
			}
		}
		if db.eng != nil && (materialized || updated > 0) {
			t.rewriteGen++
			db.eng.logRecord(encRewrite(t.Name, t.Rows))
		}
	}()
	e := &env{cols: make([]qcol, len(t.Columns)), args: args}
	for i, c := range t.Columns {
		e.cols[i] = qcol{qualifier: t.Name, name: c.Name}
	}
	for _, r := range t.Rows {
		e.row = r
		if s.Where != nil {
			v, err := eval(s.Where, e)
			if err != nil {
				return updated, err
			}
			if !v.Truthy() {
				continue
			}
		}
		// Evaluate all assignments against the pre-update row, then apply
		// (standard SQL semantics: SET a = b, b = a swaps).
		newVals := make([]Value, len(s.Set))
		for i, a := range s.Set {
			v, err := eval(a.Value, e)
			if err != nil {
				return updated, err
			}
			newVals[i] = t.Columns[targets[i]].Type.Coerce(v)
		}
		for i, col := range targets {
			r[col] = newVals[i]
		}
		updated++
	}
	return updated, nil
}

// InsertRow appends a row directly (bypassing SQL parsing) for bulk dataset
// loading. Values are coerced to the declared column types.
func (db *Database) InsertRow(table string, vals ...Value) error {
	return db.commitDurable(db.insertRow(table, vals))
}

func (db *Database) insertRow(table string, vals []Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(table)
	if err != nil {
		return err
	}
	if len(vals) != len(t.Columns) {
		return errf("exec", "InsertRow: %d values for %d columns", len(vals), len(t.Columns))
	}
	row := make(Row, len(vals))
	for i, v := range vals {
		row[i] = t.Columns[i].Type.Coerce(v)
	}
	t.Rows = append(t.Rows, row)
	t.noteInsert()
	if db.eng != nil {
		db.eng.logInsert(t, t.Rows[len(t.Rows)-1:])
	}
	return nil
}

// InsertRows appends many rows under one lock acquisition — the bulk
// variant of InsertRow for million-row dataset loads, where per-row
// locking would dominate. Each row must match the table's column count;
// on a mismatch, rows inserted so far stay inserted (matching INSERT's
// partial-progress semantics).
func (db *Database) InsertRows(table string, rows [][]Value) error {
	return db.commitDurable(db.insertRows(table, rows))
}

func (db *Database) insertRows(table string, rows [][]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(table)
	if err != nil {
		return err
	}
	inserted := 0
	defer func() {
		if inserted > 0 && db.eng != nil {
			db.eng.logInsert(t, t.Rows[len(t.Rows)-inserted:])
		}
	}()
	for _, vals := range rows {
		if len(vals) != len(t.Columns) {
			return errf("exec", "InsertRows: %d values for %d columns", len(vals), len(t.Columns))
		}
		row := make(Row, len(vals))
		for i, v := range vals {
			row[i] = t.Columns[i].Type.Coerce(v)
		}
		t.Rows = append(t.Rows, row)
		t.noteInsert()
		inserted++
	}
	return nil
}
